GO ?= go

.PHONY: check build vet test race diff degrade obs serve-test fleet reqtrace api api-update bench bench-exec bench-smoke bench-diff bench-miss fuzz fuzz-exec fuzz-degrade fuzz-fleet fuzz-beam exec-pool

## check: the tier-1 gate — everything a PR must keep green.
check: vet build race diff degrade obs serve-test fleet reqtrace exec-pool api bench-smoke bench-exec

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) vet ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## diff: the planner-equivalence suite — differential tests proving the
## parallel planning engine produces byte-identical plans to the sequential
## planner, the 20-run determinism golden, and the cost-cache unit tests.
diff:
	$(GO) test -race -count=1 -run 'TestDifferential|TestPlanDeterminismGolden|TestCostCache|TestStreamCostCacheReuse|TestStreamParallelismInvariant|TestExhaustiveParallelMatchesSequential' \
		./internal/core/ ./internal/stream/ ./internal/baseline/

## degrade: the degradation-runtime suite under the race detector — event
## injection, partial cache invalidation, replan/retry/backoff and
## cancellation paths across soc, stream and the facade.
degrade:
	$(GO) test -race -count=1 -run 'Degrad' ./internal/soc/ ./internal/stream/ .

## obs: the observability suite under the race detector — metrics registry
## concurrency, run-report/Result equivalence, stream Chrome traces and the
## scheduler/executor accounting regression tests.
obs:
	$(GO) test -race -count=1 -run Obs ./internal/obs/ ./internal/pipeline/ ./internal/stream/ ./internal/trace/ ./cmd/h2pipe/ ./cmd/benchjson/ .

## serve-test: the live-observability suite under the race detector — the
## HTTP server e2e (healthz/readyz/metrics/windows/SSE/pprof/spans), the
## span tracer and ring, the window feed, and the span→Chrome-trace
## equivalence tests.
serve-test:
	$(GO) test -race -count=1 -run 'TestServeObs|TestSpan|TestAttr|TestWriteOTLP|TestFeed' \
		./internal/obs/ ./internal/stream/ ./internal/trace/ .

## fleet: the sharded-serving suite under the race detector — the 1-device
## Device-extraction differential, router policies and the consistent-hash
## ring, graceful halt + failover/handoff accounting, the N-device concurrent
## obs-stress run (shared registry, span ring, feed fan-out, blocking
## subscriber), per-device labeled metrics, and the /fleet endpoint across
## the library facade and the CLI.
fleet:
	$(GO) test -race -count=1 -run 'TestFleet|TestDifferentialFleet|TestPolicy|TestAffinity|TestLeastSojourn|TestDeviceSeed|TestDeviceRun|TestStreamHalt|TestStreamHandoff|TestPlanCacheHasCachedPlan|TestObsWithLabels|TestObsPrometheusLabeled|TestRunFleet' \
		./internal/fleet/ ./internal/stream/ ./internal/obs/ ./internal/core/ ./cmd/h2pipe/ .

## reqtrace: the request-tracing suite under the race detector — trace-ID
## scheme and flight-recorder store, the sojourn-decomposition sum invariant
## across interrupt/requeue/backoff/halt/handoff paths, trace survival
## through fleet failover stitching, SLO error-budget burn rates against the
## labeled deadline-miss counters, histogram exemplars, and the /requests
## and /slo endpoints across the internal server and the library facade.
reqtrace:
	$(GO) test -race -count=1 -run 'RequestTrace|SLOBudget|Decomp' \
		./internal/stream/ ./internal/fleet/ ./internal/obs/ .

## api: the public-API gate — regenerate the facade's exported surface and
## diff it against the committed api.txt baseline. Fails on any unreviewed
## public-API change; when the change is intentional, run `make api-update`
## and commit the new baseline alongside the code.
api:
	@$(GO) run ./cmd/apidump . > api.txt.tmp
	@diff -u api.txt api.txt.tmp || \
		(rm -f api.txt.tmp; echo "public API changed: review the diff above, then run 'make api-update' to accept"; exit 1)
	@rm -f api.txt.tmp

## api-update: accept an intentional public-API change by regenerating the
## committed baseline.
api-update:
	$(GO) run ./cmd/apidump . > api.txt

## bench: five interleaved repetitions with allocation stats, archived as
## machine-readable JSON (BENCH_<date>.json) for regression tracking.
bench:
	$(GO) test -bench . -benchmem -count=5 -run xxx . | $(GO) run ./cmd/benchjson | tee BENCH_$(shell date +%Y-%m-%d).json

## exec-pool: the pooled-executor correctness gate under the race detector —
## the pooled-vs-unpooled differential over randomized schedules, the
## concurrent Execute stress sharing the scratch pool, the tight-memory
## admission sweep, and the steady-state allocation budget.
exec-pool:
	$(GO) test -race -count=1 -run 'TestDifferentialExecScratch|TestExecScratch|TestExecutorAllocBudget' ./internal/pipeline/

## bench-exec: one quick -benchmem pass of the executor benchmarks (pooled
## steady state, contention-free fast path, planner-shaped small schedules,
## pool-sharing parallel execution, and the unpooled reference twin); part
## of `make check` so the hot path's allocation profile stays visible.
bench-exec:
	$(GO) test -run xxx -bench 'BenchmarkExecute(SteadyState|NoContention|Small|Parallel)|BenchmarkReferenceExecute' -benchmem -benchtime 100x -count=1 ./internal/pipeline/

## bench-smoke: one quick pass of the stream serving benchmarks (steady
## state and churn, plan cache on and off) — a fast check that the online
## serving paths still run end to end; part of `make check`.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkStream(SteadyState|Churn)' -benchtime 1x -count=1 .

## bench-diff: guard against performance regressions — compare the two most
## recent BENCH_*.json archives (override with OLD=/NEW=) and fail on a
## >10% ns/op, bytes/op or allocs/op regression.
bench-diff:
	$(eval OLD ?= $(shell ls BENCH_*.json | sort | tail -2 | head -1))
	$(eval NEW ?= $(shell ls BENCH_*.json | sort | tail -1))
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

## bench-miss: the replan miss-path pair — incremental prefix-resumed
## replanning vs from-scratch refills after a single-processor degradation.
## The Incremental row's ns/op should sit well below the Full row's.
bench-miss:
	$(GO) test -run xxx -bench 'BenchmarkReplanMiss(Incremental|Full)' -benchmem -count=5 .

## fuzz: a short run of the parallel-vs-sequential differential fuzz target.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParallelPlannerDifferential -fuzztime 30s ./internal/core/

## fuzz-exec: short fuzz of the pooled-executor differential — any fuzzed
## (seed, request count, option bits) must produce a Result byte-identical
## to the unpooled reference executor, including MemTrace, PeakMemoryBytes
## and AdmissionStalls.
fuzz-exec:
	$(GO) test -run xxx -fuzz FuzzExecScratch -fuzztime 30s ./internal/pipeline/

## fuzz-degrade: short fuzz of the degradation-aware stream runtime, seeded
## with a processor going offline mid-window.
fuzz-degrade:
	$(GO) test -run xxx -fuzz FuzzStreamDegradation -fuzztime 30s ./internal/stream/

## fuzz-fleet: short fuzz of the router's sharding invariants — every request
## digest routes to exactly one live device, and removing a device moves only
## the keys it owned.
fuzz-fleet:
	$(GO) test -run xxx -fuzz FuzzRouterShard -fuzztime 30s ./internal/fleet/

## fuzz-beam: short fuzz of the beam sweep's regret bound — every fuzzed
## (window, width, ε) must price within (1+ε)× of the exact sweep, and a
## width covering all candidates must be byte-identical to it.
fuzz-beam:
	$(GO) test -run xxx -fuzz FuzzBeamRegret -fuzztime 30s ./internal/core/
