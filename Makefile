GO ?= go

.PHONY: check build vet test race diff degrade obs bench fuzz fuzz-degrade

## check: the tier-1 gate — everything a PR must keep green.
check: vet build race diff degrade obs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) vet ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## diff: the planner-equivalence suite — differential tests proving the
## parallel planning engine produces byte-identical plans to the sequential
## planner, the 20-run determinism golden, and the cost-cache unit tests.
diff:
	$(GO) test -race -count=1 -run 'TestDifferential|TestPlanDeterminismGolden|TestCostCache|TestStreamCostCacheReuse|TestStreamParallelismInvariant|TestExhaustiveParallelMatchesSequential' \
		./internal/core/ ./internal/stream/ ./internal/baseline/

## degrade: the degradation-runtime suite under the race detector — event
## injection, partial cache invalidation, replan/retry/backoff and
## cancellation paths across soc, stream and the facade.
degrade:
	$(GO) test -race -count=1 -run 'Degrad' ./internal/soc/ ./internal/stream/ .

## obs: the observability suite under the race detector — metrics registry
## concurrency, run-report/Result equivalence, stream Chrome traces and the
## scheduler/executor accounting regression tests.
obs:
	$(GO) test -race -count=1 -run Obs ./internal/obs/ ./internal/pipeline/ ./internal/stream/ ./internal/trace/ ./cmd/h2pipe/ ./cmd/benchjson/ .

## bench: five interleaved repetitions with allocation stats, archived as
## machine-readable JSON (BENCH_<date>.json) for regression tracking.
bench:
	$(GO) test -bench . -benchmem -count=5 -run xxx . | $(GO) run ./cmd/benchjson | tee BENCH_$(shell date +%Y-%m-%d).json

## fuzz: a short run of the parallel-vs-sequential differential fuzz target.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParallelPlannerDifferential -fuzztime 30s ./internal/core/

## fuzz-degrade: short fuzz of the degradation-aware stream runtime, seeded
## with a processor going offline mid-window.
fuzz-degrade:
	$(GO) test -run xxx -fuzz FuzzStreamDegradation -fuzztime 30s ./internal/stream/
