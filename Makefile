GO ?= go

.PHONY: check build vet test race diff bench fuzz

## check: the tier-1 gate — everything a PR must keep green.
check: vet build race diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## diff: the planner-equivalence suite — differential tests proving the
## parallel planning engine produces byte-identical plans to the sequential
## planner, the 20-run determinism golden, and the cost-cache unit tests.
diff:
	$(GO) test -race -count=1 -run 'TestDifferential|TestPlanDeterminismGolden|TestCostCache|TestStreamCostCacheReuse|TestStreamParallelismInvariant|TestExhaustiveParallelMatchesSequential' \
		./internal/core/ ./internal/stream/ ./internal/baseline/

bench:
	$(GO) test -bench . -benchmem -run xxx .

## fuzz: a short run of the parallel-vs-sequential differential fuzz target.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParallelPlannerDifferential -fuzztime 30s ./internal/core/
