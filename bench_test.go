package hetero2pipe_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/experiments"
	"hetero2pipe/internal/fleet"
	"hetero2pipe/internal/lap"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/workload"
)

// benchExperiment runs one paper artefact per iteration at quick scale, so
// `go test -bench .` regenerates every table and figure.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatalf("Run(%s): %v", id, err)
		}
	}
}

// One benchmark per paper table/figure (DESIGN.md §3 index).

func BenchmarkFig1SoloLatency(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2aQueueing(b *testing.B)       { benchExperiment(b, "fig2a") }
func BenchmarkFig2bCounters(b *testing.B)       { benchExperiment(b, "fig2b") }
func BenchmarkTable2Slowdown(b *testing.B)      { benchExperiment(b, "tab2") }
func BenchmarkEq1Ridge(b *testing.B)            { benchExperiment(b, "eq1") }
func BenchmarkFig7Overall(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8aAblationSearch(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8bComponents(b *testing.B)     { benchExperiment(b, "fig8b") }
func BenchmarkFig9MemoryTrace(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10IntraCluster(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig12BubbleLatency(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13Batching(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkSearchSpaceCounting(b *testing.B) { benchExperiment(b, "searchspace") }

// Micro-benchmarks of the planner's building blocks.

func benchProfiles(b *testing.B, names ...string) (*soc.SoC, []*profile.Profile) {
	b.Helper()
	s := soc.Kirin990()
	out := make([]*profile.Profile, len(names))
	for i, n := range names {
		p, err := profile.New(s, model.MustByName(n))
		if err != nil {
			b.Fatal(err)
		}
		out[i] = p
	}
	return s, out
}

func BenchmarkProfileConstruction(b *testing.B) {
	s := soc.Kirin990()
	m := model.MustByName(model.ResNet50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.New(s, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionDP(b *testing.B) {
	_, profs := benchProfiles(b, model.BERT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Partition(profs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionFastDP(b *testing.B) {
	_, profs := benchProfiles(b, model.BERT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PartitionFast(profs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerEndToEnd(b *testing.B) {
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanProfiles(profs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlannerParallelism plans a six-model window at a fixed worker count;
// the Parallelism1 vs ParallelismN pair is the before/after of the parallel
// planning engine (the plans themselves are byte-identical — see the
// differential suite — only the planning latency moves).
func benchPlannerParallelism(b *testing.B, parallelism int) {
	b.Helper()
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT,
		model.ResNet50, model.VGG16, model.InceptionV4)
	opts := core.DefaultOptions()
	opts.Parallelism = parallelism
	pl, err := core.NewPlanner(s, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanProfiles(profs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerParallelism1(b *testing.B) { benchPlannerParallelism(b, 1) }
func BenchmarkPlannerParallelismN(b *testing.B) { benchPlannerParallelism(b, runtime.GOMAXPROCS(0)) }

// BenchmarkPlanFrontier enumerates the full Pareto frontier over the same
// four-model window as BenchmarkPlannerEndToEnd — the pairing isolates the
// cost of dominance filtering and frontier assembly over single-plan search.
func BenchmarkPlanFrontier(b *testing.B) {
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanFrontierProfiles(profs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFrontierWarmCache measures the frontier-mode steady state with
// the whole-frontier memo warm — a cache hit deep-copies every point.
func BenchmarkPlanFrontierWarmCache(b *testing.B) {
	s := soc.Kirin990()
	models := []*model.Model{
		model.MustByName(model.YOLOv4), model.MustByName(model.SqueezeNet),
		model.MustByName(model.BERT), model.MustByName(model.ResNet50),
	}
	opts := core.DefaultOptions()
	opts.PlanCache = 8
	pl, err := core.NewPlanner(s, opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pl.PlanFrontierModels(models); err != nil { // warm the memo
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanFrontierModels(models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanModelsWarmCache measures a full PlanModels with the cost
// cache warm — the steady state of internal/stream window planning; compare
// against BenchmarkPlanModelsColdCache for the cache's saving.
func BenchmarkPlanModelsWarmCache(b *testing.B) {
	s := soc.Kirin990()
	models := []*model.Model{
		model.MustByName(model.YOLOv4), model.MustByName(model.SqueezeNet),
		model.MustByName(model.BERT), model.MustByName(model.ResNet50),
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pl.PlanModels(models); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanModels(models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanModelsColdCache re-measures every model each iteration by
// invalidating the cache — the pre-cache behaviour of per-window planning.
func BenchmarkPlanModelsColdCache(b *testing.B) {
	s := soc.Kirin990()
	models := []*model.Model{
		model.MustByName(model.YOLOv4), model.MustByName(model.SqueezeNet),
		model.MustByName(model.BERT), model.MustByName(model.ResNet50),
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.InvalidateCache()
		if _, err := pl.PlanModels(models); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExhaustiveParallelism runs the Fig. 8 exhaustive reference at a fixed
// worker count over a five-model grid (120 orderings).
func benchExhaustiveParallelism(b *testing.B, workers int) {
	b.Helper()
	s, profs := benchProfiles(b, model.SqueezeNet, model.ResNet50,
		model.MobileNetV2, model.GoogLeNet, model.AlexNet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.ExhaustiveParallel(s, profs, pipeline.DefaultOptions(), workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveParallelism1(b *testing.B) { benchExhaustiveParallelism(b, 1) }
func BenchmarkExhaustiveParallelismN(b *testing.B) {
	benchExhaustiveParallelism(b, runtime.GOMAXPROCS(0))
}

func BenchmarkExecutorContention(b *testing.B) {
	s, profs := benchProfiles(b, model.ResNet50, model.VGG16, model.SqueezeNet, model.InceptionV4)
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := pl.PlanProfiles(profs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarianLAP(b *testing.B) {
	const n = 32
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = float64((i*7+j*13)%97) + 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := lap.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandPlanning(b *testing.B) {
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Band(s, profs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppBThermal(b *testing.B)          { benchExperiment(b, "appB") }
func BenchmarkClusterSplitAblation(b *testing.B) { benchExperiment(b, "clustersplit") }

func BenchmarkAppDBatching(b *testing.B) { benchExperiment(b, "appD") }

func BenchmarkEnergyExtension(b *testing.B) { benchExperiment(b, "energy") }

func BenchmarkSensitivitySweeps(b *testing.B) { benchExperiment(b, "sensitivity") }

func BenchmarkDepthAblation(b *testing.B) { benchExperiment(b, "depth") }

// Stream serving benchmarks: whole online runs through the scheduler. The
// steady-state pair (identical window mix, stable SoC) is the plan cache's
// target workload — compare the plan-ns/window metric of
// BenchmarkStreamSteadyState against BenchmarkStreamSteadyStateNoPlanCache
// for the memoization saving. The churn pair injects a state-changing
// throttle between windows, retiring every cached signature, and bounds the
// cache's overhead when it can never hit.

func benchStreamRequests(b *testing.B) []stream.Request {
	b.Helper()
	names := make([]string, 0, 24)
	for i := 0; i < 8; i++ {
		names = append(names, model.ResNet50, model.SqueezeNet, model.GoogLeNet)
	}
	models, err := workload.Instantiate(names)
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]stream.Request, len(models))
	for i, m := range models {
		reqs[i] = stream.Request{Model: m}
	}
	return reqs
}

// benchStreamRun drives b.N full runs of a 24-request burst (8 identical
// 3-model windows) and reports the planner's wall time per window alongside
// the usual per-run figures.
func benchStreamRun(b *testing.B, planCache int, events []soc.Event) {
	opts := core.DefaultOptions()
	opts.PlanCache = planCache
	pl, err := core.NewPlanner(soc.Kirin990(), opts)
	if err != nil {
		b.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.MaxWindow = 3
	cfg.MaxBatch = 1
	cfg.Events = events
	sched, err := stream.NewScheduler(pl, cfg)
	if err != nil {
		b.Fatal(err)
	}
	reqs := benchStreamRequests(b)
	b.ReportAllocs()
	b.ResetTimer()
	var planWall time.Duration
	windows := 0
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(reqs, pipeline.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, ws := range res.WindowStats {
			planWall += ws.PlanWall
		}
		windows += res.Windows
	}
	b.ReportMetric(float64(planWall.Nanoseconds())/float64(windows), "plan-ns/window")
}

// benchChurnEvents probes an event-free run for its makespan and spreads an
// alternating throttle (1.5 ↔ nominal) across it: every planning epoch is
// retired before the next window, so the plan cache can never serve a hit.
// The event count is even, returning the SoC to nominal so every b.N
// iteration replays identically.
func benchChurnEvents(b *testing.B) []soc.Event {
	b.Helper()
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.MaxWindow = 3
	cfg.MaxBatch = 1
	sched, err := stream.NewScheduler(pl, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sched.Run(benchStreamRequests(b), pipeline.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	events := make([]soc.Event, 6)
	for i := range events {
		factor := 1.5
		if i%2 == 1 {
			factor = 1.0
		}
		events[i] = soc.Event{
			Kind: soc.EventThermalThrottle, Processor: "cpu-big",
			At: time.Duration(i+1) * res.Makespan / 7, Factor: factor,
		}
	}
	return events
}

func BenchmarkStreamSteadyState(b *testing.B)            { benchStreamRun(b, 8, nil) }
func BenchmarkStreamSteadyStateNoPlanCache(b *testing.B) { benchStreamRun(b, 0, nil) }

func BenchmarkStreamChurn(b *testing.B) { benchStreamRun(b, 8, benchChurnEvents(b)) }
func BenchmarkStreamChurnNoPlanCache(b *testing.B) {
	benchStreamRun(b, 0, benchChurnEvents(b))
}

// benchReplanMiss drives the replan miss path: every iteration throttles the
// last-capability processor (alternating factor so each apply is a real
// state change), invalidates its cost tables, and replans the window. With
// incremental replanning the partition DP resumes from the memoized prefix
// rows below the affected stage; without it every table refills from
// scratch. The Incremental/Full pair is the tentpole's headline saving —
// compare their ns/op under `make bench-miss`.
func benchReplanMiss(b *testing.B, incremental bool) {
	s := soc.Kirin990()
	opts := core.DefaultOptions()
	opts.IncrementalReplan = incremental
	pl, err := core.NewPlanner(s, opts)
	if err != nil {
		b.Fatal(err)
	}
	models := []*model.Model{
		model.MustByName(model.YOLOv4), model.MustByName(model.SqueezeNet),
		model.MustByName(model.BERT), model.MustByName(model.ResNet50),
	}
	if _, err := pl.PlanModels(models); err != nil { // fill the memo
		b.Fatal(err)
	}
	last := s.Processors[len(s.Processors)-1].ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		factor := 1.5
		if i%2 == 1 {
			factor = 2.0
		}
		affected, err := s.Apply(soc.Event{Kind: soc.EventThermalThrottle, Processor: last, Factor: factor})
		if err != nil {
			b.Fatal(err)
		}
		pl.InvalidateProcessors(affected...)
		if _, err := pl.PlanModels(models); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplanMissIncremental(b *testing.B) { benchReplanMiss(b, true) }
func BenchmarkReplanMissFull(b *testing.B)        { benchReplanMiss(b, false) }

// BenchmarkPlannerBeamWidth2 prunes the six-model candidate sweep to a
// two-wide beam (ε = 0.1) — compare against BenchmarkPlannerParallelism1 for
// the pruning saving on large windows. The cost caches are invalidated each
// iteration so the sweep itself, not the memo, is measured.
func BenchmarkPlannerBeamWidth2(b *testing.B) {
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT,
		model.ResNet50, model.VGG16, model.InceptionV4)
	opts := core.DefaultOptions()
	opts.Parallelism = 1
	opts.BeamWidth = 2
	opts.BeamEpsilon = 0.1
	pl, err := core.NewPlanner(s, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanProfiles(profs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionParametric(b *testing.B) {
	_, profs := benchProfiles(b, model.BERT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PartitionParametric(profs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleetRun drives b.N full fleet runs — 24 requests sharded across
// three mixed-preset devices under the given policy, plan caches warm after
// the first iteration. The delta against BenchmarkStreamSteadyState bounds
// what the fleet layer (routing, shard fan-out, merge, report) costs over a
// bare scheduler.
func benchFleetRun(b *testing.B, policyName string) {
	reg := obs.NewRegistry("bench")
	presets := []func() *soc.SoC{soc.Kirin990, soc.Snapdragon778G, soc.Snapdragon870}
	devices := make([]*fleet.Device, len(presets))
	for i, preset := range presets {
		popts := core.DefaultOptions()
		popts.PlanCache = 8
		scfg := stream.DefaultConfig()
		scfg.MaxWindow = 3
		scfg.MaxBatch = 1
		dev, err := fleet.NewDevice(fleet.DeviceSpec{
			Name: fmt.Sprintf("dev%d", i), SoC: preset(), Planner: popts, Stream: scfg,
		}, reg, nil)
		if err != nil {
			b.Fatal(err)
		}
		devices[i] = dev
	}
	policy, err := fleet.PolicyByName(policyName)
	if err != nil {
		b.Fatal(err)
	}
	fl, err := fleet.New(devices, fleet.Config{Policy: policy, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	var models []*model.Model
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet}
	for i := 0; i < 24; i++ {
		models = append(models, model.MustByName(names[i%len(names)]))
	}
	reqs := fleet.PoissonArrivals(models, time.Millisecond, 7, len(devices))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fl.Run(reqs, pipeline.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Handoffs != 0 {
			b.Fatalf("steady-state fleet run recorded %d handoffs", res.Handoffs)
		}
	}
}

func BenchmarkFleetSteadyState(b *testing.B)         { benchFleetRun(b, fleet.PolicyHash) }
func BenchmarkFleetSteadyStateAffinity(b *testing.B) { benchFleetRun(b, fleet.PolicyAffinity) }
