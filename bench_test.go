package hetero2pipe_test

import (
	"testing"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/experiments"
	"hetero2pipe/internal/lap"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// benchExperiment runs one paper artefact per iteration at quick scale, so
// `go test -bench .` regenerates every table and figure.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatalf("Run(%s): %v", id, err)
		}
	}
}

// One benchmark per paper table/figure (DESIGN.md §3 index).

func BenchmarkFig1SoloLatency(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2aQueueing(b *testing.B)       { benchExperiment(b, "fig2a") }
func BenchmarkFig2bCounters(b *testing.B)       { benchExperiment(b, "fig2b") }
func BenchmarkTable2Slowdown(b *testing.B)      { benchExperiment(b, "tab2") }
func BenchmarkEq1Ridge(b *testing.B)            { benchExperiment(b, "eq1") }
func BenchmarkFig7Overall(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8aAblationSearch(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8bComponents(b *testing.B)     { benchExperiment(b, "fig8b") }
func BenchmarkFig9MemoryTrace(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10IntraCluster(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig12BubbleLatency(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13Batching(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkSearchSpaceCounting(b *testing.B) { benchExperiment(b, "searchspace") }

// Micro-benchmarks of the planner's building blocks.

func benchProfiles(b *testing.B, names ...string) (*soc.SoC, []*profile.Profile) {
	b.Helper()
	s := soc.Kirin990()
	out := make([]*profile.Profile, len(names))
	for i, n := range names {
		p, err := profile.New(s, model.MustByName(n))
		if err != nil {
			b.Fatal(err)
		}
		out[i] = p
	}
	return s, out
}

func BenchmarkProfileConstruction(b *testing.B) {
	s := soc.Kirin990()
	m := model.MustByName(model.ResNet50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.New(s, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionDP(b *testing.B) {
	_, profs := benchProfiles(b, model.BERT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Partition(profs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionFastDP(b *testing.B) {
	_, profs := benchProfiles(b, model.BERT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PartitionFast(profs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerEndToEnd(b *testing.B) {
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanProfiles(profs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorContention(b *testing.B) {
	s, profs := benchProfiles(b, model.ResNet50, model.VGG16, model.SqueezeNet, model.InceptionV4)
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := pl.PlanProfiles(profs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarianLAP(b *testing.B) {
	const n = 32
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = float64((i*7+j*13)%97) + 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := lap.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandPlanning(b *testing.B) {
	s, profs := benchProfiles(b, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Band(s, profs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppBThermal(b *testing.B)          { benchExperiment(b, "appB") }
func BenchmarkClusterSplitAblation(b *testing.B) { benchExperiment(b, "clustersplit") }

func BenchmarkAppDBatching(b *testing.B) { benchExperiment(b, "appD") }

func BenchmarkEnergyExtension(b *testing.B) { benchExperiment(b, "energy") }

func BenchmarkSensitivitySweeps(b *testing.B) { benchExperiment(b, "sensitivity") }

func BenchmarkDepthAblation(b *testing.B) { benchExperiment(b, "depth") }

func BenchmarkPartitionParametric(b *testing.B) {
	_, profs := benchProfiles(b, model.BERT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.PartitionParametric(profs[0]); err != nil {
			b.Fatal(err)
		}
	}
}
