// Command apidump prints the exported API surface of the hetero2pipe facade
// package as normalised Go source: exported declarations only, doc comments
// and function bodies stripped, files in lexical order. The output is stable
// across formatting-only edits, so `make api` can diff it against the
// committed api.txt baseline and fail the build on any unreviewed public-API
// change.
//
// Usage: apidump [package-dir]   (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := run(dir, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "apidump: %v\n", err)
		os.Exit(1)
	}
}

func run(dir string, out *os.File) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	for _, name := range names {
		pkg := pkgs[name]
		fmt.Fprintf(out, "package %s\n", name)
		files := make([]string, 0, len(pkg.Files))
		for path := range pkg.Files {
			files = append(files, path)
		}
		sort.Strings(files)
		for _, path := range files {
			file := pkg.Files[path]
			if !ast.FileExports(file) {
				continue
			}
			fmt.Fprintf(out, "\n// %s\n", filepath.Base(path))
			for _, decl := range file.Decls {
				stripDecl(decl)
				fmt.Fprintln(out)
				if err := cfg.Fprint(out, fset, decl); err != nil {
					return err
				}
				fmt.Fprintln(out)
			}
		}
	}
	return nil
}

// stripDecl removes everything the API contract does not cover: function
// bodies, doc comments and import declarations' grouping parens are left as
// parsed (imports never survive FileExports, so only func/gen decls arrive).
func stripDecl(decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		d.Body = nil
		d.Doc = nil
	case *ast.GenDecl:
		d.Doc = nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				s.Doc, s.Comment = nil, nil
				stripStruct(s.Type)
			case *ast.ValueSpec:
				s.Doc, s.Comment = nil, nil
			}
		}
	}
}

// stripStruct drops field docs and trailing comments inside struct and
// interface types so comment edits never churn the baseline.
func stripStruct(expr ast.Expr) {
	switch t := expr.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			f.Doc, f.Comment = nil, nil
		}
	case *ast.InterfaceType:
		for _, f := range t.Methods.List {
			f.Doc, f.Comment = nil, nil
		}
	}
}
