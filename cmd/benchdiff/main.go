// Command benchdiff compares two benchmark archives produced by
// cmd/benchjson and reports per-benchmark deltas in ns/op, bytes/op and
// allocs/op:
//
//	go run ./cmd/benchdiff BENCH_old.json BENCH_new.json
//
// Repeated runs of the same benchmark (-count > 1) are collapsed to their
// best (minimum) ns/op, bytes/op and allocs/op before comparison — the best run is
// the least noisy estimate of the code's cost. The exit status is non-zero
// when any benchmark regresses by more than the threshold (default 10%),
// so `make bench-diff` doubles as a CI overhead guard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// benchResult mirrors cmd/benchjson's output schema.
type benchResult struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// best is one benchmark's collapsed cost: the minimum observed ns/op,
// bytes/op and allocs/op across repetitions.
type best struct {
	ns     float64
	bytes  int64
	allocs int64
}

// delta is one compared benchmark row.
type delta struct {
	name             string
	oldNs, newNs     float64
	nsPct            float64 // (new-old)/old * 100
	oldBytes         int64
	newBytes         int64
	bytesPct         float64
	oldAllocs        int64
	newAllocs        int64
	allocsPct        float64
	missingInOld     bool
	missingInNew     bool
	regressed        bool
	regressionDetail string
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold PCT] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldSet, err := loadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newSet, err := loadFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	deltas := compare(oldSet, newSet, *threshold)
	printReport(os.Stdout, deltas, *threshold)
	for _, d := range deltas {
		if d.regressed {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func loadFile(path string) (map[string]best, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}

// load parses a benchjson archive and collapses repetitions to their best
// run per benchmark name.
func load(r io.Reader) (map[string]best, error) {
	var results []benchResult
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, err
	}
	set := make(map[string]best, len(results))
	for _, b := range results {
		cur, seen := set[b.Name]
		if !seen {
			set[b.Name] = best{ns: b.NsPerOp, bytes: b.BytesPerOp, allocs: b.AllocsPerOp}
			continue
		}
		if b.NsPerOp < cur.ns {
			cur.ns = b.NsPerOp
		}
		if b.BytesPerOp < cur.bytes {
			cur.bytes = b.BytesPerOp
		}
		if b.AllocsPerOp < cur.allocs {
			cur.allocs = b.AllocsPerOp
		}
		set[b.Name] = cur
	}
	return set, nil
}

// compare joins the two sets by benchmark name. Benchmarks present on only
// one side are reported but never count as regressions — new benchmarks
// appear as code grows, and renames should not fail the guard.
func compare(oldSet, newSet map[string]best, threshold float64) []delta {
	names := make([]string, 0, len(oldSet)+len(newSet))
	seen := map[string]bool{}
	for n := range oldSet {
		names = append(names, n)
		seen[n] = true
	}
	for n := range newSet {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	deltas := make([]delta, 0, len(names))
	for _, name := range names {
		o, inOld := oldSet[name]
		n, inNew := newSet[name]
		d := delta{name: name, missingInOld: !inOld, missingInNew: !inNew}
		if inOld {
			d.oldNs, d.oldBytes, d.oldAllocs = o.ns, o.bytes, o.allocs
		}
		if inNew {
			d.newNs, d.newBytes, d.newAllocs = n.ns, n.bytes, n.allocs
		}
		if inOld && inNew {
			d.nsPct = pctChange(o.ns, n.ns)
			d.bytesPct = pctChange(float64(o.bytes), float64(n.bytes))
			d.allocsPct = pctChange(float64(o.allocs), float64(n.allocs))
			switch {
			case d.nsPct > threshold:
				d.regressed = true
				d.regressionDetail = fmt.Sprintf("ns/op +%.1f%%", d.nsPct)
			case d.bytesPct > threshold:
				d.regressed = true
				d.regressionDetail = fmt.Sprintf("bytes/op +%.1f%%", d.bytesPct)
			case d.allocsPct > threshold:
				d.regressed = true
				d.regressionDetail = fmt.Sprintf("allocs/op +%.1f%%", d.allocsPct)
			}
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// pctChange is the relative change from old to new in percent; a zero old
// value with a non-zero new value reports +Inf-like 100% per unit to stay
// finite and still trip the threshold.
func pctChange(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old * 100
}

func printReport(w io.Writer, deltas []delta, threshold float64) {
	fmt.Fprintf(w, "%-52s %14s %14s %8s %10s %10s %8s %8s %8s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ns Δ%", "old B/op", "new B/op", "B Δ%", "old alc", "new alc", "alc Δ%")
	regressions := 0
	for _, d := range deltas {
		switch {
		case d.missingInOld:
			fmt.Fprintf(w, "%-52s %14s %14.1f %8s %10s %10d %8s %8s %8d %8s\n",
				d.name, "-", d.newNs, "new", "-", d.newBytes, "new", "-", d.newAllocs, "new")
		case d.missingInNew:
			fmt.Fprintf(w, "%-52s %14.1f %14s %8s %10d %10s %8s %8d %8s %8s\n",
				d.name, d.oldNs, "-", "gone", d.oldBytes, "-", "gone", d.oldAllocs, "-", "gone")
		default:
			mark := ""
			if d.regressed {
				mark = "  << REGRESSION " + d.regressionDetail
				regressions++
			}
			fmt.Fprintf(w, "%-52s %14.1f %14.1f %+7.1f%% %10d %10d %+7.1f%% %8d %8d %+7.1f%%%s\n",
				d.name, d.oldNs, d.newNs, d.nsPct, d.oldBytes, d.newBytes, d.bytesPct, d.oldAllocs, d.newAllocs, d.allocsPct, mark)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond %.0f%%\n", regressions, threshold)
	} else {
		fmt.Fprintf(w, "\nno regressions beyond %.0f%%\n", threshold)
	}
}
