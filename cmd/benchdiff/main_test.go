package main

import (
	"math"
	"strings"
	"testing"
)

func loadT(t *testing.T, doc string) map[string]best {
	t.Helper()
	set, err := load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestLoadCollapsesRepetitionsToBest(t *testing.T) {
	set := loadT(t, `[
		{"name":"BenchmarkPlan-8","runs":100,"ns_per_op":1500,"bytes_per_op":900,"allocs_per_op":12},
		{"name":"BenchmarkPlan-8","runs":100,"ns_per_op":1200,"bytes_per_op":820,"allocs_per_op":10},
		{"name":"BenchmarkPlan-8","runs":100,"ns_per_op":1350,"bytes_per_op":850,"allocs_per_op":11}
	]`)
	b, ok := set["BenchmarkPlan-8"]
	if !ok {
		t.Fatal("BenchmarkPlan-8 not loaded")
	}
	if b.ns != 1200 {
		t.Errorf("best ns/op %.0f, want the minimum 1200", b.ns)
	}
	if b.bytes != 820 {
		t.Errorf("best bytes/op %d, want the minimum 820", b.bytes)
	}
	if b.allocs != 10 {
		t.Errorf("best allocs/op %d, want the minimum 10", b.allocs)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"allocs_per_op":5}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1150,"allocs_per_op":5}]`)
	deltas := compare(oldSet, newSet, 10)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(deltas))
	}
	d := deltas[0]
	if !d.regressed {
		t.Errorf("+15%% ns/op not flagged as a regression: %+v", d)
	}
	if math.Abs(d.nsPct-15) > 1e-9 {
		t.Errorf("nsPct %.2f, want 15", d.nsPct)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"allocs_per_op":5}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1099,"allocs_per_op":5}]`)
	if d := compare(oldSet, newSet, 10)[0]; d.regressed {
		t.Errorf("+9.9%% flagged as regression under a 10%% threshold: %+v", d)
	}
}

func TestCompareFlagsAllocsRegression(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"allocs_per_op":10}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"allocs_per_op":12}]`)
	d := compare(oldSet, newSet, 10)[0]
	if !d.regressed {
		t.Errorf("+20%% allocs/op not flagged: %+v", d)
	}
	if !strings.Contains(d.regressionDetail, "allocs/op") {
		t.Errorf("regression detail %q does not name allocs/op", d.regressionDetail)
	}
}

func TestCompareFlagsBytesRegression(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"bytes_per_op":1000,"allocs_per_op":10}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"bytes_per_op":1200,"allocs_per_op":10}]`)
	d := compare(oldSet, newSet, 10)[0]
	if !d.regressed {
		t.Errorf("+20%% bytes/op not flagged: %+v", d)
	}
	if !strings.Contains(d.regressionDetail, "bytes/op") {
		t.Errorf("regression detail %q does not name bytes/op", d.regressionDetail)
	}
}

func TestCompareBytesWithinThresholdPasses(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"bytes_per_op":1000,"allocs_per_op":10}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"bytes_per_op":1090,"allocs_per_op":10}]`)
	if d := compare(oldSet, newSet, 10)[0]; d.regressed {
		t.Errorf("+9%% bytes/op flagged under a 10%% threshold: %+v", d)
	}
}

func TestCompareImprovementIsNotRegression(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"allocs_per_op":10}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":500,"allocs_per_op":2}]`)
	if d := compare(oldSet, newSet, 10)[0]; d.regressed {
		t.Errorf("an improvement was flagged as a regression: %+v", d)
	}
}

func TestCompareMissingBenchmarksNeverRegress(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkGone-8","runs":1,"ns_per_op":100,"allocs_per_op":1}]`)
	newSet := loadT(t, `[{"name":"BenchmarkNew-8","runs":1,"ns_per_op":9999,"allocs_per_op":99}]`)
	deltas := compare(oldSet, newSet, 10)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		if d.regressed {
			t.Errorf("one-sided benchmark %s flagged as regression", d.name)
		}
	}
	if !deltas[0].missingInNew || deltas[0].name != "BenchmarkGone-8" {
		t.Errorf("expected BenchmarkGone-8 missing-in-new first, got %+v", deltas[0])
	}
	if !deltas[1].missingInOld || deltas[1].name != "BenchmarkNew-8" {
		t.Errorf("expected BenchmarkNew-8 missing-in-old second, got %+v", deltas[1])
	}
}

func TestPctChangeZeroOld(t *testing.T) {
	if got := pctChange(0, 0); got != 0 {
		t.Errorf("pctChange(0,0) = %v, want 0", got)
	}
	if got := pctChange(0, 5); !math.IsInf(got, 1) {
		t.Errorf("pctChange(0,5) = %v, want +Inf (always trips the threshold)", got)
	}
}

func TestPrintReportMarksRegressions(t *testing.T) {
	oldSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":1000,"allocs_per_op":5}]`)
	newSet := loadT(t, `[{"name":"BenchmarkX-8","runs":1,"ns_per_op":2000,"allocs_per_op":5}]`)
	var sb strings.Builder
	printReport(&sb, compare(oldSet, newSet, 10), 10)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("report lacks the REGRESSION marker:\n%s", out)
	}
	if !strings.Contains(out, "1 benchmark(s) regressed") {
		t.Errorf("report lacks the regression summary:\n%s", out)
	}
}
