// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one element per benchmark line:
//
//	go test -bench . -benchmem . | go run ./cmd/benchjson > bench.json
//
// Repeated runs of the same benchmark (-count > 1) stay as separate
// elements so downstream tooling can compute variance.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func convert(in io.Reader, out io.Writer) error {
	results := []benchResult{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one `Benchmark<Name>-P  N  x ns/op [y B/op  z allocs/op]`
// line; anything else (headers, PASS, ok lines) reports ok=false.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Runs: runs}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
		default:
			continue // unknown unit (e.g. custom metrics): skip the pair
		}
		if err != nil {
			return benchResult{}, false
		}
	}
	if r.NsPerOp == 0 && r.BytesPerOp == 0 && r.AllocsPerOp == 0 {
		return benchResult{}, false
	}
	return r, true
}
