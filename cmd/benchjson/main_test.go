package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hetero2pipe
cpu: Some CPU @ 2.50GHz
BenchmarkPlanColdCache-8   	      10	  11683775 ns/op	 1048576 B/op	    2048 allocs/op
BenchmarkPlanWarmCache-8   	     100	    926113 ns/op	   65536 B/op	     128 allocs/op
BenchmarkPlanWarmCache-8   	     102	    917004 ns/op	   65012 B/op	     127 allocs/op
BenchmarkExecute-8         	     500	    210042 ns/op
PASS
ok  	hetero2pipe	4.021s
`

func TestObsBenchJSONConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var results []benchResult
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4 (repeated -count runs kept separate)", len(results))
	}
	first := results[0]
	if first.Name != "BenchmarkPlanColdCache-8" || first.Runs != 10 ||
		first.NsPerOp != 11683775 || first.BytesPerOp != 1048576 || first.AllocsPerOp != 2048 {
		t.Errorf("first result mismatch: %+v", first)
	}
	last := results[3]
	if last.Name != "BenchmarkExecute-8" || last.NsPerOp != 210042 || last.BytesPerOp != 0 {
		t.Errorf("no-benchmem line mismatch: %+v", last)
	}
}

func TestObsBenchJSONRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	hetero2pipe	4.021s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"Benchmark only three",
	} {
		if r, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, r)
		}
	}
}

func TestObsBenchJSONEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty input produced %q, want []", got)
	}
}
