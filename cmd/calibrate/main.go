// Command calibrate prints the contention footprints of every zoo model and
// the co-execution slowdowns of the paper's reference pairs next to the
// published numbers — the tool used to tune the slowdown-model constants in
// internal/contention and internal/soc.
package main

import (
	"fmt"
	"sort"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/perf"
	"hetero2pipe/internal/soc"
)

func main() {
	k := soc.Kirin990()
	big := k.Processor("cpu-big")
	gpu := k.Processor("gpu")
	npu := k.Processor("npu")
	type row struct {
		name string
		fp   contention.Footprint
		gfp  contention.Footprint
		c    perf.Counters
	}
	var rows []row
	for _, m := range model.All() {
		rows = append(rows, row{m.Name, contention.Measure(big, m), contention.Measure(gpu, m), perf.Profile(big, m)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].fp.DemandGBps > rows[j].fp.DemandGBps })
	fmt.Println("=== footprints on Kirin990 (sorted by CPU_B demand) ===")
	for _, r := range rows {
		fmt.Printf("%-12s CPU: d=%5.2f s=%.2f | GPU: d=%5.2f s=%.2f | IPC=%.2f miss=%.2f stall=%.2f\n",
			r.name, r.fp.DemandGBps, r.fp.Sensitivity, r.gfp.DemandGBps, r.gfp.Sensitivity,
			r.c.IPC, r.c.CacheMissRate, r.c.StalledBackend)
	}
	pair := func(label string, pa *soc.Processor, ma string, pb *soc.Processor, mb string, want string) {
		a, b := contention.PairSlowdowns(k.BusBandwidthGBps,
			contention.Measure(pa, model.MustByName(ma)),
			contention.Measure(pb, model.MustByName(mb)))
		fmt.Printf("%-28s %5.1f%% / %5.1f%%   (paper %s)\n", label, a*100, b*100, want)
	}
	fmt.Println()
	pair("YOLO(CPU)+BERT(GPU)", big, model.YOLOv4, gpu, model.BERT, "18/21")
	pair("YOLO(CPU)+ResNet(NPU)", big, model.YOLOv4, npu, model.ResNet50, "3/4.5")
	pair("YOLO(GPU)+ResNet(NPU)", gpu, model.YOLOv4, npu, model.ResNet50, "2/2.3")
	pair("SqueezeNet(CPU)+BERT(GPU)", big, model.SqueezeNet, gpu, model.BERT, "26/11")
	pair("ViT(CPU)+BERT(GPU)", big, model.ViT, gpu, model.BERT, "11/9")
	pair("BERT(CPU)+ViT(GPU)", big, model.BERT, gpu, model.ViT, "10.8/9.4")
}
