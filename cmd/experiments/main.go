// Command experiments regenerates the paper's tables and figures as text
// reports. With no flags it runs everything at paper scale; -run selects a
// single experiment, -quick shrinks workloads for a fast pass.
//
// Usage:
//
//	experiments [-run fig7] [-quick] [-combos 100] [-seed 2025] [-list]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"hetero2pipe/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only   = fs.String("run", "", "run only this experiment ID (see -list)")
		quick  = fs.Bool("quick", false, "reduced workload sizes")
		combos = fs.Int("combos", 0, "random combinations for fig7/fig8 (default: 100, or 8 with -quick)")
		seed   = fs.Int64("seed", 2025, "random seed")
		list   = fs.Bool("list", false, "list experiment IDs and exit")
		csvDir = fs.String("csv", "", "also write each experiment's metrics as <dir>/<id>.csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-12s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *combos > 0 {
		cfg.Combos = *combos
	}

	ids := experiments.IDs()
	if *only != "" {
		ids = []string{*only}
	}
	for _, id := range ids {
		report, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(report.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, report); err != nil {
				return fmt.Errorf("%s: csv: %w", id, err)
			}
		}
	}
	return nil
}

// writeCSV dumps a report's metrics as "<dir>/<id>.csv" with a
// metric,value header.
func writeCSV(dir string, report *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, report.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"metric", "value"}); err != nil {
		return err
	}
	keys := make([]string, 0, len(report.Metrics))
	for k := range report.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := w.Write([]string{k, strconv.FormatFloat(report.Metrics[k], 'g', -1, 64)}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
