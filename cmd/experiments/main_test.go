package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-quick", "-run", "fig10"}); err != nil {
		t.Fatalf("run fig10: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "searchspace", "-csv", dir}); err != nil {
		t.Fatalf("run with -csv: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "searchspace.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("csv empty")
	}
}

func TestRunCombosOverride(t *testing.T) {
	if err := run([]string{"-quick", "-combos", "2", "-run", "fig8b"}); err != nil {
		t.Fatalf("run with -combos: %v", err)
	}
}
