// Command h2pipe plans and simulates a multi-DNN pipeline on a chosen SoC
// preset: it runs the Hetero²Pipe planner over the requested models, prints
// the resulting schedule, executes it under the co-execution slowdown model
// and reports latency, throughput and the speedup over serial CPU execution.
//
// Usage:
//
//	h2pipe -soc Kirin990 -models YOLOv4,BERT,SqueezeNet,ResNet50
//
// Online serving mode replays a Poisson arrival stream with per-window
// planning, optionally under injected degradation events:
//
//	h2pipe -stream -gap 10ms -events offline:npu@40ms,throttle:gpu@10ms:1.8
//
// Ctrl-C cancels a run cleanly (the planner and executor are
// context-aware); the partial state is discarded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/fleet"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/obs/server"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/trace"
	"hetero2pipe/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "h2pipe:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("h2pipe", flag.ContinueOnError)
	var (
		socName    = fs.String("soc", "Kirin990", "SoC preset: Kirin990, Snapdragon778G, Snapdragon870")
		socJSON    = fs.String("soc-json", "", "load a custom SoC description from a JSON file (overrides -soc)")
		modelsFlag = fs.String("models", "YOLOv4,SqueezeNet,BERT,ResNet50", "comma-separated zoo model names")
		listModels = fs.Bool("list-models", false, "list zoo models and exit")
		noMit      = fs.Bool("no-mitigation", false, "disable contention mitigation")
		noSteal    = fs.Bool("no-worksteal", false, "disable work stealing")
		noTail     = fs.Bool("no-tailopt", false, "disable tail optimisation")
		showPlan   = fs.Bool("plan", true, "print the per-request stage assignment")
		ganttWidth = fs.Int("gantt", 72, "ASCII timeline width (0 disables)")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event JSON file of the execution")
		htmlOut    = fs.String("html", "", "write a standalone HTML report (SVG Gantt + metrics)")
		compare    = fs.Bool("compare", false, "run every scheme (MNN, Pipe-it, Band, No-C/T, H²P) and print a comparison table")
		streamMode = fs.Bool("stream", false, "online serving: Poisson arrivals with per-window planning")
		eventsFlag = fs.String("events", "", "degradation events kind[:proc]@at[:factor], comma-separated (e.g. offline:npu@40ms,throttle:gpu@10ms:1.8); applied on the stream clock, or immediately without -stream")
		gap        = fs.Duration("gap", 10*time.Millisecond, "mean inter-arrival gap in -stream mode")
		window     = fs.Int("window", 8, "max requests per planning window in -stream mode")
		fleetN     = fs.Int("fleet", 0, "shard the -stream run across N devices (device 0 is -soc, the rest cycle the mobile presets; 0 disables)")
		policyName = fs.String("policy", "hash", "fleet routing policy: hash, least-sojourn or affinity")
		planCache  = fs.Int("plan-cache", 0, "memoize up to N whole plans keyed by SoC epoch + window signature (0 disables); steady-state windows skip the planner entirely")
		noIncr     = fs.Bool("no-incremental", false, "disable incremental replanning (always refill every partition DP from scratch after degradation events)")
		beamWidth  = fs.Int("beam", 0, "beam width: prune the candidate sweep to the N best-proxy orderings, escalating until within (1+beam-eps) of the exact makespan (0 = exact sweep)")
		beamEps    = fs.Float64("beam-eps", 0, "beam regret tolerance epsilon: escalation stops once the best plan is provably within (1+eps)x of the exact sweep's makespan")
		planDL     = fs.Duration("plan-deadline", 0, "wall-clock budget per window's candidate sweep; on expiry the best plan priced so far wins (voids determinism and the beam bound; 0 disarms)")
		objFlag    = fs.String("objective", "makespan", "planning objective: makespan (single min-latency plan) or frontier (Pareto frontier over makespan/throughput/energy/peak memory)")
		sloFlag    = fs.String("slo", "", "SLO class picking the frontier point under -objective frontier: latency-critical, balanced, battery-saver or custom:w,w,w,w (weights for makespan,throughput,energy,memory; default latency-critical)")
		report     = fs.Bool("report", false, "print a structured JSON run report on stdout")
		metricsOut = fs.String("metrics", "", "write the metrics registry in Prometheus text format to a file")
		serveAddr  = fs.String("serve", "", "serve live observability HTTP (/metrics, /vars, /debug/pprof, /healthz, /readyz, /windows, /spans) on this address; keeps serving after the run until Ctrl-C")
		logLevel   = fs.String("log-level", "", "structured logging to stderr at this level: debug, info, warn or error (empty disables)")
		spansOut   = fs.String("spans", "", "record a span trace of the run and write it as OTLP JSON to this file")
		reqTrace   = fs.String("request-trace", "", "arm per-request distributed tracing and write the request timelines (phase events + sojourn decomposition) as JSON to this file; also serves /requests under -serve")
		sloBudget  = fs.String("slo-budget", "", "SLO error budgets class=target, comma-separated (e.g. latency-critical=0.01,balanced=0.05); prints per-class burn rates after the run and serves /slo under -serve")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listModels {
		for _, n := range append(model.Names(), model.ExtraNames()...) {
			m := model.MustByName(n)
			fmt.Printf("%-12s %4d layers %8.2f GFLOPs %7.1f MB weights\n",
				n, m.NumLayers(), m.TotalFLOPs()/1e9, float64(m.TotalWeightBytes())/1e6)
		}
		return nil
	}
	var s *soc.SoC
	if *socJSON != "" {
		data, err := os.ReadFile(*socJSON)
		if err != nil {
			return err
		}
		s = new(soc.SoC)
		if err := json.Unmarshal(data, s); err != nil {
			return fmt.Errorf("parsing %s: %w", *socJSON, err)
		}
	} else {
		s = soc.PresetByName(*socName)
		if s == nil {
			return fmt.Errorf("unknown SoC preset %q", *socName)
		}
	}
	names := strings.Split(*modelsFlag, ",")
	models, err := workload.Instantiate(names)
	if err != nil {
		return err
	}

	if *compare {
		return runComparison(s, models)
	}

	events, err := soc.ParseEvents(*eventsFlag)
	if err != nil {
		return err
	}
	objective, err := core.ParseObjective(*objFlag)
	if err != nil {
		return err
	}
	slo, err := core.ParseSLOClass(*sloFlag)
	if err != nil {
		return err
	}

	opts := core.DefaultOptions()
	opts.Mitigation = !*noMit
	opts.WorkStealing = !*noSteal
	opts.TailOptimization = !*noTail
	opts.PlanCache = *planCache
	opts.IncrementalReplan = !*noIncr
	opts.BeamWidth = *beamWidth
	opts.BeamEpsilon = *beamEps
	opts.AnytimeDeadline = *planDL
	var reg *obs.Registry
	if *metricsOut != "" || *serveAddr != "" {
		reg = obs.NewRegistry("h2pipe")
		opts.Metrics = reg
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		return err
	}
	opts.Logger = logger
	var rec *obs.SpanRecorder
	if *spansOut != "" || *serveAddr != "" {
		rec = obs.NewSpanRecorder(0)
		ctx = obs.ContextWithRecorder(ctx, rec)
	}
	feed := stream.NewFeed(0)
	var traces *stream.TraceStore
	if *reqTrace != "" {
		traces = stream.NewTraceStore(0, 0)
	}
	budgets, err := parseSLOBudgets(*sloBudget)
	if err != nil {
		return err
	}
	var sloMon *obs.SLOMonitor
	if len(budgets) > 0 {
		sloMon = obs.NewSLOMonitor(0, budgets)
	}

	// Fleet mode builds its devices (and their feeds) before the server so
	// the /fleet endpoint and device-0 feed can be wired in.
	var fl *fleet.Fleet
	if *fleetN > 0 {
		if !*streamMode {
			return fmt.Errorf("-fleet requires -stream")
		}
		scfg := stream.DefaultConfig()
		scfg.MaxWindow = *window
		scfg.Events = events
		scfg.Objective = objective
		scfg.SLO = slo
		scfg.RequestTracing = traces != nil
		scfg.Traces = traces
		scfg.SLOMonitor = sloMon
		fl, err = buildFleet(s, *fleetN, *policyName, opts, scfg, reg, logger, rec)
		if err != nil {
			return err
		}
		feed = fl.Devices()[0].Feed()
	}

	// The observability server runs alongside the workload and keeps serving
	// after it completes, so the run's metrics, spans and windows stay
	// curl-able until the process is interrupted.
	srvDone := make(chan error, 1)
	waitServe := func() error { return nil }
	if *serveAddr != "" {
		go func() {
			srvDone <- server.Serve(ctx, *serveAddr, server.Config{
				Metrics: reg,
				Spans:   rec,
				Feed:    feed,
				Fleet:   fl,
				Traces:  traces,
				SLO:     sloMon,
				Service: s.Name,
			}, func(a net.Addr) {
				fmt.Printf("observability server on http://%s\n", a)
			})
		}()
		waitServe = func() error {
			fmt.Println("observability server still serving; Ctrl-C to exit")
			return <-srvDone
		}
	}

	if fl != nil {
		if err := runFleet(ctx, fl, models, *gap, streamOutputs{
			report:      *report,
			metricsOut:  *metricsOut,
			spansOut:    *spansOut,
			reqTraceOut: *reqTrace,
			registry:    reg,
			logger:      logger,
			spans:       rec,
			sloMon:      sloMon,
			service:     s.Name,
		}); err != nil {
			return err
		}
		return waitServe()
	}

	planner, err := core.NewPlanner(s, opts)
	if err != nil {
		return err
	}
	if *streamMode {
		if err := runStream(ctx, planner, models, events, *gap, *window, objective, slo, streamOutputs{
			report:      *report,
			metricsOut:  *metricsOut,
			traceOut:    *traceOut,
			spansOut:    *spansOut,
			reqTraceOut: *reqTrace,
			registry:    reg,
			logger:      logger,
			feed:        feed,
			spans:       rec,
			traces:      traces,
			sloMon:      sloMon,
			service:     s.Name,
		}); err != nil {
			return err
		}
		return waitServe()
	}
	// Without -stream, events apply immediately (their timestamps are
	// ignored): plan against the already-degraded SoC.
	for _, ev := range events {
		affected, err := s.Apply(ev)
		if err != nil {
			return err
		}
		planner.InvalidateProcessors(affected...)
		fmt.Printf("applied %v\n", ev)
	}
	planStart := time.Now()
	var plan *core.Plan
	if objective == core.ObjectiveFrontier {
		f, err := planner.PlanFrontierModelsContext(ctx, models)
		if err != nil {
			return err
		}
		pt := f.Select(slo)
		plan = pt.Plan
		printFrontier(f, pt, slo)
	} else {
		if plan, err = planner.PlanModelsContext(ctx, models); err != nil {
			return err
		}
	}
	planWall := time.Since(planStart)
	execOpts := pipeline.DefaultOptions()
	execOpts.Metrics = reg
	execOpts.Logger = logger
	res, err := pipeline.ExecuteContext(ctx, plan.Schedule, execOpts)
	if err != nil {
		return err
	}
	if *spansOut != "" {
		if err := writeSpans(*spansOut, rec, s.Name); err != nil {
			return err
		}
	}

	if *report {
		rep := offlineReport(s, planner, res, planWall)
		raw, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			return err
		}
	}

	fmt.Printf("SoC: %s (%d processors)\n", s.Name, s.NumProcessors())
	if *showPlan {
		fmt.Println("\nplanned pipeline (requests in execution order):")
		for i := range plan.Schedule.Profiles {
			m := plan.Schedule.Profiles[i].Model()
			fmt.Printf("  %2d. %-12s [%s, intensity %.2f GB/s] stages:", i+1, m.Name,
				plan.Classes[i], plan.Intensities[i])
			for k := 0; k < plan.Schedule.NumStages(); k++ {
				r := plan.Schedule.Stages[i][k]
				if r.Empty() {
					continue
				}
				fmt.Printf(" %s=[%d..%d]", s.Processors[k].ID, r.From, r.To)
			}
			fmt.Println()
		}
		fmt.Println("\nexecution timeline (first 12 slices):")
		for j, e := range res.Timeline {
			if j >= 12 {
				fmt.Printf("  ... %d more\n", len(res.Timeline)-12)
				break
			}
			m := plan.Schedule.Profiles[e.Request].Model()
			fmt.Printf("  %-12s on %-9s %8.2fms → %8.2fms (slowdown %.2f×)\n",
				m.Name, s.Processors[e.Stage].ID,
				e.Start.Seconds()*1e3, e.End.Seconds()*1e3, e.Slowdown)
		}
	}

	// Serial MNN reference.
	profiles := plan.Schedule.Profiles
	serialSched, err := baseline.SerialMNN(s, profiles)
	if err != nil {
		return err
	}
	serial, err := pipeline.Execute(serialSched, pipeline.DefaultOptions())
	if err != nil {
		return err
	}

	if *ganttWidth > 0 {
		fmt.Println()
		fmt.Print(trace.Gantt(plan.Schedule, res, *ganttWidth))
	}

	fmt.Printf("\nlatency:            %8.2f ms\n", res.Makespan.Seconds()*1e3)
	fmt.Printf("throughput:         %8.2f inferences/s\n", res.Throughput())
	fmt.Printf("measured bubbles:   %8.2f ms\n", res.BubbleTime.Seconds()*1e3)
	fmt.Printf("peak memory:        %8.1f MB\n", float64(res.PeakMemoryBytes)/1e6)
	fmt.Printf("energy:             %8.2f J (%.2f J/inference)\n",
		res.EnergyJoules, res.EnergyPerInference())
	fmt.Printf("serial CPU latency: %8.2f ms  (speedup %.2f×, energy %.2f J)\n",
		serial.Makespan.Seconds()*1e3,
		serial.Makespan.Seconds()/res.Makespan.Seconds(),
		serial.EnergyJoules)

	if *traceOut != "" {
		data, err := trace.ChromeTrace(plan.Schedule, res)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
	if *htmlOut != "" {
		title := fmt.Sprintf("Hetero²Pipe on %s: %s", s.Name, *modelsFlag)
		page, err := trace.HTMLReport(title, plan.Schedule, res)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*htmlOut, page, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote HTML report to %s\n", *htmlOut)
	}
	return waitServe()
}

// buildLogger maps a -log-level value to a text slog.Logger on stderr, or
// nil (logging disabled) for the empty string.
func buildLogger(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// writeSpans dumps the span ring as an OTLP/JSON trace document.
func writeSpans(path string, rec *obs.SpanRecorder, service string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteOTLP(f, rec, service); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote OTLP spans to %s\n", path)
	return nil
}

// sloName renders the class governing frontier selection; the unset class
// falls back to latency-critical, matching Frontier.Select.
func sloName(slo core.SLOClass) string {
	if slo.Kind == core.SLOUnset {
		return core.SLOLatencyCritical.String()
	}
	return slo.String()
}

// printFrontier lists the Pareto frontier from -objective frontier, one line
// per non-dominated point, marking the point the -slo class selected.
func printFrontier(f *core.Frontier, selected *core.FrontierPoint, slo core.SLOClass) {
	fmt.Printf("Pareto frontier: %d non-dominated points\n", f.Size())
	for i := range f.Points {
		pt := &f.Points[i]
		mark := ""
		if selected != nil && pt.Candidate == selected.Candidate {
			mark = fmt.Sprintf("  ← selected (%s)", sloName(slo))
		}
		o := pt.Objective
		fmt.Printf("  %2d. makespan %8.2fms  throughput %6.2f req/s  energy %7.2fJ  peak %7.1fMB%s\n",
			i+1, o.Makespan.Seconds()*1e3, o.Throughput, o.EnergyJoules,
			float64(o.PeakMemoryBytes)/(1<<20), mark)
	}
}

// streamOutputs carries the observability outputs requested on the command
// line into runStream.
type streamOutputs struct {
	report      bool
	metricsOut  string
	traceOut    string
	spansOut    string
	reqTraceOut string
	registry    *obs.Registry
	logger      *slog.Logger
	feed        *stream.Feed
	spans       *obs.SpanRecorder
	traces      *stream.TraceStore
	sloMon      *obs.SLOMonitor
	service     string
}

// runStream replays the models as a Poisson arrival stream with per-window
// planning and prints the online/degradation statistics.
func runStream(ctx context.Context, planner *core.Planner, models []*model.Model, events []soc.Event, gap time.Duration, window int, objective core.ObjectiveMode, slo core.SLOClass, out streamOutputs) error {
	cfg := stream.DefaultConfig()
	cfg.MaxWindow = window
	cfg.Events = events
	cfg.Metrics = out.registry
	cfg.CollectWindowTraces = out.traceOut != ""
	cfg.Logger = out.logger
	cfg.Feed = out.feed
	cfg.Objective = objective
	cfg.SLO = slo
	cfg.RequestTracing = out.traces != nil || out.reqTraceOut != ""
	cfg.Traces = out.traces
	cfg.SLOMonitor = out.sloMon
	cfg.DeviceName = out.service
	sched, err := stream.NewScheduler(planner, cfg)
	if err != nil {
		return err
	}
	requests := stream.PoissonArrivals(models, gap, 7)
	execOpts := pipeline.DefaultOptions()
	execOpts.Logger = out.logger
	res, err := sched.RunContext(ctx, requests, execOpts)
	if err != nil {
		return err
	}
	if out.spansOut != "" {
		if err := writeSpans(out.spansOut, out.spans, out.service); err != nil {
			return err
		}
	}
	if out.report {
		raw, err := res.Report.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
	}
	if out.metricsOut != "" {
		if err := writeMetrics(out.metricsOut, out.registry); err != nil {
			return err
		}
	}
	if out.traceOut != "" {
		data, err := trace.StreamChrome(res.WindowTraces)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out.traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome stream trace to %s\n", out.traceOut)
	}
	if out.reqTraceOut != "" {
		if err := writeTimelines(out.reqTraceOut, res.Timelines); err != nil {
			return err
		}
	}
	fmt.Printf("online run: %d requests, mean gap %v\n", len(requests), gap)
	if objective == core.ObjectiveFrontier {
		fmt.Printf("objective:          frontier (default SLO %s)\n", sloName(slo))
	}
	fmt.Printf("makespan:           %8.2f ms\n", res.Makespan.Seconds()*1e3)
	fmt.Printf("mean sojourn:       %8.2f ms  (p95 %.2f ms)\n",
		res.MeanSojourn().Seconds()*1e3, res.P95Sojourn().Seconds()*1e3)
	fmt.Printf("planning windows:   %8d\n", res.Windows)
	fmt.Printf("cost cache:         %8d hits, %d misses\n", res.CacheHits, res.CacheMisses)
	if res.PlanCacheHits+res.PlanCacheMisses > 0 {
		fmt.Printf("plan cache:         %8d hits, %d misses\n", res.PlanCacheHits, res.PlanCacheMisses)
	}
	if len(events) > 0 {
		fmt.Printf("events applied:     %8d\n", res.EventsApplied)
		fmt.Printf("replans:            %8d  (%d requests requeued)\n", res.Replans, res.Retried)
		fmt.Printf("plan retries:       %8d\n", res.PlanRetries)
		fmt.Printf("deadline misses:    %8d\n", res.DeadlineMisses)
		fmt.Println("\nwindows:")
		for i, ws := range res.WindowStats {
			mark := ""
			if ws.FrontierSize > 0 {
				mark = fmt.Sprintf("  [%s, %d-point frontier]", ws.SLO, ws.FrontierSize)
			}
			if ws.Interrupted {
				mark += "  ← interrupted"
			}
			fmt.Printf("  %2d. [%8.2fms %8.2fms] %d requests, %d done, %d requeued, %d events, %d retries%s\n",
				i+1, ws.Start.Seconds()*1e3, ws.End.Seconds()*1e3,
				ws.Requests, ws.Completed, ws.Requeued, ws.EventsApplied, ws.PlanRetries, mark)
		}
	}
	printSLOBudgets(out.sloMon)
	return nil
}

// buildFleet assembles an n-device fleet: device 0 is the -soc SoC, devices
// 1..n−1 cycle the mixed mobile presets. All devices share the planner and
// stream configuration and publish into reg through per-device labels.
func buildFleet(s *soc.SoC, n int, policyName string, popts core.Options, scfg stream.Config, reg *obs.Registry, logger *slog.Logger, spans *obs.SpanRecorder) (*fleet.Fleet, error) {
	mixed := []func() *soc.SoC{soc.Kirin990, soc.Snapdragon778G, soc.Snapdragon870}
	devices := make([]*fleet.Device, n)
	for i := range devices {
		ds := s
		if i > 0 {
			ds = mixed[(i-1)%len(mixed)]()
		}
		dev, err := fleet.NewDevice(fleet.DeviceSpec{
			Name:    fmt.Sprintf("dev%d", i),
			SoC:     ds,
			Planner: popts,
			Stream:  scfg,
		}, reg, logger)
		if err != nil {
			return nil, err
		}
		devices[i] = dev
	}
	policy, err := fleet.PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	return fleet.New(devices, fleet.Config{Policy: policy, Metrics: reg, Logger: logger, Spans: spans})
}

// runFleet shards a Poisson arrival stream (per-device decorrelated seeds)
// across the fleet and prints the sharded-serving statistics.
func runFleet(ctx context.Context, fl *fleet.Fleet, models []*model.Model, gap time.Duration, out streamOutputs) error {
	requests := fleet.PoissonArrivals(models, gap, 7, len(fl.Devices()))
	execOpts := pipeline.DefaultOptions()
	execOpts.Logger = out.logger
	res, err := fl.RunContext(ctx, requests, execOpts)
	if err != nil {
		return err
	}
	if out.spansOut != "" {
		if err := writeSpans(out.spansOut, out.spans, out.service); err != nil {
			return err
		}
	}
	if out.reqTraceOut != "" {
		if err := writeTimelines(out.reqTraceOut, res.Timelines); err != nil {
			return err
		}
	}
	if out.report {
		raw, err := res.Report.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
	}
	if out.metricsOut != "" {
		if err := writeMetrics(out.metricsOut, out.registry); err != nil {
			return err
		}
	}
	fmt.Printf("fleet run: %d requests over %d devices (%s policy), mean gap %v\n",
		len(requests), len(fl.Devices()), fl.Policy(), gap)
	fmt.Printf("makespan:           %8.2f ms\n", res.Makespan.Seconds()*1e3)
	fmt.Printf("mean sojourn:       %8.2f ms  (p95 %.2f ms)\n",
		res.Report.MeanSojournMS, res.Report.P95SojournMS)
	fmt.Printf("handoffs:           %8d\n", res.Handoffs)
	for _, d := range res.Report.PerDevice {
		state := "live"
		if d.Down {
			state = "down"
		}
		fmt.Printf("  %-6s %-16s %-4s %4d assigned, %4d completed, %d in / %d out handoffs\n",
			d.Device, d.SoC, state, d.Assigned, d.Completed, d.HandoffsIn, d.HandoffsOut)
	}
	printSLOBudgets(out.sloMon)
	return nil
}

// parseSLOBudgets parses the -slo-budget flag: comma-separated class=target
// pairs where class is a named SLO class (latency-critical, balanced,
// battery-saver) and target is the tolerated deadline-miss fraction.
func parseSLOBudgets(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -slo-budget entry %q (want class=target)", part)
		}
		class, err := core.ParseSLOClass(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("-slo-budget: %w", err)
		}
		if class.Kind == core.SLOUnset {
			return nil, fmt.Errorf("-slo-budget: empty class in %q", part)
		}
		var target float64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &target); err != nil {
			return nil, fmt.Errorf("bad -slo-budget target %q: %w", val, err)
		}
		if target < 0 || target > 1 {
			return nil, fmt.Errorf("-slo-budget target %g out of range [0,1]", target)
		}
		out[class.String()] = target
	}
	return out, nil
}

// printSLOBudgets prints the per-class error-budget summary after a run (the
// textual form of the /slo endpoint). A nil monitor prints nothing.
func printSLOBudgets(mon *obs.SLOMonitor) {
	if mon == nil {
		return
	}
	rep := mon.Report()
	if len(rep.Classes) == 0 {
		return
	}
	fmt.Println("\nSLO error budgets:")
	for _, c := range rep.Classes {
		fmt.Printf("  %-18s target %5.3f  missed %d/%d (%.3f)  burn %5.2fx  budget left %5.1f%%\n",
			c.Class, c.Target, c.Missed, c.Total, c.MissFraction,
			c.BurnRate, c.BudgetRemaining*100)
	}
}

// writeTimelines dumps the run's request timelines (phase events and sojourn
// decompositions) as indented JSON.
func writeTimelines(path string, tls []stream.RequestTimeline) error {
	data, err := json.MarshalIndent(tls, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d request timelines to %s\n", len(tls), path)
	return nil
}

// writeMetrics dumps the registry in Prometheus text exposition format.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePrometheus(f, reg); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote metrics to %s\n", path)
	return nil
}

// offlineReport builds a run report for a one-shot (non-stream) run, where
// every request arrives at t=0 so sojourn equals completion time.
func offlineReport(s *soc.SoC, planner *core.Planner, res *pipeline.Result, planWall time.Duration) *obs.RunReport {
	hits, misses := planner.CacheStats()
	var slowSum, slowMax float64
	for _, e := range res.Timeline {
		slowSum += e.Slowdown
		if e.Slowdown > slowMax {
			slowMax = e.Slowdown
		}
	}
	var meanSlow float64
	if len(res.Timeline) > 0 {
		meanSlow = slowSum / float64(len(res.Timeline))
	}
	var ratio float64
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	sojourns := append([]time.Duration(nil), res.Completions...)
	sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
	var mean, p95 time.Duration
	if n := len(sojourns); n > 0 {
		var sum time.Duration
		for _, d := range sojourns {
			sum += d
		}
		mean = sum / time.Duration(n)
		idx := (n*95 + 99) / 100 // ceil(0.95 n)
		if idx > n {
			idx = n
		}
		p95 = sojourns[idx-1]
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &obs.RunReport{
		SoC:           s.Name,
		Requests:      len(res.Completions),
		Completed:     len(res.Completions),
		MakespanMS:    ms(res.Makespan),
		MeanSojournMS: ms(mean),
		P95SojournMS:  ms(p95),
		Planner: obs.PlannerReport{
			PlanWallMS:    ms(planWall),
			DPCells:       planner.DPCells(),
			CacheHits:     hits,
			CacheMisses:   misses,
			CacheHitRatio: ratio,
		},
		Executor: obs.ExecutorReport{
			Slices:          len(res.Timeline),
			BubbleMS:        ms(res.BubbleTime),
			AdmissionStalls: res.AdmissionStalls,
			PeakMemoryBytes: res.PeakMemoryBytes,
			MeanSlowdown:    meanSlow,
			MaxSlowdown:     slowMax,
		},
	}
}

// runComparison executes every scheme over the same requests and prints the
// Fig. 7-style side-by-side table.
func runComparison(s *soc.SoC, models []*model.Model) error {
	profiles := make([]*profile.Profile, len(models))
	for i, m := range models {
		p, err := profile.New(s, m)
		if err != nil {
			return err
		}
		profiles[i] = p
	}
	type scheme struct {
		name  string
		build func() (*pipeline.Schedule, error)
	}
	schemes := []scheme{
		{"MNN (serial)", func() (*pipeline.Schedule, error) { return baseline.SerialMNN(s, profiles) }},
		{"Pipe-it", func() (*pipeline.Schedule, error) { return baseline.PipeIt(s, profiles) }},
		{"Band", func() (*pipeline.Schedule, error) { return baseline.Band(s, profiles) }},
		{"H²P (No C/T)", func() (*pipeline.Schedule, error) {
			pl, err := core.NewPlanner(s, core.NoCTOptions())
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanProfiles(profiles)
			if err != nil {
				return nil, err
			}
			return plan.Schedule, nil
		}},
		{"Hetero²Pipe", func() (*pipeline.Schedule, error) {
			pl, err := core.NewPlanner(s, core.DefaultOptions())
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanProfiles(profiles)
			if err != nil {
				return nil, err
			}
			return plan.Schedule, nil
		}},
	}
	fmt.Printf("%s, %d requests:\n", s.Name, len(models))
	fmt.Printf("%-14s %12s %14s %10s %12s\n", "scheme", "latency", "throughput", "energy", "peak mem")
	for _, sc := range schemes {
		sched, err := sc.build()
		if err != nil {
			fmt.Printf("%-14s %12s\n", sc.name, "n/a ("+err.Error()+")")
			continue
		}
		res, err := pipeline.Execute(sched, pipeline.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %10.1fms %11.2f/s %9.2fJ %10.1fMB\n",
			sc.name, res.Makespan.Seconds()*1e3, res.Throughput(),
			res.EnergyJoules, float64(res.PeakMemoryBytes)/1e6)
	}
	return nil
}
