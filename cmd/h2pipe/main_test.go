package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/soc"
)

func TestRunDefault(t *testing.T) {
	if err := run(context.Background(), []string{"-models", "ResNet50,SqueezeNet", "-plan=false", "-gantt", "0"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunListModels(t *testing.T) {
	if err := run(context.Background(), []string{"-list-models"}); err != nil {
		t.Fatalf("run -list-models: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run(context.Background(), []string{"-compare", "-models", "ResNet50,BERT"}); err != nil {
		t.Fatalf("run -compare: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-soc", "NoSuchChip"},
		{"-models", "NoSuchNet"},
		{"-soc-json", "/nonexistent/path.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v): nil error", args)
		}
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	htmlPath := filepath.Join(dir, "report.html")
	err := run(context.Background(), []string{"-models", "ResNet50,SqueezeNet", "-plan=false", "-gantt", "0",
		"-trace", tracePath, "-html", htmlPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatalf("html not written: %v", err)
	}
	if !strings.Contains(string(html), "<svg") {
		t.Error("html report missing SVG")
	}
}

func TestRunCustomSoCJSON(t *testing.T) {
	dir := t.TempDir()
	custom := soc.Kirin990()
	custom.Name = "FileChip"
	data, err := json.Marshal(custom)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "soc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-soc-json", path, "-models", "SqueezeNet", "-plan=false", "-gantt", "0"}); err != nil {
		t.Fatalf("run with custom SoC: %v", err)
	}
}

func TestRunStreamDegraded(t *testing.T) {
	err := run(context.Background(), []string{"-stream",
		"-models", "ResNet50,SqueezeNet,GoogLeNet",
		"-gap", "2ms", "-events", "offline:npu@3ms,throttle:gpu@6ms:1.5"})
	if err != nil {
		t.Fatalf("run -stream: %v", err)
	}
	if err := run(context.Background(), []string{"-stream", "-events", "bogus@spec"}); err == nil {
		t.Error("malformed -events accepted")
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed. The reader drains concurrently so large output cannot fill the
// pipe buffer and deadlock the writer.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("run: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestObsRunOfflineReport: -report in one-shot mode prints a JSON run
// report as the first stdout value, and -metrics dumps Prometheus text.
func TestObsRunOfflineReport(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	out := captureStdout(t, func() error {
		return run(context.Background(), []string{"-models", "ResNet50,SqueezeNet",
			"-plan=false", "-gantt", "0", "-report", "-metrics", metricsPath})
	})
	var rep obs.RunReport
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&rep); err != nil {
		t.Fatalf("-report output does not start with a JSON report: %v\noutput:\n%s", err, out)
	}
	if rep.Requests != 2 || rep.Completed != 2 {
		t.Errorf("report requests/completed = %d/%d, want 2/2", rep.Requests, rep.Completed)
	}
	if rep.SoC != "Kirin990" {
		t.Errorf("report SoC = %q", rep.SoC)
	}
	if rep.MakespanMS <= 0 || rep.Executor.Slices == 0 || rep.Planner.CacheMisses == 0 {
		t.Errorf("report missing figures: %+v", rep)
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	for _, want := range []string{"# TYPE", "h2pipe_executor_slices_total", "h2pipe_planner_cache_misses_total"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestObsRunStreamReportTrace: stream mode wires -report, -metrics and
// -trace (window traces with interrupted segments) together.
func TestObsRunStreamReportTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "stream-trace.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	out := captureStdout(t, func() error {
		return run(context.Background(), []string{"-stream",
			"-models", "ResNet50,SqueezeNet,GoogLeNet",
			"-gap", "2ms", "-events", "offline:npu@3ms",
			"-report", "-trace", tracePath, "-metrics", metricsPath})
	})
	var rep obs.RunReport
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&rep); err != nil {
		t.Fatalf("-report output does not start with a JSON report: %v\noutput:\n%s", err, out)
	}
	if rep.Stream.Windows == 0 || len(rep.Windows) != rep.Stream.Windows {
		t.Errorf("report windows: %d flat vs %d rows", rep.Stream.Windows, len(rep.Windows))
	}
	if rep.Stream.EventsApplied == 0 {
		t.Error("degraded stream report shows no events applied")
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("stream trace not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("stream trace not JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("stream trace is empty")
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	if !strings.Contains(string(prom), "h2pipe_stream_windows_total") {
		t.Error("metrics output missing stream counters")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-models", "ResNet50", "-plan=false", "-gantt", "0"}); err == nil {
		t.Error("cancelled context did not abort the run")
	}
	if err := run(ctx, []string{"-stream", "-models", "ResNet50"}); err == nil {
		t.Error("cancelled context did not abort the stream run")
	}
}

func TestRunFleet(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "fleet-metrics.prom")
	err := run(context.Background(), []string{
		"-stream", "-fleet", "3", "-policy", "affinity",
		"-models", "ResNet50,SqueezeNet,GoogLeNet,MobileNetV2",
		"-gap", "2ms", "-window", "3", "-plan-cache", "8",
		"-metrics", metricsPath,
	})
	if err != nil {
		t.Fatalf("run -stream -fleet 3: %v", err)
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	for _, series := range []string{
		"h2pipe_fleet_requests_total",
		"h2pipe_fleet_devices 3",
		`h2pipe_fleet_routed_total{device="dev0"}`,
		`h2pipe_stream_windows_total{device="`,
	} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("fleet metrics output missing %q", series)
		}
	}
}

func TestRunFleetErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-fleet", "2"}); err == nil {
		t.Error("-fleet without -stream: nil error")
	}
	if err := run(context.Background(), []string{"-stream", "-fleet", "2", "-policy", "nope"}); err == nil {
		t.Error("unknown -policy: nil error")
	}
}
