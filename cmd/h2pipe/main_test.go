package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetero2pipe/internal/soc"
)

func TestRunDefault(t *testing.T) {
	if err := run(context.Background(), []string{"-models", "ResNet50,SqueezeNet", "-plan=false", "-gantt", "0"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunListModels(t *testing.T) {
	if err := run(context.Background(), []string{"-list-models"}); err != nil {
		t.Fatalf("run -list-models: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run(context.Background(), []string{"-compare", "-models", "ResNet50,BERT"}); err != nil {
		t.Fatalf("run -compare: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-soc", "NoSuchChip"},
		{"-models", "NoSuchNet"},
		{"-soc-json", "/nonexistent/path.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v): nil error", args)
		}
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	htmlPath := filepath.Join(dir, "report.html")
	err := run(context.Background(), []string{"-models", "ResNet50,SqueezeNet", "-plan=false", "-gantt", "0",
		"-trace", tracePath, "-html", htmlPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatalf("html not written: %v", err)
	}
	if !strings.Contains(string(html), "<svg") {
		t.Error("html report missing SVG")
	}
}

func TestRunCustomSoCJSON(t *testing.T) {
	dir := t.TempDir()
	custom := soc.Kirin990()
	custom.Name = "FileChip"
	data, err := json.Marshal(custom)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "soc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-soc-json", path, "-models", "SqueezeNet", "-plan=false", "-gantt", "0"}); err != nil {
		t.Fatalf("run with custom SoC: %v", err)
	}
}

func TestRunStreamDegraded(t *testing.T) {
	err := run(context.Background(), []string{"-stream",
		"-models", "ResNet50,SqueezeNet,GoogLeNet",
		"-gap", "2ms", "-events", "offline:npu@3ms,throttle:gpu@6ms:1.5"})
	if err != nil {
		t.Fatalf("run -stream: %v", err)
	}
	if err := run(context.Background(), []string{"-stream", "-events", "bogus@spec"}); err == nil {
		t.Error("malformed -events accepted")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-models", "ResNet50", "-plan=false", "-gantt", "0"}); err == nil {
		t.Error("cancelled context did not abort the run")
	}
	if err := run(ctx, []string{"-stream", "-models", "ResNet50"}); err == nil {
		t.Error("cancelled context did not abort the stream run")
	}
}
