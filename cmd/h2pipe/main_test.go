package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetero2pipe/internal/soc"
)

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-models", "ResNet50,SqueezeNet", "-plan=false", "-gantt", "0"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunListModels(t *testing.T) {
	if err := run([]string{"-list-models"}); err != nil {
		t.Fatalf("run -list-models: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run([]string{"-compare", "-models", "ResNet50,BERT"}); err != nil {
		t.Fatalf("run -compare: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-soc", "NoSuchChip"},
		{"-models", "NoSuchNet"},
		{"-soc-json", "/nonexistent/path.json"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): nil error", args)
		}
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	htmlPath := filepath.Join(dir, "report.html")
	err := run([]string{"-models", "ResNet50,SqueezeNet", "-plan=false", "-gantt", "0",
		"-trace", tracePath, "-html", htmlPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatalf("html not written: %v", err)
	}
	if !strings.Contains(string(html), "<svg") {
		t.Error("html report missing SVG")
	}
}

func TestRunCustomSoCJSON(t *testing.T) {
	dir := t.TempDir()
	custom := soc.Kirin990()
	custom.Name = "FileChip"
	data, err := json.Marshal(custom)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "soc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-soc-json", path, "-models", "SqueezeNet", "-plan=false", "-gantt", "0"}); err != nil {
		t.Fatalf("run with custom SoC: %v", err)
	}
}
