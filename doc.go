// Package hetero2pipe reproduces "Hetero²Pipe: Pipelining Multi-DNN
// Inference on Heterogeneous Mobile Processors under Co-Execution Slowdown"
// (ICDCS 2025) as a pure-Go library: a mobile-SoC simulation substrate
// (internal/soc, internal/model, internal/contention, internal/perf), the
// two-step pipeline planner that is the paper's contribution
// (internal/core), an event-driven pipeline executor (internal/pipeline),
// the evaluation baselines (internal/baseline) and the experiment harness
// regenerating every table and figure (internal/experiments, cmd/experiments).
//
// See README.md for a tour and DESIGN.md for the system inventory and
// per-experiment index.
package hetero2pipe
