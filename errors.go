package hetero2pipe

import (
	"context"
	"errors"
	"fmt"

	"hetero2pipe/internal/core"
)

// Sentinel errors for the facade. Every error returned by System wraps one
// of these when the failure matches, so callers branch with errors.Is
// instead of string matching; the full internal cause stays on the chain.
var (
	// ErrUnknownPreset: NewSystem was given a SoC preset name that does
	// not exist.
	ErrUnknownPreset = errors.New("hetero2pipe: unknown SoC preset")
	// ErrUnknownModel: a model name is not in the built-in zoo (see
	// Models for the valid list).
	ErrUnknownModel = errors.New("hetero2pipe: unknown model")
	// ErrNoProcessor: no processor can serve the request — every capable
	// processor is offline or the SoC lacks the required operator support.
	ErrNoProcessor = errors.New("hetero2pipe: no processor available")
	// ErrCancelled: the run was aborted by its context (cancellation or
	// deadline) before completing.
	ErrCancelled = errors.New("hetero2pipe: run cancelled")
	// ErrUnknownSLOClass: ParseSLOClass was given a class name outside the
	// grammar (latency-critical, balanced, battery-saver, custom:w,w,w,w).
	// Aliases the core sentinel so both layers match with errors.Is.
	ErrUnknownSLOClass = core.ErrUnknownSLOClass
)

// wrapRunErr lifts internal failure modes onto the facade sentinels while
// keeping the original chain intact.
func wrapRunErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	if errors.Is(err, core.ErrInfeasiblePartition) {
		return fmt.Errorf("%w: %w", ErrNoProcessor, err)
	}
	return err
}
