// Liveobs: the observability facade end to end — a System configured with
// metrics, span tracing and structured logging serves its live HTTP
// surface while an online stream runs, then exports the recorded spans
// both as OTLP/JSON and as a Chrome trace reconstructed from the span
// ring alone. The example polls its own endpoints mid-run the way an
// operator (or Prometheus) would.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"hetero2pipe"
	"hetero2pipe/internal/model"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	reg := hetero2pipe.NewMetricsRegistry("liveobs")
	rec := hetero2pipe.NewSpanRecorder(0)
	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithMetrics(reg),
		hetero2pipe.WithSpans(rec),
		hetero2pipe.WithLogger(logger),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the observability surface on an ephemeral port for the life of
	// the example.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	go func() {
		if err := sys.ServeObs(ctx, "127.0.0.1:0", func(a net.Addr) { addrc <- a }); err != nil {
			log.Fatal(err)
		}
	}()
	base := fmt.Sprintf("http://%s", <-addrc)
	fmt.Printf("observability server: %s\n\n", base)

	// A stream of mixed requests, injected with an NPU outage mid-run so
	// the trace shows an interrupted, replanned window.
	var names []string
	for i := 0; i < 6; i++ {
		names = append(names, "SqueezeNet", "ResNet50", "MobileNetV2")
	}
	requests := make([]hetero2pipe.StreamRequest, 0, len(names))
	events, err := hetero2pipe.ParseEvents("offline:npu@30ms,online:npu@60ms")
	if err != nil {
		log.Fatal(err)
	}
	at := time.Duration(0)
	for _, n := range names {
		m, err := model.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		requests = append(requests, hetero2pipe.StreamRequest{Model: m, Arrival: at})
		at += 4 * time.Millisecond
	}
	cfg := hetero2pipe.DefaultStreamConfig()
	cfg.Events = events

	// Poll the live endpoints while the run is in flight.
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 3; i++ {
			time.Sleep(2 * time.Millisecond)
			fmt.Printf("GET /readyz  → %s", get(base+"/readyz"))
			fmt.Printf("GET /windows → %d bytes of live WindowStats\n", len(get(base+"/windows")))
		}
	}()
	res, err := sys.RunStream(requests, cfg)
	if err != nil {
		log.Fatal(err)
	}
	<-pollDone

	fmt.Printf("\nrun: %d windows, %d replans, makespan %.1f ms\n",
		res.Windows, res.Replans, res.Makespan.Seconds()*1e3)
	fmt.Printf("sojourn p50/p95/p99: %.2f / %.2f / %.2f ms\n",
		res.Report.P50SojournMS, res.Report.P95SojournMS, res.Report.P99SojournMS)

	// The metrics endpoint, as Prometheus would scrape it.
	metrics := get(base + "/metrics")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "liveobs_stream_windows_total") {
			fmt.Printf("scraped: %s\n", line)
		}
	}

	// Both trace exports come from the one span ring.
	var otlp strings.Builder
	if err := hetero2pipe.WriteOTLP(&otlp, rec, "liveobs"); err != nil {
		log.Fatal(err)
	}
	chrome, err := hetero2pipe.StreamChromeTraceFromSpans(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spans recorded: %d (OTLP %d bytes, Chrome trace %d bytes)\n",
		rec.Total(), otlp.Len(), len(chrome))
}

// get fetches a URL and returns the body (empty on error — the example
// keeps going so partial output still prints).
func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}
