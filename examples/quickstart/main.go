// Quickstart: plan three DNN inference requests on a Kirin 990, execute the
// pipeline under the co-execution slowdown model, and print the speedup over
// serial CPU execution. This is the smallest end-to-end use of the library,
// via the top-level facade; the other examples reach into the internal
// packages for finer control.
package main

import (
	"fmt"
	"log"

	"hetero2pipe"
)

func main() {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"ResNet50", "BERT", "SqueezeNet"}
	res, err := sys.Run(names...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("latency    %8.2f ms\n", res.Latency.Seconds()*1e3)
	fmt.Printf("throughput %8.2f inferences/s\n", res.Throughput)
	fmt.Printf("energy     %8.2f J\n", res.EnergyJoules)

	serial, err := sys.SerialBaseline(names...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup    %8.2f× over serial CPU\n",
		serial.Seconds()/res.Latency.Seconds())

	fmt.Println()
	fmt.Print(res.Gantt(64))
}
