// Scene understanding: the paper's motivating multi-modal application
// (Sec. I) — object detection, face embedding, attribute classification and
// transformer captioning over each camera frame. The example plans the mix
// with every scheme (serial MNN, Pipe-it, Band, Hetero²Pipe) on all three
// SoC presets and prints the frame latency each achieves, reproducing the
// Fig. 7 comparison on a concrete application.
package main

import (
	"fmt"
	"log"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func main() {
	names := workload.SceneUnderstanding()
	fmt.Println("scene-understanding request mix:", names)
	fmt.Println()

	for _, platform := range soc.Presets() {
		models, err := workload.Instantiate(names)
		if err != nil {
			log.Fatal(err)
		}
		profiles := make([]*profile.Profile, len(models))
		for i, m := range models {
			p, err := profile.New(platform, m)
			if err != nil {
				log.Fatal(err)
			}
			profiles[i] = p
		}

		fmt.Printf("%s:\n", platform.Name)
		report := func(scheme string, sched *pipeline.Schedule, err error) {
			if err != nil {
				log.Fatalf("%s/%s: %v", platform.Name, scheme, err)
			}
			res, err := pipeline.Execute(sched, pipeline.DefaultOptions())
			if err != nil {
				log.Fatalf("%s/%s: %v", platform.Name, scheme, err)
			}
			fmt.Printf("  %-12s frame latency %8.1f ms  (%.2f inferences/s)\n",
				scheme, res.Makespan.Seconds()*1e3, res.Throughput())
		}

		sched, err := baseline.SerialMNN(platform, profiles)
		report("serial MNN", sched, err)
		sched, err = baseline.PipeIt(platform, profiles)
		report("Pipe-it", sched, err)
		sched, err = baseline.Band(platform, profiles)
		report("Band", sched, err)

		planner, err := core.NewPlanner(platform, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		plan, err := planner.PlanProfiles(profiles)
		report("Hetero²Pipe", plan.Schedule, err)
		fmt.Println()
	}
}
