// Streaming: the online deployment mode — inference requests arrive over
// time (Poisson arrivals), the planner runs once per planning window
// (Sec. V's closing remark on planning frequency), and lightweight frames
// are batched inside each window (Appendix D). The example sweeps the
// window size to show the freedom/latency trade-off and compares against
// FIFO serial CPU processing of the same stream.
package main

import (
	"fmt"
	"log"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/workload"
)

func main() {
	platform := soc.Kirin990()
	// A bursty mixed stream: 24 requests with ~15 ms mean inter-arrival.
	gen, err := workload.NewGenerator(99, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, combo := range gen.Combos(24) {
		names = append(names, combo...)
	}
	models, err := workload.Instantiate(names)
	if err != nil {
		log.Fatal(err)
	}
	requests := stream.PoissonArrivals(models, 15*time.Millisecond, 7)

	planner, err := core.NewPlanner(platform, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("window  windows  mean sojourn   p95 sojourn")
	for _, window := range []int{1, 2, 4, 8} {
		cfg := stream.DefaultConfig()
		cfg.MaxWindow = window
		sched, err := stream.NewScheduler(planner, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sched.Run(requests, pipeline.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8d %11.1fms %11.1fms\n",
			window, res.Windows,
			res.MeanSojourn().Seconds()*1e3, res.P95Sojourn().Seconds()*1e3)
	}

	// FIFO serial CPU reference.
	big := platform.Processor("cpu-big")
	now := time.Duration(0)
	var sum time.Duration
	for _, rq := range requests {
		if rq.Arrival > now {
			now = rq.Arrival
		}
		now += soc.BatchLatency(big, rq.Model, 1)
		sum += now - rq.Arrival
	}
	fmt.Printf("\nserial CPU FIFO mean sojourn: %.1fms\n",
		(sum/time.Duration(len(requests))).Seconds()*1e3)
}
