// Video analytics: continuous classification of camera frames with
// lightweight models alongside a heavy transformer (the paper's Appendix-D
// scenario). A single lightweight inference is 20–40× shorter than the
// heavy model's stage, so vertical alignment is hopeless at batch size 1;
// batching closes the gap (Fig. 13) and amortises the per-launch weight
// loading. The example picks the alignment batch size per processor and
// shows the throughput gain of batched scheduling.
package main

import (
	"fmt"
	"log"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func main() {
	platform := soc.Kirin990()
	big := platform.Processor("cpu-big")
	heavy := model.MustByName(model.BERT)
	light := model.MustByName(model.MobileNetV2)

	// The 20–40× light/heavy gap of Appendix D.
	heavyLat := soc.BatchLatency(big, heavy, 1)
	lightLat := soc.BatchLatency(big, light, 1)
	fmt.Printf("single inference: %s %.1f ms, %s %.1f ms (gap %.0f×)\n",
		heavy.Name, heavyLat.Seconds()*1e3, light.Name, lightLat.Seconds()*1e3,
		heavyLat.Seconds()/lightLat.Seconds())

	// Alignment batch per processor: the smallest batch whose latency
	// matches the heavy stage.
	fmt.Println("\nalignment batch size per processor (target: one BERT stage):")
	for i := range platform.Processors {
		p := &platform.Processors[i]
		if soc.BatchLatency(p, light, 1) == soc.InfDuration {
			continue
		}
		n := soc.AlignmentBatch(p, light, heavyLat, 256)
		fmt.Printf("  %-10s batch %3d  (batched latency %.1f ms)\n",
			p.ID, n, soc.BatchLatency(p, light, n).Seconds()*1e3)
	}

	// Streaming workload: 16 frames of light models around one heavy
	// request, planned and executed end-to-end.
	names := workload.VideoAnalytics(16)
	models, err := workload.Instantiate(names)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := core.NewPlanner(platform, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	plan, err := planner.PlanModels(models)
	if err != nil {
		log.Fatal(err)
	}
	planCost := time.Since(start)
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream of %d requests: latency %.1f ms, throughput %.1f inf/s (planning took %v)\n",
		len(names), res.Makespan.Seconds()*1e3, res.Throughput(), planCost.Round(time.Millisecond))
}
