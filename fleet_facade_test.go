package hetero2pipe_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetero2pipe"
	"hetero2pipe/internal/model"
)

// fleetModels builds the facade fleet tests' recurring request mix.
func fleetModels(t *testing.T, n int) []*model.Model {
	t.Helper()
	zoo := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2}
	models := make([]*model.Model, n)
	for i := range models {
		models[i] = model.MustByName(zoo[i%len(zoo)])
	}
	return models
}

// TestFleetFacadeRun drives WithFleet end to end: a 3-device mixed-preset
// fleet behind the library facade must complete every request, label each
// device's metrics apart in the shared registry, and report through the
// merged FleetReport.
func TestFleetFacadeRun(t *testing.T) {
	reg := hetero2pipe.NewMetricsRegistry("h2pipe")
	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithFleet(3),
		hetero2pipe.WithFleetPolicy(hetero2pipe.PolicyLeastSojourn),
		hetero2pipe.WithMetrics(reg),
		hetero2pipe.WithPlanCache(8),
		hetero2pipe.WithWindow(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	fl := sys.Fleet()
	if fl == nil {
		t.Fatal("WithFleet(3) built no fleet")
	}
	if got := len(fl.Devices()); got != 3 {
		t.Fatalf("fleet has %d devices, want 3", got)
	}
	if fl.Devices()[0].SoC().Name != sys.SoC().Name {
		t.Errorf("device 0 SoC %q is not the system's %q", fl.Devices()[0].SoC().Name, sys.SoC().Name)
	}
	if got := fl.Policy(); got != "least-sojourn" {
		t.Errorf("fleet policy = %q, want least-sojourn", got)
	}

	requests := hetero2pipe.FleetPoissonArrivals(fleetModels(t, 12), time.Millisecond, 7, 3)
	res, err := sys.RunFleet(requests)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(requests) {
		t.Errorf("result requests = %d, want %d", res.Requests, len(requests))
	}
	for i := range requests {
		if res.Completions[i] <= 0 {
			t.Errorf("request %d never completed", i)
		}
	}
	if res.Report == nil || res.Report.Completed != len(requests) {
		t.Fatalf("fleet report incomplete: %+v", res.Report)
	}
	assigned := 0
	for _, d := range res.Report.PerDevice {
		assigned += d.Assigned
	}
	if assigned != len(requests) {
		t.Errorf("per-device assignments sum to %d, want %d", assigned, len(requests))
	}

	snap := reg.Snapshot()
	labeled := 0
	for key := range snap.Counters {
		if strings.HasPrefix(key, "stream_windows_total{device=") {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("shared registry holds no device-labeled scheduler series")
	}
}

// TestFleetFacadeWithoutFleet: RunFleet on a plain system must refuse, and
// the single-device path must keep its unlabeled metric series.
func TestFleetFacadeWithoutFleet(t *testing.T) {
	reg := hetero2pipe.NewMetricsRegistry("h2pipe")
	sys, err := hetero2pipe.NewSystem("Kirin990", hetero2pipe.WithMetrics(reg), hetero2pipe.WithWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Fleet() != nil {
		t.Fatal("plain system grew a fleet")
	}
	if _, err := sys.RunFleet(nil); err == nil {
		t.Error("RunFleet without WithFleet: nil error")
	}
	reqs := make([]hetero2pipe.StreamRequest, 3)
	for i, m := range fleetModels(t, 3) {
		reqs[i] = hetero2pipe.StreamRequest{Model: m}
	}
	if _, err := sys.RunStream(reqs, hetero2pipe.StreamConfig{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Counters["stream_windows_total"]; !ok {
		t.Error("single-device run lost its unlabeled stream_windows_total series")
	}
	for key := range snap.Counters {
		if strings.Contains(key, "{device=") {
			t.Errorf("single-device run leaked a labeled series %s", key)
		}
	}
}

// TestFleetEndpoint serves ObsHandler and checks /fleet: live status JSON
// when a fleet is attached, 404 otherwise.
func TestFleetEndpoint(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithFleet(2), hetero2pipe.WithWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	requests := hetero2pipe.FleetPoissonArrivals(fleetModels(t, 6), time.Millisecond, 3, 2)
	if _, err := sys.RunFleet(requests); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.ObsHandler())
	defer srv.Close()

	status, body := httpGet(t, srv.URL+"/fleet")
	if status != 200 {
		t.Fatalf("GET /fleet = %d, want 200", status)
	}
	var st hetero2pipe.FleetStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/fleet not JSON: %v\n%s", err, body)
	}
	if len(st.Devices) != 2 {
		t.Errorf("/fleet reports %d devices, want 2", len(st.Devices))
	}
	if st.Completed != len(requests) {
		t.Errorf("/fleet completed = %d, want %d", st.Completed, len(requests))
	}
	if st.Devices[0].Device != "dev0" || st.Devices[0].SoC == "" {
		t.Errorf("/fleet device row malformed: %+v", st.Devices[0])
	}

	plain, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	plainSrv := httptest.NewServer(plain.ObsHandler())
	defer plainSrv.Close()
	if status, _ := httpGet(t, plainSrv.URL+"/fleet"); status != 404 {
		t.Errorf("GET /fleet without a fleet = %d, want 404", status)
	}
}
