package hetero2pipe_test

import (
	"errors"
	"testing"

	"hetero2pipe"
)

// TestPolicyParse is the table-driven test for the typed fleet policy API.
func TestPolicyParse(t *testing.T) {
	cases := []struct {
		in      string
		want    hetero2pipe.Policy
		wantErr bool
	}{
		{in: "", want: hetero2pipe.PolicyHash},
		{in: "hash", want: hetero2pipe.PolicyHash},
		{in: " Hash ", want: hetero2pipe.PolicyHash},
		{in: "least-sojourn", want: hetero2pipe.PolicyLeastSojourn},
		{in: "affinity", want: hetero2pipe.PolicyAffinity},
		{in: "round-robin", wantErr: true},
	}
	for _, tc := range cases {
		got, err := hetero2pipe.ParsePolicy(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePolicy(%q): expected error, got %v", tc.in, got)
			} else if !errors.Is(err, hetero2pipe.ErrUnknownPolicy) {
				t.Errorf("ParsePolicy(%q): error %v does not wrap ErrUnknownPolicy", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
		// String must round-trip through ParsePolicy.
		if back, err := hetero2pipe.ParsePolicy(got.String()); err != nil || back != got {
			t.Errorf("ParsePolicy(%v.String()) = %v, %v", got, back, err)
		}
	}
}

// TestPolicyStringUnknown: out-of-range values render diagnostically instead
// of aliasing a real policy name.
func TestPolicyStringUnknown(t *testing.T) {
	if s := hetero2pipe.Policy(42).String(); s != "policy(42)" {
		t.Errorf("Policy(42).String() = %q", s)
	}
}

// TestPlanFrontierFacade: the facade frontier API returns a non-empty
// frontier whose latency-critical point matches the default Run result.
func TestPlanFrontierFacade(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	f, err := sys.PlanFrontier("ResNet50", "SqueezeNet", "BERT")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() < 1 {
		t.Fatalf("frontier size %d", f.Size())
	}
	pt := f.Select(hetero2pipe.SLOLatencyCritical)
	if pt == nil || pt.Plan == nil {
		t.Fatal("latency-critical selection empty")
	}
	res, err := sys.Run("ResNet50", "SqueezeNet", "BERT")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Objective.Makespan != res.Latency {
		t.Errorf("latency-critical frontier makespan %v != Run latency %v",
			pt.Objective.Makespan, res.Latency)
	}
	// Frontier dominance holds through the facade re-export too.
	for i := range f.Points {
		for j := range f.Points {
			if i != j && f.Points[j].Objective.Dominates(f.Points[i].Objective) {
				t.Errorf("facade frontier point %d dominated by %d", i, j)
			}
		}
	}
}

// TestRunWithObjectiveFrontier: WithObjective(ObjectiveFrontier) +
// WithSLOClass drive offline Run through frontier selection end to end.
func TestRunWithObjectiveFrontier(t *testing.T) {
	base, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run("ResNet50", "SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}

	crit, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithObjective(hetero2pipe.ObjectiveFrontier),
		hetero2pipe.WithSLOClass(hetero2pipe.SLOLatencyCritical))
	if err != nil {
		t.Fatal(err)
	}
	got, err := crit.Run("ResNet50", "SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	if got.Latency != want.Latency {
		t.Errorf("frontier latency-critical Run latency %v != makespan Run %v", got.Latency, want.Latency)
	}

	saver, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithObjective(hetero2pipe.ObjectiveFrontier),
		hetero2pipe.WithSLOClass(hetero2pipe.SLOBatterySaver))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := saver.Run("ResNet50", "SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	if sres.EnergyJoules > got.EnergyJoules {
		t.Errorf("battery-saver Run energy %.4f J > latency-critical %.4f J",
			sres.EnergyJoules, got.EnergyJoules)
	}
}

// TestParseSLOClassFacade: the facade re-export parses and matches the
// facade-level sentinel with errors.Is.
func TestParseSLOClassFacade(t *testing.T) {
	if c, err := hetero2pipe.ParseSLOClass("battery-saver"); err != nil || c != hetero2pipe.SLOBatterySaver {
		t.Errorf("ParseSLOClass(battery-saver) = %v, %v", c, err)
	}
	if _, err := hetero2pipe.ParseSLOClass("gold"); !errors.Is(err, hetero2pipe.ErrUnknownSLOClass) {
		t.Errorf("ParseSLOClass(gold) error %v does not wrap ErrUnknownSLOClass", err)
	}
	w := hetero2pipe.SLOWeights{Makespan: 1, Energy: 2}
	got, err := hetero2pipe.ParseSLOClass(hetero2pipe.CustomSLO(w).String())
	if err != nil || got != hetero2pipe.CustomSLO(w) {
		t.Errorf("custom SLO did not round-trip through String: %v, %v", got, err)
	}
}
