module hetero2pipe

go 1.22
