package hetero2pipe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/fleet"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/trace"
)

// This file is the library facade: the handful of calls most users need,
// wrapping the internal packages. Power users can reach the full machinery
// through the internal packages directly (this module is self-contained),
// but System covers the common flows: plan a request set, execute it under
// the co-execution slowdown model, run an online stream — with degradation
// events, cancellation and per-window replanning — and export traces.

// System couples one SoC with a configured planner. Since the fleet layer
// landed, a System is a thin wrapper over one fleet.Device — SoC, planner,
// plan cache, window feed and degradation timeline bundled instance-scoped —
// plus, under WithFleet, a Fleet whose device 0 is that same device.
type System struct {
	dev *fleet.Device
	cfg config
	// fl is the sharded serving front-end, non-nil only under WithFleet.
	fl *fleet.Fleet
}

// NewSystem builds a System for a preset SoC name ("Kirin990",
// "Snapdragon778G", "Snapdragon870", "Snapdragon8Gen2", "Dimensity9200").
// With no options it applies the full Hetero²Pipe defaults; pass
// functional options (WithParallelism, WithDegradationEvents, ...) or a
// legacy Options struct to customise.
func NewSystem(preset string, opts ...Option) (*System, error) {
	s := soc.PresetByName(preset)
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPreset, preset)
	}
	return NewSystemFor(s, opts...)
}

// NewSystemFor builds a System for a custom SoC description.
//
// Under WithFleet(n) the system additionally assembles an n-device fleet:
// device 0 ("dev0") is this SoC, devices 1..n−1 cycle the mixed mobile
// presets (Kirin 990, Snapdragon 778G, Snapdragon 870). All devices share
// the system's planner/stream configuration, metrics registry (through
// per-device labeled views) and logger; run the fleet with RunFleet.
func NewSystemFor(s *soc.SoC, opts ...Option) (*System, error) {
	if s == nil {
		return nil, errors.New("hetero2pipe: nil SoC")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	// Request tracing and SLO budgets are system-scoped: one flight-recorder
	// store and one monitor, shared by every device (built here, not in the
	// Option, so reusing an Option value across systems never shares state).
	if cfg.tracing {
		cfg.stream.RequestTracing = true
		cfg.stream.Traces = stream.NewTraceStore(cfg.traceCap, 0)
	}
	if len(cfg.sloBudgets) > 0 {
		cfg.stream.SLOMonitor = obs.NewSLOMonitor(0, cfg.sloBudgets)
	}
	// fleet.NewDevice fans the registry and logger into planner and
	// scheduler (through a `device` label when the device is named); option
	// order doesn't matter because WithPlannerOptions replaces the struct
	// before this point.
	if cfg.fleetSize > 0 {
		mixed := []func() *soc.SoC{soc.Kirin990, soc.Snapdragon778G, soc.Snapdragon870}
		devices := make([]*fleet.Device, cfg.fleetSize)
		for i := range devices {
			ds := s
			if i > 0 {
				ds = mixed[(i-1)%len(mixed)]()
			}
			dev, err := fleet.NewDevice(fleet.DeviceSpec{
				Name:    fmt.Sprintf("dev%d", i),
				SoC:     ds,
				Planner: cfg.planner,
				Stream:  cfg.stream,
			}, cfg.metrics, cfg.logger)
			if err != nil {
				return nil, err
			}
			devices[i] = dev
		}
		policy, err := fleet.PolicyByName(cfg.fleetPolicy)
		if err != nil {
			return nil, err
		}
		fl, err := fleet.New(devices, fleet.Config{
			Policy:  policy,
			Metrics: cfg.metrics,
			Logger:  cfg.logger,
			Spans:   cfg.spans,
		})
		if err != nil {
			return nil, err
		}
		return &System{dev: devices[0], cfg: cfg, fl: fl}, nil
	}
	dev, err := fleet.NewDevice(fleet.DeviceSpec{
		SoC:     s,
		Planner: cfg.planner,
		Stream:  cfg.stream,
	}, cfg.metrics, cfg.logger)
	if err != nil {
		return nil, err
	}
	return &System{dev: dev, cfg: cfg}, nil
}

// SoC returns the system's SoC description.
func (sys *System) SoC() *soc.SoC { return sys.dev.SoC() }

// Device returns the system's underlying fleet device: the instance-scoped
// bundle of SoC, planner (with plan and cost caches), window feed and
// degradation timeline. Under WithFleet this is the fleet's device 0.
func (sys *System) Device() *fleet.Device { return sys.dev }

// Fleet returns the sharded serving front-end, or nil when the system was
// built without WithFleet.
func (sys *System) Fleet() *fleet.Fleet { return sys.fl }

// CacheStats returns the planner's lifetime cost-cache counters: hits are
// lookups that reused at least one memoized per-(model, processor, batch)
// cost table, misses are lookups that measured at least one fresh table.
// Online streams of recurring models converge to one miss per distinct
// model; a degradation event adds one miss per model only for the affected
// processors' tables.
func (sys *System) CacheStats() (hits, misses uint64) { return sys.dev.Planner().CacheStats() }

// PlanCacheStats returns the planner's lifetime whole-plan cache counters
// (WithPlanCache): a hit is a planning call served a memoized plan without
// running the two-step optimisation, a miss is a call planned in full. Both
// zero when the plan cache is disabled.
func (sys *System) PlanCacheStats() (hits, misses uint64) {
	return sys.dev.Planner().PlanCacheStats()
}

// InvalidateCache drops the planner's memoized cost tables. Required after
// mutating the SoC description in place (e.g. frequency or thermal
// experiments); the next plan re-measures every model. To invalidate only
// the processors touched by a degradation event, use ApplyEvent instead.
func (sys *System) InvalidateCache() { sys.dev.Planner().InvalidateCache() }

// ApplyEvent applies one degradation event to the SoC immediately and
// invalidates only the affected processors' cost tables. RunStream does
// this automatically for configured events; ApplyEvent is the manual hook
// for offline experiments.
func (sys *System) ApplyEvent(ev Event) error {
	affected, err := sys.dev.SoC().Apply(ev)
	if err != nil {
		return err
	}
	sys.dev.Planner().InvalidateProcessors(affected...)
	return nil
}

// Models lists the built-in network names: the ten-model evaluation zoo
// followed by the application extras.
func Models() []string {
	return append(model.Names(), model.ExtraNames()...)
}

// Result summarises one planned-and-executed request set.
type Result struct {
	// Latency is the completion time of the last request.
	Latency time.Duration
	// Throughput is completed inferences per second.
	Throughput float64
	// EnergyJoules prices the run under the per-processor power model.
	EnergyJoules float64
	// PeakMemoryBytes is the maximum resident inference memory.
	PeakMemoryBytes int64
	// Plan and Execution expose the underlying artefacts for inspection
	// (stage assignments, timeline, memory traces).
	Plan      *core.Plan
	Execution *pipeline.Result
}

// resolveModels maps built-in model names to their descriptions, wrapping
// unknown names in ErrUnknownModel.
func resolveModels(modelNames []string) ([]*model.Model, error) {
	models := make([]*model.Model, len(modelNames))
	for i, name := range modelNames {
		m, err := model.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrUnknownModel, err)
		}
		models[i] = m
	}
	return models, nil
}

// spanContext arms span tracing (WithSpans) on a run's context — the one
// piece of context plumbing every canonical Run*Context method shares.
func (sys *System) spanContext(ctx context.Context) context.Context {
	return obs.ContextWithRecorder(ctx, sys.cfg.spans)
}

// execOptions assembles the executor options a run hands to the pipeline.
// withMetrics attaches the system registry — true only on the offline
// Run/RunModels path; the stream and fleet paths leave executor metrics to
// the device layer, which fans the registry in through per-device labeled
// views. logger, when nil, inherits the system logger (WithLogger).
func (sys *System) execOptions(withMetrics bool, logger *slog.Logger) pipeline.Options {
	opts := pipeline.DefaultOptions()
	if withMetrics {
		opts.Metrics = sys.cfg.metrics
	}
	opts.Logger = logger
	if opts.Logger == nil {
		opts.Logger = sys.cfg.logger
	}
	return opts
}

// runSLO resolves the system-level SLO class governing offline frontier
// runs: WithSLOClass, defaulting to latency-critical.
func (sys *System) runSLO() SLOClass {
	if sys.cfg.stream.SLO.Kind != core.SLOUnset {
		return sys.cfg.stream.SLO
	}
	return SLOLatencyCritical
}

// Run is RunContext under a background context.
func (sys *System) Run(modelNames ...string) (*Result, error) {
	return sys.RunContext(context.Background(), modelNames...)
}

// RunContext plans and executes the named models on the system under a
// cancellable context: cancellation aborts both the planner (inside its
// partition DP and worker pools) and the executor, returning an error
// wrapping ErrCancelled.
func (sys *System) RunContext(ctx context.Context, modelNames ...string) (*Result, error) {
	models, err := resolveModels(modelNames)
	if err != nil {
		return nil, err
	}
	return sys.RunModelsContext(ctx, models)
}

// RunModels is RunModelsContext under a background context.
func (sys *System) RunModels(models []*model.Model) (*Result, error) {
	return sys.RunModelsContext(context.Background(), models)
}

// RunModelsContext plans and executes explicit model descriptions (use
// encoding/json into model.Model for custom networks) under a cancellable
// context. Under WithObjective(ObjectiveFrontier) the planner enumerates
// the Pareto frontier and the run executes the point selected by the
// system's SLO class (WithSLOClass, default latency-critical — whose point
// is byte-identical to makespan planning).
func (sys *System) RunModelsContext(ctx context.Context, models []*model.Model) (*Result, error) {
	ctx = sys.spanContext(ctx)
	var plan *core.Plan
	if sys.cfg.stream.Objective == ObjectiveFrontier {
		f, err := sys.dev.Planner().PlanFrontierModelsContext(ctx, models)
		if err != nil {
			return nil, wrapRunErr(err)
		}
		plan = f.Select(sys.runSLO()).Plan
	} else {
		p, err := sys.dev.Planner().PlanModelsContext(ctx, models)
		if err != nil {
			return nil, wrapRunErr(err)
		}
		plan = p
	}
	exec, err := pipeline.ExecuteContext(ctx, plan.Schedule, sys.execOptions(true, nil))
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return &Result{
		Latency:         exec.Makespan,
		Throughput:      exec.Throughput(),
		EnergyJoules:    exec.EnergyJoules,
		PeakMemoryBytes: exec.PeakMemoryBytes,
		Plan:            plan,
		Execution:       exec,
	}, nil
}

// PlanFrontier is PlanFrontierContext under a background context.
func (sys *System) PlanFrontier(modelNames ...string) (*Frontier, error) {
	return sys.PlanFrontierContext(context.Background(), modelNames...)
}

// PlanFrontierContext enumerates the Pareto frontier over (makespan,
// throughput, energy, peak memory) for the named models under a
// cancellable context, without executing anything. Pick a point with
// Frontier.Select and an SLO class; the first point (min makespan) is
// byte-identical to the plan RunContext executes under the default
// objective. Frontiers are memoized in the plan cache (WithPlanCache)
// alongside single plans.
func (sys *System) PlanFrontierContext(ctx context.Context, modelNames ...string) (*Frontier, error) {
	models, err := resolveModels(modelNames)
	if err != nil {
		return nil, err
	}
	return sys.PlanFrontierModelsContext(ctx, models)
}

// PlanFrontierModels is PlanFrontierModelsContext under a background
// context.
func (sys *System) PlanFrontierModels(models []*model.Model) (*Frontier, error) {
	return sys.PlanFrontierModelsContext(context.Background(), models)
}

// PlanFrontierModelsContext is PlanFrontierContext for explicit model
// descriptions.
func (sys *System) PlanFrontierModelsContext(ctx context.Context, models []*model.Model) (*Frontier, error) {
	ctx = sys.spanContext(ctx)
	f, err := sys.dev.Planner().PlanFrontierModelsContext(ctx, models)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return f, nil
}

// SerialBaseline returns the serial big-CPU latency of the named models —
// the vanilla-MNN reference to quote speedups against.
func (sys *System) SerialBaseline(modelNames ...string) (time.Duration, error) {
	bigs := sys.dev.SoC().ProcessorsOfKind(soc.KindCPUBig)
	if len(bigs) == 0 {
		return 0, fmt.Errorf("%w: SoC has no big CPU cluster", ErrNoProcessor)
	}
	big := &sys.dev.SoC().Processors[bigs[0]]
	var total time.Duration
	for _, name := range modelNames {
		m, err := model.ByName(name)
		if err != nil {
			return 0, fmt.Errorf("%w: %w", ErrUnknownModel, err)
		}
		lat := soc.BatchLatency(big, m, 1)
		if lat == soc.InfDuration {
			return 0, fmt.Errorf("%w: %s cannot run on the big CPU", ErrNoProcessor, name)
		}
		total += lat
	}
	return total, nil
}

// ChromeTrace renders a result's execution as Chrome trace-event JSON.
func (r *Result) ChromeTrace() ([]byte, error) {
	return trace.ChromeTrace(r.Plan.Schedule, r.Execution)
}

// Gantt renders a result's execution as an ASCII timeline.
func (r *Result) Gantt(width int) string {
	return trace.Gantt(r.Plan.Schedule, r.Execution, width)
}

// Event re-exports the degradation event type injected into online runs.
type Event = soc.Event

// EventKind re-exports the degradation event kind.
type EventKind = soc.EventKind

// Degradation event kinds, re-exported for facade callers.
const (
	EventThermalThrottle  = soc.EventThermalThrottle
	EventFrequencyScale   = soc.EventFrequencyScale
	EventProcessorOffline = soc.EventProcessorOffline
	EventProcessorOnline  = soc.EventProcessorOnline
	EventBandwidthSqueeze = soc.EventBandwidthSqueeze
)

// ParseEvents parses a comma-separated list of degradation event specs in
// the grammar kind[:processor]@at[:factor], e.g.
// "throttle:cpu-big@10ms:1.8,offline:npu@40ms,bus@20ms:0.6". Results are
// sorted by time.
func ParseEvents(csv string) ([]Event, error) {
	return soc.ParseEvents(csv)
}

// StreamConfig re-exports the online scheduler configuration.
type StreamConfig = stream.Config

// StreamRequest re-exports the online request type (including its SLO
// class, honoured under frontier planning).
type StreamRequest = stream.Request

// ObjectiveMode re-exports the planning-mode selector (WithObjective).
type ObjectiveMode = core.ObjectiveMode

// Planning modes, re-exported for facade callers.
const (
	// ObjectiveMakespan plans the min-makespan schedule (the default).
	ObjectiveMakespan = core.ObjectiveMakespan
	// ObjectiveFrontier enumerates the Pareto frontier over (makespan,
	// throughput, energy, peak memory) and selects a point per SLO class.
	ObjectiveFrontier = core.ObjectiveFrontier
)

// ParseObjective maps a CLI/config string ("makespan", "frontier",
// "pareto", "") to an ObjectiveMode.
func ParseObjective(s string) (ObjectiveMode, error) { return core.ParseObjective(s) }

// Objective re-exports one plan's executed value on every planning axis.
type Objective = core.Objective

// Frontier re-exports the planner's non-dominated set (PlanFrontier),
// sorted by ascending makespan; FrontierPoint is one plan on it.
type Frontier = core.Frontier

// FrontierPoint re-exports one non-dominated plan with its objective.
type FrontierPoint = core.FrontierPoint

// SLOClass re-exports the service-level-objective class selecting a
// frontier point (WithSLOClass, StreamRequest.SLO); SLOWeights the weight
// vector of a custom class.
type SLOClass = core.SLOClass

// SLOWeights re-exports the custom-class weight vector (CustomSLO).
type SLOWeights = core.Weights

// The built-in SLO classes, re-exported for facade callers.
var (
	// SLOLatencyCritical selects the min-makespan frontier point —
	// byte-identical to the default planner's output.
	SLOLatencyCritical = core.SLOLatencyCritical
	// SLOBalanced trades all four axes with equal weight.
	SLOBalanced = core.SLOBalanced
	// SLOBatterySaver selects the min-energy frontier point.
	SLOBatterySaver = core.SLOBatterySaver
)

// CustomSLO builds a weighted SLO class from relative axis weights.
func CustomSLO(w SLOWeights) SLOClass { return core.CustomSLO(w) }

// ParseSLOClass parses an SLO class name ("latency-critical", "balanced",
// "battery-saver", "custom:w,w,w,w"; "" = scheduler default). Unknown
// names return an error wrapping ErrUnknownSLOClass.
func ParseSLOClass(s string) (SLOClass, error) { return core.ParseSLOClass(s) }

// StrictestSLO resolves the strictest (most latency-sensitive) class of a
// set — the rule a shared planning window applies to its members.
func StrictestSLO(classes ...SLOClass) SLOClass { return core.StrictestSLO(classes...) }

// StreamResult re-exports the online run summary, including degradation
// stats (replans, retried requests, deadline misses, per-window detail).
type StreamResult = stream.Result

// DefaultStreamConfig returns the default online configuration (window of
// eight, batching on, a modest retry budget).
func DefaultStreamConfig() StreamConfig { return stream.DefaultConfig() }

// MetricsRegistry re-exports the observability registry: named counters,
// gauges and fixed-bucket histograms, lock-free on the hot path and
// snapshot-able without stopping the world. Attach one with WithMetrics.
type MetricsRegistry = obs.Registry

// MetricsSnapshot re-exports a point-in-time view of a registry.
type MetricsSnapshot = obs.Snapshot

// RunReport re-exports the structured JSON run report populated on
// StreamResult.Report (and buildable for offline runs via h2pipe -report).
type RunReport = obs.RunReport

// NewMetricsRegistry creates a metrics registry. The name prefixes every
// exported series ("<name>_<metric>") in Prometheus text output.
func NewMetricsRegistry(name string) *MetricsRegistry { return obs.NewRegistry(name) }

// WritePrometheus writes a registry snapshot in Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, reg *MetricsRegistry) error {
	return obs.WritePrometheus(w, reg)
}

// PublishExpvar publishes the registry under "h2pipe:<name>" in the
// process-wide expvar namespace (visible on /debug/vars). Each registry
// name can be published once per process.
func PublishExpvar(reg *MetricsRegistry) error { return obs.PublishExpvar(reg) }

// StreamChromeTrace renders a stream run's collected window traces
// (StreamConfig.CollectWindowTraces) as Chrome trace-event JSON, with
// interrupted and replanned windows shown as distinct segments.
func StreamChromeTrace(res *StreamResult) ([]byte, error) {
	return trace.StreamChrome(res.WindowTraces)
}

// RunStream is RunStreamContext under a background context.
func (sys *System) RunStream(requests []StreamRequest, cfg StreamConfig) (*StreamResult, error) {
	return sys.RunStreamContext(context.Background(), requests, cfg)
}

// RunStreamContext executes an arrival-ordered request stream with
// per-window planning (the online deployment mode) under a cancellable
// context: cancellation aborts within one planning window on the simulated
// clock and returns an error wrapping ErrCancelled.
//
// Degradation events configured on the System (WithDegradationEvents)
// apply when cfg carries no events of its own; cfg.Events, when set,
// takes precedence for this run. The same inheritance covers the planning
// objective and default SLO class (WithObjective, WithSLOClass) when cfg
// leaves them zero-valued.
func (sys *System) RunStreamContext(ctx context.Context, requests []StreamRequest, cfg StreamConfig) (*StreamResult, error) {
	// The zero-value-config inheritance (WithWindow, WithMaxBatch,
	// WithDegradationEvents, objective/SLO, metrics/logger/feed fan-in)
	// lives on the device — stream scheduling is instance-scoped.
	res, err := sys.dev.Run(sys.spanContext(ctx), requests, cfg, sys.execOptions(false, cfg.Logger))
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return res, nil
}

// FleetResult re-exports the fleet run summary: per-device results, fleet
// completions/sojourns indexed by request, handoff counts and the merged
// FleetReport.
type FleetResult = fleet.Result

// FleetReport re-exports the merged fleet run report (per-device rows plus
// the fleet-wide roll-up).
type FleetReport = obs.FleetReport

// FleetStatus re-exports the fleet's live state — the payload of the
// observability server's /fleet endpoint.
type FleetStatus = fleet.Status

// FleetPoissonArrivals generates a fleet-wide arrival sequence whose
// per-device substreams are decorrelated via per-device seeds (splitmix64
// over one base seed), merged arrival-sorted. devices ≤ 1 matches
// stream.PoissonArrivals exactly.
func FleetPoissonArrivals(models []*model.Model, meanGap time.Duration, seed uint64, devices int) []StreamRequest {
	return fleet.PoissonArrivals(models, meanGap, seed, devices)
}

// RunFleet is RunFleetContext under a background context.
func (sys *System) RunFleet(requests []StreamRequest) (*FleetResult, error) {
	return sys.RunFleetContext(context.Background(), requests)
}

// RunFleetContext shards an arrival-ordered request stream across the
// fleet (WithFleet) and runs every device's shard concurrently under a
// cancellable context, failing halted devices' backlogs over to healthy
// peers. Per-request SLO classes (StreamRequest.SLO) travel with their
// requests through routing and failover unchanged.
func (sys *System) RunFleetContext(ctx context.Context, requests []StreamRequest) (*FleetResult, error) {
	if sys.fl == nil {
		return nil, errors.New("hetero2pipe: system built without WithFleet")
	}
	res, err := sys.fl.RunContext(ctx, requests, sys.execOptions(false, nil))
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return res, nil
}
