package hetero2pipe

import (
	"errors"
	"fmt"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/trace"
)

// This file is the library facade: the handful of calls most users need,
// wrapping the internal packages. Power users can reach the full machinery
// through the internal packages directly (this module is self-contained),
// but System covers the common flows: plan a request set, execute it under
// the co-execution slowdown model, run an online stream, export traces.

// System couples one SoC with a configured planner.
type System struct {
	soc     *soc.SoC
	planner *core.Planner
}

// Options re-exports the planner configuration. Options.Parallelism bounds
// the planner's worker pool (1 = strictly sequential, ≤ 0 = auto-size to
// GOMAXPROCS); the planned result is byte-identical at every setting — the
// engine merges parallel work in deterministic index order — so it is purely
// a planning-latency knob.
type Options = core.Options

// DefaultOptions returns the full Hetero²Pipe configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewSystem builds a System for a preset SoC name ("Kirin990",
// "Snapdragon778G", "Snapdragon870", "Snapdragon8Gen2", "Dimensity9200").
func NewSystem(preset string, opts Options) (*System, error) {
	s := soc.PresetByName(preset)
	if s == nil {
		return nil, fmt.Errorf("hetero2pipe: unknown SoC preset %q", preset)
	}
	return NewSystemFor(s, opts)
}

// NewSystemFor builds a System for a custom SoC description.
func NewSystemFor(s *soc.SoC, opts Options) (*System, error) {
	if s == nil {
		return nil, errors.New("hetero2pipe: nil SoC")
	}
	planner, err := core.NewPlanner(s, opts)
	if err != nil {
		return nil, err
	}
	return &System{soc: s, planner: planner}, nil
}

// SoC returns the system's SoC description.
func (sys *System) SoC() *soc.SoC { return sys.soc }

// CacheStats returns the planner's lifetime cost-cache counters: hits are
// per-(model, processor, batch) cost tables reused from an earlier plan or
// planning window, misses are fresh measurements. Online streams of
// recurring models converge to one miss per distinct model.
func (sys *System) CacheStats() (hits, misses uint64) { return sys.planner.CacheStats() }

// InvalidateCache drops the planner's memoized cost tables. Required after
// mutating the SoC description in place (e.g. frequency or thermal
// experiments); the next plan re-measures every model.
func (sys *System) InvalidateCache() { sys.planner.InvalidateCache() }

// Models lists the built-in network names: the ten-model evaluation zoo
// followed by the application extras.
func Models() []string {
	return append(model.Names(), model.ExtraNames()...)
}

// Result summarises one planned-and-executed request set.
type Result struct {
	// Latency is the completion time of the last request.
	Latency time.Duration
	// Throughput is completed inferences per second.
	Throughput float64
	// EnergyJoules prices the run under the per-processor power model.
	EnergyJoules float64
	// PeakMemoryBytes is the maximum resident inference memory.
	PeakMemoryBytes int64
	// Plan and Execution expose the underlying artefacts for inspection
	// (stage assignments, timeline, memory traces).
	Plan      *core.Plan
	Execution *pipeline.Result
}

// Run plans and executes the named models on the system.
func (sys *System) Run(modelNames ...string) (*Result, error) {
	models := make([]*model.Model, len(modelNames))
	for i, name := range modelNames {
		m, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return sys.RunModels(models)
}

// RunModels plans and executes explicit model descriptions (use
// encoding/json into model.Model for custom networks).
func (sys *System) RunModels(models []*model.Model) (*Result, error) {
	plan, err := sys.planner.PlanModels(models)
	if err != nil {
		return nil, err
	}
	exec, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Latency:         exec.Makespan,
		Throughput:      exec.Throughput(),
		EnergyJoules:    exec.EnergyJoules,
		PeakMemoryBytes: exec.PeakMemoryBytes,
		Plan:            plan,
		Execution:       exec,
	}, nil
}

// SerialBaseline returns the serial big-CPU latency of the named models —
// the vanilla-MNN reference to quote speedups against.
func (sys *System) SerialBaseline(modelNames ...string) (time.Duration, error) {
	bigs := sys.soc.ProcessorsOfKind(soc.KindCPUBig)
	if len(bigs) == 0 {
		return 0, errors.New("hetero2pipe: SoC has no big CPU cluster")
	}
	big := &sys.soc.Processors[bigs[0]]
	var total time.Duration
	for _, name := range modelNames {
		m, err := model.ByName(name)
		if err != nil {
			return 0, err
		}
		lat := soc.BatchLatency(big, m, 1)
		if lat == soc.InfDuration {
			return 0, fmt.Errorf("hetero2pipe: %s cannot run on the big CPU", name)
		}
		total += lat
	}
	return total, nil
}

// ChromeTrace renders a result's execution as Chrome trace-event JSON.
func (r *Result) ChromeTrace() ([]byte, error) {
	return trace.ChromeTrace(r.Plan.Schedule, r.Execution)
}

// Gantt renders a result's execution as an ASCII timeline.
func (r *Result) Gantt(width int) string {
	return trace.Gantt(r.Plan.Schedule, r.Execution, width)
}

// StreamConfig re-exports the online scheduler configuration.
type StreamConfig = stream.Config

// StreamRequest re-exports the online request type.
type StreamRequest = stream.Request

// StreamResult re-exports the online run summary.
type StreamResult = stream.Result

// RunStream executes an arrival-ordered request stream with per-window
// planning (the online deployment mode).
func (sys *System) RunStream(requests []StreamRequest, cfg StreamConfig) (*StreamResult, error) {
	sched, err := stream.NewScheduler(sys.planner, cfg)
	if err != nil {
		return nil, err
	}
	return sched.Run(requests, pipeline.DefaultOptions())
}
