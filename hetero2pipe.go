package hetero2pipe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/trace"
)

// This file is the library facade: the handful of calls most users need,
// wrapping the internal packages. Power users can reach the full machinery
// through the internal packages directly (this module is self-contained),
// but System covers the common flows: plan a request set, execute it under
// the co-execution slowdown model, run an online stream — with degradation
// events, cancellation and per-window replanning — and export traces.

// System couples one SoC with a configured planner.
type System struct {
	soc     *soc.SoC
	planner *core.Planner
	cfg     config
	// feed is the live window outlet shared by every RunStream call and the
	// observability server's /windows and /readyz endpoints.
	feed *stream.Feed
}

// NewSystem builds a System for a preset SoC name ("Kirin990",
// "Snapdragon778G", "Snapdragon870", "Snapdragon8Gen2", "Dimensity9200").
// With no options it applies the full Hetero²Pipe defaults; pass
// functional options (WithParallelism, WithDegradationEvents, ...) or a
// legacy Options struct to customise.
func NewSystem(preset string, opts ...Option) (*System, error) {
	s := soc.PresetByName(preset)
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPreset, preset)
	}
	return NewSystemFor(s, opts...)
}

// NewSystemFor builds a System for a custom SoC description.
func NewSystemFor(s *soc.SoC, opts ...Option) (*System, error) {
	if s == nil {
		return nil, errors.New("hetero2pipe: nil SoC")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.metrics != nil {
		// One registry feeds every layer; option order doesn't matter
		// because WithPlannerOptions replaces the struct before this point.
		cfg.planner.Metrics = cfg.metrics
		cfg.stream.Metrics = cfg.metrics
	}
	if cfg.logger != nil {
		// Same fan-out for the structured logger.
		cfg.planner.Logger = cfg.logger
		cfg.stream.Logger = cfg.logger
	}
	feed := stream.NewFeed(0)
	cfg.stream.Feed = feed
	planner, err := core.NewPlanner(s, cfg.planner)
	if err != nil {
		return nil, err
	}
	return &System{soc: s, planner: planner, cfg: cfg, feed: feed}, nil
}

// SoC returns the system's SoC description.
func (sys *System) SoC() *soc.SoC { return sys.soc }

// CacheStats returns the planner's lifetime cost-cache counters: hits are
// lookups that reused at least one memoized per-(model, processor, batch)
// cost table, misses are lookups that measured at least one fresh table.
// Online streams of recurring models converge to one miss per distinct
// model; a degradation event adds one miss per model only for the affected
// processors' tables.
func (sys *System) CacheStats() (hits, misses uint64) { return sys.planner.CacheStats() }

// PlanCacheStats returns the planner's lifetime whole-plan cache counters
// (WithPlanCache): a hit is a planning call served a memoized plan without
// running the two-step optimisation, a miss is a call planned in full. Both
// zero when the plan cache is disabled.
func (sys *System) PlanCacheStats() (hits, misses uint64) { return sys.planner.PlanCacheStats() }

// InvalidateCache drops the planner's memoized cost tables. Required after
// mutating the SoC description in place (e.g. frequency or thermal
// experiments); the next plan re-measures every model. To invalidate only
// the processors touched by a degradation event, use ApplyEvent instead.
func (sys *System) InvalidateCache() { sys.planner.InvalidateCache() }

// ApplyEvent applies one degradation event to the SoC immediately and
// invalidates only the affected processors' cost tables. RunStream does
// this automatically for configured events; ApplyEvent is the manual hook
// for offline experiments.
func (sys *System) ApplyEvent(ev Event) error {
	affected, err := sys.soc.Apply(ev)
	if err != nil {
		return err
	}
	sys.planner.InvalidateProcessors(affected...)
	return nil
}

// Models lists the built-in network names: the ten-model evaluation zoo
// followed by the application extras.
func Models() []string {
	return append(model.Names(), model.ExtraNames()...)
}

// Result summarises one planned-and-executed request set.
type Result struct {
	// Latency is the completion time of the last request.
	Latency time.Duration
	// Throughput is completed inferences per second.
	Throughput float64
	// EnergyJoules prices the run under the per-processor power model.
	EnergyJoules float64
	// PeakMemoryBytes is the maximum resident inference memory.
	PeakMemoryBytes int64
	// Plan and Execution expose the underlying artefacts for inspection
	// (stage assignments, timeline, memory traces).
	Plan      *core.Plan
	Execution *pipeline.Result
}

// Run plans and executes the named models on the system.
func (sys *System) Run(modelNames ...string) (*Result, error) {
	return sys.RunContext(context.Background(), modelNames...)
}

// RunContext is Run under a cancellable context: cancellation aborts both
// the planner (inside its partition DP and worker pools) and the executor,
// returning an error wrapping ErrCancelled.
func (sys *System) RunContext(ctx context.Context, modelNames ...string) (*Result, error) {
	models := make([]*model.Model, len(modelNames))
	for i, name := range modelNames {
		m, err := model.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrUnknownModel, err)
		}
		models[i] = m
	}
	return sys.RunModelsContext(ctx, models)
}

// RunModels plans and executes explicit model descriptions (use
// encoding/json into model.Model for custom networks).
func (sys *System) RunModels(models []*model.Model) (*Result, error) {
	return sys.RunModelsContext(context.Background(), models)
}

// RunModelsContext is RunModels under a cancellable context.
func (sys *System) RunModelsContext(ctx context.Context, models []*model.Model) (*Result, error) {
	ctx = obs.ContextWithRecorder(ctx, sys.cfg.spans)
	plan, err := sys.planner.PlanModelsContext(ctx, models)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	execOpts := pipeline.DefaultOptions()
	execOpts.Metrics = sys.cfg.metrics
	execOpts.Logger = sys.cfg.logger
	exec, err := pipeline.ExecuteContext(ctx, plan.Schedule, execOpts)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return &Result{
		Latency:         exec.Makespan,
		Throughput:      exec.Throughput(),
		EnergyJoules:    exec.EnergyJoules,
		PeakMemoryBytes: exec.PeakMemoryBytes,
		Plan:            plan,
		Execution:       exec,
	}, nil
}

// SerialBaseline returns the serial big-CPU latency of the named models —
// the vanilla-MNN reference to quote speedups against.
func (sys *System) SerialBaseline(modelNames ...string) (time.Duration, error) {
	bigs := sys.soc.ProcessorsOfKind(soc.KindCPUBig)
	if len(bigs) == 0 {
		return 0, fmt.Errorf("%w: SoC has no big CPU cluster", ErrNoProcessor)
	}
	big := &sys.soc.Processors[bigs[0]]
	var total time.Duration
	for _, name := range modelNames {
		m, err := model.ByName(name)
		if err != nil {
			return 0, fmt.Errorf("%w: %w", ErrUnknownModel, err)
		}
		lat := soc.BatchLatency(big, m, 1)
		if lat == soc.InfDuration {
			return 0, fmt.Errorf("%w: %s cannot run on the big CPU", ErrNoProcessor, name)
		}
		total += lat
	}
	return total, nil
}

// ChromeTrace renders a result's execution as Chrome trace-event JSON.
func (r *Result) ChromeTrace() ([]byte, error) {
	return trace.ChromeTrace(r.Plan.Schedule, r.Execution)
}

// Gantt renders a result's execution as an ASCII timeline.
func (r *Result) Gantt(width int) string {
	return trace.Gantt(r.Plan.Schedule, r.Execution, width)
}

// Event re-exports the degradation event type injected into online runs.
type Event = soc.Event

// EventKind re-exports the degradation event kind.
type EventKind = soc.EventKind

// Degradation event kinds, re-exported for facade callers.
const (
	EventThermalThrottle  = soc.EventThermalThrottle
	EventFrequencyScale   = soc.EventFrequencyScale
	EventProcessorOffline = soc.EventProcessorOffline
	EventProcessorOnline  = soc.EventProcessorOnline
	EventBandwidthSqueeze = soc.EventBandwidthSqueeze
)

// ParseEvents parses a comma-separated list of degradation event specs in
// the grammar kind[:processor]@at[:factor], e.g.
// "throttle:cpu-big@10ms:1.8,offline:npu@40ms,bus@20ms:0.6". Results are
// sorted by time.
func ParseEvents(csv string) ([]Event, error) {
	return soc.ParseEvents(csv)
}

// StreamConfig re-exports the online scheduler configuration.
type StreamConfig = stream.Config

// StreamRequest re-exports the online request type.
type StreamRequest = stream.Request

// StreamResult re-exports the online run summary, including degradation
// stats (replans, retried requests, deadline misses, per-window detail).
type StreamResult = stream.Result

// DefaultStreamConfig returns the default online configuration (window of
// eight, batching on, a modest retry budget).
func DefaultStreamConfig() StreamConfig { return stream.DefaultConfig() }

// MetricsRegistry re-exports the observability registry: named counters,
// gauges and fixed-bucket histograms, lock-free on the hot path and
// snapshot-able without stopping the world. Attach one with WithMetrics.
type MetricsRegistry = obs.Registry

// MetricsSnapshot re-exports a point-in-time view of a registry.
type MetricsSnapshot = obs.Snapshot

// RunReport re-exports the structured JSON run report populated on
// StreamResult.Report (and buildable for offline runs via h2pipe -report).
type RunReport = obs.RunReport

// NewMetricsRegistry creates a metrics registry. The name prefixes every
// exported series ("<name>_<metric>") in Prometheus text output.
func NewMetricsRegistry(name string) *MetricsRegistry { return obs.NewRegistry(name) }

// WritePrometheus writes a registry snapshot in Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, reg *MetricsRegistry) error {
	return obs.WritePrometheus(w, reg)
}

// PublishExpvar publishes the registry under "h2pipe:<name>" in the
// process-wide expvar namespace (visible on /debug/vars). Each registry
// name can be published once per process.
func PublishExpvar(reg *MetricsRegistry) error { return obs.PublishExpvar(reg) }

// StreamChromeTrace renders a stream run's collected window traces
// (StreamConfig.CollectWindowTraces) as Chrome trace-event JSON, with
// interrupted and replanned windows shown as distinct segments.
func StreamChromeTrace(res *StreamResult) ([]byte, error) {
	return trace.StreamChrome(res.WindowTraces)
}

// RunStream executes an arrival-ordered request stream with per-window
// planning (the online deployment mode).
func (sys *System) RunStream(requests []StreamRequest, cfg StreamConfig) (*StreamResult, error) {
	return sys.RunStreamContext(context.Background(), requests, cfg)
}

// RunStreamContext is RunStream under a cancellable context: cancellation
// aborts within one planning window on the simulated clock and returns an
// error wrapping ErrCancelled.
//
// Degradation events configured on the System (WithDegradationEvents)
// apply when cfg carries no events of its own; cfg.Events, when set,
// takes precedence for this run.
func (sys *System) RunStreamContext(ctx context.Context, requests []StreamRequest, cfg StreamConfig) (*StreamResult, error) {
	if cfg.MaxWindow == 0 {
		// Zero-value config: inherit the system-level stream settings
		// (WithWindow, WithMaxBatch, WithDegradationEvents), keeping any
		// events the caller did set.
		events := cfg.Events
		cfg = sys.cfg.stream
		if events != nil {
			cfg.Events = events
		}
	} else if cfg.Events == nil {
		cfg.Events = sys.cfg.stream.Events
	}
	if cfg.Metrics == nil {
		cfg.Metrics = sys.cfg.stream.Metrics
	}
	if cfg.Logger == nil {
		cfg.Logger = sys.cfg.stream.Logger
	}
	if cfg.Feed == nil {
		cfg.Feed = sys.feed
	}
	sched, err := stream.NewScheduler(sys.planner, cfg)
	if err != nil {
		return nil, err
	}
	ctx = obs.ContextWithRecorder(ctx, sys.cfg.spans)
	execOpts := pipeline.DefaultOptions()
	execOpts.Logger = cfg.Logger
	res, err := sched.RunContext(ctx, requests, execOpts)
	if err != nil {
		return nil, wrapRunErr(err)
	}
	return res, nil
}
