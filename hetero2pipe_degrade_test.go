package hetero2pipe_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"hetero2pipe"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/stream"
)

func burst(t *testing.T, names ...string) []hetero2pipe.StreamRequest {
	t.Helper()
	out := make([]hetero2pipe.StreamRequest, len(names))
	for i, name := range names {
		out[i] = hetero2pipe.StreamRequest{Model: model.MustByName(name)}
	}
	return out
}

func TestFacadeSentinelUnknownPreset(t *testing.T) {
	_, err := hetero2pipe.NewSystem("NoSuchChip")
	if !errors.Is(err, hetero2pipe.ErrUnknownPreset) {
		t.Errorf("error %v does not wrap ErrUnknownPreset", err)
	}
}

func TestFacadeSentinelUnknownModel(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("NoSuchNet"); !errors.Is(err, hetero2pipe.ErrUnknownModel) {
		t.Errorf("Run error %v does not wrap ErrUnknownModel", err)
	}
	if _, err := sys.SerialBaseline("NoSuchNet"); !errors.Is(err, hetero2pipe.ErrUnknownModel) {
		t.Errorf("SerialBaseline error %v does not wrap ErrUnknownModel", err)
	}
}

func TestFacadeSentinelNoProcessor(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"npu", "cpu-big", "gpu", "cpu-small"} {
		if err := sys.ApplyEvent(hetero2pipe.Event{Kind: hetero2pipe.EventProcessorOffline, Processor: p}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Run("ResNet50"); !errors.Is(err, hetero2pipe.ErrNoProcessor) {
		t.Errorf("Run on fully-offline SoC: error %v does not wrap ErrNoProcessor", err)
	}
}

func TestFacadeSentinelCancelled(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx, "ResNet50"); !errors.Is(err, hetero2pipe.ErrCancelled) {
		t.Errorf("RunContext error %v does not wrap ErrCancelled", err)
	}
	reqs := burst(t, model.ResNet50, model.SqueezeNet)
	if _, err := sys.RunStreamContext(ctx, reqs, hetero2pipe.DefaultStreamConfig()); !errors.Is(err, hetero2pipe.ErrCancelled) {
		t.Errorf("RunStreamContext error %v does not wrap ErrCancelled", err)
	}
}

// TestFacadeDegradedStream is the ISSUE acceptance scenario end to end: a
// processor-offline event injected mid-stream through the functional
// options; every request completes on the survivors and the result reports
// the replan.
func TestFacadeDegradedStream(t *testing.T) {
	names := []string{
		model.ResNet50, model.BERT, model.GoogLeNet,
		model.ResNet50, model.BERT, model.GoogLeNet,
	}
	base, err := hetero2pipe.NewSystem("Kirin990", hetero2pipe.WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.RunStream(burst(t, names...), hetero2pipe.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}

	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithMaxBatch(1),
		hetero2pipe.WithDegradationEvents(hetero2pipe.Event{
			Kind:      hetero2pipe.EventProcessorOffline,
			Processor: "npu",
			At:        baseRes.WindowStats[0].End / 3,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs := burst(t, names...)
	res, err := sys.RunStream(reqs, hetero2pipe.StreamConfig{})
	if err != nil {
		t.Fatalf("degraded stream: %v", err)
	}
	if res.Replans < 1 {
		t.Errorf("expected at least one replan, got %d", res.Replans)
	}
	if res.EventsApplied != 1 {
		t.Errorf("EventsApplied = %d, want 1", res.EventsApplied)
	}
	for i := range reqs {
		if res.Completions[i] <= 0 {
			t.Errorf("request %d never completed", i)
		}
	}
	if res.Makespan <= baseRes.Makespan {
		t.Errorf("degraded makespan %v not above baseline %v", res.Makespan, baseRes.Makespan)
	}
}

// TestFacadeOptionsCompose: functional options, the legacy struct shim and
// parsed events all feed the same configuration.
func TestFacadeOptionsCompose(t *testing.T) {
	seq, err := hetero2pipe.NewSystem("Kirin990", hetero2pipe.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.Run("ResNet50", "SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run("ResNet50", "SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency {
		t.Errorf("parallelism changed the plan: %v vs %v", a.Latency, b.Latency)
	}

	events, err := hetero2pipe.ParseEvents("throttle:gpu@1ms:2,offline:npu@2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != hetero2pipe.EventThermalThrottle {
		t.Fatalf("parsed events %v", events)
	}
	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithWindow(2),
		hetero2pipe.WithMaxBatch(1),
		hetero2pipe.WithDegradationEvents(events...),
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs := stream.PoissonArrivals([]*model.Model{
		model.MustByName(model.SqueezeNet),
		model.MustByName(model.MobileNetV2),
		model.MustByName(model.SqueezeNet),
		model.MustByName(model.MobileNetV2),
	}, 5*time.Millisecond, 11)
	res, err := sys.RunStream(reqs, hetero2pipe.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsApplied != 2 {
		t.Errorf("EventsApplied = %d, want 2", res.EventsApplied)
	}
	for _, ws := range res.WindowStats {
		if ws.Requests > 2 {
			t.Errorf("WithWindow(2) ignored: window of %d requests", ws.Requests)
		}
	}
	// A per-run config with an explicit (non-nil) event list overrides the
	// system events; empty means "no events this run".
	cfg := hetero2pipe.DefaultStreamConfig()
	cfg.Events = []hetero2pipe.Event{}
	res, err = sys.RunStream(burst(t, model.SqueezeNet), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsApplied != 0 {
		t.Errorf("explicit empty event list still applied %d events", res.EventsApplied)
	}
}
