package hetero2pipe_test

import (
	"encoding/json"
	"strings"
	"testing"

	"hetero2pipe"

	"hetero2pipe/internal/model"
)

// TestObsFacadeWithMetrics: one WithMetrics registry feeds all three layers
// through both the offline and the streaming entry points, and exports in
// Prometheus text format.
func TestObsFacadeWithMetrics(t *testing.T) {
	reg := hetero2pipe.NewMetricsRegistry("h2pipe")
	sys, err := hetero2pipe.NewSystem("Kirin990", hetero2pipe.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("ResNet50", "SqueezeNet"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["planner_plans_total"] == 0 {
		t.Error("offline run recorded no plans")
	}
	if snap.Counters["executor_slices_total"] == 0 {
		t.Error("offline run recorded no executor slices")
	}

	res, err := sys.RunStream(burst(t, model.ResNet50, model.SqueezeNet, model.GoogLeNet),
		hetero2pipe.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("stream result carries no run report")
	}
	snap = reg.Snapshot()
	if got := snap.Counters["stream_windows_total"]; got != uint64(res.Windows) {
		t.Errorf("stream_windows_total = %d, want %d", got, res.Windows)
	}
	if snap.Histograms["stream_sojourn_seconds"].Count != 3 {
		t.Errorf("sojourn observations = %d, want 3",
			snap.Histograms["stream_sojourn_seconds"].Count)
	}

	var sb strings.Builder
	if err := hetero2pipe.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE", "h2pipe_planner_plans_total", "h2pipe_stream_windows_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

// TestObsFacadeStreamTrace: CollectWindowTraces through the facade config
// renders via StreamChromeTrace.
func TestObsFacadeStreamTrace(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	cfg := hetero2pipe.DefaultStreamConfig()
	cfg.CollectWindowTraces = true
	res, err := sys.RunStream(burst(t, model.ResNet50, model.SqueezeNet), cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := hetero2pipe.StreamChromeTrace(res)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace is empty")
	}

	// Without the flag, there is nothing to render.
	res2, err := sys.RunStream(burst(t, model.SqueezeNet), hetero2pipe.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hetero2pipe.StreamChromeTrace(res2); err == nil {
		t.Error("StreamChromeTrace accepted a run without collected traces")
	}
}
