package hetero2pipe_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetero2pipe"
)

// gateHandler is a slog.Handler that blocks the scheduler on its first
// "window complete" record: it signals entered and waits for release. The
// stream scheduler publishes each window to the feed *before* emitting the
// record, so while the handler blocks, the run is provably mid-flight with
// at least one window live on the feed — the deterministic hook the e2e
// test uses to probe the HTTP endpoints mid-run without timing sleeps.
type gateHandler struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (h *gateHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *gateHandler) Handle(_ context.Context, r slog.Record) error {
	if r.Message == "window complete" {
		h.once.Do(func() {
			close(h.entered)
			<-h.release
		})
	}
	return nil
}
func (h *gateHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *gateHandler) WithGroup(string) slog.Handler      { return h }

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServeObsEndToEnd is the acceptance-criterion e2e test: a stream run
// under WithMetrics/WithSpans/WithLogger is frozen mid-run (via the gate
// handler) and every observability endpoint is probed live, then again
// after completion.
func TestServeObsEndToEnd(t *testing.T) {
	gate := &gateHandler{entered: make(chan struct{}), release: make(chan struct{})}
	reg := hetero2pipe.NewMetricsRegistry("servetest")
	rec := hetero2pipe.NewSpanRecorder(0)
	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithMetrics(reg),
		hetero2pipe.WithSpans(rec),
		hetero2pipe.WithLogger(slog.New(gate)),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.ObsHandler())
	defer srv.Close()

	// Before any run: alive but not ready.
	if code, _ := httpGet(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz pre-run: %d, want 200", code)
	}
	if code, _ := httpGet(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz pre-run: %d, want 503", code)
	}

	// One request per window so the run spans several windows.
	cfg := hetero2pipe.DefaultStreamConfig()
	cfg.MaxWindow = 1
	reqs := burst(t, "SqueezeNet", "MobileNetV2", "SqueezeNet")
	runErr := make(chan error, 1)
	var res *hetero2pipe.StreamResult
	go func() {
		var err error
		res, err = sys.RunStream(reqs, cfg)
		runErr <- err
	}()

	// The scheduler is now frozen inside its first window-complete record,
	// with that window already published to the feed.
	select {
	case <-gate.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler never reached its first window-complete record")
	}

	if code, _ := httpGet(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz mid-run: %d, want 200", code)
	}
	if code, body := httpGet(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz mid-run: %d (%s), want 200", code, body)
	}
	if code, body := httpGet(t, srv.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics mid-run: %d, want 200", code)
	} else if !strings.Contains(body, "servetest_stream_windows_total") {
		t.Errorf("/metrics mid-run lacks the stream_windows series:\n%.500s", body)
	}
	code, body := httpGet(t, srv.URL+"/windows")
	if code != http.StatusOK {
		t.Fatalf("/windows mid-run: %d, want 200", code)
	}
	var payload struct {
		Ready   bool `json:"ready"`
		Total   int  `json:"total"`
		Sojourn *struct {
			P50MS float64 `json:"p50_ms"`
			P99MS float64 `json:"p99_ms"`
		} `json:"sojourn_quantiles"`
		Windows []struct {
			Requests  int `json:"Requests"`
			Completed int `json:"Completed"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/windows mid-run: bad JSON: %v\n%s", err, body)
	}
	if !payload.Ready {
		t.Error("/windows mid-run: ready=false, want true")
	}
	if payload.Total < 1 || len(payload.Windows) < 1 {
		t.Errorf("/windows mid-run: total=%d windows=%d, want ≥1 live window",
			payload.Total, len(payload.Windows))
	}
	// One window has completed, so the sojourn histogram is populated and
	// the payload surfaces interpolated latency quantiles.
	if payload.Sojourn == nil {
		t.Error("/windows mid-run lacks sojourn_quantiles with metrics attached")
	} else if payload.Sojourn.P50MS <= 0 || payload.Sojourn.P99MS < payload.Sojourn.P50MS {
		t.Errorf("/windows mid-run sojourn quantiles implausible: %+v", payload.Sojourn)
	}
	if code, _ := httpGet(t, srv.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ mid-run: %d, want 200", code)
	}
	if code, _ := httpGet(t, srv.URL+"/vars"); code != http.StatusOK {
		t.Errorf("/vars mid-run: %d, want 200", code)
	}
	if code, body := httpGet(t, srv.URL+"/spans"); code != http.StatusOK {
		t.Errorf("/spans mid-run: %d, want 200", code)
	} else if !strings.Contains(body, "resourceSpans") {
		t.Errorf("/spans mid-run: not OTLP-shaped:\n%.300s", body)
	}

	close(gate.release)
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}

	// After the run: still alive, no longer ready, all windows on the feed.
	if code, _ := httpGet(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz post-run: %d, want 503", code)
	}
	_, body = httpGet(t, srv.URL+"/windows")
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Total != res.Windows {
		t.Errorf("/windows post-run total %d != result windows %d", payload.Total, res.Windows)
	}
}

// TestServeObsSSE covers the ?sse=1 variant: a subscriber connected before
// the run streams every window as a Server-Sent Event.
func TestServeObsSSE(t *testing.T) {
	reg := hetero2pipe.NewMetricsRegistry("ssetest")
	sys, err := hetero2pipe.NewSystem("Kirin990", hetero2pipe.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.ObsHandler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/windows?sse=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	cfg := hetero2pipe.DefaultStreamConfig()
	cfg.MaxWindow = 1
	res, err := sys.RunStream(burst(t, "SqueezeNet", "MobileNetV2"), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Read until every window of the finished run has arrived (the response
	// stays open — the stream only ends when the client disconnects).
	events := 0
	buf := make([]byte, 4096)
	var acc strings.Builder
	deadline := time.After(30 * time.Second)
	for events < res.Windows {
		select {
		case <-deadline:
			t.Fatalf("SSE delivered %d events, want %d; got:\n%s", events, res.Windows, acc.String())
		default:
		}
		n, err := resp.Body.Read(buf)
		if n > 0 {
			acc.Write(buf[:n])
			events = strings.Count(acc.String(), "event: window\n")
		}
		if err != nil {
			break
		}
	}
	if events < res.Windows {
		t.Fatalf("SSE delivered %d events, want %d", events, res.Windows)
	}
	if !strings.Contains(acc.String(), "\"Requests\":") {
		t.Errorf("SSE data payload is not a WindowStat:\n%.300s", acc.String())
	}
}
