package hetero2pipe_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hetero2pipe"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

func TestFacadeRun(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("ResNet50", "BERT", "SqueezeNet")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latency <= 0 || res.Throughput <= 0 || res.EnergyJoules <= 0 {
		t.Fatalf("result %+v incomplete", res)
	}
	serial, err := sys.SerialBaseline("ResNet50", "BERT", "SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	if serial <= res.Latency {
		t.Errorf("serial baseline %v not above planned %v", serial, res.Latency)
	}
	// The visualisation hooks work off the same result.
	if g := res.Gantt(40); !strings.Contains(g, "npu") {
		t.Error("gantt missing processor rows")
	}
	data, err := res.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := hetero2pipe.NewSystem("NoSuchChip"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := hetero2pipe.NewSystemFor(nil); err == nil {
		t.Error("nil SoC accepted")
	}
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("NoSuchNet"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := sys.SerialBaseline("NoSuchNet"); err == nil {
		t.Error("unknown model accepted in baseline")
	}
}

func TestFacadeModels(t *testing.T) {
	names := hetero2pipe.Models()
	if len(names) != 13 { // 10 evaluation + 3 application extras
		t.Fatalf("Models() = %d names: %v", len(names), names)
	}
	sys, err := hetero2pipe.NewSystem("Snapdragon870")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(names[0], names[len(names)-1]); err != nil {
		t.Fatalf("running first+last listed models: %v", err)
	}
}

func TestFacadeCustomSoC(t *testing.T) {
	custom := soc.Kirin990()
	custom.Name = "CustomChip"
	sys, err := hetero2pipe.NewSystemFor(custom)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SoC().Name != "CustomChip" {
		t.Error("SoC accessor mismatch")
	}
	res, err := sys.RunModels([]*model.Model{model.MustByName(model.GoogLeNet)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Execution.Completions) != 1 {
		t.Error("single request did not complete")
	}
}

func TestFacadeStream(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	requests := stream.PoissonArrivals([]*model.Model{
		model.MustByName(model.SqueezeNet),
		model.MustByName(model.MobileNetV2),
		model.MustByName(model.ResNet50),
	}, 10*time.Millisecond, 3)
	res, err := sys.RunStream(requests, stream.DefaultConfig())
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if len(res.Completions) != 3 || res.Windows < 1 {
		t.Fatalf("stream result %+v", res)
	}
}
