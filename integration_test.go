package hetero2pipe_test

import (
	"testing"

	"hetero2pipe"

	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

// TestIntegrationSweep is the end-to-end acceptance sweep: every preset SoC
// runs a spread of mixed workloads (seeded random combos, the intro
// application, the batching stream) through the full plan-and-execute path,
// and on every run the planned pipeline beats the serial CPU baseline. It
// is the repository's "does the whole system hold together" check.
func TestIntegrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep spans every preset")
	}
	gen, err := workload.NewGenerator(31337, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	workloads := [][]string{
		workload.SceneUnderstanding(),
		workload.VideoAnalytics(8),
	}
	workloads = append(workloads, gen.Combos(4)...)

	for _, platform := range soc.AllPresets() {
		if platform.Name == "DesktopCUDA" {
			continue // single-processor reference; nothing to pipeline
		}
		platform := platform
		t.Run(platform.Name, func(t *testing.T) {
			sys, err := hetero2pipe.NewSystemFor(platform)
			if err != nil {
				t.Fatal(err)
			}
			for wi, names := range workloads {
				res, err := sys.Run(names...)
				if err != nil {
					t.Fatalf("workload %d (%v): %v", wi, names, err)
				}
				if err := res.Plan.Schedule.Validate(); err != nil {
					t.Fatalf("workload %d: invalid schedule: %v", wi, err)
				}
				if got := len(res.Execution.Completions); got != len(names) {
					t.Fatalf("workload %d: %d completions for %d requests", wi, got, len(names))
				}
				serial, err := sys.SerialBaseline(names...)
				if err != nil {
					t.Fatalf("workload %d: baseline: %v", wi, err)
				}
				if res.Latency >= serial {
					t.Errorf("workload %d (%v): planned %v not below serial %v",
						wi, names, res.Latency, serial)
				}
				if res.EnergyJoules <= 0 || res.PeakMemoryBytes <= 0 {
					t.Errorf("workload %d: degenerate metrics %+v", wi, res)
				}
				if res.PeakMemoryBytes > platform.MemoryCapacityBytes {
					t.Errorf("workload %d: peak memory %d exceeds capacity %d (Eq. 6)",
						wi, res.PeakMemoryBytes, platform.MemoryCapacityBytes)
				}
			}
		})
	}
}
