// Package autotune fits an SoC description to measured device latencies.
// The presets in internal/soc were calibrated by hand against the paper's
// anchor points (see cmd/calibrate); autotune mechanises the same loop for
// users bringing their own hardware: given solo latency measurements of
// known models on named processors, it searches each processor's
// PeakGFLOPS and SoloBandwidthGBps by coordinate descent to minimise the
// relative latency error. The contention constants are left alone — they
// are cross-SoC behavioural parameters, not per-device ones.
package autotune

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Measurement is one observed solo latency: the whole model executed on one
// processor of the device being fitted.
type Measurement struct {
	// ProcessorID names the processor in the SoC description.
	ProcessorID string
	// Model is the zoo (or custom) network that was measured.
	Model *model.Model
	// Latency is the observed end-to-end solo latency.
	Latency time.Duration
}

// Config tunes the fit.
type Config struct {
	// Iterations is the number of coordinate-descent sweeps.
	Iterations int
	// Step is the initial multiplicative step per parameter (e.g. 0.3
	// tries ×1.3 and ×1/1.3); it shrinks geometrically.
	Step float64
}

// DefaultConfig converges well for presets perturbed up to ~3×.
func DefaultConfig() Config {
	return Config{Iterations: 40, Step: 0.4}
}

// Result reports the fit.
type Result struct {
	// SoC is the fitted description (a deep-adjusted copy of the input).
	SoC *soc.SoC
	// InitialError and FinalError are mean relative latency errors.
	InitialError, FinalError float64
}

// Fit adjusts the compute and bandwidth parameters of s's processors so the
// simulated solo latencies match the measurements. The input SoC is not
// modified.
func Fit(s *soc.SoC, measurements []Measurement, cfg Config) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("autotune: %w", err)
	}
	if len(measurements) == 0 {
		return nil, errors.New("autotune: no measurements")
	}
	if cfg.Iterations <= 0 || cfg.Step <= 0 {
		cfg = DefaultConfig()
	}
	fitted := cloneSoC(s)
	// Group measurement indices by processor.
	perProc := make(map[string][]int)
	for i, m := range measurements {
		if fitted.Processor(m.ProcessorID) == nil {
			return nil, fmt.Errorf("autotune: unknown processor %q", m.ProcessorID)
		}
		if m.Latency <= 0 {
			return nil, fmt.Errorf("autotune: measurement %d has non-positive latency", i)
		}
		perProc[m.ProcessorID] = append(perProc[m.ProcessorID], i)
	}

	initial := meanError(fitted, measurements)
	step := cfg.Step
	for iter := 0; iter < cfg.Iterations; iter++ {
		improved := false
		for id, idxs := range perProc {
			p := fitted.Processor(id)
			for _, param := range []*float64{&p.PeakGFLOPS, &p.SoloBandwidthGBps} {
				base := *param
				bestV, bestE := base, procError(fitted, measurements, idxs)
				for _, factor := range []float64{1 + step, 1 / (1 + step)} {
					*param = base * factor
					if e := procError(fitted, measurements, idxs); e < bestE {
						bestV, bestE = *param, e
						improved = true
					}
				}
				*param = bestV
			}
		}
		if !improved {
			step *= 0.5
			if step < 1e-3 {
				break
			}
		}
	}
	return &Result{
		SoC:          fitted,
		InitialError: initial,
		FinalError:   meanError(fitted, measurements),
	}, nil
}

// simulatedLatency is the solo whole-model latency the simulator predicts.
func simulatedLatency(p *soc.Processor, m *model.Model) time.Duration {
	return soc.BatchLatency(p, m, 1)
}

// relError returns |sim − obs| / obs for one measurement; unsupported
// placements count as a full miss.
func relError(s *soc.SoC, m Measurement) float64 {
	p := s.Processor(m.ProcessorID)
	sim := simulatedLatency(p, m.Model)
	if sim == soc.InfDuration {
		return 1
	}
	return math.Abs(sim.Seconds()-m.Latency.Seconds()) / m.Latency.Seconds()
}

// meanError averages relError over every measurement.
func meanError(s *soc.SoC, ms []Measurement) float64 {
	var sum float64
	for _, m := range ms {
		sum += relError(s, m)
	}
	return sum / float64(len(ms))
}

// procError averages relError over the given measurement indices.
func procError(s *soc.SoC, ms []Measurement, idxs []int) float64 {
	var sum float64
	for _, i := range idxs {
		sum += relError(s, ms[i])
	}
	return sum / float64(len(idxs))
}

// cloneSoC deep-copies the SoC (processors and their efficiency maps).
func cloneSoC(s *soc.SoC) *soc.SoC {
	out := *s
	out.Processors = make([]soc.Processor, len(s.Processors))
	copy(out.Processors, s.Processors)
	for i := range out.Processors {
		src := s.Processors[i].Efficiency
		if src == nil {
			continue
		}
		dst := make(map[model.OpKind]float64, len(src))
		for k, v := range src {
			dst[k] = v
		}
		out.Processors[i].Efficiency = dst
	}
	out.MemFreqLevelsMHz = append([]int(nil), s.MemFreqLevelsMHz...)
	return &out
}
