package autotune

import (
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// groundTruthMeasurements simulates "device" measurements from a reference
// SoC, so the fit has a known recoverable target.
func groundTruthMeasurements(t *testing.T, truth *soc.SoC) []Measurement {
	t.Helper()
	var out []Measurement
	for _, name := range []string{model.ResNet50, model.VGG16, model.SqueezeNet, model.InceptionV4} {
		m := model.MustByName(name)
		for _, pid := range []string{"cpu-big", "gpu", "npu"} {
			p := truth.Processor(pid)
			lat := soc.BatchLatency(p, m, 1)
			if lat == soc.InfDuration {
				continue
			}
			out = append(out, Measurement{ProcessorID: pid, Model: m, Latency: lat})
		}
	}
	return out
}

// TestFitRecoversPerturbedSoC: start from a Kirin 990 whose compute and
// bandwidth were mis-specified 2× in both directions and fit it back
// against ground-truth measurements.
func TestFitRecoversPerturbedSoC(t *testing.T) {
	truth := soc.Kirin990()
	ms := groundTruthMeasurements(t, truth)

	wrong := soc.Kirin990()
	wrong.Processor("cpu-big").PeakGFLOPS *= 2.0
	wrong.Processor("gpu").PeakGFLOPS *= 0.5
	wrong.Processor("npu").SoloBandwidthGBps *= 2.0
	wrong.Processor("cpu-big").SoloBandwidthGBps *= 0.6

	res, err := Fit(wrong, ms, DefaultConfig())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if res.InitialError < 0.05 {
		t.Fatalf("perturbation produced only %.1f%% error; test not meaningful", res.InitialError*100)
	}
	if res.FinalError > 0.05 {
		t.Errorf("final error %.1f%%, want ≤ 5%% (initial %.1f%%)",
			res.FinalError*100, res.InitialError*100)
	}
	if res.FinalError >= res.InitialError {
		t.Errorf("fit did not improve: %.3f → %.3f", res.InitialError, res.FinalError)
	}
	// The input SoC must be untouched.
	if wrong.Processor("cpu-big").PeakGFLOPS != truth.Processor("cpu-big").PeakGFLOPS*2.0 {
		t.Error("Fit mutated its input SoC")
	}
	if err := res.SoC.Validate(); err != nil {
		t.Errorf("fitted SoC invalid: %v", err)
	}
}

func TestFitErrors(t *testing.T) {
	s := soc.Kirin990()
	if _, err := Fit(s, nil, DefaultConfig()); err == nil {
		t.Error("empty measurements accepted")
	}
	bad := []Measurement{{ProcessorID: "nope", Model: model.MustByName(model.ResNet50), Latency: time.Millisecond}}
	if _, err := Fit(s, bad, DefaultConfig()); err == nil {
		t.Error("unknown processor accepted")
	}
	zero := []Measurement{{ProcessorID: "cpu-big", Model: model.MustByName(model.ResNet50), Latency: 0}}
	if _, err := Fit(s, zero, DefaultConfig()); err == nil {
		t.Error("zero latency accepted")
	}
	invalid := soc.Kirin990()
	invalid.BusBandwidthGBps = -1
	if _, err := Fit(invalid, bad, DefaultConfig()); err == nil {
		t.Error("invalid SoC accepted")
	}
}

func TestFitPerfectInputIsStable(t *testing.T) {
	truth := soc.Kirin990()
	ms := groundTruthMeasurements(t, truth)
	res, err := Fit(truth, ms, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialError > 1e-9 {
		t.Fatalf("self-measurements disagree with simulator: %.3g", res.InitialError)
	}
	if res.FinalError > res.InitialError+1e-9 {
		t.Errorf("fit degraded a perfect description: %.3g → %.3g", res.InitialError, res.FinalError)
	}
}
