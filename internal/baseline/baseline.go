// Package baseline implements the comparison schemes of the paper's
// evaluation (Sec. VI-A): vanilla MNN serial CPU execution, Pipe-it
// CPU-cluster pipelining, Band's NPU-first greedy coordination with operator
// fallback, plus the exhaustive-search and simulated-annealing references of
// the Fig. 8 ablation. Every baseline emits a pipeline.Schedule so all
// schemes execute under the identical simulator and slowdown model.
package baseline

import (
	"errors"
	"fmt"

	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// errNoProcessor is returned when a required processor kind is missing.
var errNoProcessor = errors.New("baseline: required processor not present")

// Profiles builds cost profiles for a list of zoo model names on s.
func Profiles(s *soc.SoC, models []*profile.Profile) []*profile.Profile { return models }

// SerialMNN returns the vanilla MNN baseline: every request executes whole
// on the big CPU cluster, one after another — the "canonical CPU-centric
// implementation with serial execution" the paper measures 4–8× against.
func SerialMNN(s *soc.SoC, profiles []*profile.Profile) (*pipeline.Schedule, error) {
	bigs := s.ProcessorsOfKind(soc.KindCPUBig)
	if len(bigs) == 0 {
		return nil, fmt.Errorf("%w: CPU big cluster", errNoProcessor)
	}
	stage := bigs[0]
	k := s.NumProcessors()
	cuts := make([]pipeline.Cuts, len(profiles))
	for i, p := range profiles {
		cuts[i] = pipeline.SingleProcessor(p.NumLayers(), stage, k)
	}
	return pipeline.FromCuts(s, profiles, cuts)
}

// PipeIt returns the Pipe-it baseline adapted per Sec. VI-A: a two-stage
// pipeline over the big and small CPU clusters only (the "fastest core
// combination of four Big and four Small cores", scheduled per cluster to
// avoid the Fig. 10 intra-cluster thrashing), with each model's split point
// found by local search on the bottleneck — Pipe-it's planning strategy.
func PipeIt(s *soc.SoC, profiles []*profile.Profile) (*pipeline.Schedule, error) {
	bigs := s.ProcessorsOfKind(soc.KindCPUBig)
	smalls := s.ProcessorsOfKind(soc.KindCPUSmall)
	if len(bigs) == 0 || len(smalls) == 0 {
		return nil, fmt.Errorf("%w: CPU clusters", errNoProcessor)
	}
	big, small := bigs[0], smalls[0]
	k := s.NumProcessors()
	cuts := make([]pipeline.Cuts, len(profiles))
	for i, p := range profiles {
		split := localSearchSplit(p, big, small)
		c := make(pipeline.Cuts, k+1)
		for st := 1; st <= k; st++ {
			switch {
			case st <= big:
				c[st] = 0
			case st <= small:
				c[st] = split
			default:
				c[st] = p.NumLayers()
			}
		}
		cuts[i] = c
	}
	return pipeline.FromCuts(s, profiles, cuts)
}

// localSearchSplit hill-climbs the big/small boundary to minimise the
// bottleneck stage time, restarting from a few seeds the way Pipe-it's
// design-space exploration does.
func localSearchSplit(p *profile.Profile, big, small int) int {
	n := p.NumLayers()
	bottleneck := func(split int) float64 {
		a := p.SliceTime(big, 0, split-1)
		b := p.SliceTime(small, split, n-1)
		av, bv := a.Seconds(), b.Seconds()
		if split == 0 {
			av = 0
		}
		if split == n {
			bv = 0
		}
		if av > bv {
			return av
		}
		return bv
	}
	best, bestV := n, bottleneck(n) // all on big by default
	for _, seed := range []int{n / 4, n / 2, 3 * n / 4, n} {
		cur := seed
		curV := bottleneck(cur)
		for {
			improved := false
			for _, cand := range []int{cur - 1, cur + 1} {
				if cand < 0 || cand > n {
					continue
				}
				if v := bottleneck(cand); v < curV {
					cur, curV = cand, v
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if curV < bestV {
			best, bestV = cur, curV
		}
	}
	return best
}

// Band returns the Band baseline: NPU-first greedy coordination. Each
// request's maximal NPU-supported prefix runs on the NPU; the remainder
// falls back to whichever of the big CPU and GPU currently carries less
// accumulated work (Band's dynamic processor switching), without any
// pipeline-bubble optimisation — the difference the paper credits for its
// extra ~5 %.
func Band(s *soc.SoC, profiles []*profile.Profile) (*pipeline.Schedule, error) {
	npus := s.ProcessorsOfKind(soc.KindNPU)
	bigs := s.ProcessorsOfKind(soc.KindCPUBig)
	gpus := s.ProcessorsOfKind(soc.KindGPU)
	if len(npus) == 0 || len(bigs) == 0 || len(gpus) == 0 {
		return nil, fmt.Errorf("%w: NPU/CPU/GPU", errNoProcessor)
	}
	npu, big, gpu := npus[0], bigs[0], gpus[0]
	k := s.NumProcessors()
	loads := make([]float64, k)
	cuts := make([]pipeline.Cuts, len(profiles))
	for i, p := range profiles {
		n := p.NumLayers()
		prefix := npuPrefix(p, npu)
		fallback := big
		if loads[gpu] < loads[big] {
			fallback = gpu
		}
		c := make(pipeline.Cuts, k+1)
		for st := 1; st <= k; st++ {
			c[st] = boundaryFor(st, npu, fallback, prefix, n)
		}
		cuts[i] = c
		if prefix > 0 {
			loads[npu] += p.SliceTime(npu, 0, prefix-1).Seconds()
		}
		if prefix < n {
			loads[fallback] += p.SliceTime(fallback, prefix, n-1).Seconds()
		}
	}
	return pipeline.FromCuts(s, profiles, cuts)
}

// npuPrefix returns the layer count of the maximal NPU-supported prefix.
func npuPrefix(p *profile.Profile, npu int) int {
	n := p.NumLayers()
	prefix := 0
	for prefix < n && p.Table(npu).Supported(prefix, prefix) {
		prefix++
	}
	return prefix
}

// boundaryFor computes the cut boundary at stage st for a two-piece
// NPU-prefix + fallback-suffix placement. It assumes npu precedes fallback
// in the SoC order (capability-descending order guarantees it).
func boundaryFor(st, npu, fallback, prefix, n int) int {
	switch {
	case st <= npu:
		return 0
	case st <= fallback:
		return prefix
	default:
		return n
	}
}
