package baseline

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

func profilesOf(t *testing.T, s *soc.SoC, names ...string) []*profile.Profile {
	t.Helper()
	out := make([]*profile.Profile, len(names))
	for i, n := range names {
		p, err := profile.New(s, model.MustByName(n))
		if err != nil {
			t.Fatalf("profile %s: %v", n, err)
		}
		out[i] = p
	}
	return out
}

func executed(t *testing.T, sched *pipeline.Schedule) *pipeline.Result {
	t.Helper()
	res, err := pipeline.Execute(sched, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func TestSerialMNN(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.ResNet50, model.BERT)
	sched, err := SerialMNN(s, profs)
	if err != nil {
		t.Fatalf("SerialMNN: %v", err)
	}
	// Every request sits entirely on the big CPU stage.
	bigStage := s.ProcessorsOfKind(soc.KindCPUBig)[0]
	for i := range profs {
		for st := 0; st < s.NumProcessors(); st++ {
			r := sched.Stages[i][st]
			if st == bigStage {
				if r.Empty() || r.Len() != profs[i].NumLayers() {
					t.Errorf("request %d: big stage range %+v", i, r)
				}
			} else if !r.Empty() {
				t.Errorf("request %d: stage %d not empty", i, st)
			}
		}
	}
	executed(t, sched)
}

func TestPipeItUsesBothClusters(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.VGG16, model.ResNet50, model.InceptionV4)
	sched, err := PipeIt(s, profs)
	if err != nil {
		t.Fatalf("PipeIt: %v", err)
	}
	big := s.ProcessorsOfKind(soc.KindCPUBig)[0]
	small := s.ProcessorsOfKind(soc.KindCPUSmall)[0]
	gpu := s.ProcessorsOfKind(soc.KindGPU)[0]
	npu := s.ProcessorsOfKind(soc.KindNPU)[0]
	usedSmall := false
	for i := range profs {
		if !sched.Stages[i][npu].Empty() || !sched.Stages[i][gpu].Empty() {
			t.Errorf("request %d: Pipe-it must stay on CPU clusters", i)
		}
		if sched.Stages[i][big].Empty() {
			t.Errorf("request %d: big cluster idle", i)
		}
		if !sched.Stages[i][small].Empty() {
			usedSmall = true
		}
	}
	if !usedSmall {
		t.Error("Pipe-it never used the small cluster on any request")
	}
	executed(t, sched)
}

func TestPipeItLocalSearchBalances(t *testing.T) {
	s := soc.Kirin990()
	p := profilesOf(t, s, model.VGG16)[0]
	big := s.ProcessorsOfKind(soc.KindCPUBig)[0]
	small := s.ProcessorsOfKind(soc.KindCPUSmall)[0]
	split := localSearchSplit(p, big, small)
	n := p.NumLayers()
	if split <= 0 || split > n {
		t.Fatalf("split = %d outside (0, %d]", split, n)
	}
	// The found split's bottleneck must not exceed the all-on-big option.
	allBig := p.SliceTime(big, 0, n-1).Seconds()
	a := p.SliceTime(big, 0, split-1).Seconds()
	b := p.SliceTime(small, split, n-1).Seconds()
	if split == n {
		b = 0
	}
	bot := a
	if b > bot {
		bot = b
	}
	if bot > allBig+1e-12 {
		t.Errorf("local search bottleneck %g worse than all-on-big %g", bot, allBig)
	}
}

func TestBandNPUFirst(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.ResNet50, model.BERT, model.YOLOv4)
	sched, err := Band(s, profs)
	if err != nil {
		t.Fatalf("Band: %v", err)
	}
	npu := s.ProcessorsOfKind(soc.KindNPU)[0]
	// ResNet50 is fully NPU-supported: everything on the NPU.
	if r := sched.Stages[0][npu]; r.Empty() || r.Len() != profs[0].NumLayers() {
		t.Errorf("ResNet50 NPU range %+v, want full model", r)
	}
	// BERT starts with an unsupported embedding: NPU stage empty.
	if !sched.Stages[1][npu].Empty() {
		t.Error("BERT NPU stage not empty")
	}
	// YOLOv4: supported prefix on NPU, remainder elsewhere.
	if sched.Stages[2][npu].Empty() {
		t.Error("YOLOv4 NPU prefix empty; expected partial offload")
	}
	executed(t, sched)
}

func TestBandMissingNPU(t *testing.T) {
	s := soc.Kirin990()
	s.Processors = s.Processors[1:] // drop the NPU
	profs := profilesOf(t, s, model.ResNet50)
	if _, err := Band(s, profs); err == nil {
		t.Error("Band without NPU: nil error")
	}
}

// TestBaselineOrdering pins Fig. 7's qualitative ranking on a mixed
// workload: H²P ≤ Band < Pipe-it < serial MNN in makespan.
func TestBaselineOrdering(t *testing.T) {
	s := soc.Kirin990()
	names := []string{model.ResNet50, model.SqueezeNet, model.VGG16,
		model.MobileNetV2, model.InceptionV4, model.GoogLeNet}
	profs := profilesOf(t, s, names...)

	serialSched, err := SerialMNN(s, profs)
	if err != nil {
		t.Fatal(err)
	}
	pipeitSched, err := PipeIt(s, profs)
	if err != nil {
		t.Fatal(err)
	}
	bandSched, err := Band(s, profs)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanProfiles(profs)
	if err != nil {
		t.Fatal(err)
	}

	serial := executed(t, serialSched).Makespan
	pipeit := executed(t, pipeitSched).Makespan
	band := executed(t, bandSched).Makespan
	h2p := executed(t, plan.Schedule).Makespan

	if h2p >= pipeit || h2p >= serial || h2p >= band {
		t.Errorf("H²P %v must win: Pipe-it %v, serial %v, Band %v", h2p, pipeit, serial, band)
	}
	// Pipe-it stays CPU-bound: comparable to serial (our substrate charges
	// it the cross-cluster contention the original work ignored — the
	// paper's own criticism), far behind the heterogeneous schemes.
	if pipeit.Seconds() > 1.4*serial.Seconds() {
		t.Errorf("Pipe-it %v implausibly worse than serial %v", pipeit, serial)
	}
	if spd := serial.Seconds() / h2p.Seconds(); spd < 2 {
		t.Errorf("H²P speedup over serial = %.2f×, want ≥ 2×", spd)
	}
	if spd := pipeit.Seconds() / h2p.Seconds(); spd < 2 {
		t.Errorf("H²P speedup over Pipe-it = %.2f×, want ≥ 2× (paper: 2–3.7×)", spd)
	}
}

func TestExhaustiveSmall(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.SqueezeNet, model.ResNet50, model.MobileNetV2)
	sched, span, err := Exhaustive(s, profs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if span <= 0 {
		t.Fatalf("span = %v", span)
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("exhaustive schedule invalid: %v", err)
	}
	// Identity ordering can never beat the exhaustive optimum.
	baseCuts, err := horizontalCuts(profs)
	if err != nil {
		t.Fatal(err)
	}
	idv, _, err := evalOrder(s, profs, baseCuts, []int{0, 1, 2}, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if span.Seconds() > idv+1e-9 {
		t.Errorf("exhaustive %v worse than identity ordering %.4fs", span, idv)
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.SqueezeNet, model.SqueezeNet, model.SqueezeNet,
		model.SqueezeNet, model.SqueezeNet, model.SqueezeNet, model.SqueezeNet,
		model.SqueezeNet, model.SqueezeNet)
	if _, _, err := Exhaustive(s, profs, pipeline.DefaultOptions()); err == nil {
		t.Error("9-request exhaustive accepted; want scale error")
	}
}

func TestSimulatedAnnealing(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.BERT, model.SqueezeNet, model.ResNet50, model.MobileNetV2)
	cfg := DefaultAnnealConfig(11)
	cfg.Iterations = 40
	sched, span, err := SimulatedAnnealing(s, profs, pipeline.DefaultOptions(), cfg)
	if err != nil {
		t.Fatalf("SimulatedAnnealing: %v", err)
	}
	if span <= 0 || sched == nil {
		t.Fatalf("span = %v", span)
	}
	// Deterministic under the same seed.
	_, span2, err := SimulatedAnnealing(s, profs, pipeline.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if span != span2 {
		t.Errorf("annealing not deterministic: %v vs %v", span, span2)
	}
}

// TestH2PNearExhaustive reproduces the Fig. 8(a) claim: the two-step planner
// lands close to the exhaustive optimum (paper: within ~4 %).
func TestH2PNearExhaustive(t *testing.T) {
	s := soc.Kirin990()
	combos := [][]string{
		{model.BERT, model.SqueezeNet, model.ResNet50, model.MobileNetV2},
		{model.YOLOv4, model.GoogLeNet, model.AlexNet, model.ViT},
	}
	for _, names := range combos {
		profs := profilesOf(t, s, names...)
		_, exSpan, err := Exhaustive(s, profs, pipeline.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pl, err := core.NewPlanner(s, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.PlanProfiles(profs)
		if err != nil {
			t.Fatal(err)
		}
		h2p := executed(t, plan.Schedule).Makespan
		gap := (h2p.Seconds() - exSpan.Seconds()) / exSpan.Seconds()
		if gap > 0.15 {
			t.Errorf("%v: H²P %v vs exhaustive %v (gap %.1f%%), want ≤ 15%%",
				names, h2p, exSpan, gap*100)
		}
	}
	_ = time.Second
}

func TestMuLayerLatency(t *testing.T) {
	s := soc.Kirin990()
	m := model.MustByName(model.ResNet50)
	lat, err := MuLayerLatency(s, m)
	if err != nil {
		t.Fatalf("MuLayerLatency: %v", err)
	}
	// Intra-op splitting beats either processor alone ...
	cpu := s.Processor("cpu-big")
	gpu := s.Processor("gpu")
	var cpuSolo, gpuSolo time.Duration
	for _, l := range m.Layers {
		cpuSolo += cpu.LayerTime(l)
		gpuSolo += gpu.LayerTime(l)
	}
	if lat >= cpuSolo || lat >= gpuSolo {
		t.Errorf("µLayer %v not below solo CPU %v / GPU %v", lat, cpuSolo, gpuSolo)
	}
	// ... but the per-layer merges keep it above the ideal parallel sum.
	ideal := time.Duration(float64(cpuSolo) * float64(gpuSolo) / float64(cpuSolo+gpuSolo))
	if lat <= ideal {
		t.Errorf("µLayer %v below ideal parallel %v; merge overhead missing", lat, ideal)
	}
	serial, err := MuLayerSerial(s, []*model.Model{m, m})
	if err != nil {
		t.Fatal(err)
	}
	if serial <= lat || serial >= 3*lat {
		t.Errorf("serial two-request latency %v inconsistent with single %v", serial, lat)
	}
}

func TestMuLayerMissingProcessors(t *testing.T) {
	s := soc.Kirin990()
	s.Processors = s.Processors[:1] // NPU only
	if _, err := MuLayerLatency(s, model.MustByName(model.ResNet50)); err == nil {
		t.Error("missing CPU/GPU accepted")
	}
}

// TestExhaustiveParallelMatchesSequential: the parallel grid search must
// return the same makespan and the same schedule as the strictly sequential
// walk — the baseline-side differential check.
func TestExhaustiveParallelMatchesSequential(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesOf(t, s, model.SqueezeNet, model.ResNet50, model.MobileNetV2, model.GoogLeNet)
	opts := pipeline.DefaultOptions()
	seqSched, seqSpan, err := ExhaustiveParallel(s, profs, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		sched, span, err := ExhaustiveParallel(s, profs, opts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if span != seqSpan {
			t.Fatalf("workers=%d: makespan %v, sequential %v", workers, span, seqSpan)
		}
		for i := range seqSched.Stages {
			if sched.Profiles[i].Model().Name != seqSched.Profiles[i].Model().Name {
				t.Fatalf("workers=%d: request %d is %s, sequential %s",
					workers, i, sched.Profiles[i].Model().Name, seqSched.Profiles[i].Model().Name)
			}
			for k := range seqSched.Stages[i] {
				if sched.Stages[i][k] != seqSched.Stages[i][k] {
					t.Fatalf("workers=%d: request %d stage %d = %v, sequential %v",
						workers, i, k, sched.Stages[i][k], seqSched.Stages[i][k])
				}
			}
		}
	}
}
