package baseline

import (
	"fmt"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// µLayer-style intra-operator partitioning (Table I / Sec. II-A): each layer
// is split channel-wise across the big CPU and the GPU, both halves execute
// concurrently, and the partial results are merged before the next layer.
// The per-layer merge is the scheme's Achilles heel the paper points out
// for intra-op approaches: "the intermediate results from different
// processors are deemed to be merged with additional overhead of
// significant communication/memory copy per split".
//
// Because every layer occupies both processors at once, requests execute
// serially; the scheme is evaluated analytically rather than through the
// pipeline IR (which models processor-exclusive stages).

// MuLayerLatency returns the per-request latency of channel-wise CPU+GPU
// execution of the model on s: per layer, the work splits in the ratio of
// the two processors' speeds (ideal balance), runs at the combined rate,
// and pays a merge copy of the layer's output plus a synchronisation
// latency.
func MuLayerLatency(s *soc.SoC, m *model.Model) (time.Duration, error) {
	bigs := s.ProcessorsOfKind(soc.KindCPUBig)
	gpus := s.ProcessorsOfKind(soc.KindGPU)
	if len(bigs) == 0 || len(gpus) == 0 {
		return 0, fmt.Errorf("%w: CPU big + GPU", errNoProcessor)
	}
	cpu := &s.Processors[bigs[0]]
	gpu := &s.Processors[gpus[0]]
	var total time.Duration
	for _, l := range m.Layers {
		tc := cpu.LayerTime(l)
		tg := gpu.LayerTime(l)
		if tc == soc.InfDuration || tg == soc.InfDuration {
			return 0, fmt.Errorf("baseline: layer %s unsupported for intra-op split", l.Name)
		}
		// Ideal channel split: combined rate is the sum of rates, so the
		// balanced layer time is the parallel combination tc·tg/(tc+tg).
		combined := time.Duration(float64(tc) * float64(tg) / float64(tc+tg))
		// Merge: the produced halves cross the unified memory once, plus
		// the fixed synchronisation cost of a copy.
		merge := s.CopyTime(l.OutputBytes)
		total += combined + merge
	}
	total += cpu.LaunchOverhead + gpu.LaunchOverhead
	return total, nil
}

// MuLayerSerial returns the makespan of serially executing the requests
// with µLayer-style intra-op partitioning.
func MuLayerSerial(s *soc.SoC, models []*model.Model) (time.Duration, error) {
	var total time.Duration
	for _, m := range models {
		lat, err := MuLayerLatency(s, m)
		if err != nil {
			return 0, err
		}
		total += lat
	}
	return total, nil
}
