package baseline

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/parallel"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Fig. 8 reference searchers. Both explore the vertical-optimisation space —
// the ordering of the request sequence — on top of Algorithm-1 horizontal
// partitions, scoring candidates by executed makespan under the full
// contention model. Exhaustive enumerates every permutation (only viable for
// small |M|); simulated annealing samples it.

// evalOrder builds the work-stolen, tail-optimised schedule for one
// ordering and returns its executed makespan in seconds. Applying the same
// downstream machinery (Algorithm 3 + tail search) to every ordering makes
// the reference searchers a strict superset of the planner, whose ordering
// comes from Algorithm 2 alone.
func evalOrder(s *soc.SoC, profiles []*profile.Profile, baseCuts []pipeline.Cuts, order []int, opts pipeline.Options) (float64, *pipeline.Schedule, error) {
	m := len(order)
	ordProfiles := make([]*profile.Profile, m)
	ordCuts := make([]pipeline.Cuts, m)
	for pos, orig := range order {
		ordProfiles[pos] = profiles[orig]
		c := make(pipeline.Cuts, len(baseCuts[orig]))
		copy(c, baseCuts[orig])
		ordCuts[pos] = c
	}
	core.WorkSteal(ordProfiles, ordCuts, s.NumProcessors())
	sched, err := pipeline.FromCuts(s, ordProfiles, ordCuts)
	if err != nil {
		return 0, nil, err
	}
	sched, err = core.OptimizeTail(sched, opts)
	if err != nil {
		return 0, nil, err
	}
	res, err := pipeline.Execute(sched, opts)
	if err != nil {
		return 0, nil, err
	}
	return res.Makespan.Seconds(), sched, nil
}

// horizontalCuts runs Algorithm 1 on every profile.
func horizontalCuts(profiles []*profile.Profile) ([]pipeline.Cuts, error) {
	cuts := make([]pipeline.Cuts, len(profiles))
	for i, p := range profiles {
		c, _, err := core.Partition(p)
		if err != nil {
			return nil, err
		}
		cuts[i] = c
	}
	return cuts, nil
}

// maxExhaustiveRequests bounds permutation enumeration (8! = 40320 runs).
const maxExhaustiveRequests = 8

// Exhaustive enumerates every request ordering and returns the best schedule
// and its makespan. It fails for |M| > 8 — the point of Fig. 8 is precisely
// that this does not scale. The grid is evaluated across an auto-sized
// worker pool; ExhaustiveParallel exposes the worker count.
func Exhaustive(s *soc.SoC, profiles []*profile.Profile, opts pipeline.Options) (*pipeline.Schedule, time.Duration, error) {
	return ExhaustiveParallel(s, profiles, opts, 0)
}

// ExhaustiveParallel runs the exhaustive ordering search with at most
// workers goroutines (≤ 0 auto-sizes, 1 is strictly sequential). The
// permutations are enumerated in the sequential walk's order, their spans
// evaluated independently, and the winner chosen as the lowest-ranked
// permutation achieving the minimal span — the permutation a sequential
// first-strict-improvement scan would keep — so the result is identical at
// every worker count.
func ExhaustiveParallel(s *soc.SoC, profiles []*profile.Profile, opts pipeline.Options, workers int) (*pipeline.Schedule, time.Duration, error) {
	m := len(profiles)
	if m == 0 {
		return &pipeline.Schedule{SoC: s}, 0, nil
	}
	if m > maxExhaustiveRequests {
		return nil, 0, errors.New("baseline: exhaustive search infeasible beyond 8 requests")
	}
	baseCuts, err := horizontalCuts(profiles)
	if err != nil {
		return nil, 0, err
	}
	orders := permutationsInWalkOrder(m)
	// First pass: spans only. Schedules are rebuilt for the winner alone —
	// materialising all |M|! of them would dwarf the search itself.
	spans := make([]float64, len(orders))
	err = parallel.ForErr(workers, len(orders), func(i int) error {
		v, _, err := evalOrder(s, profiles, baseCuts, orders[i], opts)
		if err != nil {
			return err
		}
		spans[i] = v
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	best, bestIdx := math.Inf(1), -1
	for i, v := range spans {
		if v < best {
			best, bestIdx = v, i
		}
	}
	if bestIdx < 0 {
		return nil, 0, errors.New("baseline: exhaustive search found no feasible ordering")
	}
	_, bestSched, err := evalOrder(s, profiles, baseCuts, orders[bestIdx], opts)
	if err != nil {
		return nil, 0, err
	}
	return bestSched, time.Duration(best * float64(time.Second)), nil
}

// permutationsInWalkOrder enumerates every permutation of 0..m-1 in the
// order the recursive swap walk visits them, so rank comparisons against
// the sequential search line up index-for-index.
func permutationsInWalkOrder(m int) [][]int {
	var out [][]int
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	var walk func(depth int)
	walk = func(depth int) {
		if depth == m {
			out = append(out, append([]int(nil), order...))
			return
		}
		for i := depth; i < m; i++ {
			order[depth], order[i] = order[i], order[depth]
			walk(depth + 1)
			order[depth], order[i] = order[i], order[depth]
		}
	}
	walk(0)
	return out
}

// AnnealConfig tunes SimulatedAnnealing.
type AnnealConfig struct {
	// Seed makes the run deterministic.
	Seed int64
	// Iterations is the number of proposal steps.
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// relative makespan units.
	StartTemp, EndTemp float64
}

// DefaultAnnealConfig matches the meta-heuristic reference of Fig. 8(a).
func DefaultAnnealConfig(seed int64) AnnealConfig {
	return AnnealConfig{Seed: seed, Iterations: 200, StartTemp: 0.3, EndTemp: 0.01}
}

// SimulatedAnnealing searches orderings by random adjacent-or-arbitrary
// swaps under a geometric cooling schedule.
func SimulatedAnnealing(s *soc.SoC, profiles []*profile.Profile, opts pipeline.Options, cfg AnnealConfig) (*pipeline.Schedule, time.Duration, error) {
	m := len(profiles)
	if m == 0 {
		return &pipeline.Schedule{SoC: s}, 0, nil
	}
	if cfg.Iterations <= 0 {
		cfg = DefaultAnnealConfig(cfg.Seed)
	}
	baseCuts, err := horizontalCuts(profiles)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(m)
	cur, curSched, err := evalOrder(s, profiles, baseCuts, order, opts)
	if err != nil {
		return nil, 0, err
	}
	best, bestSched := cur, curSched
	for it := 0; it < cfg.Iterations; it++ {
		frac := float64(it) / float64(cfg.Iterations)
		temp := cfg.StartTemp * math.Pow(cfg.EndTemp/cfg.StartTemp, frac)
		i, j := rng.Intn(m), rng.Intn(m)
		if i == j {
			continue
		}
		order[i], order[j] = order[j], order[i]
		cand, candSched, err := evalOrder(s, profiles, baseCuts, order, opts)
		if err != nil {
			return nil, 0, err
		}
		accept := cand < cur
		if !accept && cur > 0 {
			delta := (cand - cur) / cur
			accept = rng.Float64() < math.Exp(-delta/temp)
		}
		if accept {
			cur = cand
			curSched = candSched
			if cand < best {
				best, bestSched = cand, candSched
			}
		} else {
			order[i], order[j] = order[j], order[i]
		}
	}
	_ = curSched
	return bestSched, time.Duration(best * float64(time.Second)), nil
}
