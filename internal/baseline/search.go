package baseline

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Fig. 8 reference searchers. Both explore the vertical-optimisation space —
// the ordering of the request sequence — on top of Algorithm-1 horizontal
// partitions, scoring candidates by executed makespan under the full
// contention model. Exhaustive enumerates every permutation (only viable for
// small |M|); simulated annealing samples it.

// evalOrder builds the work-stolen, tail-optimised schedule for one
// ordering and returns its executed makespan in seconds. Applying the same
// downstream machinery (Algorithm 3 + tail search) to every ordering makes
// the reference searchers a strict superset of the planner, whose ordering
// comes from Algorithm 2 alone.
func evalOrder(s *soc.SoC, profiles []*profile.Profile, baseCuts []pipeline.Cuts, order []int, opts pipeline.Options) (float64, *pipeline.Schedule, error) {
	m := len(order)
	ordProfiles := make([]*profile.Profile, m)
	ordCuts := make([]pipeline.Cuts, m)
	for pos, orig := range order {
		ordProfiles[pos] = profiles[orig]
		c := make(pipeline.Cuts, len(baseCuts[orig]))
		copy(c, baseCuts[orig])
		ordCuts[pos] = c
	}
	core.WorkSteal(ordProfiles, ordCuts, s.NumProcessors())
	sched, err := pipeline.FromCuts(s, ordProfiles, ordCuts)
	if err != nil {
		return 0, nil, err
	}
	sched, err = core.OptimizeTail(sched, opts)
	if err != nil {
		return 0, nil, err
	}
	res, err := pipeline.Execute(sched, opts)
	if err != nil {
		return 0, nil, err
	}
	return res.Makespan.Seconds(), sched, nil
}

// horizontalCuts runs Algorithm 1 on every profile.
func horizontalCuts(profiles []*profile.Profile) ([]pipeline.Cuts, error) {
	cuts := make([]pipeline.Cuts, len(profiles))
	for i, p := range profiles {
		c, _, err := core.Partition(p)
		if err != nil {
			return nil, err
		}
		cuts[i] = c
	}
	return cuts, nil
}

// maxExhaustiveRequests bounds permutation enumeration (8! = 40320 runs).
const maxExhaustiveRequests = 8

// Exhaustive enumerates every request ordering and returns the best schedule
// and its makespan. It fails for |M| > 8 — the point of Fig. 8 is precisely
// that this does not scale.
func Exhaustive(s *soc.SoC, profiles []*profile.Profile, opts pipeline.Options) (*pipeline.Schedule, time.Duration, error) {
	m := len(profiles)
	if m == 0 {
		return &pipeline.Schedule{SoC: s}, 0, nil
	}
	if m > maxExhaustiveRequests {
		return nil, 0, errors.New("baseline: exhaustive search infeasible beyond 8 requests")
	}
	baseCuts, err := horizontalCuts(profiles)
	if err != nil {
		return nil, 0, err
	}
	best := math.Inf(1)
	var bestSched *pipeline.Schedule
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	var walk func(depth int) error
	walk = func(depth int) error {
		if depth == m {
			v, sched, err := evalOrder(s, profiles, baseCuts, order, opts)
			if err != nil {
				return err
			}
			if v < best {
				best = v
				bestSched = sched
			}
			return nil
		}
		for i := depth; i < m; i++ {
			order[depth], order[i] = order[i], order[depth]
			if err := walk(depth + 1); err != nil {
				return err
			}
			order[depth], order[i] = order[i], order[depth]
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, 0, err
	}
	return bestSched, time.Duration(best * float64(time.Second)), nil
}

// AnnealConfig tunes SimulatedAnnealing.
type AnnealConfig struct {
	// Seed makes the run deterministic.
	Seed int64
	// Iterations is the number of proposal steps.
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// relative makespan units.
	StartTemp, EndTemp float64
}

// DefaultAnnealConfig matches the meta-heuristic reference of Fig. 8(a).
func DefaultAnnealConfig(seed int64) AnnealConfig {
	return AnnealConfig{Seed: seed, Iterations: 200, StartTemp: 0.3, EndTemp: 0.01}
}

// SimulatedAnnealing searches orderings by random adjacent-or-arbitrary
// swaps under a geometric cooling schedule.
func SimulatedAnnealing(s *soc.SoC, profiles []*profile.Profile, opts pipeline.Options, cfg AnnealConfig) (*pipeline.Schedule, time.Duration, error) {
	m := len(profiles)
	if m == 0 {
		return &pipeline.Schedule{SoC: s}, 0, nil
	}
	if cfg.Iterations <= 0 {
		cfg = DefaultAnnealConfig(cfg.Seed)
	}
	baseCuts, err := horizontalCuts(profiles)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(m)
	cur, curSched, err := evalOrder(s, profiles, baseCuts, order, opts)
	if err != nil {
		return nil, 0, err
	}
	best, bestSched := cur, curSched
	for it := 0; it < cfg.Iterations; it++ {
		frac := float64(it) / float64(cfg.Iterations)
		temp := cfg.StartTemp * math.Pow(cfg.EndTemp/cfg.StartTemp, frac)
		i, j := rng.Intn(m), rng.Intn(m)
		if i == j {
			continue
		}
		order[i], order[j] = order[j], order[i]
		cand, candSched, err := evalOrder(s, profiles, baseCuts, order, opts)
		if err != nil {
			return nil, 0, err
		}
		accept := cand < cur
		if !accept && cur > 0 {
			delta := (cand - cur) / cur
			accept = rng.Float64() < math.Exp(-delta/temp)
		}
		if accept {
			cur = cand
			curSched = candSched
			if cand < best {
				best, bestSched = cand, candSched
			}
		} else {
			order[i], order[j] = order[j], order[i]
		}
	}
	_ = curSched
	return bestSched, time.Duration(best * float64(time.Second)), nil
}
