package contention

import (
	"sort"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/perf"
	"hetero2pipe/internal/soc"
)

// Class labels an inference request's contention level for Algorithm 2.
type Class int

// Contention classes. The paper splits requests into high (ℍ) and low (𝕃)
// contention by a percentage threshold on predicted intensity.
const (
	Low Class = iota + 1
	High
)

// String returns "H" or "L", the paper's notation.
func (c Class) String() string {
	if c == High {
		return "H"
	}
	return "L"
}

// Classify splits intensities into High/Low with a percentile threshold:
// values at or above the q-quantile (0 < q < 1, e.g. 0.5) are High. All
// inputs equal yields all Low (nothing stands out to interleave).
func Classify(intensities []float64, q float64) []Class {
	out := make([]Class, len(intensities))
	if len(intensities) == 0 {
		return out
	}
	sorted := make([]float64, len(intensities))
	copy(sorted, intensities)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		for i := range out {
			out[i] = Low
		}
		return out
	}
	threshold := quantile(sorted, q)
	for i, v := range intensities {
		if v >= threshold {
			out[i] = High
		} else {
			out[i] = Low
		}
	}
	return out
}

// quantile returns the q-quantile of sorted data by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Estimator predicts contention intensity for inference requests: it owns
// the fitted ridge model plus the reference processor whose PMU supplies the
// features (the paper reads the CPU PMU as the proxy for all processors).
type Estimator struct {
	ridge *RidgeModel
	ref   *soc.Processor
}

// TrainEstimator fits Eq. (1) on a training set of models: features are the
// synthetic PMU counters of each model's solo run on the reference
// processor, targets are the measured solo bus demands.
func TrainEstimator(ref *soc.Processor, trainingSet []*model.Model, alpha float64) (*Estimator, error) {
	features := make([][]float64, 0, len(trainingSet))
	targets := make([]float64, 0, len(trainingSet))
	for _, m := range trainingSet {
		features = append(features, perf.Profile(ref, m).FeatureVector())
		targets = append(targets, Measure(ref, m).DemandGBps)
	}
	ridge, err := FitRidge(features, targets, alpha)
	if err != nil {
		return nil, err
	}
	return &Estimator{ridge: ridge, ref: ref}, nil
}

// Intensity predicts the contention intensity of a new request from its PMU
// counters alone — the fast path the paper uses to avoid profiling every
// co-execution combination.
func (e *Estimator) Intensity(m *model.Model) float64 {
	v, err := e.ridge.Predict(perf.Profile(e.ref, m).FeatureVector())
	if err != nil {
		// Feature width is fixed by construction; fall back to measurement.
		return Measure(e.ref, m).DemandGBps
	}
	if v < 0 {
		v = 0
	}
	return v
}

// ClassifyModels predicts intensities for the requests and splits them H/L
// at the q-quantile.
func (e *Estimator) ClassifyModels(requests []*model.Model, q float64) ([]Class, []float64) {
	intensities := make([]float64, len(requests))
	for i, m := range requests {
		intensities[i] = e.Intensity(m)
	}
	return Classify(intensities, q), intensities
}
