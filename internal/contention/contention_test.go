package contention

import (
	"math"
	"testing"
	"testing/quick"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

func kirinProcs(t *testing.T) (*soc.SoC, *soc.Processor, *soc.Processor, *soc.Processor) {
	t.Helper()
	k := soc.Kirin990()
	big, gpu, npu := k.Processor("cpu-big"), k.Processor("gpu"), k.Processor("npu")
	if big == nil || gpu == nil || npu == nil {
		t.Fatal("Kirin990 preset missing processors")
	}
	return k, big, gpu, npu
}

func TestFootprintRanges(t *testing.T) {
	_, big, _, _ := kirinProcs(t)
	for _, m := range model.All() {
		fp := Measure(big, m)
		if fp.DemandGBps <= 0 || fp.DemandGBps > big.SoloBandwidthGBps {
			t.Errorf("%s: demand %.2f outside (0, %g]", m.Name, fp.DemandGBps, big.SoloBandwidthGBps)
		}
		if fp.Sensitivity <= 0 || fp.Sensitivity > 1 {
			t.Errorf("%s: sensitivity %.2f outside (0, 1]", m.Name, fp.Sensitivity)
		}
	}
}

// TestObservation3 pins the paper's surprising outlier: SqueezeNet, 70×
// smaller than ViT, imposes a higher contention intensity.
func TestObservation3(t *testing.T) {
	_, big, _, _ := kirinProcs(t)
	sq := Measure(big, model.MustByName(model.SqueezeNet))
	vit := Measure(big, model.MustByName(model.ViT))
	if sq.DemandGBps <= vit.DemandGBps {
		t.Errorf("demand(SqueezeNet)=%.2f not above demand(ViT)=%.2f", sq.DemandGBps, vit.DemandGBps)
	}
	// And SqueezeNet/GoogLeNet sit in the upper half of the zoo ranking.
	var demands []float64
	for _, m := range model.All() {
		demands = append(demands, Measure(big, m).DemandGBps)
	}
	median := quantileOf(demands, 0.5)
	if sq.DemandGBps < median {
		t.Errorf("SqueezeNet demand %.2f below zoo median %.2f", sq.DemandGBps, median)
	}
}

// TestPairBands pins the co-execution slowdown bands of Sec. III and
// Table II.
func TestPairBands(t *testing.T) {
	k, big, gpu, npu := kirinProcs(t)
	bus := k.BusBandwidthGBps
	yoloCPU := Measure(big, model.MustByName(model.YOLOv4))
	yoloGPU := Measure(gpu, model.MustByName(model.YOLOv4))
	bertGPU := Measure(gpu, model.MustByName(model.BERT))
	bertCPU := Measure(big, model.MustByName(model.BERT))
	resnetNPU := Measure(npu, model.MustByName(model.ResNet50))
	sqCPU := Measure(big, model.MustByName(model.SqueezeNet))
	vitCPU := Measure(big, model.MustByName(model.ViT))
	vitGPU := Measure(gpu, model.MustByName(model.ViT))

	check := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s slowdown = %.1f%%, want %.0f–%.0f%%", name, got*100, lo*100, hi*100)
		}
	}
	// CPU-GPU heavy pairs: the paper's 18/21 % (we accept 8–30 %).
	a, b := PairSlowdowns(bus, yoloCPU, bertGPU)
	check("YOLO(CPU) from BERT(GPU)", a, 0.08, 0.30)
	check("BERT(GPU) from YOLO(CPU)", b, 0.08, 0.30)
	// NPU involvement collapses interference: paper 2–4.5 % (accept <8 %).
	a, b = PairSlowdowns(bus, yoloCPU, resnetNPU)
	check("YOLO(CPU) from ResNet(NPU)", a, 0, 0.08)
	check("ResNet(NPU) from YOLO(CPU)", b, 0, 0.08)
	a, b = PairSlowdowns(bus, yoloGPU, resnetNPU)
	check("YOLO(GPU) from ResNet(NPU)", a, 0, 0.09)
	check("ResNet(NPU) from YOLO(GPU)", b, 0, 0.09)
	// SqueezeNet pair (Table II row 1): the light model suffers most.
	a, b = PairSlowdowns(bus, sqCPU, bertGPU)
	check("SqueezeNet(CPU) from BERT(GPU)", a, 0.15, 0.45)
	check("BERT(GPU) from SqueezeNet(CPU)", b, 0.05, 0.30)
	if a <= b {
		t.Errorf("SqueezeNet suffers %.1f%% ≤ partner %.1f%%; Table II has the light model suffering more", a*100, b*100)
	}
	// ViT/BERT pairs (Table II rows 2–4): ~9–12 %.
	a, b = PairSlowdowns(bus, vitCPU, bertGPU)
	check("ViT(CPU) from BERT(GPU)", a, 0.04, 0.20)
	check("BERT(GPU) from ViT(CPU)", b, 0.04, 0.20)
	a, b = PairSlowdowns(bus, bertCPU, vitGPU)
	check("BERT(CPU) from ViT(GPU)", a, 0.04, 0.20)
	check("ViT(GPU) from BERT(CPU)", b, 0.04, 0.20)
}

// TestObservation1Consistency: for pairs of models with comparable
// sensitivity, mutual slowdowns are of similar magnitude — it is unlikely to
// see a large slowdown on one side and almost none on the other.
func TestObservation1Consistency(t *testing.T) {
	k, big, gpu, _ := kirinProcs(t)
	bus := k.BusBandwidthGBps
	pairs := [][2]string{
		{model.YOLOv4, model.BERT},
		{model.ViT, model.BERT},
		{model.ResNet50, model.InceptionV4},
		{model.GoogLeNet, model.YOLOv4},
	}
	for _, pr := range pairs {
		a, b := PairSlowdowns(bus,
			Measure(big, model.MustByName(pr[0])),
			Measure(gpu, model.MustByName(pr[1])))
		if a < 0.005 || b < 0.005 {
			continue // negligible interference both ways is consistent
		}
		ratio := a / b
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s/%s: mutual slowdowns %.1f%%/%.1f%% inconsistent (ratio %.2f)",
				pr[0], pr[1], a*100, b*100, ratio)
		}
	}
}

func TestSlowdownProperties(t *testing.T) {
	self := Footprint{DemandGBps: 3, Sensitivity: 0.5}
	if got := Slowdown(16, self, nil); got != 1 {
		t.Errorf("no co-runners: slowdown %g, want 1", got)
	}
	if got := Slowdown(0, self, []Footprint{{DemandGBps: 5}}); got != 1 {
		t.Errorf("zero bus: slowdown %g, want 1", got)
	}
	if got := Slowdown(16, Footprint{}, []Footprint{{DemandGBps: 5}}); got != 1 {
		t.Errorf("zero sensitivity: slowdown %g, want 1", got)
	}
	// Monotone in co-runner demand; bounded by 1 + gain·sensitivity.
	prop := func(d1, d2 uint16) bool {
		lo := Slowdown(16, self, []Footprint{{DemandGBps: float64(d1 % 100)}})
		hi := Slowdown(16, self, []Footprint{{DemandGBps: float64(d1%100) + float64(d2%100)}})
		return lo <= hi && hi <= 1+pressureGain*self.Sensitivity+1e-9 && lo >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSlowdownAdditiveCoRunners(t *testing.T) {
	self := Footprint{DemandGBps: 3, Sensitivity: 0.8}
	one := Slowdown(16, self, []Footprint{{DemandGBps: 2}})
	two := Slowdown(16, self, []Footprint{{DemandGBps: 2}, {DemandGBps: 2}})
	if two <= one {
		t.Errorf("two co-runners %.3f not worse than one %.3f", two, one)
	}
}

func TestMeasureSliceBounds(t *testing.T) {
	_, big, _, _ := kirinProcs(t)
	m := model.MustByName(model.VGG16)
	if fp := MeasureSlice(big, m, 3, 2); fp != (Footprint{}) {
		t.Errorf("inverted range: footprint %+v, want zero", fp)
	}
	if fp := MeasureSlice(big, m, 0, m.NumLayers()); fp != (Footprint{}) {
		t.Errorf("out-of-range: footprint %+v, want zero", fp)
	}
}

func TestMeasureUnsupportedSlice(t *testing.T) {
	_, _, _, npu := kirinProcs(t)
	bert := model.MustByName(model.BERT)
	if fp := Measure(npu, bert); fp != (Footprint{}) {
		t.Errorf("BERT on NPU: footprint %+v, want zero (unsupported)", fp)
	}
}

func TestIntraClusterSlowdown(t *testing.T) {
	if got := IntraClusterSlowdown(1); got != 1 {
		t.Errorf("IntraClusterSlowdown(1) = %g, want 1", got)
	}
	if got := IntraClusterSlowdown(2); math.Abs(got-1.7) > 1e-9 {
		t.Errorf("IntraClusterSlowdown(2) = %g, want 1.7 (the paper's 70%%)", got)
	}
	if got := IntraClusterSlowdown(4); got > 2.5 {
		t.Errorf("IntraClusterSlowdown(4) = %g, want saturation ≤ 2.5", got)
	}
	if IntraClusterSlowdown(3) < IntraClusterSlowdown(2) {
		t.Error("intra-cluster slowdown must be non-decreasing")
	}
}

func quantileOf(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return quantile(sorted, q)
}
