// Package contention models co-execution slowdown on the shared memory bus
// of a mobile SoC (Sec. III of the paper) and implements the paper's
// contention-intensity machinery: per-model footprints measured from solo
// execution (Observation 1 justifies using solo demand as a proxy), the
// ridge regression of Eq. (1) that predicts intensity from PMU features,
// the H/L classification driving Algorithm 2, and the intra-cluster
// slowdown of Appendix A / Fig. 10.
package contention

import (
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Tunable constants of the slowdown model, calibrated against the paper's
// measurements (YOLOv4+BERT: 18 %/21 % CPU-GPU but 2–4.5 % with an NPU
// involved; Table II: 5–26 % across SqueezeNet/ViT/BERT pairs).
const (
	// pressureGain and pressureHalf shape the saturating response of
	// latency dilation to co-runner bus pressure P (= Σ demand/bus):
	// dilation = sensitivity · pressureGain·P/(pressureHalf+P). The steep
	// initial slope reflects the row-buffer hit-rate collapse the paper's
	// Observation 1 describes — even modest co-runner traffic destroys
	// locality at the memory controller — while the plateau reflects
	// fair-share bandwidth arbitration bounding the worst case.
	// Calibrated so a heavy CPU-GPU pair lands in the paper's 10–25 %
	// band, NPU-involved pairs stay in the 2–5 % band, and SqueezeNet
	// suffers most (Table II).
	pressureGain = 0.75
	pressureHalf = 0.10
	// sensitivityGain sharpens the bus-utilisation fraction into the
	// effective dilation sensitivity: DRAM interference also lengthens
	// nominally compute-covered phases (lost row-buffer hits delay the
	// demand misses that compute is waiting on).
	sensitivityGain = 2.5
)

// Footprint is the contention profile of one unit of work (a model or a
// model slice) on one processor, measured entirely from solo execution.
type Footprint struct {
	// DemandGBps is the shared-bus bandwidth the work consumes when
	// running solo — the paper's "contention intensity" ground truth that
	// the Eq. (1) regression learns to predict from PMU features.
	DemandGBps float64
	// Sensitivity is the fraction (0..1) of the work's runtime that is
	// memory-system bound; it scales how much co-runner pressure dilates
	// this work (the "application sensitivity" of slowdown models).
	Sensitivity float64
}

// MeasureSlice profiles layers [from, to] (inclusive) of the model on the
// processor and returns the footprint. It returns a zero footprint if the
// slice cannot execute there (unsupported operator).
//
// The demand is the slice's effective bus traffic (see
// soc.Processor.BusTrafficBytes) over its solo execution time, physically
// capped at the processor's achievable solo bandwidth. The sensitivity is
// the fraction of that bandwidth the slice keeps busy — a slice already
// saturating its memory path dilates fully when the bus is shared, while a
// compute-bound slice barely notices.
func MeasureSlice(p *soc.Processor, m *model.Model, from, to int) Footprint {
	if from < 0 || to >= len(m.Layers) || from > to {
		return Footprint{}
	}
	var busBytes, totalSec float64
	for i := from; i <= to; i++ {
		l := m.Layers[i]
		t := p.LayerTime(l)
		if t == soc.InfDuration {
			return Footprint{}
		}
		totalSec += t.Seconds()
		busBytes += p.BusTrafficBytes(l)
	}
	return FootprintFromTotals(p, busBytes, totalSec)
}

// Measure profiles the whole model on the processor.
func Measure(p *soc.Processor, m *model.Model) Footprint {
	return MeasureSlice(p, m, 0, m.NumLayers()-1)
}

// FootprintFromTotals builds a footprint from pre-aggregated totals (as kept
// in prefix-summed cost tables): effective bus bytes and solo execution
// seconds of the work unit on processor p. It applies the same physical cap
// and sensitivity shaping as MeasureSlice.
func FootprintFromTotals(p *soc.Processor, busBytes, totalSec float64) Footprint {
	if totalSec <= 0 {
		return Footprint{}
	}
	demand := busBytes / totalSec / 1e9
	if demand > p.SoloBandwidthGBps {
		demand = p.SoloBandwidthGBps
	}
	sens := sensitivityGain * demand / p.SoloBandwidthGBps
	if sens > 1 {
		sens = 1
	}
	return Footprint{DemandGBps: demand, Sensitivity: sens}
}

// Slowdown returns the latency dilation factor (≥ 1) of work with footprint
// self when co-executing with the given co-runner footprints on an SoC with
// the given total bus bandwidth.
//
// The model follows the sensitivity × pressure structure of slowdown
// estimators (ASM, PCCS): each co-runner contributes pressure proportional
// to its solo bus demand relative to bus capacity, and the victim dilates in
// proportion to its own memory-bound fraction. Because both directions of a
// pair use the same bus term, equal-sensitivity pairs suffer near-identical
// slowdown — Observation 1's consistency property — and NPU traffic, mostly
// routed over its dedicated path, both imposes and suffers little
// (DedicatedMemPath already discounts its footprint).
func Slowdown(busGBps float64, self Footprint, others []Footprint) float64 {
	if busGBps <= 0 || self.Sensitivity <= 0 {
		return 1
	}
	var pressure float64
	for _, o := range others {
		pressure += o.DemandGBps / busGBps
	}
	return SlowdownFromPressure(busGBps, self, pressure)
}

// SlowdownFromPressure is Slowdown with the co-runner pressure term
// (Σ demand/bus over the co-runners) already accumulated by the caller. It
// exists for hot paths that keep co-runner demands in reusable scratch and
// sum them in place instead of materialising an []Footprint per victim;
// callers must accumulate in the same co-runner order Slowdown would visit
// for the result to stay bit-identical (float addition is order-sensitive).
func SlowdownFromPressure(busGBps float64, self Footprint, pressure float64) float64 {
	if busGBps <= 0 || self.Sensitivity <= 0 {
		return 1
	}
	if pressure <= 0 {
		return 1
	}
	return 1 + self.Sensitivity*pressureGain*pressure/(pressureHalf+pressure)
}

// PairSlowdowns returns the mutual slowdown fractions (e.g. 0.18 for 18 %)
// of co-executing work a and work b.
func PairSlowdowns(busGBps float64, a, b Footprint) (aSlow, bSlow float64) {
	return Slowdown(busGBps, a, []Footprint{b}) - 1,
		Slowdown(busGBps, b, []Footprint{a}) - 1
}

// IntraClusterSlowdown returns the latency dilation of partitioning one CPU
// cluster between n concurrent co-runners (Appendix A / Fig. 10): beyond
// the loss of cores, conflicting L2 evictions add up to ~70 % slowdown at
// two-way sharing, which is why Hetero²Pipe schedules clusters whole.
func IntraClusterSlowdown(n int) float64 {
	if n <= 1 {
		return 1
	}
	// Two-way sharing: 1.7× (the paper's 70 %); deeper sharing saturates.
	s := 1 + 0.7*float64(n-1)
	if s > 2.5 {
		s = 2.5
	}
	return s
}
