package contention

import (
	"errors"
	"fmt"
)

// Ridge regression (Eq. 1 of the paper): learn weights W minimising
// ½‖XW − Y‖² + ½α‖W‖², with the closed form W = (XᵀX + αI)⁻¹ XᵀY. The
// features X are the three PMU counters of a model's solo execution and Y is
// its measured contention intensity (bus demand), so new inference requests
// can be classified H/L from a cheap PMU read without profiling every
// co-execution combination.

// RidgeModel is a fitted linear predictor with an intercept term.
type RidgeModel struct {
	// Weights has one coefficient per feature, followed by the intercept.
	Weights []float64
	// Alpha is the L2 regularisation strength used in the fit.
	Alpha float64
}

// FitRidge solves the regularised least squares of Eq. (1). Each row of
// features is one observation; y holds the targets. An intercept column is
// appended internally (and excluded from regularisation, the standard
// convention).
func FitRidge(features [][]float64, y []float64, alpha float64) (*RidgeModel, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("contention: no training observations")
	}
	if len(y) != n {
		return nil, fmt.Errorf("contention: %d feature rows but %d targets", n, len(y))
	}
	if alpha < 0 {
		return nil, errors.New("contention: negative ridge alpha")
	}
	d := len(features[0])
	if d == 0 {
		return nil, errors.New("contention: empty feature vectors")
	}
	for i, row := range features {
		if len(row) != d {
			return nil, fmt.Errorf("contention: feature row %d has %d entries, want %d", i, len(row), d)
		}
	}
	// Augment with an intercept column.
	p := d + 1
	// Normal matrix A = XᵀX + αI (intercept unregularised), b = XᵀY.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	row := make([]float64, p)
	for k := 0; k < n; k++ {
		copy(row, features[k])
		row[d] = 1
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[k]
		}
	}
	for i := 0; i < d; i++ {
		a[i][i] += alpha
	}
	w, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("contention: ridge solve: %w", err)
	}
	return &RidgeModel{Weights: w, Alpha: alpha}, nil
}

// Predict returns the model's estimate for one feature vector.
func (m *RidgeModel) Predict(features []float64) (float64, error) {
	if len(features) != len(m.Weights)-1 {
		return 0, fmt.Errorf("contention: got %d features, model wants %d",
			len(features), len(m.Weights)-1)
	}
	sum := m.Weights[len(m.Weights)-1] // intercept
	for i, f := range features {
		sum += m.Weights[i] * f
	}
	return sum, nil
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// The matrices here are tiny (4×4), so numerical sophistication beyond
// pivoting is unnecessary.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies to leave the caller's data intact.
	m := make([][]float64, n)
	for i := range a {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
	}
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[pivot][col]) {
				pivot = r
			}
		}
		if abs(m[pivot][col]) < 1e-12 {
			return nil, errors.New("singular normal matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
