package contention

import (
	"math"
	"testing"
	"testing/quick"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

func TestFitRidgeRecoversLinear(t *testing.T) {
	// y = 2x₁ − 3x₂ + 0.5x₃ + 4, noiseless: near-zero alpha must recover it.
	features := [][]float64{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1},
		{2, 1, 0}, {0, 2, 1}, {3, 0, 2}, {1, 2, 3},
	}
	truth := func(x []float64) float64 { return 2*x[0] - 3*x[1] + 0.5*x[2] + 4 }
	y := make([]float64, len(features))
	for i, x := range features {
		y[i] = truth(x)
	}
	m, err := FitRidge(features, y, 1e-9)
	if err != nil {
		t.Fatalf("FitRidge: %v", err)
	}
	for _, x := range [][]float64{{5, 5, 5}, {0.1, 0.2, 0.3}, {10, -1, 2}} {
		got, err := m.Predict(x)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if want := truth(x); math.Abs(got-want) > 1e-5 {
			t.Errorf("Predict(%v) = %g, want %g", x, got, want)
		}
	}
}

func TestFitRidgeShrinksWeights(t *testing.T) {
	features := [][]float64{{1, 2}, {2, 1}, {3, 3}, {4, 1}, {0, 2}}
	y := []float64{3, 3, 6, 5, 2}
	low, err := FitRidge(features, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	high, err := FitRidge(features, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	normLow := low.Weights[0]*low.Weights[0] + low.Weights[1]*low.Weights[1]
	normHigh := high.Weights[0]*high.Weights[0] + high.Weights[1]*high.Weights[1]
	if normHigh >= normLow {
		t.Errorf("‖W‖² with α=100 (%g) not below α≈0 (%g)", normHigh, normLow)
	}
}

func TestFitRidgeErrors(t *testing.T) {
	cases := []struct {
		name     string
		features [][]float64
		y        []float64
		alpha    float64
	}{
		{"empty", nil, nil, 1},
		{"mismatch", [][]float64{{1}}, []float64{1, 2}, 1},
		{"negative alpha", [][]float64{{1}}, []float64{1}, -1},
		{"empty features", [][]float64{{}}, []float64{1}, 1},
		{"ragged", [][]float64{{1, 2}, {1}}, []float64{1, 2}, 1},
	}
	for _, tc := range cases {
		if _, err := FitRidge(tc.features, tc.y, tc.alpha); err == nil {
			t.Errorf("%s: FitRidge = nil error, want error", tc.name)
		}
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	m, err := FitRidge([][]float64{{1, 2}, {2, 3}, {4, 5}}, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("Predict with wrong width: nil error, want error")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	if _, err := solveLinear([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular system: nil error, want error")
	}
}

// Property: ridge fit at any alpha predicts finite values on the training
// design, and alpha=0 on a well-conditioned design interpolates better than
// heavy regularisation.
func TestRidgeFiniteProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		a := float64(seed%50) / 10
		features := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
		y := []float64{1, 2, 3, 4}
		m, err := FitRidge(features, y, a)
		if err != nil {
			return false
		}
		for _, x := range features {
			v, err := m.Predict(x)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorPredictsIntensityOrdering: the Eq. (1) pipeline end-to-end —
// train on the zoo, then verify predictions correlate strongly with the
// measured ground-truth demands. This is the paper's claim that PMU features
// suffice to rank contention without co-execution profiling.
func TestEstimatorPredictsIntensityOrdering(t *testing.T) {
	k := soc.Kirin990()
	big := k.Processor("cpu-big")
	est, err := TrainEstimator(big, model.All(), 0.1)
	if err != nil {
		t.Fatalf("TrainEstimator: %v", err)
	}
	var pred, truth []float64
	for _, m := range model.All() {
		pred = append(pred, est.Intensity(m))
		truth = append(truth, Measure(big, m).DemandGBps)
	}
	if r := pearsonCorr(pred, truth); r < 0.7 {
		t.Errorf("corr(predicted, measured) = %.3f, want ≥ 0.7", r)
	}
}

func TestEstimatorClassify(t *testing.T) {
	k := soc.Kirin990()
	big := k.Processor("cpu-big")
	est, err := TrainEstimator(big, model.All(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	classes, intensities := est.ClassifyModels(model.All(), 0.5)
	if len(classes) != 10 || len(intensities) != 10 {
		t.Fatalf("got %d classes, %d intensities", len(classes), len(intensities))
	}
	var highs int
	for _, c := range classes {
		if c == High {
			highs++
		}
	}
	if highs == 0 || highs == len(classes) {
		t.Errorf("median split produced %d/%d High", highs, len(classes))
	}
}

func TestClassify(t *testing.T) {
	classes := Classify([]float64{1, 2, 3, 4}, 0.5)
	want := []Class{Low, Low, High, High}
	for i := range want {
		if classes[i] != want[i] {
			t.Errorf("Classify[%d] = %v, want %v", i, classes[i], want[i])
		}
	}
	// All-equal input: nothing is High.
	for i, c := range Classify([]float64{5, 5, 5}, 0.5) {
		if c != Low {
			t.Errorf("uniform input index %d = %v, want Low", i, c)
		}
	}
	if got := Classify(nil, 0.5); len(got) != 0 {
		t.Errorf("Classify(nil) = %v", got)
	}
	if High.String() != "H" || Low.String() != "L" {
		t.Error("Class.String mismatch")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func pearsonCorr(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
		vx += (x[i] - mx) * (x[i] - mx)
		vy += (y[i] - my) * (y[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
