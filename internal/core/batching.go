package core

import (
	"context"
	"sort"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Request batching (paper Appendix D). A single lightweight inference is
// 20–40× shorter than a heavy model's pipeline stage, so vertical alignment
// cannot balance it; coalescing same-model lightweight requests into batches
// closes the gap and amortises weight loading.

// BatchGroup maps one coalesced request back to the original request
// indices it contains.
type BatchGroup struct {
	// Model is the (possibly batched) request handed to the planner.
	Model *model.Model
	// Requests are the original request indices covered by this group.
	Requests []int
}

// CoalesceLight groups lightweight requests of the same network into
// batches sized so each batch's execution time approaches the heaviest
// request's solo time (the Appendix-D alignment target), bounded by
// maxBatch. Heavy requests pass through untouched. Request order among
// groups follows the first member of each group; batching reorders only
// identical, independent requests (frames of the same stream).
func CoalesceLight(s *soc.SoC, requests []*model.Model, maxBatch int) []BatchGroup {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if len(requests) == 0 {
		return nil
	}
	ref := referenceProcessor(s)
	times := make([]time.Duration, len(requests))
	var target time.Duration
	for i, m := range requests {
		times[i] = soc.BatchLatency(ref, m, 1)
		if times[i] != soc.InfDuration && times[i] > target {
			target = times[i]
		}
	}
	// Lightweight: under a quarter of the heaviest request.
	lightBound := target / 4

	// Collect light request indices per model name.
	type bucket struct {
		idxs []int
	}
	buckets := make(map[string]*bucket)
	var groups []BatchGroup
	for i, m := range requests {
		if times[i] == soc.InfDuration || times[i] > lightBound {
			groups = append(groups, BatchGroup{Model: m, Requests: []int{i}})
			continue
		}
		bk, ok := buckets[m.Name]
		if !ok {
			bk = &bucket{}
			buckets[m.Name] = bk
		}
		bk.idxs = append(bk.idxs, i)
	}
	for _, bk := range buckets {
		proto := requests[bk.idxs[0]]
		batch := soc.AlignmentBatch(ref, proto, target, maxBatch)
		if batch > len(bk.idxs) {
			batch = len(bk.idxs)
		}
		for start := 0; start < len(bk.idxs); start += batch {
			end := start + batch
			if end > len(bk.idxs) {
				end = len(bk.idxs)
			}
			members := bk.idxs[start:end]
			groups = append(groups, BatchGroup{
				Model:    model.Batched(proto, len(members)),
				Requests: append([]int(nil), members...),
			})
		}
	}
	// Stable order: by the first original index in each group.
	sort.SliceStable(groups, func(a, b int) bool {
		return groups[a].Requests[0] < groups[b].Requests[0]
	})
	return groups
}

// referenceProcessor picks the big CPU (or the first processor) as the
// Appendix-D profiling reference.
func referenceProcessor(s *soc.SoC) *soc.Processor {
	if idx := s.ProcessorsOfKind(soc.KindCPUBig); len(idx) > 0 {
		return &s.Processors[idx[0]]
	}
	return &s.Processors[0]
}

// PlanBatched coalesces lightweight requests (Appendix D) and plans the
// resulting group sequence. The returned groups parallel the plan's request
// positions after the planner's own re-ordering is applied.
func (pl *Planner) PlanBatched(requests []*model.Model, maxBatch int) (*Plan, []BatchGroup, error) {
	return pl.PlanBatchedContext(context.Background(), requests, maxBatch)
}

// PlanBatchedContext is PlanBatched under a cancellable context.
func (pl *Planner) PlanBatchedContext(ctx context.Context, requests []*model.Model, maxBatch int) (*Plan, []BatchGroup, error) {
	groups := CoalesceLight(pl.soc, requests, maxBatch)
	models := make([]*model.Model, len(groups))
	for i, g := range groups {
		models[i] = g.Model
	}
	plan, err := pl.PlanModelsContext(ctx, models)
	if err != nil {
		return nil, nil, err
	}
	return plan, OrderGroups(groups, plan.Order), nil
}

// PlanFrontierBatchedContext is PlanBatchedContext in frontier mode: it
// coalesces lightweight requests once and enumerates the Pareto frontier of
// the resulting group sequence. Because every frontier point can carry its
// own request ordering, the groups are returned in coalesce order — apply
// the selected point's ordering with OrderGroups(groups, point.Plan.Order).
func (pl *Planner) PlanFrontierBatchedContext(ctx context.Context, requests []*model.Model, maxBatch int) (*Frontier, []BatchGroup, error) {
	groups := CoalesceLight(pl.soc, requests, maxBatch)
	models := make([]*model.Model, len(groups))
	for i, g := range groups {
		models[i] = g.Model
	}
	f, err := pl.PlanFrontierModelsContext(ctx, models)
	if err != nil {
		return nil, nil, err
	}
	return f, groups, nil
}

// OrderGroups permutes batch groups into a plan's request order:
// out[pos] = groups[plan.Order[pos]]. The input is untouched.
func OrderGroups(groups []BatchGroup, order []int) []BatchGroup {
	ordered := make([]BatchGroup, len(groups))
	for pos, orig := range order {
		ordered[pos] = groups[orig]
	}
	return ordered
}
