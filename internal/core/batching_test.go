package core

import (
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func TestCoalesceLightGroupsFrames(t *testing.T) {
	s := soc.Kirin990()
	names := workload.VideoAnalytics(8) // BERT + 8 alternating light frames
	requests, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	groups := CoalesceLight(s, requests, 64)
	if len(groups) >= len(requests) {
		t.Fatalf("coalescing produced %d groups for %d requests", len(groups), len(requests))
	}
	// Every original request appears exactly once.
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, idx := range g.Requests {
			if seen[idx] {
				t.Fatalf("request %d in multiple groups", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != len(requests) {
		t.Fatalf("groups cover %d of %d requests", len(seen), len(requests))
	}
	// The heavy anchor stays solo; light groups carry batched models.
	foundBatch := false
	for _, g := range groups {
		if g.Model.Name == model.BERT && len(g.Requests) != 1 {
			t.Error("heavy request was batched")
		}
		if len(g.Requests) > 1 {
			foundBatch = true
			if g.Model.TotalFLOPs() <= requests[g.Requests[0]].TotalFLOPs() {
				t.Error("batched model does not scale FLOPs")
			}
		}
	}
	if !foundBatch {
		t.Error("no light requests were batched")
	}
}

func TestCoalesceLightEdges(t *testing.T) {
	s := soc.Kirin990()
	if got := CoalesceLight(s, nil, 8); got != nil {
		t.Errorf("empty input groups = %v", got)
	}
	// All-heavy input passes through one-to-one.
	requests := modelsOf(model.BERT, model.ViT)
	groups := CoalesceLight(s, requests, 8)
	if len(groups) != 2 {
		t.Fatalf("all-heavy input produced %d groups", len(groups))
	}
	// maxBatch 1 disables batching entirely.
	light, err := workload.Instantiate(workload.VideoAnalytics(6))
	if err != nil {
		t.Fatal(err)
	}
	groups = CoalesceLight(s, light, 1)
	for _, g := range groups {
		if len(g.Requests) != 1 {
			t.Errorf("maxBatch=1 produced a batch of %d", len(g.Requests))
		}
	}
}

// TestPlanBatchedImprovesThroughput reproduces the Appendix-D claim:
// batching lightweight streams improves end-to-end frame throughput.
func TestPlanBatchedImprovesThroughput(t *testing.T) {
	s := soc.Kirin990()
	names := workload.VideoAnalytics(16)
	requests, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	pl := mustPlanner(t, s, DefaultOptions())

	plain, err := pl.PlanModels(requests)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := pipeline.Execute(plain.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	batched, groups, err := pl.PlanBatched(requests, 64)
	if err != nil {
		t.Fatal(err)
	}
	batchedRes, err := pipeline.Execute(batched.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Frame throughput counts original requests, not groups.
	frames := 0
	for _, g := range groups {
		frames += len(g.Requests)
	}
	if frames != len(requests) {
		t.Fatalf("groups cover %d of %d frames", frames, len(requests))
	}
	// Batching must not hurt end-to-end latency (the heavy anchor
	// dominates the makespan either way)...
	if batchedRes.Makespan.Seconds() > plainRes.Makespan.Seconds()*1.05 {
		t.Errorf("batched makespan %v above unbatched %v", batchedRes.Makespan, plainRes.Makespan)
	}
	// ...and must reduce the total processor busy time: per-frame kernel
	// launches, weight loads and boundary copies amortise across each
	// batch (the Appendix-D mechanism).
	busy := func(res *pipeline.Result) float64 {
		var sum float64
		for _, e := range res.Timeline {
			sum += (e.End - e.Start).Seconds()
		}
		return sum
	}
	if b, p := busy(batchedRes), busy(plainRes); b >= p {
		t.Errorf("batched busy time %.1fms not below unbatched %.1fms", b*1e3, p*1e3)
	}
	// Ordered groups parallel the plan's positions.
	if len(groups) != batched.Schedule.NumRequests() {
		t.Errorf("%d groups for %d scheduled requests", len(groups), batched.Schedule.NumRequests())
	}
	for pos := range groups {
		if groups[pos].Model.Name != batched.Schedule.Profiles[pos].Model().Name {
			t.Errorf("group %d (%s) misaligned with schedule (%s)",
				pos, groups[pos].Model.Name, batched.Schedule.Profiles[pos].Model().Name)
		}
	}
}
