package core

import (
	"context"
	"math"
	"sort"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/parallel"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Bounded-suboptimality beam sweep (Options.BeamWidth / BeamEpsilon /
// AnytimeDeadline). The exact sweep prices every candidate ordering with
// the full vertical machinery — work stealing plus the m×K-execution tail
// search — which dominates planning cost on large windows. The beam sweep
// prunes it in three moves:
//
//  1. Proxy pass: every candidate's DP-cut schedule is executed as-is (one
//     simulator run, no stealing, no tail search). The vertical pass only
//     ever accepts strict executed-makespan improvements over exactly this
//     schedule, so proxy(c) ≥ vertical(c): the proxy is an admissible
//     pessimistic estimate and sorting by it front-loads the candidates
//     most likely to win.
//  2. Beam: the BeamWidth best-proxy candidates (ties by candidate index)
//     run the full vertical pass, concurrently, merged in index order.
//  3. Escalation: while the best executed makespan exceeds
//     (1+ε)·LB — LB the window makespan lower bound below — the sweep keeps
//     evaluating pruned candidates in proxy order (until the deadline, when
//     one is armed).
//
// Regret bound: LB is a lower bound on EVERY schedule's executed makespan,
// in particular on the exact sweep's winner, so when escalation stops at
// best ≤ (1+ε)·LB it holds that best ≤ (1+ε)·exact; and when escalation
// exhausts the candidates, best = exact. Either way the beam plan is within
// (1+ε)× of the exact plan — unconditionally, not just in expectation
// (FuzzBeamRegret pins it). Only an elapsed AnytimeDeadline voids the
// bound, which is the documented determinism/latency trade.

// beamActive reports whether the sweep should be pruned: a width strictly
// below the candidate count, or an armed deadline. Any other configuration
// falls through to the exact sweep — the path the differential suite pins —
// so width ≥ candidates reproduces the exact plan byte-identically.
func (pl *Planner) beamActive(numCandidates int) bool {
	if pl.opts.AnytimeDeadline > 0 {
		return true
	}
	return pl.opts.BeamWidth > 0 && pl.opts.BeamWidth < numCandidates
}

// beamLowerBound returns a lower bound (seconds) on the executed makespan
// of every possible window schedule: the max of
//
//   - the heaviest model's critical path Σ_l min_k ExecTime(k, l) — every
//     layer must run somewhere, paying at least its cheapest solo exec
//     time; copies, launch overheads and co-execution slowdown (≥ 1) only
//     add to it — and
//   - the total-work bound Σ_models Σ_l min_k ExecTime(k, l) / K: K
//     processors cannot retire solo-priced work faster than K-way.
//
// Solo exec time (profile.LayerTime), NOT SliceTime: the copy term of
// SliceTime is only paid at stage boundaries, so it is not a valid
// per-layer lower bound. Layers no processor supports contribute zero
// (such a window fails planning outright anyway).
func beamLowerBound(profiles []*profile.Profile) float64 {
	maxModel, total := 0.0, 0.0
	k := 0
	for _, p := range profiles {
		if p.NumProcessors() > k {
			k = p.NumProcessors()
		}
		sum := 0.0
		for i := 0; i < p.NumLayers(); i++ {
			best := math.Inf(1)
			for proc := 0; proc < p.NumProcessors(); proc++ {
				if d := p.LayerTime(proc, i); d != soc.InfDuration {
					if s := d.Seconds(); s < best {
						best = s
					}
				}
			}
			if !math.IsInf(best, 1) {
				sum += best
			}
		}
		if sum > maxModel {
			maxModel = sum
		}
		total += sum
	}
	if k > 0 {
		if byWork := total / float64(k); byWork > maxModel {
			return byWork
		}
	}
	return maxModel
}

// proxyMakespan executes one candidate's DP-cut schedule as-is and returns
// its makespan in seconds — +Inf when the schedule cannot assemble or run,
// which deprioritises (but does not exclude) the candidate.
func (pl *Planner) proxyMakespan(profiles []*profile.Profile, cuts []pipeline.Cuts, order []int) float64 {
	m := len(order)
	ordP := make([]*profile.Profile, m)
	ordC := make([]pipeline.Cuts, m)
	for pos, orig := range order {
		ordP[pos] = profiles[orig]
		ordC[pos] = cuts[orig]
	}
	sched, err := pipeline.FromCuts(pl.soc, ordP, ordC)
	if err != nil {
		return math.Inf(1)
	}
	res, err := pipeline.Execute(sched, pl.opts.ExecOptions)
	if err != nil {
		return math.Inf(1)
	}
	return res.Makespan.Seconds()
}

// beamCandidates is the pruned sweep: it returns plans/objs slices indexed
// like candidates, with nil/zero holes at the candidates the beam never
// priced. Consumers (the winner scan and the frontier filter) skip the
// holes, so candidate indices — and with them frontier tie-breaks — keep
// their exact-sweep meaning. Except under an elapsed deadline the result
// is deterministic: the proxy pass, its (proxy, index) sort, the parallel
// beam batch (merged in index order) and the escalation order are all
// independent of scheduling and worker count.
func (pl *Planner) beamCandidates(ctx context.Context, profiles []*profile.Profile, cuts []pipeline.Cuts,
	classes []contention.Class, intensities, makespans []float64,
	candidates [][]int, k int) ([]*Plan, []Objective, error) {
	start := time.Now()
	nc := len(candidates)
	lb := beamLowerBound(profiles)

	// Proxy pass: cheap admissible pricing of every candidate, in parallel,
	// each worker writing only its own index.
	proxy := make([]float64, nc)
	err := parallel.ForErr(pl.workers(), nc, func(ci int) error {
		if ctx.Err() != nil {
			return cancelErr(ctx)
		}
		proxy[ci] = pl.proxyMakespan(profiles, cuts, candidates[ci])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if proxy[order[a]] != proxy[order[b]] {
			return proxy[order[a]] < proxy[order[b]]
		}
		return order[a] < order[b]
	})

	width := pl.opts.BeamWidth
	if width <= 0 || width > nc {
		// Deadline-only mode: intend the full sweep, let the deadline prune.
		width = nc
	}

	plans := make([]*Plan, nc)
	objs := make([]Objective, nc)
	evaluated := 0
	evaluate := func(ci int) error {
		plan, obj, err := pl.verticalPass(ctx, profiles, cuts, classes, intensities, makespans, candidates[ci], k)
		if err != nil {
			return err
		}
		plans[ci] = plan
		objs[ci] = obj
		evaluated++
		return nil
	}

	// Beam batch: the width best-proxy candidates through the full vertical
	// pass, concurrently, merged in index order.
	err = parallel.ForErr(pl.workers(), width, func(bi int) error {
		if ctx.Err() != nil {
			return cancelErr(ctx)
		}
		ci := order[bi]
		plan, obj, err := pl.verticalPass(ctx, profiles, cuts, classes, intensities, makespans, candidates[ci], k)
		if err != nil {
			return err
		}
		plans[ci] = plan
		objs[ci] = obj
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	evaluated = width

	best := math.Inf(1)
	for ci, plan := range plans {
		if plan == nil {
			continue
		}
		if span := objs[ci].Makespan.Seconds(); span < best {
			best = span
		}
	}

	// Escalation: keep pricing pruned candidates in proxy order until the
	// regret bound closes (best ≤ (1+ε)·LB ≤ (1+ε)·exact) or — under an
	// armed deadline — the wall-clock budget runs out.
	bound := (1 + pl.opts.BeamEpsilon) * lb
	for bi := width; bi < nc; bi++ {
		if best <= bound {
			break
		}
		if dl := pl.opts.AnytimeDeadline; dl > 0 && time.Since(start) >= dl {
			break
		}
		if ctx.Err() != nil {
			return nil, nil, cancelErr(ctx)
		}
		ci := order[bi]
		if err := evaluate(ci); err != nil {
			return nil, nil, err
		}
		if span := objs[ci].Makespan.Seconds(); span < best {
			best = span
		}
	}

	if sp := obs.SpanFromContext(ctx); sp != nil {
		sp.SetAttrs(
			obs.Int("beam_width", int64(width)),
			obs.Int("beam_evaluated", int64(evaluated)),
			obs.Int("beam_candidates", int64(nc)))
	}
	return plans, objs, nil
}
