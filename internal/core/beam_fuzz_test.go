package core

import (
	"math/rand"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// FuzzBeamRegret fuzzes beam configurations over random zoo windows and
// pins the two contracts of the pruned sweep:
//
//  1. Regret: the beam plan's executed makespan is within (1+ε)× of the
//     exact sweep's, for every width and every ε — the unconditional bound
//     the LB-escalation construction guarantees (no deadline armed).
//  2. Identity: a beam width at or above the candidate count reproduces the
//     exact plan byte for byte.
func FuzzBeamRegret(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0))
	f.Add(int64(2), uint8(2), uint8(10))
	f.Add(int64(42), uint8(3), uint8(25))
	f.Add(int64(7), uint8(1), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, widthRaw, epsRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		names := model.Names()
		presets := soc.AllPresets()
		size := 2 + rng.Intn(4) // 2..5 models
		picked := make([]string, size)
		models := make([]*model.Model, size)
		for i := range picked {
			picked[i] = names[rng.Intn(len(names))]
			m, err := model.ByName(picked[i])
			if err != nil {
				t.Fatal(err)
			}
			models[i] = m
		}
		s := presets[int(seed%int64(len(presets))+int64(len(presets)))%len(presets)]
		width := int(widthRaw%8) + 1     // 1..8
		eps := float64(epsRaw%101) / 100 // 0..1

		plan := func(w int, e float64) *Plan {
			opts := DefaultOptions()
			opts.BeamWidth = w
			opts.BeamEpsilon = e
			pl, err := NewPlanner(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pl.PlanModels(models)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		span := func(p *Plan) float64 {
			res, err := pipeline.Execute(p.Schedule, pipeline.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return res.Makespan.Seconds()
		}

		exact := plan(0, 0)
		exactSpan := span(exact)
		beam := plan(width, eps)
		if got := span(beam); got > (1+eps)*exactSpan*(1+1e-12) {
			t.Fatalf("window %v width %d eps %g: beam makespan %g breaks the (1+ε) bound vs exact %g",
				picked, width, eps, got, exactSpan)
		}
		// Width ≥ the full candidate sweep (≤ 6 under DefaultOptions) must be
		// byte-identical to exact, regardless of ε.
		if wide := plan(8, eps); canonicalPlan(wide) != canonicalPlan(exact) {
			t.Fatalf("window %v: width 8 plan differs from the exact sweep", picked)
		}
	})
}
