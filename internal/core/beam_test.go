package core

import (
	"math/rand"
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// executedMakespan prices a plan under the planner's default execution
// options — the same pricing the sweep itself optimises.
func executedMakespan(t testing.TB, plan *Plan) float64 {
	t.Helper()
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan.Seconds()
}

// beamPlan plans models with the given beam settings and returns the plan.
func beamPlan(t testing.TB, s *soc.SoC, models []*model.Model, width int, eps float64, par int) *Plan {
	t.Helper()
	opts := DefaultOptions()
	opts.BeamWidth = width
	opts.BeamEpsilon = eps
	opts.Parallelism = par
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestBeamRegretBound prices seeded random windows with beam widths 1 and 2
// under ε ∈ {0, 0.1} and requires every beam plan's executed makespan to be
// within (1+ε)× of the exact sweep's — the unconditional regret guarantee
// (the LB-escalation construction, see beam.go).
func TestBeamRegretBound(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	names := model.Names()
	presets := soc.AllPresets()
	windows := 8
	if testing.Short() {
		windows = 3
	}
	for w := 0; w < windows; w++ {
		size := 3 + rng.Intn(4) // 3..6
		picked := make([]string, size)
		for i := range picked {
			picked[i] = names[rng.Intn(len(names))]
		}
		s := presets[w%len(presets)]
		models := mustModels(t, picked...)
		exact := beamPlan(t, s, models, 0, 0, 1)
		exactSpan := executedMakespan(t, exact)
		for _, width := range []int{1, 2} {
			for _, eps := range []float64{0, 0.1} {
				beam := beamPlan(t, s, models, width, eps, 1)
				span := executedMakespan(t, beam)
				// Tiny relative slack for float accumulation only; the bound
				// itself is exact.
				if span > (1+eps)*exactSpan*(1+1e-12) {
					t.Errorf("window %d (%v) width %d eps %g: beam makespan %g > (1+ε)·exact %g",
						w, picked, width, eps, span, (1+eps)*exactSpan)
				}
			}
		}
	}
}

// TestBeamUnboundedByteIdentical pins that a beam width at or above the
// candidate count takes the exact sweep path and reproduces the exact plan
// byte for byte — beam mode is strictly opt-in pruning, never a different
// planner.
func TestBeamUnboundedByteIdentical(t *testing.T) {
	s := soc.Kirin990()
	models := mustModels(t, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	exact := beamPlan(t, s, models, 0, 0, 1)
	// DefaultOptions with mitigation yields 6 candidate orderings; any width
	// ≥ 6 must fall through to the exact sweep.
	for _, width := range []int{6, 7, 100} {
		wide := beamPlan(t, s, models, width, 0.25, 1)
		if canonicalPlan(wide) != canonicalPlan(exact) {
			t.Errorf("width %d: plan differs from exact sweep", width)
		}
	}
}

// TestBeamDeterministicAcrossParallelism pins that the pruned sweep itself —
// proxy pass, beam batch, escalation — is invisible to worker count, the
// same merge discipline the exact sweep keeps.
func TestBeamDeterministicAcrossParallelism(t *testing.T) {
	s := soc.Snapdragon870()
	models := mustModels(t, model.ResNet50, model.MobileNetV2, model.GoogLeNet, model.SqueezeNet)
	want := canonicalPlan(beamPlan(t, s, models, 2, 0.05, 1))
	for _, par := range []int{2, 4, 8} {
		if got := canonicalPlan(beamPlan(t, s, models, 2, 0.05, par)); got != want {
			t.Errorf("beam plan at parallelism %d differs from sequential", par)
		}
	}
}

// TestBeamLowerBoundAdmissible checks LB ≤ executed makespan on every preset
// for a mixed window — the inequality the whole regret argument stands on.
func TestBeamLowerBoundAdmissible(t *testing.T) {
	models := mustModels(t, model.YOLOv4, model.SqueezeNet, model.BERT)
	for _, s := range soc.AllPresets() {
		pl, err := NewPlanner(s, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.PlanModels(models)
		if err != nil {
			t.Fatal(err)
		}
		profiles := make([]*profile.Profile, len(models))
		for i, m := range models {
			if profiles[i], err = pl.Profile(m); err != nil {
				t.Fatal(err)
			}
		}
		lb := beamLowerBound(profiles)
		if span := executedMakespan(t, plan); lb > span*(1+1e-12) {
			t.Errorf("%s: LB %g exceeds executed makespan %g", s.Name, lb, span)
		}
	}
}

// TestBeamAnytimeDeadline arms a deadline and checks the sweep still returns
// a valid plan (the determinism trade is documented, not asserted).
func TestBeamAnytimeDeadline(t *testing.T) {
	s := soc.Kirin990()
	models := mustModels(t, model.ResNet50, model.SqueezeNet, model.BERT)
	opts := DefaultOptions()
	opts.AnytimeDeadline = 50 * time.Millisecond
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Schedule == nil {
		t.Fatal("deadline-armed sweep returned no plan")
	}
}

// TestBeamOptionValidation rejects malformed beam configurations at
// construction.
func TestBeamOptionValidation(t *testing.T) {
	s := soc.Kirin990()
	bad := []Options{}
	o1 := DefaultOptions()
	o1.BeamWidth = -1
	o2 := DefaultOptions()
	o2.BeamEpsilon = -0.5
	o3 := DefaultOptions()
	o3.AnytimeDeadline = -time.Second
	bad = append(bad, o1, o2, o3)
	for i, o := range bad {
		if _, err := NewPlanner(s, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}
