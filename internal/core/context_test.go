package core

import (
	"context"
	"errors"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// TestPlanContextCancelled: a pre-cancelled context aborts every planning
// entry point with an error wrapping context.Canceled, and a background
// context leaves the plan identical to the context-free API.
func TestPlanContextCancelled(t *testing.T) {
	pl, err := NewPlanner(soc.Kirin990(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := pl.PlanModelsContext(ctx, models); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanModelsContext error %v does not wrap context.Canceled", err)
	}
	if _, _, err := pl.PlanBatchedContext(ctx, models, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanBatchedContext error %v does not wrap context.Canceled", err)
	}
	p, err := pl.Profile(models[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PartitionContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionContext error %v does not wrap context.Canceled", err)
	}
	if _, err := pl.PlanProfilesContext(ctx, []*profile.Profile{p}); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanProfilesContext error %v does not wrap context.Canceled", err)
	}

	// Sanity: the context-free wrappers still plan, and match the ctx form.
	a, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.PlanModelsContext(context.Background(), models)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.NumRequests() != b.Schedule.NumRequests() {
		t.Error("context and context-free plans diverge")
	}
}
