package core

import (
	"strconv"
	"sync"
	"sync/atomic"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Cost-table memoization. Building a profile.Profile is the planner's
// measurement phase — O(nK) roofline layer-cost evaluations per model — and
// it is pure: the tables depend only on the (SoC, model) pair. The planner
// therefore computes each model's tables once and shares the read-only
// Profile across worker goroutines, across candidate orderings, and across
// internal/stream planning windows. Batched requests participate naturally:
// model.Batched mints a distinct name ("X×4"), so every batch size gets its
// own entry.
//
// Entries are held at (model, processor) granularity so degradation events
// invalidate partially: a thermal throttle or offline transition on one
// processor stales only that processor's table in every entry, and the next
// lookup re-measures the stale slot while sharing the other K−1 tables
// (profile.FromTables). The whole-profile view is cached alongside so a
// fully warm lookup still returns one shared immutable Profile instance.
//
// Lifecycle: the cache belongs to one Planner and is keyed by the SoC the
// entries were measured on; if the planner's SoC description is swapped the
// cache detects the mismatch and drops every entry (the invalidation rule —
// stale tables would silently misprice every slice). InvalidateCache forces
// the same reset after an in-place SoC mutation, which pointer identity
// cannot see; InvalidateProcessors is the partial form degradation events
// use.

// cacheEntry holds one model's memoized state: the per-processor tables
// (nil slots were invalidated and need re-measurement) and, when every slot
// is present, the assembled Profile shared with every holder.
type cacheEntry struct {
	// model is the structural identity the tables were measured for — the
	// collision guard behind the name-based key.
	model  *model.Model
	tables []*profile.Table
	// assembled is the whole-profile view; nil whenever any table slot is.
	assembled *profile.Profile
}

// costCache memoizes per-(model, processor, batch) cost tables.
type costCache struct {
	mu      sync.RWMutex
	soc     *soc.SoC
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
	// hitC/missC mirror the lifetime counters into the owning planner's
	// metrics registry (detached instruments when no registry is set).
	hitC  *obs.Counter
	missC *obs.Counter
}

func newCostCache(s *soc.SoC, reg *obs.Registry) *costCache {
	return &costCache{
		soc:     s,
		entries: make(map[string]*cacheEntry),
		hitC:    reg.Counter("planner_cache_hits_total"),
		missC:   reg.Counter("planner_cache_misses_total"),
	}
}

// cacheKey identifies a model cheaply. Name alone is not trusted — two
// distinct models may share a name — so lookups verify structural equality
// before counting a hit.
func cacheKey(m *model.Model) string {
	return m.Name + "/" + strconv.Itoa(m.NumLayers())
}

// sameModel reports whether two models are structurally identical — the
// collision guard behind the name-based key. O(n) field compares, orders of
// magnitude cheaper than re-measuring the tables.
func sameModel(a, b *model.Model) bool {
	if a == b {
		return true
	}
	if a.Name != b.Name || a.InputBytes != b.InputBytes || len(a.Layers) != len(b.Layers) {
		return false
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			return false
		}
	}
	return true
}

// profile returns the cached tables for m on s, measuring stale or missing
// slots on first use. Safe for concurrent use; the returned Profile is
// shared and read-only.
//
// Counter semantics: a lookup counts one hit when it reuses at least one
// cached table and one miss when it measures at least one, so a fully warm
// lookup is one hit, a cold one is one miss, and a partially invalidated
// one is both — the hit records exactly the satellite fact that the
// unaffected (model, processor) tables survived the event.
func (c *costCache) profile(s *soc.SoC, m *model.Model) (*profile.Profile, error) {
	key := cacheKey(m)
	c.mu.RLock()
	var reuse []*profile.Table
	if c.soc == s {
		if e, ok := c.entries[key]; ok && sameModel(e.model, m) {
			if e.assembled != nil {
				c.mu.RUnlock()
				c.hits.Add(1)
				c.hitC.Inc()
				return e.assembled, nil
			}
			reuse = append([]*profile.Table(nil), e.tables...)
		}
	}
	c.mu.RUnlock()

	reused := 0
	for _, t := range reuse {
		if t != nil {
			reused++
		}
	}
	if reused > 0 {
		c.hits.Add(1)
		c.hitC.Inc()
	}
	c.misses.Add(1)
	c.missC.Inc()
	p, err := profile.FromTables(s, m, reuse)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.soc != s {
		// SoC changed since the cache was built: every entry is stale.
		c.soc = s
		c.entries = make(map[string]*cacheEntry)
	}
	if prior, ok := c.entries[key]; ok && sameModel(prior.model, m) && prior.assembled != nil {
		// A concurrent worker assembled the same model first; keep its entry
		// so every holder shares one Profile.
		c.mu.Unlock()
		return prior.assembled, nil
	}
	tables := make([]*profile.Table, p.NumProcessors())
	for k := range tables {
		tables[k] = p.Table(k)
	}
	c.entries[key] = &cacheEntry{model: m, tables: tables, assembled: p}
	c.mu.Unlock()
	return p, nil
}

// stats returns the lifetime hit/miss counters.
func (c *costCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// invalidate drops every entry (counters survive — they describe the
// planner's lifetime, not one cache generation).
func (c *costCache) invalidate() {
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry)
	c.mu.Unlock()
}

// invalidateProcessors drops only the named processors' tables from every
// entry — the partial invalidation a degradation event triggers. Tables of
// unaffected (model, processor) pairs stay cached and keep producing hits.
func (c *costCache) invalidateProcessors(procs []int) {
	if len(procs) == 0 {
		return
	}
	c.mu.Lock()
	for _, e := range c.entries {
		dropped := false
		for _, k := range procs {
			if k >= 0 && k < len(e.tables) && e.tables[k] != nil {
				e.tables[k] = nil
				dropped = true
			}
		}
		if dropped {
			e.assembled = nil
		}
	}
	c.mu.Unlock()
}

// Profile returns the planner's memoized cost tables for m, measuring them
// on first use. Callers may hold the result across PlanModels calls; it is
// immutable.
func (pl *Planner) Profile(m *model.Model) (*profile.Profile, error) {
	return pl.cache.profile(pl.soc, m)
}

// CacheStats returns the planner's lifetime cost-cache hit/miss counters: a
// lookup counts a hit when it reuses at least one cached (model, processor)
// table and a miss when it measures at least one, so a warm lookup is one
// hit, a cold one is one miss, and a lookup after a partial invalidation is
// both.
func (pl *Planner) CacheStats() (hits, misses uint64) {
	return pl.cache.stats()
}

// InvalidateCache drops every memoized cost table and every memoized whole
// plan. Call it after mutating the SoC description in place (frequency
// scaling, thermal capping experiments); the next plan re-measures every
// model. Pair it with soc.SoC.BumpEpoch so plan signatures computed after
// the mutation cannot alias pre-mutation ones.
func (pl *Planner) InvalidateCache() {
	pl.cache.invalidate()
	if pl.planCache != nil {
		pl.planCache.invalidate()
	}
	if pl.partMemo != nil {
		// The partition memo's rows were computed against the dropped tables;
		// after an untracked SoC mutation its pointer-identity guard would
		// correctly refuse them anyway, but reclaim the memory now.
		pl.partMemo.invalidate()
	}
}

// InvalidateProcessors drops only the named processors' memoized tables —
// the partial invalidation matching a degradation event's affected set
// (soc.SoC.Apply returns it). Unaffected (model, processor) tables stay
// cached; the next lookup re-measures the stale slots and shares the rest.
// A non-empty set also flushes the whole-plan cache: a plan spans every
// processor, so no memoized plan survives any processor's transition (the
// bumped epoch already makes those entries unreachable; flushing reclaims
// them). An empty set — a no-op event — touches neither cache.
func (pl *Planner) InvalidateProcessors(procs ...int) {
	pl.cache.invalidateProcessors(procs)
	if len(procs) > 0 && pl.planCache != nil {
		pl.planCache.invalidate()
	}
}

// SoC returns the SoC the planner plans for — the object degradation
// events mutate in place (followed by InvalidateProcessors on the affected
// set).
func (pl *Planner) SoC() *soc.SoC { return pl.soc }
