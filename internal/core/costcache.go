package core

import (
	"strconv"
	"sync"
	"sync/atomic"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Cost-table memoization. Building a profile.Profile is the planner's
// measurement phase — O(nK) roofline layer-cost evaluations per model — and
// it is pure: the tables depend only on the (SoC, model) pair. The planner
// therefore computes each model's tables once and shares the read-only
// Profile across worker goroutines, across candidate orderings, and across
// internal/stream planning windows. Batched requests participate naturally:
// model.Batched mints a distinct name ("X×4"), so every batch size gets its
// own entry.
//
// Lifecycle: the cache belongs to one Planner and is keyed by the SoC the
// entries were measured on; if the planner's SoC description is swapped the
// cache detects the mismatch and drops every entry (the invalidation rule —
// stale tables would silently misprice every slice). InvalidateCache forces
// the same reset after an in-place SoC mutation, which pointer identity
// cannot see.

// costCache memoizes per-(model, processor, batch) cost tables as whole
// Profiles.
type costCache struct {
	mu      sync.RWMutex
	soc     *soc.SoC
	entries map[string]*profile.Profile
	hits    atomic.Uint64
	misses  atomic.Uint64
}

func newCostCache(s *soc.SoC) *costCache {
	return &costCache{soc: s, entries: make(map[string]*profile.Profile)}
}

// cacheKey identifies a model cheaply. Name alone is not trusted — two
// distinct models may share a name — so lookups verify structural equality
// before counting a hit.
func cacheKey(m *model.Model) string {
	return m.Name + "/" + strconv.Itoa(m.NumLayers())
}

// sameModel reports whether two models are structurally identical — the
// collision guard behind the name-based key. O(n) field compares, orders of
// magnitude cheaper than re-measuring the tables.
func sameModel(a, b *model.Model) bool {
	if a == b {
		return true
	}
	if a.Name != b.Name || a.InputBytes != b.InputBytes || len(a.Layers) != len(b.Layers) {
		return false
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			return false
		}
	}
	return true
}

// profile returns the cached tables for m on s, measuring them on first use.
// Safe for concurrent use; the returned Profile is shared and read-only.
func (c *costCache) profile(s *soc.SoC, m *model.Model) (*profile.Profile, error) {
	c.mu.RLock()
	if c.soc == s {
		if p, ok := c.entries[cacheKey(m)]; ok && sameModel(p.Model(), m) {
			c.mu.RUnlock()
			c.hits.Add(1)
			return p, nil
		}
	}
	c.mu.RUnlock()

	c.misses.Add(1)
	p, err := profile.New(s, m)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.soc != s {
		// SoC changed since the cache was built: every entry is stale.
		c.soc = s
		c.entries = make(map[string]*profile.Profile)
	}
	key := cacheKey(m)
	if prior, ok := c.entries[key]; ok && sameModel(prior.Model(), m) {
		// A concurrent worker measured the same model first; keep its entry
		// so every holder shares one Profile.
		c.mu.Unlock()
		return prior, nil
	}
	c.entries[key] = p
	c.mu.Unlock()
	return p, nil
}

// stats returns the lifetime hit/miss counters.
func (c *costCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// invalidate drops every entry (counters survive — they describe the
// planner's lifetime, not one cache generation).
func (c *costCache) invalidate() {
	c.mu.Lock()
	c.entries = make(map[string]*profile.Profile)
	c.mu.Unlock()
}

// Profile returns the planner's memoized cost tables for m, measuring them
// on first use. Callers may hold the result across PlanModels calls; it is
// immutable.
func (pl *Planner) Profile(m *model.Model) (*profile.Profile, error) {
	return pl.cache.profile(pl.soc, m)
}

// CacheStats returns the planner's lifetime cost-cache hit/miss counters
// (misses count table constructions).
func (pl *Planner) CacheStats() (hits, misses uint64) {
	return pl.cache.stats()
}

// InvalidateCache drops every memoized cost table. Call it after mutating
// the SoC description in place (frequency scaling, thermal capping
// experiments); the next plan re-measures every model.
func (pl *Planner) InvalidateCache() {
	pl.cache.invalidate()
}
