package core

import (
	"reflect"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// TestCostCacheHitMatchesColdCompute walks the zoo × presets × batch
// cross-product: for every combination the cached tables must be deeply
// identical to a cold profile.New, the second lookup must be a hit, and
// hits must return the same shared Profile instance.
func TestCostCacheHitMatchesColdCompute(t *testing.T) {
	batches := []int{1, 4}
	for _, s := range soc.AllPresets() {
		pl, err := NewPlanner(s, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, name := range model.Names() {
			for _, batch := range batches {
				m := model.Batched(model.MustByName(name), batch)

				cold, err := profile.New(s, m)
				if err != nil {
					t.Fatalf("%s/%s: cold profile: %v", s.Name, m.Name, err)
				}
				h0, m0 := pl.CacheStats()
				first, err := pl.Profile(m)
				if err != nil {
					t.Fatalf("%s/%s: cached profile: %v", s.Name, m.Name, err)
				}
				h1, m1 := pl.CacheStats()
				if h1 != h0 || m1 != m0+1 {
					t.Fatalf("%s/%s: first lookup counted hits %d→%d misses %d→%d, want one miss",
						s.Name, m.Name, h0, h1, m0, m1)
				}
				second, err := pl.Profile(m)
				if err != nil {
					t.Fatalf("%s/%s: second lookup: %v", s.Name, m.Name, err)
				}
				h2, m2 := pl.CacheStats()
				if h2 != h1+1 || m2 != m1 {
					t.Fatalf("%s/%s: second lookup counted hits %d→%d misses %d→%d, want one hit",
						s.Name, m.Name, h1, h2, m1, m2)
				}
				if second != first {
					t.Fatalf("%s/%s: hit returned a different Profile instance", s.Name, m.Name)
				}
				if !reflect.DeepEqual(first, cold) {
					t.Fatalf("%s/%s: cached tables differ from cold compute", s.Name, m.Name)
				}
			}
		}
	}
}

// TestCostCacheStructuralCollision: two different models sharing a cache
// key (same name, same layer count) must never be served each other's
// tables.
func TestCostCacheStructuralCollision(t *testing.T) {
	s := soc.Kirin990()
	pl, err := NewPlanner(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := model.MustByName(model.SqueezeNet)
	b := a.Clone()
	for i := range b.Layers {
		// Same name, same shape, drastically different compute cost — large
		// enough that even memory-bound layers flip compute-bound.
		b.Layers[i].FLOPs *= 1000
	}
	pa, err := pl.Profile(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := pl.Profile(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa == pb {
		t.Fatal("structurally different models shared one cache entry")
	}
	n := a.NumLayers()
	if pa.ExecTime(0, 0, n-1) == pb.ExecTime(0, 0, n-1) {
		t.Fatal("collision returned identical exec times for different cost structures")
	}
	// And the colliding model must itself be served correct tables again.
	cold, err := profile.New(s, b)
	if err != nil {
		t.Fatal(err)
	}
	again, err := pl.Profile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, cold) {
		t.Fatal("post-collision lookup returned stale tables")
	}
}

// TestCostCacheInvalidate: InvalidateCache forces re-measurement.
func TestCostCacheInvalidate(t *testing.T) {
	s := soc.Kirin990()
	pl, err := NewPlanner(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := model.MustByName(model.ResNet50)
	if _, err := pl.Profile(m); err != nil {
		t.Fatal(err)
	}
	pl.InvalidateCache()
	_, m0 := pl.CacheStats()
	if _, err := pl.Profile(m); err != nil {
		t.Fatal(err)
	}
	if _, m1 := pl.CacheStats(); m1 != m0+1 {
		t.Fatalf("lookup after invalidation counted %d misses, want %d", m1, m0+1)
	}
}

// TestCostCachePartialInvalidation: after a throttle event on one
// processor, only that processor's tables are re-measured — cached cost
// tables for unaffected (model, processor) pairs survive, report hits via
// CacheStats, and are shared by pointer with the rebuilt profiles, while
// the throttled processor's slice times reflect the event.
func TestCostCachePartialInvalidation(t *testing.T) {
	s := soc.Kirin990()
	pl, err := NewPlanner(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	models := mustModels(t, model.ResNet50, model.SqueezeNet, model.MobileNetV2)
	warm := make([]*profile.Profile, len(models))
	for i, m := range models {
		if warm[i], err = pl.Profile(m); err != nil {
			t.Fatal(err)
		}
	}
	h0, m0 := pl.CacheStats()

	// Throttle the GPU 2× and invalidate exactly the affected set.
	affected, err := s.Apply(soc.Event{Kind: soc.EventThermalThrottle, Processor: "gpu", Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 {
		t.Fatalf("throttle affected %v, want one processor", affected)
	}
	gpu := affected[0]
	pl.InvalidateProcessors(affected...)

	for i, m := range models {
		fresh, err := pl.Profile(m)
		if err != nil {
			t.Fatal(err)
		}
		if fresh == warm[i] {
			t.Fatalf("%s: invalidated profile instance reused", m.Name)
		}
		n := m.NumLayers()
		for k := 0; k < fresh.NumProcessors(); k++ {
			if k == gpu {
				if fresh.Table(k) == warm[i].Table(k) {
					t.Errorf("%s: throttled processor %d table not re-measured", m.Name, k)
				}
				old, now := warm[i].ExecTime(k, 0, n-1), fresh.ExecTime(k, 0, n-1)
				if now <= old {
					t.Errorf("%s: throttled exec time %v not above nominal %v", m.Name, now, old)
				}
				continue
			}
			// Unaffected pair: the very same table instance survives.
			if fresh.Table(k) != warm[i].Table(k) {
				t.Errorf("%s: unaffected processor %d table re-measured", m.Name, k)
			}
		}
	}
	h1, m1 := pl.CacheStats()
	if hits := h1 - h0; hits != uint64(len(models)) {
		t.Errorf("post-event lookups counted %d hits, want %d (unaffected tables reused)", hits, len(models))
	}
	if misses := m1 - m0; misses != uint64(len(models)) {
		t.Errorf("post-event lookups counted %d misses, want %d (one stale table each)", misses, len(models))
	}

	// Fully warm again: pure hits, same instances.
	for _, m := range models {
		if _, err := pl.Profile(m); err != nil {
			t.Fatal(err)
		}
	}
	h2, m2 := pl.CacheStats()
	if h2 != h1+uint64(len(models)) || m2 != m1 {
		t.Errorf("re-warmed lookups: hits %d→%d misses %d→%d, want pure hits", h1, h2, m1, m2)
	}

	// Invalidating an already-stale or out-of-range index is a no-op.
	pl.InvalidateProcessors()
	pl.InvalidateProcessors(-1, 99)
	if _, err := pl.Profile(models[0]); err != nil {
		t.Fatal(err)
	}
	if h3, m3 := pl.CacheStats(); h3 != h2+1 || m3 != m2 {
		t.Errorf("no-op invalidation caused re-measurement: hits %d→%d misses %d→%d", h2, h3, m2, m3)
	}
}

// TestCostCacheSharedAcrossPlans: repeated PlanModels calls on one planner
// hit the cache for every model after the first plan.
func TestCostCacheSharedAcrossPlans(t *testing.T) {
	s := soc.Kirin990()
	pl, err := NewPlanner(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	models := mustModels(t, model.ResNet50, model.SqueezeNet, model.MobileNetV2)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	h0, m0 := pl.CacheStats()
	if m0 != uint64(len(models)) {
		t.Fatalf("first plan measured %d models, want %d", m0, len(models))
	}
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	h1, m1 := pl.CacheStats()
	if m1 != m0 {
		t.Fatalf("second plan re-measured models: misses %d → %d", m0, m1)
	}
	if h1 != h0+uint64(len(models)) {
		t.Fatalf("second plan counted %d hits, want %d", h1-h0, len(models))
	}
}
