package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Differential harness: the parallel planning engine is only admissible if
// worker count is invisible in its output. Every test here serialises the
// full plan — ordering, classes, intensities, cuts, horizontal makespans and
// the final stage assignments — into a canonical string and requires the
// parallel planner (2, 4, 8 workers) to be byte-identical to the sequential
// planner (1 worker) on the same inputs.

// canonicalPlan renders every observable field of a plan, with float64s in
// hex notation so the comparison is exact to the bit.
func canonicalPlan(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "order=%v\n", p.Order)
	fmt.Fprintf(&b, "classes=%v\n", p.Classes)
	b.WriteString("intensities=")
	for _, v := range p.Intensities {
		fmt.Fprintf(&b, "%x ", v)
	}
	b.WriteString("\nhmakespans=")
	for _, v := range p.HorizontalMakespans {
		fmt.Fprintf(&b, "%x ", v)
	}
	fmt.Fprintf(&b, "\ncuts=%v\n", p.Cuts)
	for i, row := range p.Schedule.Stages {
		fmt.Fprintf(&b, "req%d=%s stages=%v\n", i, p.Schedule.Profiles[i].Model().Name, row)
	}
	return b.String()
}

// planCanonical plans the models at the given parallelism with a fresh
// planner and returns the canonical serialization.
func planCanonical(t *testing.T, s *soc.SoC, models []*model.Model, parallelism int) string {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = parallelism
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatalf("NewPlanner(%s): %v", s.Name, err)
	}
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatalf("PlanModels on %s at parallelism %d: %v", s.Name, parallelism, err)
	}
	return canonicalPlan(plan)
}

var diffParallelisms = []int{2, 4, 8}

// assertParallelMatchesSequential is the differential check shared by every
// scenario below.
func assertParallelMatchesSequential(t *testing.T, s *soc.SoC, models []*model.Model, label string) {
	t.Helper()
	want := planCanonical(t, s, models, 1)
	for _, par := range diffParallelisms {
		if got := planCanonical(t, s, models, par); got != want {
			t.Errorf("%s on %s: plan at parallelism %d differs from sequential:\n--- parallelism 1 ---\n%s--- parallelism %d ---\n%s",
				label, s.Name, par, want, par, got)
		}
	}
}

func mustModels(t *testing.T, names ...string) []*model.Model {
	t.Helper()
	out := make([]*model.Model, len(names))
	for i, n := range names {
		m, err := model.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

// TestDifferentialZooSingles plans every zoo model alone on every SoC
// preset at parallelism {2,4,8} vs 1.
func TestDifferentialZooSingles(t *testing.T) {
	for _, s := range soc.AllPresets() {
		for _, name := range model.Names() {
			assertParallelMatchesSequential(t, s, mustModels(t, name), "single "+name)
		}
	}
}

// TestDifferentialPaperPairs covers the co-execution pairs the paper's
// slowdown study mixes: heavy/light, compute-/memory-bound, CNN/transformer.
func TestDifferentialPaperPairs(t *testing.T) {
	pairs := [][]string{
		{model.ResNet50, model.SqueezeNet},
		{model.BERT, model.MobileNetV2},
		{model.YOLOv4, model.GoogLeNet},
		{model.VGG16, model.InceptionV4},
		{model.ViT, model.AlexNet},
	}
	for _, s := range soc.AllPresets() {
		for _, pair := range pairs {
			assertParallelMatchesSequential(t, s, mustModels(t, pair...), "pair "+strings.Join(pair, "+"))
		}
	}
}

// TestDifferentialRandomWindows draws seeded random 3–8 model windows (with
// repetition) from the zoo, rotating through the SoC presets.
func TestDifferentialRandomWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(20250805))
	presets := soc.AllPresets()
	names := model.Names()
	windows := 10
	if testing.Short() {
		windows = 4
	}
	for w := 0; w < windows; w++ {
		size := 3 + rng.Intn(6) // 3..8
		picked := make([]string, size)
		for i := range picked {
			picked[i] = names[rng.Intn(len(names))]
		}
		s := presets[w%len(presets)]
		assertParallelMatchesSequential(t, s, mustModels(t, picked...),
			fmt.Sprintf("window %d (%s)", w, strings.Join(picked, "+")))
	}
}

// TestDifferentialAblationOptions re-runs a mixed window under the ablation
// configurations: the merge policy must hold for every feature subset, not
// only the full planner.
func TestDifferentialAblationOptions(t *testing.T) {
	s := soc.Kirin990()
	models := mustModels(t, model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50)
	for _, base := range []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"noct", NoCTOptions()},
		{"bare", Options{HighQuantile: 0.5, ExecOptions: DefaultOptions().ExecOptions}},
	} {
		base := base
		t.Run(base.name, func(t *testing.T) {
			plan := func(par int) string {
				opts := base.opts
				opts.Parallelism = par
				pl, err := NewPlanner(s, opts)
				if err != nil {
					t.Fatal(err)
				}
				p, err := pl.PlanModels(models)
				if err != nil {
					t.Fatal(err)
				}
				return canonicalPlan(p)
			}
			want := plan(1)
			for _, par := range diffParallelisms {
				if got := plan(par); got != want {
					t.Errorf("%s options: parallelism %d differs from sequential", base.name, par)
				}
			}
		})
	}
}
