package core_test

import (
	"fmt"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// ExamplePlanner shows the basic planning flow: profile requests, run the
// two-step optimisation, execute the resulting pipeline.
func ExamplePlanner() {
	platform := soc.Kirin990()
	planner, err := core.NewPlanner(platform, core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	plan, err := planner.PlanModels([]*model.Model{
		model.MustByName(model.ResNet50),
		model.MustByName(model.SqueezeNet),
	})
	if err != nil {
		panic(err)
	}
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("requests:", plan.Schedule.NumRequests())
	fmt.Println("finished:", len(res.Completions))
	// Output:
	// requests: 2
	// finished: 2
}

// ExamplePartition runs Algorithm 1 alone on one profiled model.
func ExamplePartition() {
	platform := soc.Kirin990()
	planner, err := core.NewPlanner(platform, core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	_ = planner // Partition works on a profile directly:
	p, err := profileOf(platform, model.VGG16)
	if err != nil {
		panic(err)
	}
	cuts, _, err := core.Partition(p)
	if err != nil {
		panic(err)
	}
	fmt.Println("boundaries:", len(cuts))
	fmt.Println("covers all layers:", cuts[len(cuts)-1] == p.NumLayers())
	// Output:
	// boundaries: 5
	// covers all layers: true
}

// ExampleMitigate relocates a low-contention request between two
// conflicting high-contention ones (Algorithm 2).
func ExampleMitigate() {
	classes := []contention.Class{
		contention.High, contention.High,
		contention.Low, contention.Low, contention.Low,
	}
	order := core.Mitigate(classes, 2)
	for _, idx := range order {
		fmt.Print(classes[idx])
	}
	fmt.Println()
	// Output:
	// HLHLL
}

// profileOf builds a profile for one zoo model (helper for the examples).
func profileOf(s *soc.SoC, name string) (*profile.Profile, error) {
	return profile.New(s, model.MustByName(name))
}
