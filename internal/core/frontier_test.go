package core

import (
	"errors"
	"fmt"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// frontierPlanner builds a fresh planner for the frontier tests.
func frontierPlanner(t *testing.T, s *soc.SoC, parallelism, planCache int) *Planner {
	t.Helper()
	opts := DefaultOptions()
	opts.Parallelism = parallelism
	opts.PlanCache = planCache
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatalf("NewPlanner(%s): %v", s.Name, err)
	}
	return pl
}

// TestDifferentialFrontierLatencyCritical pins the correctness anchor of the
// frontier mode: the latency-critical point of the Pareto frontier must be
// byte-identical to the min-makespan planner's output — at every parallelism,
// with the plan cache off and on, and on the frontier cache's hit path.
func TestDifferentialFrontierLatencyCritical(t *testing.T) {
	windows := [][]string{
		{model.ResNet50},
		{model.ResNet50, model.SqueezeNet},
		{model.BERT, model.MobileNetV2, model.GoogLeNet},
		{model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50},
	}
	for _, s := range soc.AllPresets() {
		for _, names := range windows {
			models := mustModels(t, names...)
			for _, par := range []int{1, 2, 4} {
				for _, cache := range []int{0, 8} {
					label := fmt.Sprintf("%s/%v par=%d cache=%d", s.Name, names, par, cache)
					want := canonicalPlan(mustPlan(t, frontierPlanner(t, s, par, cache), models))

					pl := frontierPlanner(t, s, par, cache)
					f, err := pl.PlanFrontierModels(models)
					if err != nil {
						t.Fatalf("%s: PlanFrontierModels: %v", label, err)
					}
					if f.Size() == 0 {
						t.Fatalf("%s: empty frontier", label)
					}
					pt := f.Select(SLOLatencyCritical)
					if got := canonicalPlan(pt.Plan); got != want {
						t.Errorf("%s: latency-critical frontier point differs from min-makespan plan:\n--- makespan ---\n%s--- frontier ---\n%s", label, want, got)
					}
					// The unset class must fall back to the same point.
					if got := canonicalPlan(f.Select(SLOClass{}).Plan); got != want {
						t.Errorf("%s: unset-SLO selection differs from min-makespan plan", label)
					}
					if cache > 0 {
						// Second call hits the frontier cache: the deep copy
						// must stay byte-identical.
						f2, err := pl.PlanFrontierModels(models)
						if err != nil {
							t.Fatalf("%s: cached PlanFrontierModels: %v", label, err)
						}
						if hits, _ := pl.PlanCacheStats(); hits == 0 {
							t.Fatalf("%s: expected a frontier cache hit", label)
						}
						if got := canonicalPlan(f2.Select(SLOLatencyCritical).Plan); got != want {
							t.Errorf("%s: cache-hit frontier point differs from min-makespan plan", label)
						}
					}
				}
			}
		}
	}
}

func mustPlan(t *testing.T, pl *Planner, models []*model.Model) *Plan {
	t.Helper()
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatalf("PlanModels: %v", err)
	}
	return plan
}

// TestFrontierNoDominatedPoints is the dominance property test: no returned
// point may be Pareto-dominated by (or equal in every axis to) another.
func TestFrontierNoDominatedPoints(t *testing.T) {
	windows := [][]string{
		{model.ResNet50, model.SqueezeNet},
		{model.BERT, model.MobileNetV2, model.GoogLeNet},
		{model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50},
		{model.VGG16, model.InceptionV4, model.ViT},
	}
	for _, s := range soc.AllPresets() {
		for _, names := range windows {
			pl := frontierPlanner(t, s, 0, 0)
			f, err := pl.PlanFrontierModels(mustModels(t, names...))
			if err != nil {
				t.Fatalf("%s/%v: %v", s.Name, names, err)
			}
			for i := range f.Points {
				for j := range f.Points {
					if i == j {
						continue
					}
					if f.Points[j].Objective.Dominates(f.Points[i].Objective) {
						t.Errorf("%s/%v: point %d %+v dominated by point %d %+v",
							s.Name, names, i, f.Points[i].Objective, j, f.Points[j].Objective)
					}
					if i < j && equalObjective(f.Points[i].Objective, f.Points[j].Objective) {
						t.Errorf("%s/%v: duplicate objective at points %d and %d", s.Name, names, i, j)
					}
				}
			}
			// Sorted by makespan ascending, candidate index breaking ties.
			for i := 1; i < f.Size(); i++ {
				a, b := f.Points[i-1], f.Points[i]
				if b.Objective.Makespan < a.Objective.Makespan {
					t.Errorf("%s/%v: frontier not sorted by makespan at %d", s.Name, names, i)
				}
				if b.Objective.Makespan == a.Objective.Makespan && b.Candidate < a.Candidate {
					t.Errorf("%s/%v: candidate tie-break violated at %d", s.Name, names, i)
				}
			}
		}
	}
}

// TestFrontierBatterySaverEnergy: on the same window, the battery-saver class
// must never select a point with more energy than the latency-critical class.
func TestFrontierBatterySaverEnergy(t *testing.T) {
	windows := [][]string{
		{model.ResNet50, model.SqueezeNet},
		{model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50},
		{model.BERT, model.MobileNetV2, model.GoogLeNet, model.AlexNet},
	}
	for _, s := range soc.AllPresets() {
		for _, names := range windows {
			pl := frontierPlanner(t, s, 0, 0)
			f, err := pl.PlanFrontierModels(mustModels(t, names...))
			if err != nil {
				t.Fatalf("%s/%v: %v", s.Name, names, err)
			}
			saver := f.Select(SLOBatterySaver)
			crit := f.Select(SLOLatencyCritical)
			if saver.Objective.EnergyJoules > crit.Objective.EnergyJoules {
				t.Errorf("%s/%v: battery-saver picked %.4f J > latency-critical %.4f J",
					s.Name, names, saver.Objective.EnergyJoules, crit.Objective.EnergyJoules)
			}
			if crit.Objective.Makespan > saver.Objective.Makespan {
				t.Errorf("%s/%v: latency-critical picked %v > battery-saver %v makespan",
					s.Name, names, crit.Objective.Makespan, saver.Objective.Makespan)
			}
		}
	}
}

// TestPlanCacheFrontierCoexistence: single plans and frontiers share one LRU
// but live under distinct mode keys — planning both shapes for the same
// window must not cross-contaminate.
func TestPlanCacheFrontierCoexistence(t *testing.T) {
	s := soc.Kirin990()
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	pl := frontierPlanner(t, s, 0, 8)

	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pl.PlanFrontierModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := pl.PlanCacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("after one plan + one frontier: hits=%d misses=%d, want 0/2 (distinct mode keys)", hits, misses)
	}
	// Both shapes now hit their own entries.
	plan2, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := pl.PlanFrontierModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := pl.PlanCacheStats(); hits != 2 || misses != 2 {
		t.Fatalf("after replans: hits=%d misses=%d, want 2/2", hits, misses)
	}
	if canonicalPlan(plan2) != canonicalPlan(plan) {
		t.Error("cached single plan differs from fresh plan")
	}
	if f2.Size() != f.Size() {
		t.Fatalf("cached frontier size %d != fresh %d", f2.Size(), f.Size())
	}
	for i := range f.Points {
		if canonicalPlan(f2.Points[i].Plan) != canonicalPlan(f.Points[i].Plan) {
			t.Errorf("cached frontier point %d differs from fresh", i)
		}
		if f2.Points[i].Objective != f.Points[i].Objective {
			t.Errorf("cached frontier objective %d differs from fresh", i)
		}
	}
	// Deep copy: mutating the returned frontier must not poison the cache.
	f2.Points[0].Plan.Order[0] = -1
	f3, err := pl.PlanFrontierModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Points[0].Plan.Order[0] == -1 {
		t.Error("frontier cache returned a shared plan, not a deep copy")
	}
}

// TestParseSLOClass is the table-driven grammar test for SLO class parsing.
func TestParseSLOClass(t *testing.T) {
	cases := []struct {
		in      string
		want    SLOClass
		wantErr bool
	}{
		{in: "", want: SLOClass{}},
		{in: "latency-critical", want: SLOLatencyCritical},
		{in: "latency", want: SLOLatencyCritical},
		{in: "  Latency-Critical ", want: SLOLatencyCritical},
		{in: "balanced", want: SLOBalanced},
		{in: "battery-saver", want: SLOBatterySaver},
		{in: "battery", want: SLOBatterySaver},
		{in: "energy", want: SLOBatterySaver},
		{in: "custom:1,2,3,4", want: CustomSLO(Weights{Makespan: 1, Throughput: 2, Energy: 3, Memory: 4})},
		{in: "custom:0.5,0,0,1", want: CustomSLO(Weights{Makespan: 0.5, Memory: 1})},
		{in: "gold", wantErr: true},
		{in: "custom:1,2,3", wantErr: true},
		{in: "custom:1,2,3,4,5", wantErr: true},
		{in: "custom:1,2,x,4", wantErr: true},
		{in: "custom:1,2,-3,4", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSLOClass(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSLOClass(%q): expected error, got %+v", tc.in, got)
			} else if !errors.Is(err, ErrUnknownSLOClass) {
				t.Errorf("ParseSLOClass(%q): error %v does not wrap ErrUnknownSLOClass", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLOClass(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSLOClass(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestParseObjective is the table-driven test for the planning-mode names.
func TestParseObjective(t *testing.T) {
	cases := []struct {
		in      string
		want    ObjectiveMode
		wantErr bool
	}{
		{in: "", want: ObjectiveMakespan},
		{in: "makespan", want: ObjectiveMakespan},
		{in: "latency", want: ObjectiveMakespan},
		{in: "frontier", want: ObjectiveFrontier},
		{in: "pareto", want: ObjectiveFrontier},
		{in: " Frontier ", want: ObjectiveFrontier},
		{in: "speed", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseObjective(tc.in)
		if tc.wantErr != (err != nil) {
			t.Errorf("ParseObjective(%q): err=%v, wantErr=%v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseObjective(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestStrictestSLO checks the strictness ordering used for per-window class
// resolution: latency-critical > custom > balanced > battery-saver > unset.
func TestStrictestSLO(t *testing.T) {
	custom := CustomSLO(Weights{Makespan: 1})
	cases := []struct {
		in   []SLOClass
		want SLOClass
	}{
		{in: nil, want: SLOClass{}},
		{in: []SLOClass{SLOBatterySaver}, want: SLOBatterySaver},
		{in: []SLOClass{SLOBatterySaver, SLOBalanced}, want: SLOBalanced},
		{in: []SLOClass{SLOBalanced, custom}, want: custom},
		{in: []SLOClass{SLOBatterySaver, custom, SLOLatencyCritical}, want: SLOLatencyCritical},
		{in: []SLOClass{{}, SLOBatterySaver}, want: SLOBatterySaver},
	}
	for _, tc := range cases {
		if got := StrictestSLO(tc.in...); got != tc.want {
			t.Errorf("StrictestSLO(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
