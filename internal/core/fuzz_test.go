package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// FuzzMitigate checks Algorithm-2 invariants on arbitrary class sequences:
// the result is always a permutation and never increases the conflict
// count.
func FuzzMitigate(f *testing.F) {
	f.Add([]byte("HHLL"), 2)
	f.Add([]byte("HLHLHL"), 3)
	f.Add([]byte("HHHH"), 4)
	f.Add([]byte("L"), 2)
	f.Fuzz(func(t *testing.T, raw []byte, k int) {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		if k < 1 {
			k = 1
		}
		k = k%6 + 1
		cls := make([]contention.Class, len(raw))
		for i, b := range raw {
			if b%2 == 0 {
				cls[i] = contention.High
			} else {
				cls[i] = contention.Low
			}
		}
		order := Mitigate(cls, k)
		if len(order) != len(cls) {
			t.Fatalf("order length %d, want %d", len(order), len(cls))
		}
		seen := make([]bool, len(order))
		for _, v := range order {
			if v < 0 || v >= len(order) || seen[v] {
				t.Fatalf("order %v not a permutation of %d", order, len(cls))
			}
			seen[v] = true
		}
		after := make([]contention.Class, len(order))
		for pos, orig := range order {
			after[pos] = cls[orig]
		}
		if got, before := countConflicts(after, k), countConflicts(cls, k); got > before {
			t.Fatalf("conflicts %d → %d (classes %v, K=%d)", before, got, cls, k)
		}
	})
}

// FuzzParallelPlannerDifferential feeds random model chains — zoo picks,
// batched variants, and fully synthetic layer chains — through the parallel
// planner and cross-checks it against the sequential planner inside the
// fuzz body: the two must produce byte-identical plans (or fail
// identically). The corpus is seeded with the zoo models.
func FuzzParallelPlannerDifferential(f *testing.F) {
	// Zoo seeds: singles and small combos (byte value % #names picks the
	// model; see below).
	for i := 0; i < len(model.Names()); i++ {
		f.Add([]byte{byte(i)}, int64(i))
	}
	f.Add([]byte{0, 5, 9}, int64(42))
	f.Add([]byte{3, 3, 7, 1}, int64(7))
	f.Add([]byte{11, 2, 13}, int64(99)) // exercises batched + synthetic arms
	f.Fuzz(func(t *testing.T, raw []byte, seed int64) {
		if len(raw) == 0 {
			return
		}
		if len(raw) > 4 {
			raw = raw[:4] // bound the window so each body stays fast
		}
		names := model.Names()
		rng := rand.New(rand.NewSource(seed))
		models := make([]*model.Model, len(raw))
		for i, b := range raw {
			switch arm := int(b) % (len(names) + 2); {
			case arm < len(names):
				models[i] = model.MustByName(names[arm])
			case arm == len(names):
				proto := model.MustByName(names[int(b/2)%len(names)])
				models[i] = model.Batched(proto, 2+int(b)%3)
			default:
				models[i] = syntheticChain(rng, fmt.Sprintf("fuzz-%d-%d", seed, i))
			}
		}
		presets := soc.AllPresets()
		s := presets[int(uint64(seed)%uint64(len(presets)))]

		plan := func(par int) (string, error) {
			opts := DefaultOptions()
			opts.Parallelism = par
			pl, err := NewPlanner(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pl.PlanModels(models)
			if err != nil {
				return "", err
			}
			return canonicalPlan(p), nil
		}
		seq, seqErr := plan(1)
		par, parErr := plan(4)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("sequential err=%v, parallel err=%v", seqErr, parErr)
		}
		if seqErr != nil {
			return // both planners reject the input the same way
		}
		if seq != par {
			t.Fatalf("parallel plan differs from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, par)
		}
	})
}

// syntheticChain builds a random but valid layer chain: consecutive layers'
// tensor sizes match and every field passes model.Validate.
func syntheticChain(rng *rand.Rand, name string) *model.Model {
	kinds := []model.OpKind{
		model.OpConv, model.OpDepthwiseConv, model.OpFC, model.OpMatMul,
		model.OpPool, model.OpActivation, model.OpAttention, model.OpLayerNorm,
	}
	n := 3 + rng.Intn(14)
	in := int64(1024 * (1 + rng.Intn(128)))
	m := &model.Model{Name: name, InputBytes: in}
	cur := in
	for i := 0; i < n; i++ {
		out := int64(1024 * (1 + rng.Intn(128)))
		weights := int64(1024 * rng.Intn(4096))
		m.Layers = append(m.Layers, model.Layer{
			Name:            fmt.Sprintf("l%d", i),
			Kind:            kinds[rng.Intn(len(kinds))],
			FLOPs:           float64(1+rng.Intn(2000)) * 1e6,
			InputBytes:      cur,
			OutputBytes:     out,
			WeightBytes:     weights,
			WorkingSetBytes: weights + cur + out,
		})
		cur = out
	}
	return m
}

func countConflicts(cls []contention.Class, k int) int {
	prev := -1
	n := 0
	for p, c := range cls {
		if c != contention.High {
			continue
		}
		if prev >= 0 && p-prev < k {
			n++
		}
		prev = p
	}
	return n
}
