package core

import (
	"testing"

	"hetero2pipe/internal/contention"
)

// FuzzMitigate checks Algorithm-2 invariants on arbitrary class sequences:
// the result is always a permutation and never increases the conflict
// count.
func FuzzMitigate(f *testing.F) {
	f.Add([]byte("HHLL"), 2)
	f.Add([]byte("HLHLHL"), 3)
	f.Add([]byte("HHHH"), 4)
	f.Add([]byte("L"), 2)
	f.Fuzz(func(t *testing.T, raw []byte, k int) {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		if k < 1 {
			k = 1
		}
		k = k%6 + 1
		cls := make([]contention.Class, len(raw))
		for i, b := range raw {
			if b%2 == 0 {
				cls[i] = contention.High
			} else {
				cls[i] = contention.Low
			}
		}
		order := Mitigate(cls, k)
		if len(order) != len(cls) {
			t.Fatalf("order length %d, want %d", len(order), len(cls))
		}
		seen := make([]bool, len(order))
		for _, v := range order {
			if v < 0 || v >= len(order) || seen[v] {
				t.Fatalf("order %v not a permutation of %d", order, len(cls))
			}
			seen[v] = true
		}
		after := make([]contention.Class, len(order))
		for pos, orig := range order {
			after[pos] = cls[orig]
		}
		if got, before := countConflicts(after, k), countConflicts(cls, k); got > before {
			t.Fatalf("conflicts %d → %d (classes %v, K=%d)", before, got, cls, k)
		}
	})
}

func countConflicts(cls []contention.Class, k int) int {
	prev := -1
	n := 0
	for p, c := range cls {
		if c != contention.High {
			continue
		}
		if prev >= 0 && p-prev < k {
			n++
		}
		prev = p
	}
	return n
}
