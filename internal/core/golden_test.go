package core

import (
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// TestPlanDeterminismGolden hammers one fixed window 20× at parallelism 8
// and requires every serialized plan to be byte-identical — the test that
// catches map-iteration order, channel-completion order, or any other
// scheduler-dependent nondeterminism leaking into the merge. The planner is
// reused across runs, so warm cost-cache plans must also match the cold
// first plan.
func TestPlanDeterminismGolden(t *testing.T) {
	s := soc.Kirin990()
	models := mustModels(t,
		model.YOLOv4, model.SqueezeNet, model.BERT,
		model.ResNet50, model.MobileNetV2, model.GoogLeNet)

	opts := DefaultOptions()
	opts.Parallelism = 8
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	var golden string
	for run := 0; run < 20; run++ {
		plan, err := pl.PlanModels(models)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := canonicalPlan(plan)
		if run == 0 {
			golden = got
			continue
		}
		if got != golden {
			t.Fatalf("run %d produced a different plan at parallelism 8:\n--- run 0 ---\n%s--- run %d ---\n%s",
				run, golden, run, got)
		}
	}

	// A fresh planner (cold cache) must reproduce the same golden plan.
	pl2, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl2.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPlan(plan); got != golden {
		t.Fatalf("cold-cache planner diverged from warm-cache golden plan:\n--- warm ---\n%s--- cold ---\n%s", golden, got)
	}
}
