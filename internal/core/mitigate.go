package core

import (
	"math"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/lap"
)

// maxMitigationRounds bounds the Algorithm-2 while-loop; each round strictly
// reduces conflicts or terminates, so this is a safety net only.
const maxMitigationRounds = 16

// Mitigate implements Algorithm 2: re-order the request sequence so that
// high-contention (ℍ) requests are at least K apart (one contention window,
// Definition 4), by relocating low-contention (𝕃) requests in between at
// minimum total displacement cost. Following Property 3, a conflicting ℍ
// pair at distance d needs K−d 𝕃 requests moved between them; each
// relocation removes an 𝕃 from its position and re-inserts it directly
// before the later ℍ of the pair. The batch assignment of 𝕃 sources to
// insertion slots is the Linear Assignment Problem (P3, Eq. 9) with the
// Eq. (10) costs, solved by Kuhn–Munkres.
//
// classes[i] labels the request at original position i; k is the pipeline
// depth (the contention-window span). It returns a permutation: order[p] is
// the original index of the request now at position p. When conflicts
// cannot be fully resolved (not enough eligible 𝕃), the best-effort order
// after the final round is returned, matching the paper's stop condition
// ("stop until ... there is no sufficient 𝕃 for selection").
func Mitigate(classes []contention.Class, k int) []int {
	m := len(classes)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	if m == 0 || k <= 1 {
		return order
	}
	cls := make([]contention.Class, m)
	copy(cls, classes)

	for round := 0; round < maxMitigationRounds; round++ {
		conflicts := conflictPositions(cls, k)
		if len(conflicts) == 0 {
			return order
		}
		lows := lowPositions(cls)
		if len(lows) == 0 {
			return order
		}
		// The Eq. (10) cost matrix is built against the round's frozen class
		// sequence, so the nearest-ℍ scans relocationCost repeats per cell
		// are memoized once into neighbour tables (O(m) instead of
		// O(|𝕃|·|ℋ|·m) position scans per round).
		leftH, rightH := nearestHighTables(cls)
		cost := make([][]float64, len(lows))
		feasibleAny := false
		for li, i := range lows {
			cost[li] = make([]float64, len(conflicts))
			for cj, j := range conflicts {
				cost[li][cj] = relocationCostTab(cls, k, i, j, leftH, rightH)
				if !math.IsInf(cost[li][cj], 1) {
					feasibleAny = true
				}
			}
		}
		if !feasibleAny {
			return order
		}
		_, colTo, _, err := lap.Solve(cost)
		if err != nil {
			// No complete assignment avoids forbidden moves: resolve
			// conflicts greedily one at a time this round.
			colTo = greedyAssign(cost)
		}
		// Apply one relocation per conflict, re-validating against the
		// mutating sequence (earlier moves shift positions).
		progressed := false
		for cj, li := range colTo {
			if li == lap.Unassigned {
				continue
			}
			src := lows[li]
			dst := conflicts[cj]
			// Track how previously applied moves shifted these positions.
			src, dst = currentPositions(cls, order, src, dst)
			if src < 0 || dst < 0 {
				continue
			}
			if math.IsInf(relocationCost(cls, k, src, dst), 1) {
				continue
			}
			relocate(cls, order, src, dst)
			progressed = true
		}
		if !progressed {
			return order
		}
	}
	return order
}

// currentPositions re-validates raw indices after in-round mutations: the
// source must still hold an 𝕃 and the destination an ℍ; otherwise the move
// is dropped (it will be reconsidered next round).
func currentPositions(cls []contention.Class, order []int, src, dst int) (int, int) {
	if src < 0 || src >= len(cls) || dst < 0 || dst >= len(cls) {
		return -1, -1
	}
	if cls[src] != contention.Low || cls[dst] != contention.High {
		return -1, -1
	}
	return src, dst
}

// relocate removes the element at src and re-inserts it directly before
// dst, shifting everything in between (both cls and order move together).
func relocate(cls []contention.Class, order []int, src, dst int) {
	c, o := cls[src], order[src]
	if src < dst {
		// Element moves right: insert before dst means position dst-1
		// after removal.
		copy(cls[src:], cls[src+1:dst])
		copy(order[src:], order[src+1:dst])
		cls[dst-1], order[dst-1] = c, o
	} else {
		// Element moves left: insert at dst, shifting [dst, src) right.
		copy(cls[dst+1:src+1], cls[dst:src])
		copy(order[dst+1:src+1], order[dst:src])
		cls[dst], order[dst] = c, o
	}
}

// conflictPositions returns the positions of ℍ requests that sit within one
// contention window (distance < k) of a preceding ℍ — the |ℋ_j| ≥ 2
// condition of Algorithm 2.
func conflictPositions(cls []contention.Class, k int) []int {
	var out []int
	prevHigh := -1
	for p, c := range cls {
		if c != contention.High {
			continue
		}
		if prevHigh >= 0 && p-prevHigh < k {
			out = append(out, p)
		}
		prevHigh = p
	}
	return out
}

// lowPositions returns the positions currently holding 𝕃 requests.
func lowPositions(cls []contention.Class) []int {
	var out []int
	for p, c := range cls {
		if c == contention.Low {
			out = append(out, p)
		}
	}
	return out
}

// relocationCost returns the Eq. (10) assignment cost of moving the 𝕃 at
// position i to sit directly before the conflicting ℍ at position j: the
// displacement |j − i|, or +Inf when
//   - i already lies inside j's contention window (the move cannot widen
//     the ℍ separation), or
//   - removing the 𝕃 from i would itself bring two ℍ within one window
//     (the "i → |ℋ|_j ⟹ |ℋ|_i ≥ 2" condition).
func relocationCost(cls []contention.Class, k, i, j int) float64 {
	if i < 0 || i >= len(cls) || j < 0 || j >= len(cls) {
		return math.Inf(1)
	}
	// Nearest ℍ on each side of i, scanned directly: this path runs after
	// in-round relocations have mutated cls, when the memoized tables of
	// the matrix-construction path would be stale.
	left, right := -1, -1
	for p := i - 1; p >= 0; p-- {
		if cls[p] == contention.High {
			left = p
			break
		}
	}
	for p := i + 1; p < len(cls); p++ {
		if cls[p] == contention.High {
			right = p
			break
		}
	}
	return relocationCostWith(cls, k, i, j, left, right)
}

// nearestHighTables precomputes, for every position, the nearest ℍ strictly
// left and strictly right (-1 when none) — the per-round memoization of the
// scans relocationCost would repeat for every cost-matrix cell.
func nearestHighTables(cls []contention.Class) (leftH, rightH []int) {
	m := len(cls)
	leftH = make([]int, m)
	rightH = make([]int, m)
	last := -1
	for p := 0; p < m; p++ {
		leftH[p] = last
		if cls[p] == contention.High {
			last = p
		}
	}
	last = -1
	for p := m - 1; p >= 0; p-- {
		rightH[p] = last
		if cls[p] == contention.High {
			last = p
		}
	}
	return leftH, rightH
}

// relocationCostTab is relocationCost against precomputed neighbour tables
// (valid only while cls is unchanged since nearestHighTables ran).
func relocationCostTab(cls []contention.Class, k, i, j int, leftH, rightH []int) float64 {
	if i < 0 || i >= len(cls) || j < 0 || j >= len(cls) {
		return math.Inf(1)
	}
	return relocationCostWith(cls, k, i, j, leftH[i], rightH[i])
}

// relocationCostWith applies the Eq. (10) feasibility rules given the
// nearest ℍ on each side of i.
func relocationCostWith(cls []contention.Class, k, i, j, left, right int) float64 {
	if cls[i] != contention.Low || cls[j] != contention.High {
		return math.Inf(1)
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	if d < k {
		return math.Inf(1)
	}
	// Would removing the 𝕃 at i create a new conflict there? Removal
	// shrinks the flanking ℍ pair's gap by one.
	if left >= 0 && right >= 0 && (right-left-1) < k {
		return math.Inf(1)
	}
	return float64(d)
}

// greedyAssign resolves columns cheapest-first when a complete LAP
// assignment is infeasible, using each row at most once.
func greedyAssign(cost [][]float64) []int {
	if len(cost) == 0 {
		return nil
	}
	nc := len(cost[0])
	colTo := make([]int, nc)
	for j := range colTo {
		colTo[j] = lap.Unassigned
	}
	usedRow := make([]bool, len(cost))
	for j := 0; j < nc; j++ {
		best, bestC := lap.Unassigned, math.Inf(1)
		for i := range cost {
			if !usedRow[i] && cost[i][j] < bestC {
				best, bestC = i, cost[i][j]
			}
		}
		if best != lap.Unassigned && !math.IsInf(bestC, 1) {
			colTo[j] = best
			usedRow[best] = true
		}
	}
	return colTo
}
