package core

import (
	"math"
	"math/rand"
	"testing"

	"hetero2pipe/internal/contention"
)

// classesOf builds a class slice from a compact "HLLH" string.
func classesOf(s string) []contention.Class {
	out := make([]contention.Class, len(s))
	for i, c := range s {
		if c == 'H' {
			out[i] = contention.High
		} else {
			out[i] = contention.Low
		}
	}
	return out
}

// applyOrder returns the class string after permutation.
func applyOrder(cls []contention.Class, order []int) string {
	out := make([]byte, len(order))
	for pos, orig := range order {
		if cls[orig] == contention.High {
			out[pos] = 'H'
		} else {
			out[pos] = 'L'
		}
	}
	return string(out)
}

func conflictCount(s string, k int) int {
	prev := -1
	count := 0
	for p, c := range s {
		if c != 'H' {
			continue
		}
		if prev >= 0 && p-prev < k {
			count++
		}
		prev = p
	}
	return count
}

func isPermutation(order []int) bool {
	seen := make(map[int]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestMitigateSimplePair(t *testing.T) {
	// HHLL with K=2: the two H must end up ≥ 2 apart.
	cls := classesOf("HHLL")
	order := Mitigate(cls, 2)
	if !isPermutation(order) {
		t.Fatalf("order %v not a permutation", order)
	}
	after := applyOrder(cls, order)
	if got := conflictCount(after, 2); got != 0 {
		t.Errorf("after = %q, %d conflicts remain", after, got)
	}
}

func TestMitigateWindow3(t *testing.T) {
	cls := classesOf("HHLLLLL")
	order := Mitigate(cls, 3)
	after := applyOrder(cls, order)
	if got := conflictCount(after, 3); got != 0 {
		t.Errorf("after = %q, %d conflicts remain (K=3)", after, got)
	}
}

func TestMitigateUnresolvableBestEffort(t *testing.T) {
	// Three H in six slots can never be pairwise ≥ 3 apart: the best any
	// ordering achieves is one residual conflict, and mitigation must not
	// do worse than the input's one conflict.
	cls := classesOf("HHLLLH")
	after := applyOrder(cls, Mitigate(cls, 3))
	if got := conflictCount(after, 3); got > 1 {
		t.Errorf("after = %q has %d conflicts, want ≤ 1", after, got)
	}
}

func TestMitigateNoConflictsIsIdentity(t *testing.T) {
	cls := classesOf("HLLHLLH")
	order := Mitigate(cls, 3)
	for i, v := range order {
		if v != i {
			t.Fatalf("conflict-free input reordered: %v", order)
		}
	}
}

func TestMitigateAllHighBestEffort(t *testing.T) {
	// No L to relocate: best effort returns a permutation unchanged.
	cls := classesOf("HHHH")
	order := Mitigate(cls, 2)
	if !isPermutation(order) {
		t.Fatalf("order %v not a permutation", order)
	}
	for i, v := range order {
		if v != i {
			t.Errorf("all-H input should be untouched, got %v", order)
			break
		}
	}
}

func TestMitigateEdgeCases(t *testing.T) {
	if got := Mitigate(nil, 4); len(got) != 0 {
		t.Errorf("empty input order = %v", got)
	}
	cls := classesOf("HH")
	order := Mitigate(cls, 1) // window 1: nothing ever conflicts
	for i, v := range order {
		if v != i {
			t.Errorf("K=1 should be identity, got %v", order)
		}
	}
}

// TestMitigateNeverWorsens: across random sequences, mitigation never
// increases the conflict count and always returns a valid permutation.
func TestMitigateNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		m := 2 + rng.Intn(14)
		k := 2 + rng.Intn(3)
		raw := make([]byte, m)
		for i := range raw {
			if rng.Intn(2) == 0 {
				raw[i] = 'H'
			} else {
				raw[i] = 'L'
			}
		}
		cls := classesOf(string(raw))
		before := conflictCount(string(raw), k)
		order := Mitigate(cls, k)
		if !isPermutation(order) {
			t.Fatalf("trial %d: order %v not a permutation", trial, order)
		}
		after := conflictCount(applyOrder(cls, order), k)
		if after > before {
			t.Errorf("trial %d: conflicts %d → %d (input %q, K=%d)",
				trial, before, after, raw, k)
		}
	}
}

// TestMitigateResolvesWhenPossible: with plenty of L requests, all conflicts
// must clear.
func TestMitigateResolvesWhenPossible(t *testing.T) {
	cases := []struct {
		in string
		k  int
	}{
		{"HHLLLLLL", 2},
		{"LLHHLLLL", 2},
		{"HLHLLLLLLL", 3},
		{"HHLLLLLLLL", 4},
	}
	for _, tc := range cases {
		cls := classesOf(tc.in)
		after := applyOrder(cls, Mitigate(cls, tc.k))
		if got := conflictCount(after, tc.k); got != 0 {
			t.Errorf("%q K=%d: after %q still has %d conflicts", tc.in, tc.k, after, got)
		}
	}
}

func TestRelocationCost(t *testing.T) {
	cls := classesOf("HHLLLL")
	// Moving the L at 4 before the conflicting H at 1: distance 3 ≥ K=2.
	if got := relocationCost(cls, 2, 4, 1); got != 3 {
		t.Errorf("relocationCost = %g, want 3", got)
	}
	// L at 2 is within the window of H at 1 (K=3 → distance 1 < 3).
	if got := relocationCost(classesOf("HHLLLL"), 3, 2, 1); !math.IsInf(got, 1) {
		t.Errorf("in-window relocation cost = %g, want Inf", got)
	}
	// Removing the L at 2 of HHLHLL would bring the H at 1 and H at 3
	// within one window of each other.
	cls2 := classesOf("HHLHLL")
	if got := relocationCost(cls2, 2, 2, 1); !math.IsInf(got, 1) {
		t.Errorf("conflict-creating removal cost = %g, want Inf", got)
	}
	// Wrong classes.
	if got := relocationCost(cls, 2, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("H-as-source cost = %g, want Inf", got)
	}
	// Out of range.
	if got := relocationCost(cls, 2, -1, 1); !math.IsInf(got, 1) {
		t.Errorf("out-of-range cost = %g, want Inf", got)
	}
}

func TestRelocate(t *testing.T) {
	cls := classesOf("HHLLL")
	order := []int{0, 1, 2, 3, 4}
	relocate(cls, order, 4, 1) // move L at 4 to sit before the H at 1
	got := applyOrder(classesOf("HHLLL"), order)
	if got != "HLHLL" {
		t.Errorf("after relocate = %q, want HLHLL", got)
	}
	if !isPermutation(order) {
		t.Errorf("order %v not a permutation", order)
	}
	// Rightward move.
	cls2 := classesOf("LHHLL")
	order2 := []int{0, 1, 2, 3, 4}
	relocate(cls2, order2, 0, 2) // move L at 0 before the H at 2
	got2 := applyOrder(classesOf("LHHLL"), order2)
	if got2 != "HLHLL" {
		t.Errorf("after rightward relocate = %q, want HLHLL", got2)
	}
}

func TestConflictPositions(t *testing.T) {
	got := conflictPositions(classesOf("HHLHLLH"), 3)
	want := []int{1, 3}
	if len(got) != len(want) {
		t.Fatalf("conflicts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("conflicts = %v, want %v", got, want)
		}
	}
}

func TestGreedyAssign(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{1, inf},
		{2, inf},
	}
	colTo := greedyAssign(cost)
	if colTo[0] != 0 {
		t.Errorf("colTo[0] = %d, want 0 (cheapest)", colTo[0])
	}
	if colTo[1] != -1 {
		t.Errorf("colTo[1] = %d, want unassigned", colTo[1])
	}
	if got := greedyAssign(nil); got != nil {
		t.Errorf("greedyAssign(nil) = %v", got)
	}
}
