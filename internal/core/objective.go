package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Multi-objective planning (ROADMAP item 2). The planner's candidate sweep
// already executes every candidate ordering under the slowdown model to pick
// the min-makespan winner; that execution prices each candidate in all four
// axes the deployment cares about — latency, throughput, energy and peak
// memory — for free. Pareto mode keeps the whole non-dominated frontier of
// that sweep instead of collapsing it to one point, and lets the caller (or
// the stream scheduler, per window) pick a point by SLO class: a
// battery-constrained caller takes the low-energy end, a latency-critical
// one the min-makespan end — which is byte-identical to the single-objective
// planner's output, pinned by the differential suite.

// ObjectiveMode selects between the classic single-objective planner and
// Pareto-frontier planning.
type ObjectiveMode int

const (
	// ObjectiveMakespan is the classic planner: one plan minimising the
	// executed makespan (the default, and the zero value).
	ObjectiveMakespan ObjectiveMode = iota
	// ObjectiveFrontier enumerates the non-dominated frontier over
	// (makespan, throughput, energy, peak memory) and selects a point per
	// SLO class.
	ObjectiveFrontier
)

// String names the mode the way ParseObjective accepts it.
func (m ObjectiveMode) String() string {
	switch m {
	case ObjectiveMakespan:
		return "makespan"
	case ObjectiveFrontier:
		return "frontier"
	}
	return fmt.Sprintf("objective(%d)", int(m))
}

// ParseObjective maps a CLI/config string to an ObjectiveMode. The empty
// string selects the classic makespan objective.
func ParseObjective(s string) (ObjectiveMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "makespan", "latency":
		return ObjectiveMakespan, nil
	case "frontier", "pareto":
		return ObjectiveFrontier, nil
	}
	return 0, fmt.Errorf("core: unknown objective %q (want makespan or frontier)", s)
}

// Objective is the executed value of one candidate plan on every axis the
// planner optimises. Makespan, energy and peak memory are minimised;
// throughput is maximised.
type Objective struct {
	// Makespan is the executed completion time of the last request.
	Makespan time.Duration `json:"makespan"`
	// Throughput is completed inferences per second.
	Throughput float64 `json:"throughput"`
	// EnergyJoules prices the schedule under the per-processor power model
	// (busy power over busy spans, idle power over the rest of the
	// makespan; see soc.Power).
	EnergyJoules float64 `json:"energy_joules"`
	// PeakMemoryBytes is the maximum resident inference memory.
	PeakMemoryBytes int64 `json:"peak_memory_bytes"`
}

// Dominates reports Pareto dominance: a is no worse than b on every axis
// and strictly better on at least one.
func (a Objective) Dominates(b Objective) bool {
	if a.Makespan > b.Makespan || a.Throughput < b.Throughput ||
		a.EnergyJoules > b.EnergyJoules || a.PeakMemoryBytes > b.PeakMemoryBytes {
		return false
	}
	return a.Makespan < b.Makespan || a.Throughput > b.Throughput ||
		a.EnergyJoules < b.EnergyJoules || a.PeakMemoryBytes < b.PeakMemoryBytes
}

// equalObjective is exact equality on every axis (used to dedupe candidate
// orderings that converge on the same schedule).
func equalObjective(a, b Objective) bool {
	return a.Makespan == b.Makespan && a.Throughput == b.Throughput &&
		a.EnergyJoules == b.EnergyJoules && a.PeakMemoryBytes == b.PeakMemoryBytes
}

// FrontierPoint is one non-dominated plan with its objective value.
type FrontierPoint struct {
	// Plan is the executable plan at this point.
	Plan *Plan
	// Objective is the point's executed value on all four axes.
	Objective Objective
	// Candidate is the index of the candidate ordering that produced this
	// point in the planner's sweep — a stable identity used for
	// deterministic tie-breaks (lower index wins, matching the sequential
	// strict-improvement scan).
	Candidate int
}

// Frontier is the non-dominated set of the planner's candidate sweep,
// sorted by ascending makespan (ties by candidate index). Selection by SLO
// class is O(points); the frontier is small — bounded by the candidate
// count (≤ 6 under DefaultOptions).
type Frontier struct {
	Points []FrontierPoint
}

// newFrontier filters the candidate sweep down to its non-dominated set.
// Candidates with exactly equal objective vectors keep the lowest index
// (they are near-always the same schedule reached by different orderings —
// and when they are not, the lowest index is what the sequential
// single-objective scan would keep).
func newFrontier(plans []*Plan, objs []Objective) *Frontier {
	var pts []FrontierPoint
	for i, p := range plans {
		if p == nil {
			// A hole a beam sweep never priced; the exact sweep leaves none.
			continue
		}
		dominated := false
		for j := range plans {
			if i == j || plans[j] == nil {
				continue
			}
			if objs[j].Dominates(objs[i]) {
				dominated = true
				break
			}
			if j < i && equalObjective(objs[j], objs[i]) {
				dominated = true // duplicate vector: first index represents it
				break
			}
		}
		if !dominated {
			pts = append(pts, FrontierPoint{Plan: p, Objective: objs[i], Candidate: i})
		}
	}
	sort.SliceStable(pts, func(a, b int) bool {
		if pts[a].Objective.Makespan != pts[b].Objective.Makespan {
			return pts[a].Objective.Makespan < pts[b].Objective.Makespan
		}
		return pts[a].Candidate < pts[b].Candidate
	})
	return &Frontier{Points: pts}
}

// Size returns the number of non-dominated points.
func (f *Frontier) Size() int { return len(f.Points) }

// SLOKind enumerates the built-in SLO classes.
type SLOKind int

const (
	// SLOUnset is the zero value: "no class requested". Schedulers treat
	// it as their configured default, falling back to latency-critical.
	SLOUnset SLOKind = iota
	// SLOLatencyCriticalKind selects the min-makespan frontier point —
	// byte-identical to the single-objective planner's output.
	SLOLatencyCriticalKind
	// SLOCustomKind scores points by caller-supplied weights.
	SLOCustomKind
	// SLOBalancedKind scores points by equal weights across all axes.
	SLOBalancedKind
	// SLOBatterySaverKind selects the min-energy frontier point.
	SLOBatterySaverKind
)

// Weights scores a frontier point for the custom SLO class. Each weight
// multiplies the point's normalised position on its axis (0 = best on the
// frontier, 1 = worst); the point with the lowest weighted sum wins.
// Throughput is internally inverted so a higher throughput scores lower.
type Weights struct {
	Makespan   float64 `json:"makespan"`
	Throughput float64 `json:"throughput"`
	Energy     float64 `json:"energy"`
	Memory     float64 `json:"memory"`
}

// SLOClass names a service-level objective for frontier point selection.
// The zero value is "unset" (scheduler default). Use the package variables
// (SLOLatencyCritical, SLOBalanced, SLOBatterySaver) or CustomSLO.
type SLOClass struct {
	Kind SLOKind `json:"kind"`
	// Weights apply only to SLOCustomKind.
	Weights Weights `json:"weights,omitempty"`
}

// The built-in SLO classes, ordered strictest first (see StrictestSLO).
var (
	// SLOLatencyCritical picks the min-makespan point — today's planner.
	SLOLatencyCritical = SLOClass{Kind: SLOLatencyCriticalKind}
	// SLOBalanced trades all four axes with equal weight.
	SLOBalanced = SLOClass{Kind: SLOBalancedKind}
	// SLOBatterySaver picks the min-energy point.
	SLOBatterySaver = SLOClass{Kind: SLOBatterySaverKind}
)

// CustomSLO builds a weighted SLO class. Weights are relative; at least one
// must be positive for the class to discriminate (all-zero weights degrade
// to the frontier's first — min-makespan — point).
func CustomSLO(w Weights) SLOClass {
	return SLOClass{Kind: SLOCustomKind, Weights: w}
}

// ErrUnknownSLOClass is returned by ParseSLOClass for a class name outside
// the grammar.
var ErrUnknownSLOClass = errors.New("core: unknown SLO class")

// String renders the class in the grammar ParseSLOClass accepts.
func (c SLOClass) String() string {
	switch c.Kind {
	case SLOUnset:
		return ""
	case SLOLatencyCriticalKind:
		return "latency-critical"
	case SLOBalancedKind:
		return "balanced"
	case SLOBatterySaverKind:
		return "battery-saver"
	case SLOCustomKind:
		return fmt.Sprintf("custom:%g,%g,%g,%g",
			c.Weights.Makespan, c.Weights.Throughput, c.Weights.Energy, c.Weights.Memory)
	}
	return fmt.Sprintf("slo(%d)", int(c.Kind))
}

// ParseSLOClass parses an SLO class name: "latency-critical", "balanced",
// "battery-saver", or "custom:<wMakespan>,<wThroughput>,<wEnergy>,<wMemory>"
// (e.g. "custom:1,0,2,0" weighs energy twice as heavily as makespan). The
// empty string parses to the unset class (scheduler default). Unknown names
// return an error wrapping ErrUnknownSLOClass.
func ParseSLOClass(s string) (SLOClass, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	switch t {
	case "":
		return SLOClass{}, nil
	case "latency-critical", "latency":
		return SLOLatencyCritical, nil
	case "balanced":
		return SLOBalanced, nil
	case "battery-saver", "battery", "energy":
		return SLOBatterySaver, nil
	}
	if rest, ok := strings.CutPrefix(t, "custom:"); ok {
		parts := strings.Split(rest, ",")
		if len(parts) != 4 {
			return SLOClass{}, fmt.Errorf("%w: custom wants 4 comma-separated weights, got %q", ErrUnknownSLOClass, s)
		}
		var w [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				// NaN fails neither err nor v < 0, and ±Inf parses cleanly;
				// both would poison selectWeighted's scores, so reject here.
				return SLOClass{}, fmt.Errorf("%w: bad custom weight %q", ErrUnknownSLOClass, p)
			}
			w[i] = v
		}
		return CustomSLO(Weights{Makespan: w[0], Throughput: w[1], Energy: w[2], Memory: w[3]}), nil
	}
	return SLOClass{}, fmt.Errorf("%w: %q (want latency-critical, balanced, battery-saver or custom:w,w,w,w)", ErrUnknownSLOClass, s)
}

// sloRank orders classes strictest-first for window resolution: a window
// mixing classes is planned for its most latency-sensitive member.
func sloRank(c SLOClass) int {
	switch c.Kind {
	case SLOLatencyCriticalKind:
		return 0
	case SLOCustomKind:
		return 1
	case SLOBalancedKind:
		return 2
	case SLOBatterySaverKind:
		return 3
	}
	return 4 // unset: weakest — any explicit class overrides it
}

// StrictestSLO resolves the class a shared planning window serves: the
// strictest (most latency-sensitive) class present, in the order
// latency-critical > custom > balanced > battery-saver. Unset classes are
// skipped; among equal-rank custom classes the first wins. All-unset
// resolves to the unset class (the caller applies its default).
func StrictestSLO(classes ...SLOClass) SLOClass {
	best := SLOClass{}
	bestRank := sloRank(best)
	for _, c := range classes {
		if r := sloRank(c); r < bestRank {
			best, bestRank = c, r
		}
	}
	return best
}

// Select picks the frontier point serving the class:
//
//   - latency-critical (and unset): the min-makespan point — byte-identical
//     to the single-objective planner's plan.
//   - battery-saver: the min-energy point (ties: lower makespan, then lower
//     candidate index).
//   - balanced / custom: the point minimising the weighted sum of
//     normalised axis positions (0 = frontier-best per axis).
//
// A nil or empty frontier returns nil.
func (f *Frontier) Select(class SLOClass) *FrontierPoint {
	if f == nil || len(f.Points) == 0 {
		return nil
	}
	switch class.Kind {
	case SLOBatterySaverKind:
		best := 0
		for i := 1; i < len(f.Points); i++ {
			a, b := f.Points[i].Objective, f.Points[best].Objective
			if a.EnergyJoules < b.EnergyJoules ||
				(a.EnergyJoules == b.EnergyJoules && a.Makespan < b.Makespan) {
				best = i
			}
		}
		return &f.Points[best]
	case SLOBalancedKind:
		return f.selectWeighted(Weights{Makespan: 1, Throughput: 1, Energy: 1, Memory: 1})
	case SLOCustomKind:
		return f.selectWeighted(class.Weights)
	}
	// Latency-critical and unset: Points is sorted by ascending makespan
	// with candidate-index tie-break, so the first point is exactly the
	// plan the single-objective sweep selects.
	return &f.Points[0]
}

// selectWeighted scores every point by the weighted sum of its normalised
// axis positions and returns the minimum (ties: lower makespan, then lower
// candidate index — i.e. the earlier point in frontier order).
func (f *Frontier) selectWeighted(w Weights) *FrontierPoint {
	minO, maxO := f.Points[0].Objective, f.Points[0].Objective
	for _, p := range f.Points[1:] {
		o := p.Objective
		if o.Makespan < minO.Makespan {
			minO.Makespan = o.Makespan
		}
		if o.Makespan > maxO.Makespan {
			maxO.Makespan = o.Makespan
		}
		if o.Throughput < minO.Throughput {
			minO.Throughput = o.Throughput
		}
		if o.Throughput > maxO.Throughput {
			maxO.Throughput = o.Throughput
		}
		if o.EnergyJoules < minO.EnergyJoules {
			minO.EnergyJoules = o.EnergyJoules
		}
		if o.EnergyJoules > maxO.EnergyJoules {
			maxO.EnergyJoules = o.EnergyJoules
		}
		if o.PeakMemoryBytes < minO.PeakMemoryBytes {
			minO.PeakMemoryBytes = o.PeakMemoryBytes
		}
		if o.PeakMemoryBytes > maxO.PeakMemoryBytes {
			maxO.PeakMemoryBytes = o.PeakMemoryBytes
		}
	}
	// axis is one weighted normalised term of the score. A degenerate axis —
	// every point tied, hi == lo — contributes nothing regardless of weight:
	// deciding that BEFORE multiplying keeps a non-finite weight from
	// turning the tie into 0 × Inf = NaN, which would poison every score and
	// freeze selection on the first point (NaN compares false against
	// everything). Non-finite weights are dropped outright for the same
	// reason; ParseSLOClass rejects them, this guards programmatic callers.
	axis := func(wt, v, lo, hi float64) float64 {
		if wt == 0 || math.IsNaN(wt) || math.IsInf(wt, 0) || hi <= lo {
			return 0
		}
		return wt * (v - lo) / (hi - lo)
	}
	best, bestScore := 0, 0.0
	for i := range f.Points {
		o := f.Points[i].Objective
		score := axis(w.Makespan, float64(o.Makespan), float64(minO.Makespan), float64(maxO.Makespan)) +
			axis(w.Throughput, maxO.Throughput-o.Throughput+minO.Throughput, minO.Throughput, maxO.Throughput) +
			axis(w.Energy, o.EnergyJoules, minO.EnergyJoules, maxO.EnergyJoules) +
			axis(w.Memory, float64(o.PeakMemoryBytes), float64(minO.PeakMemoryBytes), float64(maxO.PeakMemoryBytes))
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return &f.Points[best]
}
