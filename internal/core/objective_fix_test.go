package core

import (
	"math"
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// TestSelectWeightedDegenerateAxis pins the frontier-selection fix: when a
// frontier is tied on one axis (min == max) and that axis carries a
// non-finite weight, the pre-fix scorer computed weight × 0 = NaN, NaN
// poisoned every point's score, every comparison came back false, and
// selection silently froze on the first (min-makespan) point — ignoring the
// finite weights entirely. Post-fix, a degenerate axis contributes nothing
// regardless of weight, so the finite throughput weight decides.
func TestSelectWeightedDegenerateAxis(t *testing.T) {
	f := &Frontier{Points: []FrontierPoint{
		{Objective: Objective{Makespan: 10 * time.Millisecond, Throughput: 1, EnergyJoules: 5, PeakMemoryBytes: 100}, Candidate: 0},
		{Objective: Objective{Makespan: 20 * time.Millisecond, Throughput: 9, EnergyJoules: 5, PeakMemoryBytes: 100}, Candidate: 1},
	}}
	// Energy and memory are degenerate (both points tied); only throughput
	// should discriminate, so the high-throughput point must win.
	got := f.selectWeighted(Weights{Throughput: 1, Energy: math.Inf(1)})
	if got.Candidate != 1 {
		t.Errorf("degenerate-axis ∞ weight froze selection on candidate %d, want 1 (higher throughput)", got.Candidate)
	}
	// NaN weights are equally poisonous pre-fix.
	got = f.selectWeighted(Weights{Throughput: 1, Memory: math.NaN()})
	if got.Candidate != 1 {
		t.Errorf("NaN weight froze selection on candidate %d, want 1", got.Candidate)
	}
	// A finite weight on a degenerate axis is simply inert.
	got = f.selectWeighted(Weights{Throughput: 1, Energy: 1000})
	if got.Candidate != 1 {
		t.Errorf("finite weight on degenerate axis picked candidate %d, want 1", got.Candidate)
	}
	// All-degenerate-but-makespan with only degenerate weights: tie keeps
	// the first (min-makespan) point, matching latency-critical semantics.
	got = f.selectWeighted(Weights{Energy: 1})
	if got.Candidate != 0 {
		t.Errorf("all-zero effective weights picked candidate %d, want 0", got.Candidate)
	}
}

// TestParseSLOClassRejectsNonFinite pins the grammar hardening that
// accompanies the scorer fix: "custom:" weights must be finite (NaN slipped
// past the old `v < 0` check, and ±Inf parsed cleanly).
func TestParseSLOClassRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{
		"custom:nan,0,0,0",
		"custom:1,inf,0,0",
		"custom:1,0,+inf,0",
		"custom:1,0,0,infinity",
	} {
		if _, err := ParseSLOClass(bad); err == nil {
			t.Errorf("ParseSLOClass(%q) accepted a non-finite weight", bad)
		}
	}
	if _, err := ParseSLOClass("custom:1,0.5,2,0"); err != nil {
		t.Errorf("finite custom weights rejected: %v", err)
	}
}

// TestPlanCacheFrontierHitNoAliasing pins the deep-copy boundary audit: a
// frontier plan-cache hit followed by Frontier.Select hands the caller a
// *FrontierPoint whose plan the caller may mutate — stream executes it,
// experiments rewrite stage rows, batching regroups profiles. No mutation
// through that pointer may reach the cached entry, or every later hit
// replays the corruption.
func TestPlanCacheFrontierHitNoAliasing(t *testing.T) {
	s := soc.Kirin990()
	opts := DefaultOptions()
	opts.PlanCache = 4
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	if _, err := pl.PlanFrontierModels(models); err != nil {
		t.Fatal(err)
	}

	hit1, err := pl.PlanFrontierModels(models) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	pristine := make([]string, len(hit1.Points))
	for i := range hit1.Points {
		pristine[i] = canonicalPlan(hit1.Points[i].Plan)
	}

	// Mutate everything reachable through the selected point.
	pt := hit1.Select(SLOBalanced)
	if pt == nil {
		t.Fatal("empty frontier")
	}
	sched := pt.Plan.Schedule
	for i := range sched.Stages {
		for j := range sched.Stages[i] {
			sched.Stages[i][j] = pipeline.LayerRange{From: 1, To: 0}
		}
	}
	for i := range sched.Profiles {
		sched.Profiles[i] = nil
	}
	pt.Plan.Order[0] = 99
	pt.Plan.Cuts[0] = nil

	hit2, err := pl.PlanFrontierModels(models) // second hit must be pristine
	if err != nil {
		t.Fatal(err)
	}
	if len(hit2.Points) != len(pristine) {
		t.Fatalf("frontier size changed %d → %d after caller mutation", len(pristine), len(hit2.Points))
	}
	for i := range hit2.Points {
		if canonicalPlan(hit2.Points[i].Plan) != pristine[i] {
			t.Errorf("frontier point %d: caller mutation through a cache hit reached the cached entry", i)
		}
	}
}

// TestPlanCacheSingleHitProfilesNoAliasing is the single-plan twin: the
// Profiles slice header must not be shared between a hit and the cache.
func TestPlanCacheSingleHitProfilesNoAliasing(t *testing.T) {
	s := soc.Kirin990()
	opts := DefaultOptions()
	opts.PlanCache = 4
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	hit1, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalPlan(hit1)
	for i := range hit1.Schedule.Profiles {
		hit1.Schedule.Profiles[i] = nil
	}
	hit2, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalPlan(hit2) != want {
		t.Error("nil-ing a hit's Profiles slice corrupted the cached plan")
	}
}
