package core

import (
	"math"

	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
)

// PartitionParametric solves P1 by the classic parametric alternative to
// the DP: binary-search the bottleneck value T and greedily test whether
// the layer chain packs into the K ordered stages with every stage at most
// T. Greedy maximal filling is optimal for chain partitioning with
// range-monotone stage costs (a standard exchange argument), so the
// feasibility test is exact and the search converges to the same optimum as
// Partition — it exists as an independently-derived cross-check and as the
// contender in the partitioning ablation benchmark.
func PartitionParametric(p *profile.Profile) (pipeline.Cuts, float64, error) {
	n := p.NumLayers()
	k := p.NumProcessors()
	if n == 0 || k == 0 {
		return nil, 0, ErrInfeasiblePartition
	}

	// Upper bound: the best single-processor execution (always feasible
	// when any processor supports the whole chain); otherwise the sum of
	// per-stage maxima reached by greedy packing at +Inf budget.
	hi := math.Inf(1)
	for stage := 0; stage < k; stage++ {
		if v := sliceSeconds(p, stage, 0, n-1); v < hi {
			hi = v
		}
	}
	if math.IsInf(hi, 1) {
		// No single stage fits everything; take the achievable bottleneck
		// of greedy packing with unlimited budget as the upper bound.
		var ok bool
		hi, ok = packBottleneck(p, math.Inf(1))
		if !ok {
			return nil, 0, ErrInfeasiblePartition
		}
	}
	lo := 0.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if _, feasible := packCuts(p, mid); feasible {
			hi = mid
		} else {
			lo = mid
		}
	}
	cuts, feasible := packCuts(p, hi)
	if !feasible {
		return nil, 0, ErrInfeasiblePartition
	}
	// Report the realised bottleneck of the final packing (tighter than
	// the search bound).
	var worst float64
	for stage := 0; stage < k; stage++ {
		if v := sliceSeconds(p, stage, cuts[stage], cuts[stage+1]-1); v > worst {
			worst = v
		}
	}
	return cuts, worst, nil
}

// packCuts greedily fills each stage up to budget seconds and reports the
// boundaries and whether all layers fit.
func packCuts(p *profile.Profile, budget float64) (pipeline.Cuts, bool) {
	n := p.NumLayers()
	k := p.NumProcessors()
	cuts := make(pipeline.Cuts, k+1)
	next := 0
	for stage := 0; stage < k; stage++ {
		cuts[stage] = next
		// Extend while the stage stays within budget; stage costs are
		// monotone in the right endpoint, so linear extension suffices.
		for next < n {
			if v := sliceSeconds(p, stage, cuts[stage], next); v > budget {
				break
			}
			next++
		}
	}
	cuts[k] = n
	if next != n {
		return nil, false
	}
	// The last stage's boundary must also be n; packCuts built stage
	// starts, so fix any trailing empty stages.
	return cuts, true
}

// packBottleneck packs greedily with unlimited budget and returns the
// realised bottleneck (used only to seed the upper bound when no single
// processor supports the whole chain).
func packBottleneck(p *profile.Profile, budget float64) (float64, bool) {
	cuts, ok := packCuts(p, budget)
	if !ok {
		return 0, false
	}
	var worst float64
	for stage := 0; stage+1 < len(cuts); stage++ {
		if v := sliceSeconds(p, stage, cuts[stage], cuts[stage+1]-1); v > worst {
			worst = v
		}
	}
	return worst, true
}
