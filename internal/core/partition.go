// Package core implements the Hetero²Pipe planner — the paper's primary
// contribution: Algorithm 1 (dynamic-programming horizontal model
// partitioning with monotonicity pruning and NPU-fallback awareness),
// Algorithm 2 (contention mitigation by re-ordering requests via the Linear
// Assignment Problem), Algorithm 3 (vertical alignment by work stealing plus
// tail-bubble local search), and the two-step Planner that composes them.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// ErrInfeasiblePartition is returned when no stage assignment covers the
// model (cannot happen on SoCs whose CPU supports every operator, but
// guarded for custom configurations).
var ErrInfeasiblePartition = errors.New("core: no feasible partition")

// sliceSeconds returns the slice cost f(k, i, j) in seconds, +Inf when the
// slice cannot run on stage k. An empty slice costs zero.
func sliceSeconds(p *profile.Profile, k, i, j int) float64 {
	if j < i {
		return 0
	}
	d := p.SliceTime(k, i, j)
	if d == soc.InfDuration {
		return math.Inf(1)
	}
	return d.Seconds()
}

// Partition solves P1 (Eq. 4) for one model: choose stage boundaries
// minimising the maximum per-stage time over the SoC's capability-ordered
// processors, with empty stages allowed (this is how NPU-unsupported
// operators "fall back": the DP gives the NPU an empty or short supported
// prefix and the work flows to the next stage, exactly the fallback
// behaviour Sec. IV describes).
//
// The recurrence is the paper's optimal substructure
//
//	S*(j, k) = min_i max{ S*(i-1, k-1), T_k^e(i, j) }
//
// computed stage by stage with the Property-2 monotonicity prune: S*(·, k-1)
// is non-decreasing in its prefix, so once S*(i-1, k-1) reaches the best
// candidate found for a cell, no larger i can improve it and the inner scan
// stops. Unlike a pure crossing-point binary search this stays exact even
// though the memory-copy term T^c(i) of Eq. (2) is not itself monotone in i
// (boundary tensor sizes vary along the chain); PartitionFast below is the
// O(nK log n) binary-search variant that is exact whenever Property 2 holds
// for the combined cost.
//
// It returns the boundary vector and the bottleneck stage time in seconds.
func Partition(p *profile.Profile) (pipeline.Cuts, float64, error) {
	return PartitionContext(context.Background(), p)
}

// PartitionContext is Partition under a cancellable context: the DP checks
// for cancellation between cell rows, so a long chain aborts promptly
// without finishing its table.
func PartitionContext(ctx context.Context, p *profile.Profile) (pipeline.Cuts, float64, error) {
	scr, best, _, err := partitionTable(ctx, p, false)
	if err != nil {
		return nil, 0, err
	}
	cuts, best, err := backtrackCuts(p, scr.choice, best)
	putDPScratch(scr)
	return cuts, best, err
}

// PartitionFast is the O(nK log n) crossing-point variant of Algorithm 1:
// per DP cell it binary-searches the index where the non-decreasing
// S*(·, k-1) crosses the (under Property 2) non-increasing slice cost. It is
// exact when Property 2 holds for the combined exec+copy cost and within a
// fraction of a percent of optimal otherwise.
func PartitionFast(p *profile.Profile) (pipeline.Cuts, float64, error) {
	scr, best, _, err := partitionTable(context.Background(), p, true)
	if err != nil {
		return nil, 0, err
	}
	cuts, best, err := backtrackCuts(p, scr.choice, best)
	putDPScratch(scr)
	return cuts, best, err
}

// cancelCheckStride is how many DP cells are filled between cancellation
// checks — frequent enough for sub-millisecond abort on big chains, sparse
// enough to keep ctx.Err out of the inner-loop cost.
const cancelCheckStride = 64

// dpScratch is the pooled scratch state of one Algorithm-1 DP: the two
// rolling S* rows and the per-stage choice table. Every cell the DP reads
// is written first on every run, so reused buffers need no zeroing; callers
// return the scratch to the pool with putDPScratch once backtracking has
// consumed the choice table.
type dpScratch struct {
	// dp[j+1] = S*(j, stage) for prefix ending at layer j; dp[0] = S*(∅).
	dp, prev []float64
	// choice[k][j+1] = the i chosen (start layer of stage k's slice; i=j+1
	// encodes an empty slice).
	choice [][]int
}

var dpScratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

// getDPScratch returns pooled scratch sized for an n-layer, k-stage DP.
func getDPScratch(n, k int) *dpScratch {
	s := dpScratchPool.Get().(*dpScratch)
	if cap(s.dp) < n+1 {
		s.dp = make([]float64, n+1)
	} else {
		s.dp = s.dp[:n+1]
	}
	if cap(s.prev) < n+1 {
		s.prev = make([]float64, n+1)
	} else {
		s.prev = s.prev[:n+1]
	}
	if cap(s.choice) >= k {
		s.choice = s.choice[:k]
	} else {
		old := s.choice[:cap(s.choice)]
		s.choice = make([][]int, k)
		copy(s.choice, old) // keep the rows' backing arrays for reuse
	}
	for i := range s.choice {
		if cap(s.choice[i]) < n+1 {
			s.choice[i] = make([]int, n+1)
		} else {
			s.choice[i] = s.choice[i][:n+1]
		}
	}
	return s
}

func putDPScratch(s *dpScratch) { dpScratchPool.Put(s) }

// partitionTable fills the DP and returns the scratch holding the per-stage
// choice table, the optimal bottleneck, and the number of DP cells
// evaluated (the observability figure behind Planner.DPCells — base row
// plus every (stage, j) cell filled before completion or cancellation).
// Ownership of the scratch transfers to the caller on success (release with
// putDPScratch after backtracking); error returns recycle it internally.
func partitionTable(ctx context.Context, p *profile.Profile, fast bool) (*dpScratch, float64, uint64, error) {
	n := p.NumLayers()
	k := p.NumProcessors()
	if n == 0 || k == 0 {
		return nil, 0, 0, ErrInfeasiblePartition
	}
	var cells uint64

	scr := getDPScratch(n, k)
	dp, prev, choice := scr.dp, scr.prev, scr.choice

	// Stage 0 base: prefix [0..j] entirely on stage 0 (or empty).
	prev[0] = 0
	for j := 0; j < n; j++ {
		prev[j+1] = sliceSeconds(p, 0, 0, j)
		choice[0][j+1] = 0
		cells++
	}
	choice[0][0] = 0

	// One child span per DP stage row when tracing is armed. The nil check
	// (not just StartChild's internal one) keeps the untraced path from
	// allocating the attribute slice on every row.
	rowParent := obs.SpanFromContext(ctx)
	for stage := 1; stage < k; stage++ {
		var row *obs.Span
		if rowParent != nil {
			row = rowParent.StartChild("dp_row",
				obs.Int("stage", int64(stage)), obs.Int("layers", int64(n)))
		}
		dp[0] = prev[0] // empty prefix stays empty
		choice[stage][0] = 0
		for j := 0; j < n; j++ {
			if j%cancelCheckStride == 0 && ctx.Err() != nil {
				row.End()
				putDPScratch(scr)
				return nil, 0, cells, cancelErr(ctx)
			}
			var bestI int
			var bestV float64
			if fast {
				bestI, bestV = cellByCrossing(p, prev, stage, j)
			} else {
				bestI, bestV = cellByScan(p, prev, stage, j)
			}
			dp[j+1] = bestV
			choice[stage][j+1] = bestI
			cells++
		}
		row.End()
		dp, prev = prev, dp
	}
	best := prev[n]
	if math.IsInf(best, 1) {
		putDPScratch(scr)
		return nil, 0, cells, ErrInfeasiblePartition
	}
	return scr, best, cells, nil
}

// cellByScan minimises max(prev[i], cost(i, j)) exactly, pruning on the
// monotone prev: once prev[i] ≥ the best value so far, no larger i helps.
func cellByScan(p *profile.Profile, prev []float64, stage, j int) (int, float64) {
	bestI, bestV := j+1, math.Max(prev[j+1], 0) // empty slice candidate
	for i := 0; i <= j; i++ {
		if prev[i] >= bestV {
			break
		}
		v := math.Max(prev[i], sliceSeconds(p, stage, i, j))
		if v < bestV {
			bestI, bestV = i, v
		}
	}
	return bestI, bestV
}

// cellByCrossing binary-searches the prev/cost crossing (Property 2 path).
func cellByCrossing(p *profile.Profile, prev []float64, stage, j int) (int, float64) {
	lo, hi := 0, j+1
	for lo < hi {
		mid := (lo + hi) / 2
		if prev[mid] < sliceSeconds(p, stage, mid, j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	bestI, bestV := lo, math.Max(prev[lo], sliceSeconds(p, stage, lo, j))
	if lo > 0 {
		if v := math.Max(prev[lo-1], sliceSeconds(p, stage, lo-1, j)); v < bestV {
			bestI, bestV = lo-1, v
		}
	}
	return bestI, bestV
}

// backtrackCuts recovers boundary vectors from the choice table.
func backtrackCuts(p *profile.Profile, choice [][]int, best float64) (pipeline.Cuts, float64, error) {
	n := p.NumLayers()
	k := p.NumProcessors()

	// Backtrack boundaries: cuts[s] is the first layer of stage s.
	cuts := make(pipeline.Cuts, k+1)
	cuts[k] = n
	end := n // exclusive end of current stage's slice
	for stage := k - 1; stage >= 1; stage-- {
		start := choice[stage][end]
		cuts[stage] = start
		end = start
	}
	cuts[0] = 0
	if !pipeline.ValidCuts(cuts, n, k) {
		return nil, 0, fmt.Errorf("core: internal: backtracked cuts %v invalid", []int(cuts))
	}
	return cuts, best, nil
}

// partitionReference is the direct O(n²K) realisation of the recurrence,
// kept for cross-checking the pruned version in tests.
func partitionReference(p *profile.Profile) (float64, error) {
	n := p.NumLayers()
	k := p.NumProcessors()
	if n == 0 || k == 0 {
		return 0, ErrInfeasiblePartition
	}
	prev := make([]float64, n+1)
	dp := make([]float64, n+1)
	prev[0] = 0
	for j := 0; j < n; j++ {
		prev[j+1] = sliceSeconds(p, 0, 0, j)
	}
	for stage := 1; stage < k; stage++ {
		dp[0] = prev[0]
		for j := 0; j < n; j++ {
			best := math.Inf(1)
			for i := 0; i <= j+1; i++ {
				v := math.Max(prev[i], sliceSeconds(p, stage, i, j))
				if v < best {
					best = v
				}
			}
			dp[j+1] = best
		}
		dp, prev = prev, dp
	}
	if math.IsInf(prev[n], 1) {
		return 0, ErrInfeasiblePartition
	}
	return prev[n], nil
}
