package core

import (
	"fmt"
	"math"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// nonMonotoneCopyModel builds a chain whose boundary tensors alternate
// between huge and tiny: the copy-in term T^c(i) of Eq. (2) then spikes on
// every even boundary, so the combined exec+copy slice cost is deliberately
// NOT non-increasing in the start index — the Property-2 assumption
// PartitionFast's crossing-point binary search relies on is violated.
func nonMonotoneCopyModel(t *testing.T) *model.Model {
	t.Helper()
	const n = 24
	layers := make([]model.Layer, n)
	in := int64(16 << 20)
	first := in
	for i := range layers {
		out := int64(4 << 10)
		if i%2 == 0 {
			out = 16 << 20
		}
		layers[i] = model.Layer{
			Name:            fmt.Sprintf("l%d", i),
			Kind:            model.OpConv,
			FLOPs:           2e8 + 1e7*float64(i%5),
			InputBytes:      in,
			OutputBytes:     out,
			WeightBytes:     256 << 10,
			WorkingSetBytes: 1 << 20,
		}
		in = out
	}
	m := &model.Model{Name: "NonMonotoneCopy", Layers: layers, InputBytes: first}
	if err := m.Validate(); err != nil {
		t.Fatalf("synthetic model invalid: %v", err)
	}
	return m
}

// TestPartitionFastProperty2ViolationBound: on a profile that provably
// violates Property 2 (the combined slice cost increases as the slice
// shrinks, because dropping a cheap prefix layer can move the boundary onto
// a huge copy), PartitionFast stays admissible — never below the exact DP
// optimum, and within the documented "fraction of a percent" (≤ 1%) of it.
func TestPartitionFastProperty2ViolationBound(t *testing.T) {
	s := soc.Kirin990()
	p, err := profile.New(s, nonMonotoneCopyModel(t))
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumLayers()

	// First prove the lever works: the profile must actually violate
	// Property 2 on some processor — sliceSeconds(k, i+1, j) >
	// sliceSeconds(k, i, j) for some suffix slice.
	violated := false
	for k := 0; k < p.NumProcessors() && !violated; k++ {
		for i := 0; i+1 < n; i++ {
			whole := sliceSeconds(p, k, i, n-1)
			shrunk := sliceSeconds(p, k, i+1, n-1)
			if math.IsInf(whole, 1) || math.IsInf(shrunk, 1) {
				continue
			}
			if shrunk > whole+1e-12 {
				violated = true
				break
			}
		}
	}
	if !violated {
		t.Fatal("synthetic profile does not violate Property 2; the test exercises nothing")
	}

	exactCuts, exact, err := Partition(p)
	if err != nil {
		t.Fatalf("exact DP: %v", err)
	}
	fastCuts, fast, err := PartitionFast(p)
	if err != nil {
		t.Fatalf("PartitionFast: %v", err)
	}
	for _, c := range []pipeline.Cuts{exactCuts, fastCuts} {
		if !pipeline.ValidCuts(c, n, p.NumProcessors()) {
			t.Fatalf("invalid cuts %v", c)
		}
	}
	if fast < exact-1e-9 {
		t.Fatalf("PartitionFast bottleneck %g beats the exact DP %g — impossible", fast, exact)
	}
	if fast > exact*1.01+1e-12 {
		t.Errorf("PartitionFast %g more than 1%% above the exact DP %g under a Property-2 violation (gap %.4f%%)",
			fast, exact, 100*(fast/exact-1))
	}
	t.Logf("Property-2 violation: exact %g, fast %g (gap %.6f%%)", exact, fast, 100*(fast/exact-1))
}
