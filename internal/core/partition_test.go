package core

import (
	"math"
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

func profileFor(t *testing.T, s *soc.SoC, name string) *profile.Profile {
	t.Helper()
	p, err := profile.New(s, model.MustByName(name))
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	return p
}

func TestPartitionValidAndFeasible(t *testing.T) {
	s := soc.Kirin990()
	for _, name := range model.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := profileFor(t, s, name)
			cuts, best, err := Partition(p)
			if err != nil {
				t.Fatalf("Partition: %v", err)
			}
			if !pipeline.ValidCuts(cuts, p.NumLayers(), p.NumProcessors()) {
				t.Fatalf("invalid cuts %v", cuts)
			}
			if best <= 0 || math.IsInf(best, 1) {
				t.Fatalf("bottleneck %g", best)
			}
			// The reported bottleneck matches the cuts.
			var maxStage float64
			for k := 0; k < p.NumProcessors(); k++ {
				v := sliceSeconds(p, k, cuts[k], cuts[k+1]-1)
				if math.IsInf(v, 1) {
					t.Fatalf("stage %d infeasible under returned cuts", k)
				}
				if v > maxStage {
					maxStage = v
				}
			}
			if math.Abs(maxStage-best) > 1e-9 {
				t.Errorf("reported bottleneck %g != realised %g", best, maxStage)
			}
		})
	}
}

// TestPartitionMatchesReference cross-checks the O(nK log n) DP against the
// O(n²K) direct recurrence on every zoo model and all three SoCs.
func TestPartitionMatchesReference(t *testing.T) {
	for _, s := range soc.Presets() {
		for _, name := range model.Names() {
			p := profileFor(t, s, name)
			_, fast, err := Partition(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, name, err)
			}
			ref, err := partitionReference(p)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", s.Name, name, err)
			}
			if math.Abs(fast-ref) > 1e-9*math.Max(fast, 1) {
				t.Errorf("%s/%s: pruned DP %g != reference %g", s.Name, name, fast, ref)
			}
		}
	}
}

// TestPartitionBeatsSingleProcessor: the min-max bottleneck can never exceed
// the best single-processor execution, and for large models it must be
// strictly better (load actually spread).
func TestPartitionBeatsSingleProcessor(t *testing.T) {
	s := soc.Kirin990()
	for _, name := range []string{model.VGG16, model.YOLOv4, model.BERT} {
		p := profileFor(t, s, name)
		_, best, err := Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		n := p.NumLayers()
		single := math.Inf(1)
		for k := 0; k < p.NumProcessors(); k++ {
			if v := sliceSeconds(p, k, 0, n-1); v < single {
				single = v
			}
		}
		if best > single+1e-12 {
			t.Errorf("%s: partitioned bottleneck %g worse than single-processor %g", name, best, single)
		}
		if best > 0.9*single {
			t.Errorf("%s: partitioning barely helps (%g vs %g); expected real spreading", name, best, single)
		}
	}
}

// TestPartitionNPUFallback: models with NPU-unsupported operators must still
// partition, with the NPU stage skipping every unsupported layer.
func TestPartitionNPUFallback(t *testing.T) {
	s := soc.Kirin990()
	for _, name := range []string{model.BERT, model.YOLOv4, model.ViT} {
		p := profileFor(t, s, name)
		cuts, _, err := Partition(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Stage 0 is the NPU on the Kirin preset; its slice must be
		// supported (possibly empty).
		if cuts[1] > cuts[0] && !p.Table(0).Supported(cuts[0], cuts[1]-1) {
			t.Errorf("%s: NPU slice [%d,%d) unsupported", name, cuts[0], cuts[1])
		}
	}
	// BERT's first layer (embedding) is unsupported, so the NPU slice is
	// necessarily empty.
	p := profileFor(t, s, model.BERT)
	cuts, _, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if cuts[1] != 0 {
		t.Errorf("BERT NPU slice = [0,%d), want empty (embedding unsupported)", cuts[1])
	}
}

// TestPartitionFullySupportedUsesNPU: conv classifiers should put real work
// on the Kirin NPU (it is far faster — capability ordering).
func TestPartitionFullySupportedUsesNPU(t *testing.T) {
	s := soc.Kirin990()
	for _, name := range []string{model.ResNet50, model.VGG16, model.InceptionV4} {
		p := profileFor(t, s, name)
		cuts, _, err := Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		if cuts[1] == 0 {
			t.Errorf("%s: NPU stage empty; expected the fast processor to take load", name)
		}
	}
}

func TestPartitionSchedulable(t *testing.T) {
	s := soc.Snapdragon870()
	var profiles []*profile.Profile
	var cuts []pipeline.Cuts
	for _, name := range []string{model.ResNet50, model.BERT, model.SqueezeNet} {
		p := profileFor(t, s, name)
		c, _, err := Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
		cuts = append(cuts, c)
	}
	sched, err := pipeline.FromCuts(s, profiles, cuts)
	if err != nil {
		t.Fatalf("FromCuts: %v", err)
	}
	if _, err := pipeline.Execute(sched, pipeline.DefaultOptions()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
}

// TestPartitionBottleneckOptimalSmall brute-forces tiny synthetic models to
// confirm global optimality of the DP.
func TestPartitionBottleneckOptimalSmall(t *testing.T) {
	s := soc.Kirin990()
	m := model.MustByName(model.AlexNet)
	// Truncate to the first 8 layers for brute force over all boundary
	// placements.
	small := &model.Model{Name: "Alex8", Layers: m.Layers[:8], InputBytes: m.InputBytes}
	p, err := profile.New(s, small)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceBottleneck(p)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DP bottleneck %g != brute force %g", got, want)
	}
}

// bruteForceBottleneck enumerates every boundary vector.
func bruteForceBottleneck(p *profile.Profile) float64 {
	n := p.NumLayers()
	k := p.NumProcessors()
	best := math.Inf(1)
	bounds := make([]int, k+1)
	bounds[k] = n
	var rec func(stage int)
	rec = func(stage int) {
		if stage == k {
			if bounds[k-1] > n {
				return
			}
			var worst float64
			for s := 0; s < k; s++ {
				v := sliceSeconds(p, s, bounds[s], bounds[s+1]-1)
				if v > worst {
					worst = v
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for b := bounds[stage-1]; b <= n; b++ {
			bounds[stage] = b
			rec(stage + 1)
		}
	}
	rec(1)
	return best
}

func TestSliceSecondsConventions(t *testing.T) {
	s := soc.Kirin990()
	p := profileFor(t, s, model.AlexNet)
	if got := sliceSeconds(p, 1, 5, 4); got != 0 {
		t.Errorf("empty slice = %g, want 0", got)
	}
	if got := sliceSeconds(p, 1, 0, 0); got <= 0 {
		t.Errorf("single layer = %g, want > 0", got)
	}
	d := p.SliceTime(1, 0, 3)
	if got, want := sliceSeconds(p, 1, 0, 3), d.Seconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("sliceSeconds = %g, want %g", got, want)
	}
	_ = time.Second // keep time import for future additions
}

// TestParametricMatchesDP: the binary-search partitioner lands on (or very
// near — the copy-in term breaks strict greedy optimality, see
// PartitionFast's caveat) the DP optimum across the zoo and all presets.
func TestParametricMatchesDP(t *testing.T) {
	for _, s := range soc.Presets() {
		for _, name := range model.Names() {
			p := profileFor(t, s, name)
			_, dp, err := Partition(p)
			if err != nil {
				t.Fatalf("%s/%s: DP: %v", s.Name, name, err)
			}
			cuts, par, err := PartitionParametric(p)
			if err != nil {
				t.Fatalf("%s/%s: parametric: %v", s.Name, name, err)
			}
			if !pipeline.ValidCuts(cuts, p.NumLayers(), p.NumProcessors()) {
				t.Fatalf("%s/%s: invalid parametric cuts %v", s.Name, name, cuts)
			}
			if par < dp-1e-9 {
				t.Errorf("%s/%s: parametric %g beats the DP optimum %g (impossible)",
					s.Name, name, par, dp)
			}
			if par > dp*1.05+1e-9 {
				t.Errorf("%s/%s: parametric %g more than 5%% above DP %g",
					s.Name, name, par, dp)
			}
		}
	}
}
