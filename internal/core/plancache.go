package core

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
)

// Whole-plan memoization. The cost-table cache removes the measurement cost
// of repeated planning, but every PlanProfiles call still pays the full
// two-step optimisation — per-model partition DPs, the LAP mitigation
// reorder, work stealing and the tail local search across ~6 candidate
// orderings. In the stream scheduler's steady state (the same request mix
// window after window against an unchanged SoC) that work recomputes an
// identical plan every time. The plan cache memoizes whole plans behind a
// canonical window signature:
//
//	SoC degradation epoch | planner options fingerprint | ordered model digests
//
// The epoch (soc.SoC.Epoch) is the validity token: every state-changing
// degradation event bumps it, so a cached plan can never survive a throttle,
// frequency step, offline/online transition or bus squeeze — without the
// cache ever re-hashing the SoC description. The model sequence is kept in
// window order, not sorted: the planner's candidate orderings and the
// Order index mapping depend on the order requests arrive in, so two
// permutations of one multiset are distinct planner inputs with distinct
// (byte-different) plans.
//
// Hits return a deep copy: plans are mutable (stream callers hand the
// schedule to the executor, experiments rewrite stage rows), so the cache
// keeps a private copy at insert and clones it on every hit. Structural
// model verification guards the digest-based key the same way sameModel
// guards the cost cache's name-based key, so a digest collision degrades to
// a miss, never a wrong plan.

// planKey is the canonical window signature.
type planKey = string

// Objective-mode dimension of the signature: single-plan and frontier
// entries share the LRU but can never collide, because the mode is the
// first byte of the key.
const (
	modeSinglePlan = "s"
	modeFrontier   = "f"
)

// planSignature builds the canonical signature for a window of models
// planned at the given SoC epoch under the fingerprinted options. mode is
// the objective dimension (modeSinglePlan or modeFrontier): a frontier and
// the single min-makespan plan for the same window are distinct cache
// values with distinct keys.
func planSignature(mode string, epoch uint64, optsFP string, models []*model.Model) planKey {
	var b strings.Builder
	b.Grow(len(mode) + len(optsFP) + 21 + 17*len(models))
	b.WriteString(mode)
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(epoch, 16))
	b.WriteByte('|')
	b.WriteString(optsFP)
	for _, m := range models {
		b.WriteByte('|')
		b.WriteString(strconv.FormatUint(modelDigest(m), 16))
	}
	return b.String()
}

// modelDigest is an FNV-1a content hash over every planner-relevant model
// field: two models with equal digests are structurally identical up to
// 64-bit hash collision, which the structural hit guard then rules out.
func modelDigest(m *model.Model) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	ws(m.Name)
	wu(uint64(m.InputBytes))
	wu(uint64(len(m.Layers)))
	for i := range m.Layers {
		l := &m.Layers[i]
		ws(l.Name)
		wu(uint64(l.Kind))
		wu(math.Float64bits(l.FLOPs))
		wu(uint64(l.InputBytes))
		wu(uint64(l.OutputBytes))
		wu(uint64(l.WeightBytes))
		wu(uint64(l.WorkingSetBytes))
	}
	return h.Sum64()
}

// optionsFingerprint canonicalises the Options fields that influence plan
// content. Parallelism is deliberately absent (plans are byte-identical at
// every worker count; see Options.Parallelism), as are the Metrics/Logger
// handles, which observe planning without steering it.
func optionsFingerprint(o Options) string {
	est := "nil"
	if o.Estimator != nil {
		// Pointer identity: the estimator's weights are treated as immutable
		// for the planner's lifetime, like the SoC description between
		// epochs. Swapping in a new estimator means a new Planner (or an
		// InvalidateCache call).
		est = fmt.Sprintf("%p", o.Estimator)
	}
	// Beam fields steer which candidates get priced, and so the plan bytes;
	// IncrementalReplan is deliberately absent — the memoized DP is proven
	// byte-identical to the from-scratch refill, so both settings produce
	// (and may share) the same cached plans.
	return fmt.Sprintf("q=%g;mit=%t;ws=%t;tail=%t;cont=%t;mem=%t;smem=%t;est=%s;bw=%d;beps=%g;dl=%s",
		o.HighQuantile, o.Mitigation, o.WorkStealing, o.TailOptimization,
		o.ExecOptions.Contention, o.ExecOptions.EnforceMemory, o.ExecOptions.SampleMemory, est,
		o.BeamWidth, o.BeamEpsilon, o.AnytimeDeadline)
}

// planEntry is one memoized value — a single plan or a whole frontier,
// exactly one of the two set, matching the key's mode byte — plus the
// ordered model identities backing its signature (the structural collision
// guard).
type planEntry struct {
	key      planKey
	models   []*model.Model
	plan     *Plan
	frontier *Frontier
}

// planCache is a bounded LRU of whole plans. All methods are safe for
// concurrent use.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[planKey]*list.Element
	order   *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
	// hitC/missC mirror the lifetime counters into the owning planner's
	// metrics registry (detached instruments when no registry is set).
	hitC  *obs.Counter
	missC *obs.Counter
}

func newPlanCache(capacity int, reg *obs.Registry) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[planKey]*list.Element),
		order:   list.New(),
		hitC:    reg.Counter("planner_plan_cache_hits_total"),
		missC:   reg.Counter("planner_plan_cache_misses_total"),
	}
}

// get returns a deep copy of the memoized plan for key, or nil. models are
// the window's ordered identities; a signature match with a structural
// mismatch (a digest collision) counts as a miss.
func (c *planCache) get(key planKey, models []*model.Model) *Plan {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		e := el.Value.(*planEntry)
		if e.plan != nil && sameModels(e.models, models) {
			c.order.MoveToFront(el)
			plan := deepCopyPlan(e.plan)
			c.mu.Unlock()
			c.hits.Add(1)
			c.hitC.Inc()
			return plan
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	c.missC.Inc()
	return nil
}

// getFrontier is get for whole-frontier entries: a deep copy of the
// memoized frontier for key, or nil. Same LRU, same hit/miss counters —
// one hit means one window's planning skipped, regardless of mode.
func (c *planCache) getFrontier(key planKey, models []*model.Model) *Frontier {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		e := el.Value.(*planEntry)
		if e.frontier != nil && sameModels(e.models, models) {
			c.order.MoveToFront(el)
			f := deepCopyFrontier(e.frontier)
			c.mu.Unlock()
			c.hits.Add(1)
			c.hitC.Inc()
			return f
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	c.missC.Inc()
	return nil
}

// put memoizes a private deep copy of plan under key, evicting the
// least-recently-used entries beyond the capacity bound.
func (c *planCache) put(key planKey, models []*model.Model, plan *Plan) {
	c.putEntry(&planEntry{
		key:    key,
		models: append([]*model.Model(nil), models...),
		plan:   deepCopyPlan(plan),
	})
}

// putFrontier memoizes a private deep copy of a whole frontier under key.
func (c *planCache) putFrontier(key planKey, models []*model.Model, f *Frontier) {
	c.putEntry(&planEntry{
		key:      key,
		models:   append([]*model.Model(nil), models...),
		frontier: deepCopyFrontier(f),
	})
}

func (c *planCache) putEntry(entry *planEntry) {
	key := entry.key
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value = entry
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.order.PushFront(entry)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
	}
	c.mu.Unlock()
}

// stats returns the lifetime hit/miss counters.
func (c *planCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// contains reports whether key is memoized with a structural match, without
// touching the LRU order or the hit/miss counters — the read-only peek
// behind Planner.HasCachedPlan.
func (c *planCache) contains(key planKey, models []*model.Model) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	return ok && sameModels(el.Value.(*planEntry).models, models)
}

// len returns the current entry count (tests inspect the LRU bound).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// invalidate drops every entry (counters survive — lifetime semantics,
// matching costCache.invalidate).
func (c *planCache) invalidate() {
	c.mu.Lock()
	c.entries = make(map[planKey]*list.Element)
	c.order.Init()
	c.mu.Unlock()
}

// sameModels verifies the ordered structural identity behind a signature
// match.
func sameModels(a, b []*model.Model) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameModel(a[i], b[i]) {
			return false
		}
	}
	return true
}

// deepCopyPlan clones every mutable layer of a plan: the schedule's stage
// rows (Schedule.Clone — SoC and profiles are shared, immutable between
// epochs) and all index/score slices. Cache and caller never alias.
func deepCopyPlan(p *Plan) *Plan {
	out := &Plan{
		Order:               append([]int(nil), p.Order...),
		Classes:             append([]contention.Class(nil), p.Classes...),
		Intensities:         append([]float64(nil), p.Intensities...),
		HorizontalMakespans: append([]float64(nil), p.HorizontalMakespans...),
	}
	if p.Schedule != nil {
		out.Schedule = p.Schedule.Clone()
		// Clone shares the Profiles slice header (the profiles themselves are
		// immutable, but the slice is not): give the copy its own backing
		// array so a caller appending to or reordering a hit's Profiles —
		// e.g. through a selected FrontierPoint — cannot reach the cached
		// entry. Deliberately here and not in Schedule.Clone, which sits on
		// the tail-search hot path where the extra allocation would cost.
		out.Schedule.Profiles = append([]*profile.Profile(nil), p.Schedule.Profiles...)
	}
	if p.Cuts != nil {
		out.Cuts = make([]pipeline.Cuts, len(p.Cuts))
		for i, c := range p.Cuts {
			out.Cuts[i] = append(pipeline.Cuts(nil), c...)
		}
	}
	return out
}

// deepCopyFrontier clones every plan on the frontier (objectives and
// candidate indices are values). Cache and caller never alias.
func deepCopyFrontier(f *Frontier) *Frontier {
	out := &Frontier{Points: make([]FrontierPoint, len(f.Points))}
	for i, p := range f.Points {
		out.Points[i] = FrontierPoint{
			Plan:      deepCopyPlan(p.Plan),
			Objective: p.Objective,
			Candidate: p.Candidate,
		}
	}
	return out
}

// PlanCacheStats returns the planner's lifetime whole-plan cache hit/miss
// counters: one hit per window served from the cache, one miss per window
// that ran the full two-step optimisation. Both zero when the cache is
// disabled (Options.PlanCache ≤ 0).
func (pl *Planner) PlanCacheStats() (hits, misses uint64) {
	if pl.planCache == nil {
		return 0, 0
	}
	return pl.planCache.stats()
}

// HasCachedPlan reports whether a plan for the given window of models — in
// window order, at the SoC's current degradation epoch, under this planner's
// options — is memoized right now. It is a pure peek: no LRU reordering, no
// hit/miss accounting, so routing layers (the fleet's plan-cache affinity
// policy) can probe candidate devices without skewing cache statistics.
// Always false when the plan cache is disabled.
func (pl *Planner) HasCachedPlan(models []*model.Model) bool {
	if pl.planCache == nil {
		return false
	}
	return pl.planCache.contains(planSignature(modeSinglePlan, pl.soc.Epoch(), pl.optsFP, models), models)
}
