package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

func newCachedPlanner(t *testing.T, s *soc.SoC, capacity int) *Planner {
	t.Helper()
	opts := DefaultOptions()
	opts.PlanCache = capacity
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestPlanCacheHitIsByteIdentical: replanning an identical window must be a
// cache hit, skip the DP entirely, and return a plan byte-identical both to
// the first (missed) plan and to a cache-disabled planner's plan.
func TestPlanCacheHitIsByteIdentical(t *testing.T) {
	models := mustModels(t, model.ResNet50, model.SqueezeNet, model.BERT)
	pl := newCachedPlanner(t, soc.Kirin990(), 4)

	first, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != 0 || m != 1 {
		t.Fatalf("after cold plan: hits=%d misses=%d, want 0/1", h, m)
	}
	cells := pl.DPCells()
	second, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != 1 || m != 1 {
		t.Fatalf("after warm plan: hits=%d misses=%d, want 1/1", h, m)
	}
	if got := pl.DPCells(); got != cells {
		t.Errorf("cache hit still evaluated DP cells: %d → %d", cells, got)
	}
	if canonicalPlan(second) != canonicalPlan(first) {
		t.Error("cached plan differs from the plan that populated it")
	}

	ref, err := NewPlanner(soc.Kirin990(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalPlan(second) != canonicalPlan(want) {
		t.Error("cached plan differs from a cache-disabled planner's plan")
	}
}

// TestPlanCacheLRUBound: the entry count never exceeds the capacity, the
// least-recently-used window is the one evicted, and a recently-touched
// window survives.
func TestPlanCacheLRUBound(t *testing.T) {
	pl := newCachedPlanner(t, soc.Kirin990(), 2)
	winA := mustModels(t, model.SqueezeNet)
	winB := mustModels(t, model.MobileNetV2)
	winC := mustModels(t, model.AlexNet)

	for _, win := range [][]*model.Model{winA, winB} {
		if _, err := pl.PlanModels(win); err != nil {
			t.Fatal(err)
		}
	}
	if n := pl.planCache.len(); n != 2 {
		t.Fatalf("entries = %d, want 2", n)
	}
	// Touch A so B becomes least-recently-used, then insert C.
	if _, err := pl.PlanModels(winA); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.PlanModels(winC); err != nil {
		t.Fatal(err)
	}
	if n := pl.planCache.len(); n != 2 {
		t.Fatalf("entries after eviction = %d, want 2", n)
	}
	hits0, misses0 := pl.PlanCacheStats()
	if _, err := pl.PlanModels(winA); err != nil { // survived (recently used)
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != hits0+1 || m != misses0 {
		t.Errorf("replanning the recently-used window: hits %d→%d misses %d→%d, want a pure hit",
			hits0, h, misses0, m)
	}
	if _, err := pl.PlanModels(winB); err != nil { // evicted
		t.Fatal(err)
	}
	if _, m := pl.PlanCacheStats(); m != misses0+1 {
		t.Errorf("replanning the evicted window was not a miss (misses %d→%d)", misses0, m)
	}
}

// TestPlanCacheDeepCopyOnHit: callers own their plans outright — mutating a
// returned plan (slices and schedule rows alike) must not leak into the
// cache's copy.
func TestPlanCacheDeepCopyOnHit(t *testing.T) {
	models := mustModels(t, model.ResNet50, model.GoogLeNet)
	pl := newCachedPlanner(t, soc.Kirin990(), 4)
	first, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalPlan(first)

	vandalise := func(p *Plan) {
		p.Order[0] = 999
		p.Classes[0]++
		p.Intensities[0] = -1
		p.HorizontalMakespans[0] = -1
		p.Cuts[0][0] = 999
		p.Schedule.Stages[0][0].From = 999
	}
	vandalise(first) // mutate the plan that seeded the cache

	second, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPlan(second); got != want {
		t.Fatalf("mutating the seeding plan corrupted the cache:\nwant %s\ngot %s", want, got)
	}
	vandalise(second) // mutate a hit-served plan

	third, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalPlan(third); got != want {
		t.Fatalf("mutating a hit-served plan corrupted the cache:\nwant %s\ngot %s", want, got)
	}
}

// TestPlanCacheEpochInvalidation: a state-changing degradation event bumps
// the SoC epoch, so the next identical window misses and replans on the
// degraded tables — while a no-op event leaves the epoch (and the hit
// stream) untouched.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	s := soc.Kirin990()
	pl := newCachedPlanner(t, s, 4)
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}

	// No-op event first: restating the online NPU changes nothing.
	affected, err := s.Apply(soc.Event{Kind: soc.EventProcessorOnline, Processor: "npu"})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 0 {
		t.Fatalf("no-op event staled processors %v", affected)
	}
	pl.InvalidateProcessors(affected...)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != 1 || m != 1 {
		t.Fatalf("after no-op event: hits=%d misses=%d, want 1/1 (still a hit)", h, m)
	}

	// Real throttle: epoch bump retires the signature.
	affected, err = s.Apply(soc.Event{Kind: soc.EventThermalThrottle, Processor: "cpu-big", Factor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	pl.InvalidateProcessors(affected...)
	degraded, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != 1 || m != 2 {
		t.Fatalf("after throttle: hits=%d misses=%d, want 1/2 (a miss)", h, m)
	}

	// A bus squeeze stales no cost tables but still changes plans: it must
	// bump the epoch and force a miss too.
	if _, err := s.Apply(soc.Event{Kind: soc.EventBandwidthSqueeze, Factor: 0.6}); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != 1 || m != 3 {
		t.Fatalf("after bus squeeze: hits=%d misses=%d, want 1/3 (a miss)", h, m)
	}
	_ = degraded
}

// TestPlanCacheInvalidateFlush: InvalidateCache and a non-empty
// InvalidateProcessors flush the plan cache; the empty processor set (a
// no-op degradation event) must not.
func TestPlanCacheInvalidateFlush(t *testing.T) {
	pl := newCachedPlanner(t, soc.Kirin990(), 4)
	models := mustModels(t, model.MobileNetV2, model.GoogLeNet)
	warm := func() (hits, misses uint64) {
		t.Helper()
		if _, err := pl.PlanModels(models); err != nil {
			t.Fatal(err)
		}
		return pl.PlanCacheStats()
	}

	warm()                      // miss, populates
	if h, _ := warm(); h != 1 { // hit
		t.Fatalf("warm plan not a hit (hits=%d)", h)
	}

	pl.InvalidateProcessors() // empty set: must NOT flush
	if h, _ := warm(); h != 2 {
		t.Error("empty InvalidateProcessors flushed the plan cache")
	}

	pl.InvalidateProcessors(0) // non-empty: flushes
	if _, m := warm(); m != 2 {
		t.Error("InvalidateProcessors(0) did not flush the plan cache")
	}

	pl.InvalidateCache() // full flush
	if _, m := warm(); m != 3 {
		t.Error("InvalidateCache did not flush the plan cache")
	}
	if n := pl.planCache.len(); n != 1 {
		t.Errorf("entries after flush+replan = %d, want 1", n)
	}
}

// TestPlanCacheOrderSensitivity: two permutations of one model multiset are
// distinct planner inputs (candidate orderings and the Order mapping depend
// on window order), so they must occupy distinct cache slots — never serve
// each other's plans.
func TestPlanCacheOrderSensitivity(t *testing.T) {
	pl := newCachedPlanner(t, soc.Kirin990(), 4)
	ab := mustModels(t, model.ResNet50, model.SqueezeNet)
	ba := []*model.Model{ab[1], ab[0]}

	planAB, err := pl.PlanModels(ab)
	if err != nil {
		t.Fatal(err)
	}
	planBA, err := pl.PlanModels(ba)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := pl.PlanCacheStats(); h != 0 || m != 2 {
		t.Fatalf("permuted windows: hits=%d misses=%d, want 0/2 (distinct signatures)", h, m)
	}
	// The permuted window's plan must match a fresh planner's, not the
	// other permutation's cached entry.
	ref, err := NewPlanner(soc.Kirin990(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.PlanModels(ba)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalPlan(planBA) != canonicalPlan(want) {
		t.Error("permuted window served a stale plan")
	}
	_ = planAB
}

// TestDifferentialPlanCacheMatchesUncached: over a randomized sequence of
// recurring windows interleaved with degradation events (applied in lockstep
// to a reference SoC), every plan from the cache-enabled planner must be
// byte-identical to a cache-disabled planner's plan — whether the window was
// a hit or a miss.
func TestDifferentialPlanCacheMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	names := model.Names()
	socCached := soc.Kirin990()
	socRef := soc.Kirin990()
	cached := newCachedPlanner(t, socCached, 3) // small: eviction in play
	ref, err := NewPlanner(socRef, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	rounds := 16
	if testing.Short() {
		rounds = 6
	}
	npuOffline := false
	var pool [][]*model.Model
	for r := 0; r < rounds; r++ {
		var win []*model.Model
		if len(pool) > 0 && rng.Intn(2) == 0 {
			win = pool[rng.Intn(len(pool))] // replay a window → hit candidate
		} else {
			size := 1 + rng.Intn(3)
			picked := make([]string, size)
			for i := range picked {
				picked[i] = names[rng.Intn(len(names))]
			}
			win = mustModels(t, picked...)
			pool = append(pool, win)
		}
		got, err := cached.PlanModels(win)
		if err != nil {
			t.Fatalf("round %d: cached planner: %v", r, err)
		}
		want, err := ref.PlanModels(win)
		if err != nil {
			t.Fatalf("round %d: reference planner: %v", r, err)
		}
		if canonicalPlan(got) != canonicalPlan(want) {
			t.Fatalf("round %d: cached plan diverged from uncached reference\n--- cached ---\n%s--- reference ---\n%s",
				r, canonicalPlan(got), canonicalPlan(want))
		}

		if rng.Intn(3) != 0 {
			continue
		}
		// Degrade both SoCs identically (the event mix includes deliberate
		// no-ops, e.g. re-asserting a throttle factor).
		var ev soc.Event
		switch rng.Intn(4) {
		case 0:
			ev = soc.Event{Kind: soc.EventThermalThrottle, Processor: "cpu-big",
				Factor: 1 + 0.5*float64(rng.Intn(3))}
		case 1:
			ev = soc.Event{Kind: soc.EventFrequencyScale, Processor: "gpu",
				Factor: 0.5 + 0.25*float64(rng.Intn(3))}
		case 2:
			ev = soc.Event{Kind: soc.EventBandwidthSqueeze,
				Factor: 0.6 + 0.2*float64(rng.Intn(3))}
		case 3:
			if npuOffline {
				ev = soc.Event{Kind: soc.EventProcessorOnline, Processor: "npu"}
			} else {
				ev = soc.Event{Kind: soc.EventProcessorOffline, Processor: "npu"}
			}
			npuOffline = !npuOffline
		}
		affC, err := socCached.Apply(ev)
		if err != nil {
			t.Fatal(err)
		}
		cached.InvalidateProcessors(affC...)
		affR, err := socRef.Apply(ev)
		if err != nil {
			t.Fatal(err)
		}
		ref.InvalidateProcessors(affR...)
	}
	hits, misses := cached.PlanCacheStats()
	if hits == 0 {
		t.Errorf("differential never exercised a plan-cache hit (hits=%d misses=%d)", hits, misses)
	}
}

// fuzzModel synthesises a valid chain model deterministically from a seed:
// tensor continuity is enforced by construction, operator kinds stay within
// the NPU-supported set so the whole zoo of processors can take slices.
func fuzzModel(seed uint64, n int) *model.Model {
	rng := rand.New(rand.NewSource(int64(seed)))
	if n < 1 {
		n = 1
	}
	if n > 6 {
		n = 6
	}
	kinds := []model.OpKind{model.OpConv, model.OpPool, model.OpActivation, model.OpFC}
	layers := make([]model.Layer, n)
	in := int64(rng.Intn(1<<16) + 1024)
	first := in
	for i := range layers {
		out := int64(rng.Intn(1<<16) + 512)
		layers[i] = model.Layer{
			Name:            fmt.Sprintf("l%d", i),
			Kind:            kinds[rng.Intn(len(kinds))],
			FLOPs:           float64(rng.Intn(1<<22) + 1000),
			InputBytes:      in,
			OutputBytes:     out,
			WeightBytes:     int64(rng.Intn(1 << 14)),
			WorkingSetBytes: int64(rng.Intn(1 << 14)),
		}
		in = out
	}
	// The name is deliberately constant: digests must discriminate on
	// content alone, making hash collisions the only way two different
	// windows could share a signature.
	return &model.Model{Name: "fuzzmodel", Layers: layers, InputBytes: first}
}

// fuzzOptions derives a planner option permutation from a bitmask, touching
// exactly the fields the fingerprint covers.
func fuzzOptions(bits uint8) Options {
	o := DefaultOptions()
	o.Mitigation = bits&1 != 0
	o.WorkStealing = bits&2 != 0
	o.TailOptimization = bits&4 != 0
	o.ExecOptions.Contention = bits&8 != 0
	if bits&16 != 0 {
		o.HighQuantile = 0.25
	}
	return o
}

// FuzzPlanCacheKey: the canonical signature may only collide when the
// planner inputs are semantically identical. Whenever two fuzz-derived
// windows produce equal signatures, the models must be structurally equal
// and the options fingerprints byte-equal — and planning both windows (from
// fresh planners) must yield byte-identical plans. Signature determinism is
// asserted on every input.
func FuzzPlanCacheKey(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint8(1), uint8(1), uint8(0), uint8(0))
	f.Add(uint64(1), uint64(2), uint8(3), uint8(3), uint8(0), uint8(0))
	f.Add(uint64(7), uint64(7), uint8(4), uint8(4), uint8(31), uint8(31))
	f.Add(uint64(9), uint64(9), uint8(2), uint8(2), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, nA, nB, bitsA, bitsB uint8) {
		winA := []*model.Model{fuzzModel(seedA, int(nA%6)+1)}
		winB := []*model.Model{fuzzModel(seedB, int(nB%6)+1)}
		for _, m := range [...]*model.Model{winA[0], winB[0]} {
			if err := m.Validate(); err != nil {
				t.Fatalf("fuzzModel produced an invalid model: %v", err)
			}
		}
		optsA, optsB := fuzzOptions(bitsA), fuzzOptions(bitsB)
		fpA, fpB := optionsFingerprint(optsA), optionsFingerprint(optsB)
		sigA := planSignature(modeSinglePlan, 0, fpA, winA)
		sigB := planSignature(modeSinglePlan, 0, fpB, winB)

		// Determinism: recomputing a signature from the same inputs must
		// reproduce it exactly.
		if again := planSignature(modeSinglePlan, 0, fpA, winA); again != sigA {
			t.Fatalf("signature not deterministic: %q vs %q", sigA, again)
		}
		// Epoch separation: the same window at a later epoch never matches.
		if bumped := planSignature(modeSinglePlan, 1, fpA, winA); bumped == sigA {
			t.Fatalf("epoch bump did not change the signature %q", sigA)
		}
		if sigA != sigB {
			return
		}
		// Equal signatures ⇒ semantically identical planner inputs.
		if fpA != fpB {
			t.Fatalf("signatures collide across option fingerprints %q vs %q", fpA, fpB)
		}
		if !sameModels(winA, winB) {
			t.Fatalf("signature %q collides across structurally different windows (digest collision)", sigA)
		}
		// Cross-check: planning both windows yields byte-identical plans.
		// Parallelism is pinned so the comparison isolates the inputs.
		optsA.Parallelism, optsB.Parallelism = 1, 1
		plA, err := NewPlanner(soc.Kirin990(), optsA)
		if err != nil {
			t.Fatal(err)
		}
		plB, err := NewPlanner(soc.Kirin990(), optsB)
		if err != nil {
			t.Fatal(err)
		}
		planA, err := plA.PlanModels(winA)
		if err != nil {
			t.Fatalf("planning window A: %v", err)
		}
		planB, err := plB.PlanModels(winB)
		if err != nil {
			t.Fatalf("planning window B: %v", err)
		}
		if canonicalPlan(planA) != canonicalPlan(planB) {
			t.Fatalf("equal signatures, different plans:\n--- A ---\n%s--- B ---\n%s",
				canonicalPlan(planA), canonicalPlan(planB))
		}
	})
}

// TestPlanCacheHasCachedPlan: the affinity router's read-only peek must
// report membership without counting as cache traffic, without promoting the
// entry in LRU order, and must go stale with the degradation epoch like any
// other signature.
func TestPlanCacheHasCachedPlan(t *testing.T) {
	s := soc.Kirin990()
	pl := newCachedPlanner(t, s, 2)
	winA := mustModels(t, model.SqueezeNet)
	winB := mustModels(t, model.MobileNetV2)
	winC := mustModels(t, model.AlexNet)

	if pl.HasCachedPlan(winA) {
		t.Fatal("empty cache claims a plan for window A")
	}
	for _, win := range [][]*model.Model{winA, winB} {
		if _, err := pl.PlanModels(win); err != nil {
			t.Fatal(err)
		}
	}
	hits0, misses0 := pl.PlanCacheStats()
	if !pl.HasCachedPlan(winA) || !pl.HasCachedPlan(winB) {
		t.Fatal("cached windows not reported")
	}
	if pl.HasCachedPlan(winC) {
		t.Fatal("never-planned window reported cached")
	}
	if h, m := pl.PlanCacheStats(); h != hits0 || m != misses0 {
		t.Errorf("peek counted as cache traffic: hits %d→%d misses %d→%d", hits0, h, misses0, m)
	}

	// The peek must not promote: A is the LRU entry; peeking it and then
	// inserting C must still evict A, not B.
	if !pl.HasCachedPlan(winA) {
		t.Fatal("window A vanished")
	}
	if _, err := pl.PlanModels(winC); err != nil {
		t.Fatal(err)
	}
	if pl.HasCachedPlan(winA) {
		t.Error("peek promoted window A in LRU order (B should have survived)")
	}
	if !pl.HasCachedPlan(winB) || !pl.HasCachedPlan(winC) {
		t.Error("expected windows B and C to survive the eviction")
	}

	// An epoch bump retires every signature.
	if _, err := s.Apply(soc.Event{Kind: soc.EventThermalThrottle, Processor: "cpu-big", Factor: 2}); err != nil {
		t.Fatal(err)
	}
	if pl.HasCachedPlan(winB) || pl.HasCachedPlan(winC) {
		t.Error("plans survive a degradation epoch bump through the peek")
	}

	// Cache disabled: always false, never a panic.
	off := newCachedPlanner(t, soc.Kirin990(), 0)
	if off.HasCachedPlan(winA) {
		t.Error("cache-disabled planner claims a cached plan")
	}
}
