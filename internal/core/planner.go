package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/parallel"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Options tune the planner. The zero value disables every optional step;
// use DefaultOptions for the full Hetero²Pipe configuration.
type Options struct {
	// HighQuantile is the percentile threshold splitting requests into
	// high/low contention classes (Sec. V-B).
	HighQuantile float64
	// Mitigation enables Algorithm 2 request re-ordering.
	Mitigation bool
	// WorkStealing enables Algorithm 3 vertical alignment.
	WorkStealing bool
	// TailOptimization enables the tail-bubble local search (the second
	// phase of Sec. V-C).
	TailOptimization bool
	// ExecOptions configure the executor used to evaluate tail-search
	// candidates (and by callers to run the final schedule).
	ExecOptions pipeline.Options
	// Estimator, when set, predicts contention intensity from PMU features
	// (Eq. 1). When nil, intensities are measured directly from solo
	// profiles — the "external profiling" the estimator exists to avoid,
	// kept as a fallback for custom SoCs without a trained model.
	Estimator *contention.Estimator
	// PlanCache, when positive, bounds an LRU memo of whole plans keyed by
	// the canonical window signature (SoC degradation epoch + options
	// fingerprint + ordered model digests; see plancache.go). A window whose
	// signature matches a memoized plan skips partition, mitigation, work
	// stealing and the tail search entirely and receives a deep copy of the
	// cached plan — byte-identical to replanning, since the signature pins
	// every planner input. 0 (the zero value and the default) disables the
	// cache.
	PlanCache int
	// Parallelism bounds the planner's worker pool: per-model partition
	// DPs, candidate-ordering passes, tail-search variants and
	// work-stealing windows fan out across at most this many goroutines.
	// 1 runs strictly sequentially on the caller's goroutine; values ≤ 0
	// auto-size to runtime.GOMAXPROCS(0). The setting is a pure throughput
	// knob — results are merged in deterministic index order, so the chosen
	// plan is byte-identical at every value (proven by the differential
	// suite; see DESIGN.md §6).
	Parallelism int
	// IncrementalReplan, when true (the default via DefaultOptions), keeps a
	// per-model memo of the Algorithm-1 DP state — every per-stage S* row,
	// the choice tables and the backtracked cuts — and, after a degradation
	// event touching processor set P, resumes each model's DP from
	// stage min(P) instead of refilling the whole table: stage k's row reads
	// only the cost tables of processors ≤ k and the previous row, so rows
	// below the first affected processor are bit-identical and are reused
	// verbatim (see DESIGN.md §14). Bus-only epochs (bandwidth squeezes)
	// reuse entire partitions — solo tables are bus-independent. The output
	// is byte-identical to a from-scratch replan at every event sequence
	// (pinned by the differential suite), so the flag is deliberately absent
	// from the plan-cache options fingerprint.
	IncrementalReplan bool
	// BeamWidth, when positive and below the candidate-ordering count, prunes
	// the candidate sweep: every candidate is first priced by a cheap proxy
	// (its DP-cut schedule executed as-is, no stealing or tail search), only
	// the BeamWidth best-proxy candidates run the full vertical pass, and the
	// sweep then escalates through the remaining candidates in proxy order
	// until the best executed makespan is within (1+BeamEpsilon) of the
	// window's makespan lower bound. Because the lower bound is also a lower
	// bound on the exact planner's makespan, the returned plan is provably
	// within (1+BeamEpsilon)× of exact — unconditionally (see DESIGN.md §14).
	// Zero (and any width ≥ the candidate count, absent a deadline) falls
	// through to the exact sweep, byte-identically.
	BeamWidth int
	// BeamEpsilon is the beam's relative regret bound ε ≥ 0: escalation
	// stops once best ≤ (1+ε)·lower-bound. 0 keeps escalating until the
	// bound is met exactly or every candidate is priced — still cheaper than
	// the exact sweep whenever the bound closes early, and identical in
	// result quality otherwise.
	BeamEpsilon float64
	// AnytimeDeadline, when positive, bounds the beam sweep's wall-clock
	// time: after the first BeamWidth candidates (at least one), escalation
	// stops when the deadline has elapsed, whatever the regret bound says.
	// The deadline trades the determinism invariant for latency — two runs
	// under load may prune at different points — so it is off by default and
	// excluded from the differential suite's byte-identity claims.
	AnytimeDeadline time.Duration
	// Metrics, when set, receives planner observability: plan wall-time
	// (planner_plan_seconds), plans completed (planner_plans_total), DP
	// cells evaluated (planner_dp_cells_total), cost-cache traffic
	// (planner_cache_{hits,misses}_total), incremental partition reuse
	// (planner_incremental_reuse_total) and — when PlanCache is enabled —
	// whole-plan cache traffic (planner_plan_cache_{hits,misses}_total).
	// Nil disables the registry writes
	// at negligible cost; the Planner-level counters (CacheStats, DPCells)
	// are always live. Note ExecOptions.Metrics is deliberately separate:
	// the planner leaves it nil so its internal candidate evaluations do
	// not pollute executor metrics (see DESIGN.md §9).
	Metrics *obs.Registry
	// Logger, when set, receives a debug record per completed plan (wall
	// time, cache traffic) carrying the active plan span id under the "span"
	// key when tracing is armed. Nil disables logging.
	Logger *slog.Logger
}

// DefaultOptions returns the full Hetero²Pipe configuration.
func DefaultOptions() Options {
	return Options{
		HighQuantile:      0.5,
		Mitigation:        true,
		WorkStealing:      true,
		TailOptimization:  true,
		IncrementalReplan: true,
		ExecOptions:       pipeline.DefaultOptions(),
		Parallelism:       runtime.GOMAXPROCS(0),
	}
}

// NoCTOptions returns the paper's "Hetero²Pipe (No C/T)" ablation: no
// contention mitigation, no tail optimisation.
func NoCTOptions() Options {
	o := DefaultOptions()
	o.Mitigation = false
	o.TailOptimization = false
	return o
}

// Planner plans multi-DNN pipelines for one SoC. It is safe for concurrent
// use: all mutable state lives in the lock-guarded cost cache and atomic
// counters.
type Planner struct {
	soc   *soc.SoC
	opts  Options
	cache *costCache
	// planCache memoizes whole plans behind the epoch-keyed window
	// signature; nil when Options.PlanCache ≤ 0. optsFP is the planner's
	// options fingerprint, computed once — it never changes after
	// construction.
	planCache *planCache
	optsFP    string
	// partMemo memoizes per-model Algorithm-1 DP state for incremental
	// replanning; nil when Options.IncrementalReplan is off. lapMemo
	// memoizes Algorithm-2 assignments by class-vector content (a pure
	// function of its inputs, so it never invalidates).
	partMemo *partitionMemo
	lapMemo  *mitigationMemo

	// dpCells accumulates DP cells evaluated across the planner's lifetime.
	dpCells atomic.Uint64
	// incrReuse counts partitions that reused memoized DP state — fully
	// skipped or resumed mid-table — across the planner's lifetime.
	incrReuse atomic.Uint64
	// Registry handles, resolved once at construction (detached no-op
	// instruments when Options.Metrics is nil).
	mPlans        *obs.Counter
	mDPCells      *obs.Counter
	mPlanSeconds  *obs.Histogram
	mFrontiers    *obs.Counter
	mFrontierSize *obs.Histogram
	mIncrReuse    *obs.Counter
}

// frontierSizeBuckets bound the planner_frontier_size histogram: the
// frontier is capped by the candidate count (6 under DefaultOptions),
// with headroom for custom orderings.
func frontierSizeBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16}
}

// NewPlanner validates the SoC and returns a planner.
func NewPlanner(s *soc.SoC, opts Options) (*Planner, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.HighQuantile < 0 || opts.HighQuantile > 1 {
		return nil, fmt.Errorf("core: high quantile %g outside [0,1]", opts.HighQuantile)
	}
	if opts.BeamWidth < 0 {
		return nil, fmt.Errorf("core: beam width %d negative", opts.BeamWidth)
	}
	if opts.BeamEpsilon < 0 || math.IsNaN(opts.BeamEpsilon) || math.IsInf(opts.BeamEpsilon, 0) {
		return nil, fmt.Errorf("core: beam epsilon %g not a finite non-negative value", opts.BeamEpsilon)
	}
	if opts.AnytimeDeadline < 0 {
		return nil, fmt.Errorf("core: anytime deadline %v negative", opts.AnytimeDeadline)
	}
	reg := opts.Metrics
	pl := &Planner{
		soc:           s,
		opts:          opts,
		cache:         newCostCache(s, reg),
		mPlans:        reg.Counter("planner_plans_total"),
		mDPCells:      reg.Counter("planner_dp_cells_total"),
		mPlanSeconds:  reg.Histogram("planner_plan_seconds", obs.LatencyBuckets()),
		mFrontiers:    reg.Counter("planner_frontiers_total"),
		mFrontierSize: reg.Histogram("planner_frontier_size", frontierSizeBuckets()),
		mIncrReuse:    reg.Counter("planner_incremental_reuse_total"),
	}
	if opts.PlanCache > 0 {
		pl.planCache = newPlanCache(opts.PlanCache, reg)
		pl.optsFP = optionsFingerprint(opts)
	}
	if opts.IncrementalReplan {
		pl.partMemo = newPartitionMemo()
		pl.lapMemo = newMitigationMemo()
	}
	return pl, nil
}

// DPCells reports the lifetime count of Algorithm-1 DP cells evaluated by
// this planner — the planning-side work metric behind the run report.
func (pl *Planner) DPCells() uint64 { return pl.dpCells.Load() }

// partition runs the Algorithm-1 DP for one profile while accumulating the
// evaluated-cell count into the planner's lifetime counter and registry. The
// DP runs under a "partition" span whose children are the per-stage dp_row
// spans partitionTable emits.
func (pl *Planner) partition(ctx context.Context, p *profile.Profile) (pipeline.Cuts, float64, error) {
	var sp *obs.Span
	if obs.TracingEnabled(ctx) {
		ctx, sp = obs.StartSpan(ctx, "partition", obs.Str("model", p.Model().Name))
	}
	scr, best, cells, err := partitionTable(ctx, p, false)
	pl.dpCells.Add(cells)
	pl.mDPCells.Add(cells)
	sp.SetAttrs(obs.Int("dp_cells", int64(cells)))
	sp.End()
	if err != nil {
		return nil, 0, err
	}
	cuts, best, err := backtrackCuts(p, scr.choice, best)
	putDPScratch(scr)
	return cuts, best, err
}

// workers resolves Options.Parallelism to a concrete pool size.
func (pl *Planner) workers() int {
	return parallel.Workers(pl.opts.Parallelism)
}

// Plan is the planner's result: the executable schedule plus the
// intermediate artefacts (ordering, classes, per-model cuts) the experiments
// inspect.
type Plan struct {
	// Schedule is the executable pipeline plan (requests in mitigated
	// order).
	Schedule *pipeline.Schedule
	// Order[p] is the original request index now at position p.
	Order []int
	// Classes[p] and Intensities[p] describe the request at position p.
	Classes     []contention.Class
	Intensities []float64
	// Cuts[p] are the stage boundaries of the request at position p.
	Cuts []pipeline.Cuts
	// HorizontalMakespans[p] is the Algorithm-1 bottleneck stage time (s)
	// of the request at position p.
	HorizontalMakespans []float64
}

// cancelErr wraps a context's termination cause so callers can match both
// the core layer and the underlying context sentinel with errors.Is.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("core: planning cancelled: %w", ctx.Err())
}

// PlanModels profiles the requests and runs the two-step optimisation:
// horizontal DP partitioning per model (P1), contention-aware re-ordering
// (P3), and vertical alignment with tail optimisation (P2).
func (pl *Planner) PlanModels(models []*model.Model) (*Plan, error) {
	return pl.PlanModelsContext(context.Background(), models)
}

// PlanModelsContext is PlanModels under a cancellable context: cancellation
// is observed inside the profiling fan-out, the per-model partition DPs and
// every worker-pool loop, and surfaces as an error wrapping ctx.Err().
func (pl *Planner) PlanModelsContext(ctx context.Context, models []*model.Model) (*Plan, error) {
	profiles := make([]*profile.Profile, len(models))
	err := parallel.ForErr(pl.workers(), len(models), func(i int) error {
		if ctx.Err() != nil {
			return cancelErr(ctx)
		}
		p, err := pl.Profile(models[i])
		if err != nil {
			return fmt.Errorf("core: profiling %s: %w", models[i].Name, err)
		}
		profiles[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pl.PlanProfilesContext(ctx, profiles)
}

// PlanProfiles is PlanModels for pre-built profiles (the planner never
// re-profiles, matching the paper's measure-once workflow).
func (pl *Planner) PlanProfiles(profiles []*profile.Profile) (*Plan, error) {
	return pl.PlanProfilesContext(context.Background(), profiles)
}

// PlanProfilesContext is PlanProfiles under a cancellable context. Each call
// runs under a "plan" span carrying the cache-traffic delta of this plan
// (hits on cost tables reused from earlier plans, misses on fresh
// measurements) and emits one debug log record when a logger is configured.
// With Options.PlanCache enabled the span additionally carries a
// "plan_cache" attribute ("hit" or "miss"); on a hit the whole two-step
// optimisation is skipped and the memoized plan is returned as a deep copy.
func (pl *Planner) PlanProfilesContext(ctx context.Context, profiles []*profile.Profile) (*Plan, error) {
	start := time.Now()
	hits0, misses0 := pl.CacheStats()
	var sp *obs.Span
	if obs.TracingEnabled(ctx) {
		ctx, sp = obs.StartSpan(ctx, "plan", obs.Int("profiles", int64(len(profiles))))
	}
	var key planKey
	var models []*model.Model
	if pl.planCache != nil {
		models = make([]*model.Model, len(profiles))
		for i, p := range profiles {
			models[i] = p.Model()
		}
		key = planSignature(modeSinglePlan, pl.soc.Epoch(), pl.optsFP, models)
		if plan := pl.planCache.get(key, models); plan != nil {
			sp.SetAttrs(obs.Str("plan_cache", "hit"))
			sp.End()
			wall := time.Since(start)
			pl.mPlans.Inc()
			pl.mPlanSeconds.ObserveDuration(wall)
			if pl.opts.Logger != nil {
				pl.opts.Logger.Log(ctx, slog.LevelDebug, "plan complete",
					"profiles", len(profiles), "wall", wall,
					"plan_cache", "hit", "span", sp.IDHex())
			}
			return plan, nil
		}
	}
	plan, err := pl.planProfiles(ctx, profiles)
	hits1, misses1 := pl.CacheStats()
	if sp != nil {
		sp.SetAttrs(
			obs.Int("cache_hits", int64(hits1-hits0)),
			obs.Int("cache_misses", int64(misses1-misses0)))
		if pl.planCache != nil {
			sp.SetAttrs(obs.Str("plan_cache", "miss"))
		}
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	if pl.planCache != nil {
		pl.planCache.put(key, models, plan)
	}
	wall := time.Since(start)
	pl.mPlans.Inc()
	pl.mPlanSeconds.ObserveDuration(wall)
	if pl.opts.Logger != nil {
		pl.opts.Logger.Log(ctx, slog.LevelDebug, "plan complete",
			"profiles", len(profiles), "wall", wall,
			"cache_hits", hits1-hits0, "cache_misses", misses1-misses0,
			"span", sp.IDHex())
	}
	return plan, nil
}

// PlanFrontierModels is PlanModels in frontier mode: instead of collapsing
// the candidate sweep to the min-makespan plan, it returns the whole
// non-dominated frontier over (makespan, throughput, energy, peak memory).
func (pl *Planner) PlanFrontierModels(models []*model.Model) (*Frontier, error) {
	return pl.PlanFrontierModelsContext(context.Background(), models)
}

// PlanFrontierModelsContext is PlanFrontierModels under a cancellable
// context.
func (pl *Planner) PlanFrontierModelsContext(ctx context.Context, models []*model.Model) (*Frontier, error) {
	profiles := make([]*profile.Profile, len(models))
	err := parallel.ForErr(pl.workers(), len(models), func(i int) error {
		if ctx.Err() != nil {
			return cancelErr(ctx)
		}
		p, err := pl.Profile(models[i])
		if err != nil {
			return fmt.Errorf("core: profiling %s: %w", models[i].Name, err)
		}
		profiles[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pl.PlanFrontierProfilesContext(ctx, profiles)
}

// PlanFrontierProfiles is PlanFrontierModels for pre-built profiles.
func (pl *Planner) PlanFrontierProfiles(profiles []*profile.Profile) (*Frontier, error) {
	return pl.PlanFrontierProfilesContext(context.Background(), profiles)
}

// PlanFrontierProfilesContext enumerates the Pareto frontier of the
// candidate sweep under a cancellable context. Each call runs under a
// "plan" span with objective="frontier" and a frontier_size attribute.
// With Options.PlanCache enabled whole frontiers are memoized alongside
// single plans under the same epoch/options/digest signature with a
// distinct objective-mode dimension, so the two modes never collide; hits
// return a deep copy. The frontier's first point (min makespan, lowest
// candidate index) is byte-identical to PlanProfilesContext's plan —
// pinned by the differential suite.
func (pl *Planner) PlanFrontierProfilesContext(ctx context.Context, profiles []*profile.Profile) (*Frontier, error) {
	start := time.Now()
	hits0, misses0 := pl.CacheStats()
	var sp *obs.Span
	if obs.TracingEnabled(ctx) {
		ctx, sp = obs.StartSpan(ctx, "plan",
			obs.Int("profiles", int64(len(profiles))), obs.Str("objective", "frontier"))
	}
	var key planKey
	var models []*model.Model
	if pl.planCache != nil {
		models = make([]*model.Model, len(profiles))
		for i, p := range profiles {
			models[i] = p.Model()
		}
		key = planSignature(modeFrontier, pl.soc.Epoch(), pl.optsFP, models)
		if f := pl.planCache.getFrontier(key, models); f != nil {
			sp.SetAttrs(obs.Str("plan_cache", "hit"), obs.Int("frontier_size", int64(f.Size())))
			sp.End()
			wall := time.Since(start)
			pl.mPlans.Inc()
			pl.mFrontiers.Inc()
			pl.mFrontierSize.Observe(float64(f.Size()))
			pl.mPlanSeconds.ObserveDuration(wall)
			if pl.opts.Logger != nil {
				pl.opts.Logger.Log(ctx, slog.LevelDebug, "frontier complete",
					"profiles", len(profiles), "wall", wall, "points", f.Size(),
					"plan_cache", "hit", "span", sp.IDHex())
			}
			return f, nil
		}
	}
	f, err := pl.planFrontierProfiles(ctx, profiles)
	hits1, misses1 := pl.CacheStats()
	if sp != nil {
		sp.SetAttrs(
			obs.Int("cache_hits", int64(hits1-hits0)),
			obs.Int("cache_misses", int64(misses1-misses0)))
		if err == nil {
			sp.SetAttrs(obs.Int("frontier_size", int64(f.Size())))
		}
		if pl.planCache != nil {
			sp.SetAttrs(obs.Str("plan_cache", "miss"))
		}
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	if pl.planCache != nil {
		pl.planCache.putFrontier(key, models, f)
	}
	wall := time.Since(start)
	pl.mPlans.Inc()
	pl.mFrontiers.Inc()
	pl.mFrontierSize.Observe(float64(f.Size()))
	pl.mPlanSeconds.ObserveDuration(wall)
	if pl.opts.Logger != nil {
		pl.opts.Logger.Log(ctx, slog.LevelDebug, "frontier complete",
			"profiles", len(profiles), "wall", wall, "points", f.Size(),
			"cache_hits", hits1-hits0, "cache_misses", misses1-misses0,
			"span", sp.IDHex())
	}
	return f, nil
}

// planFrontierProfiles is the uncached frontier enumeration: the shared
// candidate sweep followed by the dominance filter.
func (pl *Planner) planFrontierProfiles(ctx context.Context, profiles []*profile.Profile) (*Frontier, error) {
	if len(profiles) == 0 {
		// An empty window has exactly one (degenerate) plan; keep Select
		// total by returning a one-point frontier around it.
		empty := &Plan{Schedule: &pipeline.Schedule{SoC: pl.soc}}
		return &Frontier{Points: []FrontierPoint{{Plan: empty}}}, nil
	}
	plans, objs, err := pl.planCandidates(ctx, profiles)
	if err != nil {
		return nil, err
	}
	return newFrontier(plans, objs), nil
}

func (pl *Planner) planProfiles(ctx context.Context, profiles []*profile.Profile) (*Plan, error) {
	if len(profiles) == 0 {
		return &Plan{Schedule: &pipeline.Schedule{SoC: pl.soc}}, nil
	}
	plans, objs, err := pl.planCandidates(ctx, profiles)
	if err != nil {
		return nil, err
	}
	// The first candidate achieving the minimal executed makespan wins,
	// exactly as the sequential strict-improvement loop decides. The
	// comparison is in float seconds, preserving the pre-frontier planner's
	// tie semantics bit for bit. Nil holes are candidates a beam sweep
	// pruned (the exact sweep leaves none).
	var bestPlan *Plan
	var bestSpan float64
	for ci, plan := range plans {
		if plan == nil {
			continue
		}
		if span := objs[ci].Makespan.Seconds(); bestPlan == nil || span < bestSpan {
			bestPlan, bestSpan = plan, span
		}
	}
	return bestPlan, nil
}

// planCandidates runs the full two-step optimisation and returns every
// candidate ordering's plan with its executed objective vector, in
// deterministic candidate order. The single-objective planner collapses
// this sweep to the min-makespan plan; frontier mode keeps the
// non-dominated set — the other axes come for free because every candidate
// is already priced by the executor.
func (pl *Planner) planCandidates(ctx context.Context, profiles []*profile.Profile) ([]*Plan, []Objective, error) {
	m := len(profiles)
	k := pl.soc.NumProcessors()

	// Step 1 — horizontal: Algorithm 1 per model, independently. The DPs
	// share nothing, so they fan out across the worker pool; each writes
	// only its own index.
	cuts := make([]pipeline.Cuts, m)
	makespans := make([]float64, m)
	err := parallel.ForErr(pl.workers(), m, func(i int) error {
		var c pipeline.Cuts
		var best float64
		var err error
		if pl.partMemo != nil {
			c, best, err = pl.partitionMemoized(ctx, profiles[i])
		} else {
			c, best, err = pl.partition(ctx, profiles[i])
		}
		if err != nil {
			return fmt.Errorf("core: partitioning %s: %w", profiles[i].Model().Name, err)
		}
		cuts[i] = c
		makespans[i] = best
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Contention intensities and H/L classes.
	intensities := make([]float64, m)
	for i, p := range profiles {
		if pl.opts.Estimator != nil {
			intensities[i] = pl.opts.Estimator.Intensity(p.Model())
		} else {
			intensities[i] = measuredIntensity(p)
		}
	}
	classes := contention.Classify(intensities, pl.opts.HighQuantile)

	// Step 2a — ordering candidates: identity, a longest-first fill (big
	// horizontal makespans enter the pipeline early so the drain tail is
	// short), shortest-first, and — with mitigation enabled — the
	// Algorithm-2 relocation applied to each. Every candidate runs through
	// the full vertical machinery (step 2b/2c) and the executed makespan
	// picks the winner: the re-ordering is a contention heuristic and the
	// simulator is the oracle.
	candidates := [][]int{identityOrder(m), longestFirstOrder(makespans), shortestFirstOrder(makespans)}
	if pl.opts.Mitigation {
		base := len(candidates)
		for _, cand := range candidates[:base] {
			mitigated := pl.mitigate(permuteClasses(classes, cand), k)
			candidates = append(candidates, composeOrders(cand, mitigated))
		}
	}

	// Beam/anytime mode prunes the sweep with the provable regret bound
	// (see beam.go); the exact sweep below prices every candidate.
	if pl.beamActive(len(candidates)) {
		return pl.beamCandidates(ctx, profiles, cuts, classes, intensities, makespans, candidates, k)
	}

	// Every candidate's vertical pass is independent (each works on its own
	// cut copies); evaluate them across the pool and merge in candidate
	// order, so both the single-objective winner scan and the frontier's
	// candidate-index tie-breaks are byte-identical at every parallelism.
	plans := make([]*Plan, len(candidates))
	objs := make([]Objective, len(candidates))
	err = parallel.ForErr(pl.workers(), len(candidates), func(ci int) error {
		if ctx.Err() != nil {
			return cancelErr(ctx)
		}
		plan, obj, err := pl.verticalPass(ctx, profiles, cuts, classes, intensities, makespans, candidates[ci], k)
		if err != nil {
			return err
		}
		plans[ci] = plan
		objs[ci] = obj
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return plans, objs, nil
}

// verticalPass runs steps 2b (guarded work stealing) and 2c (tail local
// search) for one candidate ordering and returns the plan plus its executed
// objective vector (makespan, throughput, energy, peak memory).
func (pl *Planner) verticalPass(ctx context.Context, profiles []*profile.Profile, cuts []pipeline.Cuts,
	classes []contention.Class, intensities, makespans []float64,
	order []int, k int) (*Plan, Objective, error) {
	m := len(order)
	ordProfiles := make([]*profile.Profile, m)
	ordCuts := make([]pipeline.Cuts, m)
	ordClasses := make([]contention.Class, m)
	ordIntensities := make([]float64, m)
	ordMakespans := make([]float64, m)
	for pos, orig := range order {
		ordProfiles[pos] = profiles[orig]
		c := make(pipeline.Cuts, len(cuts[orig]))
		copy(c, cuts[orig])
		ordCuts[pos] = c
		ordClasses[pos] = classes[orig]
		ordIntensities[pos] = intensities[orig]
		ordMakespans[pos] = makespans[orig]
	}

	// Step 2b — vertical: Algorithm 3 work stealing per contention window,
	// accepted only when the executed makespan improves: alignment reduces
	// the analytic bubbles (Eq. 3) but can extend co-execution overlap,
	// and the slowdown model arbitrates.
	if pl.opts.WorkStealing {
		stolen := make([]pipeline.Cuts, m)
		for i := range ordCuts {
			stolen[i] = make(pipeline.Cuts, len(ordCuts[i]))
			copy(stolen[i], ordCuts[i])
		}
		WorkStealParallel(ordProfiles, stolen, k, pl.workers())
		keep, err := pl.betterCuts(ordProfiles, ordCuts, stolen)
		if err != nil {
			return nil, Objective{}, fmt.Errorf("core: work stealing: %w", err)
		}
		ordCuts = keep
	}

	sched, err := pipeline.FromCuts(pl.soc, ordProfiles, ordCuts)
	if err != nil {
		return nil, Objective{}, fmt.Errorf("core: assembling schedule: %w", err)
	}

	// Step 2c — tail-bubble local search.
	if pl.opts.TailOptimization {
		sched, err = OptimizeTailContext(ctx, sched, pl.opts.ExecOptions, pl.workers())
		if err != nil {
			return nil, Objective{}, fmt.Errorf("core: tail optimisation: %w", err)
		}
		for i := range ordCuts {
			ordCuts[i] = cutsOf(sched, i)
		}
	}

	res, err := pipeline.Execute(sched, pl.opts.ExecOptions)
	if err != nil {
		return nil, Objective{}, fmt.Errorf("core: evaluating candidate order: %w", err)
	}

	return &Plan{
		Schedule:            sched,
		Order:               order,
		Classes:             ordClasses,
		Intensities:         ordIntensities,
		Cuts:                ordCuts,
		HorizontalMakespans: ordMakespans,
	}, objectiveOf(res), nil
}

// objectiveOf projects an executed pipeline result onto the planner's
// objective axes.
func objectiveOf(res *pipeline.Result) Objective {
	return Objective{
		Makespan:        res.Makespan,
		Throughput:      res.Throughput(),
		EnergyJoules:    res.EnergyJoules,
		PeakMemoryBytes: res.PeakMemoryBytes,
	}
}

// measuredIntensity is the fallback ground-truth intensity: solo bus demand
// on the reference (big CPU) processor, or the first processor that
// supports the whole model.
func measuredIntensity(p *profile.Profile) float64 {
	n := p.NumLayers()
	ref := -1
	for k := 0; k < p.NumProcessors(); k++ {
		if p.Table(k).Proc().Kind == soc.KindCPUBig && p.Table(k).Supported(0, n-1) {
			ref = k
			break
		}
	}
	if ref < 0 {
		for k := 0; k < p.NumProcessors(); k++ {
			if p.Table(k).Supported(0, n-1) {
				ref = k
				break
			}
		}
	}
	if ref < 0 {
		return 0
	}
	return p.Footprint(ref, 0, n-1).DemandGBps
}

// OptimizeTail performs the Sec. V-C second phase: a local search that, for
// each request, exhaustively evaluates collapsing it onto each single
// processor (search space K per request, as the paper notes) and keeps
// whichever variant minimises the executed makespan. The sweep runs from
// the pipeline tail backwards — the drain region where bubbles concentrate
// — but covers every request, which also lets the planner discover
// whole-model placements (Band-style) whenever slicing a request does not
// pay its copy overheads. The Fig. 8 reference searchers apply the same
// step to every candidate ordering so their search space strictly contains
// the planner's.
func OptimizeTail(sched *pipeline.Schedule, opts pipeline.Options) (*pipeline.Schedule, error) {
	return OptimizeTailParallel(sched, opts, 1)
}

// OptimizeTailParallel is OptimizeTail over a worker pool; see
// OptimizeTailContext for the cancellable form it wraps.
func OptimizeTailParallel(sched *pipeline.Schedule, opts pipeline.Options, workers int) (*pipeline.Schedule, error) {
	return OptimizeTailContext(context.Background(), sched, opts, workers)
}

// OptimizeTailContext runs the tail search over a worker pool under a
// cancellable context: for each request (still swept tail-first — the sweep
// itself is a dependent chain, each request building on the incumbent
// schedule) the K single-processor variants are evaluated concurrently and
// merged in processor order, so the variant adopted is the one the
// sequential strict-improvement scan would adopt: the lowest-numbered
// processor achieving the minimal makespan. Variants for one request are
// independent because a variant differs from the incumbent only in the
// request's own stage row, which each candidate overwrites wholesale.
func OptimizeTailContext(ctx context.Context, sched *pipeline.Schedule, opts pipeline.Options, workers int) (*pipeline.Schedule, error) {
	m := sched.NumRequests()
	k := sched.NumStages()
	if m == 0 {
		return sched, nil
	}
	base, err := pipeline.Execute(sched, opts)
	if err != nil {
		return nil, err
	}
	bestSched, bestSpan := sched, base.Makespan

	cands := make([]*pipeline.Schedule, k)
	spans := make([]time.Duration, k)
	for i := m - 1; i >= 0; i-- {
		if ctx.Err() != nil {
			return nil, cancelErr(ctx)
		}
		n := sched.Profiles[i].NumLayers()
		incumbent := bestSched
		parallel.For(workers, k, func(proc int) {
			cands[proc] = nil
			if !sched.Profiles[i].Table(proc).Supported(0, n-1) {
				return
			}
			cand := incumbent.Clone()
			cand.Stages[i] = pipeline.SingleProcessor(n, proc, k).RangesOf()
			res, err := pipeline.Execute(cand, opts)
			if err != nil {
				return // infeasible variant; keep searching
			}
			cands[proc] = cand
			spans[proc] = res.Makespan
		})
		for proc := 0; proc < k; proc++ {
			if cands[proc] != nil && spans[proc] < bestSpan {
				bestSched, bestSpan = cands[proc], spans[proc]
			}
		}
	}
	return bestSched, nil
}

// identityOrder returns 0..m-1.
func identityOrder(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// longestFirstOrder sorts request indices by descending horizontal
// makespan, a classic pipeline-fill heuristic: long requests enter first so
// the drain tail is short.
func longestFirstOrder(makespans []float64) []int {
	out := identityOrder(len(makespans))
	sort.SliceStable(out, func(a, b int) bool {
		return makespans[out[a]] > makespans[out[b]]
	})
	return out
}

// shortestFirstOrder sorts request indices by ascending horizontal
// makespan: small requests fill quickly, keeping the fast processors fed
// while the heavy tail drains.
func shortestFirstOrder(makespans []float64) []int {
	out := identityOrder(len(makespans))
	sort.SliceStable(out, func(a, b int) bool {
		return makespans[out[a]] < makespans[out[b]]
	})
	return out
}

// permuteClasses applies an ordering to a class slice.
func permuteClasses(classes []contention.Class, order []int) []contention.Class {
	out := make([]contention.Class, len(order))
	for pos, orig := range order {
		out[pos] = classes[orig]
	}
	return out
}

// composeOrders returns the ordering that first applies base and then the
// relative permutation rel: out[p] = base[rel[p]].
func composeOrders(base, rel []int) []int {
	out := make([]int, len(base))
	for p, r := range rel {
		out[p] = base[r]
	}
	return out
}

// betterCuts returns whichever cut set executes faster for the fixed order.
func (pl *Planner) betterCuts(profiles []*profile.Profile, a, b []pipeline.Cuts) ([]pipeline.Cuts, error) {
	schedA, err := pipeline.FromCuts(pl.soc, profiles, a)
	if err != nil {
		return nil, err
	}
	resA, err := pipeline.Execute(schedA, pl.opts.ExecOptions)
	if err != nil {
		return nil, err
	}
	schedB, err := pipeline.FromCuts(pl.soc, profiles, b)
	if err != nil {
		// Stolen cuts can in principle assemble into an invalid schedule
		// only through a bug; fall back to the originals defensively.
		return a, nil
	}
	resB, err := pipeline.Execute(schedB, pl.opts.ExecOptions)
	if err != nil {
		return a, nil
	}
	if resB.Makespan < resA.Makespan {
		return b, nil
	}
	return a, nil
}

// cutsOf recovers the boundary vector of request i from a schedule.
func cutsOf(sched *pipeline.Schedule, i int) pipeline.Cuts {
	k := sched.NumStages()
	n := sched.Profiles[i].NumLayers()
	c := make(pipeline.Cuts, k+1)
	next := 0
	for st := 0; st < k; st++ {
		c[st] = next
		r := sched.Stages[i][st]
		if !r.Empty() {
			next = r.To + 1
		}
	}
	c[k] = n
	return c
}
