package core

import (
	"math"
	"testing"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

func mustPlanner(t *testing.T, s *soc.SoC, opts Options) *Planner {
	t.Helper()
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	return pl
}

func modelsOf(names ...string) []*model.Model {
	out := make([]*model.Model, len(names))
	for i, n := range names {
		out[i] = model.MustByName(n)
	}
	return out
}

func TestNewPlannerValidation(t *testing.T) {
	bad := soc.Kirin990()
	bad.BusBandwidthGBps = -1
	if _, err := NewPlanner(bad, DefaultOptions()); err == nil {
		t.Error("invalid SoC accepted")
	}
	opts := DefaultOptions()
	opts.HighQuantile = 2
	if _, err := NewPlanner(soc.Kirin990(), opts); err == nil {
		t.Error("invalid quantile accepted")
	}
}

func TestPlanEndToEnd(t *testing.T) {
	pl := mustPlanner(t, soc.Kirin990(), DefaultOptions())
	plan, err := pl.PlanModels(modelsOf(
		model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50,
		model.MobileNetV2, model.ViT))
	if err != nil {
		t.Fatalf("PlanModels: %v", err)
	}
	if err := plan.Schedule.Validate(); err != nil {
		t.Fatalf("planned schedule invalid: %v", err)
	}
	if len(plan.Order) != 6 || len(plan.Classes) != 6 || len(plan.Cuts) != 6 {
		t.Fatalf("plan artefacts incomplete: %+v", plan)
	}
	seen := map[int]bool{}
	for _, v := range plan.Order {
		if seen[v] {
			t.Fatalf("order %v not a permutation", plan.Order)
		}
		seen[v] = true
	}
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	for i, h := range plan.HorizontalMakespans {
		if h <= 0 || math.IsInf(h, 1) {
			t.Errorf("request %d horizontal makespan %g", i, h)
		}
	}
}

// TestPlanBeatsSerial: the headline claim — the planned pipeline is several
// times faster than serial big-CPU execution (the paper's MNN baseline).
func TestPlanBeatsSerial(t *testing.T) {
	s := soc.Kirin990()
	names := []string{model.ResNet50, model.VGG16, model.SqueezeNet,
		model.InceptionV4, model.MobileNetV2, model.GoogLeNet}
	pl := mustPlanner(t, s, DefaultOptions())
	plan, err := pl.PlanModels(modelsOf(names...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	serial := serialCPUMakespan(t, s, names)
	speedup := serial.Seconds() / res.Makespan.Seconds()
	if speedup < 2 {
		t.Errorf("speedup over serial CPU = %.2f×, want ≥ 2× (paper: 4.2× avg)", speedup)
	}
}

func serialCPUMakespan(t *testing.T, s *soc.SoC, names []string) (total time.Duration) {
	t.Helper()
	bigIdx := s.ProcessorsOfKind(soc.KindCPUBig)[0]
	for _, n := range names {
		p := profileFor(t, s, n)
		total += p.SliceTime(bigIdx, 0, p.NumLayers()-1)
	}
	return total
}

// TestPlanFullBeatsNoCT: contention mitigation + tail optimisation must not
// hurt, and across a mixed workload should help (the paper's 1.3× average).
func TestPlanFullBeatsNoCT(t *testing.T) {
	s := soc.Kirin990()
	names := []string{model.SqueezeNet, model.MobileNetV2, model.BERT,
		model.YOLOv4, model.AlexNet, model.ResNet50, model.GoogLeNet, model.ViT}
	full := mustPlanner(t, s, DefaultOptions())
	noct := mustPlanner(t, s, NoCTOptions())
	planFull, err := full.PlanModels(modelsOf(names...))
	if err != nil {
		t.Fatal(err)
	}
	planNoCT, err := noct.PlanModels(modelsOf(names...))
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := pipeline.Execute(planFull.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resNoCT, err := pipeline.Execute(planNoCT.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resFull.Makespan > resNoCT.Makespan {
		t.Errorf("full H²P %v slower than No C/T %v", resFull.Makespan, resNoCT.Makespan)
	}
}

func TestPlanEmpty(t *testing.T) {
	pl := mustPlanner(t, soc.Kirin990(), DefaultOptions())
	plan, err := pl.PlanModels(nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Schedule.NumRequests() != 0 {
		t.Error("empty plan has requests")
	}
}

func TestPlanWithEstimator(t *testing.T) {
	s := soc.Kirin990()
	big := s.Processor("cpu-big")
	est, err := contention.TrainEstimator(big, model.All(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Estimator = est
	pl := mustPlanner(t, s, opts)
	plan, err := pl.PlanModels(modelsOf(model.SqueezeNet, model.BERT, model.ViT, model.ResNet50))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range plan.Intensities {
		if v < 0 {
			t.Errorf("intensity[%d] = %g", i, v)
		}
	}
}

func TestPlanOnAllPresets(t *testing.T) {
	for _, s := range soc.Presets() {
		pl := mustPlanner(t, s, DefaultOptions())
		plan, err := pl.PlanModels(modelsOf(model.BERT, model.SqueezeNet, model.YOLOv4, model.ResNet50))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if _, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions()); err != nil {
			t.Fatalf("%s: execute: %v", s.Name, err)
		}
	}
}

// TestPlannedOrderNeverWorseThanIdentity: the ordering step evaluates the
// identity order among its candidates, so the chosen order can only match
// or beat it.
func TestPlannedOrderNeverWorseThanIdentity(t *testing.T) {
	s := soc.Kirin990()
	names := []string{model.AlexNet, model.MobileNetV2, model.InceptionV4,
		model.ViT, model.GoogLeNet, model.YOLOv4}
	full := mustPlanner(t, s, DefaultOptions())
	planFull, err := full.PlanModels(modelsOf(names...))
	if err != nil {
		t.Fatal(err)
	}
	// Identity-order reference: mitigation and ordering candidates off,
	// everything else identical.
	optsID := DefaultOptions()
	optsID.Mitigation = false
	idPlanner := mustPlanner(t, s, optsID)
	planID, err := idPlanner.PlanModels(modelsOf(names...))
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := pipeline.Execute(planFull.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resID, err := pipeline.Execute(planID.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both planners include the identity candidate; the full planner also
	// sees mitigated candidates, so it can only do as well or better.
	if resFull.Makespan.Seconds() > resID.Makespan.Seconds()*1.001 {
		t.Errorf("full planner %v worse than identity-only %v", resFull.Makespan, resID.Makespan)
	}
	// Class labels still ride along for inspection.
	highs := 0
	for _, c := range planFull.Classes {
		if c == contention.High {
			highs++
		}
	}
	if highs == 0 || highs == len(planFull.Classes) {
		t.Errorf("degenerate H/L split: %v", planFull.Classes)
	}
}
