package core

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
)

// Incremental replanning (Options.IncrementalReplan). A degradation event
// touching processor set P invalidates only the affected (model, processor)
// cost tables; the cost cache already exploits that, but every replan still
// refills each model's Algorithm-1 DP from row zero. The table here lifts
// the same partial-invalidation granularity into the DP itself:
//
// The stage-k row S*(·, k) of the recurrence
//
//	S*(j, k) = min_i max{ S*(i-1, k-1), T_k^e(i, j) }
//
// reads only processor k's cost table and the stage-(k−1) row. Processors
// are identified with stages in capability order, so every row below
// min(P) is computed from cost tables the event did not touch — and since
// the cost cache shares unaffected *profile.Table objects across
// re-assembled profiles, those rows are bit-for-bit identical to what a
// from-scratch refill would produce. The memo therefore keeps every
// per-stage row plus the choice tables, and a replan resumes the DP at the
// first affected stage, reusing the clean prefix verbatim. Bus-only epochs
// (bandwidth squeezes) reuse whole partitions: solo tables are
// bus-capacity independent.
//
// Two validity signals compose:
//
//   - the SoC epoch journal (soc.SoC.AffectedSince) maps the entry's epoch
//     delta to the affected processor set, exactly the set the stream
//     scheduler fed to InvalidateProcessors;
//   - table identity: before reusing rows [0, resume) the memo verifies
//     that each of those stages' *profile.Table pointers is unchanged. This
//     is the authoritative guard — it also covers caller-built profiles
//     that never went through the planner's cost cache, and journal
//     eviction or manual BumpEpoch (both of which answer "unknown" and
//     degrade to a full refill).
//
// Entries are immutable once published: a resume allocates fresh rows for
// the recomputed stages and shares the read-only prefix, so concurrent
// planning fan-outs never observe a half-written table. The memo survives
// InvalidateProcessors (that is its purpose — the journal reconciles) and
// is dropped by InvalidateCache alongside everything else.

// partitionEntry is one model's memoized DP state.
type partitionEntry struct {
	// model is the structural identity guard behind the name-based key.
	model *model.Model
	// epoch is the SoC degradation epoch the last recomputed stage was
	// filled at.
	epoch uint64
	// tables[s] is the cost-table object stage s's row was computed
	// against — the pointer-identity reuse guard.
	tables []*profile.Table
	// rows[s][j+1] = S*(j, s); rows[s][0] is the empty prefix.
	rows [][]float64
	// choice[s][j+1] is the start layer stage s chose for prefix j.
	choice [][]int
	// cuts/best are the backtracked result; cuts is nil when best is +Inf
	// (no feasible partition at this epoch — memoized so retries at the
	// same epoch fail fast and recovery events resume instead of refilling).
	cuts pipeline.Cuts
	best float64
}

// partitionMemo maps cacheKey(model) → the model's memoized DP state. All
// methods are safe for concurrent use.
type partitionMemo struct {
	mu      sync.Mutex
	entries map[string]*partitionEntry
}

func newPartitionMemo() *partitionMemo {
	return &partitionMemo{entries: make(map[string]*partitionEntry)}
}

func (pm *partitionMemo) lookup(key string) *partitionEntry {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.entries[key]
}

func (pm *partitionMemo) store(key string, e *partitionEntry) {
	pm.mu.Lock()
	pm.entries[key] = e
	pm.mu.Unlock()
}

func (pm *partitionMemo) invalidate() {
	pm.mu.Lock()
	pm.entries = make(map[string]*partitionEntry)
	pm.mu.Unlock()
}

// resumeStage decides how much of a memo entry survives for profile p at
// the planner's current epoch: stages [0, resume) are reusable. k is the
// stage count; resume == k means the whole partition (rows, cuts, best) is
// still valid.
func (pl *Planner) resumeStage(e *partitionEntry, p *profile.Profile, k int) int {
	resume := k
	if e.epoch != pl.soc.Epoch() {
		procs, _, ok := pl.soc.AffectedSince(e.epoch)
		switch {
		case !ok:
			resume = 0 // unknown delta: assume everything moved
		case len(procs) > 0:
			resume = procs[0] // sorted ascending: first affected stage
		}
		// Bus-only delta: solo tables unaffected, resume stays k.
	}
	// Authoritative guard: stage s's row depends on the tables of stages
	// ≤ s, so reuse requires pointer identity across the whole prefix.
	for s := 0; s < resume; s++ {
		if e.tables[s] != p.Table(s) {
			return s
		}
	}
	return resume
}

// partitionMemoized is Planner.partition with the DP memo: it reuses or
// resumes the memoized table when the epoch journal and table identity
// allow, and refills from scratch otherwise — byte-identical output either
// way (the differential suite pins it). Runs under a "partition" span
// carrying dp_cells and, when anything was reused, a resume_stage
// attribute.
func (pl *Planner) partitionMemoized(ctx context.Context, p *profile.Profile) (pipeline.Cuts, float64, error) {
	n := p.NumLayers()
	k := p.NumProcessors()
	if n == 0 || k == 0 {
		return nil, 0, ErrInfeasiblePartition
	}
	var sp *obs.Span
	if obs.TracingEnabled(ctx) {
		ctx, sp = obs.StartSpan(ctx, "partition", obs.Str("model", p.Model().Name))
	}

	key := cacheKey(p.Model())
	entry := pl.partMemo.lookup(key)
	resume := 0
	if entry != nil && sameModel(entry.model, p.Model()) &&
		len(entry.rows) == k && len(entry.tables) == k && len(entry.rows[0]) == n+1 {
		resume = pl.resumeStage(entry, p, k)
	} else {
		entry = nil
	}

	if entry != nil && resume == k {
		// Whole partition reused: same-epoch repeat window, or a bus-only
		// epoch delta. Zero DP cells evaluated.
		pl.incrReuse.Add(1)
		pl.mIncrReuse.Inc()
		sp.SetAttrs(obs.Int("dp_cells", 0), obs.Int("resume_stage", int64(k)))
		sp.End()
		if entry.epoch != pl.soc.Epoch() {
			// Re-anchor the entry so the next lookup's journal walk starts
			// from the current epoch (the journal is bounded).
			pl.partMemo.store(key, &partitionEntry{
				model: entry.model, epoch: pl.soc.Epoch(), tables: entry.tables,
				rows: entry.rows, choice: entry.choice, cuts: entry.cuts, best: entry.best,
			})
		}
		if math.IsInf(entry.best, 1) {
			return nil, 0, ErrInfeasiblePartition
		}
		return append(pipeline.Cuts(nil), entry.cuts...), entry.best, nil
	}

	// Refill stages [resume, k), sharing the clean prefix rows read-only.
	rows := make([][]float64, k)
	choice := make([][]int, k)
	for s := 0; s < resume; s++ {
		rows[s] = entry.rows[s]
		choice[s] = entry.choice[s]
	}
	cells, err := fillPartitionRows(ctx, p, rows, choice, resume)
	pl.dpCells.Add(cells)
	pl.mDPCells.Add(cells)
	sp.SetAttrs(obs.Int("dp_cells", int64(cells)))
	if resume > 0 {
		pl.incrReuse.Add(1)
		pl.mIncrReuse.Inc()
		sp.SetAttrs(obs.Int("resume_stage", int64(resume)))
	}
	sp.End()
	if err != nil {
		return nil, 0, err
	}

	tables := make([]*profile.Table, k)
	for s := 0; s < k; s++ {
		tables[s] = p.Table(s)
	}
	fresh := &partitionEntry{
		model: p.Model(), epoch: pl.soc.Epoch(), tables: tables,
		rows: rows, choice: choice, best: rows[k-1][n],
	}
	if math.IsInf(fresh.best, 1) {
		pl.partMemo.store(key, fresh)
		return nil, 0, ErrInfeasiblePartition
	}
	cuts, best, err := backtrackCuts(p, choice, fresh.best)
	if err != nil {
		return nil, 0, err
	}
	fresh.cuts = append(pipeline.Cuts(nil), cuts...)
	pl.partMemo.store(key, fresh)
	return cuts, best, nil
}

// fillPartitionRows fills DP rows [from, k) of the row-retaining table —
// the same recurrence, cell order, pruning and cancellation cadence as
// partitionTable, but every stage's row is kept (the memo's raw material)
// instead of rolling two buffers. Rows below from must already be
// populated; rows at or above from are allocated here. Returns the DP
// cells evaluated.
func fillPartitionRows(ctx context.Context, p *profile.Profile, rows [][]float64, choice [][]int, from int) (uint64, error) {
	n := p.NumLayers()
	k := p.NumProcessors()
	var cells uint64
	for s := from; s < k; s++ {
		rows[s] = make([]float64, n+1)
		choice[s] = make([]int, n+1)
	}
	if from == 0 {
		rows[0][0] = 0
		choice[0][0] = 0
		for j := 0; j < n; j++ {
			rows[0][j+1] = sliceSeconds(p, 0, 0, j)
			choice[0][j+1] = 0
			cells++
		}
		from = 1
	}
	rowParent := obs.SpanFromContext(ctx)
	for stage := from; stage < k; stage++ {
		var row *obs.Span
		if rowParent != nil {
			row = rowParent.StartChild("dp_row",
				obs.Int("stage", int64(stage)), obs.Int("layers", int64(n)))
		}
		prev, dp := rows[stage-1], rows[stage]
		dp[0] = prev[0]
		choice[stage][0] = 0
		for j := 0; j < n; j++ {
			if j%cancelCheckStride == 0 && ctx.Err() != nil {
				row.End()
				return cells, cancelErr(ctx)
			}
			bestI, bestV := cellByScan(p, prev, stage, j)
			dp[j+1] = bestV
			choice[stage][j+1] = bestI
			cells++
		}
		row.End()
	}
	return cells, nil
}

// IncrementalReuse reports the lifetime count of partitions served from the
// incremental-replanning memo — fully reused or resumed mid-table. Always
// zero when Options.IncrementalReplan is off.
func (pl *Planner) IncrementalReuse() uint64 { return pl.incrReuse.Load() }

// mitigationMemo caches Algorithm-2 assignments by content: Mitigate is a
// pure function of (class vector, stage count), so entries never go stale
// — not across degradation events, not across SoC swaps. Bounded by reset:
// the key space in practice is tiny (class vectors are at most
// MaxWindow long over a two-letter alphabet).
type mitigationMemo struct {
	mu sync.Mutex
	m  map[string][]int
}

// mitigationMemoCap bounds the memo; on overflow the map is reset (the
// working set re-fills within one window).
const mitigationMemoCap = 512

func newMitigationMemo() *mitigationMemo {
	return &mitigationMemo{m: make(map[string][]int)}
}

func (mm *mitigationMemo) mitigate(classes []contention.Class, k int) []int {
	var b strings.Builder
	b.Grow(len(classes) + 8)
	for _, c := range classes {
		b.WriteByte(byte('0' + int(c)))
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	key := b.String()
	mm.mu.Lock()
	if v, ok := mm.m[key]; ok {
		mm.mu.Unlock()
		return v
	}
	mm.mu.Unlock()
	v := Mitigate(classes, k)
	mm.mu.Lock()
	if len(mm.m) >= mitigationMemoCap {
		mm.m = make(map[string][]int)
	}
	mm.m[key] = v
	mm.mu.Unlock()
	return v
}

// mitigate routes through the content memo when incremental replanning is
// on. The returned permutation is shared and must not be mutated
// (composeOrders only reads it).
func (pl *Planner) mitigate(classes []contention.Class, k int) []int {
	if pl.lapMemo == nil {
		return Mitigate(classes, k)
	}
	return pl.lapMemo.mitigate(classes, k)
}
