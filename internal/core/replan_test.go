package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// newReplanPlanner builds a planner with incremental replanning forced to
// the given setting.
func newReplanPlanner(t testing.TB, s *soc.SoC, incremental bool) *Planner {
	t.Helper()
	opts := DefaultOptions()
	opts.IncrementalReplan = incremental
	pl, err := NewPlanner(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestDifferentialIncrementalReplan fuzzes degradation event sequences
// against two planners — incremental replanning on and off — over their own
// identically-degraded SoC instances, and requires the plans to stay
// byte-identical after every event. This is the incremental tentpole's core
// soundness claim: resuming the partition DP from memoized prefix rows is
// invisible in the output, window after window, event after event.
func TestDifferentialIncrementalReplan(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	windows := [][]string{
		{model.YOLOv4, model.SqueezeNet, model.BERT},
		{model.ResNet50, model.MobileNetV2, model.GoogLeNet, model.SqueezeNet},
		{model.ViT, model.AlexNet},
	}
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for wi, names := range windows {
		models := mustModels(t, names...)
		sIncr, sFull := soc.Kirin990(), soc.Kirin990()
		plIncr := newReplanPlanner(t, sIncr, true)
		plFull := newReplanPlanner(t, sFull, false)

		comparePlan := func(step string) {
			t.Helper()
			pi, errI := plIncr.PlanModels(models)
			pf, errF := plFull.PlanModels(models)
			if (errI == nil) != (errF == nil) {
				t.Fatalf("window %d %s: incremental err %v vs full err %v", wi, step, errI, errF)
			}
			if errI != nil {
				if !errors.Is(errI, ErrInfeasiblePartition) {
					t.Fatalf("window %d %s: %v", wi, step, errI)
				}
				return
			}
			if got, want := canonicalPlan(pi), canonicalPlan(pf); got != want {
				t.Fatalf("window %d %s: incremental plan differs from from-scratch:\n--- incremental ---\n%s--- full ---\n%s",
					wi, step, got, want)
			}
		}
		comparePlan("initial")
		// Replanning the same window at the same epoch must fully reuse.
		before := plIncr.IncrementalReuse()
		comparePlan("repeat")
		if plIncr.IncrementalReuse() <= before {
			t.Fatalf("window %d: same-epoch replan did not reuse the partition memo", wi)
		}

		offline := map[string]bool{}
		for round := 0; round < rounds; round++ {
			ev := randomEvent(rng, sIncr, offline)
			affI, err := sIncr.Apply(ev)
			if err != nil {
				t.Fatal(err)
			}
			affF, err := sFull.Apply(ev)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(affI) != fmt.Sprint(affF) {
				t.Fatalf("window %d round %d: affected sets diverged: %v vs %v", wi, round, affI, affF)
			}
			plIncr.InvalidateProcessors(affI...)
			plFull.InvalidateProcessors(affF...)
			comparePlan(fmt.Sprintf("round %d after %s", round, ev))
		}
		if plIncr.IncrementalReuse() == 0 {
			t.Errorf("window %d: incremental planner never reused the memo", wi)
		}
	}
}

// randomEvent draws one state-changing degradation event, keeping at least
// two processors online so windows stay (mostly) feasible.
func randomEvent(rng *rand.Rand, s *soc.SoC, offline map[string]bool) soc.Event {
	for {
		p := s.Processors[rng.Intn(len(s.Processors))].ID
		switch rng.Intn(5) {
		case 0:
			return soc.Event{Kind: soc.EventThermalThrottle, Processor: p, Factor: 1 + rng.Float64()*2}
		case 1:
			return soc.Event{Kind: soc.EventFrequencyScale, Processor: p, Factor: 0.4 + rng.Float64()*0.6}
		case 2:
			if len(offline) >= len(s.Processors)-2 || offline[p] {
				continue
			}
			offline[p] = true
			return soc.Event{Kind: soc.EventProcessorOffline, Processor: p}
		case 3:
			if !offline[p] {
				continue
			}
			delete(offline, p)
			return soc.Event{Kind: soc.EventProcessorOnline, Processor: p}
		default:
			return soc.Event{Kind: soc.EventBandwidthSqueeze, Factor: 0.3 + rng.Float64()*0.7}
		}
	}
}

// TestIncrementalReplanSameEpochFullReuse pins the zero-work fast path: a
// second plan of the same window at the same epoch runs zero DP cells.
func TestIncrementalReplanSameEpochFullReuse(t *testing.T) {
	s := soc.Kirin990()
	pl := newReplanPlanner(t, s, true)
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	cells := pl.DPCells()
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	if delta := pl.DPCells() - cells; delta != 0 {
		t.Errorf("same-epoch replan evaluated %d DP cells, want 0", delta)
	}
	if pl.IncrementalReuse() == 0 {
		t.Error("IncrementalReuse counter not incremented")
	}
}

// TestIncrementalReplanBusOnlyFullReuse pins the bus-only shortcut: a
// bandwidth squeeze bumps the epoch but stales no solo table, so the whole
// partition is reused with zero DP cells.
func TestIncrementalReplanBusOnlyFullReuse(t *testing.T) {
	s := soc.Kirin990()
	pl := newReplanPlanner(t, s, true)
	models := mustModels(t, model.ResNet50, model.SqueezeNet)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	affected, err := s.Apply(soc.Event{Kind: soc.EventBandwidthSqueeze, Factor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pl.InvalidateProcessors(affected...)
	cells := pl.DPCells()
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if delta := pl.DPCells() - cells; delta != 0 {
		t.Errorf("bus-only replan evaluated %d DP cells, want 0", delta)
	}
	// The reused partition must still price bit-identically to a fresh
	// planner on an identically-squeezed SoC.
	s2 := soc.Kirin990()
	if _, err := s2.Apply(soc.Event{Kind: soc.EventBandwidthSqueeze, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	fresh, err := newReplanPlanner(t, s2, true).PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalPlan(plan) != canonicalPlan(fresh) {
		t.Error("bus-only reused plan differs from a fresh planner's")
	}
}

// TestIncrementalReplanResumesMidTable degrades one late-stage processor and
// requires the replan to refill strictly fewer DP cells than the first full
// fill — the prefix rows below the affected stage were reused.
func TestIncrementalReplanResumesMidTable(t *testing.T) {
	s := soc.Kirin990()
	pl := newReplanPlanner(t, s, true)
	models := mustModels(t, model.ResNet50)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	fullCells := pl.DPCells()
	if fullCells == 0 {
		t.Fatal("first plan ran no DP cells")
	}
	// Throttle the last processor in capability order: every row below its
	// stage survives.
	last := s.Processors[len(s.Processors)-1].ID
	affected, err := s.Apply(soc.Event{Kind: soc.EventThermalThrottle, Processor: last, Factor: 1.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 {
		t.Fatalf("affected = %v, want one processor", affected)
	}
	pl.InvalidateProcessors(affected...)
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	resumedCells := pl.DPCells() - fullCells
	if resumedCells == 0 || resumedCells >= fullCells {
		t.Errorf("resumed replan ran %d DP cells, want 0 < cells < %d (prefix reuse)", resumedCells, fullCells)
	}
	// Byte-identical to a fresh planner on an identically-degraded SoC.
	s2 := soc.Kirin990()
	if _, err := s2.Apply(soc.Event{Kind: soc.EventThermalThrottle, Processor: last, Factor: 1.7}); err != nil {
		t.Fatal(err)
	}
	fresh, err := newReplanPlanner(t, s2, false).PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalPlan(plan) != canonicalPlan(fresh) {
		t.Error("resumed plan differs from a from-scratch planner's")
	}
}

// TestIncrementalReplanSurvivesBumpEpoch pins the wildcard path: a manual
// BumpEpoch makes the journal unanswerable, so the memo must degrade to a
// full refill — never serve stale rows.
func TestIncrementalReplanSurvivesBumpEpoch(t *testing.T) {
	s := soc.Kirin990()
	pl := newReplanPlanner(t, s, true)
	models := mustModels(t, model.SqueezeNet)
	if _, err := pl.PlanModels(models); err != nil {
		t.Fatal(err)
	}
	s.BumpEpoch()
	pl.InvalidateCache()
	cells := pl.DPCells()
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if pl.DPCells() == cells {
		t.Error("plan after BumpEpoch+InvalidateCache reused the dropped memo")
	}
	fresh, err := newReplanPlanner(t, soc.Kirin990(), false).PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalPlan(plan) != canonicalPlan(fresh) {
		t.Error("post-bump plan differs from a fresh planner's")
	}
}
