package core

import (
	"math/big"

	"hetero2pipe/internal/parallel"
)

// Search-space accounting (paper Appendix A, Eq. 12–14). The paper counts
// the feasible processor pipelines of a consumer SoC and the number of
// distinct split-point choices per model to motivate why a two-step
// decomposition is necessary. The published Eq. (12) is partially garbled in
// the text, so this file implements the count from first principles under
// the same assumptions: the big and small CPU clusters of C_b and C_s cores
// can each be partitioned into 1..C contiguous per-core pipeline stages (a
// composition, C(c−1, p−1) variants for p stages), the GPU and NPU are
// indivisible optional stages, and a pipeline needs at least 2 stages.

// binomial returns C(n, k) as int64 (0 when out of range).
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

// clusterArrangements returns the number of ways to run p pipeline stages on
// a c-core cluster: compositions of c into p ordered positive parts. p = 0
// (cluster unused) counts one arrangement.
func clusterArrangements(c, p int) int64 {
	if p == 0 {
		return 1
	}
	return binomial(c-1, p-1)
}

// FeasiblePipelines counts the processor pipelines of an SoC with cBig big
// cores, cSmall small cores, one GPU and one NPU: every combination of big
// stages P_b ∈ [0, cBig], small stages P_s ∈ [0, cSmall] and accelerator
// subset (none, GPU, NPU, both) with total stages ≥ 2. For the paper's
// example (4+4 cores) this yields 319 pipelines; the paper reports 449 from
// its Eq. (12), whose printed form does not evaluate — the order of
// magnitude and the growth behaviour are what the argument uses.
func FeasiblePipelines(cBig, cSmall int) int64 {
	var total int64
	for pb := 0; pb <= cBig; pb++ {
		for ps := 0; ps <= cSmall; ps++ {
			for acc := 0; acc <= 2; acc++ {
				ways := int64(1)
				if acc == 1 {
					ways = 2 // GPU or NPU
				}
				if pb+ps+acc < 2 {
					continue
				}
				total += clusterArrangements(cBig, pb) * clusterArrangements(cSmall, ps) * ways
			}
		}
	}
	return total
}

// SplitChoices counts the distinct split-point choices of one n-layer model
// over pipelines of 2..maxStages stages: Σ_P C(n−1, P−1) · S_P, where S_P is
// the number of feasible P-stage pipelines (Eq. 14's per-model factor).
func SplitChoices(n, cBig, cSmall int) *big.Int {
	maxStages := cBig + cSmall + 2
	total := big.NewInt(0)
	for p := 2; p <= maxStages; p++ {
		sp := pipelinesWithStages(cBig, cSmall, p)
		if sp == 0 {
			continue
		}
		splits := new(big.Int).Binomial(int64(n-1), int64(p-1))
		splits.Mul(splits, big.NewInt(sp))
		total.Add(total, splits)
	}
	return total
}

// pipelinesWithStages counts feasible pipelines with exactly p stages.
func pipelinesWithStages(cBig, cSmall, p int) int64 {
	if p < 2 {
		return 0
	}
	var total int64
	for pb := 0; pb <= cBig && pb <= p; pb++ {
		for ps := 0; ps <= cSmall && pb+ps <= p; ps++ {
			acc := p - pb - ps
			if acc < 0 || acc > 2 {
				continue
			}
			ways := int64(1)
			if acc == 1 {
				ways = 2
			}
			total += clusterArrangements(cBig, pb) * clusterArrangements(cSmall, ps) * ways
		}
	}
	return total
}

// TotalSearchSpace multiplies the per-model split choices over a request set
// (Eq. 14): the exponential blow-up that motivates the two-step planner.
// The per-model counts are independent big-integer computations, so they
// fan out across the machine; the product is taken in index order (and is
// commutative besides), so the result is exact and deterministic.
func TotalSearchSpace(layerCounts []int, cBig, cSmall int) *big.Int {
	perModel := make([]*big.Int, len(layerCounts))
	parallel.For(0, len(layerCounts), func(i int) {
		perModel[i] = SplitChoices(layerCounts[i], cBig, cSmall)
	})
	total := big.NewInt(1)
	for _, c := range perModel {
		total.Mul(total, c)
	}
	return total
}
