package core

import (
	"math/big"
	"testing"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{3, 0, 1}, {3, 1, 3}, {3, 3, 1}, {27, 9, 4686825},
		{3, 4, 0}, {3, -1, 0}, {0, 0, 1},
	}
	for _, tc := range cases {
		if got := binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("C(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestFeasiblePipelines(t *testing.T) {
	// The paper's example SoC: 4 big + 4 small cores, GPU, NPU. The count
	// is in the hundreds (the paper's Eq. 12 prints 449; our
	// first-principles count gives 319 — same order, same argument).
	got := FeasiblePipelines(4, 4)
	if got < 200 || got > 600 {
		t.Errorf("FeasiblePipelines(4,4) = %d, want hundreds", got)
	}
	// Growth with core count.
	if FeasiblePipelines(6, 4) <= got {
		t.Error("pipeline count must grow with cores")
	}
	// Degenerate: no CPU cores still leaves GPU+NPU.
	if small := FeasiblePipelines(0, 0); small != 1 {
		t.Errorf("FeasiblePipelines(0,0) = %d, want 1 (GPU+NPU)", small)
	}
}

func TestSplitChoices(t *testing.T) {
	// MobileNetV2's 28-layer example: the paper quotes ~3.6B split points
	// under its Eq. (12) pipeline count; our first-principles count gives
	// ~7.1e7 — the same "far too large to search" conclusion.
	got := SplitChoices(28, 4, 4)
	lo := big.NewInt(10_000_000) // 1e7
	hi := new(big.Int).SetInt64(1e12)
	if got.Cmp(lo) < 0 || got.Cmp(hi) > 0 {
		t.Errorf("SplitChoices(28) = %s, want within [1e7, 1e12]", got)
	}
	// Monotone in n.
	if SplitChoices(40, 4, 4).Cmp(got) <= 0 {
		t.Error("split choices must grow with layer count")
	}
}

func TestTotalSearchSpaceExplodes(t *testing.T) {
	// {MobileNetV2, VGG16, BERT}-scale layer counts: the product must dwarf
	// any single model's space — the exponential growth the two-step
	// decomposition exists to avoid.
	single := SplitChoices(28, 4, 4)
	total := TotalSearchSpace([]int{28, 16, 100}, 4, 4)
	if total.Cmp(single) <= 0 {
		t.Error("total search space not larger than single model")
	}
	if total.BitLen() < 60 {
		t.Errorf("total search space only %d bits; expected astronomical", total.BitLen())
	}
}

func TestClusterArrangements(t *testing.T) {
	if got := clusterArrangements(4, 0); got != 1 {
		t.Errorf("unused cluster = %d, want 1", got)
	}
	if got := clusterArrangements(4, 2); got != 3 {
		t.Errorf("C(3,1) = %d, want 3", got)
	}
	if got := clusterArrangements(4, 5); got != 0 {
		t.Errorf("over-partitioned cluster = %d, want 0", got)
	}
}
