package core

import (
	"math"
	"sync"

	"hetero2pipe/internal/parallel"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
)

// Vertical alignment (Algorithm 3). After horizontal partitioning optimises
// every model in isolation, neighbouring models' stage times are misaligned
// and the pipeline accumulates bubbles (Eq. 3). Work stealing moves layers
// across the stage boundaries of the non-critical models so their per-stage
// times approach the critical model's, which drains bubbles toward the tail
// of the pipeline; a final local search over the K processors removes the
// tail bubbles themselves.

// stageSeconds returns the per-stage solo durations of cuts on p.
func stageSeconds(p *profile.Profile, cuts pipeline.Cuts) []float64 {
	return stageSecondsInto(make([]float64, 0, len(cuts)-1), p, cuts)
}

// stageSecondsInto is stageSeconds appending into a caller-owned buffer —
// the alignment loops run once per window per candidate ordering, so they
// feed pooled vectors here instead of allocating.
func stageSecondsInto(dst []float64, p *profile.Profile, cuts pipeline.Cuts) []float64 {
	k := len(cuts) - 1
	for s := 0; s < k; s++ {
		dst = append(dst, sliceSeconds(p, s, cuts[s], cuts[s+1]-1))
	}
	return dst
}

// totalSeconds returns Σ_k T_k — the critical-path metric of Algorithm 3.
func totalSeconds(p *profile.Profile, cuts pipeline.Cuts) float64 {
	var sum float64
	k := len(cuts) - 1
	for s := 0; s < k; s++ {
		v := sliceSeconds(p, s, cuts[s], cuts[s+1]-1)
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		sum += v
	}
	return sum
}

// stealScratch pools the per-window alignment vectors: the critical model's
// stage times, the per-model target vector, and the trial cut buffer the
// boundary search walks. One scratch serves one AlignWindow call; windows
// aligned in parallel each take their own.
type stealScratch struct {
	crit, target []float64
	trial        pipeline.Cuts
}

var stealScratchPool = sync.Pool{New: func() any { return new(stealScratch) }}

// AlignWindow applies work stealing inside one contention window: profiles
// and cuts are the window's models (first slice = window models in order),
// critical is the index of the critical path within the window. Every other
// model's boundaries are adjusted layer-by-layer so its stage times track
// the critical model's stage times (the T_{k±j} − T_k^{i_c} → 0 loops of
// Algorithm 3). Models after the critical path steal rightward (work flows
// toward later stages); models before it steal leftward.
func AlignWindow(profiles []*profile.Profile, cuts []pipeline.Cuts, critical int) {
	if critical < 0 || critical >= len(profiles) {
		return
	}
	scr := stealScratchPool.Get().(*stealScratch)
	scr.crit = stageSecondsInto(scr.crit[:0], profiles[critical], cuts[critical])
	crit := scr.crit
	k := len(crit)
	if cap(scr.target) < k {
		scr.target = make([]float64, k)
	} else {
		scr.target = scr.target[:k]
	}
	target := scr.target
	for i := range profiles {
		if i == critical {
			continue
		}
		// The Eq. (3) bubble columns are anti-diagonals: request i's stage
		// s co-executes with request i+1's stage s−1. So the model at
		// offset d from the critical path aligns its stage s to the
		// critical model's stage s+d (Algorithm 3's
		// T_{k−1}^{i_c+1} ≈ T_k^{i_c}), clamped at the pipeline ends.
		d := i - critical
		for s := 0; s < k; s++ {
			idx := s + d
			if idx < 0 {
				idx = 0
			}
			if idx >= k {
				idx = k - 1
			}
			target[s] = crit[idx]
		}
		cuts[i] = alignToTargetScratch(profiles[i], cuts[i], target, i > critical, scr)
	}
	stealScratchPool.Put(scr)
}

// alignToTarget greedily moves single layers across stage boundaries so the
// model's stage times approach target (in seconds, per stage). rightward
// controls the sweep direction: true processes boundaries left-to-right
// (excess work flows to later stages), false the reverse.
func alignToTarget(p *profile.Profile, cuts pipeline.Cuts, target []float64, rightward bool) pipeline.Cuts {
	scr := stealScratchPool.Get().(*stealScratch)
	out := alignToTargetScratch(p, cuts, target, rightward, scr)
	stealScratchPool.Put(scr)
	return out
}

// alignToTargetScratch is alignToTarget drawing its trial buffer from a
// caller-held scratch. The returned cut vector is always freshly allocated
// (it replaces an entry of the caller's cuts slice and outlives the
// scratch).
func alignToTargetScratch(p *profile.Profile, cuts pipeline.Cuts, target []float64, rightward bool, scr *stealScratch) pipeline.Cuts {
	k := len(cuts) - 1
	out := make(pipeline.Cuts, len(cuts))
	copy(out, cuts)

	if cap(scr.trial) < len(out) {
		scr.trial = make(pipeline.Cuts, len(out))
	} else {
		scr.trial = scr.trial[:len(out)]
	}
	trial := scr.trial

	// Boundaries sweep left-to-right when stealing rightward, reversed
	// otherwise.
	b, step := 1, 1
	if !rightward {
		b, step = k-1, -1
	}
	for ; b >= 1 && b < k; b += step {
		// Boundary b separates stage b-1 (layers [out[b-1], out[b]-1]) and
		// stage b. Move it to minimise the deviation of stage b-1's time
		// from target[b-1], keeping both sides feasible.
		best := out[b]
		bestDev := boundaryDeviation(p, out, b, target)
		// Try moving left (shrink stage b-1) and right (grow stage b-1).
		for _, dir := range [2]int{-1, 1} {
			copy(trial, out)
			for {
				next := trial[b] + dir
				if next < trial[b-1] || next > trial[b+1] {
					break
				}
				trial[b] = next
				dev := boundaryDeviation(p, trial, b, target)
				if math.IsInf(dev, 1) {
					continue // pass through infeasible intermediate points
				}
				if dev < bestDev {
					bestDev = dev
					best = next
				}
			}
		}
		out[b] = best
	}
	return out
}

// boundaryDeviation scores how far the stages adjacent to boundary b are
// from their targets (absolute deviations, +Inf if either side infeasible).
func boundaryDeviation(p *profile.Profile, cuts pipeline.Cuts, b int, target []float64) float64 {
	left := sliceSeconds(p, b-1, cuts[b-1], cuts[b]-1)
	right := sliceSeconds(p, b, cuts[b], cuts[b+1]-1)
	if math.IsInf(left, 1) || math.IsInf(right, 1) {
		return math.Inf(1)
	}
	return math.Abs(left-target[b-1]) + math.Abs(right-target[b])
}

// CriticalIndex returns argmax_i Σ_k T_k^i over the window (Algorithm 3
// line 5).
func CriticalIndex(profiles []*profile.Profile, cuts []pipeline.Cuts) int {
	best, bestV := 0, math.Inf(-1)
	for i := range profiles {
		v := totalSeconds(profiles[i], cuts[i])
		if !math.IsInf(v, 1) && v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// WorkSteal slides the contention window (size k, step k — Algorithm 3
// line 15) over the whole ordered sequence and aligns each window.
func WorkSteal(profiles []*profile.Profile, cuts []pipeline.Cuts, k int) {
	WorkStealParallel(profiles, cuts, k, 1)
}

// WorkStealParallel is WorkSteal across a worker pool. The windows are
// disjoint slices of the request sequence and each alignment writes only
// its own window's cut vectors, so the windows are embarrassingly parallel
// and the result is identical at every worker count.
func WorkStealParallel(profiles []*profile.Profile, cuts []pipeline.Cuts, k, workers int) {
	m := len(profiles)
	if m == 0 || k <= 0 {
		return
	}
	windows := (m + k - 1) / k
	parallel.For(workers, windows, func(w int) {
		u := w * k
		hi := u + k
		if hi > m {
			hi = m
		}
		window := profiles[u:hi]
		wCuts := cuts[u:hi]
		AlignWindow(window, wCuts, CriticalIndex(window, wCuts))
	})
}
