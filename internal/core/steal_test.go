package core

import (
	"math"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

func partitionedWindow(t *testing.T, s *soc.SoC, names ...string) ([]*profile.Profile, []pipeline.Cuts) {
	t.Helper()
	var profiles []*profile.Profile
	var cuts []pipeline.Cuts
	for _, name := range names {
		p := profileFor(t, s, name)
		c, _, err := Partition(p)
		if err != nil {
			t.Fatalf("Partition %s: %v", name, err)
		}
		profiles = append(profiles, p)
		cuts = append(cuts, c)
	}
	return profiles, cuts
}

func scheduleBubbles(t *testing.T, s *soc.SoC, profiles []*profile.Profile, cuts []pipeline.Cuts) float64 {
	t.Helper()
	sched, err := pipeline.FromCuts(s, profiles, cuts)
	if err != nil {
		t.Fatalf("FromCuts: %v", err)
	}
	return sched.Bubbles().Seconds()
}

func TestCriticalIndex(t *testing.T) {
	s := soc.Kirin990()
	profiles, cuts := partitionedWindow(t, s, model.SqueezeNet, model.YOLOv4, model.MobileNetV2)
	if got := CriticalIndex(profiles, cuts); got != 1 {
		t.Errorf("CriticalIndex = %d, want 1 (YOLOv4 dominates)", got)
	}
}

// TestWorkStealingReducesBubbles: the paper's core claim for Algorithm 3 —
// aligning stage times to the critical path reduces the Eq. (3) bubbles.
func TestWorkStealingReducesBubbles(t *testing.T) {
	s := soc.Kirin990()
	cases := [][]string{
		{model.BERT, model.SqueezeNet, model.ResNet50, model.MobileNetV2},
		{model.YOLOv4, model.GoogLeNet, model.ViT, model.AlexNet},
		{model.VGG16, model.SqueezeNet, model.InceptionV4, model.MobileNetV2},
	}
	for _, names := range cases {
		profiles, cuts := partitionedWindow(t, s, names...)
		before := scheduleBubbles(t, s, profiles, cuts)
		stolen := make([]pipeline.Cuts, len(cuts))
		for i := range cuts {
			stolen[i] = make(pipeline.Cuts, len(cuts[i]))
			copy(stolen[i], cuts[i])
		}
		WorkSteal(profiles, stolen, s.NumProcessors())
		after := scheduleBubbles(t, s, profiles, stolen)
		if after > before*1.02 {
			t.Errorf("%v: bubbles %.4fs → %.4fs (work stealing worsened)", names, before, after)
		}
	}
}

func TestWorkStealingKeepsValidity(t *testing.T) {
	s := soc.Snapdragon778G()
	profiles, cuts := partitionedWindow(t, s,
		model.BERT, model.SqueezeNet, model.YOLOv4, model.MobileNetV2, model.ViT)
	WorkSteal(profiles, cuts, s.NumProcessors())
	for i, c := range cuts {
		if !pipeline.ValidCuts(c, profiles[i].NumLayers(), s.NumProcessors()) {
			t.Fatalf("request %d: invalid cuts %v after stealing", i, c)
		}
	}
	if _, err := pipeline.FromCuts(s, profiles, cuts); err != nil {
		t.Fatalf("stolen schedule invalid: %v", err)
	}
}

func TestAlignWindowMovesTowardTarget(t *testing.T) {
	s := soc.Kirin990()
	profiles, cuts := partitionedWindow(t, s, model.BERT, model.SqueezeNet)
	critical := 0 // BERT
	target := stageSeconds(profiles[critical], cuts[critical])
	beforeDev := totalDeviation(profiles[1], cuts[1], target)
	AlignWindow(profiles, cuts, critical)
	afterDev := totalDeviation(profiles[1], cuts[1], target)
	if afterDev > beforeDev+1e-12 {
		t.Errorf("deviation %.6f → %.6f (alignment diverged)", beforeDev, afterDev)
	}
}

func TestAlignWindowBadCritical(t *testing.T) {
	s := soc.Kirin990()
	profiles, cuts := partitionedWindow(t, s, model.AlexNet)
	orig := make(pipeline.Cuts, len(cuts[0]))
	copy(orig, cuts[0])
	AlignWindow(profiles, cuts, -1)
	AlignWindow(profiles, cuts, 5)
	for i := range orig {
		if cuts[0][i] != orig[i] {
			t.Fatal("out-of-range critical index mutated cuts")
		}
	}
}

func TestStageSecondsFinite(t *testing.T) {
	s := soc.Kirin990()
	profiles, cuts := partitionedWindow(t, s, model.YOLOv4)
	for k, v := range stageSeconds(profiles[0], cuts[0]) {
		if math.IsInf(v, 1) || v < 0 {
			t.Errorf("stage %d seconds = %g", k, v)
		}
	}
	if tot := totalSeconds(profiles[0], cuts[0]); tot <= 0 || math.IsInf(tot, 1) {
		t.Errorf("total seconds = %g", tot)
	}
}

func totalDeviation(p *profile.Profile, cuts pipeline.Cuts, target []float64) float64 {
	var sum float64
	for k, v := range stageSeconds(p, cuts) {
		sum += math.Abs(v - target[k])
	}
	return sum
}
