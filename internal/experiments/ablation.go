package experiments

import (
	"math/rand"
	"sort"
	"time"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/workload"
)

// RunFig8a regenerates Fig. 8(a): Hetero²Pipe's vertical optimisation vs
// exhaustive search and simulated annealing over random combinations,
// reporting the latency gap to the exhaustive optimum.
func RunFig8a(cfg Config) (*Report, error) {
	r := &Report{ID: "fig8a", Title: Title("fig8a")}
	s := soc.Kirin990()
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	if cfg.Quick && combos > 6 {
		combos = 6
	}
	// Exhaustive needs small sequences: 4–5 requests.
	gen, err := workload.NewGenerator(cfg.Seed+1, 4, 5)
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	var h2p, exhaustive, annealed []float64
	var h2pNanos, exNanos, saNanos int64
	for _, names := range gen.Combos(combos) {
		profs, err := mustProfiles(s, names)
		if err != nil {
			return nil, err
		}
		t0 := nowNanos()
		plan, err := pl.PlanProfiles(profs)
		if err != nil {
			return nil, err
		}
		h2pNanos += nowNanos() - t0
		span, err := executeMakespan(plan.Schedule)
		if err != nil {
			return nil, err
		}
		h2p = append(h2p, span.Seconds())

		t0 = nowNanos()
		_, exSpan, err := baseline.Exhaustive(s, profs, pipeline.DefaultOptions())
		if err != nil {
			return nil, err
		}
		exNanos += nowNanos() - t0
		exhaustive = append(exhaustive, exSpan.Seconds())

		saCfg := baseline.DefaultAnnealConfig(cfg.Seed)
		if cfg.Quick {
			saCfg.Iterations = 30
		}
		t0 = nowNanos()
		_, saSpan, err := baseline.SimulatedAnnealing(s, profs, pipeline.DefaultOptions(), saCfg)
		if err != nil {
			return nil, err
		}
		saNanos += nowNanos() - t0
		annealed = append(annealed, saSpan.Seconds())
	}
	// Present combos sorted by H²P latency, as the figure's x-axis is.
	idx := make([]int, len(h2p))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h2p[idx[a]] < h2p[idx[b]] })
	r.add("%-6s %12s %12s %12s", "combo", "H²P", "exhaustive", "annealing")
	for rank, i := range idx {
		r.add("%-6d %10.1fms %10.1fms %10.1fms", rank+1, h2p[i]*1e3, exhaustive[i]*1e3, annealed[i]*1e3)
	}
	gaps := make([]float64, len(h2p))
	for i := range h2p {
		gaps[i] = h2p[i]/exhaustive[i] - 1
	}
	saGaps := make([]float64, len(annealed))
	for i := range annealed {
		saGaps[i] = annealed[i]/exhaustive[i] - 1
	}
	r.metric("h2p_gap_mean_pct", stats.Mean(gaps)*100)
	r.metric("h2p_gap_max_pct", stats.Max(gaps)*100)
	r.metric("sa_gap_mean_pct", stats.Mean(saGaps)*100)
	r.add("H²P gap to exhaustive: mean %.1f%%, max %.1f%% (paper: ~4%%)",
		stats.Mean(gaps)*100, stats.Max(gaps)*100)
	r.add("annealing gap to exhaustive: mean %.1f%%", stats.Mean(saGaps)*100)
	// Planner complexity advantage ("outperforms simulated annealing with
	// much lower complexity"): wall-clock planning cost per scheme.
	n := float64(len(h2p))
	r.metric("h2p_plan_ms", float64(h2pNanos)/n/1e6)
	r.metric("exhaustive_plan_ms", float64(exNanos)/n/1e6)
	r.metric("sa_plan_ms", float64(saNanos)/n/1e6)
	r.add("planning cost: H²P %.1fms, annealing %.1fms, exhaustive %.1fms per combo",
		float64(h2pNanos)/n/1e6, float64(saNanos)/n/1e6, float64(exNanos)/n/1e6)
	return r, nil
}

// nowNanos isolates the wall-clock read used only for planner-cost
// reporting (the simulation itself runs on a virtual clock).
func nowNanos() int64 { return time.Now().UnixNano() }

// fig8bVariants are the component-removal configurations of Fig. 8(b).
func fig8bVariants() []struct {
	name string
	opts core.Options
} {
	full := core.DefaultOptions()
	noMit := full
	noMit.Mitigation = false
	noTail := full
	noTail.TailOptimization = false
	noSteal := full
	noSteal.WorkStealing = false
	return []struct {
		name string
		opts core.Options
	}{
		{"Full", full},
		{"-Mitigation", noMit},
		{"-TailOpt", noTail},
		{"-WorkSteal", noSteal},
		{"NoC/T", core.NoCTOptions()},
	}
}

// RunFig8b regenerates Fig. 8(b): average latency as components are removed
// from Hetero²Pipe.
func RunFig8b(cfg Config) (*Report, error) {
	r := &Report{ID: "fig8b", Title: Title("fig8b")}
	s := soc.Kirin990()
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	gen, err := workload.NewGenerator(cfg.Seed+2, 4, 8)
	if err != nil {
		return nil, err
	}
	comboNames := gen.Combos(combos)
	r.add("%-12s %14s", "variant", "mean latency")
	for _, v := range fig8bVariants() {
		pl, err := core.NewPlanner(s, v.opts)
		if err != nil {
			return nil, err
		}
		var lats []float64
		for _, names := range comboNames {
			profs, err := mustProfiles(s, names)
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanProfiles(profs)
			if err != nil {
				return nil, err
			}
			span, err := executeMakespan(plan.Schedule)
			if err != nil {
				return nil, err
			}
			lats = append(lats, span.Seconds())
		}
		mean := stats.Mean(lats)
		r.add("%-12s %12.1fms", v.name, mean*1e3)
		r.metric(v.name+"_latency_ms", mean*1e3)
	}
	return r, nil
}

// RunFig12 regenerates Fig. 12: the linear relation between total pipeline
// bubbles and executed latency (Property 1). Each sample point is one
// request ordering of a fixed pipeline plus a mild boundary perturbation:
// the total work is (near-)constant across points, so the latency variation
// is driven by stage misalignment — exactly the bubble mechanism the
// property links to latency.
func RunFig12(cfg Config) (*Report, error) {
	r := &Report{ID: "fig12", Title: Title("fig12")}
	s := soc.Kirin990()
	pipelines := []struct {
		label string
		names []string
	}{
		{"5-net", workload.SceneUnderstanding()},
		{"3-net", []string{"InceptionV4", "ResNet50", "SqueezeNet"}},
	}
	samples := 60
	if cfg.Quick {
		samples = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	for _, pp := range pipelines {
		profs, err := mustProfiles(s, pp.names)
		if err != nil {
			return nil, err
		}
		baseCuts := make([]pipeline.Cuts, len(profs))
		for i, p := range profs {
			c, _, err := core.Partition(p)
			if err != nil {
				return nil, err
			}
			baseCuts[i] = c
		}
		var bubbles, latencies []float64
		for t := 0; t < samples; t++ {
			perm := rng.Perm(len(profs))
			ordProfs := make([]*profile.Profile, len(profs))
			ordCuts := make([]pipeline.Cuts, len(profs))
			for pos, orig := range perm {
				ordProfs[pos] = profs[orig]
				ordCuts[pos] = baseCuts[orig]
			}
			cuts := perturbCuts(rng, ordProfs, ordCuts)
			sched, err := pipeline.FromCuts(s, ordProfs, cuts)
			if err != nil {
				continue
			}
			// The bubble metric (Eq. 3) is defined on solo stage times,
			// so the latency side of the relation executes without the
			// co-execution term as well — like against like.
			res, err := pipeline.Execute(sched, pipeline.Options{EnforceMemory: true})
			if err != nil {
				continue
			}
			bubbles = append(bubbles, sched.Bubbles().Seconds())
			latencies = append(latencies, res.Makespan.Seconds())
		}
		fit, err := stats.FitLine(bubbles, latencies)
		if err != nil {
			return nil, err
		}
		r.add("%s pipeline: %d samples, latency ≈ %.2f·bubbles + %.1fms, R² = %.3f",
			pp.label, len(bubbles), fit.Slope, fit.Intercept*1e3, fit.R2)
		r.metric(pp.label+"_slope", fit.Slope)
		r.metric(pp.label+"_r2", fit.R2)
	}
	return r, nil
}

// perturbCuts randomly shifts stage boundaries (keeping validity and
// operator support) to sample partitions of varying bubble size.
func perturbCuts(rng *rand.Rand, profs []*profile.Profile, base []pipeline.Cuts) []pipeline.Cuts {
	out := make([]pipeline.Cuts, len(base))
	for i, c := range base {
		n := profs[i].NumLayers()
		k := len(c) - 1
		cand := make(pipeline.Cuts, len(c))
		copy(cand, c)
		// Shift each interior boundary by a random offset.
		for b := 1; b < k; b++ {
			span := n / 4
			if span < 1 {
				span = 1
			}
			delta := rng.Intn(2*span+1) - span
			nb := cand[b] + delta
			if nb < cand[b-1] {
				nb = cand[b-1]
			}
			if nb > cand[b+1] {
				nb = cand[b+1]
			}
			cand[b] = nb
		}
		// Keep the perturbation only if every stage stays supported.
		ok := true
		for st := 0; st < k; st++ {
			if cand[st+1] > cand[st] && !profs[i].Table(st).Supported(cand[st], cand[st+1]-1) {
				ok = false
				break
			}
		}
		if ok {
			out[i] = cand
		} else {
			keep := make(pipeline.Cuts, len(c))
			copy(keep, c)
			out[i] = keep
		}
	}
	return out
}
