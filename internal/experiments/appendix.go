package experiments

import (
	"fmt"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/workload"
)

// RunAppBThermal regenerates the Appendix-B thermal study: temperature
// trajectories of each processor under continuous inference load and the
// steady-state throttling factors the profiling phase bakes in. The paper's
// finding: CPUs exceed 60 °C with a noticeable slowdown while GPU/NPU stay
// inside a 50 °C envelope.
func RunAppBThermal(cfg Config) (*Report, error) {
	r := &Report{ID: "appB", Title: Title("appB")}
	s := soc.Kirin990()
	horizon := []float64{0, 30, 60, 120, 300, 600} // seconds of sustained load
	r.add("%-10s %s", "processor", "temperature °C at t = 0/30/60/120/300/600 s")
	for i := range s.Processors {
		p := &s.Processors[i]
		row := ""
		for _, t := range horizon {
			row += fmt.Sprintf(" %5.1f", p.Thermal.TempAt(t))
		}
		r.add("%-10s%s   steady ×%.2f", p.ID, row, p.Thermal.SteadyStateFactor())
		r.metric(p.ID+"_steady_c", p.Thermal.TempAt(600))
		r.metric(p.ID+"_steady_factor", p.Thermal.SteadyStateFactor())
	}
	r.add("experiments run at thermal steady state, as Sec. VI notes")
	return r, nil
}

// RunAppDBatching evaluates the Appendix-D batching workaround end to end:
// a video-analytics stream (one heavy transformer plus lightweight frame
// classifiers) planned with and without request coalescing. Batching must
// not hurt the makespan and must cut the total processor busy time by
// amortising launches, weight loads and boundary copies.
func RunAppDBatching(cfg Config) (*Report, error) {
	r := &Report{ID: "appD", Title: Title("appD")}
	s := soc.Kirin990()
	frames := 24
	if cfg.Quick {
		frames = 12
	}
	requests, err := workload.Instantiate(workload.VideoAnalytics(frames))
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	plain, err := pl.PlanModels(requests)
	if err != nil {
		return nil, err
	}
	plainRes, err := pipeline.Execute(plain.Schedule, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	batched, groups, err := pl.PlanBatched(requests, 64)
	if err != nil {
		return nil, err
	}
	batchedRes, err := pipeline.Execute(batched.Schedule, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	busy := func(res *pipeline.Result) float64 {
		var sum float64
		for _, e := range res.Timeline {
			sum += (e.End - e.Start).Seconds()
		}
		return sum
	}
	r.add("stream: %d requests coalesced into %d groups", len(requests), len(groups))
	r.add("%-10s %12s %14s %12s", "variant", "makespan", "busy time", "requests")
	r.add("%-10s %10.1fms %12.1fms %12d", "unbatched",
		plainRes.Makespan.Seconds()*1e3, busy(plainRes)*1e3, len(requests))
	r.add("%-10s %10.1fms %12.1fms %12d", "batched",
		batchedRes.Makespan.Seconds()*1e3, busy(batchedRes)*1e3, len(groups))
	r.metric("unbatched_makespan_ms", plainRes.Makespan.Seconds()*1e3)
	r.metric("batched_makespan_ms", batchedRes.Makespan.Seconds()*1e3)
	r.metric("unbatched_busy_ms", busy(plainRes)*1e3)
	r.metric("batched_busy_ms", busy(batchedRes)*1e3)
	r.metric("busy_reduction_pct", (1-busy(batchedRes)/busy(plainRes))*100)
	r.add("busy-time reduction: %.1f%% (launch/weight-load/copy amortisation)",
		(1-busy(batchedRes)/busy(plainRes))*100)
	return r, nil
}

// RunClusterSplit evaluates the Appendix-A design decision directly: plan
// the same workloads on the stock SoC (clusters scheduled whole) and on a
// derived SoC whose big cluster is split 2+2 into per-partition pipeline
// stages (Pipe-it's granularity, carrying the Fig. 10 conflict penalty).
// Whole-cluster scheduling must win.
func RunClusterSplit(cfg Config) (*Report, error) {
	r := &Report{ID: "clustersplit", Title: Title("clustersplit")}
	whole := soc.Kirin990()
	split, err := soc.SplitCluster(whole, soc.KindCPUBig, 2)
	if err != nil {
		return nil, err
	}
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	if cfg.Quick && combos > 8 {
		combos = 8
	}
	gen, err := workload.NewGenerator(cfg.Seed+4, 3, 6)
	if err != nil {
		return nil, err
	}
	var wholeLat, splitLat []float64
	for _, names := range gen.Combos(combos) {
		for _, target := range []struct {
			s   *soc.SoC
			acc *[]float64
		}{{whole, &wholeLat}, {split, &splitLat}} {
			profs, err := mustProfiles(target.s, names)
			if err != nil {
				return nil, err
			}
			pl, err := core.NewPlanner(target.s, core.DefaultOptions())
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanProfiles(profs)
			if err != nil {
				return nil, err
			}
			res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
			if err != nil {
				return nil, err
			}
			*target.acc = append(*target.acc, res.Makespan.Seconds())
		}
	}
	mw, ms := stats.Mean(wholeLat), stats.Mean(splitLat)
	r.add("%-22s %12.1fms", "whole clusters (ours)", mw*1e3)
	r.add("%-22s %12.1fms", "big cluster split 2+2", ms*1e3)
	r.add("splitting penalty: %.1f%% (the Appendix-A rationale for per-cluster scheduling)",
		(ms/mw-1)*100)
	r.metric("whole_latency_ms", mw*1e3)
	r.metric("split_latency_ms", ms*1e3)
	r.metric("split_penalty_pct", (ms/mw-1)*100)
	return r, nil
}
