package experiments

import (
	"fmt"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/workload"
)

// RunDepth is a pipeline-depth ablation (extension): Hetero²Pipe planned on
// progressively richer Kirin 990 subsets — big CPU only; +GPU; +small CPU;
// +NPU — plus the µLayer intra-op baseline on CPU+GPU. Speedups compound as
// processors join, and the intra-op scheme trails pipelining because of its
// per-layer merge overhead (the Sec. II-A criticism).
func RunDepth(cfg Config) (*Report, error) {
	r := &Report{ID: "depth", Title: Title("depth")}
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	if cfg.Quick && combos > 6 {
		combos = 6
	}
	gen, err := workload.NewGenerator(cfg.Seed+7, 3, 6)
	if err != nil {
		return nil, err
	}
	comboNames := gen.Combos(combos)

	subsets := []struct {
		label string
		kinds []soc.Kind
	}{
		{"CPU_B", []soc.Kind{soc.KindCPUBig}},
		{"CPU_B+GPU", []soc.Kind{soc.KindCPUBig, soc.KindGPU}},
		{"CPU_B+GPU+CPU_S", []soc.Kind{soc.KindCPUBig, soc.KindGPU, soc.KindCPUSmall}},
		{"all (=H²P)", nil}, // nil means the full SoC
	}

	var base float64
	r.add("%-18s %14s %10s", "processor set", "mean latency", "speedup")
	for i, sub := range subsets {
		s := subsetSoC(soc.Kirin990(), sub.kinds)
		var lats []float64
		for _, names := range comboNames {
			profs, err := mustProfiles(s, names)
			if err != nil {
				return nil, err
			}
			pl, err := core.NewPlanner(s, core.DefaultOptions())
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanProfiles(profs)
			if err != nil {
				return nil, err
			}
			res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
			if err != nil {
				return nil, err
			}
			lats = append(lats, res.Makespan.Seconds())
		}
		mean := stats.Mean(lats)
		if i == 0 {
			base = mean
		}
		r.add("%-18s %12.1fms %9.2f×", sub.label, mean*1e3, base/mean)
		r.metric(fmt.Sprintf("depth%d_latency_ms", i+1), mean*1e3)
		r.metric(fmt.Sprintf("depth%d_speedup", i+1), base/mean)
	}

	// µLayer intra-op reference on CPU+GPU.
	full := soc.Kirin990()
	var muLats []float64
	for _, names := range comboNames {
		models, err := workload.Instantiate(names)
		if err != nil {
			return nil, err
		}
		lat, err := baseline.MuLayerSerial(full, models)
		if err != nil {
			return nil, err
		}
		muLats = append(muLats, lat.Seconds())
	}
	mu := stats.Mean(muLats)
	r.add("%-18s %12.1fms %9.2f×  (intra-op, per-layer merges)", "µLayer CPU+GPU", mu*1e3, base/mu)
	r.metric("mulayer_latency_ms", mu*1e3)
	r.metric("mulayer_speedup", base/mu)
	return r, nil
}

// subsetSoC restricts an SoC to the given processor kinds (nil keeps all),
// preserving the capability order.
func subsetSoC(s *soc.SoC, kinds []soc.Kind) *soc.SoC {
	if kinds == nil {
		return s
	}
	keep := make(map[soc.Kind]bool, len(kinds))
	for _, k := range kinds {
		keep[k] = true
	}
	out := *s
	out.Name = s.Name + "-subset"
	out.Processors = nil
	for _, p := range s.Processors {
		if keep[p.Kind] {
			out.Processors = append(out.Processors, p)
		}
	}
	return &out
}
