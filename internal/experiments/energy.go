package experiments

import (
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/workload"
)

// RunEnergy evaluates the energy-model extension: joules per inference of
// every scheme over random combinations on the Kirin 990. The paper
// motivates heterogeneous execution with energy efficiency but reports only
// latency; this experiment quantifies the claim on the substrate — shorter
// makespans cut the idle-power tax across all processors, and NPU offload
// moves work to the cheapest joules-per-FLOP unit.
func RunEnergy(cfg Config) (*Report, error) {
	r := &Report{ID: "energy", Title: Title("energy")}
	s := soc.Kirin990()
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	gen, err := workload.NewGenerator(cfg.Seed+5, 3, 7)
	if err != nil {
		return nil, err
	}
	comboNames := gen.Combos(combos)
	energies := make(map[string][]float64, len(fig7Schemes))
	for _, names := range comboNames {
		profs, err := mustProfiles(s, names)
		if err != nil {
			return nil, err
		}
		for _, scheme := range fig7Schemes {
			res, err := runSchemeFull(scheme, s, profs)
			if err != nil {
				return nil, err
			}
			energies[scheme] = append(energies[scheme], res.EnergyPerInference())
		}
	}
	r.add("%-8s %22s", "scheme", "energy per inference")
	for _, scheme := range fig7Schemes {
		mean := stats.Mean(energies[scheme])
		r.add("%-8s %20.2fJ", scheme, mean)
		r.metric(scheme+"_j_per_inf", mean)
	}
	gain := stats.Mean(energies["MNN"]) / stats.Mean(energies["H2P"])
	r.metric("h2p_vs_mnn_energy_x", gain)
	r.add("H²P energy advantage over serial MNN: %.2f×", gain)
	return r, nil
}
