// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate. Each experiment is a named runner
// returning a textual report plus named metrics; cmd/experiments prints the
// reports and the root bench suite exercises the same runners.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives every random choice; identical seeds give identical
	// reports.
	Seed int64
	// Combos is the number of random model combinations for Fig. 7/8 (the
	// paper uses 100).
	Combos int
	// Quick shrinks workloads for fast test/bench runs.
	Quick bool
}

// DefaultConfig mirrors the paper's scale.
func DefaultConfig() Config {
	return Config{Seed: 2025, Combos: 100}
}

// QuickConfig is a reduced configuration for tests and benchmarks.
func QuickConfig() Config {
	return Config{Seed: 2025, Combos: 8, Quick: true}
}

// Report is one regenerated table/figure.
type Report struct {
	// ID is the experiment identifier, e.g. "fig7".
	ID string
	// Title describes the paper artefact.
	Title string
	// Lines are the formatted rows of the regenerated table/series.
	Lines []string
	// Metrics exposes named scalars for tests and EXPERIMENTS.md.
	Metrics map[string]float64
}

// add appends a formatted line.
func (r *Report) add(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// metric records a named scalar.
func (r *Report) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("-- metrics --\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "%s = %.6g\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// Runner regenerates one artefact.
type Runner func(Config) (*Report, error)

// experimentIDs lists the experiments in presentation order.
var experimentIDs = []string{
	"fig1", "fig2a", "fig2b", "tab2", "eq1", "fig7",
	"fig8a", "fig8b", "fig9", "fig10", "fig12", "fig13", "searchspace", "appB", "appD", "clustersplit", "energy", "sensitivity", "depth",
}

// titles describes each experiment (kept separate from the runner table to
// avoid an initialisation cycle: runners themselves call Title).
var titles = map[string]string{
	"fig1":         "Solo processing latency of each model on each processor",
	"fig2a":        "Queueing delay: serial CPU vs heterogeneous execution",
	"fig2b":        "Per-model resource demands and contention-intensity ranking",
	"tab2":         "Solo vs co-execution slowdown of model pairs (Table II)",
	"eq1":          "Ridge regression of contention intensity from PMU features",
	"fig7":         "Overall latency/throughput vs baselines on three SoCs",
	"fig8a":        "Vertical optimisation vs exhaustive search and annealing",
	"fig8b":        "Component ablation of Hetero²Pipe",
	"fig9":         "Memory frequency and footprint under pipeline tiers",
	"fig10":        "Intra-cluster CPU co-execution slowdown",
	"fig12":        "Pipeline bubbles vs overall latency linearity",
	"fig13":        "Batched inference latency growth per processor",
	"searchspace":  "Pipeline/search-space counting (Appendix A)",
	"appB":         "Thermal trajectories and steady-state throttling (Appendix B)",
	"appD":         "Batching lightweight request streams (Appendix D)",
	"clustersplit": "Whole-cluster vs per-core-split scheduling (Appendix A remark)",
	"energy":       "Energy per inference across schemes (extension)",
	"sensitivity":  "Design-space sweeps: NPU scale and bus bandwidth (extension)",
	"depth":        "Pipeline-depth ablation and intra-op baseline (extension)",
}

// runnerFor resolves an experiment ID lazily (avoids init cycles).
func runnerFor(id string) Runner {
	switch id {
	case "fig1":
		return RunFig1
	case "fig2a":
		return RunFig2a
	case "fig2b":
		return RunFig2b
	case "tab2":
		return RunTable2
	case "eq1":
		return RunEq1
	case "fig7":
		return RunFig7
	case "fig8a":
		return RunFig8a
	case "fig8b":
		return RunFig8b
	case "fig9":
		return RunFig9
	case "fig10":
		return RunFig10
	case "fig12":
		return RunFig12
	case "fig13":
		return RunFig13
	case "searchspace":
		return RunSearchSpace
	case "appB":
		return RunAppBThermal
	case "appD":
		return RunAppDBatching
	case "clustersplit":
		return RunClusterSplit
	case "energy":
		return RunEnergy
	case "sensitivity":
		return RunSensitivity
	case "depth":
		return RunDepth
	}
	return nil
}

// IDs returns the experiment identifiers in presentation order.
func IDs() []string {
	out := make([]string, len(experimentIDs))
	copy(out, experimentIDs)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Report, error) {
	if r := runnerFor(id); r != nil {
		return r(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Title returns an experiment's description.
func Title(id string) string { return titles[id] }
