package experiments

import (
	"fmt"
	"strings"
	"testing"

	"hetero2pipe/internal/model"
)

func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(id, QuickConfig())
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if r.ID != id || len(r.Lines) == 0 {
		t.Fatalf("Run(%s) returned empty report %+v", id, r)
	}
	return r
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Fatalf("IDs() = %v", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("Title(%s) empty", id)
		}
		if runnerFor(id) == nil {
			t.Errorf("runnerFor(%s) nil", id)
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	r := runQuick(t, "fig1")
	// NPU-unsupported models report no NPU metric; Fig. 1's "error".
	for _, name := range []string{model.BERT, model.ViT, model.YOLOv4} {
		if _, ok := r.Metrics[name+"/npu_ms"]; ok {
			t.Errorf("%s should error on NPU", name)
		}
	}
	// Ordering NPU < CPU_B and CPU_S slowest, per model.
	for _, name := range []string{model.ResNet50, model.VGG16, model.SqueezeNet} {
		npu := r.Metrics[name+"/npu_ms"]
		big := r.Metrics[name+"/cpu-big_ms"]
		small := r.Metrics[name+"/cpu-small_ms"]
		gpu := r.Metrics[name+"/gpu_ms"]
		if !(npu < big && npu < gpu && small > big && small > gpu) {
			t.Errorf("%s: ordering violated (npu %.1f big %.1f gpu %.1f small %.1f)",
				name, npu, big, gpu, small)
		}
	}
}

func TestFig2aQueueingReduction(t *testing.T) {
	r := runQuick(t, "fig2a")
	if got := r.Metrics["queueing_reduction_x"]; got < 2 {
		t.Errorf("queueing reduction %.2f×, want ≥ 2×", got)
	}
}

func TestFig2bObservation3(t *testing.T) {
	r := runQuick(t, "fig2b")
	sq := r.Metrics[model.SqueezeNet+"_intensity"]
	vit := r.Metrics[model.ViT+"_intensity"]
	if sq <= vit {
		t.Errorf("SqueezeNet intensity %.2f not above ViT %.2f (Observation 3)", sq, vit)
	}
}

func TestTable2Bands(t *testing.T) {
	r := runQuick(t, "tab2")
	sq := r.Metrics["SqueezeNet_cpu_slowdown_pct"]
	if sq < 15 || sq > 45 {
		t.Errorf("SqueezeNet slowdown %.1f%%, want 15–45%% (paper 26%%)", sq)
	}
	vit := r.Metrics["ViT_cpu_slowdown_pct"]
	if vit < 4 || vit > 20 {
		t.Errorf("ViT slowdown %.1f%%, want 4–20%% (paper 11%%)", vit)
	}
	if sq <= vit {
		t.Error("SqueezeNet must suffer more than ViT (Table II)")
	}
}

func TestEq1Correlation(t *testing.T) {
	r := runQuick(t, "eq1")
	if got := r.Metrics["pearson"]; got < 0.7 {
		t.Errorf("ridge correlation %.3f, want ≥ 0.7", got)
	}
}

func TestFig7Shapes(t *testing.T) {
	r := runQuick(t, "fig7")
	for _, socName := range []string{"Snapdragon778G", "Snapdragon870", "Kirin990"} {
		mnn := r.Metrics[socName+"/speedup_vs_MNN_mean"]
		if mnn < 2 {
			t.Errorf("%s: H²P vs MNN %.2f×, want ≥ 2× (paper 4.2× avg)", socName, mnn)
		}
		band := r.Metrics[socName+"/speedup_vs_Band_mean"]
		if band < 1.0 {
			t.Errorf("%s: H²P vs Band %.2f×, want ≥ 1.0 (paper ~1.05×)", socName, band)
		}
		noct := r.Metrics[socName+"/speedup_vs_NoC/T_mean"]
		if noct < 1.0 {
			t.Errorf("%s: H²P vs NoC/T %.2f×, want ≥ 1 (paper 1.3×)", socName, noct)
		}
		pipeit := r.Metrics[socName+"/speedup_vs_Pipe-it_mean"]
		if pipeit < 2 {
			t.Errorf("%s: H²P vs Pipe-it %.2f×, want ≥ 2× (paper 2–3.7×)", socName, pipeit)
		}
		// Lower solution variance than Band (the scatter panels).
		if r.Metrics[socName+"/h2p_var"] > r.Metrics[socName+"/band_var"]*1.2 {
			t.Errorf("%s: H²P variance above Band's", socName)
		}
	}
	// The Kirin 990 (strongest NPU) shows the largest MNN speedup.
	if r.Metrics["Kirin990/speedup_vs_MNN_max"] < r.Metrics["Snapdragon778G/speedup_vs_MNN_mean"] {
		t.Error("Kirin990 max speedup should dominate 778G mean")
	}
}

func TestFig8aNearOptimal(t *testing.T) {
	r := runQuick(t, "fig8a")
	if got := r.Metrics["h2p_gap_mean_pct"]; got > 10 {
		t.Errorf("H²P gap to exhaustive %.1f%%, want ≤ 10%% (paper ~4%%)", got)
	}
	if got := r.Metrics["h2p_gap_max_pct"]; got > 25 {
		t.Errorf("H²P max gap %.1f%%, want ≤ 25%%", got)
	}
	// Planning costs are reported (the paper's complexity claim) but not
	// asserted: wall-clock ratios are too noisy for a unit test at quick
	// scale. The full-scale run in EXPERIMENTS.md shows the ~6× gap.
	if r.Metrics["h2p_plan_ms"] <= 0 || r.Metrics["exhaustive_plan_ms"] <= 0 {
		t.Error("planning-cost metrics missing")
	}
}

func TestFig8bProgressive(t *testing.T) {
	r := runQuick(t, "fig8b")
	full := r.Metrics["Full_latency_ms"]
	for _, variant := range []string{"-Mitigation", "-TailOpt", "-WorkSteal", "NoC/T"} {
		if v := r.Metrics[variant+"_latency_ms"]; v < full*0.999 {
			t.Errorf("%s (%.1fms) beats Full (%.1fms); ablation must not improve", variant, v, full)
		}
	}
	if noct := r.Metrics["NoC/T_latency_ms"]; noct < full*1.05 {
		t.Errorf("NoC/T %.1fms not visibly above Full %.1fms (paper: 1.3×)", noct, full)
	}
}

func TestFig9Shapes(t *testing.T) {
	r := runQuick(t, "fig9")
	// Available memory decreases tier over tier.
	if !(r.Metrics["tier1_min_avail_mb"] > r.Metrics["tier2_min_avail_mb"] &&
		r.Metrics["tier2_min_avail_mb"] > r.Metrics["tier3_min_avail_mb"]) {
		t.Errorf("memory floors not decreasing: %v / %v / %v",
			r.Metrics["tier1_min_avail_mb"], r.Metrics["tier2_min_avail_mb"], r.Metrics["tier3_min_avail_mb"])
	}
	// CPU/GPU pipelines drive the controller to max; NPU-only stays below.
	if r.Metrics["tier3_peak_freq_mhz"] != r.Metrics["max_level_mhz"] {
		t.Errorf("3-stage pipeline freq %v below max %v",
			r.Metrics["tier3_peak_freq_mhz"], r.Metrics["max_level_mhz"])
	}
	if r.Metrics["npu_only_peak_freq_mhz"] >= r.Metrics["max_level_mhz"] {
		t.Error("NPU-only execution should not demand full memory bandwidth")
	}
}

func TestFig10Bands(t *testing.T) {
	r := runQuick(t, "fig10")
	worst := r.Metrics["worst_pct"]
	if worst < 40 || worst > 95 {
		t.Errorf("worst intra-cluster slowdown %.0f%%, want 40–95%% (paper ~70%%)", worst)
	}
	// Performance (big) cores suffer at least as much as efficiency cores.
	if r.Metrics["BB-BB_vgg_pct"] < r.Metrics["SS-SS_vgg_pct"] {
		t.Error("big-cluster slowdown below small-cluster slowdown")
	}
}

func TestFig12Linear(t *testing.T) {
	r := runQuick(t, "fig12")
	for _, label := range []string{"5-net", "3-net"} {
		if slope := r.Metrics[label+"_slope"]; slope <= 0 {
			t.Errorf("%s: slope %.3f, want positive (Property 1)", label, slope)
		}
		// The paper's stall-based pipeline makes the relation tight; our
		// work-conserving executor weakens it (see EXPERIMENTS.md), so we
		// require a clearly positive but looser fit.
		if r2 := r.Metrics[label+"_r2"]; r2 < 0.3 {
			t.Errorf("%s: R² %.3f, want ≥ 0.3 (paper: 'general linear relationship')", label, r2)
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	r := runQuick(t, "fig13")
	// Mobile processors: affine (R² ≈ 1), slope ≈ per-sample time.
	for _, id := range []string{"cpu-big", "gpu", "npu"} {
		if r2 := r.Metrics[id+"_r2"]; r2 < 0.999 {
			t.Errorf("%s: batch fit R² %.4f, want ≈ 1 (affine)", id, r2)
		}
		// Near-linear growth; the NPU's large fixed weight-load cost
		// (which batching exists to amortise) lowers its ratio.
		if scale := r.Metrics[id+"_scale8"]; scale < 3 {
			t.Errorf("%s: batch-8 scale %.2f, want near-linear ≥ 3", id, scale)
		}
	}
	// Desktop CUDA: sub-linear batching, below every mobile processor.
	cuda := r.Metrics["cuda_scale8"]
	if cuda > 4 {
		t.Errorf("cuda: batch-8 scale %.2f, want sub-linear ≤ 4", cuda)
	}
	for _, id := range []string{"cpu-big", "gpu", "npu"} {
		if cuda >= r.Metrics[id+"_scale8"] {
			t.Errorf("cuda scale %.2f not below %s's %.2f", cuda, id, r.Metrics[id+"_scale8"])
		}
	}
}

func TestSearchSpace(t *testing.T) {
	r := runQuick(t, "searchspace")
	if r.Metrics["pipelines"] < 200 {
		t.Errorf("pipelines = %.0f, want hundreds", r.Metrics["pipelines"])
	}
	if r.Metrics["splits_28_layers"] < 1e7 {
		t.Errorf("splits = %.3g, want ≥ 1e7", r.Metrics["splits_28_layers"])
	}
	if r.Metrics["joint_space_digits"] < 15 {
		t.Error("joint search space implausibly small")
	}
}

func TestAppBThermal(t *testing.T) {
	r := runQuick(t, "appB")
	// CPUs cross 60 °C and throttle; GPU/NPU stay inside 50 °C (App. B).
	for _, cpu := range []string{"cpu-big", "cpu-small"} {
		if c := r.Metrics[cpu+"_steady_c"]; c < 60 {
			t.Errorf("%s steady temperature %.1f °C, want > 60", cpu, c)
		}
		if f := r.Metrics[cpu+"_steady_factor"]; f <= 1 {
			t.Errorf("%s steady factor %.2f, want > 1 (throttling)", cpu, f)
		}
	}
	for _, acc := range []string{"gpu", "npu"} {
		if c := r.Metrics[acc+"_steady_c"]; c > 50 {
			t.Errorf("%s steady temperature %.1f °C, want ≤ 50", acc, c)
		}
		if f := r.Metrics[acc+"_steady_factor"]; f != 1 {
			t.Errorf("%s steady factor %.2f, want 1", acc, f)
		}
	}
}

func TestAppDBatching(t *testing.T) {
	r := runQuick(t, "appD")
	if r.Metrics["busy_reduction_pct"] <= 0 {
		t.Errorf("batching busy-time reduction %.1f%%, want positive", r.Metrics["busy_reduction_pct"])
	}
	if r.Metrics["batched_makespan_ms"] > r.Metrics["unbatched_makespan_ms"]*1.05 {
		t.Error("batching worsened the makespan")
	}
}

func TestClusterSplitPenalty(t *testing.T) {
	r := runQuick(t, "clustersplit")
	if p := r.Metrics["split_penalty_pct"]; p <= 0 {
		t.Errorf("split penalty %.1f%%, want positive (whole clusters must win)", p)
	}
}

func TestEnergyExtension(t *testing.T) {
	r := runQuick(t, "energy")
	h2p := r.Metrics["H2P_j_per_inf"]
	mnn := r.Metrics["MNN_j_per_inf"]
	if h2p <= 0 || mnn <= 0 {
		t.Fatalf("energy metrics missing: H2P %.3f MNN %.3f", h2p, mnn)
	}
	if h2p >= mnn {
		t.Errorf("H²P energy %.2fJ not below serial MNN %.2fJ", h2p, mnn)
	}
	// NPU-heavy schemes (Band, H²P) beat CPU-only schemes on joules.
	if r.Metrics["Band_j_per_inf"] >= r.Metrics["Pipe-it_j_per_inf"] {
		t.Error("Band energy not below Pipe-it's")
	}
}

func TestSensitivitySweeps(t *testing.T) {
	r := runQuick(t, "sensitivity")
	// H²P holds or beats Band on average at every NPU scale.
	for _, scale := range []string{"0.25", "0.5", "1", "2", "4"} {
		if v := r.Metrics["npu"+scale+"_band_vs_h2p"]; v < 0.98 {
			t.Errorf("NPU scale %s: Band/H²P ratio %.3f, want ≥ ~1", scale, v)
		}
	}
	// A stronger NPU widens the gap over the CPU-only baseline.
	if r.Metrics["npu4_mnn_vs_h2p"] <= r.Metrics["npu0.25_mnn_vs_h2p"] {
		t.Error("MNN speedup should grow with NPU scale")
	}
	// The contention/tail machinery pays off at every bus scale.
	for _, scale := range []string{"0.5", "1", "2"} {
		if v := r.Metrics["bus"+scale+"_ct_advantage"]; v < 1 {
			t.Errorf("bus scale %s: C/T advantage %.3f < 1", scale, v)
		}
	}
}

func TestDepthAblation(t *testing.T) {
	r := runQuick(t, "depth")
	// Speedups compound as processors join the pipeline.
	prev := 0.0
	for i := 1; i <= 4; i++ {
		v := r.Metrics[fmt.Sprintf("depth%d_speedup", i)]
		if v < prev*0.98 {
			t.Errorf("depth %d speedup %.2f below depth %d's %.2f", i, v, i-1, prev)
		}
		prev = v
	}
	if r.Metrics["depth4_speedup"] < 2 {
		t.Errorf("full-SoC speedup %.2f, want ≥ 2", r.Metrics["depth4_speedup"])
	}
	// Intra-op µLayer beats the single cluster but loses to the full
	// heterogeneous pipeline (per-layer merge overhead).
	mu := r.Metrics["mulayer_speedup"]
	if mu <= 1 {
		t.Errorf("µLayer speedup %.2f, want > 1 (it does use two processors)", mu)
	}
	if mu >= r.Metrics["depth4_speedup"] {
		t.Errorf("µLayer %.2f not below full H²P %.2f", mu, r.Metrics["depth4_speedup"])
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "y"}
	r.add("line %d", 1)
	r.metric("m", 2)
	s := r.String()
	for _, want := range []string{"== x — y ==", "line 1", "m = 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}
}

// TestDeterminism: identical seeds give bit-identical metrics — the
// simulator has no wall-clock or map-iteration dependence in its outputs.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig7", "fig8b", "fig12", "tab2"} {
		a, err := Run(id, QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Metrics) != len(b.Metrics) {
			t.Fatalf("%s: metric counts differ", id)
		}
		for k, v := range a.Metrics {
			if b.Metrics[k] != v {
				t.Errorf("%s: metric %s differs: %g vs %g", id, k, v, b.Metrics[k])
			}
		}
	}
}
