package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// Golden snapshot regression net: the quick-config metrics of every
// experiment, recorded in testdata/golden.json. All randomness is seeded
// and the simulator has a virtual clock, so metrics are bit-stable; any
// drift flags an unintended behaviour change. Regenerate intentionally with
//
//	go test ./internal/experiments -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current behaviour")

// goldenSkip lists metrics that legitimately vary run to run (wall-clock
// planning costs).
var goldenSkip = map[string]bool{
	"fig8a/h2p_plan_ms":        true,
	"fig8a/sa_plan_ms":         true,
	"fig8a/exhaustive_plan_ms": true,
}

func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison runs every experiment")
	}
	current := make(map[string]float64)
	for _, id := range IDs() {
		r, err := Run(id, QuickConfig())
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		for k, v := range r.Metrics {
			key := id + "/" + k
			if goldenSkip[key] {
				continue
			}
			current[key] = v
		}
	}
	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d metrics to %s", len(current), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no golden file (%v); run with -update-golden to create one", err)
	}
	var want map[string]float64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	for k, w := range want {
		got, ok := current[k]
		if !ok {
			t.Errorf("metric %s missing from current run", k)
			continue
		}
		if !almostEqual(got, w) {
			t.Errorf("metric %s drifted: golden %g, current %g", k, w, got)
		}
	}
	for k := range current {
		if _, ok := want[k]; !ok {
			t.Errorf("new metric %s not in golden file (re-run with -update-golden)", k)
		}
	}
}

// almostEqual tolerates floating-point formatting noise only.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
