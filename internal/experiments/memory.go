package experiments

import (
	"fmt"
	"strings"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/trace"
	"hetero2pipe/internal/workload"
)

// RunFig9 regenerates Fig. 9: memory-controller frequency and available
// memory while executing 1-, 2- and 3-stage pipelines built from the
// footprint tiers on the Kirin 990.
func RunFig9(cfg Config) (*Report, error) {
	r := &Report{ID: "fig9", Title: Title("fig9")}
	s := soc.Kirin990()
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for tier, names := range workload.MemoryTiers() {
		models, err := workload.Instantiate(names)
		if err != nil {
			return nil, err
		}
		plan, err := pl.PlanModels(models)
		if err != nil {
			return nil, err
		}
		opts := pipeline.DefaultOptions()
		opts.SampleMemory = true
		res, err := pipeline.Execute(plan.Schedule, opts)
		if err != nil {
			return nil, err
		}
		points := trace.FromResult(s, res)
		maxFreq := trace.MaxFrequency(points)
		minAvail := trace.MinAvailable(points)
		label := strings.Join(names, "+")
		r.add("tier %d (%s): peak mem freq %d MHz, min available %.0f MB, peak resident %.0f MB",
			tier+1, label, maxFreq, float64(minAvail)/1e6, float64(res.PeakMemoryBytes)/1e6)
		r.metric(fmt.Sprintf("tier%d_peak_freq_mhz", tier+1), float64(maxFreq))
		r.metric(fmt.Sprintf("tier%d_min_avail_mb", tier+1), float64(minAvail)/1e6)
		r.metric(fmt.Sprintf("tier%d_peak_resident_mb", tier+1), float64(res.PeakMemoryBytes)/1e6)
	}
	// Single-stage NPU reference: one fully supported model alone on the
	// NPU keeps memory frequency below the maximum (the Fig. 9 contrast).
	npuProfiles, err := mustProfiles(s, []string{model.ResNet50})
	if err != nil {
		return nil, err
	}
	npuStage := s.ProcessorsOfKind(soc.KindNPU)[0]
	cuts := []pipeline.Cuts{pipeline.SingleProcessor(npuProfiles[0].NumLayers(), npuStage, s.NumProcessors())}
	sched, err := pipeline.FromCuts(s, npuProfiles, cuts)
	if err != nil {
		return nil, err
	}
	opts := pipeline.DefaultOptions()
	opts.SampleMemory = true
	res, err := pipeline.Execute(sched, opts)
	if err != nil {
		return nil, err
	}
	npuFreq := trace.MaxFrequency(trace.FromResult(s, res))
	maxLevel := s.MemFreqLevelsMHz[len(s.MemFreqLevelsMHz)-1]
	r.add("NPU-only reference: peak mem freq %d MHz (max level %d MHz)", npuFreq, maxLevel)
	r.metric("npu_only_peak_freq_mhz", float64(npuFreq))
	r.metric("max_level_mhz", float64(maxLevel))
	return r, nil
}

// fig13Batches are the batch sizes swept in Fig. 13.
var fig13Batches = []int{1, 2, 4, 8, 16, 32}

// RunFig13 regenerates Fig. 13: the growth of batched-inference latency per
// processor. Mobile processors grow affinely (slope ≈ per-sample time); the
// desktop CUDA reference grows sub-linearly until saturation.
func RunFig13(cfg Config) (*Report, error) {
	r := &Report{ID: "fig13", Title: Title("fig13")}
	light := model.MustByName(model.MobileNetV2)
	kirin := soc.Kirin990()
	cuda := soc.DesktopCUDA()
	procs := []*soc.Processor{
		kirin.Processor("cpu-big"),
		kirin.Processor("gpu"),
		kirin.Processor("npu"),
		cuda.Processor("cuda"),
	}
	for _, p := range procs {
		var xs, ys []float64
		row := make([]string, 0, len(fig13Batches))
		for _, b := range fig13Batches {
			lat := soc.BatchLatency(p, light, b)
			if lat == soc.InfDuration {
				row = append(row, "ERR")
				continue
			}
			xs = append(xs, float64(b))
			ys = append(ys, lat.Seconds()*1e3)
			row = append(row, fmt.Sprintf("%.1f", lat.Seconds()*1e3))
		}
		r.add("%-6s latency(ms) per batch %v: %s", p.ID, fig13Batches, strings.Join(row, " "))
		if len(xs) >= 3 {
			fit, err := stats.FitLine(xs, ys)
			if err != nil {
				return nil, err
			}
			r.add("%-6s affine fit: %.2fms/sample + %.2fms, R² = %.4f", p.ID, fit.Slope, fit.Intercept, fit.R2)
			r.metric(p.ID+"_slope_ms", fit.Slope)
			r.metric(p.ID+"_r2", fit.R2)
			// Sub-linearity indicator: latency(8)/latency(1).
			l1 := soc.BatchLatency(p, light, 1).Seconds()
			l8 := soc.BatchLatency(p, light, 8).Seconds()
			r.metric(p.ID+"_scale8", l8/l1)
		}
	}
	return r, nil
}

// RunSearchSpace regenerates the Appendix-A counting: feasible pipelines of
// the example SoC and per-model split choices.
func RunSearchSpace(cfg Config) (*Report, error) {
	r := &Report{ID: "searchspace", Title: Title("searchspace")}
	pipelines := core.FeasiblePipelines(4, 4)
	r.add("feasible pipelines (4 big + 4 small cores, GPU, NPU): %d (paper's Eq. 12 prints 449)", pipelines)
	r.metric("pipelines", float64(pipelines))
	mobilenet := core.SplitChoices(28, 4, 4)
	r.add("split choices for a 28-layer model: %s (paper quotes ~3.6B under its count)", mobilenet.String())
	f, _ := mobilenet.Float64()
	r.metric("splits_28_layers", f)
	total := core.TotalSearchSpace([]int{28, 16, 100}, 4, 4)
	r.add("joint space for {MobileNetV2, VGG16, BERT}-scale set: ~10^%d", len(total.String())-1)
	r.metric("joint_space_digits", float64(len(total.String())))
	return r, nil
}
