package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/perf"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
)

// mustProfiles builds profiles for model names on s.
func mustProfiles(s *soc.SoC, names []string) ([]*profile.Profile, error) {
	out := make([]*profile.Profile, len(names))
	for i, n := range names {
		m, err := model.ByName(n)
		if err != nil {
			return nil, err
		}
		p, err := profile.New(s, m)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// soloLatency returns the whole-model solo latency on processor k, or -1
// when unsupported.
func soloLatency(p *profile.Profile, k int) time.Duration {
	d := p.SliceTime(k, 0, p.NumLayers()-1)
	if d == soc.InfDuration {
		return -1
	}
	return d
}

// RunFig1 regenerates Fig. 1 / Fig. 11: per-model solo latency on every
// processor of the Kirin 990, with "ERR" for NPU-unsupported networks.
func RunFig1(cfg Config) (*Report, error) {
	r := &Report{ID: "fig1", Title: Title("fig1")}
	s := soc.Kirin990()
	r.add("%-12s %10s %10s %10s %10s", "model", "NPU", "CPU_B", "GPU", "CPU_S")
	for _, name := range model.Names() {
		ps, err := mustProfiles(s, []string{name})
		if err != nil {
			return nil, err
		}
		p := ps[0]
		cells := make([]string, s.NumProcessors())
		for k := 0; k < s.NumProcessors(); k++ {
			if d := soloLatency(p, k); d < 0 {
				cells[k] = "ERR"
			} else {
				// strconv + concat instead of Sprintf: these per-cell
				// strings dominate the hot experiment's formatting cost.
				ms := d.Seconds() * 1e3
				cells[k] = strconv.FormatFloat(ms, 'f', 2, 64) + "ms"
				r.metric(name+"/"+s.Processors[k].ID+"_ms", ms)
			}
		}
		r.add("%-12s %10s %10s %10s %10s", name, cells[0], cells[1], cells[2], cells[3])
	}
	return r, nil
}

// RunFig2a regenerates Fig. 2(a): cumulative completion time of a request
// stream under serial big-CPU execution vs the heterogeneous pipeline.
func RunFig2a(cfg Config) (*Report, error) {
	r := &Report{ID: "fig2a", Title: Title("fig2a")}
	s := soc.Kirin990()
	names := []string{model.ResNet50, model.SqueezeNet, model.InceptionV4,
		model.MobileNetV2, model.GoogLeNet, model.AlexNet}
	if cfg.Quick {
		names = names[:4]
	}
	profs, err := mustProfiles(s, names)
	if err != nil {
		return nil, err
	}
	serialSched, err := baseline.SerialMNN(s, profs)
	if err != nil {
		return nil, err
	}
	serialRes, err := pipeline.Execute(serialSched, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	plan, err := pl.PlanProfiles(profs)
	if err != nil {
		return nil, err
	}
	hetRes, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	r.add("%-4s %-12s %14s %14s", "#", "model", "serial CPU_B", "heterogeneous")
	for i, n := range names {
		r.add("%-4d %-12s %12.1fms %12.1fms", i+1, n,
			serialRes.Completions[i].Seconds()*1e3,
			hetRes.Completions[i].Seconds()*1e3)
	}
	r.metric("serial_makespan_ms", serialRes.Makespan.Seconds()*1e3)
	r.metric("hetero_makespan_ms", hetRes.Makespan.Seconds()*1e3)
	r.metric("queueing_reduction_x", serialRes.Makespan.Seconds()/hetRes.Makespan.Seconds())
	return r, nil
}

// RunFig2b regenerates Fig. 2(b): the three PMU counters per model on the
// big CPU, ranked by measured contention intensity.
func RunFig2b(cfg Config) (*Report, error) {
	r := &Report{ID: "fig2b", Title: Title("fig2b")}
	s := soc.Kirin990()
	big := s.Processor("cpu-big")
	type row struct {
		name      string
		intensity float64
		c         perf.Counters
	}
	rows := make([]row, 0, 10)
	for _, name := range model.Names() {
		m := model.MustByName(name)
		rows = append(rows, row{
			name:      name,
			intensity: contention.Measure(big, m).DemandGBps,
			c:         perf.Profile(big, m),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].intensity > rows[j].intensity })
	r.add("%-12s %12s %8s %10s %10s", "model", "intensity", "IPC", "miss-rate", "stall")
	for rank, row := range rows {
		r.add("%-12s %10.2fGB/s %8.2f %10.3f %10.3f",
			row.name, row.intensity, row.c.IPC, row.c.CacheMissRate, row.c.StalledBackend)
		r.metric(fmt.Sprintf("rank_%02d_%s", rank, row.name), row.intensity)
		r.metric(row.name+"_intensity", row.intensity)
	}
	return r, nil
}

// RunTable2 regenerates Table II: solo vs co-execution latency for the
// SqueezeNet/ViT/BERT pairs on the Kirin 990 CPU/GPU.
func RunTable2(cfg Config) (*Report, error) {
	r := &Report{ID: "tab2", Title: Title("tab2")}
	s := soc.Kirin990()
	big, gpu := s.Processor("cpu-big"), s.Processor("gpu")
	pairs := []struct {
		cpuModel, gpuModel string
	}{
		{model.SqueezeNet, model.BERT},
		{model.ViT, model.BERT},
		{model.BERT, model.ViT},
		{model.YOLOv4, model.BERT},
	}
	r.add("%-12s %-6s %14s %14s %10s", "model", "proc", "solo", "co-exec", "slowdown")
	for _, pr := range pairs {
		ma, mb := model.MustByName(pr.cpuModel), model.MustByName(pr.gpuModel)
		fa, fb := contention.Measure(big, ma), contention.Measure(gpu, mb)
		sa, sb := contention.PairSlowdowns(s.BusBandwidthGBps, fa, fb)
		soloA := soloOn(s, big, ma)
		soloB := soloOn(s, gpu, mb)
		r.add("%-12s %-6s %12.2fms %12.2fms %9.2f%%", pr.cpuModel, "CPU_B",
			soloA.Seconds()*1e3, soloA.Seconds()*(1+sa)*1e3, sa*100)
		r.add("%-12s %-6s %12.2fms %12.2fms %9.2f%%", pr.gpuModel, "GPU",
			soloB.Seconds()*1e3, soloB.Seconds()*(1+sb)*1e3, sb*100)
		r.metric(pr.cpuModel+"_cpu_slowdown_pct", sa*100)
		r.metric(pr.gpuModel+"_gpu_vs_"+pr.cpuModel+"_slowdown_pct", sb*100)
	}
	return r, nil
}

func soloOn(s *soc.SoC, p *soc.Processor, m *model.Model) time.Duration {
	var sum time.Duration
	for _, l := range m.Layers {
		if t := p.LayerTime(l); t != soc.InfDuration {
			sum += t
		}
	}
	return sum + p.LaunchOverhead
}

// RunEq1 fits the Eq. (1) ridge regression and reports its weights and the
// prediction/ground-truth correlation.
func RunEq1(cfg Config) (*Report, error) {
	r := &Report{ID: "eq1", Title: Title("eq1")}
	s := soc.Kirin990()
	big := s.Processor("cpu-big")
	est, err := contention.TrainEstimator(big, model.All(), 0.1)
	if err != nil {
		return nil, err
	}
	var pred, truth []float64
	r.add("%-12s %14s %14s", "model", "predicted", "measured")
	for _, m := range model.All() {
		p := est.Intensity(m)
		g := contention.Measure(big, m).DemandGBps
		pred = append(pred, p)
		truth = append(truth, g)
		r.add("%-12s %12.2fGB/s %12.2fGB/s", m.Name, p, g)
	}
	corr := stats.Pearson(pred, truth)
	r.metric("pearson", corr)
	r.add("Pearson(predicted, measured) = %.3f", corr)
	return r, nil
}

// RunFig10 regenerates Fig. 10: intra-cluster co-execution slowdown when
// YOLOv4 and VGG16 are co-located on per-core partitions of one CPU cluster
// (labels BB-BB, SS-SS, BBB-B, SSS-S as in the paper). Sub-partitions split
// the cluster's cores and shared L2 and contend for the cluster's single
// memory port, which is why the paper schedules clusters whole.
func RunFig10(cfg Config) (*Report, error) {
	r := &Report{ID: "fig10", Title: Title("fig10")}
	s := soc.Kirin990()
	big := s.Processor("cpu-big")
	small := s.Processor("cpu-small")
	ma, mb := model.MustByName(model.YOLOv4), model.MustByName(model.VGG16)
	configs := []struct {
		label          string
		base           *soc.Processor
		coresA, coresB int
	}{
		{"BB-BB", big, 2, 2},
		{"SS-SS", small, 2, 2},
		{"BBB-B", big, 3, 1},
		{"SSS-S", small, 3, 1},
	}
	r.add("%-8s %18s %18s", "config", "YOLOv4 slowdown", "VGG16 slowdown")
	worst := 0.0
	for _, c := range configs {
		sa, sb := intraClusterPair(c.base, c.coresA, c.coresB, ma, mb)
		r.add("%-8s %17.0f%% %17.0f%%", c.label, sa*100, sb*100)
		r.metric(c.label+"_yolo_pct", sa*100)
		r.metric(c.label+"_vgg_pct", sb*100)
		if sa > worst {
			worst = sa
		}
		if sb > worst {
			worst = sb
		}
	}
	r.metric("worst_pct", worst*100)
	r.add("worst intra-cluster slowdown: %.0f%% (paper: up to ~70%%)", worst*100)
	r.add("whole-cluster scheduling model: %.0f%% at two-way sharing",
		(contention.IntraClusterSlowdown(2)-1)*100)
	return r, nil
}

// intraClusterPair simulates splitting one CPU cluster between two models:
// each sub-partition gets a proportional share of cores and of the shared
// L2, the two contend on the cluster's single memory port, and — the
// dominant effect the paper measures — conflicting evictions in the shared
// L2 add a cache-thrashing penalty proportional to how much of each model's
// time runs on spilled working sets. Together these reach the ~70 % the
// paper reports on the performance cores.
func intraClusterPair(base *soc.Processor, coresA, coresB int, ma, mb *model.Model) (float64, float64) {
	sub := func(cores int) *soc.Processor {
		p := *base
		p.Cores = cores
		frac := float64(cores) / float64(base.Cores)
		p.PeakGFLOPS = base.PeakGFLOPS * frac
		p.L2Bytes = int64(float64(base.L2Bytes) * frac / 2) // conflict misses
		return &p
	}
	pa, pb := sub(coresA), sub(coresB)
	fa := contention.Measure(pa, ma)
	fb := contention.Measure(pb, mb)
	busA, busB := contention.PairSlowdowns(base.SoloBandwidthGBps, fa, fb)
	// Cache-conflict term: the whole-cluster penalty of Appendix A scaled
	// by each victim's spill exposure on its shrunken L2 share.
	conflict := contention.IntraClusterSlowdown(2) - 1
	return busA + conflict*spillFraction(pa, ma), busB + conflict*spillFraction(pb, mb)
}

// spillFraction returns the time fraction the model spends in layers whose
// working set exceeds the (partitioned) L2.
func spillFraction(p *soc.Processor, m *model.Model) float64 {
	var spilled, total float64
	for _, l := range m.Layers {
		t := p.LayerTime(l)
		if t == soc.InfDuration {
			continue
		}
		sec := t.Seconds()
		total += sec
		if l.WorkingSetBytes > p.L2Bytes {
			spilled += sec
		}
	}
	if total == 0 {
		return 0
	}
	return spilled / total
}
