package experiments

import (
	"fmt"
	"time"

	"hetero2pipe/internal/baseline"
	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/workload"
)

// runSchemeFull executes one scheme over one combination's profiles and
// returns the full executed result (latency, throughput, energy, traces).
func runSchemeFull(name string, s *soc.SoC, profs []*profile.Profile) (*pipeline.Result, error) {
	var sched *pipeline.Schedule
	var err error
	switch name {
	case "MNN":
		sched, err = baseline.SerialMNN(s, profs)
	case "Pipe-it":
		sched, err = baseline.PipeIt(s, profs)
	case "Band":
		sched, err = baseline.Band(s, profs)
	case "NoC/T", "H2P":
		opts := core.DefaultOptions()
		if name == "NoC/T" {
			opts = core.NoCTOptions()
		}
		var pl *core.Planner
		pl, err = core.NewPlanner(s, opts)
		if err != nil {
			return nil, err
		}
		var plan *core.Plan
		plan, err = pl.PlanProfiles(profs)
		if err != nil {
			return nil, err
		}
		sched = plan.Schedule
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
	if err != nil {
		return nil, err
	}
	return pipeline.Execute(sched, pipeline.DefaultOptions())
}

// fig7Schemes lists the Fig. 7 comparison schemes in presentation order.
var fig7Schemes = []string{"MNN", "Pipe-it", "Band", "NoC/T", "H2P"}

// RunFig7 regenerates Fig. 7: mean latency and throughput of every scheme
// over random model combinations on each of the three SoCs, plus the
// Band-vs-Hetero²Pipe solution scatter statistics.
func RunFig7(cfg Config) (*Report, error) {
	r := &Report{ID: "fig7", Title: Title("fig7")}
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	minM, maxM := 3, 8
	if cfg.Quick {
		minM, maxM = 3, 5
	}
	gen, err := workload.NewGenerator(cfg.Seed, minM, maxM)
	if err != nil {
		return nil, err
	}
	comboNames := gen.Combos(combos)

	for _, s := range soc.Presets() {
		latencies := make(map[string][]float64, len(fig7Schemes))
		throughputs := make(map[string][]float64, len(fig7Schemes))
		for _, names := range comboNames {
			profs, err := mustProfiles(s, names)
			if err != nil {
				return nil, err
			}
			for _, scheme := range fig7Schemes {
				res, err := runSchemeFull(scheme, s, profs)
				if err != nil {
					return nil, err
				}
				latencies[scheme] = append(latencies[scheme], res.Makespan.Seconds())
				throughputs[scheme] = append(throughputs[scheme], res.Throughput())
			}
		}
		r.add("%s (%d combos):", s.Name, combos)
		r.add("  %-8s %14s %16s", "scheme", "mean latency", "mean throughput")
		for _, scheme := range fig7Schemes {
			ml := stats.Mean(latencies[scheme])
			mt := stats.Mean(throughputs[scheme])
			r.add("  %-8s %12.1fms %13.2f inf/s", scheme, ml*1e3, mt)
			r.metric(s.Name+"/"+scheme+"_latency_ms", ml*1e3)
			r.metric(s.Name+"/"+scheme+"_throughput", mt)
		}
		// Per-combo speedups of H²P over each baseline.
		for _, baseScheme := range []string{"MNN", "Pipe-it", "Band", "NoC/T"} {
			sp := stats.Speedups(latencies[baseScheme], latencies["H2P"])
			r.metric(s.Name+"/speedup_vs_"+baseScheme+"_mean", stats.Mean(sp))
			r.metric(s.Name+"/speedup_vs_"+baseScheme+"_max", stats.Max(sp))
			r.add("  H²P vs %-8s mean %.2fx  max %.2fx", baseScheme, stats.Mean(sp), stats.Max(sp))
		}
		// Band-vs-H²P scatter: mean gain and solution variance (the
		// rightmost panels of Fig. 7).
		gain := stats.Speedups(latencies["Band"], latencies["H2P"])
		r.metric(s.Name+"/band_gain_mean", stats.Mean(gain))
		r.metric(s.Name+"/band_var", stats.StdDev(latencies["Band"]))
		r.metric(s.Name+"/h2p_var", stats.StdDev(latencies["H2P"]))
		r.add("  Band scatter: H²P gain %.1f%%, σ(Band)=%.1fms σ(H²P)=%.1fms",
			(stats.Mean(gain)-1)*100,
			stats.StdDev(latencies["Band"])*1e3,
			stats.StdDev(latencies["H2P"])*1e3)
	}
	return r, nil
}

// executeMakespan is a small helper for ablation runs.
func executeMakespan(sched *pipeline.Schedule) (time.Duration, error) {
	res, err := pipeline.Execute(sched, pipeline.DefaultOptions())
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
