package experiments

import (
	"fmt"

	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stats"
	"hetero2pipe/internal/workload"
)

// RunSensitivity is a design-space extension: how do the scheme rankings
// shift as the hardware scales? Two sweeps on a Kirin 990 base:
//
//   - NPU peak ×{0.25, 0.5, 1, 2, 4}: with a weak NPU, pipeline planning
//     across CPU/GPU carries the win; with an overwhelming NPU, Band-style
//     whole-model offload converges toward H²P.
//   - Bus bandwidth ×{0.5, 1, 2}: scarcer bandwidth raises co-execution
//     slowdown, which widens the gap between full Hetero²Pipe and its
//     contention-blind No-C/T ablation — the paper's core motivation.
func RunSensitivity(cfg Config) (*Report, error) {
	r := &Report{ID: "sensitivity", Title: Title("sensitivity")}
	combos := cfg.Combos
	if combos <= 0 {
		combos = 100
	}
	if cfg.Quick && combos > 6 {
		combos = 6
	}
	gen, err := workload.NewGenerator(cfg.Seed+6, 3, 6)
	if err != nil {
		return nil, err
	}
	comboNames := gen.Combos(combos)

	meanLatency := func(scheme string, s *soc.SoC) (float64, error) {
		var lats []float64
		for _, names := range comboNames {
			profs, err := mustProfiles(s, names)
			if err != nil {
				return 0, err
			}
			res, err := runSchemeFull(scheme, s, profs)
			if err != nil {
				return 0, err
			}
			lats = append(lats, res.Makespan.Seconds())
		}
		return stats.Mean(lats), nil
	}

	r.add("NPU-scale sweep (Kirin 990 base):")
	r.add("%-6s %12s %12s %12s %16s", "scale", "MNN", "Band", "H²P", "H²P vs Band")
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		s := scaledNPU(scale)
		mnn, err := meanLatency("MNN", s)
		if err != nil {
			return nil, err
		}
		band, err := meanLatency("Band", s)
		if err != nil {
			return nil, err
		}
		h2p, err := meanLatency("H2P", s)
		if err != nil {
			return nil, err
		}
		r.add("%-6.2g %10.1fms %10.1fms %10.1fms %15.2f×", scale, mnn*1e3, band*1e3, h2p*1e3, band/h2p)
		r.metric(fmt.Sprintf("npu%.2g_band_vs_h2p", scale), band/h2p)
		r.metric(fmt.Sprintf("npu%.2g_mnn_vs_h2p", scale), mnn/h2p)
	}

	r.add("bus-bandwidth sweep (Kirin 990 base):")
	r.add("%-6s %12s %12s %16s", "scale", "NoC/T", "H²P", "C/T advantage")
	for _, scale := range []float64{0.5, 1, 2} {
		s := scaledBus(scale)
		noct, err := meanLatency("NoC/T", s)
		if err != nil {
			return nil, err
		}
		h2p, err := meanLatency("H2P", s)
		if err != nil {
			return nil, err
		}
		r.add("%-6.2g %10.1fms %10.1fms %15.2f×", scale, noct*1e3, h2p*1e3, noct/h2p)
		r.metric(fmt.Sprintf("bus%.2g_ct_advantage", scale), noct/h2p)
	}
	return r, nil
}

// scaledNPU returns a Kirin 990 whose NPU peak is scaled by f.
func scaledNPU(f float64) *soc.SoC {
	s := soc.Kirin990()
	idx := s.ProcessorsOfKind(soc.KindNPU)[0]
	s.Processors[idx].PeakGFLOPS *= f
	return s
}

// scaledBus returns a Kirin 990 whose shared bus (and proportional copy
// bandwidth) is scaled by f.
func scaledBus(f float64) *soc.SoC {
	s := soc.Kirin990()
	s.BusBandwidthGBps *= f
	s.CopyBandwidthGBps *= f
	return s
}
