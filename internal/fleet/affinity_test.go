package fleet

import (
	"strings"
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
)

// runPolicyFleet runs a fixed recurring workload — 4 distinct models cycled
// into 64 requests against 2 identical devices with whole-plan caches — under
// the given policy and returns the fleet-wide planner_plan_cache_hits_total.
func runPolicyFleet(t *testing.T, policy Policy) uint64 {
	t.Helper()
	reg := obs.NewRegistry("h2pipe")
	devices := []*Device{
		testDevice(t, "dev0", reg, nil),
		testDevice(t, "dev1", reg, nil),
	}
	fl, err := New(devices, Config{Policy: policy, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2}
	requests := cycledRequests(t, names, 64, 50*time.Microsecond)
	res, err := fl.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Handoffs != 0 {
		t.Fatalf("steady-state run recorded %d handoffs", res.Handoffs)
	}
	var hits uint64
	for key, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(key, "planner_plan_cache_hits_total") {
			hits += v
		}
	}
	return hits
}

// TestAffinityBeatsHashOnPlanCache pins the point of the affinity policy:
// against the same recurring request mix, pinning models to devices must
// reproduce window signatures and therefore score strictly more whole-plan
// cache hits (planner_plan_cache_hits_total across the fleet) than scattering
// requests by consistent hash.
func TestAffinityBeatsHashOnPlanCache(t *testing.T) {
	hashHits := runPolicyFleet(t, NewHashPolicy())
	affinityHits := runPolicyFleet(t, NewAffinityPolicy())
	t.Logf("plan cache hits: hash=%d affinity=%d", hashHits, affinityHits)
	if affinityHits <= hashHits {
		t.Errorf("affinity policy scored %d plan-cache hits, hash scored %d — affinity must win on a recurring mix",
			affinityHits, hashHits)
	}
	if affinityHits == 0 {
		t.Error("affinity policy scored zero plan-cache hits — windows never recur?")
	}
}
