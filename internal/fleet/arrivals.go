package fleet

import (
	"sort"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/stream"
)

// PoissonArrivals generates a fleet-wide arrival sequence from one base
// seed: models are dealt round-robin across devices-many independent
// Poisson substreams, each seeded with stream.DeviceSeed(seed, d) so no two
// substreams correlate (a shared or naively-offset seed would give every
// device near-identical gap sequences through the generator's LCG), and the
// substreams are merged back into one arrival-sorted request list for the
// router to shard. devices ≤ 1 degrades to stream.PoissonArrivals
// unchanged, so single-device callers keep their exact historical streams.
func PoissonArrivals(models []*model.Model, meanGap time.Duration, seed uint64, devices int) []stream.Request {
	if devices <= 1 {
		return stream.PoissonArrivals(models, meanGap, seed)
	}
	out := make([]stream.Request, 0, len(models))
	for d := 0; d < devices; d++ {
		var sub []*model.Model
		for i := d; i < len(models); i += devices {
			sub = append(sub, models[i])
		}
		if len(sub) == 0 {
			continue
		}
		// Each substream keeps the fleet-wide mean rate: devices-many
		// substreams at devices× the per-stream gap superpose back to a
		// Poisson process with the requested mean gap.
		out = append(out, stream.PoissonArrivals(sub, meanGap*time.Duration(devices), stream.DeviceSeed(seed, d))...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Arrival < out[b].Arrival })
	return out
}
