// Package fleet scales Hetero²Pipe from one SoC to many: a Device wraps one
// SoC with its own planner, plan cache, window feed and degradation event
// stream, and a Fleet shards an arrival-ordered request stream across N
// mixed-preset devices by pluggable routing policy (consistent hashing,
// least-sojourn, plan-cache affinity), failing windows over to healthy peers
// when a device's processors go offline mid-run.
//
// The Device extraction is deliberately a pure refactor of the single-SoC
// path: a 1-device fleet produces results byte-identical to running
// stream.Scheduler directly (pinned by the differential test in
// fleet_diff_test.go). Every device publishes into one shared obs registry
// through per-device labeled views (`name{device="dev0"}` series), so a
// fleet run is also the first real concurrent stress on the lock-free obs
// store.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// DeviceSpec describes one device to construct: its SoC, planner
// configuration and stream scheduler defaults (including the device's own
// degradation event timeline on Stream.Events).
type DeviceSpec struct {
	// Name identifies the device in metrics labels, spans, reports and the
	// /fleet endpoint ("dev0", "dev1", ...). An empty name skips metric
	// labeling — the single-device facade path, which must keep the
	// unlabeled series names it always had.
	Name string
	// SoC is the device's processor description. Required; use a fresh
	// instance per device (soc.PresetByName returns one) — devices mutate
	// their SoC through degradation events.
	SoC *soc.SoC
	// Planner configures the device's planner (plan cache size, mitigation,
	// parallelism, ...).
	Planner core.Options
	// Stream is the device's default scheduler configuration; Stream.Events
	// is the device's own degradation timeline.
	Stream stream.Config
}

// Device is one instance-scoped scheduler: SoC + planner (with its plan and
// cost caches) + window feed + degradation events. It is the unit the fleet
// router shards over, and what the library facade wraps for single-SoC use.
type Device struct {
	name    string
	soc     *soc.SoC
	planner *core.Planner
	feed    *stream.Feed
	cfg     stream.Config
	metrics *obs.Registry // per-device labeled view (nil when unmetered)
}

// NewDevice builds a device from its spec. reg, when non-nil, becomes the
// device's metrics outlet: a named spec gets a `device="<name>"` labeled
// view of it (sharing reg's store), an unnamed spec writes unlabeled.
// logger, when non-nil, is attached to planner and scheduler the same way.
func NewDevice(spec DeviceSpec, reg *obs.Registry, logger *slog.Logger) (*Device, error) {
	if spec.SoC == nil {
		return nil, errors.New("fleet: device spec has nil SoC")
	}
	view := reg
	if spec.Name != "" {
		view = reg.WithLabels("device", spec.Name)
	}
	popts := spec.Planner
	scfg := spec.Stream
	if view != nil {
		popts.Metrics = view
		scfg.Metrics = view
	}
	if logger != nil {
		popts.Logger = logger
		scfg.Logger = logger
	}
	// Phase events and partial timelines carry the device identity through
	// fleet stitching.
	if scfg.DeviceName == "" {
		scfg.DeviceName = spec.Name
	}
	if scfg.MaxWindow == 0 {
		scfg = mergeStreamDefaults(scfg)
	}
	feed := stream.NewFeed(0)
	scfg.Feed = feed
	planner, err := core.NewPlanner(spec.SoC, popts)
	if err != nil {
		return nil, fmt.Errorf("fleet: device %q: %w", spec.Name, err)
	}
	return &Device{
		name:    spec.Name,
		soc:     spec.SoC,
		planner: planner,
		feed:    feed,
		cfg:     scfg,
		metrics: view,
	}, nil
}

// mergeStreamDefaults fills a zero-valued stream config with the scheduler
// defaults while keeping any fields the caller did set.
func mergeStreamDefaults(cfg stream.Config) stream.Config {
	def := stream.DefaultConfig()
	def.Events = cfg.Events
	def.Metrics = cfg.Metrics
	def.Logger = cfg.Logger
	def.Feed = cfg.Feed
	def.CollectWindowTraces = cfg.CollectWindowTraces
	def.HaltInfeasible = cfg.HaltInfeasible
	def.Objective = cfg.Objective
	def.SLO = cfg.SLO
	def.RequestTracing = cfg.RequestTracing
	def.Traces = cfg.Traces
	def.SLOMonitor = cfg.SLOMonitor
	def.DeviceName = cfg.DeviceName
	if cfg.MaxBatch != 0 {
		def.MaxBatch = cfg.MaxBatch
	}
	if cfg.MaxRetries != 0 {
		def.MaxRetries = cfg.MaxRetries
	}
	if cfg.RetryBackoff != 0 {
		def.RetryBackoff = cfg.RetryBackoff
	}
	return def
}

// Name reports the device's fleet name ("" for an unnamed facade device).
func (d *Device) Name() string { return d.name }

// SoC returns the device's SoC description.
func (d *Device) SoC() *soc.SoC { return d.soc }

// Planner returns the device's planner.
func (d *Device) Planner() *core.Planner { return d.planner }

// Feed returns the device's live window feed (the obs server's /windows and
// /readyz backing).
func (d *Device) Feed() *stream.Feed { return d.feed }

// StreamConfig returns the device's default scheduler configuration.
func (d *Device) StreamConfig() stream.Config { return d.cfg }

// Metrics returns the device's registry view (labeled for named devices,
// nil when the device is unmetered).
func (d *Device) Metrics() *obs.Registry { return d.metrics }

// Live reports whether any of the device's processors is in service. A
// device whose processors are all offline cannot plan any window
// (core.ErrInfeasiblePartition) and is skipped by the router.
func (d *Device) Live() bool {
	return len(d.soc.AvailableProcessors()) > 0
}

// HasCachedPlan reports whether the device's planner holds a memoized plan
// for the given window of models at its current degradation epoch — the
// read-only peek behind the plan-cache affinity policy.
func (d *Device) HasCachedPlan(models []*model.Model) bool {
	return d.planner.HasCachedPlan(models)
}

// Run executes an arrival-ordered request stream on this device. A
// zero-valued cfg (MaxWindow == 0) inherits the device's defaults, keeping
// any events the caller did set; a non-zero cfg is used as given, with the
// device's events, metrics view, logger and feed filled in only where cfg
// left them unset. This is the instance-scoped scheduler invocation both
// the library facade (System.RunStream) and the fleet failover loop build
// on.
func (d *Device) Run(ctx context.Context, requests []stream.Request, cfg stream.Config, execOpts pipeline.Options) (*stream.Result, error) {
	if cfg.MaxWindow == 0 {
		events := cfg.Events
		cfg = d.cfg
		if events != nil {
			cfg.Events = events
		}
	} else if cfg.Events == nil {
		cfg.Events = d.cfg.Events
	}
	if cfg.Metrics == nil {
		cfg.Metrics = d.cfg.Metrics
	}
	if cfg.Logger == nil {
		cfg.Logger = d.cfg.Logger
	}
	if cfg.Feed == nil {
		cfg.Feed = d.feed
	}
	if cfg.Objective == core.ObjectiveMakespan {
		cfg.Objective = d.cfg.Objective
	}
	if cfg.SLO.Kind == core.SLOUnset {
		cfg.SLO = d.cfg.SLO
	}
	if !cfg.RequestTracing {
		cfg.RequestTracing = d.cfg.RequestTracing
	}
	if cfg.Traces == nil {
		cfg.Traces = d.cfg.Traces
	}
	if cfg.SLOMonitor == nil {
		cfg.SLOMonitor = d.cfg.SLOMonitor
	}
	if cfg.DeviceName == "" {
		cfg.DeviceName = d.cfg.DeviceName
	}
	sched, err := stream.NewScheduler(d.planner, cfg)
	if err != nil {
		return nil, err
	}
	return sched.RunContext(ctx, requests, execOpts)
}
