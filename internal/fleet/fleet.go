package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// Config tunes a fleet front-end.
type Config struct {
	// Policy shards requests across devices; nil selects consistent hashing.
	Policy Policy
	// Metrics, when set, receives fleet-level observability
	// (fleet_requests_total, fleet_handoffs_total, fleet_devices,
	// fleet_devices_down, per-device fleet_routed_total{device=...}). Pass
	// the same root registry the devices were built against so one snapshot
	// covers fleet, planners, executors and schedulers.
	Metrics *obs.Registry
	// Logger, when set, receives fleet state transitions: run start/end,
	// device halts and failover rounds.
	Logger *slog.Logger
	// Spans, when set, records a fleet_run span with one fleet_device child
	// per device run (each of which parents that device's stream_run tree).
	Spans *obs.SpanRecorder
}

// Fleet shards request streams across devices and fails halted devices'
// backlogs over to healthy peers. A Fleet runs one stream at a time (Run
// serialises); Status may be read concurrently at any point — the obs
// server's /fleet endpoint does.
type Fleet struct {
	devices []*Device
	policy  Policy
	metrics *obs.Registry
	logger  *slog.Logger
	spans   *obs.SpanRecorder

	mRequests *obs.Counter
	mHandoffs *obs.Counter
	gDevices  *obs.Gauge
	gDown     *obs.Gauge

	runMu sync.Mutex // serialises Run

	mu     sync.Mutex // guards status
	status Status
}

// New assembles a fleet over the given devices. Device names must be unique
// (unnamed devices are only valid in single-device fleets, where no label
// disambiguation is needed).
func New(devices []*Device, cfg Config) (*Fleet, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	seen := make(map[string]bool, len(devices))
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("fleet: device %d is nil", i)
		}
		if d.Name() == "" && len(devices) > 1 {
			return nil, fmt.Errorf("fleet: device %d unnamed in a multi-device fleet", i)
		}
		if d.Name() != "" && seen[d.Name()] {
			return nil, fmt.Errorf("fleet: duplicate device name %q", d.Name())
		}
		seen[d.Name()] = true
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewHashPolicy()
	}
	f := &Fleet{
		devices:   devices,
		policy:    policy,
		metrics:   cfg.Metrics,
		logger:    cfg.Logger,
		spans:     cfg.Spans,
		mRequests: cfg.Metrics.Counter("fleet_requests_total"),
		mHandoffs: cfg.Metrics.Counter("fleet_handoffs_total"),
		gDevices:  cfg.Metrics.Gauge("fleet_devices"),
		gDown:     cfg.Metrics.Gauge("fleet_devices_down"),
	}
	f.gDevices.Set(float64(len(devices)))
	f.status = Status{Policy: policy.Name(), Devices: make([]DeviceStatus, len(devices))}
	for i, d := range devices {
		f.status.Devices[i] = DeviceStatus{Device: deviceRingName(d, i), SoC: d.SoC().Name, Live: d.Live()}
	}
	return f, nil
}

// Devices returns the fleet's device list (do not mutate).
func (f *Fleet) Devices() []*Device { return f.devices }

// Policy returns the fleet's routing policy name.
func (f *Fleet) Policy() string { return f.policy.Name() }

// Result aggregates one fleet run. Completions and Sojourns are indexed by
// the fleet-wide request index; sojourns are measured against the request's
// original arrival even when it completed on a failover device.
type Result struct {
	// Requests is the fleet-wide request count.
	Requests int
	// Assignments[d] lists the fleet request indices the router assigned to
	// device d for the primary shard (arrival order preserved).
	Assignments [][]int
	// PerDevice[d] is device d's primary-shard stream result (nil when the
	// device was assigned no requests).
	PerDevice []*stream.Result
	// HandoffResults[d] holds one stream result per failover batch replayed
	// onto device d.
	HandoffResults [][]*stream.Result
	// Completions[i] is request i's absolute completion on the shared
	// virtual clock; Sojourns[i] is completion − original arrival.
	Completions, Sojourns []time.Duration
	// Makespan is the latest completion across the fleet.
	Makespan time.Duration
	// Handoffs counts requests completed on a device other than their
	// primary assignment (Request.Handoff completions).
	Handoffs int
	// Down[d] marks devices that halted during the run (all capable
	// processors offline past the plan-retry budget).
	Down []bool
	// Timelines[i] is request i's stitched fleet-wide timeline when request
	// tracing is armed on any device: the phase events of every device the
	// request touched (pre-handoff partials included), one trace ID
	// throughout, and a sojourn decomposition — queue wait, backoff,
	// interrupt loss, exec and handoff transit — summing exactly to the
	// fleet-level sojourn against the original arrival. Nil when tracing is
	// off.
	Timelines []stream.RequestTimeline
	// Report is the merged fleet report (obs.FleetReport).
	Report *obs.FleetReport
}

// Run executes the fleet under a background context.
func (f *Fleet) Run(requests []stream.Request, execOpts pipeline.Options) (*Result, error) {
	return f.RunContext(context.Background(), requests, execOpts)
}

// handoff is one request awaiting failover re-admission.
type handoff struct {
	idx     int           // fleet request index
	arrival time.Duration // re-admission time: max(original arrival, source halt)
}

// RunContext shards the arrival-ordered request stream across the fleet's
// live devices by policy, runs every device's shard concurrently on the
// shared virtual clock, then drives failover rounds: a device that halts
// (Config.HaltInfeasible — its plan-retry budget exhausted with every
// capable processor offline) hands its unfinished backlog to the router,
// which re-routes it across the remaining live devices with Request.Handoff
// set and arrivals pushed to max(original arrival, halt instant, target's
// busy horizon). Rounds are bounded by the device count; a run whose last
// live device halts returns an error.
func (f *Fleet) RunContext(ctx context.Context, requests []stream.Request, execOpts pipeline.Options) (*Result, error) {
	f.runMu.Lock()
	defer f.runMu.Unlock()

	n := len(requests)
	for i := 1; i < n; i++ {
		if requests[i].Arrival < requests[i-1].Arrival {
			return nil, fmt.Errorf("fleet: requests not sorted by arrival at %d", i)
		}
	}
	nd := len(f.devices)
	f.policy.Reset(f.devices)

	// Request tracing is armed fleet-wide when any device traces. Trace IDs
	// are assigned here, from the fleet-wide index, before sharding — the
	// only place every request is still in one namespace — so a handed-off
	// request keeps one ID across devices and per-shard local indices can
	// never collide. The input slice is not mutated.
	tracing := false
	var traceStore *stream.TraceStore
	for _, d := range f.devices {
		c := d.StreamConfig()
		if c.RequestTracing || c.Traces != nil {
			tracing = true
			if traceStore == nil {
				traceStore = c.Traces
			}
		}
	}
	if tracing {
		traced := make([]stream.Request, n)
		copy(traced, requests)
		for i := range traced {
			if traced[i].Trace == 0 {
				traced[i].Trace = stream.NewTraceID(i)
			}
		}
		requests = traced
	}

	if f.spans != nil {
		ctx = obs.ContextWithRecorder(ctx, f.spans)
	}
	ctx, fsp := obs.StartSpan(ctx, "fleet_run",
		obs.Int("devices", int64(nd)),
		obs.Int("requests", int64(n)),
		obs.Str("policy", f.policy.Name()))
	defer fsp.End()

	down := make([]bool, nd)
	for i, d := range f.devices {
		down[i] = !d.Live()
	}
	live := liveIndices(down)
	if len(live) == 0 {
		return nil, errors.New("fleet: no live devices")
	}

	// Primary sharding: one routing decision per request, arrival order
	// preserved within every shard.
	assignments := make([][]int, nd)
	for i := range requests {
		dev := f.policy.Route(requests[i].Model, i, live, f.devices)
		assignments[dev] = append(assignments[dev], i)
	}
	f.mRequests.Add(uint64(n))
	for dev, idxs := range assignments {
		f.metrics.WithLabels("device", deviceRingName(f.devices[dev], dev)).
			Counter("fleet_routed_total").Add(uint64(len(idxs)))
	}
	f.setStatus(func(s *Status) {
		s.Running = true
		s.Requests = n
		s.Completed = 0
		s.Handoffs = 0
		for d := range s.Devices {
			s.Devices[d].Assigned = len(assignments[d])
			s.Devices[d].Completed = 0
			s.Devices[d].HandoffsIn = 0
			s.Devices[d].HandoffsOut = 0
			s.Devices[d].Live = !down[d]
		}
	})
	defer f.setStatus(func(s *Status) { s.Running = false })
	f.logAt(slog.LevelInfo, "fleet run start",
		"devices", nd, "requests", n, "policy", f.policy.Name())

	res := &Result{
		Requests:       n,
		Assignments:    assignments,
		PerDevice:      make([]*stream.Result, nd),
		HandoffResults: make([][]*stream.Result, nd),
		Completions:    make([]time.Duration, n),
		Sojourns:       make([]time.Duration, n),
		Down:           down,
	}
	completed := make([]bool, n)
	// busy[d] is device d's virtual-clock horizon: failover work lands no
	// earlier than the device's last scheduled instant.
	busy := make([]time.Duration, nd)

	// chains[i] accumulates request i's partial timelines from halted runs,
	// in hop order; the completing segment stitches them into one fleet-wide
	// timeline.
	var chains [][]stream.RequestTimeline
	if tracing {
		chains = make([][]stream.RequestTimeline, n)
		res.Timelines = make([]stream.RequestTimeline, n)
	}

	// merge folds one device run into the fleet result and returns the
	// locals left unfinished by a halt.
	merge := func(dev int, idxs []int, r *stream.Result, handoffRun bool) []int {
		if tracing && r.Timelines != nil {
			for local, fi := range idxs {
				tl := r.Timelines[local]
				if tl.Completed {
					final := stitchTimeline(chains[fi], tl, requests[fi], fi)
					res.Timelines[fi] = final
					// Re-Put under the fleet-wide index; same trace ID, so
					// this replaces the completing device's local-index entry
					// in place.
					traceStore.Put(final)
				} else {
					chains[fi] = append(chains[fi], tl)
				}
			}
		}
		unfin := make(map[int]bool, len(r.Unfinished))
		for _, local := range r.Unfinished {
			unfin[local] = true
		}
		done := 0
		for local, fi := range idxs {
			if unfin[local] {
				continue
			}
			res.Completions[fi] = r.Completions[local]
			res.Sojourns[fi] = r.Completions[local] - requests[fi].Arrival
			if r.Completions[local] > res.Makespan {
				res.Makespan = r.Completions[local]
			}
			completed[fi] = true
			done++
			// Release the routing credit: merge runs in the single main
			// goroutine, and each Settle touches only this device's load, so
			// policy state stays deterministic across map iteration orders.
			f.policy.Settle(requests[fi].Model, dev, f.devices)
		}
		if r.Makespan > busy[dev] {
			busy[dev] = r.Makespan
		}
		if r.HaltedAt > busy[dev] {
			busy[dev] = r.HaltedAt
		}
		if handoffRun {
			res.Handoffs += r.Handoffs
			f.mHandoffs.Add(uint64(r.Handoffs))
		}
		f.setStatus(func(s *Status) {
			s.Completed += done
			s.Devices[dev].Completed += done
			if handoffRun {
				s.Devices[dev].HandoffsIn += r.Handoffs
				s.Handoffs += r.Handoffs
			}
		})
		return r.Unfinished
	}

	// runShards executes one batch of per-device request lists concurrently —
	// the concurrent stress on the shared obs store, span ring and feeds.
	type shardOut struct {
		res *stream.Result
		err error
	}
	runShards := func(shards map[int][]stream.Request, handoffRun bool) (map[int]*stream.Result, error) {
		outs := make(map[int]*shardOut, len(shards))
		var wg sync.WaitGroup
		var outMu sync.Mutex
		for dev, reqs := range shards {
			wg.Add(1)
			go func(dev int, reqs []stream.Request) {
				defer wg.Done()
				d := f.devices[dev]
				cfg := d.StreamConfig()
				cfg.HaltInfeasible = true
				if handoffRun {
					// The device's own event timeline was consumed by its
					// primary run; a failover replay runs on the SoC state as
					// it stands. Non-nil empty slice: nil would re-inherit
					// the device's events in Device.Run.
					cfg.Events = []soc.Event{}
				}
				dctx, dsp := obs.StartSpan(ctx, "fleet_device",
					obs.Str("device", deviceRingName(d, dev)),
					obs.Int("requests", int64(len(reqs))),
					obs.Bool("handoff", handoffRun))
				r, err := d.Run(dctx, reqs, cfg, execOpts)
				dsp.End()
				outMu.Lock()
				outs[dev] = &shardOut{res: r, err: err}
				outMu.Unlock()
			}(dev, reqs)
		}
		wg.Wait()
		results := make(map[int]*stream.Result, len(outs))
		for dev, out := range outs {
			if out.err != nil {
				return nil, fmt.Errorf("fleet: device %s: %w",
					deviceRingName(f.devices[dev], dev), out.err)
			}
			results[dev] = out.res
		}
		return results, nil
	}

	// Phase 1: primary shards.
	shards := make(map[int][]stream.Request, nd)
	for dev, idxs := range assignments {
		if len(idxs) == 0 {
			continue
		}
		reqs := make([]stream.Request, len(idxs))
		for local, fi := range idxs {
			reqs[local] = requests[fi]
		}
		shards[dev] = reqs
	}
	primary, err := runShards(shards, false)
	if err != nil {
		return nil, err
	}
	var pending []handoff
	for dev, r := range primary {
		res.PerDevice[dev] = r
		unfinished := merge(dev, assignments[dev], r, false)
		if r.Halted {
			down[dev] = true
			f.markDown(dev, len(unfinished))
			for _, local := range unfinished {
				fi := assignments[dev][local]
				pending = append(pending, handoff{idx: fi, arrival: maxDur(requests[fi].Arrival, r.HaltedAt)})
			}
			f.logAt(slog.LevelWarn, "device halted",
				"device", deviceRingName(f.devices[dev], dev),
				"at", r.HaltedAt, "unfinished", len(unfinished))
		}
	}

	// Failover rounds: re-route halted devices' backlogs until drained. Each
	// round can at worst halt one more device, so the device count bounds
	// the rounds.
	for round := 0; len(pending) > 0; round++ {
		if round >= nd {
			return nil, fmt.Errorf("fleet: failover rounds exhausted with %d requests pending", len(pending))
		}
		live = liveIndices(down)
		if len(live) == 0 {
			return nil, fmt.Errorf("fleet: all devices down with %d requests pending", len(pending))
		}
		_, hsp := obs.StartSpan(ctx, "fleet_failover",
			obs.Int("round", int64(round)), obs.Int("requests", int64(len(pending))))
		hsp.End()
		f.logAt(slog.LevelWarn, "failover round",
			"round", round, "pending", len(pending), "live", len(live))

		batchIdxs := make(map[int][]handoff, len(live))
		for _, h := range pending {
			dev := f.policy.Route(requests[h.idx].Model, h.idx, live, f.devices)
			batchIdxs[dev] = append(batchIdxs[dev], h)
		}
		pending = nil
		shards = make(map[int][]stream.Request, len(batchIdxs))
		order := make(map[int][]int, len(batchIdxs))
		for dev, batch := range batchIdxs {
			// Push every re-admission past the target's busy horizon, then
			// restore arrival order for the scheduler.
			for i := range batch {
				batch[i].arrival = maxDur(batch[i].arrival, busy[dev])
			}
			sort.SliceStable(batch, func(a, b int) bool {
				if batch[a].arrival != batch[b].arrival {
					return batch[a].arrival < batch[b].arrival
				}
				return batch[a].idx < batch[b].idx
			})
			reqs := make([]stream.Request, len(batch))
			idxs := make([]int, len(batch))
			for i, h := range batch {
				reqs[i] = stream.Request{
					Model:    requests[h.idx].Model,
					Arrival:  h.arrival,
					Deadline: requests[h.idx].Deadline,
					Handoff:  true,
					// The SLO class travels with the request: failover must
					// not silently relax (or tighten) the objective a request
					// asked for when it lands on the rescue device. So does
					// the trace ID — the handoff hop is one timeline, not two.
					SLO:   requests[h.idx].SLO,
					Trace: requests[h.idx].Trace,
				}
				idxs[i] = h.idx
			}
			shards[dev] = reqs
			order[dev] = idxs
		}
		results, err := runShards(shards, true)
		if err != nil {
			return nil, err
		}
		for dev, r := range results {
			res.HandoffResults[dev] = append(res.HandoffResults[dev], r)
			unfinished := merge(dev, order[dev], r, true)
			if r.Halted {
				down[dev] = true
				f.markDown(dev, len(unfinished))
				for _, local := range unfinished {
					fi := order[dev][local]
					pending = append(pending, handoff{idx: fi, arrival: maxDur(shards[dev][local].Arrival, r.HaltedAt)})
				}
				f.logAt(slog.LevelWarn, "device halted during failover",
					"device", deviceRingName(f.devices[dev], dev),
					"at", r.HaltedAt, "unfinished", len(unfinished))
			}
		}
	}

	f.gDown.Set(float64(nd - len(liveIndices(down))))
	res.Report = f.buildReport(res)
	fsp.SetAttrs(obs.Int("handoffs", int64(res.Handoffs)), obs.Dur("makespan", res.Makespan))
	f.logAt(slog.LevelInfo, "fleet run complete",
		"requests", n, "handoffs", res.Handoffs, "makespan", res.Makespan)
	return res, nil
}

// stitchTimeline merges a request's per-device timeline segments — the
// partial timelines of every run that halted holding it, then the segment
// that completed it — into one fleet-wide timeline under the original
// arrival. Each hop contributes a handed_off event at the rescue device's
// re-admission instant and a HandoffTransit component covering the dead time
// from the source device's last covered instant (its halt, or the original
// arrival for a request its device never saw arrive) to that re-admission.
// Every segment's virtual components cover exactly its own
// [arrival, last event] span, so the stitched components telescope to
// completion − original arrival: the decomposition invariant holds fleet-wide.
func stitchTimeline(chain []stream.RequestTimeline, final stream.RequestTimeline, orig stream.Request, fi int) stream.RequestTimeline {
	segs := append(append([]stream.RequestTimeline(nil), chain...), final)
	out := segs[0]
	out.Index = fi
	out.Events = append([]stream.PhaseEvent(nil), out.Events...)
	for _, seg := range segs[1:] {
		lastCovered := out.Events[len(out.Events)-1].At
		transit := seg.Arrival - lastCovered
		if transit < 0 {
			transit = 0
		}
		out.Breakdown.HandoffTransit += transit
		dev := ""
		if len(seg.Events) > 0 {
			dev = seg.Events[0].Device
		}
		out.Events = append(out.Events, stream.PhaseEvent{
			Phase: stream.PhaseHandedOff, At: seg.Arrival, Device: dev, Window: -1,
		})
		out.Events = append(out.Events, seg.Events...)
		out.Breakdown.Add(seg.Breakdown)
		out.Handoff = true
	}
	out.Completed = final.Completed
	out.Completion = final.Completion
	out.Sojourn = final.Completion - out.Arrival
	// The completing device judged the deadline against its re-admission
	// arrival; the fleet judges against the original one (a segment-level
	// miss is always a fleet-level miss, since the fleet sojourn is longer).
	out.Missed = orig.Deadline > 0 && out.Sojourn > orig.Deadline
	if out.Missed && !final.Missed {
		last := out.Events[len(out.Events)-1]
		out.Events = append(out.Events, stream.PhaseEvent{
			Phase: stream.PhaseMissed, At: out.Completion, Device: last.Device, Window: last.Window,
		})
	}
	return out
}

// markDown flips one device's live status and charges its handed-off count.
func (f *Fleet) markDown(dev, handedOff int) {
	f.setStatus(func(s *Status) {
		s.Devices[dev].Live = false
		s.Devices[dev].HandoffsOut += handedOff
	})
}

// buildReport projects a finished Result into the merged fleet report.
func (f *Fleet) buildReport(res *Result) *obs.FleetReport {
	rep := &obs.FleetReport{
		Devices:    len(f.devices),
		Policy:     f.policy.Name(),
		Requests:   res.Requests,
		Handoffs:   res.Handoffs,
		MakespanMS: float64(res.Makespan) / float64(time.Millisecond),
	}
	var sojourns []time.Duration
	st := f.Status()
	for dev, d := range f.devices {
		dr := obs.FleetDeviceReport{
			Device:      deviceRingName(d, dev),
			SoC:         d.SoC().Name,
			Down:        res.Down[dev],
			Assigned:    len(res.Assignments[dev]),
			Completed:   st.Devices[dev].Completed,
			HandoffsIn:  st.Devices[dev].HandoffsIn,
			HandoffsOut: st.Devices[dev].HandoffsOut,
		}
		if r := res.PerDevice[dev]; r != nil {
			dr.Report = r.Report
		}
		for _, r := range res.HandoffResults[dev] {
			dr.HandoffReports = append(dr.HandoffReports, r.Report)
		}
		rep.Completed += dr.Completed
		rep.PerDevice = append(rep.PerDevice, dr)
	}
	for i, s := range res.Sojourns {
		if res.Completions[i] > 0 || s > 0 {
			sojourns = append(sojourns, s)
		}
	}
	if len(sojourns) > 0 {
		var sum time.Duration
		for _, s := range sojourns {
			sum += s
		}
		rep.MeanSojournMS = float64(sum) / float64(len(sojourns)) / float64(time.Millisecond)
		sort.Slice(sojourns, func(a, b int) bool { return sojourns[a] < sojourns[b] })
		idx := (len(sojourns)*95 + 99) / 100
		if idx > 0 {
			idx--
		}
		rep.P95SojournMS = float64(sojourns[idx]) / float64(time.Millisecond)
	}
	if res.Timelines != nil {
		rep.Decomposition = stream.DecomposeTimelines(res.Timelines)
	}
	return rep
}

// Status is the fleet's live state, served by the obs server's /fleet
// endpoint.
type Status struct {
	Policy    string         `json:"policy"`
	Running   bool           `json:"running"`
	Requests  int            `json:"requests"`
	Completed int            `json:"completed"`
	Handoffs  int            `json:"handoffs"`
	Devices   []DeviceStatus `json:"devices"`
}

// DeviceStatus is one device's row of the fleet status.
type DeviceStatus struct {
	Device   string `json:"device"`
	SoC      string `json:"soc"`
	Live     bool   `json:"live"`
	Assigned int    `json:"assigned"`
	// Completed counts requests finished on this device (primary and
	// handoff); HandoffsIn counts handoff completions among them;
	// HandoffsOut counts requests this device abandoned to failover.
	Completed   int `json:"completed"`
	HandoffsIn  int `json:"handoffs_in"`
	HandoffsOut int `json:"handoffs_out"`
}

// Status returns a copy of the fleet's live state. Safe to call from any
// goroutine, including while a run is in flight.
func (f *Fleet) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.status
	out.Devices = append([]DeviceStatus(nil), f.status.Devices...)
	return out
}

func (f *Fleet) setStatus(mut func(*Status)) {
	f.mu.Lock()
	mut(&f.status)
	f.mu.Unlock()
}

func (f *Fleet) logAt(level slog.Level, msg string, args ...any) {
	if f.logger == nil {
		return
	}
	f.logger.Log(context.Background(), level, msg, args...)
}

// liveIndices lists the indices not marked down, sorted ascending.
func liveIndices(down []bool) []int {
	var out []int
	for i, d := range down {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
