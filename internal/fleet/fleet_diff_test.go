package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// diffModels is the recurring request mix both sides of the differential run.
func diffModels(t testing.TB) []*model.Model {
	t.Helper()
	names := []string{
		model.ResNet50, model.SqueezeNet, model.GoogLeNet,
		model.MobileNetV2, model.ResNet50, model.SqueezeNet,
		model.GoogLeNet, model.MobileNetV2, model.ResNet50,
	}
	models := make([]*model.Model, len(names))
	for i, n := range names {
		models[i] = model.MustByName(n)
	}
	return models
}

// normalizeWall zeroes the only fields legitimately allowed to differ between
// two identical virtual-clock runs: planning wall time, which is measured on
// the host clock.
func normalizeWall(res *stream.Result) {
	for i := range res.WindowStats {
		res.WindowStats[i].PlanWall = 0
	}
	if res.Report != nil {
		res.Report.Planner.PlanWallMS = 0
		for i := range res.Report.Windows {
			res.Report.Windows[i].PlanWallMS = 0
		}
	}
}

// TestDifferentialFleetSingleDevice pins the Device extraction as a pure
// refactor: a 1-device fleet running a full request stream — plan cache on,
// degradation events mid-run — must produce a stream.Result byte-identical
// (completions, sojourns, window stats, report) to stream.Scheduler run
// directly on an identically configured planner.
func TestDifferentialFleetSingleDevice(t *testing.T) {
	events := []soc.Event{
		{Kind: soc.EventThermalThrottle, Processor: "cpu-big", At: 5 * time.Millisecond, Factor: 1.5},
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: 20 * time.Millisecond},
		{Kind: soc.EventProcessorOnline, Processor: "npu", At: 60 * time.Millisecond},
	}
	popts := core.DefaultOptions()
	popts.PlanCache = 8
	scfg := stream.Config{
		MaxWindow:    3,
		MaxBatch:     1,
		MaxRetries:   6,
		RetryBackoff: 500 * time.Microsecond,
		Events:       append([]soc.Event(nil), events...),
	}
	requests := stream.PoissonArrivals(diffModels(t), 2*time.Millisecond, 42)

	// Fleet side: one device, routed through the full Router/failover path.
	dev, err := NewDevice(DeviceSpec{Name: "dev0", SoC: soc.Kirin990(), Planner: popts, Stream: scfg}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := New([]*Device{dev}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fl.Run(append([]stream.Request(nil), requests...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fres.Handoffs != 0 || fres.Down[0] {
		t.Fatalf("single-device fleet run degraded: handoffs=%d down=%v", fres.Handoffs, fres.Down)
	}
	if got := fres.Assignments[0]; len(got) != len(requests) {
		t.Fatalf("router assigned %d of %d requests to the only device", len(got), len(requests))
	}

	// Direct side: a fresh identical planner + scheduler, no fleet anywhere.
	pl, err := core.NewPlanner(soc.Kirin990(), popts)
	if err != nil {
		t.Fatal(err)
	}
	direct := scfg
	direct.HaltInfeasible = true // what the fleet shard runner sets; inert on a run that never halts
	sched, err := stream.NewScheduler(pl, direct)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := sched.Run(append([]stream.Request(nil), requests...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	fr := fres.PerDevice[0]
	normalizeWall(fr)
	normalizeWall(dres)
	if !reflect.DeepEqual(fr, dres) {
		t.Errorf("fleet device result diverges from direct scheduler run\nfleet:  %+v\ndirect: %+v", fr, dres)
	}
	fb, err := json.Marshal(fr)
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(dres)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, db) {
		t.Errorf("fleet device result not byte-identical to direct run\nfleet:  %s\ndirect: %s", fb, db)
	}

	// The fleet aggregate must restate the single shard exactly.
	for i := range requests {
		if fres.Completions[i] != dres.Completions[i] || fres.Sojourns[i] != dres.Sojourns[i] {
			t.Errorf("request %d: fleet (%v, %v) != direct (%v, %v)",
				i, fres.Completions[i], fres.Sojourns[i], dres.Completions[i], dres.Sojourns[i])
		}
	}
	if fres.Makespan != dres.Makespan {
		t.Errorf("fleet makespan %v != direct %v", fres.Makespan, dres.Makespan)
	}
}
