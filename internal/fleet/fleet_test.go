package fleet

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// kirinAllOffline knocks every Kirin 990 processor offline at the given
// virtual instant — the degradation pattern that forces a mid-run halt.
func kirinAllOffline(at time.Duration) []soc.Event {
	return []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: at},
		{Kind: soc.EventProcessorOffline, Processor: "cpu-big", At: at},
		{Kind: soc.EventProcessorOffline, Processor: "gpu", At: at},
		{Kind: soc.EventProcessorOffline, Processor: "cpu-small", At: at},
	}
}

// testDevice builds a named Kirin 990 device with a small plan cache, fast
// retry budget and the given event timeline.
func testDevice(t testing.TB, name string, reg *obs.Registry, events []soc.Event) *Device {
	t.Helper()
	popts := core.DefaultOptions()
	popts.PlanCache = 8
	scfg := stream.Config{
		MaxWindow:    3,
		MaxBatch:     1,
		MaxRetries:   2,
		RetryBackoff: 100 * time.Microsecond,
		Events:       events,
	}
	dev, err := NewDevice(DeviceSpec{Name: name, SoC: soc.Kirin990(), Planner: popts, Stream: scfg}, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// cycledRequests builds n arrival-ordered requests cycling through names with
// a fixed inter-arrival gap.
func cycledRequests(t testing.TB, names []string, n int, gap time.Duration) []stream.Request {
	t.Helper()
	reqs := make([]stream.Request, n)
	for i := range reqs {
		reqs[i] = stream.Request{
			Model:   model.MustByName(names[i%len(names)]),
			Arrival: time.Duration(i) * gap,
		}
	}
	return reqs
}

// TestFleetFailover drives a 2-device fleet where device 0 loses every
// processor mid-run: its unfinished backlog must fail over to device 1 with
// Request.Handoff set, every request must still complete, and the handoff
// accounting must agree across Result, Status, the merged report and the
// metrics registry.
func TestFleetFailover(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	dev0 := testDevice(t, "dev0", reg, kirinAllOffline(2*time.Millisecond))
	dev1 := testDevice(t, "dev1", reg, nil)
	fl, err := New([]*Device{dev0, dev1}, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2}
	requests := cycledRequests(t, names, 16, 500*time.Microsecond)

	res, err := fl.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Down[0] {
		t.Fatal("device 0 lost every processor but is not marked down")
	}
	if res.Down[1] {
		t.Fatal("healthy device 1 marked down")
	}
	if res.Handoffs == 0 {
		t.Fatal("no handoffs recorded despite a mid-run device failure")
	}
	for i := range requests {
		if res.Completions[i] <= 0 {
			t.Errorf("request %d never completed (completion %v)", i, res.Completions[i])
		}
		if res.Sojourns[i] != res.Completions[i]-requests[i].Arrival {
			t.Errorf("request %d sojourn %v != completion-arrival %v",
				i, res.Sojourns[i], res.Completions[i]-requests[i].Arrival)
		}
	}

	st := fl.Status()
	if st.Completed != len(requests) {
		t.Errorf("status completed = %d, want %d", st.Completed, len(requests))
	}
	if st.Handoffs != res.Handoffs {
		t.Errorf("status handoffs = %d, result says %d", st.Handoffs, res.Handoffs)
	}
	if st.Devices[0].Live {
		t.Error("status still reports device 0 live")
	}
	if st.Devices[0].HandoffsOut != res.Handoffs {
		t.Errorf("device 0 handoffs out = %d, want %d", st.Devices[0].HandoffsOut, res.Handoffs)
	}
	if st.Devices[1].HandoffsIn != res.Handoffs {
		t.Errorf("device 1 handoffs in = %d, want %d", st.Devices[1].HandoffsIn, res.Handoffs)
	}
	if got := st.Devices[0].Completed + st.Devices[1].Completed; got != len(requests) {
		t.Errorf("per-device completions sum to %d, want %d", got, len(requests))
	}

	rep := res.Report
	if rep == nil {
		t.Fatal("nil fleet report")
	}
	if rep.Handoffs != res.Handoffs || rep.Completed != len(requests) || rep.Requests != len(requests) {
		t.Errorf("report (requests=%d completed=%d handoffs=%d) disagrees with result (%d, %d, %d)",
			rep.Requests, rep.Completed, rep.Handoffs, len(requests), len(requests), res.Handoffs)
	}
	if !rep.PerDevice[0].Down || rep.PerDevice[1].Down {
		t.Errorf("report down flags = %t,%t, want true,false", rep.PerDevice[0].Down, rep.PerDevice[1].Down)
	}
	if len(res.HandoffResults[1]) == 0 {
		t.Error("device 1 has no handoff batch results")
	}

	snap := reg.Snapshot()
	if got := snap.Counters["fleet_handoffs_total"]; got != uint64(res.Handoffs) {
		t.Errorf("fleet_handoffs_total = %d, want %d", got, res.Handoffs)
	}
	if got := snap.Counters[obs.SeriesName("stream_handoffs_total", "device", "dev1")]; got != uint64(res.Handoffs) {
		t.Errorf(`stream_handoffs_total{device="dev1"} = %d, want %d`, got, res.Handoffs)
	}
	routed := snap.Counters[obs.SeriesName("fleet_routed_total", "device", "dev0")] +
		snap.Counters[obs.SeriesName("fleet_routed_total", "device", "dev1")]
	if routed != uint64(len(requests)) {
		t.Errorf("fleet_routed_total across devices = %d, want %d", routed, len(requests))
	}
	if got := snap.Gauges["fleet_devices_down"]; got != 1 {
		t.Errorf("fleet_devices_down = %v, want 1", got)
	}
}

// TestFleetAllDevicesDown: when every device halts the run must fail loudly,
// not spin or silently drop requests.
func TestFleetAllDevicesDown(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	dev0 := testDevice(t, "dev0", reg, kirinAllOffline(time.Millisecond))
	dev1 := testDevice(t, "dev1", reg, kirinAllOffline(time.Millisecond))
	fl, err := New([]*Device{dev0, dev1}, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	requests := cycledRequests(t, []string{model.ResNet50, model.SqueezeNet}, 12, 200*time.Microsecond)
	if _, err := fl.Run(requests, pipeline.DefaultOptions()); err == nil {
		t.Fatal("fleet run with every device halting returned nil error")
	}
}

// TestFleetValidation covers constructor and run-time input checking.
func TestFleetValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("New with no devices: nil error")
	}
	d0 := testDevice(t, "dup", nil, nil)
	d1 := testDevice(t, "dup", nil, nil)
	if _, err := New([]*Device{d0, d1}, Config{}); err == nil {
		t.Error("New with duplicate names: nil error")
	}
	u0 := testDevice(t, "", nil, nil)
	u1 := testDevice(t, "other", nil, nil)
	if _, err := New([]*Device{u0, u1}, Config{}); err == nil {
		t.Error("New with unnamed device in multi-device fleet: nil error")
	}
	if _, err := New([]*Device{u0}, Config{}); err != nil {
		t.Errorf("New with one unnamed device: %v", err)
	}

	fl, err := New([]*Device{testDevice(t, "dev0", nil, nil)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	unsorted := []stream.Request{
		{Model: model.MustByName(model.ResNet50), Arrival: time.Millisecond},
		{Model: model.MustByName(model.SqueezeNet), Arrival: 0},
	}
	if _, err := fl.Run(unsorted, pipeline.DefaultOptions()); err == nil {
		t.Error("Run with unsorted arrivals: nil error")
	}
}

// TestPolicyByName pins the policy registry the CLI and facade resolve
// against.
func TestPolicyByName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", PolicyHash},
		{PolicyHash, PolicyHash},
		{PolicyLeastSojourn, PolicyLeastSojourn},
		{PolicyAffinity, PolicyAffinity},
	} {
		p, err := PolicyByName(tc.in)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", tc.in, err)
		}
		if p.Name() != tc.want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", tc.in, p.Name(), tc.want)
		}
	}
	if _, err := PolicyByName("random"); err == nil {
		t.Error("PolicyByName(random): nil error")
	}
}

// TestPolicyRouteLive: every policy must return a member of the live set, for
// full and degraded fleets alike.
func TestPolicyRouteLive(t *testing.T) {
	devices := []*Device{
		testDevice(t, "dev0", nil, nil),
		testDevice(t, "dev1", nil, nil),
		testDevice(t, "dev2", nil, nil),
	}
	models := []*model.Model{
		model.MustByName(model.ResNet50),
		model.MustByName(model.SqueezeNet),
		model.MustByName(model.GoogLeNet),
	}
	liveSets := [][]int{{0, 1, 2}, {0, 2}, {1}, {2}}
	for _, name := range []string{PolicyHash, PolicyLeastSojourn, PolicyAffinity} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p.Reset(devices)
		for _, live := range liveSets {
			for seq := 0; seq < 24; seq++ {
				dev := p.Route(models[seq%len(models)], seq, live, devices)
				if !contains(live, dev) {
					t.Fatalf("%s routed seq %d to %d outside live set %v", name, seq, dev, live)
				}
			}
		}
	}
}

// TestAffinitySticky: the affinity policy must pin a model to one device
// while it stays live, and re-stick deterministically when it goes down.
func TestAffinitySticky(t *testing.T) {
	devices := []*Device{
		testDevice(t, "dev0", nil, nil),
		testDevice(t, "dev1", nil, nil),
		testDevice(t, "dev2", nil, nil),
	}
	m := model.MustByName(model.ResNet50)
	p := NewAffinityPolicy()
	p.Reset(devices)
	all := []int{0, 1, 2}
	home := p.Route(m, 0, all, devices)
	for seq := 1; seq < 10; seq++ {
		if dev := p.Route(m, seq, all, devices); dev != home {
			t.Fatalf("affinity moved %s from %d to %d with all devices live", m.Name, home, dev)
		}
	}
	// Drop the home device: the model must re-stick to a live one, and every
	// subsequent request must follow it there.
	live := []int{}
	for _, d := range all {
		if d != home {
			live = append(live, d)
		}
	}
	moved := p.Route(m, 10, live, devices)
	if moved == home || !contains(live, moved) {
		t.Fatalf("affinity re-stick chose %d (home %d, live %v)", moved, home, live)
	}
	for seq := 11; seq < 20; seq++ {
		if dev := p.Route(m, seq, live, devices); dev != moved {
			t.Fatalf("affinity re-stick not sticky: %d then %d", moved, dev)
		}
	}
}

// TestLeastSojournBalances: identical requests against identical devices must
// spread across the fleet, not pile onto one device.
func TestLeastSojournBalances(t *testing.T) {
	devices := []*Device{
		testDevice(t, "dev0", nil, nil),
		testDevice(t, "dev1", nil, nil),
	}
	m := model.MustByName(model.ResNet50)
	p := NewLeastSojournPolicy()
	p.Reset(devices)
	counts := make([]int, 2)
	for seq := 0; seq < 10; seq++ {
		counts[p.Route(m, seq, []int{0, 1}, devices)]++
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Errorf("least-sojourn split identical load %v, want [5 5]", counts)
	}
}

// TestFleetPoissonArrivals pins the per-device seeding fix: substreams must
// be reproducible, arrival-sorted, complete, and decorrelated across devices.
func TestFleetPoissonArrivals(t *testing.T) {
	var models []*model.Model
	for i := 0; i < 24; i++ {
		models = append(models, model.MustByName(model.ResNet50))
	}
	a := PoissonArrivals(models, time.Millisecond, 7, 3)
	b := PoissonArrivals(models, time.Millisecond, 7, 3)
	if len(a) != len(models) {
		t.Fatalf("got %d requests, want %d", len(a), len(models))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Model != b[i].Model {
			t.Fatalf("arrivals not reproducible at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d: %v after %v", i, a[i].Arrival, a[i-1].Arrival)
		}
	}
	// devices ≤ 1 must stay byte-for-byte the historical single-stream shape.
	single := PoissonArrivals(models, time.Millisecond, 7, 1)
	direct := stream.PoissonArrivals(models, time.Millisecond, 7)
	for i := range single {
		if single[i] != direct[i] {
			t.Fatalf("single-device arrivals diverge from stream.PoissonArrivals at %d", i)
		}
	}
}

// TestDeviceSeedDecorrelates: per-device seeds must be distinct from the base
// seed and from each other, and the gap sequences they drive must not be
// shifted or scaled copies of one another.
func TestDeviceSeedDecorrelates(t *testing.T) {
	seen := map[uint64]bool{7: true}
	for d := 0; d < 16; d++ {
		s := stream.DeviceSeed(7, d)
		if seen[s] {
			t.Fatalf("DeviceSeed(7, %d) = %d collides", d, s)
		}
		seen[s] = true
		if s != stream.DeviceSeed(7, d) {
			t.Fatalf("DeviceSeed(7, %d) not deterministic", d)
		}
	}
	var models []*model.Model
	for i := 0; i < 16; i++ {
		models = append(models, model.MustByName(model.SqueezeNet))
	}
	g0 := stream.PoissonArrivals(models, time.Millisecond, stream.DeviceSeed(7, 0))
	g1 := stream.PoissonArrivals(models, time.Millisecond, stream.DeviceSeed(7, 1))
	same := 0
	for i := 1; i < len(models); i++ {
		if g0[i].Arrival-g0[i-1].Arrival == g1[i].Arrival-g1[i-1].Arrival {
			same++
		}
	}
	if same > len(models)/4 {
		t.Errorf("device 0 and 1 substreams share %d/%d inter-arrival gaps — still correlated", same, len(models)-1)
	}
}

// TestDeviceRunInheritsDefaults: a zero-valued config must inherit the
// device's stream defaults, including its event timeline; caller events must
// override.
func TestDeviceRunInheritsDefaults(t *testing.T) {
	events := []soc.Event{{Kind: soc.EventThermalThrottle, Processor: "cpu-big", At: time.Millisecond, Factor: 2}}
	dev := testDevice(t, "dev0", nil, events)
	reqs := cycledRequests(t, []string{model.SqueezeNet, model.GoogLeNet}, 4, 300*time.Microsecond)

	res, err := dev.Run(t.Context(), reqs, stream.Config{}, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsApplied != 1 {
		t.Errorf("zero config applied %d events, want the device's 1", res.EventsApplied)
	}

	// A fresh device with the same timeline, run with caller-supplied empty
	// events: the device timeline must NOT re-apply.
	dev2 := testDevice(t, "dev0", nil, events)
	cfg := dev2.StreamConfig()
	cfg.Events = []soc.Event{}
	res2, err := dev2.Run(t.Context(), reqs, cfg, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.EventsApplied != 0 {
		t.Errorf("explicit empty events still applied %d device events", res2.EventsApplied)
	}
	if !dev2.Live() {
		t.Error("device with throttle-only timeline reported dead")
	}
}
