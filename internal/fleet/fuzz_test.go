package fleet

import (
	"fmt"
	"math/bits"
	"testing"
)

// fuzzKeys derives keyCount pseudo-random ring keys from a base seed with a
// splitmix64 walk — deterministic per seed, so failures replay exactly.
func fuzzKeys(seed uint64, keyCount int) []uint64 {
	keys := make([]uint64, keyCount)
	z := seed
	for i := range keys {
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		keys[i] = x ^ (x >> 31)
	}
	return keys
}

// FuzzRouterShard pins the router's two sharding invariants on the
// consistent-hash ring under arbitrary request digests and device up/down
// masks:
//
//  1. Exactly-one-live-device: every key routes to exactly one device, and
//     that device is live, for any non-empty live set.
//  2. Minimal disruption: taking one device down moves only the keys that
//     device owned — every other key keeps its device.
func FuzzRouterShard(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(32))
	f.Add(uint64(42), uint8(0b0101_0101), uint16(64))
	f.Add(uint64(0xDEADBEEF), uint8(0b1111_1110), uint16(16))
	f.Add(uint64(7), uint8(0b1000_0001), uint16(128))
	f.Fuzz(func(t *testing.T, seed uint64, downMask uint8, keyCount uint16) {
		const n = 8
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("dev%d", i)
		}
		ring := NewRing(names)
		keys := fuzzKeys(seed, int(keyCount%512)+1)

		allLive := func(int) bool { return true }
		owner := make([]int, len(keys))
		for i, k := range keys {
			dev, ok := ring.Lookup(k, allLive)
			if !ok || dev < 0 || dev >= n {
				t.Fatalf("key %#x: Lookup = (%d, %t) with every device live", k, dev, ok)
			}
			// Exactly one device: a second lookup must agree.
			again, _ := ring.Lookup(k, allLive)
			if again != dev {
				t.Fatalf("key %#x: Lookup not deterministic (%d then %d)", k, dev, again)
			}
			owner[i] = dev
		}

		// Take one device down: only its keys may move.
		departed := int(seed % n)
		withoutDeparted := func(dev int) bool { return dev != departed }
		for i, k := range keys {
			dev, ok := ring.Lookup(k, withoutDeparted)
			if !ok || dev == departed {
				t.Fatalf("key %#x routed to departed device %d (ok=%t)", k, departed, ok)
			}
			if owner[i] != departed && dev != owner[i] {
				t.Fatalf("key %#x moved %d→%d though only device %d departed",
					k, owner[i], dev, departed)
			}
		}

		// Arbitrary up/down mask (bit d set = device d down): every key must
		// still land on exactly one live device while any device survives.
		if bits.OnesCount8(downMask) == n {
			downMask &^= 1 // keep at least dev0 live
		}
		masked := func(dev int) bool { return downMask&(1<<uint(dev)) == 0 }
		for _, k := range keys {
			dev, ok := ring.Lookup(k, masked)
			if !ok {
				t.Fatalf("key %#x: no device found with mask %08b", k, downMask)
			}
			if !masked(dev) {
				t.Fatalf("key %#x routed to down device %d (mask %08b)", k, dev, downMask)
			}
		}

		// Empty live set is the one unroutable case and must say so.
		if _, ok := ring.Lookup(keys[0], func(int) bool { return false }); ok {
			t.Fatal("Lookup claimed success with no live devices")
		}
	})
}
