package fleet

import (
	"io"
	"sync"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// TestFleetRaceStress is the concurrency gate (`make fleet`): four
// mixed-preset devices with concurrent degradation streams run their shards
// in parallel goroutines, all publishing into one shared obs registry, one
// span ring and per-device SSE feeds — while reader goroutines hammer
// Snapshot, the Prometheus and OTLP exporters and Status, and a deliberately
// blocking feed subscriber never drains. Run under -race; the assertion is
// "completes correctly with no data race and no publisher stall".
func TestFleetRaceStress(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	spans := obs.NewSpanRecorder(8192)

	presets := []func() *soc.SoC{soc.Kirin990, soc.Snapdragon778G, soc.Snapdragon870, soc.Kirin990}
	names := []string{"dev0", "dev1", "dev2", "dev3"}
	devices := make([]*Device, len(presets))
	for i := range presets {
		// Every device gets its own degradation churn: repeated throttles and
		// a bounded offline/online flap, all forcing epoch bumps and replans
		// while the other devices are mid-window.
		events := []soc.Event{
			{Kind: soc.EventThermalThrottle, Processor: "cpu-big", At: time.Duration(i+1) * time.Millisecond, Factor: 1.5},
			{Kind: soc.EventProcessorOffline, Processor: "gpu", At: time.Duration(i+2) * 2 * time.Millisecond},
			{Kind: soc.EventProcessorOnline, Processor: "gpu", At: time.Duration(i+2) * 4 * time.Millisecond},
			{Kind: soc.EventFrequencyScale, Processor: "cpu-small", At: time.Duration(i+3) * 3 * time.Millisecond, Factor: 0.8},
		}
		popts := core.DefaultOptions()
		popts.PlanCache = 8
		scfg := stream.Config{
			MaxWindow:    3,
			MaxBatch:     1,
			MaxRetries:   4,
			RetryBackoff: 200 * time.Microsecond,
			Events:       events,
		}
		dev, err := NewDevice(DeviceSpec{Name: names[i], SoC: presets[i](), Planner: popts, Stream: scfg}, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
	}
	fl, err := New(devices, Config{Policy: NewLeastSojournPolicy(), Metrics: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}

	// Feed consumers: per device, one well-behaved subscriber that drains and
	// one blocking subscriber with a full buffer that never reads — the
	// publisher must drop for it, not stall the run.
	var consumers sync.WaitGroup
	var cancels []func()
	for _, d := range devices {
		ch, cancel := d.Feed().Subscribe(4)
		cancels = append(cancels, cancel)
		consumers.Add(1)
		go func(ch <-chan stream.WindowStat) {
			defer consumers.Done()
			for range ch {
			}
		}(ch)
		_, cancelBlocked := d.Feed().Subscribe(1) // never drained
		defer cancelBlocked()
	}

	// Reader hammer: every observability read-side surface, concurrently with
	// the run.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				reg.Snapshot()
				_ = obs.WritePrometheus(io.Discard, reg)
				_ = obs.WriteOTLP(io.Discard, spans, "stress")
				fl.Status()
				for _, d := range devices {
					d.Feed().Live()
					d.Feed().Ready()
				}
			}
		}()
	}

	var models []*model.Model
	zoo := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2, model.AlexNet}
	for i := 0; i < 32; i++ {
		models = append(models, model.MustByName(zoo[i%len(zoo)]))
	}
	requests := PoissonArrivals(models, time.Millisecond, 11, len(devices))

	res, err := fl.RunContext(t.Context(), requests, pipeline.DefaultOptions())
	close(done)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range requests {
		if res.Completions[i] <= 0 {
			t.Errorf("request %d never completed", i)
		}
	}
	st := fl.Status()
	if st.Completed != len(requests) {
		t.Errorf("status completed = %d, want %d", st.Completed, len(requests))
	}

	// The shared store must hold one labeled series per device for the
	// scheduler's core counters.
	snap := reg.Snapshot()
	for _, name := range names {
		key := obs.SeriesName("stream_windows_total", "device", name)
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("shared registry missing per-device series %s", key)
		}
	}
	if len(spans.Spans()) == 0 {
		t.Error("span ring empty after a traced fleet run")
	}

	// Cancelling the subscriptions closes their channels and ends the
	// consumer goroutines.
	for _, cancel := range cancels {
		cancel()
	}
	consumers.Wait()
}
