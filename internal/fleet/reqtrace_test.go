package fleet

import (
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// tracedDevice is testDevice with request tracing armed and a shared trace
// store wired in.
func tracedDevice(t testing.TB, name string, reg *obs.Registry, events []soc.Event, store *stream.TraceStore, mon *obs.SLOMonitor) *Device {
	t.Helper()
	dev := testDevice(t, name, reg, events)
	dev.cfg.RequestTracing = true
	dev.cfg.Traces = store
	dev.cfg.SLOMonitor = mon
	return dev
}

// TestRequestTraceFleetFailover is the acceptance-criterion test: in a fleet
// run with a mid-run device failure, every completed request has exactly one
// stitched timeline whose trace ID survived the handoff, whose decomposition
// sums to the fleet-level sojourn, and whose event history spans the failed
// device's phases before the handed_off marker. The shared trace store must
// end up holding the stitched fleet-wide view under the same trace ID.
func TestRequestTraceFleetFailover(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	store := stream.NewTraceStore(0, 0)
	mon := obs.NewSLOMonitor(0, map[string]float64{"latency-critical": 0.5})
	dev0 := tracedDevice(t, "dev0", reg, kirinAllOffline(2*time.Millisecond), store, mon)
	dev1 := tracedDevice(t, "dev1", reg, nil, store, mon)
	fl, err := New([]*Device{dev0, dev1}, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2}
	requests := cycledRequests(t, names, 16, 500*time.Microsecond)
	for i := range requests {
		requests[i].Deadline = 40 * time.Millisecond
	}

	res, err := fl.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Handoffs == 0 {
		t.Fatal("no handoffs; failover path untested")
	}
	if len(res.Timelines) != len(requests) {
		t.Fatalf("fleet result carries %d timelines, want %d", len(res.Timelines), len(requests))
	}

	// The caller's request slice must not have been mutated by fleet-wide
	// trace assignment.
	for i := range requests {
		if requests[i].Trace != 0 {
			t.Fatalf("fleet run mutated caller request %d (trace %v)", i, requests[i].Trace)
		}
	}

	seen := make(map[string]int)
	stitched := 0
	for fi, tl := range res.Timelines {
		if !tl.Completed {
			t.Fatalf("request %d has no completed timeline", fi)
		}
		// Exactly one fleet-wide timeline per request, under the
		// deterministic fleet-index trace ID.
		if want := stream.NewTraceID(fi).String(); tl.Trace != want {
			t.Errorf("request %d trace %s, want fleet-assigned %s", fi, tl.Trace, want)
		}
		if prev, dup := seen[tl.Trace]; dup {
			t.Fatalf("trace %s appears on requests %d and %d", tl.Trace, prev, fi)
		}
		seen[tl.Trace] = fi
		if tl.Index != fi {
			t.Errorf("timeline %d carries index %d", fi, tl.Index)
		}
		if tl.Arrival != requests[fi].Arrival {
			t.Errorf("timeline %d arrival %v, want original %v", fi, tl.Arrival, requests[fi].Arrival)
		}

		// The tentpole invariant, now across devices: components sum to the
		// fleet-level sojourn.
		if got := tl.Breakdown.VirtualSum(); got != tl.Sojourn {
			t.Errorf("request %d decomposition sums to %v, sojourn %v (%+v)", fi, got, tl.Sojourn, tl.Breakdown)
		}
		if tl.Sojourn != res.Sojourns[fi] {
			t.Errorf("request %d timeline sojourn %v != fleet sojourn %v", fi, tl.Sojourn, res.Sojourns[fi])
		}
		// Deadline verdict re-derived against the original arrival.
		if want := res.Sojourns[fi] > requests[fi].Deadline; tl.Missed != want {
			t.Errorf("request %d missed=%t, want %t (sojourn %v, deadline %v)",
				fi, tl.Missed, want, res.Sojourns[fi], requests[fi].Deadline)
		}

		if !tl.Handoff {
			continue
		}
		stitched++
		// A stitched timeline spans both devices: dev0 phases strictly
		// before the handed_off marker, dev1 phases after, and positive
		// transit accounted.
		hoIdx := -1
		for j, ev := range tl.Events {
			if ev.Phase == stream.PhaseHandedOff {
				hoIdx = j
				break
			}
		}
		if hoIdx < 1 {
			t.Fatalf("stitched timeline %d has no %s event: %+v", fi, stream.PhaseHandedOff, tl.Events)
		}
		if tl.Events[hoIdx].Device != "dev1" {
			t.Errorf("handed_off event names device %q, want rescue device dev1", tl.Events[hoIdx].Device)
		}
		for _, ev := range tl.Events[:hoIdx] {
			if ev.Device != "dev0" {
				t.Errorf("pre-handoff event %s on %q, want dev0", ev.Phase, ev.Device)
			}
		}
		// The source segment closes with halted — or with just the arrival
		// event for requests that arrived after dev0's halt instant.
		last := tl.Events[hoIdx-1].Phase
		if last != stream.PhaseHalted && last != stream.PhaseArrived {
			t.Errorf("stitched timeline %d: pre-handoff segment closes with %s, want %s or %s",
				fi, last, stream.PhaseHalted, stream.PhaseArrived)
		}
		for _, ev := range tl.Events[hoIdx:] {
			if ev.Device != "dev1" {
				t.Errorf("post-handoff event %s on %q, want dev1", ev.Phase, ev.Device)
			}
		}
	}
	if stitched != res.Handoffs {
		t.Errorf("%d stitched timelines, result reports %d handoffs", stitched, res.Handoffs)
	}

	// The shared store holds the stitched fleet-wide view (not the rescue
	// device's local one) under the surviving trace ID.
	for fi, tl := range res.Timelines {
		got, ok := store.Get(tl.Trace)
		if !ok {
			t.Fatalf("trace %s missing from the store", tl.Trace)
		}
		if got.Index != fi || got.Handoff != tl.Handoff || len(got.Events) != len(tl.Events) {
			t.Errorf("store view of %s diverges: index %d/%d, handoff %t/%t, events %d/%d",
				tl.Trace, got.Index, fi, got.Handoff, tl.Handoff, len(got.Events), len(tl.Events))
		}
	}

	// The fleet report's decomposition roll-up covers every request.
	if res.Report == nil || res.Report.Decomposition == nil {
		t.Fatal("fleet report lacks the decomposition roll-up")
	}
	if res.Report.Decomposition.Requests != len(requests) {
		t.Errorf("fleet decomposition covers %d requests, want %d",
			res.Report.Decomposition.Requests, len(requests))
	}
	if res.Report.Decomposition.HandoffTransitMS < 0 {
		t.Errorf("negative fleet handoff transit: %v", res.Report.Decomposition.HandoffTransitMS)
	}

	// The shared SLO monitor saw every completion exactly once.
	var totalObserved uint64
	for _, c := range mon.Report().Classes {
		totalObserved += c.Total
	}
	if totalObserved != uint64(len(requests)) {
		t.Errorf("SLO monitor observed %d completions, want %d", totalObserved, len(requests))
	}
}

// TestRequestTracePreassignedIDs: caller-assigned trace IDs survive the
// fleet front-end untouched — only zero traces get fleet-index IDs.
func TestRequestTracePreassignedIDs(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	store := stream.NewTraceStore(0, 0)
	dev0 := tracedDevice(t, "dev0", reg, nil, store, nil)
	dev1 := tracedDevice(t, "dev1", reg, nil, store, nil)
	fl, err := New([]*Device{dev0, dev1}, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	requests := cycledRequests(t, []string{model.SqueezeNet, model.MobileNetV2}, 4, time.Millisecond)
	const custom = stream.TraceID(0xdeadbeefcafef00d)
	requests[2].Trace = custom

	res, err := fl.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Timelines[2].Trace; got != custom.String() {
		t.Errorf("pre-assigned trace overwritten: %s, want %s", got, custom.String())
	}
	if _, ok := store.Get(custom.String()); !ok {
		t.Error("pre-assigned trace not retrievable from the store")
	}
	for fi := range res.Timelines {
		if fi == 2 {
			continue
		}
		if got, want := res.Timelines[fi].Trace, stream.NewTraceID(fi).String(); got != want {
			t.Errorf("request %d trace %s, want %s", fi, got, want)
		}
	}
}
