package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Policy names accepted by PolicyByName and the `h2pipe -policy` flag.
const (
	PolicyHash         = "hash"
	PolicyLeastSojourn = "least-sojourn"
	PolicyAffinity     = "affinity"
)

// Policy picks a device for each admitted request. Implementations may keep
// routing state (ring positions, load estimates, sticky assignments); Reset
// re-arms that state at the start of every fleet run so runs are
// independent and reproducible.
//
// Route receives the request's model and fleet-wide sequence number plus the
// currently live device indices (sorted ascending, never empty) and must
// return one of them. Routing a request to exactly one live device is the
// invariant FuzzRouterShard pins.
//
// Settle reports one request's completion on a device, so load-tracking
// policies release the sojourn credit Route charged — without it a
// least-loaded router's estimates only ever grow, and every completed
// window keeps repelling new work from the device that just drained it.
// Stateless policies ignore Settle. The fleet calls it once per completed
// request, from the merge step (single goroutine), before any failover
// round re-routes.
type Policy interface {
	Name() string
	Reset(devices []*Device)
	Route(m *model.Model, seq int, live []int, devices []*Device) int
	Settle(m *model.Model, dev int, devices []*Device)
}

// PolicyByName returns a fresh policy instance for a CLI/facade name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case PolicyHash, "":
		return NewHashPolicy(), nil
	case PolicyLeastSojourn:
		return NewLeastSojournPolicy(), nil
	case PolicyAffinity:
		return NewAffinityPolicy(), nil
	}
	return nil, fmt.Errorf("fleet: unknown policy %q (want %s, %s or %s)",
		name, PolicyHash, PolicyLeastSojourn, PolicyAffinity)
}

// ringReplicas is the virtual-node count per device on the consistent-hash
// ring: enough points that key ownership splits near-uniformly across a
// handful of devices, small enough that ring construction stays trivial.
const ringReplicas = 64

// Ring is a consistent-hash ring over device indices with virtual nodes.
// Lookups walk clockwise from the key's position and skip devices the
// caller reports dead, which gives the classic minimal-disruption property:
// removing a device reassigns only the keys it owned, every other key keeps
// its device (pinned by FuzzRouterShard).
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	device int
}

// NewRing builds a ring over n devices named by names (names seed the
// virtual-node positions, so a device keeps its arc across fleets with the
// same naming scheme).
func NewRing(names []string) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(names)*ringReplicas)}
	for dev, name := range names {
		for rep := 0; rep < ringReplicas; rep++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", name, rep)),
				device: dev,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on device index so equal hash positions still order
		// deterministically.
		return r.points[i].device < r.points[j].device
	})
	return r
}

// Lookup returns the live device owning key: the first point at or after the
// key's ring position (wrapping) whose device passes the live predicate.
// ok is false only when no device is live.
func (r *Ring) Lookup(key uint64, live func(device int) bool) (device int, ok bool) {
	n := len(r.points)
	if n == 0 {
		return 0, false
	}
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if live(p.device) {
			return p.device, true
		}
	}
	return 0, false
}

// hash64 is FNV-1a over a string.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// requestKey mixes a request's model identity with its fleet sequence number
// into a ring key. The splitmix64-style finalizer decorrelates consecutive
// sequence numbers so a cyclic arrival pattern scatters across the ring
// instead of marching around it.
func requestKey(m *model.Model, seq int) uint64 {
	z := hash64(m.Name) + uint64(seq+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashPolicy shards by consistent hashing over (model, sequence) keys.
type hashPolicy struct {
	ring *Ring
}

// NewHashPolicy returns the consistent-hashing policy: stateless per
// request, minimal key movement when devices leave the live set.
func NewHashPolicy() Policy { return &hashPolicy{} }

func (p *hashPolicy) Name() string { return PolicyHash }

func (p *hashPolicy) Reset(devices []*Device) {
	names := make([]string, len(devices))
	for i, d := range devices {
		names[i] = deviceRingName(d, i)
	}
	p.ring = NewRing(names)
}

func (p *hashPolicy) Route(m *model.Model, seq int, live []int, devices []*Device) int {
	if dev, ok := p.ring.Lookup(requestKey(m, seq), liveSet(live)); ok {
		return dev
	}
	return live[0]
}

// Settle is a no-op: hashing keeps no load state.
func (p *hashPolicy) Settle(m *model.Model, dev int, devices []*Device) {}

// leastSojournPolicy routes each request to the device with the smallest
// accumulated latency estimate, where one request's estimate is its solo
// batch-1 latency on the device's best currently-available processor — a
// cheap stand-in for expected sojourn that needs no planning.
type leastSojournPolicy struct {
	load []time.Duration
	est  map[string]time.Duration // "<dev>|<epoch>|<model>" → solo estimate
}

// NewLeastSojournPolicy returns the load-balancing policy.
func NewLeastSojournPolicy() Policy { return &leastSojournPolicy{} }

func (p *leastSojournPolicy) Name() string { return PolicyLeastSojourn }

func (p *leastSojournPolicy) Reset(devices []*Device) {
	p.load = make([]time.Duration, len(devices))
	p.est = make(map[string]time.Duration)
}

func (p *leastSojournPolicy) Route(m *model.Model, seq int, live []int, devices []*Device) int {
	best, bestLoad := live[0], time.Duration(-1)
	for _, dev := range live {
		total := p.load[dev] + p.estimate(dev, devices[dev], m)
		if bestLoad < 0 || total < bestLoad {
			best, bestLoad = dev, total
		}
	}
	p.load[best] += p.estimate(best, devices[best], m)
	return best
}

// Settle releases the sojourn credit Route charged for a now-completed
// request, floored at zero. Without it load only accumulates, so after the
// primary shards drain, every failover (and any later) Route decision still
// sees the devices' lifetime totals and herds all new work onto whichever
// device was assigned least — typically a device that just came online —
// instead of balancing across the drained fleet. The floor also absorbs
// estimate drift: a degradation event between Route and Settle changes the
// epoch-keyed estimate, and under-crediting must not drive load negative.
func (p *leastSojournPolicy) Settle(m *model.Model, dev int, devices []*Device) {
	if dev < 0 || dev >= len(p.load) {
		return
	}
	if est := p.estimate(dev, devices[dev], m); est < p.load[dev] {
		p.load[dev] -= est
	} else {
		p.load[dev] = 0
	}
}

func (p *leastSojournPolicy) estimate(dev int, d *Device, m *model.Model) time.Duration {
	key := fmt.Sprintf("%d|%d|%s", dev, d.SoC().Epoch(), m.Name)
	if est, ok := p.est[key]; ok {
		return est
	}
	best := soc.InfDuration
	s := d.SoC()
	for i := range s.Processors {
		proc := &s.Processors[i]
		if !proc.Available() {
			continue
		}
		if lat := soc.BatchLatency(proc, m, 1); lat < best {
			best = lat
		}
	}
	p.est[key] = best
	return best
}

// affinityPolicy pins every model to one device so recurring request mixes
// reproduce identical window signatures on that device — the condition for
// whole-plan cache hits (core.Options.PlanCache). First-seen models prefer a
// live device whose plan cache already holds a single-model window for them
// (the HasCachedPlan peek, relevant after failover re-routing); otherwise
// the assignment falls back to the consistent-hash ring and sticks.
type affinityPolicy struct {
	hash   hashPolicy
	sticky map[string]int
}

// NewAffinityPolicy returns the plan-cache affinity policy.
func NewAffinityPolicy() Policy { return &affinityPolicy{} }

func (p *affinityPolicy) Name() string { return PolicyAffinity }

func (p *affinityPolicy) Reset(devices []*Device) {
	p.hash.Reset(devices)
	p.sticky = make(map[string]int)
}

func (p *affinityPolicy) Route(m *model.Model, seq int, live []int, devices []*Device) int {
	if dev, ok := p.sticky[m.Name]; ok && contains(live, dev) {
		return dev
	}
	for _, dev := range live {
		if devices[dev].HasCachedPlan([]*model.Model{m}) {
			p.sticky[m.Name] = dev
			return dev
		}
	}
	// Sticky by model only: the ring key must not mix in seq, or the same
	// model would re-stick to a different device after failover re-routes.
	dev, ok := p.hash.ring.Lookup(hash64(m.Name), liveSet(live))
	if !ok {
		dev = live[0]
	}
	p.sticky[m.Name] = dev
	return dev
}

// Settle is a no-op: affinity tracks assignments, not load.
func (p *affinityPolicy) Settle(m *model.Model, dev int, devices []*Device) {}

// deviceRingName names a device on the ring (index-derived fallback for
// unnamed devices, so rings are well-defined in tests).
func deviceRingName(d *Device, i int) string {
	if d.Name() != "" {
		return d.Name()
	}
	return fmt.Sprintf("dev%d", i)
}

// liveSet adapts a sorted live-index slice to the ring's predicate form.
func liveSet(live []int) func(int) bool {
	return func(dev int) bool { return contains(live, dev) }
}

// contains reports membership in a sorted int slice.
func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
