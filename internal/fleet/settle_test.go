package fleet

import (
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/stream"
)

// TestLeastSojournSettleReleasesLoad pins the router-load decay fix. Before
// it, leastSojournPolicy.load only ever accumulated: a window of requests
// routed to a device kept repelling new work forever, so after the primary
// shard drained, a device that was briefly the only live one looked
// permanently saturated next to a device that just joined — and every
// subsequent request herded onto the newcomer instead of balancing.
//
// The scenario: four requests routed while only dev0 is live (dev0 absorbs
// all four credits), all four complete and settle, then four more arrive
// with both identical devices live. With settle, dev0's load is back to
// zero and the identical devices split the new work 2/2. Without it (the
// pre-fix behaviour), dev0 still carries four sojourn credits and all four
// new requests pile onto dev1.
func TestLeastSojournSettleReleasesLoad(t *testing.T) {
	devices := []*Device{
		testDevice(t, "dev0", nil, nil),
		testDevice(t, "dev1", nil, nil),
	}
	m := model.MustByName(model.ResNet50)
	p := NewLeastSojournPolicy()
	p.Reset(devices)

	for seq := 0; seq < 4; seq++ {
		if dev := p.Route(m, seq, []int{0}, devices); dev != 0 {
			t.Fatalf("Route with live={0} returned %d", dev)
		}
	}
	for i := 0; i < 4; i++ {
		p.Settle(m, 0, devices)
	}

	counts := make([]int, 2)
	for seq := 4; seq < 8; seq++ {
		counts[p.Route(m, seq, []int{0, 1}, devices)]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("post-settle routing split %v, want [2 2]: completed-window load was not released", counts)
	}
}

// TestLeastSojournSettleFloorsAtZero over-settles a device (more completions
// reported than credits charged — the estimate-drift case after a
// degradation event changes the epoch-keyed estimate between Route and
// Settle) and requires load to floor at zero rather than going negative,
// which would magnetise every future request onto the over-settled device.
func TestLeastSojournSettleFloorsAtZero(t *testing.T) {
	devices := []*Device{
		testDevice(t, "dev0", nil, nil),
		testDevice(t, "dev1", nil, nil),
	}
	m := model.MustByName(model.ResNet50)
	p := NewLeastSojournPolicy().(*leastSojournPolicy)
	p.Reset(devices)

	p.Route(m, 0, []int{0, 1}, devices)
	for i := 0; i < 5; i++ {
		p.Settle(m, 0, devices)
		p.Settle(m, 1, devices)
	}
	if p.load[0] != 0 || p.load[1] != 0 {
		t.Fatalf("over-settled loads = %v, want both zero", p.load)
	}
	// Out-of-range device indices must be ignored, not panic.
	p.Settle(m, -1, devices)
	p.Settle(m, 2, devices)
}

// TestLeastSojournFleetRunSettles runs a real two-device fleet under the
// least-sojourn policy and asserts the policy's internal load drains back to
// zero once every request completes — the end-to-end wiring of the
// fleet merge step calling Settle once per completion.
func TestLeastSojournFleetRunSettles(t *testing.T) {
	devices := []*Device{
		testDevice(t, "dev0", nil, nil),
		testDevice(t, "dev1", nil, nil),
	}
	p := NewLeastSojournPolicy()
	fl, err := New(devices, Config{Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	reqs := cycledRequests(t, []string{model.ResNet50, model.SqueezeNet}, 8, 500*time.Microsecond)
	res, err := fl.Run(reqs, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Completions); got != 8 {
		t.Fatalf("completions = %d, want 8", got)
	}
	ls := p.(*leastSojournPolicy)
	for dev, load := range ls.load {
		if load != 0 {
			t.Errorf("device %d load = %v after full drain, want 0", dev, load)
		}
	}
	var _ []*stream.Result = res.PerDevice // fleet result shape unchanged
}
