package lap

import (
	"math"
	"testing"
)

// FuzzSolve cross-checks the Hungarian solver against brute force on
// arbitrary small instances decoded from fuzz input, including forbidden
// (+Inf) entries.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{2, 2, 1, 2, 3, 4})
	f.Add([]byte{3, 2, 10, 255, 3, 4, 255, 6})
	f.Add([]byte{1, 4, 9, 9, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		nr := int(data[0])%4 + 1
		nc := int(data[1])%4 + 1
		need := nr * nc
		if len(data)-2 < need {
			return
		}
		cost := make([][]float64, nr)
		pos := 2
		for i := 0; i < nr; i++ {
			cost[i] = make([]float64, nc)
			for j := 0; j < nc; j++ {
				v := data[pos]
				pos++
				if v == 255 {
					cost[i][j] = math.Inf(1) // forbidden
				} else {
					cost[i][j] = float64(v)
				}
			}
		}
		_, _, got, err := Solve(cost)
		want, feasible := bruteForceWithForbidden(cost)
		if !feasible {
			if err != ErrInfeasible {
				t.Fatalf("infeasible instance: Solve err = %v, want ErrInfeasible (cost %v)", err, cost)
			}
			return
		}
		if err != nil {
			t.Fatalf("feasible instance rejected: %v (cost %v)", err, cost)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Solve = %g, brute force = %g (cost %v)", got, want, cost)
		}
	})
}

// bruteForceWithForbidden enumerates assignments of the smaller side,
// skipping forbidden edges; feasible is false when no complete assignment
// exists.
func bruteForceWithForbidden(cost [][]float64) (best float64, feasible bool) {
	nr, nc := len(cost), len(cost[0])
	if nr > nc {
		tr := make([][]float64, nc)
		for j := 0; j < nc; j++ {
			tr[j] = make([]float64, nr)
			for i := 0; i < nr; i++ {
				tr[j][i] = cost[i][j]
			}
		}
		cost, nr, nc = tr, nc, nr
	}
	best = math.Inf(1)
	used := make([]bool, nc)
	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		if acc >= best {
			return
		}
		if row == nr {
			best = acc
			return
		}
		for j := 0; j < nc; j++ {
			if used[j] || math.IsInf(cost[row][j], 1) {
				continue
			}
			used[j] = true
			rec(row+1, acc+cost[row][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best, !math.IsInf(best, 1)
}
