// Package lap solves the Linear Assignment Problem with the Kuhn–Munkres
// (Hungarian) algorithm in O(n³), the solver the paper's contention
// mitigation step (P3, Eq. 9–10) relies on. Rectangular cost matrices are
// supported by implicit padding, and +Inf entries mark forbidden
// assignments (the infeasible relocations of Eq. 10).
package lap

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrInfeasible is returned when no complete assignment avoids forbidden
// (+Inf) entries.
var ErrInfeasible = errors.New("lap: no feasible assignment")

// Unassigned marks a row or column that received no partner (rectangular
// instances leave the surplus side unmatched).
const Unassigned = -1

// lapScratch holds the solver's working state — potentials, matching,
// augmenting-path bookkeeping and the transpose copy's backing storage —
// pooled across Solve calls. The planner's mitigation step solves one LAP
// per candidate ordering per window, so steady-state serving would
// otherwise churn O(n) short-lived slices per solve. Every reused buffer is
// re-initialised below before the algorithm reads it; `way` needs none (a
// column's way entry is always written when its minv leaves +Inf, before
// the backtrack can visit it).
type lapScratch struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
	tflat      []float64
	trows      [][]float64
}

var lapScratchPool = sync.Pool{New: func() any { return new(lapScratch) }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// transpose fills the scratch-backed transpose of m, reusing one flat
// backing array plus a row-header slice across calls.
func (s *lapScratch) transpose(m [][]float64) [][]float64 {
	nr, nc := len(m), len(m[0])
	if cap(s.tflat) < nr*nc {
		s.tflat = make([]float64, nr*nc)
	} else {
		s.tflat = s.tflat[:nr*nc]
	}
	if cap(s.trows) < nc {
		s.trows = make([][]float64, nc)
	} else {
		s.trows = s.trows[:nc]
	}
	for j := 0; j < nc; j++ {
		row := s.tflat[j*nr : (j+1)*nr]
		for i := 0; i < nr; i++ {
			row[i] = m[i][j]
		}
		s.trows[j] = row
	}
	return s.trows
}

// Solve computes a minimum-cost assignment for the cost matrix. Row i
// assigned to column j contributes cost[i][j]. When rows ≠ columns, the
// smaller side is fully assigned and the surplus side keeps Unassigned
// entries. It returns the per-row assignment, the per-column assignment and
// the total cost.
//
// Entries of +Inf are forbidden; if every complete assignment of the smaller
// side would use a forbidden entry, Solve returns ErrInfeasible. NaN or -Inf
// entries are rejected.
func Solve(cost [][]float64) (rowTo, colTo []int, total float64, err error) {
	nr := len(cost)
	if nr == 0 {
		return nil, nil, 0, nil
	}
	nc := len(cost[0])
	for i, row := range cost {
		if len(row) != nc {
			return nil, nil, 0, fmt.Errorf("lap: ragged cost matrix at row %d", i)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, -1) {
				return nil, nil, 0, fmt.Errorf("lap: invalid cost at (%d, %d)", i, j)
			}
		}
	}
	if nc == 0 {
		return nil, nil, 0, fmt.Errorf("lap: zero-width cost matrix")
	}

	// The JV-style shortest augmenting path formulation wants rows ≤ cols;
	// transpose if needed. The scratch (and with it the transpose copy) is
	// pooled; it goes back once the returned slices — always freshly
	// allocated — have been filled.
	scr := lapScratchPool.Get().(*lapScratch)
	defer lapScratchPool.Put(scr)
	transposed := false
	work := cost
	if nr > nc {
		transposed = true
		work = scr.transpose(cost)
		nr, nc = nc, nr
	}

	// forbidden entries become a large finite sentinel so potentials stay
	// finite; feasibility is verified afterwards.
	maxFinite := 0.0
	for _, row := range work {
		for _, c := range row {
			if !math.IsInf(c, 1) && c > maxFinite {
				maxFinite = c
			}
		}
	}
	big := (maxFinite + 1) * float64(nr+nc+1)
	if big < 1 {
		big = 1
	}
	get := func(i, j int) float64 {
		c := work[i][j]
		if math.IsInf(c, 1) {
			return big
		}
		return c
	}

	// Shortest-augmenting-path Hungarian algorithm with 1-based columns
	// internally (classic formulation).
	u := growFloats(scr.u, nr+1)
	v := growFloats(scr.v, nc+1)
	p := growInts(scr.p, nc+1) // p[j]: row assigned to column j (0 = none)
	way := growInts(scr.way, nc+1)
	minv := growFloats(scr.minv, nc+1)
	used := scr.used
	if cap(used) < nc+1 {
		used = make([]bool, nc+1)
	} else {
		used = used[:nc+1]
	}
	scr.u, scr.v, scr.p, scr.way, scr.minv, scr.used = u, v, p, way, minv, used
	for i := range u {
		u[i] = 0
	}
	for j := range v {
		v[j] = 0
	}
	for j := range p {
		p[j] = 0
	}
	for i := 1; i <= nr; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= nc; j++ {
				if used[j] {
					continue
				}
				cur := get(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= nc; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowAssign := make([]int, nr)
	for i := range rowAssign {
		rowAssign[i] = Unassigned
	}
	for j := 1; j <= nc; j++ {
		if p[j] != 0 {
			rowAssign[p[j]-1] = j - 1
		}
	}
	for i, j := range rowAssign {
		if j == Unassigned {
			return nil, nil, 0, fmt.Errorf("lap: internal: row %d unassigned", i)
		}
		if math.IsInf(work[i][j], 1) {
			return nil, nil, 0, ErrInfeasible
		}
		total += work[i][j]
	}

	if transposed {
		// work rows were the original columns.
		origRows := nc
		rowTo = make([]int, origRows)
		colTo = make([]int, nr)
		for i := range rowTo {
			rowTo[i] = Unassigned
		}
		for c, r := range rowAssign {
			colTo[c] = r
			rowTo[r] = c
		}
		return rowTo, colTo, total, nil
	}
	colTo = make([]int, nc)
	for j := range colTo {
		colTo[j] = Unassigned
	}
	for i, j := range rowAssign {
		colTo[j] = i
	}
	return rowAssign, colTo, total, nil
}
