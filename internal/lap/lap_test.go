package lap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSquare(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rowTo, colTo, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %g, want 5", total)
	}
	checkConsistent(t, rowTo, colTo)
}

func TestSolveIdentityOptimal(t *testing.T) {
	cost := [][]float64{
		{0, 9, 9},
		{9, 0, 9},
		{9, 9, 0},
	}
	rowTo, _, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %g, want 0", total)
	}
	for i, j := range rowTo {
		if i != j {
			t.Errorf("rowTo[%d] = %d, want diagonal", i, j)
		}
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 4 columns: both rows assigned, two columns unassigned.
	cost := [][]float64{
		{8, 1, 7, 9},
		{6, 5, 1, 9},
	}
	rowTo, colTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Errorf("total = %g, want 2", total)
	}
	if rowTo[0] != 1 || rowTo[1] != 2 {
		t.Errorf("rowTo = %v", rowTo)
	}
	unassigned := 0
	for _, r := range colTo {
		if r == Unassigned {
			unassigned++
		}
	}
	if unassigned != 2 {
		t.Errorf("colTo = %v, want 2 unassigned", colTo)
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 4 rows, 2 columns: both columns assigned, two rows unassigned.
	cost := [][]float64{
		{8, 6},
		{1, 5},
		{7, 1},
		{9, 9},
	}
	rowTo, colTo, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Errorf("total = %g, want 2", total)
	}
	checkConsistent(t, rowTo, colTo)
	unassigned := 0
	for _, c := range rowTo {
		if c == Unassigned {
			unassigned++
		}
	}
	if unassigned != 2 {
		t.Errorf("rowTo = %v, want 2 unassigned", rowTo)
	}
}

func TestSolveForbidden(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	rowTo, _, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || rowTo[0] != 1 || rowTo[1] != 0 {
		t.Errorf("rowTo = %v total = %g, want anti-diagonal cost 2", rowTo, total)
	}
}

func TestSolveInfeasible(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, inf},
		{1, 2},
	}
	if _, _, _, err := Solve(cost); err != ErrInfeasible {
		t.Errorf("Solve = %v, want ErrInfeasible", err)
	}
}

func TestSolveInvalidInput(t *testing.T) {
	if _, _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix: nil error")
	}
	if _, _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost: nil error")
	}
	if _, _, _, err := Solve([][]float64{{math.Inf(-1)}}); err == nil {
		t.Error("-Inf cost: nil error")
	}
	if _, _, _, err := Solve([][]float64{{}}); err == nil {
		t.Error("zero-width matrix: nil error")
	}
	rowTo, colTo, total, err := Solve(nil)
	if err != nil || rowTo != nil || colTo != nil || total != 0 {
		t.Error("empty matrix should solve trivially")
	}
}

// TestSolveMatchesBruteForce cross-checks the Hungarian result against
// exhaustive enumeration on random small instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		_, _, got, err := Solve(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Solve = %g, brute force = %g, cost = %v", trial, got, want, cost)
		}
	}
}

// Property: permuting rows never changes the optimal total.
func TestSolvePermutationInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(100))
			}
		}
		_, _, a, err := Solve(cost)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, pi := range perm {
			shuffled[i] = cost[pi]
		}
		_, _, b, err := Solve(shuffled)
		if err != nil {
			return false
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func bruteForce(cost [][]float64) float64 {
	nr, nc := len(cost), len(cost[0])
	if nr > nc {
		// transpose so rows ≤ cols
		tr := make([][]float64, nc)
		for j := 0; j < nc; j++ {
			tr[j] = make([]float64, nr)
			for i := 0; i < nr; i++ {
				tr[j][i] = cost[i][j]
			}
		}
		cost, nr, nc = tr, nc, nr
	}
	best := math.Inf(1)
	used := make([]bool, nc)
	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		if acc >= best {
			return
		}
		if row == nr {
			best = acc
			return
		}
		for j := 0; j < nc; j++ {
			if !used[j] {
				used[j] = true
				rec(row+1, acc+cost[row][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func checkConsistent(t *testing.T, rowTo, colTo []int) {
	t.Helper()
	for i, j := range rowTo {
		if j != Unassigned && colTo[j] != i {
			t.Errorf("inconsistent: rowTo[%d]=%d but colTo[%d]=%d", i, j, j, colTo[j])
		}
	}
	for j, i := range colTo {
		if i != Unassigned && rowTo[i] != j {
			t.Errorf("inconsistent: colTo[%d]=%d but rowTo[%d]=%d", j, i, i, rowTo[i])
		}
	}
}
