package model

import "fmt"

// Batched returns a model representing `batch` inputs processed together:
// per-layer FLOPs and activation tensors scale with the batch while the
// weights are shared — the property that makes batching lightweight models
// profitable (paper Appendix D): one weight-load amortises across the whole
// batch and the batched stage duration becomes comparable to heavy models'.
//
// Working sets grow only by their activation component; the weight tiles
// are reused across the batch.
func Batched(m *Model, batch int) *Model {
	if batch <= 1 {
		return m.Clone()
	}
	b := int64(batch)
	out := &Model{
		Name:       fmt.Sprintf("%s×%d", m.Name, batch),
		Layers:     make([]Layer, len(m.Layers)),
		InputBytes: m.InputBytes * b,
	}
	for i, l := range m.Layers {
		nl := l
		nl.FLOPs = l.FLOPs * float64(batch)
		nl.InputBytes = l.InputBytes * b
		nl.OutputBytes = l.OutputBytes * b
		actWS := l.WorkingSetBytes - l.WeightBytes
		if actWS < 0 {
			actWS = 0
		}
		nl.WorkingSetBytes = l.WeightBytes + actWS*b
		out.Layers[i] = nl
	}
	return out
}
