package model

import (
	"testing"
	"testing/quick"
)

func TestBatchedScaling(t *testing.T) {
	m := MustByName(MobileNetV2)
	b4 := Batched(m, 4)
	if err := b4.Validate(); err != nil {
		t.Fatalf("batched model invalid: %v", err)
	}
	if b4.TotalFLOPs() != 4*m.TotalFLOPs() {
		t.Errorf("FLOPs %.0f != 4× base %.0f", b4.TotalFLOPs(), m.TotalFLOPs())
	}
	if b4.TotalWeightBytes() != m.TotalWeightBytes() {
		t.Error("batching must not duplicate weights")
	}
	if b4.InputBytes != 4*m.InputBytes {
		t.Error("batched input size mismatch")
	}
	if b4.Name == m.Name {
		t.Error("batched model keeps the base name")
	}
}

func TestBatchedIdentity(t *testing.T) {
	m := MustByName(SqueezeNet)
	for _, n := range []int{0, 1, -3} {
		b := Batched(m, n)
		if b.TotalFLOPs() != m.TotalFLOPs() || b.Name != m.Name {
			t.Errorf("Batched(%d) should clone the base model", n)
		}
		// And it must be an independent copy.
		b.Layers[0].FLOPs = -1
		if m.Layers[0].FLOPs == -1 {
			t.Fatal("Batched(1) aliases the base layers")
		}
	}
}

// Property: batched working sets never shrink and weight bytes per layer
// are preserved for any batch size.
func TestBatchedProperty(t *testing.T) {
	m := MustByName(GoogLeNet)
	prop := func(nRaw uint8) bool {
		n := int(nRaw%16) + 2
		b := Batched(m, n)
		for i := range m.Layers {
			if b.Layers[i].WeightBytes != m.Layers[i].WeightBytes {
				return false
			}
			if b.Layers[i].WorkingSetBytes < m.Layers[i].WorkingSetBytes {
				return false
			}
			if b.Layers[i].FLOPs != float64(n)*m.Layers[i].FLOPs {
				return false
			}
		}
		return b.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
