package model

import "fmt"

// bytesPerElem is the storage size of one tensor element; the paper's mobile
// deployments run FP16.
const bytesPerElem = 2

// chain incrementally builds a model's layer sequence while tracking the
// current feature-map shape, so tensor-size continuity (layer i input ==
// layer i-1 output) holds by construction. Branchy modules (inception, fire,
// residual, YOLO routes) are serialised into equivalent-cost chains: the
// planner slices the topological order, so only the cost profile along the
// chain matters, not the exact dataflow graph.
type chain struct {
	name    string
	layers  []Layer
	h, w, c int // current spatial feature map (h=w=0 for 1-D token tensors)
	elems   int // current tensor element count
	counter int
}

// newChain starts a chain for an image network with input h×w×c.
func newChain(name string, h, w, c int) *chain {
	return &chain{name: name, h: h, w: w, c: c, elems: h * w * c}
}

// newTokenChain starts a chain for a token network with seqLen×dim input.
func newTokenChain(name string, seqLen, dim int) *chain {
	return &chain{name: name, elems: seqLen * dim}
}

func (b *chain) curBytes() int64 { return int64(b.elems) * bytesPerElem }

func (b *chain) push(kind OpKind, label string, flops float64, outElems int, weightBytes, workingSet int64) {
	b.counter++
	in := b.curBytes()
	b.elems = outElems
	b.layers = append(b.layers, Layer{
		Name:            fmt.Sprintf("%s_%d", label, b.counter),
		Kind:            kind,
		FLOPs:           flops,
		InputBytes:      in,
		OutputBytes:     b.curBytes(),
		WeightBytes:     weightBytes,
		WorkingSetBytes: workingSet,
	})
}

// conv appends a k×k convolution with stride s producing outC channels.
// FLOPs follow the standard 2·k²·Cin·Cout·Hout·Wout count.
func (b *chain) conv(outC, k, s int) {
	outH := (b.h + s - 1) / s
	outW := (b.w + s - 1) / s
	flops := 2 * float64(k*k*b.c*outC) * float64(outH*outW)
	weights := int64(k*k*b.c*outC) * bytesPerElem
	// Working set: weight tile plus an input stripe of k rows.
	ws := weights + int64(k*b.w*b.c)*bytesPerElem
	b.h, b.w = outH, outW
	b.c = outC
	b.push(OpConv, "conv", flops, outH*outW*outC, weights, ws)
}

// dwConv appends a depthwise k×k convolution with stride s (channel count
// preserved), the MobileNet building block.
func (b *chain) dwConv(k, s int) {
	outH := (b.h + s - 1) / s
	outW := (b.w + s - 1) / s
	flops := 2 * float64(k*k*b.c) * float64(outH*outW)
	weights := int64(k*k*b.c) * bytesPerElem
	ws := weights + int64(k*b.w*b.c)*bytesPerElem
	b.h, b.w = outH, outW
	b.push(OpDepthwiseConv, "dwconv", flops, outH*outW*b.c, weights, ws)
}

// pool appends a k×k pooling with stride s.
func (b *chain) pool(k, s int) {
	outH := (b.h + s - 1) / s
	outW := (b.w + s - 1) / s
	flops := float64(k*k) * float64(outH*outW*b.c)
	b.h, b.w = outH, outW
	b.push(OpPool, "pool", flops, outH*outW*b.c, 0, int64(k*b.w*b.c)*bytesPerElem)
}

// globalPool collapses the spatial dimensions to 1×1.
func (b *chain) globalPool() {
	flops := float64(b.h * b.w * b.c)
	b.h, b.w = 1, 1
	b.push(OpPool, "gap", flops, b.c, 0, b.curBytes())
}

// act appends an element-wise activation over the current tensor.
func (b *chain) act() {
	b.push(OpActivation, "act", float64(b.elems), b.elems, 0, b.curBytes())
}

// residual appends a residual addition (shape preserved).
func (b *chain) residual() {
	b.push(OpResidualAdd, "add", float64(b.elems), b.elems, 0, 2*b.curBytes())
}

// concat appends a channel concatenation yielding outC channels at the
// current spatial size. It models inception joins and YOLO routes.
func (b *chain) concat(outC int) {
	b.c = outC
	out := b.h * b.w * outC
	b.push(OpConcat, "concat", float64(out), out, 0, int64(out)*bytesPerElem)
}

// upsample doubles the spatial resolution (YOLO neck).
func (b *chain) upsample() {
	b.h *= 2
	b.w *= 2
	out := b.h * b.w * b.c
	b.push(OpUpsample, "upsample", float64(out), out, 0, int64(out)*bytesPerElem)
}

// fc appends a fully connected layer from the flattened current tensor to
// outDim units. FC layers carry huge weight matrices relative to compute
// (the 2–4× higher cache-miss source of Observation 2): the working set is
// the full weight matrix.
func (b *chain) fc(outDim int) {
	in := b.elems
	flops := 2 * float64(in) * float64(outDim)
	weights := int64(in*outDim) * bytesPerElem
	b.h, b.w, b.c = 0, 0, 0
	b.push(OpFC, "fc", flops, outDim, weights, weights)
}

// flatten is implicit: fc consumes the flattened element count.

// embedding appends a token-embedding lookup: vocab×dim table, seqLen×dim
// output. Lookup tables are pure memory traffic.
func (b *chain) embedding(vocab, seqLen, dim int) {
	weights := int64(vocab*dim) * bytesPerElem
	out := seqLen * dim
	b.push(OpEmbedding, "embed", float64(out), out, weights, int64(out)*bytesPerElem)
}

// attention appends a fused multi-head self-attention layer over seqLen
// tokens of width dim: QKV projections, scaled dot-product, output
// projection. The d×d projection matrices exceed mobile L2 caches, making
// this the paper's canonical memory-bound transformer operator.
func (b *chain) attention(seqLen, dim int) {
	proj := 2 * 4 * float64(seqLen) * float64(dim) * float64(dim) // QKV + output proj
	attn := 2 * 2 * float64(seqLen) * float64(seqLen) * float64(dim)
	weights := int64(4*dim*dim) * bytesPerElem
	out := seqLen * dim
	b.push(OpAttention, "attn", proj+attn, out, weights, weights)
}

// layerNorm appends a layer normalisation over the current tensor.
func (b *chain) layerNorm(dim int) {
	flops := 5 * float64(b.elems)
	b.push(OpLayerNorm, "ln", flops, b.elems, int64(2*dim)*bytesPerElem, b.curBytes())
}

// matmul appends a dense seqLen×inDim → seqLen×outDim projection, the FFN
// half-block of a transformer (the 768×3072 MatMul of Observation 2).
func (b *chain) matmul(seqLen, inDim, outDim int) {
	flops := 2 * float64(seqLen) * float64(inDim) * float64(outDim)
	weights := int64(inDim*outDim) * bytesPerElem
	out := seqLen * outDim
	b.push(OpMatMul, "matmul", flops, out, weights, weights)
}

// softmax appends a softmax over the current tensor.
func (b *chain) softmax() {
	b.push(OpSoftmax, "softmax", 3*float64(b.elems), b.elems, 0, b.curBytes())
}

// build finalises the model.
func (b *chain) build() *Model {
	var in int64
	if len(b.layers) > 0 {
		in = b.layers[0].InputBytes
	}
	return &Model{Name: b.name, Layers: b.layers, InputBytes: in}
}
