package model

// Convolutional members of the zoo. Each constructor synthesises the layer
// chain of the published architecture; layer counts, FLOP totals and
// parameter sizes track the originals closely enough that the partitioning
// and contention behaviour the paper reports is preserved (see DESIGN.md §1).

// NewAlexNet builds AlexNet (Krizhevsky 2012): 5 conv + 3 FC layers,
// ~1.4 GFLOPs, ~61 M parameters. The three FC layers hold >90 % of the
// weights — the classic memory-bound tail of Observation 2.
func NewAlexNet() *Model {
	b := newChain("AlexNet", 227, 227, 3)
	b.conv(96, 11, 4)
	b.act()
	b.pool(3, 2)
	b.conv(256, 5, 1)
	b.act()
	b.pool(3, 2)
	b.conv(384, 3, 1)
	b.act()
	b.conv(384, 3, 1)
	b.act()
	b.conv(256, 3, 1)
	b.act()
	b.pool(3, 2)
	// Flatten 13x13x256 -> FC stack. Real AlexNet pools to 6x6; approximate
	// the flattened width to keep the published ~59 M FC parameters.
	b.pool(2, 2)
	b.fc(4096)
	b.act()
	b.fc(4096)
	b.act()
	b.fc(1000)
	return b.build()
}

// NewVGG16 builds VGG16: 13 conv + 3 FC layers, ~15.5 GFLOPs, ~138 M
// parameters (102 M in fc6 alone).
func NewVGG16() *Model {
	b := newChain("VGG16", 224, 224, 3)
	block := func(convs, outC int) {
		for i := 0; i < convs; i++ {
			b.conv(outC, 3, 1)
			b.act()
		}
		b.pool(2, 2)
	}
	block(2, 64)
	block(2, 128)
	block(3, 256)
	block(3, 512)
	block(3, 512)
	b.fc(4096)
	b.act()
	b.fc(4096)
	b.act()
	b.fc(1000)
	return b.build()
}

// NewSqueezeNet builds SqueezeNet 1.1: 8 fire modules between a stem conv
// and a final 1×1 classifier conv, ~0.7 GFLOPs, ~1.2 M parameters (4.8 MB
// in the paper's packaging). Despite its size it is the paper's Observation-3
// outlier: tiny compute over many small tensors yields a high solo
// memory-traffic *rate*, hence high contention intensity.
func NewSqueezeNet() *Model {
	b := newChain("SqueezeNet", 224, 224, 3)
	b.conv(64, 3, 2)
	b.act()
	b.pool(3, 2)
	// fire(squeeze, expand): squeeze 1x1, then the 3x3 half of the expand
	// stage; the cheap 1x1 expand branch is folded into the concat join.
	fire := func(squeeze, expand int) {
		b.conv(squeeze, 1, 1)
		b.act()
		b.conv(expand/2, 3, 1)
		b.act()
		b.concat(expand)
	}
	fire(16, 128)
	fire(16, 128)
	b.pool(3, 2)
	fire(32, 256)
	fire(32, 256)
	b.pool(3, 2)
	fire(48, 384)
	fire(48, 384)
	fire(64, 512)
	fire(64, 512)
	b.conv(1000, 1, 1)
	b.globalPool()
	return b.build()
}

// NewGoogLeNet builds GoogLeNet (Inception v1): stem plus 9 inception
// modules, ~3 GFLOPs, ~7 M parameters (23 MB packaged). Like SqueezeNet it
// is light in FLOPs but traffic-rate heavy (Observation 3).
func NewGoogLeNet() *Model {
	b := newChain("GoogLeNet", 224, 224, 3)
	b.conv(64, 7, 2)
	b.act()
	b.pool(3, 2)
	b.conv(64, 1, 1)
	b.conv(192, 3, 1)
	b.act()
	b.pool(3, 2)
	// inception(reduce, out): serialised as 1x1 reduce, 3x3 main conv, and
	// a channel concat to the module's output width.
	inception := func(reduce, out int) {
		b.conv(reduce, 1, 1)
		b.act()
		b.conv(out*3/4, 3, 1)
		b.act()
		b.conv(out/8, 5, 1)
		b.concat(out)
	}
	inception(96, 256)
	inception(128, 480)
	b.pool(3, 2)
	inception(96, 512)
	inception(112, 512)
	inception(128, 512)
	inception(144, 528)
	inception(160, 832)
	b.pool(3, 2)
	inception(160, 832)
	inception(192, 1024)
	b.globalPool()
	b.fc(1000)
	return b.build()
}

// NewInceptionV4 builds Inception-v4: a 299×299 stem plus 4×A, 7×B and 3×C
// inception blocks with reductions, ~12 GFLOPs, ~43 M parameters.
func NewInceptionV4() *Model {
	b := newChain("InceptionV4", 299, 299, 3)
	// Stem.
	b.conv(32, 3, 2)
	b.act()
	b.conv(32, 3, 1)
	b.act()
	b.conv(64, 3, 1)
	b.act()
	b.pool(3, 2)
	b.conv(96, 3, 1)
	b.concat(160)
	b.conv(96, 3, 1)
	b.act()
	b.pool(3, 2)
	b.concat(384)
	blockA := func() {
		b.conv(64, 1, 1)
		b.act()
		b.conv(96, 3, 1)
		b.act()
		b.conv(96, 3, 1)
		b.concat(384)
	}
	for i := 0; i < 4; i++ {
		blockA()
	}
	b.conv(384, 3, 2) // reduction A
	b.concat(1024)
	blockB := func() {
		b.conv(192, 1, 1)
		b.act()
		b.conv(224, 3, 1)
		b.act()
		b.conv(256, 3, 1)
		b.concat(1024)
	}
	for i := 0; i < 7; i++ {
		blockB()
	}
	b.conv(320, 3, 2) // reduction B
	b.concat(1536)
	blockC := func() {
		b.conv(256, 1, 1)
		b.act()
		b.conv(384, 3, 1)
		b.concat(1536)
	}
	for i := 0; i < 3; i++ {
		blockC()
	}
	b.globalPool()
	b.fc(1000)
	return b.build()
}

// NewResNet50 builds ResNet-50: a 7×7 stem plus 16 bottleneck blocks,
// ~4.1 GFLOPs, ~25.5 M parameters.
func NewResNet50() *Model {
	b := newChain("ResNet50", 224, 224, 3)
	b.conv(64, 7, 2)
	b.act()
	b.pool(3, 2)
	bottleneck := func(mid, out, stride int) {
		b.conv(mid, 1, 1)
		b.act()
		b.conv(mid, 3, stride)
		b.act()
		b.conv(out, 1, 1)
		b.residual()
		b.act()
	}
	stage := func(blocks, mid, out, stride int) {
		bottleneck(mid, out, stride)
		for i := 1; i < blocks; i++ {
			bottleneck(mid, out, 1)
		}
	}
	stage(3, 64, 256, 1)
	stage(4, 128, 512, 2)
	stage(6, 256, 1024, 2)
	stage(3, 512, 2048, 2)
	b.globalPool()
	b.fc(1000)
	return b.build()
}

// NewMobileNetV2 builds MobileNetV2: 17 inverted-residual blocks of
// expand/dwconv/project, ~0.6 GFLOPs, ~3.5 M parameters.
func NewMobileNetV2() *Model {
	b := newChain("MobileNetV2", 224, 224, 3)
	b.conv(32, 3, 2)
	b.act()
	inverted := func(expand, out, stride int, residual bool) {
		b.conv(expand, 1, 1)
		b.act()
		b.dwConv(3, stride)
		b.act()
		b.conv(out, 1, 1)
		if residual {
			b.residual()
		}
	}
	inverted(32, 16, 1, false)
	inverted(96, 24, 2, false)
	inverted(144, 24, 1, true)
	inverted(144, 32, 2, false)
	inverted(192, 32, 1, true)
	inverted(192, 32, 1, true)
	inverted(192, 64, 2, false)
	for i := 0; i < 3; i++ {
		inverted(384, 64, 1, true)
	}
	inverted(384, 96, 1, false)
	inverted(576, 96, 1, true)
	inverted(576, 96, 1, true)
	inverted(576, 160, 2, false)
	inverted(960, 160, 1, true)
	inverted(960, 160, 1, true)
	inverted(960, 320, 1, false)
	b.conv(1280, 1, 1)
	b.act()
	b.globalPool()
	b.fc(1000)
	return b.build()
}

// NewYOLOv4 builds YOLOv4 at 416×416: a CSPDarknet53 backbone, SPP+PANet
// neck with upsampling routes (NPU-unsupported, forcing the fallback the
// paper observes), and three detection heads. ~60 GFLOPs, ~64 M parameters.
func NewYOLOv4() *Model {
	b := newChain("YOLOv4", 416, 416, 3)
	b.conv(32, 3, 1)
	b.act()
	cspStage := func(blocks, out int) {
		b.conv(out, 3, 2) // downsample
		b.act()
		for i := 0; i < blocks; i++ {
			b.conv(out/2, 1, 1)
			b.act()
			b.conv(out, 3, 1)
			b.residual()
		}
		b.concat(out)
	}
	cspStage(1, 64)
	cspStage(2, 128)
	cspStage(8, 256)
	cspStage(8, 512)
	cspStage(4, 1024)
	// SPP.
	b.conv(512, 1, 1)
	b.act()
	b.pool(5, 1)
	b.concat(2048)
	b.conv(512, 1, 1)
	b.act()
	// PANet neck with two upsample routes.
	b.conv(256, 1, 1)
	b.upsample()
	b.concat(512)
	b.conv(256, 3, 1)
	b.act()
	b.conv(128, 1, 1)
	b.upsample()
	b.concat(256)
	b.conv(128, 3, 1)
	b.act()
	// Heads (serialised): small, medium, large object scales.
	b.conv(256, 3, 1)
	b.act()
	b.conv(255, 1, 1)
	b.conv(256, 3, 2)
	b.act()
	b.conv(512, 3, 1)
	b.conv(255, 1, 1)
	b.conv(512, 3, 2)
	b.act()
	b.conv(1024, 3, 1)
	b.conv(255, 1, 1)
	return b.build()
}
