package model

// Extra networks beyond the ten-model evaluation collection: the
// scene-understanding application of the paper's introduction is "comprised
// of YOLO for robust object detection, FaceNet, Age/GenderNet for facial,
// age and gender recognition and ViT-GPT2 for scene-to-text captioning".
// These constructors provide the missing three so the example application
// can run the actual mix; they are registered separately (ExtraNames) so
// the evaluation experiments keep operating on the paper's ten models.

// Extra model names.
const (
	FaceNet      = "FaceNet"
	AgeGenderNet = "AgeGenderNet"
	GPT2Decoder  = "GPT2Decoder"
)

var extraBuilders = map[string]func() *Model{
	FaceNet:      NewFaceNet,
	AgeGenderNet: NewAgeGenderNet,
	GPT2Decoder:  NewGPT2Decoder,
}

// ExtraNames returns the extra model names in deterministic order.
func ExtraNames() []string {
	return []string{AgeGenderNet, FaceNet, GPT2Decoder}
}

// NewFaceNet builds a FaceNet-style Inception-ResNet-v1 face-embedding
// network on 160×160 crops: stem, three inception-resnet stages with
// reductions, and a 128-d embedding head. ~1.6 GFLOPs, ~24 M parameters.
func NewFaceNet() *Model {
	b := newChain("FaceNet", 160, 160, 3)
	b.conv(32, 3, 2)
	b.act()
	b.conv(64, 3, 1)
	b.act()
	b.pool(3, 2)
	b.conv(80, 1, 1)
	b.conv(192, 3, 1)
	b.act()
	b.conv(256, 3, 2)
	block := func(mid int, out int) {
		b.conv(mid, 1, 1)
		b.act()
		b.conv(mid, 3, 1)
		b.act()
		b.conv(out, 1, 1)
		b.residual()
		b.act()
	}
	for i := 0; i < 5; i++ { // inception-resnet-A ×5
		block(32, 256)
	}
	b.conv(384, 3, 2) // reduction-A
	b.concat(896)
	for i := 0; i < 10; i++ { // inception-resnet-B ×10
		block(128, 896)
	}
	b.conv(256, 3, 2) // reduction-B
	b.concat(1792)
	for i := 0; i < 5; i++ { // inception-resnet-C ×5
		block(192, 1792)
	}
	b.globalPool()
	b.fc(128) // embedding
	return b.build()
}

// NewAgeGenderNet builds the Levi–Hassner age/gender CNN on 227×227 crops:
// three conv blocks and two 512-wide FC layers. ~0.8 GFLOPs, ~11 M
// parameters — a classic lightweight attribute classifier.
func NewAgeGenderNet() *Model {
	b := newChain("AgeGenderNet", 227, 227, 3)
	b.conv(96, 7, 4)
	b.act()
	b.pool(3, 2)
	b.conv(256, 5, 1)
	b.act()
	b.pool(3, 2)
	b.conv(384, 3, 1)
	b.act()
	b.pool(3, 2)
	b.pool(2, 2) // approach the flattened width of the original
	b.fc(512)
	b.act()
	b.fc(512)
	b.act()
	b.fc(10) // 8 age buckets / 2 genders share the backbone
	return b.build()
}

// GPT-2 decoder hyperparameters (small configuration, short caption).
const (
	gpt2Seq    = 32 // caption tokens generated against the image context
	gpt2Dim    = 768
	gpt2FFN    = 3072
	gpt2Vocab  = 50257
	gpt2Blocks = 12
)

// NewGPT2Decoder builds the caption-decoder half of the ViT-GPT2 pipeline:
// token embedding, 12 decoder blocks (masked self-attention + FFN), and the
// tied-vocabulary output projection. Like BERT/ViT it is NPU-unsupported
// throughout. ~6 GFLOPs per caption, ~124 M parameters.
func NewGPT2Decoder() *Model {
	b := newTokenChain("GPT2Decoder", gpt2Seq, gpt2Dim)
	b.embedding(gpt2Vocab, gpt2Seq, gpt2Dim)
	for i := 0; i < gpt2Blocks; i++ {
		encoderBlock(b, gpt2Seq, gpt2Dim, gpt2FFN)
	}
	b.layerNorm(gpt2Dim)
	b.matmul(gpt2Seq, gpt2Dim, gpt2Vocab) // logits (weights tied in spirit)
	b.softmax()
	return b.build()
}
