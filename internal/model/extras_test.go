package model

import "testing"

func TestExtrasValidate(t *testing.T) {
	for _, name := range ExtraNames() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
	}
}

func TestExtrasNotInEvaluationZoo(t *testing.T) {
	// The evaluation experiments iterate Names()/All(); the extras must
	// not leak into them (the paper evaluates exactly ten networks).
	inZoo := make(map[string]bool)
	for _, n := range Names() {
		inZoo[n] = true
	}
	for _, n := range ExtraNames() {
		if inZoo[n] {
			t.Errorf("extra model %q leaked into the evaluation zoo", n)
		}
	}
	if len(Names()) != 10 {
		t.Errorf("evaluation zoo has %d models, want 10", len(Names()))
	}
}

func TestExtraMagnitudes(t *testing.T) {
	bands := map[string][2]float64{ // [min, max] GFLOPs
		FaceNet:      {0.5, 8},
		AgeGenderNet: {0.2, 4},
		GPT2Decoder:  {2, 25},
	}
	for name, band := range bands {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := m.TotalFLOPs() / 1e9
		if g < band[0] || g > band[1] {
			t.Errorf("%s: %.2f GFLOPs outside [%g, %g]", name, g, band[0], band[1])
		}
	}
	// GPT-2's vocabulary projection makes it parameter-heavy.
	gpt, _ := ByName(GPT2Decoder)
	if mb := float64(gpt.TotalWeightBytes()) / 1e6; mb < 150 {
		t.Errorf("GPT2Decoder weights %.0f MB, want ≥ 150 (vocab projection)", mb)
	}
}

func TestExtraNPUSupport(t *testing.T) {
	// Transformer decoder falls back; the CNN extras run on the NPU.
	gpt, _ := ByName(GPT2Decoder)
	if gpt.FullyNPUSupported() {
		t.Error("GPT2Decoder should contain NPU-unsupported operators")
	}
	for _, name := range []string{FaceNet, AgeGenderNet} {
		m, _ := ByName(name)
		if !m.FullyNPUSupported() {
			t.Errorf("%s: unexpected unsupported layers %v", name, m.NPUUnsupportedLayers())
		}
	}
}
