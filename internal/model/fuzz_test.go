package model

import (
	"encoding/json"
	"testing"
)

// FuzzModelJSON: arbitrary bytes must either fail to decode or produce a
// model that passes Validate and survives a marshal/unmarshal round trip.
func FuzzModelJSON(f *testing.F) {
	for _, name := range []string{SqueezeNet, BERT} {
		data, err := json.Marshal(MustByName(name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","inputBytes":4,"layers":[{"name":"a","kind":"Conv","flops":1,"inputBytes":4,"outputBytes":4}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Model
		if err := json.Unmarshal(data, &m); err != nil {
			return // rejected input is fine
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid model: %v", err)
		}
		out, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var again Model
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if again.Name != m.Name || again.NumLayers() != m.NumLayers() {
			t.Fatal("round trip changed the model")
		}
	})
}
