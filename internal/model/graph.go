package model

import (
	"errors"
	"fmt"
)

// Graph is a DAG-structured network description. The planner operates on
// linear chains (Definition 1 slices a topological order), so Graph exists
// for faithful construction: build the real dataflow with branches and skip
// connections, then Linearize. Linearization preserves per-node FLOPs,
// weights and working sets exactly, and sets each chain boundary's tensor
// size to the true *cut width* — the total bytes of every edge crossing
// that topological position — so a pipeline split through a branchy region
// is charged the full set of live tensors it must transfer, something the
// hand-serialised builders approximate.
type Graph struct {
	// Name is the network name.
	Name string
	// Nodes hold the computation; edges are stored as producer indices.
	Nodes []GraphNode
	// InputBytes is the network input size, consumed by source nodes.
	InputBytes int64
}

// GraphNode is one operator with explicit producers.
type GraphNode struct {
	// Layer carries the cost descriptor. Its InputBytes/OutputBytes are
	// the node's own tensor sizes; chain boundary sizes are recomputed
	// from cuts during linearisation.
	Layer Layer
	// Inputs are indices of producer nodes; empty means the node consumes
	// the network input.
	Inputs []int
}

// Validate checks structural soundness: edges in range, no forward
// references that would make Kahn's algorithm ambiguous to report, acyclic,
// and at least one node.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return errors.New("graph has empty name")
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("graph %q has no nodes", g.Name)
	}
	if g.InputBytes <= 0 {
		return fmt.Errorf("graph %q has non-positive input size", g.Name)
	}
	for i, n := range g.Nodes {
		if err := n.Layer.Validate(); err != nil {
			return fmt.Errorf("graph %q node %d: %w", g.Name, i, err)
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= len(g.Nodes) {
				return fmt.Errorf("graph %q node %d: input %d out of range", g.Name, i, in)
			}
			if in == i {
				return fmt.Errorf("graph %q node %d: self loop", g.Name, i)
			}
		}
	}
	if _, err := g.topoOrder(); err != nil {
		return fmt.Errorf("graph %q: %w", g.Name, err)
	}
	return nil
}

// topoOrder returns a deterministic topological order (Kahn's algorithm,
// lowest-index-first among ready nodes).
func (g *Graph) topoOrder() ([]int, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, node := range g.Nodes {
		indeg[i] = len(node.Inputs)
		for _, in := range node.Inputs {
			succ[in] = append(succ[in], i)
		}
	}
	order := make([]int, 0, n)
	// Lowest-index-first keeps the order deterministic and close to the
	// construction order.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Pop the smallest index.
		best := 0
		for j := 1; j < len(ready); j++ {
			if ready[j] < ready[best] {
				best = j
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, v)
		for _, s := range succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("graph has a cycle")
	}
	return order, nil
}

// Linearize converts the DAG into an equivalent-cost chain Model. Chain
// position p holds the node at topological position p; the boundary tensor
// after position p is the cut width: the summed output bytes of every node
// whose result is still needed by a node at a later position (plus the
// network input while any source node remains).
func (g *Graph) Linearize() (*Model, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	pos := make([]int, n) // node index → topo position
	for p, v := range order {
		pos[v] = p
	}
	// lastUse[v] is the latest topo position that consumes node v's output;
	// terminal nodes (no consumer) live to the end — their outputs are the
	// network's.
	lastUse := make([]int, n)
	hasConsumer := make([]bool, n)
	for v := 0; v < n; v++ {
		lastUse[v] = n - 1
	}
	use := make([]int, n)
	for i, node := range g.Nodes {
		for _, in := range node.Inputs {
			hasConsumer[in] = true
			if pos[i] > use[in] {
				use[in] = pos[i]
			}
		}
	}
	for v := 0; v < n; v++ {
		if hasConsumer[v] {
			lastUse[v] = use[v]
		}
	}
	// inputLive: the network input stays live until its last source node.
	inputLast := 0
	for i, node := range g.Nodes {
		if len(node.Inputs) == 0 && pos[i] > inputLast {
			inputLast = pos[i]
		}
	}

	// cut[p]: bytes crossing the boundary after topo position p.
	cut := make([]int64, n)
	for p := 0; p < n-1; p++ {
		var bytes int64
		for v := 0; v < n; v++ {
			if pos[v] <= p && lastUse[v] > p {
				bytes += g.Nodes[v].Layer.OutputBytes
			}
		}
		if p < inputLast {
			bytes += g.InputBytes
		}
		cut[p] = bytes
	}
	// Final boundary: the network outputs.
	var outBytes int64
	for v := 0; v < n; v++ {
		if !hasConsumer[v] {
			outBytes += g.Nodes[v].Layer.OutputBytes
		}
	}
	cut[n-1] = outBytes

	layers := make([]Layer, n)
	prev := g.InputBytes
	for p, v := range order {
		l := g.Nodes[v].Layer
		l.InputBytes = prev
		l.OutputBytes = cut[p]
		layers[p] = l
		prev = cut[p]
	}
	m := &Model{Name: g.Name, Layers: layers, InputBytes: g.InputBytes}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph %q: linearised model invalid: %w", g.Name, err)
	}
	return m, nil
}

// TotalFLOPs sums the graph's node FLOPs (preserved by Linearize).
func (g *Graph) TotalFLOPs() float64 {
	var sum float64
	for _, n := range g.Nodes {
		sum += n.Layer.FLOPs
	}
	return sum
}

// TotalWeightBytes sums the graph's parameters (preserved by Linearize).
func (g *Graph) TotalWeightBytes() int64 {
	var sum int64
	for _, n := range g.Nodes {
		sum += n.Layer.WeightBytes
	}
	return sum
}
