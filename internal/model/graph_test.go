package model

import (
	"testing"
)

// diamondGraph builds input → a → {b, c} → d (concat): the smallest graph
// with a branch, so cut widths through the branch carry both tensors.
func diamondGraph() *Graph {
	mk := func(name string, in, out int64) Layer {
		return Layer{
			Name: name, Kind: OpConv, FLOPs: 1e6,
			InputBytes: in, OutputBytes: out,
			WeightBytes: 128, WorkingSetBytes: 256,
		}
	}
	return &Graph{
		Name:       "Diamond",
		InputBytes: 100,
		Nodes: []GraphNode{
			{Layer: mk("a", 100, 40)},                     // 0: source
			{Layer: mk("b", 40, 30), Inputs: []int{0}},    // 1
			{Layer: mk("c", 40, 20), Inputs: []int{0}},    // 2
			{Layer: mk("d", 50, 10), Inputs: []int{1, 2}}, // 3: join
		},
	}
}

func TestGraphValidate(t *testing.T) {
	g := diamondGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := diamondGraph()
	bad.Nodes[1].Inputs = []int{9}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	selfLoop := diamondGraph()
	selfLoop.Nodes[1].Inputs = []int{1}
	if err := selfLoop.Validate(); err == nil {
		t.Error("self loop accepted")
	}
	cyc := diamondGraph()
	cyc.Nodes[0].Inputs = []int{3}
	if err := cyc.Validate(); err == nil {
		t.Error("cycle accepted")
	}
	empty := &Graph{Name: "e", InputBytes: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestLinearizeDiamond(t *testing.T) {
	g := diamondGraph()
	m, err := g.Linearize()
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("linearised model invalid: %v", err)
	}
	if m.NumLayers() != 4 {
		t.Fatalf("%d layers, want 4", m.NumLayers())
	}
	// FLOPs and weights preserved exactly.
	if m.TotalFLOPs() != g.TotalFLOPs() {
		t.Errorf("FLOPs %g != %g", m.TotalFLOPs(), g.TotalFLOPs())
	}
	if m.TotalWeightBytes() != g.TotalWeightBytes() {
		t.Errorf("weights %d != %d", m.TotalWeightBytes(), g.TotalWeightBytes())
	}
	// Topological order is a,b,c,d; the cut between b and c carries b's
	// output (30, live until d) AND a's output (40, still needed by c):
	// 70 bytes — the skip-connection charge a naive chain misses.
	if got := m.Layers[1].OutputBytes; got != 70 {
		t.Errorf("cut after b = %d, want 70 (b's 30 + a's 40)", got)
	}
	// The cut between a and b carries only a's output.
	if got := m.Layers[0].OutputBytes; got != 40 {
		t.Errorf("cut after a = %d, want 40", got)
	}
	// The final boundary is the terminal node's output.
	if got := m.Layers[3].OutputBytes; got != 10 {
		t.Errorf("final output = %d, want 10", got)
	}
}

func TestLinearizeInputLiveness(t *testing.T) {
	// Two source nodes: the network input must stay live across the first
	// cut (the second source still needs it).
	mk := func(name string, out int64) Layer {
		return Layer{Name: name, Kind: OpConv, FLOPs: 1, InputBytes: 100, OutputBytes: out}
	}
	g := &Graph{
		Name:       "TwoSources",
		InputBytes: 100,
		Nodes: []GraphNode{
			{Layer: mk("s1", 10)},
			{Layer: mk("s2", 20)},
			{Layer: Layer{Name: "join", Kind: OpConcat, FLOPs: 1, InputBytes: 30, OutputBytes: 30}, Inputs: []int{0, 1}},
		},
	}
	m, err := g.Linearize()
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	// Cut after s1: s1's output (10) + the still-needed input (100).
	if got := m.Layers[0].OutputBytes; got != 110 {
		t.Errorf("cut after s1 = %d, want 110", got)
	}
}

// TestGoogLeNetGraphEquivalent builds one inception module as a true DAG
// and checks the linearisation against the same costs.
func TestInceptionModuleGraph(t *testing.T) {
	conv := func(name string, in, out int64, flops float64) Layer {
		return Layer{Name: name, Kind: OpConv, FLOPs: flops,
			InputBytes: in, OutputBytes: out, WeightBytes: 1024, WorkingSetBytes: 2048}
	}
	g := &Graph{
		Name:       "InceptionModule",
		InputBytes: 1000,
		Nodes: []GraphNode{
			{Layer: conv("b1x1", 1000, 200, 1e6)},                // branch 1
			{Layer: conv("b3r", 1000, 100, 5e5)},                 // branch 2 reduce
			{Layer: conv("b3", 100, 300, 2e6), Inputs: []int{1}}, // branch 2 main
			{Layer: conv("b5r", 1000, 50, 3e5)},                  // branch 3 reduce
			{Layer: conv("b5", 50, 100, 1e6), Inputs: []int{3}},  // branch 3 main
			{Layer: Layer{Name: "cat", Kind: OpConcat, FLOPs: 600,
				InputBytes: 600, OutputBytes: 600}, Inputs: []int{0, 2, 4}},
		},
	}
	m, err := g.Linearize()
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	if m.NumLayers() != 6 {
		t.Fatalf("%d layers, want 6", m.NumLayers())
	}
	if m.TotalFLOPs() != g.TotalFLOPs() {
		t.Error("FLOPs not preserved")
	}
	// Mid-module cuts carry multiple live branch tensors: every interior
	// cut is at least as wide as any single branch tensor.
	for p := 0; p < 5; p++ {
		if m.Layers[p].OutputBytes < 200 {
			t.Errorf("cut %d = %d bytes; expected live branch tensors", p, m.Layers[p].OutputBytes)
		}
	}
}

func TestLinearizePlansEndToEnd(t *testing.T) {
	// A graph-built model must flow through the planner like any other.
	g := diamondGraph()
	m, err := g.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check that the layer chain is usable as a zoo-style model: the
	// facade-level planning path is exercised in the root package tests;
	// here structural validity suffices.
	if m.FootprintBytes() <= 0 || m.TotalTrafficBytes() <= 0 {
		t.Error("degenerate linearised model")
	}
}

// TestResNet50GraphMatchesChain: the DAG-built ResNet-50 linearises into a
// model whose aggregate costs track the canonical chain builder, while its
// residual-region cuts are wider (the live skip tensor is now charged).
func TestResNet50GraphMatchesChain(t *testing.T) {
	g := NewResNet50Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	lin, err := g.Linearize()
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	chainM := MustByName(ResNet50)
	ratio := lin.TotalFLOPs() / chainM.TotalFLOPs()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("FLOPs ratio graph/chain = %.3f, want ≈ 1", ratio)
	}
	wratio := float64(lin.TotalWeightBytes()) / float64(chainM.TotalWeightBytes())
	if wratio < 0.9 || wratio > 1.1 {
		t.Errorf("weight ratio graph/chain = %.3f, want ≈ 1", wratio)
	}
	// Inside residual blocks the cut carries main path + skip: some cut
	// must exceed the largest single tensor of the chain version.
	var chainMax int64
	for _, l := range chainM.Layers {
		if l.OutputBytes > chainMax {
			chainMax = l.OutputBytes
		}
	}
	var widest int64
	for _, l := range lin.Layers {
		if l.OutputBytes > widest {
			widest = l.OutputBytes
		}
	}
	if widest <= chainMax {
		t.Errorf("widest graph cut %d not above chain max tensor %d (skip charge missing)",
			widest, chainMax)
	}
}
