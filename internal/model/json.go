package model

import (
	"encoding/json"
	"fmt"
)

// JSON interchange. Users bring their own networks by describing the layer
// chain; layers use explicit field tags so the on-disk format is stable
// against struct refactoring.

// layerJSON is the serialised form of a Layer.
type layerJSON struct {
	Name            string  `json:"name"`
	Kind            string  `json:"kind"`
	FLOPs           float64 `json:"flops"`
	InputBytes      int64   `json:"inputBytes"`
	OutputBytes     int64   `json:"outputBytes"`
	WeightBytes     int64   `json:"weightBytes"`
	WorkingSetBytes int64   `json:"workingSetBytes"`
}

// modelJSON is the serialised form of a Model.
type modelJSON struct {
	Name       string      `json:"name"`
	InputBytes int64       `json:"inputBytes"`
	Layers     []layerJSON `json:"layers"`
}

// kindByName inverts the OpKind naming for decoding.
var kindByName = func() map[string]OpKind {
	out := make(map[string]OpKind, len(opKindNames))
	for k, n := range opKindNames {
		out[n] = k
	}
	return out
}()

// MarshalJSON encodes the model in the stable interchange format.
func (m *Model) MarshalJSON() ([]byte, error) {
	doc := modelJSON{
		Name:       m.Name,
		InputBytes: m.InputBytes,
		Layers:     make([]layerJSON, len(m.Layers)),
	}
	for i, l := range m.Layers {
		doc.Layers[i] = layerJSON{
			Name:            l.Name,
			Kind:            l.Kind.String(),
			FLOPs:           l.FLOPs,
			InputBytes:      l.InputBytes,
			OutputBytes:     l.OutputBytes,
			WeightBytes:     l.WeightBytes,
			WorkingSetBytes: l.WorkingSetBytes,
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes and validates a model from the interchange format.
func (m *Model) UnmarshalJSON(data []byte) error {
	var doc modelJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("model: decode: %w", err)
	}
	decoded := Model{
		Name:       doc.Name,
		InputBytes: doc.InputBytes,
		Layers:     make([]Layer, len(doc.Layers)),
	}
	for i, l := range doc.Layers {
		kind, ok := kindByName[l.Kind]
		if !ok {
			return fmt.Errorf("model: layer %d has unknown kind %q", i, l.Kind)
		}
		decoded.Layers[i] = Layer{
			Name:            l.Name,
			Kind:            kind,
			FLOPs:           l.FLOPs,
			InputBytes:      l.InputBytes,
			OutputBytes:     l.OutputBytes,
			WeightBytes:     l.WeightBytes,
			WorkingSetBytes: l.WorkingSetBytes,
		}
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*m = decoded
	return nil
}
