package model

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		orig := MustByName(name)
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var decoded Model
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if decoded.Name != orig.Name || decoded.InputBytes != orig.InputBytes {
			t.Fatalf("%s: header mismatch", name)
		}
		if len(decoded.Layers) != len(orig.Layers) {
			t.Fatalf("%s: %d layers, want %d", name, len(decoded.Layers), len(orig.Layers))
		}
		for i := range orig.Layers {
			if decoded.Layers[i] != orig.Layers[i] {
				t.Fatalf("%s: layer %d mismatch:\n got %+v\nwant %+v",
					name, i, decoded.Layers[i], orig.Layers[i])
			}
		}
	}
}

func TestModelJSONRejectsInvalid(t *testing.T) {
	var m Model
	cases := []string{
		`{`, // malformed
		`{"name":"x","inputBytes":10,"layers":[{"name":"a","kind":"Nope","flops":1,"inputBytes":10,"outputBytes":5}]}`,
		`{"name":"x","inputBytes":10,"layers":[]}`, // no layers
		// Tensor discontinuity.
		`{"name":"x","inputBytes":10,"layers":[
			{"name":"a","kind":"Conv","flops":1,"inputBytes":10,"outputBytes":5},
			{"name":"b","kind":"Conv","flops":1,"inputBytes":7,"outputBytes":3}]}`,
	}
	for i, src := range cases {
		if err := json.Unmarshal([]byte(src), &m); err == nil {
			t.Errorf("case %d: invalid document accepted", i)
		}
	}
}

func TestModelJSONStableFieldNames(t *testing.T) {
	data, err := json.Marshal(MustByName(SqueezeNet))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, field := range []string{`"name"`, `"kind"`, `"flops"`, `"inputBytes"`, `"outputBytes"`, `"weightBytes"`, `"workingSetBytes"`} {
		if !strings.Contains(s, field) {
			t.Errorf("serialised model missing field %s", field)
		}
	}
}

func TestModelJSONCustomNetwork(t *testing.T) {
	src := `{
		"name": "TinyNet",
		"inputBytes": 1024,
		"layers": [
			{"name": "conv1", "kind": "Conv", "flops": 1e6, "inputBytes": 1024, "outputBytes": 2048, "weightBytes": 512, "workingSetBytes": 1536},
			{"name": "act1", "kind": "Activation", "flops": 1024, "inputBytes": 2048, "outputBytes": 2048},
			{"name": "fc1", "kind": "FC", "flops": 2e6, "inputBytes": 2048, "outputBytes": 100, "weightBytes": 204800, "workingSetBytes": 204800}
		]
	}`
	var m Model
	if err := json.Unmarshal([]byte(src), &m); err != nil {
		t.Fatalf("custom network rejected: %v", err)
	}
	if m.NumLayers() != 3 || m.Layers[2].Kind != OpFC {
		t.Errorf("decoded %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("decoded custom network invalid: %v", err)
	}
}
