package model

import (
	"errors"
	"fmt"
)

// Layer is one node of a network's layer chain. Hetero²Pipe partitions
// models at layer granularity (Definition 1, "Model Slicing"), so a Layer is
// the atomic unit of work the planner moves between processors.
//
// All sizes are in bytes assuming FP16 storage (the precision the paper's
// mobile deployments use); FLOPs count multiply-accumulates as two
// operations, the usual convention.
type Layer struct {
	// Name identifies the layer within its model (e.g. "conv3_2").
	Name string
	// Kind is the operator class; it drives hardware affinity and NPU
	// supportability.
	Kind OpKind
	// FLOPs is the floating-point operation count of one inference at
	// batch size 1.
	FLOPs float64
	// InputBytes is the size of the input activation tensor.
	InputBytes int64
	// OutputBytes is the size of the output activation tensor; this is the
	// amount copied between processors when a slice boundary falls after
	// this layer (the T^c term of Eq. 2).
	OutputBytes int64
	// WeightBytes is the size of the layer's parameters.
	WeightBytes int64
	// WorkingSetBytes approximates the live bytes the layer touches per
	// output tile; when it exceeds the L2 cache, the layer becomes
	// memory-bound (Observation 2).
	WorkingSetBytes int64
}

// TrafficBytes returns the total memory traffic a solo execution of the
// layer generates: inputs and weights read, outputs written. It is the
// numerator of the layer's bandwidth demand and the quantity the contention
// model works from.
func (l Layer) TrafficBytes() int64 {
	return l.InputBytes + l.WeightBytes + l.OutputBytes
}

// ArithmeticIntensity returns FLOPs per byte of memory traffic, the
// roofline-model x-axis. Low intensity (large MatMul/FC layers, Observation
// 2; SqueezeNet's small conv layers, Observation 3) means memory-bound.
func (l Layer) ArithmeticIntensity() float64 {
	t := l.TrafficBytes()
	if t == 0 {
		return 0
	}
	return l.FLOPs / float64(t)
}

// Validate reports the first structural problem with the layer, or nil.
func (l Layer) Validate() error {
	switch {
	case l.Name == "":
		return errors.New("layer has empty name")
	case !l.Kind.Valid():
		return fmt.Errorf("layer %q has invalid kind %d", l.Name, int(l.Kind))
	case l.FLOPs < 0:
		return fmt.Errorf("layer %q has negative FLOPs", l.Name)
	case l.InputBytes < 0 || l.OutputBytes < 0 || l.WeightBytes < 0 || l.WorkingSetBytes < 0:
		return fmt.Errorf("layer %q has negative byte count", l.Name)
	}
	return nil
}

// Model is an inference network represented as a linear chain of layers.
// Branchy architectures (GoogLeNet inception blocks, ResNet residuals,
// YOLOv4 routes) are serialised into their topological execution order; the
// paper's coarse-grained K-way slicing (Definition 1) treats models the same
// way, since a slice boundary is a cut of the whole dataflow at a depth.
type Model struct {
	// Name is the zoo-unique model name, e.g. "BERT".
	Name string
	// Layers is the execution-ordered layer chain.
	Layers []Layer
	// InputBytes is the network input size (one image / token sequence).
	InputBytes int64
}

// NumLayers returns the length of the layer chain.
func (m *Model) NumLayers() int { return len(m.Layers) }

// TotalFLOPs returns the per-inference FLOP count of the whole network.
func (m *Model) TotalFLOPs() float64 {
	var sum float64
	for _, l := range m.Layers {
		sum += l.FLOPs
	}
	return sum
}

// TotalWeightBytes returns the parameter size of the network — the "model
// size" the paper quotes (e.g. SqueezeNet 4.8 MB, GoogLeNet 23 MB).
func (m *Model) TotalWeightBytes() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.WeightBytes
	}
	return sum
}

// TotalTrafficBytes returns the solo memory traffic of one inference.
func (m *Model) TotalTrafficBytes() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.TrafficBytes()
	}
	return sum
}

// PeakActivationBytes returns the largest activation tensor along the chain,
// the dominant term of transient memory footprint.
func (m *Model) PeakActivationBytes() int64 {
	var peak int64
	for _, l := range m.Layers {
		if l.OutputBytes > peak {
			peak = l.OutputBytes
		}
		if l.InputBytes > peak {
			peak = l.InputBytes
		}
	}
	return peak
}

// FootprintBytes estimates the resident memory of running the model:
// weights plus double-buffered peak activations. This feeds the memory
// capacity constraint (Eq. 6) and the Fig. 9 footprint tiers.
func (m *Model) FootprintBytes() int64 {
	return m.TotalWeightBytes() + 2*m.PeakActivationBytes()
}

// SliceFootprintBytes estimates the resident memory of running only layers
// [from, to] (inclusive) of the model.
func (m *Model) SliceFootprintBytes(from, to int) int64 {
	if from < 0 || to >= len(m.Layers) || from > to {
		return 0
	}
	var weights, peak int64
	for i := from; i <= to; i++ {
		weights += m.Layers[i].WeightBytes
		if b := m.Layers[i].OutputBytes; b > peak {
			peak = b
		}
		if b := m.Layers[i].InputBytes; b > peak {
			peak = b
		}
	}
	return weights + 2*peak
}

// NPUUnsupportedLayers returns the indices of layers whose operator kind the
// NPU cannot execute. A non-empty result means NPU execution of a slice
// covering those layers must fall back (Band-style) or be avoided.
func (m *Model) NPUUnsupportedLayers() []int {
	var out []int
	for i, l := range m.Layers {
		if !l.Kind.NPUSupported() {
			out = append(out, i)
		}
	}
	return out
}

// FullyNPUSupported reports whether every layer runs on the NPU.
func (m *Model) FullyNPUSupported() bool {
	for _, l := range m.Layers {
		if !l.Kind.NPUSupported() {
			return false
		}
	}
	return true
}

// Validate checks structural consistency of the model: non-empty chain,
// valid layers, and tensor-size continuity (each layer's input matches the
// previous layer's output).
func (m *Model) Validate() error {
	if m.Name == "" {
		return errors.New("model has empty name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %q has no layers", m.Name)
	}
	if m.InputBytes <= 0 {
		return fmt.Errorf("model %q has non-positive input size", m.Name)
	}
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model %q layer %d: %w", m.Name, i, err)
		}
	}
	if m.Layers[0].InputBytes != m.InputBytes {
		return fmt.Errorf("model %q: first layer input %d != model input %d",
			m.Name, m.Layers[0].InputBytes, m.InputBytes)
	}
	for i := 1; i < len(m.Layers); i++ {
		if m.Layers[i].InputBytes != m.Layers[i-1].OutputBytes {
			return fmt.Errorf("model %q: layer %d (%s) input %d != layer %d output %d",
				m.Name, i, m.Layers[i].Name, m.Layers[i].InputBytes, i-1, m.Layers[i-1].OutputBytes)
		}
	}
	return nil
}

// Clone returns a deep copy of the model. Planner passes mutate slice
// boundaries, never layers, but callers that edit layers (e.g. batching)
// must not alias the zoo's canonical instances.
func (m *Model) Clone() *Model {
	layers := make([]Layer, len(m.Layers))
	copy(layers, m.Layers)
	return &Model{Name: m.Name, Layers: layers, InputBytes: m.InputBytes}
}

// String summarises the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s(%d layers, %.2f GFLOPs, %.1f MB weights)",
		m.Name, len(m.Layers), m.TotalFLOPs()/1e9, float64(m.TotalWeightBytes())/1e6)
}
