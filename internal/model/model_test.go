package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooModelsValidate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := MustByName(name)
			if err := m.Validate(); err != nil {
				t.Fatalf("Validate() = %v", err)
			}
		})
	}
}

func TestZooNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("zoo has %d models, want 10: %v", len(names), names)
	}
	want := map[string]bool{
		AlexNet: true, VGG16: true, GoogLeNet: true, InceptionV4: true,
		ResNet50: true, YOLOv4: true, MobileNetV2: true, SqueezeNet: true,
		BERT: true, ViT: true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected zoo model %q", n)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NoSuchNet"); err == nil {
		t.Fatal("ByName(unknown) = nil error, want error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName(unknown) did not panic")
		}
	}()
	MustByName("NoSuchNet")
}

// TestFLOPMagnitudes checks each network's total FLOPs lies in the
// right order-of-magnitude band relative to the published architecture, so
// the planner sees realistic relative compute loads.
func TestFLOPMagnitudes(t *testing.T) {
	bands := map[string][2]float64{ // [min, max] GFLOPs
		AlexNet:     {0.5, 5},
		VGG16:       {10, 40},
		GoogLeNet:   {1, 8},
		InceptionV4: {6, 40},
		ResNet50:    {2, 12},
		YOLOv4:      {25, 150},
		MobileNetV2: {0.1, 2},
		SqueezeNet:  {0.1, 3},
		BERT:        {10, 60},
		ViT:         {15, 80},
	}
	for name, band := range bands {
		g := MustByName(name).TotalFLOPs() / 1e9
		if g < band[0] || g > band[1] {
			t.Errorf("%s: %.2f GFLOPs outside [%g, %g]", name, g, band[0], band[1])
		}
	}
}

// TestWeightMagnitudes checks parameter sizes (FP16 bytes) against the
// published model sizes within generous bands.
func TestWeightMagnitudes(t *testing.T) {
	bands := map[string][2]float64{ // [min, max] MB of FP16 weights
		AlexNet:     {60, 250},
		VGG16:       {150, 400},
		GoogLeNet:   {5, 60},
		InceptionV4: {25, 200},
		ResNet50:    {25, 120},
		YOLOv4:      {60, 300},
		MobileNetV2: {2, 25},
		SqueezeNet:  {0.5, 12},
		BERT:        {150, 400},
		ViT:         {100, 300},
	}
	for name, band := range bands {
		mb := float64(MustByName(name).TotalWeightBytes()) / 1e6
		if mb < band[0] || mb > band[1] {
			t.Errorf("%s: %.1f MB weights outside [%g, %g]", name, mb, band[0], band[1])
		}
	}
}

// TestRelativeSizes pins the cross-model orderings the paper relies on.
func TestRelativeSizes(t *testing.T) {
	flops := func(n string) float64 { return MustByName(n).TotalFLOPs() }
	if !(flops(SqueezeNet) < flops(ResNet50) && flops(ResNet50) < flops(YOLOv4)) {
		t.Error("expected FLOPs(SqueezeNet) < FLOPs(ResNet50) < FLOPs(YOLOv4)")
	}
	if !(flops(MobileNetV2) < flops(VGG16)) {
		t.Error("expected FLOPs(MobileNetV2) < FLOPs(VGG16)")
	}
	// ViT is ~70× SqueezeNet in weight size (Observation 3 cites 70×).
	ratio := float64(MustByName(ViT).TotalWeightBytes()) / float64(MustByName(SqueezeNet).TotalWeightBytes())
	if ratio < 20 {
		t.Errorf("ViT/SqueezeNet weight ratio = %.1f, want ≥ 20", ratio)
	}
}

// TestNPUSupport verifies the operator-support split the paper reports:
// YOLOv4 and BERT (and ViT) contain NPU-unsupported operators, while plain
// CNN classifiers are fully supported.
func TestNPUSupport(t *testing.T) {
	unsupported := []string{YOLOv4, BERT, ViT}
	for _, name := range unsupported {
		if MustByName(name).FullyNPUSupported() {
			t.Errorf("%s: expected NPU-unsupported operators", name)
		}
	}
	supported := []string{AlexNet, VGG16, ResNet50, MobileNetV2, SqueezeNet, GoogLeNet, InceptionV4}
	for _, name := range supported {
		m := MustByName(name)
		if !m.FullyNPUSupported() {
			t.Errorf("%s: unexpected unsupported layers %v", name, m.NPUUnsupportedLayers())
		}
	}
}

func TestFCLayersAreMemoryBound(t *testing.T) {
	// Observation 2: FC layers in VGG/AlexNet have far lower arithmetic
	// intensity than conv layers.
	m := MustByName(VGG16)
	var convIntensity, fcIntensity []float64
	for _, l := range m.Layers {
		switch l.Kind {
		case OpConv:
			convIntensity = append(convIntensity, l.ArithmeticIntensity())
		case OpFC:
			fcIntensity = append(fcIntensity, l.ArithmeticIntensity())
		}
	}
	if len(convIntensity) == 0 || len(fcIntensity) == 0 {
		t.Fatal("VGG16 missing conv or fc layers")
	}
	meanConv := mean(convIntensity)
	meanFC := mean(fcIntensity)
	if meanFC*2 > meanConv {
		t.Errorf("FC intensity %.2f not well below conv intensity %.2f", meanFC, meanConv)
	}
}

func TestAttentionLayersAreMemoryBound(t *testing.T) {
	m := MustByName(BERT)
	for _, l := range m.Layers {
		if l.Kind == OpAttention && l.WorkingSetBytes < 1<<20 {
			t.Errorf("attention layer %s working set %d < 1 MiB; should exceed mobile L2",
				l.Name, l.WorkingSetBytes)
		}
	}
}

func TestTrafficBytes(t *testing.T) {
	l := Layer{Name: "x", Kind: OpConv, InputBytes: 10, OutputBytes: 20, WeightBytes: 5}
	if got := l.TrafficBytes(); got != 35 {
		t.Errorf("TrafficBytes() = %d, want 35", got)
	}
}

func TestArithmeticIntensityZeroTraffic(t *testing.T) {
	l := Layer{Name: "x", Kind: OpActivation, FLOPs: 100}
	if got := l.ArithmeticIntensity(); got != 0 {
		t.Errorf("ArithmeticIntensity() = %g, want 0 for zero traffic", got)
	}
}

func TestSliceFootprintBounds(t *testing.T) {
	m := MustByName(ResNet50)
	n := m.NumLayers()
	if got := m.SliceFootprintBytes(-1, 3); got != 0 {
		t.Errorf("SliceFootprintBytes(-1,3) = %d, want 0", got)
	}
	if got := m.SliceFootprintBytes(0, n); got != 0 {
		t.Errorf("SliceFootprintBytes(0,n) = %d, want 0", got)
	}
	if got := m.SliceFootprintBytes(5, 2); got != 0 {
		t.Errorf("SliceFootprintBytes(5,2) = %d, want 0", got)
	}
	full := m.SliceFootprintBytes(0, n-1)
	if full <= 0 {
		t.Fatalf("full slice footprint = %d, want > 0", full)
	}
}

// Property: the whole-model footprint equals the full-range slice footprint.
func TestFootprintMatchesFullSlice(t *testing.T) {
	for _, m := range All() {
		if got, want := m.SliceFootprintBytes(0, m.NumLayers()-1), m.FootprintBytes(); got != want {
			t.Errorf("%s: full slice footprint %d != FootprintBytes %d", m.Name, got, want)
		}
	}
}

// Property: slice footprints are monotone under range extension.
func TestSliceFootprintMonotone(t *testing.T) {
	m := MustByName(GoogLeNet)
	n := m.NumLayers()
	cfg := &quick.Config{MaxCount: 200}
	prop := func(a, b uint8) bool {
		from := int(a) % n
		to := from + int(b)%(n-from)
		inner := m.SliceFootprintBytes(from, to)
		outer := m.SliceFootprintBytes(from, n-1)
		if to == n-1 {
			return inner == outer
		}
		return inner <= outer+2*m.PeakActivationBytes()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := MustByName(AlexNet)
	c := m.Clone()
	c.Layers[0].FLOPs = -1
	if m.Layers[0].FLOPs == -1 {
		t.Error("Clone shares layer storage with original")
	}
}

func TestValidateCatchesDiscontinuity(t *testing.T) {
	m := MustByName(AlexNet).Clone()
	m.Layers[3].InputBytes += 4
	if err := m.Validate(); err == nil {
		t.Error("Validate() = nil for tensor-size discontinuity, want error")
	}
}

func TestValidateCatchesBadLayer(t *testing.T) {
	cases := []Layer{
		{Name: "", Kind: OpConv},
		{Name: "x", Kind: OpKind(99)},
		{Name: "x", Kind: OpConv, FLOPs: -1},
		{Name: "x", Kind: OpConv, WeightBytes: -1},
	}
	for i, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "Conv" {
		t.Errorf("OpConv.String() = %q", OpConv.String())
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Errorf("OpKind(99).String() = %q", OpKind(99).String())
	}
}

func TestTierNamesCoverZoo(t *testing.T) {
	seen := map[string]bool{}
	for _, lists := range [][]string{LightweightNames(), MediumNames(), HeavyNames()} {
		for _, n := range lists {
			if seen[n] {
				t.Errorf("model %q in multiple tiers", n)
			}
			seen[n] = true
			if _, err := ByName(n); err != nil {
				t.Errorf("tier model %q not in zoo", n)
			}
		}
	}
	if len(seen) != 9 {
		t.Errorf("tiers cover %d models, want 9 (VGG16 untiered per Fig. 9)", len(seen))
	}
}

func TestZooLayerCounts(t *testing.T) {
	// Coarse layer-count sanity: deep nets have long chains.
	minLayers := map[string]int{
		AlexNet: 10, VGG16: 18, ResNet50: 60, YOLOv4: 60,
		BERT: 80, ViT: 80, MobileNetV2: 50, SqueezeNet: 30,
		GoogLeNet: 30, InceptionV4: 50,
	}
	for name, min := range minLayers {
		if n := MustByName(name).NumLayers(); n < min {
			t.Errorf("%s: %d layers, want ≥ %d", name, n, min)
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
