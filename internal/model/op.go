// Package model defines the DNN layer intermediate representation and a zoo
// of the ten networks evaluated in the Hetero²Pipe paper: AlexNet, VGG16,
// GoogLeNet, InceptionV4, ResNet50, YOLOv4, MobileNetV2, SqueezeNet, BERT
// and ViT.
//
// The planner in internal/core never executes real kernels; it only consumes
// per-layer cost descriptors (FLOPs, activation/weight bytes, operator kind).
// The zoo synthesises those descriptors from the published architectures so
// the layer-count, FLOP distribution along the chain, and memory-boundedness
// of FC/attention layers — the properties every planning decision depends
// on — match the real networks.
package model

import "fmt"

// OpKind identifies the operator class of a layer. The class determines
// hardware affinity (e.g. NPUs accelerate convolutions but reject attention)
// and memory behaviour (large MatMuls are memory-bound, Observation 2).
type OpKind int

// Operator kinds. The set covers everything the ten zoo networks need.
const (
	OpConv OpKind = iota + 1
	OpDepthwiseConv
	OpFC
	OpMatMul
	OpAttention
	OpLayerNorm
	OpPool
	OpActivation
	OpConcat
	OpResidualAdd
	OpSoftmax
	OpEmbedding
	OpUpsample
	OpBatchNorm
)

var opKindNames = map[OpKind]string{
	OpConv:          "Conv",
	OpDepthwiseConv: "DWConv",
	OpFC:            "FC",
	OpMatMul:        "MatMul",
	OpAttention:     "Attention",
	OpLayerNorm:     "LayerNorm",
	OpPool:          "Pool",
	OpActivation:    "Activation",
	OpConcat:        "Concat",
	OpResidualAdd:   "ResidualAdd",
	OpSoftmax:       "Softmax",
	OpEmbedding:     "Embedding",
	OpUpsample:      "Upsample",
	OpBatchNorm:     "BatchNorm",
}

// String returns the human-readable operator name.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Valid reports whether k is a known operator kind.
func (k OpKind) Valid() bool {
	_, ok := opKindNames[k]
	return ok
}

// npuSupported mirrors the restricted operator coverage of mobile NPUs
// (HiAI/DaVinci in the paper): convolutional building blocks are supported,
// while transformer-era operators and YOLO-style routing force a fallback to
// the CPU/GPU (Sec. I and Fig. 1: "an error is reported due to unsupported
// operators ... for both YOLOv4 and BERT").
var npuSupported = map[OpKind]bool{
	OpConv:          true,
	OpDepthwiseConv: true,
	OpFC:            true,
	OpPool:          true,
	OpActivation:    true,
	OpConcat:        true,
	OpResidualAdd:   true,
	OpBatchNorm:     true,

	OpMatMul:    false,
	OpAttention: false,
	OpLayerNorm: false,
	OpSoftmax:   false,
	OpEmbedding: false,
	OpUpsample:  false,
}

// NPUSupported reports whether the operator kind can execute on the NPU
// without falling back to the CPU or GPU.
func (k OpKind) NPUSupported() bool {
	return npuSupported[k]
}
