package model

// NewResNet50Graph builds ResNet-50 as a true DAG: every bottleneck block's
// residual connection is an explicit edge, so Linearize charges pipeline
// cuts through a block with both the main-path tensor and the live skip
// tensor. It demonstrates the Graph construction path on a full network;
// the chain builder NewResNet50 remains the zoo's canonical instance (its
// fused serialisation is what the calibration constants were tuned on).
func NewResNet50Graph() *Graph {
	g := &Graph{Name: "ResNet50Graph", InputBytes: int64(224*224*3) * bytesPerElem}
	last := -1 // index of the most recent node; -1 = network input

	add := func(l Layer, inputs ...int) int {
		g.Nodes = append(g.Nodes, GraphNode{Layer: l, Inputs: inputs})
		return len(g.Nodes) - 1
	}
	// conv emits a conv node consuming `from` with the given geometry.
	h, w, c := 224, 224, 3
	conv := func(from int, outC, k, s int) int {
		inBytes := int64(h*w*c) * bytesPerElem
		outH, outW := (h+s-1)/s, (w+s-1)/s
		flops := 2 * float64(k*k*c*outC) * float64(outH*outW)
		weights := int64(k*k*c*outC) * bytesPerElem
		ws := weights + int64(k*w*c)*bytesPerElem
		h, w, c = outH, outW, outC
		l := Layer{
			Name: "conv", Kind: OpConv, FLOPs: flops,
			InputBytes: inBytes, OutputBytes: int64(h*w*c) * bytesPerElem,
			WeightBytes: weights, WorkingSetBytes: ws,
		}
		if from < 0 {
			return add(l)
		}
		return add(l, from)
	}
	act := func(from int) int {
		bytes := int64(h*w*c) * bytesPerElem
		return add(Layer{Name: "act", Kind: OpActivation, FLOPs: float64(h * w * c),
			InputBytes: bytes, OutputBytes: bytes, WorkingSetBytes: bytes}, from)
	}
	pool := func(from int, k, s int) int {
		inBytes := int64(h*w*c) * bytesPerElem
		h, w = (h+s-1)/s, (w+s-1)/s
		return add(Layer{Name: "pool", Kind: OpPool, FLOPs: float64(k * k * h * w * c),
			InputBytes: inBytes, OutputBytes: int64(h*w*c) * bytesPerElem,
			WorkingSetBytes: int64(k*w*c) * bytesPerElem}, from)
	}

	// Stem.
	last = conv(last, 64, 7, 2)
	last = act(last)
	last = pool(last, 3, 2)

	// bottleneck adds a block whose residual edge skips the main path.
	bottleneck := func(mid, out, stride int) {
		entry := last
		entryH, entryW, entryC := h, w, c
		n := conv(entry, mid, 1, 1)
		n = act(n)
		n = conv(n, mid, 3, stride)
		n = act(n)
		n = conv(n, out, 1, 1)
		// Residual join consumes the main path AND the block entry —
		// the explicit skip edge.
		joinBytes := int64(h*w*c) * bytesPerElem
		entryBytes := int64(entryH*entryW*entryC) * bytesPerElem
		last = add(Layer{Name: "add", Kind: OpResidualAdd, FLOPs: float64(h * w * c),
			InputBytes: joinBytes + entryBytes, OutputBytes: joinBytes,
			WorkingSetBytes: 2 * joinBytes}, n, entry)
		last = act(last)
	}
	stage := func(blocks, mid, out, stride int) {
		bottleneck(mid, out, stride)
		for i := 1; i < blocks; i++ {
			bottleneck(mid, out, 1)
		}
	}
	stage(3, 64, 256, 1)
	stage(4, 128, 512, 2)
	stage(6, 256, 1024, 2)
	stage(3, 512, 2048, 2)

	// Head.
	gapBytes := int64(h*w*c) * bytesPerElem
	last = add(Layer{Name: "gap", Kind: OpPool, FLOPs: float64(h * w * c),
		InputBytes: gapBytes, OutputBytes: int64(c) * bytesPerElem,
		WorkingSetBytes: gapBytes}, last)
	h, w = 1, 1
	fcIn := c
	last = add(Layer{Name: "fc", Kind: OpFC, FLOPs: 2 * float64(fcIn) * 1000,
		InputBytes: int64(fcIn) * bytesPerElem, OutputBytes: 1000 * bytesPerElem,
		WeightBytes: int64(fcIn*1000) * bytesPerElem, WorkingSetBytes: int64(fcIn*1000) * bytesPerElem}, last)
	return g
}
