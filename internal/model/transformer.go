package model

// Transformer members of the zoo. Both carry the 768-wide multi-head
// attention and 768×3072 FFN MatMuls that Observation 2 identifies as
// memory-bound on mobile CPUs, and both contain operator kinds
// (Attention/LayerNorm/Softmax/Embedding) that mobile NPUs reject, forcing
// the CPU/GPU fallback path.

// BERT/ViT hyperparameters (base configurations).
const (
	bertSeqLen   = 128
	bertDim      = 768
	bertFFN      = 3072
	bertVocab    = 30522
	bertBlocks   = 12
	vitSeqLen    = 197 // 14×14 patches + CLS token
	vitDim       = 768
	vitFFN       = 3072
	vitBlocks    = 12
	vitPatch     = 16
	vitImageSize = 224
)

// encoderBlock appends one pre-norm transformer encoder block:
// LN → MHSA → residual → LN → FFN(up, act, down) → residual.
func encoderBlock(b *chain, seqLen, dim, ffn int) {
	b.layerNorm(dim)
	b.attention(seqLen, dim)
	b.residual()
	b.layerNorm(dim)
	b.matmul(seqLen, dim, ffn)
	b.act()
	b.matmul(seqLen, ffn, dim)
	b.residual()
}

// NewBERT builds BERT-base for a 128-token sequence: embedding, 12 encoder
// blocks, pooler. ~22 GFLOPs per inference, ~110 M parameters.
func NewBERT() *Model {
	b := newTokenChain("BERT", bertSeqLen, bertDim)
	b.embedding(bertVocab, bertSeqLen, bertDim)
	for i := 0; i < bertBlocks; i++ {
		encoderBlock(b, bertSeqLen, bertDim, bertFFN)
	}
	b.layerNorm(bertDim)
	b.matmul(bertSeqLen, bertDim, bertDim) // pooler
	b.softmax()
	return b.build()
}

// NewViT builds ViT-Base/16 for 224×224 images: patch embedding, 12 encoder
// blocks, classification head. ~35 GFLOPs per inference, ~86 M parameters.
func NewViT() *Model {
	b := newTokenChain("ViT", vitSeqLen, vitDim)
	// Patch embedding: a 16×16-stride conv re-expressed as a token
	// projection (196 patches × 768), plus the CLS token.
	patchIn := vitPatch * vitPatch * 3
	b.elems = (vitImageSize / vitPatch) * (vitImageSize / vitPatch) * patchIn
	b.matmul((vitImageSize/vitPatch)*(vitImageSize/vitPatch), patchIn, vitDim)
	b.concat(0) // CLS token join: keep element count explicit below.
	b.elems = vitSeqLen * vitDim
	b.layers[len(b.layers)-1].OutputBytes = b.curBytes()
	for i := 0; i < vitBlocks; i++ {
		encoderBlock(b, vitSeqLen, vitDim, vitFFN)
	}
	b.layerNorm(vitDim)
	b.matmul(1, vitDim, 1000) // classification head on CLS token
	return b.build()
}
