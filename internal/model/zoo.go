package model

import (
	"fmt"
	"sort"
)

// Canonical zoo model names. The ten networks match Sec. VI-A of the paper.
const (
	AlexNet     = "AlexNet"
	VGG16       = "VGG16"
	GoogLeNet   = "GoogLeNet"
	InceptionV4 = "InceptionV4"
	ResNet50    = "ResNet50"
	YOLOv4      = "YOLOv4"
	MobileNetV2 = "MobileNetV2"
	SqueezeNet  = "SqueezeNet"
	BERT        = "BERT"
	ViT         = "ViT"
)

var zooBuilders = map[string]func() *Model{
	AlexNet:     NewAlexNet,
	VGG16:       NewVGG16,
	GoogLeNet:   NewGoogLeNet,
	InceptionV4: NewInceptionV4,
	ResNet50:    NewResNet50,
	YOLOv4:      NewYOLOv4,
	MobileNetV2: NewMobileNetV2,
	SqueezeNet:  NewSqueezeNet,
	BERT:        NewBERT,
	ViT:         NewViT,
}

// Names returns the zoo model names in deterministic (sorted) order.
func Names() []string {
	names := make([]string, 0, len(zooBuilders))
	for name := range zooBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName constructs a fresh instance of the named model, covering both the
// ten-network evaluation zoo and the extra application networks
// (ExtraNames).
func ByName(name string) (*Model, error) {
	if build, ok := zooBuilders[name]; ok {
		return build(), nil
	}
	if build, ok := extraBuilders[name]; ok {
		return build(), nil
	}
	return nil, fmt.Errorf("model: unknown zoo model %q", name)
}

// MustByName is ByName for static names; it panics on unknown names and is
// intended for tests and examples where the name is a compile-time constant.
func MustByName(name string) *Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Zoo constructs one instance of every zoo model, keyed by name.
func Zoo() map[string]*Model {
	out := make(map[string]*Model, len(zooBuilders))
	for name, build := range zooBuilders {
		out[name] = build()
	}
	return out
}

// All constructs every zoo model in deterministic name order.
func All() []*Model {
	names := Names()
	out := make([]*Model, 0, len(names))
	for _, name := range names {
		out = append(out, zooBuilders[name]())
	}
	return out
}

// LightweightNames returns the models the paper's Fig. 9 classifies as
// lightweight (<100 MB footprint): SqueezeNet, MobileNetV2, GoogLeNet.
func LightweightNames() []string {
	return []string{GoogLeNet, MobileNetV2, SqueezeNet}
}

// MediumNames returns the 100–300 MB tier: InceptionV4, ResNet50, AlexNet.
func MediumNames() []string {
	return []string{AlexNet, InceptionV4, ResNet50}
}

// HeavyNames returns the >300 MB tier: BERT, ViT, YOLOv4.
func HeavyNames() []string {
	return []string{BERT, ViT, YOLOv4}
}
