package model

import (
	"fmt"
	"sort"
	"sync"
)

// Canonical zoo model names. The ten networks match Sec. VI-A of the paper.
const (
	AlexNet     = "AlexNet"
	VGG16       = "VGG16"
	GoogLeNet   = "GoogLeNet"
	InceptionV4 = "InceptionV4"
	ResNet50    = "ResNet50"
	YOLOv4      = "YOLOv4"
	MobileNetV2 = "MobileNetV2"
	SqueezeNet  = "SqueezeNet"
	BERT        = "BERT"
	ViT         = "ViT"
)

var zooBuilders = map[string]func() *Model{
	AlexNet:     NewAlexNet,
	VGG16:       NewVGG16,
	GoogLeNet:   NewGoogLeNet,
	InceptionV4: NewInceptionV4,
	ResNet50:    NewResNet50,
	YOLOv4:      NewYOLOv4,
	MobileNetV2: NewMobileNetV2,
	SqueezeNet:  NewSqueezeNet,
	BERT:        NewBERT,
	ViT:         NewViT,
}

// The zoo is built once and served as shared instances: constructing a
// network is hundreds of layer appends, and hot callers (experiments,
// planners, workload sweeps) look models up by name far more often than
// anyone mutates one. Nothing in the repo writes to a looked-up model —
// mutation goes through Clone (as Batched does) — so sharing is safe; the
// cache is guarded by a Once so concurrent first lookups build it exactly
// once.
var (
	zooOnce  sync.Once
	zooCache map[string]*Model
)

func cachedZoo() map[string]*Model {
	zooOnce.Do(func() {
		zooCache = make(map[string]*Model, len(zooBuilders)+len(extraBuilders))
		for name, build := range zooBuilders {
			zooCache[name] = build()
		}
		for name, build := range extraBuilders {
			zooCache[name] = build()
		}
	})
	return zooCache
}

// Names returns the zoo model names in deterministic (sorted) order.
func Names() []string {
	names := make([]string, 0, len(zooBuilders))
	for name := range zooBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName returns the shared instance of the named model, covering both the
// ten-network evaluation zoo and the extra application networks
// (ExtraNames). The instance is cached and must be treated as immutable;
// callers that need to modify a model must Clone it first.
func ByName(name string) (*Model, error) {
	if m, ok := cachedZoo()[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("model: unknown zoo model %q", name)
}

// MustByName is ByName for static names; it panics on unknown names and is
// intended for tests and examples where the name is a compile-time constant.
func MustByName(name string) *Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Zoo returns one shared (immutable) instance of every zoo model, keyed by
// name. The map itself is fresh and safe for the caller to modify.
func Zoo() map[string]*Model {
	cache := cachedZoo()
	out := make(map[string]*Model, len(zooBuilders))
	for name := range zooBuilders {
		out[name] = cache[name]
	}
	return out
}

// All returns the shared (immutable) instance of every zoo model in
// deterministic name order.
func All() []*Model {
	cache := cachedZoo()
	names := Names()
	out := make([]*Model, 0, len(names))
	for _, name := range names {
		out = append(out, cache[name])
	}
	return out
}

// LightweightNames returns the models the paper's Fig. 9 classifies as
// lightweight (<100 MB footprint): SqueezeNet, MobileNetV2, GoogLeNet.
func LightweightNames() []string {
	return []string{GoogLeNet, MobileNetV2, SqueezeNet}
}

// MediumNames returns the 100–300 MB tier: InceptionV4, ResNet50, AlexNet.
func MediumNames() []string {
	return []string{AlexNet, InceptionV4, ResNet50}
}

// HeavyNames returns the >300 MB tier: BERT, ViT, YOLOv4.
func HeavyNames() []string {
	return []string{BERT, ViT, YOLOv4}
}
