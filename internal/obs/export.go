package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot of the registry in the Prometheus text
// exposition format. Metric names are prefixed with the registry name and
// sanitised to [a-zA-Z0-9_]. Series registered through labeled views
// (Registry.WithLabels) keep their label block: `name{device="dev0"}`
// renders as the same series under the sanitised base name, and one TYPE
// line covers every label permutation of a base name. Histograms are
// rendered as cumulative _bucket{le="..."} series plus _sum and _count,
// matching the native Prometheus histogram type; a labeled histogram's
// block merges ahead of the le label.
func WritePrometheus(w io.Writer, r *Registry) error {
	s := r.Snapshot()
	prefix := sanitize(s.Name)
	if prefix != "" {
		prefix += "_"
	}
	typed := make(map[string]bool)
	typeLine := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitSeries(name)
		full := prefix + sanitize(base)
		if err := typeLine(full, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", full, labelBlock(labels), s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitSeries(name)
		full := prefix + sanitize(base)
		if err := typeLine(full, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", full, labelBlock(labels), formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitSeries(name)
		full := prefix + sanitize(base)
		h := s.Histograms[name]
		if err := typeLine(full, "histogram"); err != nil {
			return err
		}
		le := func(bound string) string {
			if labels == "" {
				return `{le="` + bound + `"}`
			}
			return "{" + labels + `,le="` + bound + `"}`
		}
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", full, le(escapeLabel(formatFloat(bound))), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", full, le("+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			full, labelBlock(labels), formatFloat(h.Sum), full, labelBlock(labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// splitSeries separates a snapshot key into its base instrument name and the
// label block a WithLabels view decorated it with ("" when unlabeled).
func splitSeries(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// labelBlock re-wraps a split label set for emission ("" stays empty).
func labelBlock(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// PublishExpvar publishes the registry as a single expvar variable named
// after the registry; the value is the JSON-encoded live Snapshot. Because
// expvar panics on duplicate names, publishing the same registry name twice
// returns an error instead.
func PublishExpvar(r *Registry) error {
	if r == nil {
		return fmt.Errorf("obs: cannot publish nil registry")
	}
	name := "h2pipe:" + r.name
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any {
		return r.Snapshot()
	}))
	return nil
}

// MarshalSnapshot renders a snapshot as indented JSON (the expvar payload
// shape, useful for debugging dumps).
func MarshalSnapshot(s Snapshot) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Order by (base, labels) rather than raw key so every label
	// permutation of one base name stays contiguous in the exposition —
	// '{' sorts above letters, which would otherwise let an unrelated base
	// slot between a series and its labeled variants.
	sort.Slice(keys, func(i, j int) bool {
		bi, li := splitSeries(keys[i])
		bj, lj := splitSeries(keys[j])
		if bi != bj {
			return bi < bj
		}
		return li < lj
	})
	return keys
}

func sanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		case c == ':': // expvar-style namespacing maps to _
			out[i] = '_'
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline — and only those, unlike Go's
// %q which also escapes non-ASCII runes the format permits verbatim.
func escapeLabel(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
