package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders a snapshot of the registry in the Prometheus text
// exposition format. Metric names are prefixed with the registry name and
// sanitised to [a-zA-Z0-9_]. Histograms are rendered as cumulative
// _bucket{le="..."} series plus _sum and _count, matching the native
// Prometheus histogram type.
func WritePrometheus(w io.Writer, r *Registry) error {
	s := r.Snapshot()
	prefix := sanitize(s.Name)
	if prefix != "" {
		prefix += "_"
	}

	for _, name := range sortedKeys(s.Counters) {
		full := prefix + sanitize(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", full, full, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		full := prefix + sanitize(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", full, full, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		full := prefix + sanitize(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", full); err != nil {
			return err
		}
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", full, escapeLabel(formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", full, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", full, formatFloat(h.Sum), full, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// PublishExpvar publishes the registry as a single expvar variable named
// after the registry; the value is the JSON-encoded live Snapshot. Because
// expvar panics on duplicate names, publishing the same registry name twice
// returns an error instead.
func PublishExpvar(r *Registry) error {
	if r == nil {
		return fmt.Errorf("obs: cannot publish nil registry")
	}
	name := "h2pipe:" + r.name
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any {
		return r.Snapshot()
	}))
	return nil
}

// MarshalSnapshot renders a snapshot as indented JSON (the expvar payload
// shape, useful for debugging dumps).
func MarshalSnapshot(s Snapshot) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		case c == ':': // expvar-style namespacing maps to _
			out[i] = '_'
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline — and only those, unlike Go's
// %q which also escapes non-ASCII runes the format permits verbatim.
func escapeLabel(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
