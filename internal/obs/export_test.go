package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestObsGaugeMaxConcurrent hammers Gauge.Max from many goroutines under
// the race detector: the CAS loop must converge on the global maximum and
// never lose a larger value to a smaller late writer.
func TestObsGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	const workers, each = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Every worker submits a distinct interleaved sequence; the
				// global maximum across all of them is workers*each.
				g.Max(float64(i*workers + w + 1))
			}
		}(w)
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*each); got != want {
		t.Errorf("concurrent Max converged on %v, want %v", got, want)
	}
	// A smaller value afterwards must not lower it.
	g.Max(1)
	if got := g.Value(); got != float64(workers*each) {
		t.Errorf("Max(1) lowered the gauge to %v", got)
	}
}

func snapshotHist(bounds []float64, values ...float64) HistogramSnapshot {
	r := NewRegistry("q")
	h := r.Histogram("h", bounds)
	for _, v := range values {
		h.Observe(v)
	}
	return r.Snapshot().Histograms["h"]
}

// TestObsQuantileUniform pins the interpolation on a uniform distribution:
// 100 observations spread evenly over [0,100) with bounds every 10 — the
// q-quantile must land at 100q exactly.
func TestObsQuantileUniform(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	var values []float64
	for i := 0; i < 100; i++ {
		values = append(values, float64(i)+0.5)
	}
	h := snapshotHist(bounds, values...)
	for _, c := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.10, 10}, {1, 100},
	} {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("uniform q=%.2f: got %v, want %v", c.q, got, c.want)
		}
	}
}

// TestObsQuantilePointMass pins the estimator on a distribution
// concentrated in one bucket: every quantile interpolates inside that
// bucket's edges.
func TestObsQuantilePointMass(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	// 10 observations, all in the (2,4] bucket.
	var values []float64
	for i := 0; i < 10; i++ {
		values = append(values, 3)
	}
	h := snapshotHist(bounds, values...)
	// rank = 10q, bucket holds all 10 from lower edge 2 to upper 4:
	// quantile = 2 + 2q.
	for _, c := range []struct{ q, want float64 }{
		{0.5, 3}, {0.25, 2.5}, {1, 4},
	} {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("point-mass q=%.2f: got %v, want %v", c.q, got, c.want)
		}
	}
}

// TestObsQuantileInfClamp pins the +Inf bucket behaviour: ranks beyond the
// last finite bound clamp to it instead of extrapolating.
func TestObsQuantileInfClamp(t *testing.T) {
	h := snapshotHist([]float64{1, 2}, 0.5, 1.5, 100, 200, 300)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("q=0.99 with most mass past the last bound: got %v, want the clamp 2", got)
	}
}

// TestObsQuantileEdgeCases covers the degenerate inputs: empty histograms
// report zero, and out-of-range q clamps to [0,1].
func TestObsQuantileEdgeCases(t *testing.T) {
	empty := snapshotHist([]float64{1, 2})
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile %v, want 0", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("zero-value snapshot quantile %v, want 0", got)
	}
	h := snapshotHist([]float64{10}, 5, 5, 5, 5)
	if lo, hi := h.Quantile(-3), h.Quantile(7); lo != h.Quantile(0) || hi != h.Quantile(1) {
		t.Errorf("q outside [0,1] did not clamp: q=-3→%v q=7→%v", lo, hi)
	}
	qs := h.Quantiles(0.5, 0.95)
	if len(qs) != 2 || qs[0] != h.Quantile(0.5) || qs[1] != h.Quantile(0.95) {
		t.Errorf("Quantiles batch %v disagrees with Quantile", qs)
	}
}

// populate fills a registry with a representative mix of metric kinds.
func populate(r *Registry) {
	r.Counter("windows_total").Add(7)
	r.Counter("replans_total").Inc()
	r.Gauge("inflight").Set(3.25)
	r.Gauge("peak_slowdown").Max(1.75)
	h := r.Histogram("sojourn_seconds", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.02, 0.05, 0.5, 2.5} {
		h.Observe(v)
	}
}

// TestObsPrometheusDeterministic pins that serialization is a pure function
// of the metric state: two registries built identically render byte-identical
// text, and rendering the same registry twice is stable. Map iteration order
// must never leak into the output (Prometheus scrapers diff text between
// scrapes).
func TestObsPrometheusDeterministic(t *testing.T) {
	r1 := NewRegistry("det")
	r2 := NewRegistry("det")
	populate(r1)
	populate(r2)

	render := func(r *Registry) []byte {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(r1), render(r2)
	if !bytes.Equal(a, b) {
		t.Errorf("identical registries render differently:\n%s\n----\n%s", a, b)
	}
	if again := render(r1); !bytes.Equal(a, again) {
		t.Errorf("re-rendering the same registry changed the output:\n%s\n----\n%s", a, again)
	}
	for _, series := range []string{
		"det_windows_total 7",
		"det_inflight 3.25",
		`det_sojourn_seconds_bucket{le="+Inf"} 5`,
		"det_sojourn_seconds_count 5",
	} {
		if !bytes.Contains(a, []byte(series)) {
			t.Errorf("output lacks %q:\n%s", series, a)
		}
	}
}

// TestObsEscapeLabel pins the Prometheus label escaping rules: exactly
// backslash, double quote and newline are escaped; everything else —
// including non-ASCII — passes through verbatim.
func TestObsEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"", ""},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"µ-non-ascii™", "µ-non-ascii™"}, // permitted verbatim, unlike %q
		{"\\\"\n", `\\\"\n`},             // all three, adjacent
		{"a\\b\"c\nd", `a\\b\"c\nd`},     // interleaved
		{"tab\tand\rcr", "tab\tand\rcr"}, // not in the escape set
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The escaping shows up in rendered bucket labels via formatFloat — a
	// float never needs escaping, so the le label must be the plain digits.
	r := NewRegistry("esc")
	r.Histogram("h", []float64{0.5}).Observe(0.1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_h_bucket{le="0.5"} 1`) {
		t.Errorf("bucket label not rendered plainly:\n%s", buf.String())
	}
}
