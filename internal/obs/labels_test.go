package obs

import (
	"strings"
	"testing"
)

// TestObsWithLabelsSharedStore: labeled views must key their series apart
// while writing into one shared instrument store.
func TestObsWithLabelsSharedStore(t *testing.T) {
	reg := NewRegistry("h2pipe")
	v0 := reg.WithLabels("device", "dev0")
	v1 := reg.WithLabels("device", "dev1")

	reg.Counter("stream_windows_total").Add(1)
	v0.Counter("stream_windows_total").Add(2)
	v1.Counter("stream_windows_total").Add(3)
	v0.Gauge("fleet_devices").Set(4)
	v0.Histogram("stream_sojourn_seconds", LatencyBuckets()).Observe(0.5)

	snap := reg.Snapshot()
	if got := snap.Counters["stream_windows_total"]; got != 1 {
		t.Errorf("unlabeled series = %d, want 1", got)
	}
	if got := snap.Counters[`stream_windows_total{device="dev0"}`]; got != 2 {
		t.Errorf(`dev0 series = %d, want 2`, got)
	}
	if got := snap.Counters[`stream_windows_total{device="dev1"}`]; got != 3 {
		t.Errorf(`dev1 series = %d, want 3`, got)
	}
	if got := snap.Gauges[SeriesName("fleet_devices", "device", "dev0")]; got != 4 {
		t.Errorf("labeled gauge = %v, want 4", got)
	}
	if h, ok := snap.Histograms[SeriesName("stream_sojourn_seconds", "device", "dev0")]; !ok || h.Count != 1 {
		t.Errorf("labeled histogram missing or miscounted: %+v", h)
	}

	// Same view twice → same instrument; different view → different one.
	if reg.WithLabels("device", "dev0").Counter("stream_windows_total") != v0.Counter("stream_windows_total") {
		t.Error("equivalent labeled views returned distinct counters")
	}
	if v0.Counter("stream_windows_total") == v1.Counter("stream_windows_total") {
		t.Error("distinct labeled views share one counter")
	}
}

// TestObsWithLabelsEdgeCases pins the defensive behavior: nil receivers stay
// nil, odd kv lists are rejected, label values are escaped, views stack.
func TestObsWithLabelsEdgeCases(t *testing.T) {
	var nilReg *Registry
	if nilReg.WithLabels("device", "dev0") != nil {
		t.Error("nil registry did not stay nil through WithLabels")
	}
	nilReg.WithLabels("device", "dev0").Counter("x").Inc() // must not panic

	reg := NewRegistry("h2pipe")
	if got := reg.WithLabels("odd"); got != reg {
		t.Error("odd-length kv list did not return the receiver unchanged")
	}
	if got := reg.WithLabels(); got != reg {
		t.Error("empty kv list did not return the receiver unchanged")
	}

	stacked := reg.WithLabels("device", "dev0").WithLabels("shard", "a")
	if got, want := stacked.Labels(), `device="dev0",shard="a"`; got != want {
		t.Errorf("stacked labels = %q, want %q", got, want)
	}
	if got, want := SeriesName("m", "k", `ev"il\`), `m{k="ev\"il\\"}`; got != want {
		t.Errorf("escaped series name = %q, want %q", got, want)
	}
	if got, want := SeriesName("m"), "m"; got != want {
		t.Errorf("label-less SeriesName = %q, want %q", got, want)
	}
}

// TestObsPrometheusLabeled pins the labeled exposition: one TYPE line per
// base name, contiguous label permutations, label blocks merged ahead of a
// histogram's le label.
func TestObsPrometheusLabeled(t *testing.T) {
	reg := NewRegistry("h2pipe")
	reg.Counter("stream_windows_total").Add(1)
	reg.WithLabels("device", "dev0").Counter("stream_windows_total").Add(2)
	reg.WithLabels("device", "dev1").Counter("stream_windows_total").Add(3)
	reg.WithLabels("device", "dev0").Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE h2pipe_stream_windows_total counter"); got != 1 {
		t.Errorf("TYPE lines for the counter base = %d, want 1\n%s", got, out)
	}
	for _, line := range []string{
		"h2pipe_stream_windows_total 1",
		`h2pipe_stream_windows_total{device="dev0"} 2`,
		`h2pipe_stream_windows_total{device="dev1"} 3`,
		`h2pipe_lat_seconds_bucket{device="dev0",le="0.1"} 1`,
		`h2pipe_lat_seconds_bucket{device="dev0",le="+Inf"} 1`,
		`h2pipe_lat_seconds_sum{device="dev0"} 0.05`,
		`h2pipe_lat_seconds_count{device="dev0"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q\n%s", line, out)
		}
	}
	// The three series of the base name must be contiguous (TYPE line, then
	// unlabeled, then both labeled variants).
	idx := strings.Index(out, "# TYPE h2pipe_stream_windows_total counter")
	block := out[idx:]
	if end := strings.Index(block[1:], "# TYPE"); end >= 0 {
		block = block[:end+1]
	}
	if strings.Count(block, "h2pipe_stream_windows_total") != 4 { // TYPE + 3 series
		t.Errorf("label permutations not contiguous under one TYPE block:\n%s", out)
	}
}
