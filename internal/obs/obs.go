// Package obs is a dependency-free metrics subsystem for the Hetero2Pipe
// runtime. It provides atomic counters, gauges and fixed-bucket histograms
// behind a named registry. All instruments are safe for concurrent use and
// can be snapshotted without stopping the world: writers never take the
// registry lock on the hot path, and Snapshot only takes a read lock on the
// instrument maps while reading values with atomic loads.
//
// Every accessor is nil-receiver-safe: a nil *Registry hands out detached
// instruments that accept writes and read back zero, so instrumented code
// never needs to guard call sites with nil checks.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of metric instruments. Instruments are
// created lazily on first access and shared by name afterwards.
//
// A registry may carry a label set (WithLabels): labeled views share their
// parent's instrument store but register instruments under decorated
// `name{key="value"}` series keys, the scheme the fleet layer uses to give
// every device its own series in one shared registry.
type Registry struct {
	name string
	// labels is the preformatted label block (`device="dev0"`), empty for
	// the root view. Series keys are name + "{" + labels + "}".
	labels string
	store  *registryStore
}

// registryStore is the instrument state shared by a registry and every
// labeled view derived from it.
type registryStore struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry. The name prefixes every metric in
// the Prometheus and expvar exports (e.g. "h2pipe_planner_plans_total").
func NewRegistry(name string) *Registry {
	return &Registry{
		name: name,
		store: &registryStore{
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		},
	}
}

// Name reports the registry name ("" for a nil registry).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// WithLabels returns a view of the registry whose instruments live under
// `name{key="value",...}` series keys. The view shares the parent's
// instrument store — Snapshot and the exporters see every view's series —
// so N concurrent views hammer one lock-free store, not N silos. Pairs
// append to any labels the receiver already carries; an odd-length kv list
// is rejected by returning the receiver unchanged. A nil registry stays
// nil (detached instruments all the way down).
func (r *Registry) WithLabels(kv ...string) *Registry {
	if r == nil || len(kv) == 0 || len(kv)%2 != 0 {
		return r
	}
	var b strings.Builder
	b.WriteString(r.labels)
	for i := 0; i < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return &Registry{name: r.name, labels: b.String(), store: r.store}
}

// Labels reports the view's preformatted label block ("" for the root view
// or a nil registry).
func (r *Registry) Labels() string {
	if r == nil {
		return ""
	}
	return r.labels
}

// SeriesName decorates an instrument name with a label block the way
// WithLabels views key their instruments: `name{key="value"}`. Use it to
// look labeled series up in a Snapshot.
func SeriesName(name string, kv ...string) string {
	v := (&Registry{}).WithLabels(kv...)
	return v.key(name)
}

// key returns the series key name registers under in this view.
func (r *Registry) key(name string) string {
	if r.labels == "" {
		return name
	}
	return name + "{" + r.labels + "}"
}

// Counter returns the counter registered under name, creating it if needed.
// A nil registry returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	name = r.key(name)
	st := r.store
	st.mu.RLock()
	c, ok := st.counters[name]
	st.mu.RUnlock()
	if ok {
		return c
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok = st.counters[name]; ok {
		return c
	}
	c = &Counter{}
	st.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// A nil registry returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	name = r.key(name)
	st := r.store
	st.mu.RLock()
	g, ok := st.gauges[name]
	st.mu.RUnlock()
	if ok {
		return g
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if g, ok = st.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	st.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed. Bounds must be sorted ascending;
// an implicit +Inf bucket is always appended. If the histogram already
// exists the bounds argument is ignored. A nil registry returns a detached
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	name = r.key(name)
	st := r.store
	st.mu.RLock()
	h, ok := st.hists[name]
	st.mu.RUnlock()
	if ok {
		return h
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if h, ok = st.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	st.hists[name] = h
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can move in either direction.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max raises the value to v if v is larger (CAS loop).
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. The bucket layout is
// immutable after creation, so Observe is a single atomic add plus a binary
// search — no locks. Each bucket additionally retains the most recent
// exemplar observed into it (an atomic pointer swap), linking a fat tail
// bucket to a concrete request trace.
type Histogram struct {
	bounds    []float64 // sorted upper bounds; counts has len(bounds)+1 slots
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // aligned with counts
	sumBits   atomic.Uint64              // float64 bits of the running sum
	count     atomic.Uint64
}

// Exemplar links one histogram bucket to a concrete observation: the trace
// ID of the request that produced it and the observed value. Buckets keep
// the most recent exemplar, so a hot p99 bucket always names a current
// offender.
type Exemplar struct {
	Trace string  `json:"trace"`
	Value float64 `json:"value"`
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and stamps its bucket's exemplar with
// the given trace ID (an empty trace degrades to a plain Observe).
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if trace != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&Exemplar{Trace: trace, Value: v})
	}
	h.Observe(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationExemplar records d in seconds with a trace-ID exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, trace string) {
	h.ObserveExemplar(d.Seconds(), trace)
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets is a default exponential layout for latencies in seconds,
// spanning 100µs to 10s.
func LatencyBuckets() []float64 {
	return []float64{
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
		2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
	}
}

// SlowdownBuckets is a default layout for co-execution slowdown factors
// (dimensionless, ≥ 1 for slowdown, per the paper's ψ).
func SlowdownBuckets() []float64 {
	return []float64{1.0, 1.1, 1.25, 1.5, 1.75, 2, 2.5, 3, 4, 5, 7.5, 10}
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Name       string                       `json:"name"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the frozen state of one histogram. Buckets are
// per-bucket (non-cumulative) counts aligned with Bounds; the final slot
// counts observations above the last bound (+Inf). Exemplars, when any were
// recorded (ObserveExemplar), is aligned with Buckets: each slot holds that
// bucket's most recent trace-linked observation or nil. The Prometheus
// export deliberately omits exemplars to keep its byte output stable;
// they surface through this JSON snapshot (/vars) instead.
type HistogramSnapshot struct {
	Bounds    []float64   `json:"bounds"`
	Buckets   []uint64    `json:"buckets"`
	Count     uint64      `json:"count"`
	Sum       float64     `json:"sum"`
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Snapshot copies the current value of every instrument — including every
// labeled view's series, keyed by their decorated names. It holds the
// store read lock only while walking the instrument maps; values are
// read with atomic loads, so concurrent writers are never blocked.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	st := r.store
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := Snapshot{Name: r.name}
	if len(st.counters) > 0 {
		s.Counters = make(map[string]uint64, len(st.counters))
		for name, c := range st.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(st.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(st.gauges))
		for name, g := range st.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(st.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(st.hists))
		for name, h := range st.hists {
			hs := HistogramSnapshot{
				Bounds:  append([]float64(nil), h.bounds...),
				Buckets: make([]uint64, len(h.counts)),
				Count:   h.Count(),
				Sum:     h.Sum(),
			}
			for i := range h.counts {
				hs.Buckets[i] = h.counts[i].Load()
			}
			// Materialise the exemplar column only when at least one bucket
			// carries one, keeping exemplar-free snapshots byte-identical to
			// the pre-exemplar JSON.
			for i := range h.exemplars {
				if e := h.exemplars[i].Load(); e != nil {
					if hs.Exemplars == nil {
						hs.Exemplars = make([]*Exemplar, len(h.counts))
					}
					hs.Exemplars[i] = e
				}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}
