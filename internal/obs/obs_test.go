package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("mem")
	g.Set(10)
	g.Add(2.5)
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
	g.Max(11) // lower: no-op
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge after Max(11) = %v, want 12.5", got)
	}
	g.Max(20)
	if got := g.Value(); got != 20 {
		t.Fatalf("gauge after Max(20) = %v, want 20", got)
	}
}

func TestObsHistogramBuckets(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); math.Abs(got-102.565) > 1e-9 {
		t.Fatalf("sum = %v, want 102.565", got)
	}
	s := r.Snapshot().Histograms["lat"]
	// Bucket semantics: first bound >= v, so 0.01 lands in bucket le=0.01.
	want := []uint64{2, 1, 1, 2}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Count(); got != 7 {
		t.Fatalf("count after ObserveDuration = %d, want 7", got)
	}
}

func TestObsNilRegistrySafe(t *testing.T) {
	var r *Registry
	// Every instrument from a nil registry must accept writes.
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter must still count")
	}
	r.Gauge("y").Set(3)
	r.Histogram("z", LatencyBuckets()).Observe(0.5)
	if got := r.Snapshot(); got.Name != "" || got.Counters != nil {
		t.Fatalf("nil registry snapshot = %+v, want zero", got)
	}
	if r.Name() != "" {
		t.Fatal("nil registry name must be empty")
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatalf("WritePrometheus(nil): %v", err)
	}
	if err := PublishExpvar(r); err == nil {
		t.Fatal("PublishExpvar(nil) must error")
	}
}

// TestObsConcurrentSnapshot exercises writers racing Snapshot; run under
// -race by make check's obs target.
func TestObsConcurrentSnapshot(t *testing.T) {
	r := NewRegistry("race")
	const writers, iters = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("level")
			peak := r.Gauge("peak")
			h := r.Histogram("lat", LatencyBuckets())
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				peak.Max(float64(i))
				h.Observe(float64(i%10) / 10)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := r.Snapshot()
		if s.Histograms != nil {
			h := s.Histograms["lat"]
			var total uint64
			for _, b := range h.Buckets {
				total += b
			}
			// Buckets and count are read independently while writers run, so
			// allow skew but never bucket-sum > count + writers in flight.
			if total > h.Count+writers {
				t.Fatalf("bucket sum %d way past count %d", total, h.Count)
			}
		}
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["hits"]; got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	if got := s.Gauges["level"]; got != writers*iters {
		t.Fatalf("gauge Add total = %v, want %d", got, writers*iters)
	}
	if got := s.Gauges["peak"]; got != iters-1 {
		t.Fatalf("gauge Max = %v, want %d", got, iters-1)
	}
	if got := s.Histograms["lat"].Count; got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
}

func TestObsPrometheusFormat(t *testing.T) {
	r := NewRegistry("h2pipe")
	r.Counter("windows_total").Add(3)
	r.Gauge("peak_memory_bytes").Set(1024)
	h := r.Histogram("plan_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE h2pipe_windows_total counter",
		"h2pipe_windows_total 3",
		"# TYPE h2pipe_peak_memory_bytes gauge",
		"h2pipe_peak_memory_bytes 1024",
		"# TYPE h2pipe_plan_seconds histogram",
		`h2pipe_plan_seconds_bucket{le="0.1"} 1`,
		`h2pipe_plan_seconds_bucket{le="1"} 2`,
		`h2pipe_plan_seconds_bucket{le="+Inf"} 3`,
		"h2pipe_plan_seconds_sum 5.55",
		"h2pipe_plan_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestObsExpvarPublish(t *testing.T) {
	r := NewRegistry("expvar_test_registry")
	r.Counter("c").Inc()
	if err := PublishExpvar(r); err != nil {
		t.Fatal(err)
	}
	if err := PublishExpvar(r); err == nil {
		t.Fatal("second publish of the same name must error, not panic")
	}
	v := expvar.Get("h2pipe:expvar_test_registry")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	if s.Counters["c"] != 1 {
		t.Fatalf("expvar snapshot = %+v, want counter c=1", s)
	}
}

func TestObsReportJSON(t *testing.T) {
	rep := &RunReport{
		SoC:       "kirin990",
		Requests:  4,
		Completed: 4,
		Planner:   PlannerReport{CacheHits: 6, CacheMisses: 2, CacheHitRatio: 0.75},
		Stream:    StreamReport{Windows: 2, DeadlineMisses: 1},
		Windows:   []WindowReport{{Index: 0, Requests: 2}, {Index: 1, Requests: 2, Interrupted: true}},
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Planner.CacheHits != 6 || back.Stream.Windows != 2 || !back.Windows[1].Interrupted {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestObsBucketHelpers(t *testing.T) {
	for name, b := range map[string][]float64{"latency": LatencyBuckets(), "slowdown": SlowdownBuckets()} {
		if len(b) == 0 {
			t.Fatalf("%s buckets empty", name)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("%s buckets not strictly ascending: %v", name, b)
			}
		}
	}
}
