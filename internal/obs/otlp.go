package obs

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"strconv"
)

// OTLP-shaped JSON export of the span ring: the structure mirrors the
// OpenTelemetry OTLP/JSON trace payload (resourceSpans → scopeSpans →
// spans, attributes as {key, value:{stringValue|intValue|doubleValue}},
// ids hex-encoded, int64s as decimal strings per the proto3 JSON mapping)
// so the file drops into OTLP-compatible tooling, while staying
// dependency-free.

type otlpPayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

func otlpAttrOf(a Attr) otlpAttr {
	switch a.kind {
	case attrInt:
		v := strconv.FormatInt(a.i, 10)
		return otlpAttr{Key: a.Key, Value: otlpValue{IntValue: &v}}
	case attrFloat:
		f := a.f
		return otlpAttr{Key: a.Key, Value: otlpValue{DoubleValue: &f}}
	default:
		s := a.s
		return otlpAttr{Key: a.Key, Value: otlpValue{StringValue: &s}}
	}
}

// WriteOTLP renders the recorder's span ring as indented OTLP-shaped JSON.
// The service name becomes the resource's service.name attribute. A nil
// recorder writes an empty payload.
func WriteOTLP(w io.Writer, r *SpanRecorder, service string) error {
	spans := r.Spans()
	out := make([]otlpSpan, 0, len(spans))
	traceID := hexTraceID(r.TraceID())
	for _, d := range spans {
		sp := otlpSpan{
			TraceID:           traceID,
			SpanID:            hexID(d.ID),
			Name:              d.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: strconv.FormatInt(d.Start.UnixNano(), 10),
			EndTimeUnixNano:   strconv.FormatInt(d.End.UnixNano(), 10),
		}
		if d.Parent != 0 {
			sp.ParentSpanID = hexID(d.Parent)
		}
		for _, a := range d.Attrs {
			sp.Attributes = append(sp.Attributes, otlpAttrOf(a))
		}
		out = append(out, sp)
	}
	payload := otlpPayload{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{otlpAttrOf(Str("service.name", service))}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "hetero2pipe/internal/obs"},
			Spans: out,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// hexTraceID renders a 64-bit trace seed as the 16-byte (32 hex digit)
// OTLP trace id, seed in the low 8 bytes.
func hexTraceID(id uint64) string {
	var b [16]byte
	for i := 15; i >= 8; i-- {
		b[i] = byte(id)
		id >>= 8
	}
	return hex.EncodeToString(b[:])
}
