package obs

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation inside the containing bucket — the
// same estimator Prometheus' histogram_quantile applies. The first bucket
// interpolates from zero (the natural lower edge for the latency and
// slowdown layouts, whose values are non-negative); ranks landing in the
// +Inf bucket clamp to the last finite bound, since there is no upper edge
// to interpolate toward. An empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	lower := 0.0
	for i, upper := range h.Bounds {
		c := float64(h.Buckets[i])
		if c > 0 && cum+c >= rank {
			return lower + (upper-lower)*((rank-cum)/c)
		}
		cum += c
		lower = upper
	}
	// Rank falls in the +Inf bucket: clamp to the largest finite bound.
	return h.Bounds[len(h.Bounds)-1]
}

// Quantiles evaluates Quantile at each q, in order.
func (h HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
