package obs

import "encoding/json"

// RunReport is the structured summary of one stream run. It is built by the
// stream scheduler at the end of RunContext and mirrors the flat counters on
// stream.Result, adding per-layer breakdowns (planner, executor, stream) and
// a per-window table. All durations are reported in milliseconds to keep the
// JSON human-readable; raw nanosecond precision stays on stream.Result.
type RunReport struct {
	SoC           string  `json:"soc"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	MakespanMS    float64 `json:"makespan_ms"`
	MeanSojournMS float64 `json:"mean_sojourn_ms"`
	P50SojournMS  float64 `json:"p50_sojourn_ms"`
	P95SojournMS  float64 `json:"p95_sojourn_ms"`
	P99SojournMS  float64 `json:"p99_sojourn_ms"`

	Planner  PlannerReport  `json:"planner"`
	Executor ExecutorReport `json:"executor"`
	Stream   StreamReport   `json:"stream"`

	Windows []WindowReport `json:"windows,omitempty"`
}

// PlannerReport aggregates planning-side observability across every window
// of the run.
type PlannerReport struct {
	PlanWallMS    float64 `json:"plan_wall_ms"`
	DPCells       uint64  `json:"dp_cells"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Whole-plan cache traffic (zero when the plan cache is disabled): hits
	// are windows served a memoized plan without running the two-step
	// optimisation, misses are windows planned in full.
	PlanCacheHits     uint64  `json:"plan_cache_hits"`
	PlanCacheMisses   uint64  `json:"plan_cache_misses"`
	PlanCacheHitRatio float64 `json:"plan_cache_hit_ratio"`
}

// ExecutorReport aggregates execution-side observability across every window
// of the run. Slowdown statistics are over per-slice dilation factors
// relative to the solo estimate (the paper's ψ).
type ExecutorReport struct {
	Slices          int     `json:"slices"`
	BubbleMS        float64 `json:"bubble_ms"`
	AdmissionStalls int     `json:"admission_stalls"`
	PeakMemoryBytes int64   `json:"peak_memory_bytes"`
	MeanSlowdown    float64 `json:"mean_slowdown"`
	MaxSlowdown     float64 `json:"max_slowdown"`
}

// StreamReport aggregates scheduler-side observability.
type StreamReport struct {
	Windows        int `json:"windows"`
	Replans        int `json:"replans"`
	Requeues       int `json:"requeues"`
	PlanRetries    int `json:"plan_retries"`
	DeadlineMisses int `json:"deadline_misses"`
	EventsApplied  int `json:"events_applied"`
}

// WindowReport is the per-window row of the report table.
type WindowReport struct {
	Index       int     `json:"index"`
	StartMS     float64 `json:"start_ms"`
	EndMS       float64 `json:"end_ms"`
	PlanWallMS  float64 `json:"plan_wall_ms"`
	ExecMS      float64 `json:"exec_ms"`
	Requests    int     `json:"requests"`
	Completed   int     `json:"completed"`
	Requeued    int     `json:"requeued"`
	PlanRetries int     `json:"plan_retries"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	// PlanCacheHits/Misses are the window's whole-plan cache traffic
	// (both zero when the plan cache is disabled).
	PlanCacheHits   uint64 `json:"plan_cache_hits"`
	PlanCacheMisses uint64 `json:"plan_cache_misses"`
	DPCells         uint64 `json:"dp_cells"`
	Interrupted     bool   `json:"interrupted"`
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
