package obs

import "encoding/json"

// RunReport is the structured summary of one stream run. It is built by the
// stream scheduler at the end of RunContext and mirrors the flat counters on
// stream.Result, adding per-layer breakdowns (planner, executor, stream) and
// a per-window table. All durations are reported in milliseconds to keep the
// JSON human-readable; raw nanosecond precision stays on stream.Result.
type RunReport struct {
	SoC           string  `json:"soc"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	MakespanMS    float64 `json:"makespan_ms"`
	MeanSojournMS float64 `json:"mean_sojourn_ms"`
	P50SojournMS  float64 `json:"p50_sojourn_ms"`
	P95SojournMS  float64 `json:"p95_sojourn_ms"`
	P99SojournMS  float64 `json:"p99_sojourn_ms"`

	Planner  PlannerReport  `json:"planner"`
	Executor ExecutorReport `json:"executor"`
	Stream   StreamReport   `json:"stream"`

	// Decomposition aggregates the per-request sojourn breakdowns over every
	// completed, traced request (populated only when request tracing is
	// armed; see stream.Breakdown for component semantics).
	Decomposition *DecompositionReport `json:"sojourn_decomposition,omitempty"`

	Windows []WindowReport `json:"windows,omitempty"`
}

// DecompositionReport totals the sojourn-decomposition components across a
// run's completed requests. The virtual-clock components (queue wait,
// backoff, interrupt loss, exec, handoff transit) sum to the run's total
// sojourn; plan wall is the attributed real planner time, a separate clock
// domain.
type DecompositionReport struct {
	Requests         int     `json:"requests"`
	QueueWaitMS      float64 `json:"queue_wait_ms"`
	BackoffMS        float64 `json:"backoff_ms"`
	InterruptLossMS  float64 `json:"interrupt_loss_ms"`
	ExecMS           float64 `json:"exec_ms"`
	HandoffTransitMS float64 `json:"handoff_transit_ms"`
	PlanWallMS       float64 `json:"plan_wall_ms"`
}

// PlannerReport aggregates planning-side observability across every window
// of the run.
type PlannerReport struct {
	PlanWallMS    float64 `json:"plan_wall_ms"`
	DPCells       uint64  `json:"dp_cells"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Whole-plan cache traffic (zero when the plan cache is disabled): hits
	// are windows served a memoized plan without running the two-step
	// optimisation, misses are windows planned in full.
	PlanCacheHits     uint64  `json:"plan_cache_hits"`
	PlanCacheMisses   uint64  `json:"plan_cache_misses"`
	PlanCacheHitRatio float64 `json:"plan_cache_hit_ratio"`
	// IncrementalReuse counts partition DPs served from the incremental
	// replanning memo — fully reused or resumed mid-table (zero when
	// incremental replanning is off).
	IncrementalReuse uint64 `json:"incremental_reuse,omitempty"`
}

// ExecutorReport aggregates execution-side observability across every window
// of the run. Slowdown statistics are over per-slice dilation factors
// relative to the solo estimate (the paper's ψ).
type ExecutorReport struct {
	Slices          int     `json:"slices"`
	BubbleMS        float64 `json:"bubble_ms"`
	AdmissionStalls int     `json:"admission_stalls"`
	PeakMemoryBytes int64   `json:"peak_memory_bytes"`
	MeanSlowdown    float64 `json:"mean_slowdown"`
	MaxSlowdown     float64 `json:"max_slowdown"`
}

// StreamReport aggregates scheduler-side observability.
type StreamReport struct {
	Windows        int `json:"windows"`
	Replans        int `json:"replans"`
	Requeues       int `json:"requeues"`
	PlanRetries    int `json:"plan_retries"`
	DeadlineMisses int `json:"deadline_misses"`
	EventsApplied  int `json:"events_applied"`
	// Handoffs counts requests completed in this run that were re-admitted
	// by fleet failover from another device; Halted marks a run stopped by
	// an exhausted plan-retry budget under HaltInfeasible, with Unfinished
	// requests left for the fleet router to re-route.
	Handoffs   int  `json:"handoffs,omitempty"`
	Halted     bool `json:"halted,omitempty"`
	Unfinished int  `json:"unfinished,omitempty"`
	// DeadlineMissesBySLO attributes the run's deadline misses to resolved
	// SLO classes — the per-class view behind the /slo burn rates. The
	// per-class counts sum to DeadlineMisses.
	DeadlineMissesBySLO map[string]int `json:"deadline_misses_by_slo,omitempty"`
}

// WindowReport is the per-window row of the report table.
type WindowReport struct {
	Index       int     `json:"index"`
	StartMS     float64 `json:"start_ms"`
	EndMS       float64 `json:"end_ms"`
	PlanWallMS  float64 `json:"plan_wall_ms"`
	ExecMS      float64 `json:"exec_ms"`
	Requests    int     `json:"requests"`
	Completed   int     `json:"completed"`
	Requeued    int     `json:"requeued"`
	PlanRetries int     `json:"plan_retries"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	// PlanCacheHits/Misses are the window's whole-plan cache traffic
	// (both zero when the plan cache is disabled).
	PlanCacheHits   uint64 `json:"plan_cache_hits"`
	PlanCacheMisses uint64 `json:"plan_cache_misses"`
	DPCells         uint64 `json:"dp_cells"`
	// IncrementalReuse is the window's partition-memo reuse count (see
	// PlannerReport.IncrementalReuse).
	IncrementalReuse uint64 `json:"incremental_reuse,omitempty"`
	Interrupted      bool   `json:"interrupted"`
	// Handoffs counts the requests completed in this window that arrived
	// via fleet failover from another device.
	Handoffs int `json:"handoffs,omitempty"`
	// EnergyJoules prices the window's executed schedule under the SoC
	// power model (populated in every planning mode).
	EnergyJoules float64 `json:"energy_joules,omitempty"`
	// SLO and FrontierSize describe frontier-mode planning: the class the
	// window resolved and the number of non-dominated points the planner
	// returned. Both empty under makespan planning.
	SLO          string `json:"slo,omitempty"`
	FrontierSize int    `json:"frontier_size,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FleetReport is the merged report of one fleet run: the fleet-wide roll-up
// plus every device's own RunReport. Built by the fleet layer
// (internal/fleet) as a pure projection of its Result, the same invariant
// RunReport keeps with stream.Result.
type FleetReport struct {
	Devices       int     `json:"devices"`
	Policy        string  `json:"policy"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	Handoffs      int     `json:"handoffs"`
	MakespanMS    float64 `json:"makespan_ms"`
	MeanSojournMS float64 `json:"mean_sojourn_ms"`
	P95SojournMS  float64 `json:"p95_sojourn_ms"`

	// Decomposition aggregates the stitched fleet-wide sojourn breakdowns
	// (populated only when request tracing is armed).
	Decomposition *DecompositionReport `json:"sojourn_decomposition,omitempty"`

	PerDevice []FleetDeviceReport `json:"per_device"`
}

// FleetDeviceReport is one device's row of the fleet report.
type FleetDeviceReport struct {
	Device    string `json:"device"`
	SoC       string `json:"soc"`
	Down      bool   `json:"down"`
	Assigned  int    `json:"assigned"`
	Completed int    `json:"completed"`
	// HandoffsIn counts requests this device completed for failed peers;
	// HandoffsOut counts requests this device abandoned to failover.
	HandoffsIn  int `json:"handoffs_in"`
	HandoffsOut int `json:"handoffs_out"`
	// Report is the device's primary-shard run report; HandoffReports holds
	// one report per failover batch replayed onto this device.
	Report         *RunReport   `json:"report,omitempty"`
	HandoffReports []*RunReport `json:"handoff_reports,omitempty"`
}

// JSON renders the fleet report as indented JSON.
func (r *FleetReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
