// Package server exposes the runtime's observability surfaces over HTTP:
// Prometheus metrics, expvar, pprof, health/readiness probes, the live
// window feed of an in-flight stream run (plain JSON or Server-Sent
// Events), and the span ring as OTLP/JSON. The package composes the
// read-side primitives the rest of internal/obs and internal/stream
// provide; it owns no state of its own, so one handler can outlive any
// number of runs.
package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"hetero2pipe/internal/fleet"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/stream"
)

// Config wires the observability sources into the handler. Every field is
// optional: endpoints whose source is nil respond 404 (probes always
// respond).
type Config struct {
	// Metrics backs /metrics (Prometheus text format) and, once published,
	// the /vars expvar payload.
	Metrics *obs.Registry
	// Spans backs /spans (OTLP/JSON).
	Spans *obs.SpanRecorder
	// Feed backs /windows (ring snapshot or SSE) and /readyz (ready while a
	// stream run is accepting admissions).
	Feed *stream.Feed
	// Fleet backs /fleet (live sharded-serving status: per-device
	// assignment, completion and handoff counts).
	Fleet *fleet.Fleet
	// Traces backs /requests (per-request timeline flight recorder: recent,
	// ?trace=ID lookup, ?worst=N, SSE with ?sse=1).
	Traces *stream.TraceStore
	// SLO backs /slo (per-class error budgets and burn rates).
	SLO *obs.SLOMonitor
	// Service names the OTLP resource; empty defaults to "hetero2pipe".
	Service string
}

// Handler returns the observability mux:
//
//	/metrics        Prometheus text exposition of Config.Metrics
//	/vars           expvar JSON (everything published in the process)
//	/debug/pprof/   the standard pprof index and profiles
//	/healthz        200 once the process serves (liveness)
//	/readyz         200 while a stream run accepts admissions, else 503
//	/windows        live WindowStats: JSON array, or SSE with ?sse=1
//	/spans          the span ring as OTLP/JSON
//	/fleet          live fleet status (Config.Fleet)
//	/requests       request timelines: recent (default, ?n=), one by
//	                ?trace=ID, worst sojourns by ?worst=N, or SSE with ?sse=1
//	/slo            per-class error budgets and burn rates (Config.SLO)
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Feed.Ready() {
			fmt.Fprintln(w, "ready")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no stream run accepting admissions")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Metrics == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, cfg.Metrics)
	})
	mux.Handle("/vars", expvar.Handler())
	mux.HandleFunc("/windows", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Feed == nil {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("sse") != "" {
			serveSSE(w, r, cfg.Feed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(windowsPayload{
			Ready:   cfg.Feed.Ready(),
			Total:   cfg.Feed.Total(),
			Sojourn: sojournQuantiles(cfg.Metrics),
			Windows: cfg.Feed.Live(),
		})
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Spans == nil {
			http.NotFound(w, r)
			return
		}
		service := cfg.Service
		if service == "" {
			service = "hetero2pipe"
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = obs.WriteOTLP(w, cfg.Spans, service)
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Fleet == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Fleet.Status())
	})
	mux.HandleFunc("/requests", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Traces == nil {
			http.NotFound(w, r)
			return
		}
		q := r.URL.Query()
		if q.Get("sse") != "" {
			serveRequestSSE(w, r, cfg.Traces)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if trace := q.Get("trace"); trace != "" {
			tl, ok := cfg.Traces.Get(trace)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				_ = enc.Encode(map[string]string{"error": "trace not found", "trace": trace})
				return
			}
			_ = enc.Encode(tl)
			return
		}
		if worst := q.Get("worst"); worst != "" {
			n, err := strconv.Atoi(worst)
			if err != nil || n < 1 {
				http.Error(w, "bad worst count", http.StatusBadRequest)
				return
			}
			_ = enc.Encode(requestsPayload{
				Total:    cfg.Traces.Total(),
				Requests: cfg.Traces.Worst(n),
			})
			return
		}
		n := 0
		if v := q.Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
		_ = enc.Encode(requestsPayload{
			Total:    cfg.Traces.Total(),
			Requests: cfg.Traces.Recent(n),
		})
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if cfg.SLO == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.SLO.Report())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// windowsPayload is the /windows JSON document.
type windowsPayload struct {
	Ready   bool                `json:"ready"`
	Total   int                 `json:"total"`
	Sojourn *sojournPayload     `json:"sojourn_quantiles,omitempty"`
	Windows []stream.WindowStat `json:"windows"`
}

// sojournPayload carries interpolated latency quantiles of the sojourn
// histogram, in milliseconds.
type sojournPayload struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// sojournQuantiles estimates p50/p95/p99 from the stream scheduler's
// sojourn histogram (bucket interpolation — see obs.HistogramSnapshot
// Quantile). Nil when no registry is attached or nothing has completed yet.
func sojournQuantiles(reg *obs.Registry) *sojournPayload {
	if reg == nil {
		return nil
	}
	h, ok := reg.Snapshot().Histograms["stream_sojourn_seconds"]
	if !ok || h.Count == 0 {
		return nil
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	return &sojournPayload{P50MS: qs[0] * 1e3, P95MS: qs[1] * 1e3, P99MS: qs[2] * 1e3}
}

// requestsPayload is the /requests JSON document.
type requestsPayload struct {
	// Total counts every timeline ever recorded (including evicted ones);
	// Requests is the selected slice.
	Total    int                      `json:"total"`
	Requests []stream.RequestTimeline `json:"requests"`
}

// serveRequestSSE streams completed request timelines as Server-Sent
// Events: the retained store first (history for late subscribers), then
// every timeline recorded while the client stays connected.
func serveRequestSSE(w http.ResponseWriter, r *http.Request, traces *stream.TraceStore) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe before replaying so nothing recorded in between is lost;
	// duplicates are harmless (timelines are idempotent by trace ID).
	ch, cancel := traces.Subscribe(64)
	defer cancel()
	for _, tl := range traces.Recent(0) {
		if writeRequestSSE(w, tl) != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case tl, ok := <-ch:
			if !ok {
				return
			}
			if writeRequestSSE(w, tl) != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeRequestSSE renders one timeline as an SSE "request" event.
func writeRequestSSE(w http.ResponseWriter, tl stream.RequestTimeline) error {
	data, err := json.Marshal(tl)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: request\ndata: %s\n\n", data)
	return err
}

// serveSSE streams the feed as Server-Sent Events: first the retained ring
// (so a late subscriber sees history), then every window published while
// the client stays connected. One event per window, data = the WindowStat
// as JSON.
func serveSSE(w http.ResponseWriter, r *http.Request, feed *stream.Feed) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe before replaying the ring so no window published in between
	// is lost; the duplicate risk (a window both in the replay and the
	// subscription) is bounded to the subscription buffer and harmless for
	// monitoring, where windows are idempotent by their Start.
	ch, cancel := feed.Subscribe(64)
	defer cancel()
	for _, ws := range feed.Live() {
		if writeSSE(w, ws) != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ws, ok := <-ch:
			if !ok {
				return
			}
			if writeSSE(w, ws) != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE renders one WindowStat as an SSE "window" event.
func writeSSE(w http.ResponseWriter, ws stream.WindowStat) error {
	data, err := json.Marshal(ws)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: window\ndata: %s\n\n", data)
	return err
}

// Serve runs the observability server on addr until ctx is cancelled, then
// shuts it down gracefully. It returns once the server has stopped; a nil
// error means the shutdown was clean. The bound address (useful with
// ":0") is reported through the optional onListen callback.
func Serve(ctx context.Context, addr string, cfg Config, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs server: %w", err)
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	srv := &http.Server{Handler: Handler(cfg)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("obs server shutdown: %w", err)
		}
		<-errc // http.ErrServerClosed
		return nil
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			return fmt.Errorf("obs server: %w", err)
		}
		return nil
	}
}
