package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// SLOMonitor tracks per-class deadline error budgets for the stream
// scheduler. Each class carries a target miss fraction (its error budget);
// the monitor accumulates lifetime totals and a sliding window of recent
// completions on the virtual clock, from which it derives the windowed burn
// rate — how many times faster than budget the class is currently burning
// (1.0 = exactly on budget, >1 = on course to exhaust it).
//
// Classes are keyed by name (core.SLOClass.String()) rather than by the
// typed class, keeping obs free of a core dependency; the stream layer
// resolves each completion's class before observing. Classes observed
// without a configured budget are still counted (their burn rate reads 0 —
// there is no budget to burn).
//
// Every method is nil-receiver-safe, the package's instrument idiom, so the
// scheduler observes unconditionally.
type SLOMonitor struct {
	mu      sync.Mutex
	window  time.Duration
	classes map[string]*sloClass
}

type sloClass struct {
	target  float64 // budgeted miss fraction; 0 = unbudgeted
	total   uint64
	missed  uint64
	samples []sloSample // completions within the sliding window, append order
	winMiss int
}

type sloSample struct {
	at     time.Duration
	missed bool
}

// DefaultSLOWindow is the burn-rate window applied to non-positive window
// arguments: one virtual second of completions.
const DefaultSLOWindow = time.Second

// NewSLOMonitor returns a monitor with the given burn-rate window on the
// virtual clock (non-positive selects DefaultSLOWindow) and per-class
// budget targets (class name → target miss fraction in [0,1]).
func NewSLOMonitor(window time.Duration, budgets map[string]float64) *SLOMonitor {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	m := &SLOMonitor{window: window, classes: make(map[string]*sloClass)}
	for class, target := range budgets {
		m.SetBudget(class, target)
	}
	return m
}

// SetBudget sets (or replaces) one class's target miss fraction, clamped
// to [0,1].
func (m *SLOMonitor) SetBudget(class string, target float64) {
	if m == nil {
		return
	}
	if target < 0 {
		target = 0
	}
	if target > 1 {
		target = 1
	}
	m.mu.Lock()
	m.class(class).target = target
	m.mu.Unlock()
}

// class returns the named class's state, creating it if needed. Called with
// the lock held.
func (m *SLOMonitor) class(name string) *sloClass {
	c := m.classes[name]
	if c == nil {
		c = &sloClass{}
		m.classes[name] = c
	}
	return c
}

// Observe records one request completion for the class at the given
// virtual-clock instant, missed marking a blown deadline. Samples older
// than the window (relative to the newest observed instant) age out of the
// burn-rate computation; lifetime totals never reset. Under a concurrent
// fleet run each device observes on its own virtual clock, so the windowed
// figures are best-effort there; lifetime totals stay exact.
func (m *SLOMonitor) Observe(class string, at time.Duration, missed bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c := m.class(class)
	c.total++
	if missed {
		c.missed++
		c.winMiss++
	}
	c.samples = append(c.samples, sloSample{at: at, missed: missed})
	cutoff := at - m.window
	drop := 0
	for drop < len(c.samples) && c.samples[drop].at < cutoff {
		if c.samples[drop].missed {
			c.winMiss--
		}
		drop++
	}
	if drop > 0 {
		c.samples = c.samples[drop:]
	}
	m.mu.Unlock()
}

// Window reports the monitor's burn-rate window (0 for a nil monitor).
func (m *SLOMonitor) Window() time.Duration {
	if m == nil {
		return 0
	}
	return m.window
}

// SLOReport is the point-in-time state of every tracked class — the /slo
// endpoint's payload.
type SLOReport struct {
	// WindowMS is the burn-rate window in milliseconds of virtual time.
	WindowMS float64 `json:"window_ms"`
	// Classes lists every observed or budgeted class, sorted by name.
	Classes []SLOClassReport `json:"classes"`
}

// SLOClassReport is one class's row of the SLO report.
type SLOClassReport struct {
	Class string `json:"class"`
	// Target is the budgeted miss fraction (0 = no budget configured).
	Target float64 `json:"target"`
	// Total and Missed are lifetime completion and deadline-miss counts;
	// MissFraction is their ratio. Missed matches the
	// stream_deadline_miss_total{slo="..."} labeled counter.
	Total        uint64  `json:"total"`
	Missed       uint64  `json:"missed"`
	MissFraction float64 `json:"miss_fraction"`
	// WindowTotal/WindowMissed count completions inside the burn-rate
	// window; BurnRate is the windowed miss fraction over the target — how
	// many times faster than budget the class is burning (0 when
	// unbudgeted or idle).
	WindowTotal  int     `json:"window_total"`
	WindowMissed int     `json:"window_missed"`
	BurnRate     float64 `json:"burn_rate"`
	// BudgetRemaining is the unburnt share of the lifetime error budget:
	// 1 − MissFraction/Target. Negative once the budget is exhausted;
	// 1 when unbudgeted or miss-free.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Report snapshots every class, sorted by name.
func (m *SLOMonitor) Report() *SLOReport {
	rep := &SLOReport{Classes: []SLOClassReport{}}
	if m == nil {
		return rep
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rep.WindowMS = float64(m.window) / float64(time.Millisecond)
	for name, c := range m.classes {
		row := SLOClassReport{
			Class:           name,
			Target:          c.target,
			Total:           c.total,
			Missed:          c.missed,
			WindowTotal:     len(c.samples),
			WindowMissed:    c.winMiss,
			BudgetRemaining: 1,
		}
		if c.total > 0 {
			row.MissFraction = float64(c.missed) / float64(c.total)
		}
		if c.target > 0 {
			if len(c.samples) > 0 {
				winFrac := float64(c.winMiss) / float64(len(c.samples))
				row.BurnRate = winFrac / c.target
			}
			row.BudgetRemaining = 1 - row.MissFraction/c.target
		}
		rep.Classes = append(rep.Classes, row)
	}
	sort.Slice(rep.Classes, func(a, b int) bool { return rep.Classes[a].Class < rep.Classes[b].Class })
	return rep
}

// JSON renders the report as indented JSON.
func (r *SLOReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
