package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSLOBudgetBurnRate pins the burn-rate arithmetic: lifetime totals never
// reset, the windowed figures age out on the virtual clock, and the burn
// rate reads windowed-miss-fraction over target.
func TestSLOBudgetBurnRate(t *testing.T) {
	m := NewSLOMonitor(100*time.Millisecond, map[string]float64{"gold": 0.1})

	// 10 completions inside one window, 2 missed: windowed fraction 0.2,
	// target 0.1 → burning 2× faster than budget.
	for i := 0; i < 10; i++ {
		m.Observe("gold", time.Duration(i)*time.Millisecond, i < 2)
	}
	rep := m.Report()
	if len(rep.Classes) != 1 {
		t.Fatalf("classes = %+v, want one", rep.Classes)
	}
	c := rep.Classes[0]
	if c.Class != "gold" || c.Total != 10 || c.Missed != 2 {
		t.Fatalf("lifetime state wrong: %+v", c)
	}
	if c.WindowTotal != 10 || c.WindowMissed != 2 {
		t.Fatalf("window state wrong: %+v", c)
	}
	if c.BurnRate != 2 {
		t.Errorf("burn rate = %v, want 2", c.BurnRate)
	}
	if want := 1 - 0.2/0.1; c.BudgetRemaining != want {
		t.Errorf("budget remaining = %v, want %v (exhausted)", c.BudgetRemaining, want)
	}

	// A clean stretch one window later ages the misses out of the burn rate
	// while lifetime totals keep counting.
	for i := 0; i < 10; i++ {
		m.Observe("gold", time.Second+time.Duration(i)*time.Millisecond, false)
	}
	c = m.Report().Classes[0]
	if c.Total != 20 || c.Missed != 2 {
		t.Errorf("lifetime state reset: %+v", c)
	}
	if c.WindowTotal != 10 || c.WindowMissed != 0 || c.BurnRate != 0 {
		t.Errorf("old misses did not age out: %+v", c)
	}
}

// TestSLOBudgetUnbudgetedClass: classes observed without a budget are
// counted but burn nothing.
func TestSLOBudgetUnbudgetedClass(t *testing.T) {
	m := NewSLOMonitor(0, nil)
	if m.Window() != DefaultSLOWindow {
		t.Errorf("window = %v, want default %v", m.Window(), DefaultSLOWindow)
	}
	m.Observe("stray", 0, true)
	m.Observe("stray", time.Millisecond, false)
	c := m.Report().Classes[0]
	if c.Target != 0 || c.BurnRate != 0 || c.BudgetRemaining != 1 {
		t.Errorf("unbudgeted class burns: %+v", c)
	}
	if c.Total != 2 || c.Missed != 1 || c.MissFraction != 0.5 {
		t.Errorf("unbudgeted class miscounted: %+v", c)
	}

	// SetBudget clamps out-of-range targets.
	m.SetBudget("stray", 7)
	if got := m.Report().Classes[0].Target; got != 1 {
		t.Errorf("target clamped to %v, want 1", got)
	}
	m.SetBudget("stray", -1)
	if got := m.Report().Classes[0].Target; got != 0 {
		t.Errorf("target clamped to %v, want 0", got)
	}
}

// TestSLOBudgetNilSafety: the monitor follows the package's nil-instrument
// idiom end to end.
func TestSLOBudgetNilSafety(t *testing.T) {
	var m *SLOMonitor
	m.Observe("x", 0, true)
	m.SetBudget("x", 0.5)
	if m.Window() != 0 {
		t.Error("nil monitor reports a window")
	}
	rep := m.Report()
	if rep == nil || len(rep.Classes) != 0 {
		t.Errorf("nil monitor report = %+v", rep)
	}
	raw, err := rep.JSON()
	if err != nil || !strings.Contains(string(raw), "classes") {
		t.Errorf("nil monitor report JSON = %s, %v", raw, err)
	}
}

// TestRequestTraceExemplars pins the histogram exemplar surface: traced
// observations attach their most recent trace ID per bucket, untraced
// observations leave the snapshot exemplar-free (and byte-identical to the
// pre-exemplar encoding), and WritePrometheus output never changes shape.
func TestRequestTraceExemplars(t *testing.T) {
	reg := NewRegistry("extest")
	h := reg.Histogram("stream_sojourn_seconds", LatencyBuckets())
	h.Observe(0.004)

	// Untraced: no exemplar column at all.
	snap := reg.Snapshot()
	if got := snap.Histograms["stream_sojourn_seconds"].Exemplars; got != nil {
		t.Fatalf("untraced snapshot carries exemplars: %+v", got)
	}
	plain, err := json.Marshal(snap.Histograms["stream_sojourn_seconds"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "exemplars") {
		t.Errorf("untraced histogram JSON mentions exemplars: %s", plain)
	}

	// Traced: the bucket that took the observation carries the trace, and
	// the most recent trace per bucket wins.
	h.ObserveExemplar(0.004, "aaaaaaaaaaaaaaaa")
	h.ObserveExemplar(0.004, "bbbbbbbbbbbbbbbb")
	h.ObserveDurationExemplar(250*time.Millisecond, "cccccccccccccccc")
	h.ObserveExemplar(0.001, "") // empty trace: counted, no exemplar update
	hs := reg.Snapshot().Histograms["stream_sojourn_seconds"]
	if hs.Exemplars == nil {
		t.Fatal("traced snapshot carries no exemplars")
	}
	if len(hs.Exemplars) != len(hs.Buckets) {
		t.Fatalf("exemplar column length %d != bucket count %d", len(hs.Exemplars), len(hs.Buckets))
	}
	var traces []string
	for _, ex := range hs.Exemplars {
		if ex != nil {
			traces = append(traces, ex.Trace)
		}
	}
	if len(traces) != 2 {
		t.Fatalf("exemplars on %d buckets, want 2: %v", len(traces), traces)
	}
	joined := strings.Join(traces, ",")
	if !strings.Contains(joined, "bbbbbbbbbbbbbbbb") || !strings.Contains(joined, "cccccccccccccccc") {
		t.Errorf("exemplar traces = %v, want the latest per bucket (b..., c...)", traces)
	}
	if strings.Contains(joined, "aaaaaaaaaaaaaaaa") {
		t.Errorf("stale exemplar survived: %v", traces)
	}

	// The Prometheus exposition is exemplar-free either way.
	var buf strings.Builder
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "cccccccccccccccc") {
		t.Error("WritePrometheus leaked exemplars into the exposition")
	}
}
