package obs

import (
	"context"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// Span tracing. A SpanRecorder is a lock-free bounded ring of finished
// spans: StartSpan allocates a span linked to its parent through the
// context, End records it into the ring, and exporters (WriteOTLP, the
// trace.StreamChromeFromSpans converter, the /spans endpoint) read the ring
// without stopping writers. Like the metric instruments, the whole API is
// nil-safe: with no recorder in the context StartSpan returns a nil *Span
// whose methods are no-ops, so instrumented hot paths pay only a context
// lookup when tracing is disabled.
//
// Spans carry two clocks. Start/End are wall-clock times (what OTLP
// exports); virtual-time instants from the simulated SoC clock travel as
// duration attributes (vt_start, vt_end, ...) so the stream Chrome-trace
// converter can rebuild the execution timeline exactly.

// attrKind discriminates the value held by an Attr.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
)

// Attr is one key/value span attribute.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrString, s: v} }

// Int returns an int64 attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Float returns a float64 attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Dur returns a duration attribute, stored as integer nanoseconds.
func Dur(key string, d time.Duration) Attr { return Int(key, int64(d)) }

// Bool returns a boolean attribute, stored as 0/1.
func Bool(key string, v bool) Attr {
	if v {
		return Int(key, 1)
	}
	return Int(key, 0)
}

// AsString returns the string value ("" for non-string attrs).
func (a Attr) AsString() string { return a.s }

// AsInt returns the integer value (0 for non-int attrs).
func (a Attr) AsInt() int64 { return a.i }

// AsFloat returns the float value (0 for non-float attrs).
func (a Attr) AsFloat() float64 { return a.f }

// AsDuration returns the integer value as a duration.
func (a Attr) AsDuration() time.Duration { return time.Duration(a.i) }

// Text renders the value as a string regardless of kind.
func (a Attr) Text() string {
	switch a.kind {
	case attrInt:
		return strconv.FormatInt(a.i, 10)
	case attrFloat:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	default:
		return a.s
	}
}

// SpanData is one finished span as stored in the recorder ring.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for a root span
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Attr returns the first attribute with the given key.
func (d SpanData) Attr(key string) (Attr, bool) {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// traceIDCounter mints one distinct trace id per recorder without a
// wall-clock or randomness dependency.
var traceIDCounter atomic.Uint64

// SpanRecorder is a lock-free bounded ring of finished spans. Writers claim
// a slot with one atomic add and publish with one atomic pointer store;
// Spans snapshots the ring without blocking them. When more spans finish
// than the ring holds, the oldest are overwritten.
type SpanRecorder struct {
	slots   []atomic.Pointer[SpanData]
	written atomic.Uint64 // total spans recorded (monotone)
	nextID  atomic.Uint64 // span-id allocator; ids start at 1
	traceID uint64
}

// DefaultSpanCapacity is the ring size NewSpanRecorder applies to
// non-positive capacities: enough for several full stream runs of slice
// spans while bounding memory to a few MB.
const DefaultSpanCapacity = 1 << 16

// NewSpanRecorder returns a recorder whose ring holds capacity finished
// spans (capacity ≤ 0 selects DefaultSpanCapacity).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRecorder{
		slots:   make([]atomic.Pointer[SpanData], capacity),
		traceID: traceIDCounter.Add(1),
	}
}

// Capacity reports the ring size (0 for a nil recorder).
func (r *SpanRecorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total reports how many spans have finished over the recorder's lifetime,
// including any the ring has since overwritten.
func (r *SpanRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.written.Load()
}

// TraceID returns the recorder's trace identifier (0 for nil).
func (r *SpanRecorder) TraceID() uint64 {
	if r == nil {
		return 0
	}
	return r.traceID
}

func (r *SpanRecorder) record(d *SpanData) {
	i := r.written.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(d)
}

// Spans snapshots the ring's finished spans, oldest first. Under concurrent
// writers the snapshot is a best-effort consistent view: each slot is read
// with one atomic load.
func (r *SpanRecorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	total := r.written.Load()
	n := uint64(len(r.slots))
	count := total
	start := uint64(0)
	if total > n {
		count = n
		start = total % n
	}
	out := make([]SpanData, 0, count)
	for i := uint64(0); i < count; i++ {
		if d := r.slots[(start+i)%n].Load(); d != nil {
			out = append(out, *d)
		}
	}
	return out
}

// Span is one in-flight span. A nil *Span is a valid no-op (the disabled
// path), so callers never guard. A Span is owned by the goroutine that
// started it; SetAttrs/End are not safe for concurrent use on one span.
type Span struct {
	rec    *SpanRecorder
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// ID returns the span id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// IDHex returns the span id as a 16-hex-digit string ("" for nil) — the
// cross-reference carried by structured log records.
func (s *Span) IDHex() string {
	if s == nil {
		return ""
	}
	return hexID(s.id)
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// StartChild starts a direct child span without threading a context — the
// allocation-free fast path for per-item spans inside hot loops (executor
// slices, DP rows). Returns nil when the receiver is nil.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		rec:    s.rec,
		id:     s.rec.nextID.Add(1),
		parent: s.id,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// End finishes the span and records it into the ring. Safe to call more
// than once; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.record(&SpanData{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    time.Now(),
		Attrs:  s.attrs,
	})
}

type recorderCtxKey struct{}
type spanCtxKey struct{}

// ContextWithRecorder arms a context for tracing: spans started under it
// record into r. A nil recorder returns ctx unchanged (tracing stays off).
func ContextWithRecorder(ctx context.Context, r *SpanRecorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderCtxKey{}, r)
}

// RecorderFromContext returns the recorder armed on ctx, or nil.
func RecorderFromContext(ctx context.Context) *SpanRecorder {
	r, _ := ctx.Value(recorderCtxKey{}).(*SpanRecorder)
	return r
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TracingEnabled reports whether spans started under ctx would record.
// Hot paths (the partition DP, the executor's candidate evaluations) guard
// with it so the disabled path never constructs the variadic attribute
// slice — StartSpan's own nil-recorder check runs after the call site has
// already allocated the attrs.
func TracingEnabled(ctx context.Context) bool {
	return SpanFromContext(ctx) != nil || RecorderFromContext(ctx) != nil
}

// StartSpan starts a span as a child of the context's active span (or as a
// root span when none is active) and returns a context carrying it. With no
// recorder armed on the context it returns (ctx, nil) — the disabled no-op
// path.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	var rec *SpanRecorder
	var parentID uint64
	if parent != nil {
		rec, parentID = parent.rec, parent.id
	} else {
		rec = RecorderFromContext(ctx)
	}
	if rec == nil {
		return ctx, nil
	}
	s := &Span{
		rec:    rec,
		id:     rec.nextID.Add(1),
		parent: parentID,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// hexID renders a 64-bit id as 16 lowercase hex digits (the OTLP span-id
// encoding).
func hexID(id uint64) string {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(id)
		id >>= 8
	}
	return hex.EncodeToString(b[:])
}
