package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNilSafety(t *testing.T) {
	// No recorder on the context: StartSpan returns a nil span and every
	// method on it must be a no-op.
	ctx, sp := StartSpan(context.Background(), "root", Int("k", 1))
	if sp != nil {
		t.Fatalf("StartSpan without a recorder returned %v, want nil", sp)
	}
	sp.SetAttrs(Str("a", "b"))
	sp.End()
	if id := sp.ID(); id != 0 {
		t.Errorf("nil span ID %d, want 0", id)
	}
	if h := sp.IDHex(); h != "" {
		t.Errorf("nil span IDHex %q, want empty", h)
	}
	if child := sp.StartChild("child"); child != nil {
		t.Errorf("nil span StartChild returned %v, want nil", child)
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Errorf("SpanFromContext after disabled StartSpan: %v, want nil", got)
	}
	var rec *SpanRecorder
	if rec.Capacity() != 0 || rec.Total() != 0 || rec.TraceID() != 0 || rec.Spans() != nil {
		t.Error("nil recorder accessors must report zero values")
	}
}

func TestSpanParentLinks(t *testing.T) {
	rec := NewSpanRecorder(16)
	ctx := ContextWithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	_, childA := StartSpan(ctx, "a")
	childB := root.StartChild("b", Int("n", 7))
	childB.End()
	childA.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent %d, want 0", byName["root"].Parent)
	}
	for _, name := range []string{"a", "b"} {
		if byName[name].Parent != byName["root"].ID {
			t.Errorf("%s parent %d, want root %d", name, byName[name].Parent, byName["root"].ID)
		}
	}
	if a, ok := byName["b"].Attr("n"); !ok || a.AsInt() != 7 {
		t.Errorf("b attr n = %v/%v, want 7", a, ok)
	}
	if byName["root"].End.Before(byName["root"].Start) {
		t.Error("root span ends before it starts")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	rec := NewSpanRecorder(8)
	ctx := ContextWithRecorder(context.Background(), rec)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	sp.End()
	if got := rec.Total(); got != 1 {
		t.Errorf("double End recorded %d spans, want 1", got)
	}
}

func TestSpanRingWrap(t *testing.T) {
	const capacity = 8
	rec := NewSpanRecorder(capacity)
	ctx := ContextWithRecorder(context.Background(), rec)
	_, root := StartSpan(ctx, "root")
	for i := 0; i < 20; i++ {
		c := root.StartChild("child", Int("i", int64(i)))
		c.End()
	}
	if got := rec.Total(); got != 20 {
		t.Fatalf("Total %d, want 20", got)
	}
	spans := rec.Spans()
	if len(spans) != capacity {
		t.Fatalf("snapshot holds %d spans, want the ring capacity %d", len(spans), capacity)
	}
	// Oldest-first: the survivors are children 12..19.
	for i, s := range spans {
		a, _ := s.Attr("i")
		if want := int64(20 - capacity + i); a.AsInt() != want {
			t.Errorf("slot %d holds child %d, want %d", i, a.AsInt(), want)
		}
	}
}

func TestSpanRecorderConcurrentWriters(t *testing.T) {
	rec := NewSpanRecorder(64)
	ctx := ContextWithRecorder(context.Background(), rec)
	_, root := StartSpan(ctx, "root")
	const writers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := root.StartChild("c")
				sp.End()
			}
		}()
	}
	// Snapshot while writers run: must not panic or block them.
	for i := 0; i < 50; i++ {
		rec.Spans()
	}
	wg.Wait()
	if got := rec.Total(); got != writers*each {
		t.Errorf("Total %d, want %d", got, writers*each)
	}
	ids := map[uint64]bool{}
	for _, s := range rec.Spans() {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d in snapshot", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestAttrAccessors(t *testing.T) {
	cases := []struct {
		attr Attr
		text string
	}{
		{Str("k", "v"), "v"},
		{Int("k", -42), "-42"},
		{Float("k", 1.5), "1.5"},
		{Dur("k", 3*time.Millisecond), "3000000"},
		{Bool("k", true), "1"},
		{Bool("k", false), "0"},
	}
	for i, c := range cases {
		if got := c.attr.Text(); got != c.text {
			t.Errorf("case %d: Text %q, want %q", i, got, c.text)
		}
	}
	if Dur("k", time.Second).AsDuration() != time.Second {
		t.Error("Dur does not round-trip through AsDuration")
	}
}

func TestSpanIDHex(t *testing.T) {
	rec := NewSpanRecorder(4)
	ctx := ContextWithRecorder(context.Background(), rec)
	_, sp := StartSpan(ctx, "s")
	h := sp.IDHex()
	if len(h) != 16 {
		t.Fatalf("IDHex %q has %d digits, want 16", h, len(h))
	}
	if h != hexID(sp.ID()) {
		t.Errorf("IDHex %q != hexID(ID) %q", h, hexID(sp.ID()))
	}
}

func TestWriteOTLPShape(t *testing.T) {
	rec := NewSpanRecorder(16)
	ctx := ContextWithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "run", Str("soc", "Kirin990"))
	_, child := StartSpan(ctx, "step", Int("n", 3), Float("f", 0.5))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteOTLP(&buf, rec, "testsvc"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("OTLP output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("want 1 resourceSpans / 1 scopeSpans, got %s", buf.String())
	}
	res := doc.ResourceSpans[0]
	if res.Resource.Attributes[0].Key != "service.name" ||
		res.Resource.Attributes[0].Value.StringValue != "testsvc" {
		t.Errorf("resource attributes %+v lack service.name=testsvc", res.Resource.Attributes)
	}
	spans := res.ScopeSpans[0].Spans
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			t.Errorf("span %s: traceId %q spanId %q, want 32/16 hex digits", s.Name, s.TraceID, s.SpanID)
		}
		switch s.Name {
		case "run":
			if s.ParentSpanID != "" {
				t.Errorf("root span has parentSpanId %q, want omitted", s.ParentSpanID)
			}
		case "step":
			if s.ParentSpanID == "" || s.ParentSpanID == strings.Repeat("0", 16) {
				t.Errorf("child span parentSpanId %q, want the root id", s.ParentSpanID)
			}
		}
	}
}
