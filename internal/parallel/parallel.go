// Package parallel provides the bounded, deterministic fan-out primitive the
// planner and baselines share. The contract that keeps the parallel planner
// byte-identical to the sequential one (DESIGN.md §6) lives here: work items
// are indexed, every worker writes only to its item's slot, and callers merge
// results in index order — never in completion order. Worker count is a pure
// throughput knob; it can never change an outcome.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism setting: values ≤ 0 mean "auto", i.e.
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (workers ≤ 0 auto-sizes; workers == 1 runs inline on the caller's
// goroutine, reproducing sequential execution exactly). Indices are claimed
// in ascending order. fn must confine its writes to data owned by index i.
// A panic in any fn is re-raised on the caller's goroutine after all workers
// stop.
func For(workers, n int, fn func(int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForErr is For with error-returning work. It returns the error of the
// lowest failing index — the same error a sequential loop would surface —
// regardless of completion order. Once an index fails, higher indices are
// skipped (best-effort short-circuit); an index is only ever skipped when a
// strictly lower index has failed, so the lowest failing index always runs
// and the returned error is deterministic.
func ForErr(workers, n int, fn func(int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var minFail atomic.Int64
	minFail.Store(int64(n)) // sentinel: no failure yet
	For(workers, n, func(i int) {
		if int64(i) > minFail.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			for {
				cur := minFail.Load()
				if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
	})
	if f := minFail.Load(); f < int64(n) {
		return errs[f]
	}
	return nil
}
