package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 500
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForWorkersOneRunsInOrder(t *testing.T) {
	var order []int
	For(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential mode ran out of order: %v", order)
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Fatal("For called fn with n=0")
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in worker did not propagate to caller")
		}
	}()
	For(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	fail := map[int]bool{13: true, 3: true, 97: true}
	for _, workers := range []int{1, 2, 8} {
		err := ForErr(workers, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: got %v, want fail-3", workers, err)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(8, 50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForErrSkipsOnlyAboveFailure(t *testing.T) {
	// Every index below the failing one must run even under heavy
	// contention — the determinism guarantee of the lowest-index rule.
	sentinel := errors.New("stop")
	for trial := 0; trial < 20; trial++ {
		var ran [40]atomic.Bool
		err := ForErr(8, 40, func(i int) error {
			ran[i].Store(true)
			if i == 20 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("got %v", err)
		}
		for i := 0; i <= 20; i++ {
			if !ran[i].Load() {
				t.Fatalf("trial %d: index %d below the failure was skipped", trial, i)
			}
		}
	}
}
