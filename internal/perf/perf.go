// Package perf is a synthetic Performance Monitoring Unit. The paper reads
// three perf events from the CPU PMU — Instructions Per Cycle, cache-miss
// rate and stalled-cycles-backend — and uses them as the feature vector X of
// the contention-intensity regression (Eq. 1). This package derives the same
// three counters from a model's layer mix and working-set behaviour on a
// given processor, preserving the property the regression depends on: all
// three correlate with the model's memory-traffic pressure.
package perf

import (
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Counters are the three PMU-derived features of Fig. 2(b).
type Counters struct {
	// IPC is instructions per cycle; higher means less external-memory
	// waiting and hence less interference imposed on co-runners.
	IPC float64
	// CacheMissRate is the fraction of cache accesses that miss and reach
	// the shared bus.
	CacheMissRate float64
	// StalledBackend is the fraction of cycles the backend stalls waiting
	// for resources.
	StalledBackend float64
}

// FeatureVector returns the counters as the regression feature slice
// {IPC, cache-miss rate, stalled-backend}.
func (c Counters) FeatureVector() []float64 {
	return []float64{c.IPC, c.CacheMissRate, c.StalledBackend}
}

// Synthesis coefficients. A fully compute-bound layer approaches ipcMax and
// the base miss/stall rates; a fully memory-bound layer approaches ipcMin
// and the peak rates. Values are anchored to the paper's observations: FC
// layers show 2–4× the cache misses of conv layers (Obs. 2); SqueezeNet and
// GoogLeNet rank at the top of the Fig. 2(b) demand ordering (Obs. 3).
const (
	ipcMax    = 3.2
	ipcMin    = 0.4
	missBase  = 0.02
	missPeak  = 0.55
	stallBase = 0.05
	stallPeak = 0.80
)

// layerMemoryPressure returns the fraction (0..1) of a layer's execution the
// memory system dominates on the processor: the time its effective bus
// traffic needs at solo bandwidth over the layer's execution time, capped
// at 1. This uses the same traffic model as the contention footprint, which
// is precisely why the three derived counters predict contention intensity
// (the correlation Eq. 1's regression exploits).
func layerMemoryPressure(p *soc.Processor, l model.Layer) float64 {
	t := p.LayerTime(l)
	if t == soc.InfDuration || t <= 0 {
		return 0
	}
	memSec := p.BusTrafficBytes(l) / (p.SoloBandwidthGBps * 1e9)
	pressure := memSec / t.Seconds()
	if pressure > 1 {
		pressure = 1
	}
	return pressure
}

// Profile synthesises the PMU counters of executing the whole model solo on
// the processor. Each layer contributes weighted by its execution time, the
// way a sampling PMU read over the full inference would.
func Profile(p *soc.Processor, m *model.Model) Counters {
	var totalTime, accIPC, accMiss, accStall float64
	for _, l := range m.Layers {
		t := p.LayerTime(l)
		if t == soc.InfDuration {
			continue // unsupported layers never execute here
		}
		sec := t.Seconds()
		mp := layerMemoryPressure(p, l)
		accIPC += sec * (ipcMax - (ipcMax-ipcMin)*mp)
		accMiss += sec * (missBase + (missPeak-missBase)*mp)
		accStall += sec * (stallBase + (stallPeak-stallBase)*mp)
		totalTime += sec
	}
	if totalTime == 0 {
		return Counters{IPC: ipcMax, CacheMissRate: missBase, StalledBackend: stallBase}
	}
	return Counters{
		IPC:            accIPC / totalTime,
		CacheMissRate:  accMiss / totalTime,
		StalledBackend: accStall / totalTime,
	}
}

// ProfileSlice synthesises the counters for layers [from, to] (inclusive).
func ProfileSlice(p *soc.Processor, m *model.Model, from, to int) Counters {
	if from < 0 || to >= len(m.Layers) || from > to {
		return Counters{IPC: ipcMax, CacheMissRate: missBase, StalledBackend: stallBase}
	}
	sub := &model.Model{Name: m.Name, Layers: m.Layers[from : to+1], InputBytes: m.Layers[from].InputBytes}
	return Profile(p, sub)
}
