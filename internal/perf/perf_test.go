package perf

import (
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

func bigCore(t *testing.T) *soc.Processor {
	t.Helper()
	k := soc.Kirin990()
	p := k.Processor("cpu-big")
	if p == nil {
		t.Fatal("Kirin990 missing cpu-big")
	}
	return p
}

func TestCountersInRange(t *testing.T) {
	p := bigCore(t)
	for _, m := range model.All() {
		c := Profile(p, m)
		if c.IPC < ipcMin || c.IPC > ipcMax {
			t.Errorf("%s: IPC %.2f outside [%g, %g]", m.Name, c.IPC, ipcMin, ipcMax)
		}
		if c.CacheMissRate < missBase || c.CacheMissRate > missPeak {
			t.Errorf("%s: miss rate %.2f outside [%g, %g]", m.Name, c.CacheMissRate, missBase, missPeak)
		}
		if c.StalledBackend < stallBase || c.StalledBackend > stallPeak {
			t.Errorf("%s: stall %.2f outside [%g, %g]", m.Name, c.StalledBackend, stallBase, stallPeak)
		}
	}
}

// TestCounterDirections verifies the qualitative relationships Fig. 2(b)
// relies on: memory-hungry models show lower IPC, higher miss and stall
// rates than compute-dense ones.
func TestCounterDirections(t *testing.T) {
	p := bigCore(t)
	hungry := Profile(p, model.MustByName(model.MobileNetV2)) // light, bandwidth-bound
	dense := Profile(p, model.MustByName(model.ViT))          // big matmuls, compute-dense here
	if hungry.IPC >= dense.IPC {
		t.Errorf("IPC(MobileNetV2)=%.2f not below IPC(ViT)=%.2f", hungry.IPC, dense.IPC)
	}
	if hungry.CacheMissRate <= dense.CacheMissRate {
		t.Errorf("miss(MobileNetV2)=%.2f not above miss(ViT)=%.2f", hungry.CacheMissRate, dense.CacheMissRate)
	}
	if hungry.StalledBackend <= dense.StalledBackend {
		t.Errorf("stall(MobileNetV2)=%.2f not above stall(ViT)=%.2f", hungry.StalledBackend, dense.StalledBackend)
	}
}

// TestCountersCorrelateWithEachOther: across the zoo, IPC must anti-correlate
// with the stall fraction — both are functions of memory pressure, which is
// what lets a linear regression on them predict contention intensity.
func TestCountersAntiCorrelate(t *testing.T) {
	p := bigCore(t)
	var ipcs, stalls []float64
	for _, m := range model.All() {
		c := Profile(p, m)
		ipcs = append(ipcs, c.IPC)
		stalls = append(stalls, c.StalledBackend)
	}
	if r := pearson(ipcs, stalls); r > -0.9 {
		t.Errorf("corr(IPC, stall) = %.3f, want strong anti-correlation", r)
	}
}

func TestFeatureVector(t *testing.T) {
	c := Counters{IPC: 2.5, CacheMissRate: 0.1, StalledBackend: 0.3}
	v := c.FeatureVector()
	if len(v) != 3 || v[0] != 2.5 || v[1] != 0.1 || v[2] != 0.3 {
		t.Errorf("FeatureVector() = %v", v)
	}
}

func TestProfileSliceBounds(t *testing.T) {
	p := bigCore(t)
	m := model.MustByName(model.ResNet50)
	c := ProfileSlice(p, m, -1, 5)
	if c.IPC != ipcMax {
		t.Errorf("out-of-range slice IPC = %.2f, want idle default %g", c.IPC, ipcMax)
	}
	full := Profile(p, m)
	whole := ProfileSlice(p, m, 0, m.NumLayers()-1)
	if whole != full {
		t.Errorf("ProfileSlice(full) = %+v != Profile %+v", whole, full)
	}
}

func TestProfileSkipsUnsupported(t *testing.T) {
	k := soc.Kirin990()
	npu := k.Processor("npu")
	// BERT on the NPU: unsupported layers are skipped; the remaining
	// (supported) layers still produce in-range counters.
	c := Profile(npu, model.MustByName(model.BERT))
	if c.IPC < ipcMin || c.IPC > ipcMax {
		t.Errorf("IPC %.2f outside range for partially-supported profile", c.IPC)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (sqrt(vx) * sqrt(vy))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}
