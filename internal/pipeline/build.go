package pipeline

import (
	"fmt"

	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Cuts are the K+1 stage boundaries of one request: stage k runs layers
// [Cuts[k], Cuts[k+1]-1]. Cuts[0] = 0 and Cuts[K] = n; equal neighbours mean
// an empty (skipped) stage. This is the paper's partition
// P = {p_1, …, p_{K-1}} (Definition 1) with the outer boundaries made
// explicit.
type Cuts []int

// RangesOf converts boundaries into per-stage layer ranges.
func (c Cuts) RangesOf() []LayerRange {
	out := make([]LayerRange, len(c)-1)
	for k := 0; k+1 < len(c); k++ {
		out[k] = LayerRange{From: c[k], To: c[k+1] - 1}
	}
	return out
}

// ValidCuts reports whether c is a well-formed boundary vector for a model
// with n layers on a K-stage pipeline.
func ValidCuts(c Cuts, n, k int) bool {
	if len(c) != k+1 || c[0] != 0 || c[k] != n {
		return false
	}
	for i := 1; i <= k; i++ {
		if c[i] < c[i-1] {
			return false
		}
	}
	return true
}

// FromCuts assembles a schedule from per-request stage boundaries. cuts[i]
// must be a valid boundary vector for profiles[i].
func FromCuts(s *soc.SoC, profiles []*profile.Profile, cuts []Cuts) (*Schedule, error) {
	if len(profiles) != len(cuts) {
		return nil, fmt.Errorf("pipeline: %d profiles, %d cut vectors", len(profiles), len(cuts))
	}
	k := s.NumProcessors()
	sched := &Schedule{
		SoC:      s,
		Profiles: profiles,
		Stages:   make([][]LayerRange, len(profiles)),
	}
	for i, c := range cuts {
		if !ValidCuts(c, profiles[i].NumLayers(), k) {
			return nil, fmt.Errorf("pipeline: request %d has invalid cuts %v", i, []int(c))
		}
		sched.Stages[i] = c.RangesOf()
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}

// SingleProcessor returns the boundary vector that places all n layers on
// the 0-based stage k of a K-stage pipeline (all other stages empty).
func SingleProcessor(n, k, stages int) Cuts {
	c := make(Cuts, stages+1)
	for s := 1; s <= stages; s++ {
		if s > k {
			c[s] = n
		}
	}
	return c
}
