package pipeline

import (
	"context"
	"errors"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// TestExecuteContextCancelled: a cancelled context aborts the executor at
// the next virtual-clock advance with an error wrapping context.Canceled; a
// live context reproduces Execute exactly.
func TestExecuteContextCancelled(t *testing.T) {
	s := soc.Kirin990()
	p, err := profile.New(s, model.MustByName(model.ResNet50))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := FromCuts(s, []*profile.Profile{p}, []Cuts{SingleProcessor(p.NumLayers(), 1, s.NumProcessors())})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, sched, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecuteContext error %v does not wrap context.Canceled", err)
	}
	plain, err := Execute(sched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	live, err := ExecuteContext(context.Background(), sched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != live.Makespan {
		t.Errorf("context and context-free executions diverge: %v vs %v", plain.Makespan, live.Makespan)
	}
}
