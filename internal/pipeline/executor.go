package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/soc"
)

// Options configure the executor.
type Options struct {
	// Contention applies the shared-bus slowdown model to co-running
	// slices. Disabling it yields the idealised no-interference execution
	// the paper's analytic bubble objective assumes.
	Contention bool
	// EnforceMemory gates request admission on the Eq. (6) capacity
	// constraint: a request's weights and activations stay resident from
	// its first slice's start to its last slice's end.
	EnforceMemory bool
	// SampleMemory records a memory/bus-demand trace (Fig. 9).
	SampleMemory bool
	// Metrics, when set, receives execution observability at the end of
	// every successful run: executor_runs_total, executor_slices_total,
	// executor_admission_stalls_total, the executor_slowdown distribution
	// (per-slice dilation vs. the solo estimate), executor_bubble_seconds,
	// executor_makespan_seconds and the executor_peak_memory_bytes
	// high-water gauge. Leave nil for planner-internal candidate
	// evaluations so only real executions are counted.
	Metrics *obs.Registry
	// Logger, when set, receives structured records for execution-side state
	// transitions (admission stalls, at debug level). Records carry the
	// active execute span id under the "span" key when tracing is armed.
	// Leave nil for planner-internal candidate evaluations.
	Logger *slog.Logger
}

// DefaultOptions enable contention and the memory constraint.
func DefaultOptions() Options {
	return Options{Contention: true, EnforceMemory: true}
}

// SliceExec records one executed slice in the timeline.
type SliceExec struct {
	// Request and Stage identify the slice.
	Request, Stage int
	// Start and End are virtual times relative to execution start.
	Start, End time.Duration
	// Slowdown is the average dilation the slice suffered (1 = none).
	Slowdown float64
}

// MemSample is one point of the Fig. 9 trace.
type MemSample struct {
	// At is the virtual timestamp.
	At time.Duration
	// UsedBytes is resident inference memory at that instant.
	UsedBytes int64
	// DemandGBps is the instantaneous shared-bus demand.
	DemandGBps float64
}

// Result is the outcome of executing a schedule.
type Result struct {
	// Makespan is the completion time of the last request — the paper's
	// "Latency" axis in Fig. 7.
	Makespan time.Duration
	// Completions[i] is request i's finish time.
	Completions []time.Duration
	// Timeline lists every executed slice in start order.
	Timeline []SliceExec
	// BubbleTime is the measured processor idle time between each
	// processor's first and last activity, the executed counterpart of
	// Eq. (3).
	BubbleTime time.Duration
	// PeakMemoryBytes is the maximum resident memory.
	PeakMemoryBytes int64
	// AdmissionStalls counts distinct admission stall episodes: a request
	// entering the waiting-at-admission state (blocked by the Eq. (6)
	// memory constraint, directly or through in-order admission) counts
	// once per contiguous wait, not once per scheduler wake-up it sits
	// through. Because admission is monotone within a run, each request
	// contributes at most one episode.
	AdmissionStalls int
	// MemTrace holds the sampled memory/demand trace when enabled.
	MemTrace []MemSample
	// EnergyJoules is the total energy of the run: every processor's busy
	// time at its busy power plus its remaining makespan at idle power
	// (energy-model extension; see soc.Power).
	EnergyJoules float64
}

// EnergyPerInference returns joules per completed request.
func (r *Result) EnergyPerInference() float64 {
	if len(r.Completions) == 0 {
		return 0
	}
	return r.EnergyJoules / float64(len(r.Completions))
}

// Throughput returns completed inferences per second (Fig. 7's throughput
// metric, #models / latency).
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Completions)) / r.Makespan.Seconds()
}

// execState tracks one in-flight slice.
type execState struct {
	req, stage int
	remaining  float64 // solo seconds of work left
	fp         contention.Footprint
	start      time.Duration
	soloSec    float64
}

// Execute runs the schedule on the executor's virtual clock and returns the
// measured result. The schedule must Validate.
//
// The executor implements the precedence constraints of Eq. (8): request i's
// stage k starts when stage k-1 of request i has finished AND processor k
// has finished request i-1's stage k. Under Options.Contention, every
// running slice's progress rate is 1/slowdown, recomputed whenever the
// co-running set changes, so the T^co term of Eq. (2) emerges from overlap
// rather than being a static additive guess.
func Execute(s *Schedule, opts Options) (*Result, error) {
	return ExecuteContext(context.Background(), s, opts)
}

// ExecuteContext is Execute under a cancellable context: cancellation is
// checked at every virtual-clock advance, so a run aborts between slice
// completions and returns an error wrapping ctx.Err().
//
// The simulation state lives in a pooled execScratch (see scratch.go), so a
// steady-state call allocates only the Result and the slices it returns;
// the per-step contention factors reuse one demands buffer and accumulate
// each victim's skip-self pressure sum in the original co-runner order,
// keeping every float bit-identical to the unpooled reference executor
// (pinned by the differential and fuzz suites).
func ExecuteContext(ctx context.Context, s *Schedule, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, k := s.NumRequests(), s.NumStages()
	if m == 0 {
		return &Result{}, nil
	}

	// One span per execution, one child per completed slice. The
	// TracingEnabled guard keeps the disabled path — including the
	// planner's many candidate evaluations — from allocating the attribute
	// slice; every use below is nil-safe.
	var execSpan *obs.Span
	if obs.TracingEnabled(ctx) {
		ctx, execSpan = obs.StartSpan(ctx, "execute",
			obs.Int("requests", int64(m)), obs.Int("stages", int64(k)))
	}
	defer execSpan.End()

	// The non-empty slice count exactly sizes the execState slab and the
	// Timeline, and bounds the MemTrace (each slice starts and completes
	// exactly once).
	slices := 0
	for i := 0; i < m; i++ {
		for st := 0; st < k; st++ {
			if !s.Stages[i][st].Empty() {
				slices++
			}
		}
	}

	sc := acquireScratch(m, k, slices)
	defer releaseScratch(sc)

	e := execRun{
		ctx: ctx, s: s, opts: opts, sc: sc, span: execSpan,
		m: m, k: k,
		busGBps: s.SoC.EffectiveBusBandwidthGBps(),
		res: &Result{
			Completions: make([]time.Duration, m),
			Timeline:    make([]SliceExec, 0, slices),
		},
		running: sc.running,
		still:   sc.still,
	}
	for i := 0; i < m; i++ {
		sc.memOf[i] = requestMemory(s, i)
	}
	// Seed each request's frontier at its first non-empty stage.
	for i := 0; i < m; i++ {
		st := 0
		for st < k && s.Stages[i][st].Empty() {
			st++
		}
		sc.pendFrom[i] = st
	}
	if opts.SampleMemory {
		// Each clock step completes at least one slice and records at most
		// two samples (the completion pass plus a successful tryStart), and
		// the initial fill records one more — so 2·slices+1 bounds the
		// trace and the preallocation makes it append-only with no
		// amortised regrowth.
		e.res.MemTrace = make([]MemSample, 0, 2*slices+1)
	}

	err := e.run()
	// The running/still buffers swap roles every step; hand whichever two
	// arrays they ended up as back to the scratch so their capacity is
	// retained across the pool.
	sc.running, sc.still = e.running[:0], e.still[:0]
	if err != nil {
		return nil, err
	}
	publishExecMetrics(opts.Metrics, e.res)
	return e.res, nil
}

// execRun is one execution's live state. Bundling it in a struct keeps the
// hot loops as methods over one value instead of a web of capturing
// closures, each of which would heap-allocate its environment per call.
type execRun struct {
	ctx     context.Context
	s       *Schedule
	opts    Options
	sc      *execScratch
	span    *obs.Span
	res     *Result
	m, k    int
	busGBps float64
	memUse  int64
	now     time.Duration
	running []*execState
	still   []*execState
	nStates int // next free slot in the scratch execState slab
}

// done reports whether request i has completed every non-empty stage: its
// frontier has advanced past the last stage.
func (e *execRun) done(i int) bool { return e.sc.pendFrom[i] >= e.k }

// advanceFrontier moves request i's frontier past the just-completed stage
// st to the next non-empty pending stage. Stages of one request complete in
// order (a stage starts only when every earlier non-empty stage is done),
// so st is always the current frontier.
func (e *execRun) advanceFrontier(i, st int) {
	next := st + 1
	for next < e.k && e.s.Stages[i][next].Empty() {
		next++
	}
	e.sc.pendFrom[i] = next
}

func (e *execRun) admit(i int) bool {
	sc := e.sc
	if sc.admitted[i] {
		return true
	}
	// In-order admission: all earlier requests must be admitted first.
	if i > 0 && !sc.admitted[i-1] {
		return false
	}
	if e.opts.EnforceMemory && e.memUse+sc.memOf[i] > e.s.SoC.MemoryCapacityBytes && e.memUse > 0 {
		return false
	}
	sc.admitted[i] = true
	e.memUse += sc.memOf[i]
	if e.memUse > e.res.PeakMemoryBytes {
		e.res.PeakMemoryBytes = e.memUse
	}
	return true
}

func (e *execRun) finishRequest(i int, at time.Duration) {
	e.sc.finishedReq[i] = true
	e.res.Completions[i] = at
	e.memUse -= e.sc.memOf[i]
}

func (e *execRun) sample() {
	if !e.opts.SampleMemory {
		return
	}
	var demand float64
	for _, r := range e.running {
		demand += r.fp.DemandGBps
	}
	e.res.MemTrace = append(e.res.MemTrace, MemSample{At: e.now, UsedBytes: e.memUse, DemandGBps: demand})
}

// tryStart launches every ready slice; returns whether any started.
func (e *execRun) tryStart() bool {
	s, sc := e.s, e.sc
	started := false
	for st := 0; st < e.k; st++ {
		for !sc.busy[st] && sc.nextReq[st] < e.m {
			i := sc.nextReq[st]
			r := s.Stages[i][st]
			if r.Empty() {
				// Empty stages take no processor time and never gate
				// dependencies (the frontier skips them).
				sc.nextReq[st]++
				continue
			}
			// Dependency check: every earlier non-empty stage of request i
			// done ⇔ the frontier has reached (or passed) st.
			if sc.pendFrom[i] < st {
				break
			}
			if !e.admit(i) {
				if !sc.stalled[i] {
					sc.stalled[i] = true
					e.res.AdmissionStalls++
					if e.opts.Logger != nil {
						e.opts.Logger.Log(e.ctx, slog.LevelDebug, "admission stall",
							"request", i, "stage", st, "vt", e.now, "span", e.span.IDHex())
					}
				}
				break
			}
			dur := s.StageTime(i, st)
			if dur == soc.InfDuration {
				// Validate precludes this; guard anyway.
				break
			}
			es := &sc.states[e.nStates]
			e.nStates++
			es.req, es.stage = i, st
			es.remaining = dur.Seconds()
			es.soloSec = es.remaining
			es.fp = s.Profiles[i].Footprint(st, r.From, r.To)
			es.start = e.now
			e.running = append(e.running, es)
			sc.busy[st] = true
			sc.nextReq[st]++
			started = true
		}
	}
	if started {
		e.sample()
	}
	return started
}

// stepFactors fills sc.factors with each running slice's dilation for this
// clock step and returns the index and dilated time of the earliest
// completion. The demands buffer is filled once per step; each victim's
// pressure is then summed skipping itself in running order — the exact
// summation order of the original per-slice []Footprint construction, which
// is load-bearing: float addition is order-sensitive, and byte-identity
// with the unpooled reference depends on it.
func (e *execRun) stepFactors() (best int, bestDt float64) {
	sc, n := e.sc, len(e.running)
	best, bestDt = -1, math.Inf(1)
	contended := e.opts.Contention && e.busGBps > 0
	if contended {
		for idx, es := range e.running {
			sc.demands[idx] = es.fp.DemandGBps
		}
	}
	for idx, es := range e.running {
		f := 1.0
		if contended && es.fp.Sensitivity > 0 {
			var pressure float64
			for j := 0; j < n; j++ {
				if j != idx {
					pressure += sc.demands[j] / e.busGBps
				}
			}
			f = contention.SlowdownFromPressure(e.busGBps, es.fp, pressure)
		}
		sc.factors[idx] = f
		dt := es.remaining * f
		if dt < bestDt {
			bestDt = dt
			best = idx
		}
	}
	return best, bestDt
}

// run drives the virtual clock to completion and finalises the Result.
func (e *execRun) run() error {
	s, sc := e.s, e.sc
	e.tryStart()

	for len(e.running) > 0 {
		if err := e.ctx.Err(); err != nil {
			return fmt.Errorf("pipeline: execution cancelled: %w", err)
		}
		// Earliest completion under current dilation factors.
		best, bestDt := e.stepFactors()
		if best < 0 || math.IsInf(bestDt, 1) {
			return errors.New("pipeline: executor stuck with no finishable slice")
		}
		e.now += time.Duration(bestDt * float64(time.Second))
		if e.opts.Contention {
			for idx, es := range e.running {
				es.remaining -= bestDt / sc.factors[idx]
				if es.remaining < 1e-12 {
					es.remaining = 0
				}
			}
		} else {
			// Contention disabled: every factor is exactly 1, so the
			// division (x/1 == x bit-exactly) is skipped wholesale.
			for _, es := range e.running {
				es.remaining -= bestDt
				if es.remaining < 1e-12 {
					es.remaining = 0
				}
			}
		}
		// Complete every slice that reached zero (ties complete together);
		// survivors move to the still buffer, then the two swap roles.
		e.still = e.still[:0]
		for _, es := range e.running {
			if es.remaining > 0 {
				e.still = append(e.still, es)
				continue
			}
			// The completion matrix stays the canonical record (the hot-path
			// queries read the O(1) pendFrom frontier instead).
			sc.stageDone[es.req*e.k+es.stage] = e.now
			sc.busy[es.stage] = false
			slow := 1.0
			if es.soloSec > 0 {
				slow = (e.now - es.start).Seconds() / es.soloSec
			}
			e.res.Timeline = append(e.res.Timeline, SliceExec{
				Request: es.req, Stage: es.stage,
				Start: es.start, End: e.now, Slowdown: slow,
			})
			if e.span != nil {
				lr := s.Stages[es.req][es.stage]
				sp := e.span.StartChild("slice",
					obs.Int("request", int64(es.req)),
					obs.Int("stage", int64(es.stage)),
					obs.Str("proc", s.SoC.Processors[es.stage].ID),
					obs.Str("model", s.Profiles[es.req].Model().Name),
					obs.Int("layers_from", int64(lr.From)),
					obs.Int("layers_to", int64(lr.To)),
					obs.Float("slowdown", slow),
					obs.Dur("vt_start", es.start),
					obs.Dur("vt_end", e.now))
				sp.End()
			}
			e.advanceFrontier(es.req, es.stage)
			if e.done(es.req) && !sc.finishedReq[es.req] {
				e.finishRequest(es.req, e.now)
			}
		}
		e.running, e.still = e.still, e.running
		e.sample()
		e.tryStart()
	}

	// Any request not yet finished means a scheduling deadlock.
	for i := 0; i < e.m; i++ {
		if !sc.finishedReq[i] {
			return fmt.Errorf("pipeline: request %d never completed (deadlock)", i)
		}
	}

	e.res.Makespan = e.now
	if e.span != nil {
		e.span.SetAttrs(obs.Dur("vt_makespan", e.now), obs.Int("slices", int64(len(e.res.Timeline))))
	}
	e.res.BubbleTime = measureBubbles(e.res.Timeline, e.k, sc)
	e.res.EnergyJoules = measureEnergy(s.SoC, e.res.Timeline, e.now, sc)
	res := e.res
	sort.Slice(res.Timeline, func(a, b int) bool {
		if res.Timeline[a].Start != res.Timeline[b].Start {
			return res.Timeline[a].Start < res.Timeline[b].Start
		}
		return res.Timeline[a].Stage < res.Timeline[b].Stage
	})
	return nil
}

// publishExecMetrics folds one successful run into the registry. The nil
// check keeps planner-internal candidate evaluations (which run Execute
// thousands of times with no registry) entirely free of metric writes.
func publishExecMetrics(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("executor_runs_total").Inc()
	reg.Counter("executor_slices_total").Add(uint64(len(res.Timeline)))
	reg.Counter("executor_admission_stalls_total").Add(uint64(res.AdmissionStalls))
	slow := reg.Histogram("executor_slowdown", obs.SlowdownBuckets())
	for _, e := range res.Timeline {
		slow.Observe(e.Slowdown)
	}
	reg.Histogram("executor_bubble_seconds", obs.LatencyBuckets()).ObserveDuration(res.BubbleTime)
	reg.Histogram("executor_makespan_seconds", obs.LatencyBuckets()).ObserveDuration(res.Makespan)
	reg.Gauge("executor_peak_memory_bytes").Max(float64(res.PeakMemoryBytes))
}

// requestMemory returns the resident bytes of request i across its slices.
func requestMemory(s *Schedule, i int) int64 {
	var total int64
	for st := 0; st < s.NumStages(); st++ {
		r := s.Stages[i][st]
		if r.Empty() {
			continue
		}
		total += s.Profiles[i].MemoryBytes(r.From, r.To)
	}
	return total
}

// measureEnergy prices the run: the timeline's per-processor busy profile
// rolled up through the SoC's energy model (busy time at busy power, the
// rest of the makespan at idle power; see soc.SoC.EnergyRollup). The busy
// accumulator reuses scratch instead of allocating per call.
func measureEnergy(s *soc.SoC, timeline []SliceExec, makespan time.Duration, sc *execScratch) float64 {
	busy := sc.busyDur
	for i := range busy {
		busy[i] = 0
	}
	for _, e := range timeline {
		busy[e.Stage] += e.End - e.Start
	}
	return s.EnergyRollup(busy, makespan)
}

// measureBubbles sums each busy processor's idle gaps between its first and
// last activity — the executed realisation of the Eq. (3) bubbles. It runs
// in one pass over the pre-sort timeline: each processor executes serially,
// so its slices appear in start order already and a per-stage cursor finds
// every gap without materialising (or sorting) per-stage span lists. The
// duration sums are integer arithmetic, so the total is identical to the
// sort-based reference accounting.
func measureBubbles(timeline []SliceExec, stages int, sc *execScratch) time.Duration {
	lastEnd, started := sc.lastEnd, sc.started
	for st := 0; st < stages; st++ {
		lastEnd[st] = 0
		started[st] = false
	}
	var total time.Duration
	for _, e := range timeline {
		if started[e.Stage] && e.Start > lastEnd[e.Stage] {
			total += e.Start - lastEnd[e.Stage]
		}
		started[e.Stage] = true
		if e.End > lastEnd[e.Stage] {
			lastEnd[e.Stage] = e.End
		}
	}
	return total
}
