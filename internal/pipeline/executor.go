package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/soc"
)

// Options configure the executor.
type Options struct {
	// Contention applies the shared-bus slowdown model to co-running
	// slices. Disabling it yields the idealised no-interference execution
	// the paper's analytic bubble objective assumes.
	Contention bool
	// EnforceMemory gates request admission on the Eq. (6) capacity
	// constraint: a request's weights and activations stay resident from
	// its first slice's start to its last slice's end.
	EnforceMemory bool
	// SampleMemory records a memory/bus-demand trace (Fig. 9).
	SampleMemory bool
	// Metrics, when set, receives execution observability at the end of
	// every successful run: executor_runs_total, executor_slices_total,
	// executor_admission_stalls_total, the executor_slowdown distribution
	// (per-slice dilation vs. the solo estimate), executor_bubble_seconds,
	// executor_makespan_seconds and the executor_peak_memory_bytes
	// high-water gauge. Leave nil for planner-internal candidate
	// evaluations so only real executions are counted.
	Metrics *obs.Registry
	// Logger, when set, receives structured records for execution-side state
	// transitions (admission stalls, at debug level). Records carry the
	// active execute span id under the "span" key when tracing is armed.
	// Leave nil for planner-internal candidate evaluations.
	Logger *slog.Logger
}

// DefaultOptions enable contention and the memory constraint.
func DefaultOptions() Options {
	return Options{Contention: true, EnforceMemory: true}
}

// SliceExec records one executed slice in the timeline.
type SliceExec struct {
	// Request and Stage identify the slice.
	Request, Stage int
	// Start and End are virtual times relative to execution start.
	Start, End time.Duration
	// Slowdown is the average dilation the slice suffered (1 = none).
	Slowdown float64
}

// MemSample is one point of the Fig. 9 trace.
type MemSample struct {
	// At is the virtual timestamp.
	At time.Duration
	// UsedBytes is resident inference memory at that instant.
	UsedBytes int64
	// DemandGBps is the instantaneous shared-bus demand.
	DemandGBps float64
}

// Result is the outcome of executing a schedule.
type Result struct {
	// Makespan is the completion time of the last request — the paper's
	// "Latency" axis in Fig. 7.
	Makespan time.Duration
	// Completions[i] is request i's finish time.
	Completions []time.Duration
	// Timeline lists every executed slice in start order.
	Timeline []SliceExec
	// BubbleTime is the measured processor idle time between each
	// processor's first and last activity, the executed counterpart of
	// Eq. (3).
	BubbleTime time.Duration
	// PeakMemoryBytes is the maximum resident memory.
	PeakMemoryBytes int64
	// AdmissionStalls counts distinct admission stall episodes: a request
	// entering the waiting-at-admission state (blocked by the Eq. (6)
	// memory constraint, directly or through in-order admission) counts
	// once per contiguous wait, not once per scheduler wake-up it sits
	// through. Because admission is monotone within a run, each request
	// contributes at most one episode.
	AdmissionStalls int
	// MemTrace holds the sampled memory/demand trace when enabled.
	MemTrace []MemSample
	// EnergyJoules is the total energy of the run: every processor's busy
	// time at its busy power plus its remaining makespan at idle power
	// (energy-model extension; see soc.Power).
	EnergyJoules float64
}

// EnergyPerInference returns joules per completed request.
func (r *Result) EnergyPerInference() float64 {
	if len(r.Completions) == 0 {
		return 0
	}
	return r.EnergyJoules / float64(len(r.Completions))
}

// Throughput returns completed inferences per second (Fig. 7's throughput
// metric, #models / latency).
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Completions)) / r.Makespan.Seconds()
}

// execState tracks one in-flight slice.
type execState struct {
	req, stage int
	remaining  float64 // solo seconds of work left
	fp         contention.Footprint
	start      time.Duration
	soloSec    float64
}

// Execute runs the schedule on the executor's virtual clock and returns the
// measured result. The schedule must Validate.
//
// The executor implements the precedence constraints of Eq. (8): request i's
// stage k starts when stage k-1 of request i has finished AND processor k
// has finished request i-1's stage k. Under Options.Contention, every
// running slice's progress rate is 1/slowdown, recomputed whenever the
// co-running set changes, so the T^co term of Eq. (2) emerges from overlap
// rather than being a static additive guess.
func Execute(s *Schedule, opts Options) (*Result, error) {
	return ExecuteContext(context.Background(), s, opts)
}

// ExecuteContext is Execute under a cancellable context: cancellation is
// checked at every virtual-clock advance, so a run aborts between slice
// completions and returns an error wrapping ctx.Err().
func ExecuteContext(ctx context.Context, s *Schedule, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, k := s.NumRequests(), s.NumStages()
	if m == 0 {
		return &Result{}, nil
	}

	// One span per execution, one child per completed slice. The
	// TracingEnabled guard keeps the disabled path — including the
	// planner's many candidate evaluations — from allocating the attribute
	// slice; every use below is nil-safe.
	var execSpan *obs.Span
	if obs.TracingEnabled(ctx) {
		ctx, execSpan = obs.StartSpan(ctx, "execute",
			obs.Int("requests", int64(m)), obs.Int("stages", int64(k)))
	}
	defer execSpan.End()

	// stageDone[i][stage] = completion time, or -1 if pending.
	stageDone := make([][]time.Duration, m)
	for i := range stageDone {
		stageDone[i] = make([]time.Duration, k)
		for j := range stageDone[i] {
			stageDone[i][j] = -1
		}
	}
	// nextReq[stage] is the request index the processor must serve next
	// (in-order per stage).
	nextReq := make([]int, k)
	busy := make([]bool, k)
	admitted := make([]bool, m)
	// stalled[i] marks request i as inside an admission stall episode, so
	// repeated admission failures across clock advances count one stall.
	stalled := make([]bool, m)
	finishedReq := make([]bool, m)
	memUse := int64(0)
	memOf := make([]int64, m)
	for i := 0; i < m; i++ {
		memOf[i] = requestMemory(s, i)
	}

	res := &Result{Completions: make([]time.Duration, m)}
	var running []*execState
	now := time.Duration(0)

	// firstPendingStage returns the first non-empty stage of request i that
	// is not yet done, and whether all stages are done.
	firstPendingStage := func(i int) (int, bool) {
		for st := 0; st < k; st++ {
			if s.Stages[i][st].Empty() {
				continue
			}
			if stageDone[i][st] < 0 {
				return st, false
			}
		}
		return 0, true
	}

	// depSatisfied reports whether request i's stage st may start now.
	depSatisfied := func(i, st int) bool {
		// All earlier non-empty stages of request i done.
		for p := 0; p < st; p++ {
			if !s.Stages[i][p].Empty() && stageDone[i][p] < 0 {
				return false
			}
		}
		return true
	}

	admit := func(i int) bool {
		if admitted[i] {
			return true
		}
		// In-order admission: all earlier requests must be admitted first.
		if i > 0 && !admitted[i-1] {
			return false
		}
		if opts.EnforceMemory && memUse+memOf[i] > s.SoC.MemoryCapacityBytes && memUse > 0 {
			return false
		}
		admitted[i] = true
		memUse += memOf[i]
		if memUse > res.PeakMemoryBytes {
			res.PeakMemoryBytes = memUse
		}
		return true
	}

	finishRequest := func(i int, at time.Duration) {
		finishedReq[i] = true
		res.Completions[i] = at
		memUse -= memOf[i]
	}

	sample := func() {
		if !opts.SampleMemory {
			return
		}
		var demand float64
		for _, r := range running {
			demand += r.fp.DemandGBps
		}
		res.MemTrace = append(res.MemTrace, MemSample{At: now, UsedBytes: memUse, DemandGBps: demand})
	}

	// tryStart launches every ready slice; returns whether any started.
	tryStart := func() bool {
		started := false
		for st := 0; st < k; st++ {
			for !busy[st] && nextReq[st] < m {
				i := nextReq[st]
				r := s.Stages[i][st]
				if r.Empty() {
					// Empty stages take no processor time and never gate
					// dependencies (depSatisfied skips them).
					nextReq[st]++
					continue
				}
				if !depSatisfied(i, st) {
					break
				}
				if !admit(i) {
					if !stalled[i] {
						stalled[i] = true
						res.AdmissionStalls++
						if opts.Logger != nil {
							opts.Logger.Log(ctx, slog.LevelDebug, "admission stall",
								"request", i, "stage", st, "vt", now, "span", execSpan.IDHex())
						}
					}
					break
				}
				dur := s.StageTime(i, st)
				if dur == soc.InfDuration {
					// Validate precludes this; guard anyway.
					break
				}
				es := &execState{
					req: i, stage: st,
					remaining: dur.Seconds(),
					soloSec:   dur.Seconds(),
					fp:        s.Profiles[i].Footprint(st, r.From, r.To),
					start:     now,
				}
				running = append(running, es)
				busy[st] = true
				nextReq[st]++
				started = true
			}
		}
		if started {
			sample()
		}
		return started
	}

	factorOf := func(es *execState) float64 {
		if !opts.Contention {
			return 1
		}
		others := make([]contention.Footprint, 0, len(running)-1)
		for _, o := range running {
			if o != es {
				others = append(others, o.fp)
			}
		}
		return contention.Slowdown(s.SoC.EffectiveBusBandwidthGBps(), es.fp, others)
	}

	tryStart()

	for len(running) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: execution cancelled: %w", err)
		}
		// Earliest completion under current dilation factors.
		best := -1
		bestDt := math.Inf(1)
		factors := make([]float64, len(running))
		for idx, es := range running {
			f := factorOf(es)
			factors[idx] = f
			dt := es.remaining * f
			if dt < bestDt {
				bestDt = dt
				best = idx
			}
		}
		if best < 0 || math.IsInf(bestDt, 1) {
			return nil, errors.New("pipeline: executor stuck with no finishable slice")
		}
		now += time.Duration(bestDt * float64(time.Second))
		for idx, es := range running {
			es.remaining -= bestDt / factors[idx]
			if es.remaining < 1e-12 {
				es.remaining = 0
			}
		}
		// Complete every slice that reached zero (ties complete together).
		var still []*execState
		for _, es := range running {
			if es.remaining > 0 {
				still = append(still, es)
				continue
			}
			stageDone[es.req][es.stage] = now
			busy[es.stage] = false
			slow := 1.0
			if es.soloSec > 0 {
				slow = (now - es.start).Seconds() / es.soloSec
			}
			res.Timeline = append(res.Timeline, SliceExec{
				Request: es.req, Stage: es.stage,
				Start: es.start, End: now, Slowdown: slow,
			})
			if execSpan != nil {
				lr := s.Stages[es.req][es.stage]
				sp := execSpan.StartChild("slice",
					obs.Int("request", int64(es.req)),
					obs.Int("stage", int64(es.stage)),
					obs.Str("proc", s.SoC.Processors[es.stage].ID),
					obs.Str("model", s.Profiles[es.req].Model().Name),
					obs.Int("layers_from", int64(lr.From)),
					obs.Int("layers_to", int64(lr.To)),
					obs.Float("slowdown", slow),
					obs.Dur("vt_start", es.start),
					obs.Dur("vt_end", now))
				sp.End()
			}
			if _, done := firstPendingStage(es.req); done && !finishedReq[es.req] {
				finishRequest(es.req, now)
			}
		}
		running = still
		sample()
		tryStart()
	}

	// Any request not yet finished means a scheduling deadlock.
	for i := 0; i < m; i++ {
		if !finishedReq[i] {
			return nil, fmt.Errorf("pipeline: request %d never completed (deadlock)", i)
		}
	}

	res.Makespan = now
	if execSpan != nil {
		execSpan.SetAttrs(obs.Dur("vt_makespan", now), obs.Int("slices", int64(len(res.Timeline))))
	}
	res.BubbleTime = measureBubbles(res.Timeline, k)
	res.EnergyJoules = measureEnergy(s.SoC, res.Timeline, now)
	sort.Slice(res.Timeline, func(a, b int) bool {
		if res.Timeline[a].Start != res.Timeline[b].Start {
			return res.Timeline[a].Start < res.Timeline[b].Start
		}
		return res.Timeline[a].Stage < res.Timeline[b].Stage
	})
	publishExecMetrics(opts.Metrics, res)
	return res, nil
}

// publishExecMetrics folds one successful run into the registry. The nil
// check keeps planner-internal candidate evaluations (which run Execute
// thousands of times with no registry) entirely free of metric writes.
func publishExecMetrics(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("executor_runs_total").Inc()
	reg.Counter("executor_slices_total").Add(uint64(len(res.Timeline)))
	reg.Counter("executor_admission_stalls_total").Add(uint64(res.AdmissionStalls))
	slow := reg.Histogram("executor_slowdown", obs.SlowdownBuckets())
	for _, e := range res.Timeline {
		slow.Observe(e.Slowdown)
	}
	reg.Histogram("executor_bubble_seconds", obs.LatencyBuckets()).ObserveDuration(res.BubbleTime)
	reg.Histogram("executor_makespan_seconds", obs.LatencyBuckets()).ObserveDuration(res.Makespan)
	reg.Gauge("executor_peak_memory_bytes").Max(float64(res.PeakMemoryBytes))
}

// requestMemory returns the resident bytes of request i across its slices.
func requestMemory(s *Schedule, i int) int64 {
	var total int64
	for st := 0; st < s.NumStages(); st++ {
		r := s.Stages[i][st]
		if r.Empty() {
			continue
		}
		total += s.Profiles[i].MemoryBytes(r.From, r.To)
	}
	return total
}

// measureEnergy prices the run: the timeline's per-processor busy profile
// rolled up through the SoC's energy model (busy time at busy power, the
// rest of the makespan at idle power; see soc.SoC.EnergyRollup).
func measureEnergy(s *soc.SoC, timeline []SliceExec, makespan time.Duration) float64 {
	busy := make([]time.Duration, s.NumProcessors())
	for _, e := range timeline {
		busy[e.Stage] += e.End - e.Start
	}
	return s.EnergyRollup(busy, makespan)
}

// measureBubbles sums each busy processor's idle gaps between its first and
// last activity — the executed realisation of the Eq. (3) bubbles.
func measureBubbles(timeline []SliceExec, stages int) time.Duration {
	type span struct{ start, end time.Duration }
	perStage := make([][]span, stages)
	for _, e := range timeline {
		perStage[e.Stage] = append(perStage[e.Stage], span{e.Start, e.End})
	}
	var total time.Duration
	for _, spans := range perStage {
		if len(spans) == 0 {
			continue
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		cursor := spans[0].end
		for _, sp := range spans[1:] {
			if sp.start > cursor {
				total += sp.start - cursor
			}
			if sp.end > cursor {
				cursor = sp.end
			}
		}
	}
	return total
}
