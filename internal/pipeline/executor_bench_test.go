package pipeline

import (
	"math/rand"
	"testing"

	"hetero2pipe/internal/soc"
)

// benchSchedule builds a deterministic mixed-model schedule for the executor
// benchmarks: m requests of varying depth on the Kirin 990.
func benchSchedule(b *testing.B, m int) *Schedule {
	b.Helper()
	s := soc.Kirin990()
	profiles := zooProfiles(b, s)
	rng := rand.New(rand.NewSource(2026))
	return randomSchedule(b, rng, s, profiles, m)
}

// BenchmarkExecuteSteadyState is the headline pooled-executor benchmark: the
// per-iteration cost of simulating one schedule end to end with contention,
// the memory gate, and sampling all enabled. Run with -benchmem — steady
// state should allocate only the Result it returns.
func BenchmarkExecuteSteadyState(b *testing.B) {
	sched := benchSchedule(b, 6)
	opts := Options{Contention: true, EnforceMemory: true, SampleMemory: true}
	if _, err := Execute(sched, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(sched, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteNoContention measures the contention-disabled fast path,
// where the per-step factor pass degenerates to min-remaining selection.
func BenchmarkExecuteNoContention(b *testing.B) {
	sched := benchSchedule(b, 6)
	opts := Options{EnforceMemory: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(sched, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteSmall is the planner's inner-loop shape: few requests,
// executed once per candidate evaluation.
func BenchmarkExecuteSmall(b *testing.B) {
	sched := benchSchedule(b, 2)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(sched, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteParallel exercises pool contention: GOMAXPROCS goroutines
// each executing schedules that share the package scratch pool.
func BenchmarkExecuteParallel(b *testing.B) {
	sched := benchSchedule(b, 4)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := Execute(sched, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReferenceExecute keeps the unpooled twin's cost visible so the
// pooled speedup is measurable in the same bench run.
func BenchmarkReferenceExecute(b *testing.B) {
	sched := benchSchedule(b, 6)
	opts := Options{Contention: true, EnforceMemory: true, SampleMemory: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := referenceExecute(sched, opts); err != nil {
			b.Fatal(err)
		}
	}
}
