package pipeline

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/soc"
)

// referenceExecute is the pre-pooling executor, kept verbatim as the
// unpooled twin of the differential suite: it allocates fresh scratch on
// every call, uses the original O(k)-scan firstPendingStage/depSatisfied
// helpers and the per-slice allocating factorOf, and must produce a Result
// byte-identical to ExecuteContext on every schedule. Observability hooks
// (spans, metrics, logger) are omitted — they never influence the Result.
func referenceExecute(s *Schedule, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, k := s.NumRequests(), s.NumStages()
	if m == 0 {
		return &Result{}, nil
	}

	// stageDone[i][stage] = completion time, or -1 if pending.
	stageDone := make([][]time.Duration, m)
	for i := range stageDone {
		stageDone[i] = make([]time.Duration, k)
		for j := range stageDone[i] {
			stageDone[i][j] = -1
		}
	}
	nextReq := make([]int, k)
	busy := make([]bool, k)
	admitted := make([]bool, m)
	stalled := make([]bool, m)
	finishedReq := make([]bool, m)
	memUse := int64(0)
	memOf := make([]int64, m)
	for i := 0; i < m; i++ {
		memOf[i] = requestMemory(s, i)
	}

	res := &Result{Completions: make([]time.Duration, m)}
	var running []*execState
	now := time.Duration(0)

	firstPendingStage := func(i int) (int, bool) {
		for st := 0; st < k; st++ {
			if s.Stages[i][st].Empty() {
				continue
			}
			if stageDone[i][st] < 0 {
				return st, false
			}
		}
		return 0, true
	}

	depSatisfied := func(i, st int) bool {
		for p := 0; p < st; p++ {
			if !s.Stages[i][p].Empty() && stageDone[i][p] < 0 {
				return false
			}
		}
		return true
	}

	admit := func(i int) bool {
		if admitted[i] {
			return true
		}
		if i > 0 && !admitted[i-1] {
			return false
		}
		if opts.EnforceMemory && memUse+memOf[i] > s.SoC.MemoryCapacityBytes && memUse > 0 {
			return false
		}
		admitted[i] = true
		memUse += memOf[i]
		if memUse > res.PeakMemoryBytes {
			res.PeakMemoryBytes = memUse
		}
		return true
	}

	finishRequest := func(i int, at time.Duration) {
		finishedReq[i] = true
		res.Completions[i] = at
		memUse -= memOf[i]
	}

	sample := func() {
		if !opts.SampleMemory {
			return
		}
		var demand float64
		for _, r := range running {
			demand += r.fp.DemandGBps
		}
		res.MemTrace = append(res.MemTrace, MemSample{At: now, UsedBytes: memUse, DemandGBps: demand})
	}

	tryStart := func() bool {
		started := false
		for st := 0; st < k; st++ {
			for !busy[st] && nextReq[st] < m {
				i := nextReq[st]
				r := s.Stages[i][st]
				if r.Empty() {
					nextReq[st]++
					continue
				}
				if !depSatisfied(i, st) {
					break
				}
				if !admit(i) {
					if !stalled[i] {
						stalled[i] = true
						res.AdmissionStalls++
					}
					break
				}
				dur := s.StageTime(i, st)
				if dur == soc.InfDuration {
					break
				}
				es := &execState{
					req: i, stage: st,
					remaining: dur.Seconds(),
					soloSec:   dur.Seconds(),
					fp:        s.Profiles[i].Footprint(st, r.From, r.To),
					start:     now,
				}
				running = append(running, es)
				busy[st] = true
				nextReq[st]++
				started = true
			}
		}
		if started {
			sample()
		}
		return started
	}

	factorOf := func(es *execState) float64 {
		if !opts.Contention {
			return 1
		}
		others := make([]contention.Footprint, 0, len(running)-1)
		for _, o := range running {
			if o != es {
				others = append(others, o.fp)
			}
		}
		return contention.Slowdown(s.SoC.EffectiveBusBandwidthGBps(), es.fp, others)
	}

	tryStart()

	for len(running) > 0 {
		best := -1
		bestDt := math.Inf(1)
		factors := make([]float64, len(running))
		for idx, es := range running {
			f := factorOf(es)
			factors[idx] = f
			dt := es.remaining * f
			if dt < bestDt {
				bestDt = dt
				best = idx
			}
		}
		if best < 0 || math.IsInf(bestDt, 1) {
			return nil, errors.New("pipeline: executor stuck with no finishable slice")
		}
		now += time.Duration(bestDt * float64(time.Second))
		for idx, es := range running {
			es.remaining -= bestDt / factors[idx]
			if es.remaining < 1e-12 {
				es.remaining = 0
			}
		}
		var still []*execState
		for _, es := range running {
			if es.remaining > 0 {
				still = append(still, es)
				continue
			}
			stageDone[es.req][es.stage] = now
			busy[es.stage] = false
			slow := 1.0
			if es.soloSec > 0 {
				slow = (now - es.start).Seconds() / es.soloSec
			}
			res.Timeline = append(res.Timeline, SliceExec{
				Request: es.req, Stage: es.stage,
				Start: es.start, End: now, Slowdown: slow,
			})
			if _, done := firstPendingStage(es.req); done && !finishedReq[es.req] {
				finishRequest(es.req, now)
			}
		}
		running = still
		sample()
		tryStart()
	}

	for i := 0; i < m; i++ {
		if !finishedReq[i] {
			return nil, fmt.Errorf("pipeline: request %d never completed (deadlock)", i)
		}
	}

	res.Makespan = now
	res.BubbleTime = refMeasureBubbles(res.Timeline, k)
	res.EnergyJoules = refMeasureEnergy(s.SoC, res.Timeline, now)
	sort.Slice(res.Timeline, func(a, b int) bool {
		if res.Timeline[a].Start != res.Timeline[b].Start {
			return res.Timeline[a].Start < res.Timeline[b].Start
		}
		return res.Timeline[a].Stage < res.Timeline[b].Stage
	})
	return res, nil
}

// refMeasureEnergy is the original per-call-allocating energy rollup.
func refMeasureEnergy(s *soc.SoC, timeline []SliceExec, makespan time.Duration) float64 {
	busy := make([]time.Duration, s.NumProcessors())
	for _, e := range timeline {
		busy[e.Stage] += e.End - e.Start
	}
	return s.EnergyRollup(busy, makespan)
}

// refMeasureBubbles is the original sort-based bubble accounting; the
// one-pass replacement in the executor must total identically because each
// processor's spans are serial and already emitted in start order.
func refMeasureBubbles(timeline []SliceExec, stages int) time.Duration {
	type span struct{ start, end time.Duration }
	perStage := make([][]span, stages)
	for _, e := range timeline {
		perStage[e.Stage] = append(perStage[e.Stage], span{e.Start, e.End})
	}
	var total time.Duration
	for _, spans := range perStage {
		if len(spans) == 0 {
			continue
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		cursor := spans[0].end
		for _, sp := range spans[1:] {
			if sp.start > cursor {
				total += sp.start - cursor
			}
			if sp.end > cursor {
				cursor = sp.end
			}
		}
	}
	return total
}
