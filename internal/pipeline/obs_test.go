package pipeline

import (
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/soc"
)

// TestObsAdmissionStallEpisodes is the regression test for the stall
// accounting bug: AdmissionStalls used to increment on every tryStart pass
// while a request waited at admission, so a single stalled request inflated
// the counter by the number of completion events it sat through. The
// scenario pins that down: capacity fits exactly request 0, request 0 runs
// three pipeline slices, and request 1 fails admission after each of the
// first two slice completions (two scheduler wake-ups, one contiguous
// wait). Fixed semantics: one episode, count == 1; the pre-fix code
// reported 2.
func TestObsAdmissionStallEpisodes(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.VGG16, model.ResNet50)
	cuts := []Cuts{evenCuts(profs[0], 4), evenCuts(profs[1], 4)}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	// Room for exactly request 0: request 1 stalls until request 0 leaves.
	s.MemoryCapacityBytes = requestMemory(sched, 0)

	res, err := Execute(sched, Options{EnforceMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the stall must actually have spanned several wake-ups —
	// request 0 occupies three stages, so request 1 waits through at least
	// two slice completions before admission.
	if got := len(res.Timeline); got < 6 {
		t.Fatalf("expected ≥ 6 slices (3 per request), got %d", got)
	}
	if res.AdmissionStalls != 1 {
		t.Fatalf("AdmissionStalls = %d, want 1 (one episode for request 1's contiguous wait)", res.AdmissionStalls)
	}
}

// TestObsExecutorMetrics checks the registry wiring: a run with
// Options.Metrics set must publish counts that match the Result exactly.
func TestObsExecutorMetrics(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.ResNet50, model.SqueezeNet)
	cuts := []Cuts{evenCuts(profs[0], 4), evenCuts(profs[1], 4)}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("h2pipe")
	opts := DefaultOptions()
	opts.Metrics = reg
	res, err := Execute(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["executor_runs_total"]; got != 1 {
		t.Errorf("executor_runs_total = %d, want 1", got)
	}
	if got := snap.Counters["executor_slices_total"]; got != uint64(len(res.Timeline)) {
		t.Errorf("executor_slices_total = %d, want %d", got, len(res.Timeline))
	}
	if got := snap.Histograms["executor_slowdown"].Count; got != uint64(len(res.Timeline)) {
		t.Errorf("executor_slowdown count = %d, want %d", got, len(res.Timeline))
	}
	if got := snap.Gauges["executor_peak_memory_bytes"]; got != float64(res.PeakMemoryBytes) {
		t.Errorf("executor_peak_memory_bytes = %v, want %d", got, res.PeakMemoryBytes)
	}
	if got := snap.Histograms["executor_makespan_seconds"].Count; got != 1 {
		t.Errorf("executor_makespan_seconds count = %d, want 1", got)
	}
	// No registry: same run must succeed without publishing anywhere.
	if _, err := Execute(sched, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["executor_runs_total"]; got != 1 {
		t.Errorf("registry picked up a run it was not attached to: %d", got)
	}
}
