package pipeline

import (
	"encoding/json"
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

func profilesFor(t *testing.T, s *soc.SoC, names ...string) []*profile.Profile {
	t.Helper()
	out := make([]*profile.Profile, len(names))
	for i, n := range names {
		p, err := profile.New(s, model.MustByName(n))
		if err != nil {
			t.Fatalf("profile %s: %v", n, err)
		}
		out[i] = p
	}
	return out
}

// cpuOnlyCuts places the whole model on the big CPU (stage 1 on Kirin 990).
func cpuOnlyCuts(p *profile.Profile, stages int) Cuts {
	return SingleProcessor(p.NumLayers(), 1, stages)
}

// balancedTwoStage splits the model across CPU_B (stage 1) and GPU (stage 2)
// at the boundary that best balances the two stage times.
func balancedTwoStage(p *profile.Profile, stages int) Cuts {
	n := p.NumLayers()
	best, bestDiff := 1, time.Duration(1<<62)
	for j := 1; j < n; j++ {
		a := p.ExecTime(1, 0, j-1)
		b := p.ExecTime(2, j, n-1)
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff, best = diff, j
		}
	}
	c := make(Cuts, stages+1)
	c[1] = 0
	c[2] = best
	for k := 3; k <= stages; k++ {
		c[k] = n
	}
	return c
}

// evenCuts splits the model into equal layer counts over the supported
// stages (skipping the NPU to avoid unsupported ranges).
func evenCuts(p *profile.Profile, stages int) Cuts {
	n := p.NumLayers()
	c := make(Cuts, stages+1)
	c[0] = 0
	c[1] = 0 // NPU skipped
	per := n / (stages - 1)
	for k := 2; k < stages; k++ {
		c[k] = c[k-1] + per
	}
	c[stages] = n
	return c
}

func TestValidCuts(t *testing.T) {
	if !ValidCuts(Cuts{0, 2, 5, 5, 9}, 9, 4) {
		t.Error("valid cuts rejected")
	}
	cases := []Cuts{
		{0, 2, 5, 9},       // wrong length
		{1, 2, 5, 5, 9},    // doesn't start at 0
		{0, 2, 5, 5, 8},    // doesn't end at n
		{0, 5, 2, 5, 9},    // decreasing
		{0, 2, 5, 5, 9, 9}, // too long
	}
	for i, c := range cases {
		if ValidCuts(c, 9, 4) {
			t.Errorf("case %d: invalid cuts %v accepted", i, c)
		}
	}
}

func TestSingleProcessor(t *testing.T) {
	c := SingleProcessor(10, 1, 4)
	want := Cuts{0, 0, 10, 10, 10}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("SingleProcessor = %v, want %v", c, want)
		}
	}
	if !ValidCuts(c, 10, 4) {
		t.Error("SingleProcessor cuts invalid")
	}
	rs := c.RangesOf()
	if !rs[0].Empty() || rs[1].Empty() || rs[1].Len() != 10 || !rs[2].Empty() {
		t.Errorf("ranges = %v", rs)
	}
}

func TestScheduleValidate(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.AlexNet, model.ResNet50)
	cuts := []Cuts{
		cpuOnlyCuts(profs[0], 4),
		evenCuts(profs[1], 4),
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatalf("FromCuts: %v", err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Gap in coverage is rejected.
	bad := sched.Clone()
	bad.Stages[0][1].To--
	if err := bad.Validate(); err == nil {
		t.Error("coverage gap accepted")
	}
	// Unsupported placement is rejected: BERT's embedding on the NPU.
	bp := profilesFor(t, s, model.BERT)
	if _, err := FromCuts(s, bp, []Cuts{{0, 5, bp[0].NumLayers(), bp[0].NumLayers(), bp[0].NumLayers()}}); err == nil {
		t.Error("unsupported NPU slice accepted")
	}
}

func TestFromCutsMismatch(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.AlexNet)
	if _, err := FromCuts(s, profs, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromCuts(s, profs, []Cuts{{0, 1, 2}}); err == nil {
		t.Error("invalid cut vector accepted")
	}
}

func TestExecuteSerialMatchesSum(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.AlexNet, model.SqueezeNet)
	cuts := []Cuts{cpuOnlyCuts(profs[0], 4), cpuOnlyCuts(profs[1], 4)}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(sched, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want := sched.StageTime(0, 1) + sched.StageTime(1, 1)
	if diff := res.Makespan - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("serial makespan = %v, want %v", res.Makespan, want)
	}
	if res.Completions[0] >= res.Completions[1] {
		t.Error("serial completions out of order")
	}
	if res.BubbleTime != 0 {
		t.Errorf("serial bubbles = %v, want 0", res.BubbleTime)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestExecutePipelineOverlaps(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.ResNet50, model.ResNet50, model.ResNet50, model.ResNet50)
	var cuts []Cuts
	for _, p := range profs {
		cuts = append(cuts, balancedTwoStage(p, 4))
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Execute(sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: same requests, each whole on CPU big.
	var serialCuts []Cuts
	for _, p := range profs {
		serialCuts = append(serialCuts, cpuOnlyCuts(p, 4))
	}
	serialSched, err := FromCuts(s, profs, serialCuts)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Execute(serialSched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if piped.Makespan >= serial.Makespan {
		t.Errorf("pipelined %v not faster than serial %v", piped.Makespan, serial.Makespan)
	}
	// Pipeline must actually overlap: some timeline entries overlap in time
	// on different stages.
	overlap := false
	for a := range piped.Timeline {
		for b := a + 1; b < len(piped.Timeline); b++ {
			x, y := piped.Timeline[a], piped.Timeline[b]
			if x.Stage != y.Stage && x.Start < y.End && y.Start < x.End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Error("no overlapping execution found in pipelined timeline")
	}
}

func TestExecuteContentionSlowsDown(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.VGG16, model.VGG16, model.VGG16, model.VGG16)
	var cuts []Cuts
	for _, p := range profs {
		cuts = append(cuts, evenCuts(p, 4))
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Execute(sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	contended, err := Execute(sched, Options{Contention: true})
	if err != nil {
		t.Fatal(err)
	}
	if contended.Makespan <= ideal.Makespan {
		t.Errorf("contended %v not slower than ideal %v", contended.Makespan, ideal.Makespan)
	}
	// Dilation within the model's plausible bounds (< 2× here).
	if float64(contended.Makespan) > 2*float64(ideal.Makespan) {
		t.Errorf("contention dilation %v vs %v implausibly large", contended.Makespan, ideal.Makespan)
	}
	// Some slice must report a slowdown above 1.
	found := false
	for _, e := range contended.Timeline {
		if e.Slowdown > 1.001 {
			found = true
		}
	}
	if !found {
		t.Error("no slice reported co-execution slowdown")
	}
}

func TestExecuteDependencyOrder(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.GoogLeNet, model.GoogLeNet)
	var cuts []Cuts
	for _, p := range profs {
		cuts = append(cuts, evenCuts(p, 4))
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(sched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Constraint (8): for each request, stage k starts after stage k-1 ends;
	// per stage, requests run in order.
	startOf := map[[2]int]time.Duration{}
	endOf := map[[2]int]time.Duration{}
	for _, e := range res.Timeline {
		startOf[[2]int{e.Request, e.Stage}] = e.Start
		endOf[[2]int{e.Request, e.Stage}] = e.End
	}
	for key, start := range startOf {
		req, stage := key[0], key[1]
		for prev := stage - 1; prev >= 0; prev-- {
			if end, ok := endOf[[2]int{req, prev}]; ok && start < end {
				t.Errorf("request %d stage %d starts %v before stage %d ends %v",
					req, stage, start, prev, end)
			}
		}
		if prevEnd, ok := endOf[[2]int{req - 1, stage}]; ok && start < prevEnd {
			t.Errorf("request %d stage %d starts %v before request %d finishes %v",
				req, stage, start, req-1, prevEnd)
		}
	}
}

func TestExecuteMemoryConstraint(t *testing.T) {
	s := soc.Kirin990()
	s.MemoryCapacityBytes = 400 << 20 // tight: force admission stalls
	profs := profilesFor(t, s, model.BERT, model.ViT, model.VGG16)
	var cuts []Cuts
	for _, p := range profs {
		cuts = append(cuts, evenCuts(p, 4))
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(sched, Options{EnforceMemory: true, SampleMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdmissionStalls == 0 {
		t.Error("tight memory produced no admission stalls")
	}
	if len(res.MemTrace) == 0 {
		t.Error("memory sampling produced no trace")
	}
	// The first admitted request may exceed capacity alone (progress
	// guarantee); once anything is resident no further overshoot admits.
	loose, err := Execute(sched, Options{EnforceMemory: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakMemoryBytes > loose.PeakMemoryBytes {
		t.Errorf("constrained peak %d above unconstrained %d", res.PeakMemoryBytes, loose.PeakMemoryBytes)
	}
	if res.Makespan < loose.Makespan {
		t.Errorf("constrained makespan %v below unconstrained %v", res.Makespan, loose.Makespan)
	}
}

func TestBubblesAnalytic(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.ResNet50, model.SqueezeNet, model.InceptionV4)
	var cuts []Cuts
	for _, p := range profs {
		cuts = append(cuts, evenCuts(p, 4))
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	b := sched.Bubbles()
	if b <= 0 {
		t.Errorf("Bubbles() = %v, want > 0 for unbalanced mixed models", b)
	}
	// Perfectly uniform single-stage schedule has zero bubbles per Eq. (3)
	// (every column has one member).
	solo, err := FromCuts(s, profs[:1], []Cuts{evenCuts(profs[0], 4)})
	if err != nil {
		t.Fatal(err)
	}
	if sb := solo.Bubbles(); sb < 0 {
		t.Errorf("solo bubbles = %v", sb)
	}
}

func TestExecuteEmptySchedule(t *testing.T) {
	s := soc.Kirin990()
	sched := &Schedule{SoC: s}
	res, err := Execute(sched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || len(res.Completions) != 0 {
		t.Errorf("empty schedule result %+v", res)
	}
	if res.Throughput() != 0 {
		t.Error("empty schedule throughput != 0")
	}
}

func TestExecuteInvalidSchedule(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.AlexNet)
	sched := &Schedule{SoC: s, Profiles: profs, Stages: [][]LayerRange{{{From: 0, To: 2}}}}
	if _, err := Execute(sched, DefaultOptions()); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestStageTimeEmpty(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.AlexNet)
	sched, err := FromCuts(s, profs, []Cuts{cpuOnlyCuts(profs[0], 4)})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.StageTime(0, 0); got != 0 {
		t.Errorf("empty stage time = %v, want 0", got)
	}
	if got := sched.StageTime(0, 1); got <= 0 {
		t.Errorf("full stage time = %v, want > 0", got)
	}
}

// TestScheduleJSONRoundTrip: a planned schedule survives serialisation and
// re-executes to the identical result (plan on a workstation, ship to the
// device).
func TestScheduleJSONRoundTrip(t *testing.T) {
	s := soc.Kirin990()
	profs := profilesFor(t, s, model.ResNet50, model.SqueezeNet)
	cuts := []Cuts{balancedTwoStage(profs[0], 4), cpuOnlyCuts(profs[1], 4)}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sched)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var loaded Schedule
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded schedule invalid: %v", err)
	}
	orig, err := Execute(sched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Execute(&loaded, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if orig.Makespan != replayed.Makespan {
		t.Errorf("replayed makespan %v != original %v", replayed.Makespan, orig.Makespan)
	}
	if len(orig.Timeline) != len(replayed.Timeline) {
		t.Errorf("timeline lengths differ: %d vs %d", len(orig.Timeline), len(replayed.Timeline))
	}
}

func TestScheduleJSONRejectsInvalid(t *testing.T) {
	var sched Schedule
	cases := []string{
		`{`,
		`{"models":[],"stages":[]}`, // missing SoC
		`{"soc":{"name":"x"},"models":[],"stages":[]}`, // invalid SoC
	}
	for i, src := range cases {
		if err := json.Unmarshal([]byte(src), &sched); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
}
