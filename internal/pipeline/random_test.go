package pipeline

import (
	"math/rand"
	"testing"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// randomValidCuts generates a random valid boundary vector whose non-empty
// stages are all supported.
func randomValidCuts(rng *rand.Rand, p *profile.Profile, stages int) Cuts {
	n := p.NumLayers()
	for attempt := 0; attempt < 50; attempt++ {
		c := make(Cuts, stages+1)
		c[stages] = n
		// Random non-decreasing interior boundaries.
		for b := 1; b < stages; b++ {
			c[b] = c[b-1] + rng.Intn(n-c[b-1]+1)
		}
		ok := true
		for st := 0; st < stages; st++ {
			if c[st+1] > c[st] && !p.Table(st).Supported(c[st], c[st+1]-1) {
				ok = false
				break
			}
		}
		if ok {
			return c
		}
	}
	// Fall back: everything on the big CPU (stage 1 on presets).
	return SingleProcessor(n, 1, stages)
}

// TestExecuteRandomSchedules is the executor's failure-injection sweep:
// hundreds of random valid schedules must execute without deadlock, with
// monotone per-stage request starts and complete, consistent results under
// every option combination.
func TestExecuteRandomSchedules(t *testing.T) {
	s := soc.Kirin990()
	zoo := model.Names()
	profiles := make(map[string]*profile.Profile, len(zoo))
	for _, name := range zoo {
		p, err := profile.New(s, model.MustByName(name))
		if err != nil {
			t.Fatal(err)
		}
		profiles[name] = p
	}
	rng := rand.New(rand.NewSource(1234))
	optionSets := []Options{
		{},
		{Contention: true},
		{EnforceMemory: true},
		{Contention: true, EnforceMemory: true, SampleMemory: true},
	}
	for trial := 0; trial < 120; trial++ {
		m := 1 + rng.Intn(6)
		profs := make([]*profile.Profile, m)
		cuts := make([]Cuts, m)
		for i := 0; i < m; i++ {
			p := profiles[zoo[rng.Intn(len(zoo))]]
			profs[i] = p
			cuts[i] = randomValidCuts(rng, p, s.NumProcessors())
		}
		sched, err := FromCuts(s, profs, cuts)
		if err != nil {
			t.Fatalf("trial %d: FromCuts: %v", trial, err)
		}
		opts := optionSets[trial%len(optionSets)]
		res, err := Execute(sched, opts)
		if err != nil {
			t.Fatalf("trial %d: Execute: %v", trial, err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("trial %d: makespan %v", trial, res.Makespan)
		}
		for i, c := range res.Completions {
			if c <= 0 || c > res.Makespan {
				t.Fatalf("trial %d: completion[%d] = %v outside (0, %v]", trial, i, c, res.Makespan)
			}
		}
		if res.EnergyJoules <= 0 {
			t.Fatalf("trial %d: energy %v", trial, res.EnergyJoules)
		}
		// Per-stage starts are monotone in request index (FIFO service).
		lastStart := make([]time.Duration, s.NumProcessors())
		lastReq := make([]int, s.NumProcessors())
		for k := range lastReq {
			lastReq[k] = -1
		}
		for _, e := range res.Timeline {
			if lastReq[e.Stage] >= 0 {
				if e.Request < lastReq[e.Stage] {
					t.Fatalf("trial %d: stage %d served request %d after %d",
						trial, e.Stage, e.Request, lastReq[e.Stage])
				}
				if e.Start < lastStart[e.Stage] {
					t.Fatalf("trial %d: stage %d starts went backwards", trial, e.Stage)
				}
			}
			lastReq[e.Stage] = e.Request
			lastStart[e.Stage] = e.Start
		}
		// Contention can only lengthen the run.
		if opts.Contention {
			ideal, err := Execute(sched, Options{EnforceMemory: opts.EnforceMemory})
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < ideal.Makespan {
				t.Fatalf("trial %d: contended %v faster than ideal %v", trial, res.Makespan, ideal.Makespan)
			}
		}
	}
}

// TestExecutorLowerBounds: without contention, the makespan can never beat
// two classic scheduling lower bounds — the busiest processor's total work
// and every request's own critical path (its stage-time sum).
func TestExecutorLowerBounds(t *testing.T) {
	s := soc.Kirin990()
	zoo := model.Names()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(5)
		profs := make([]*profile.Profile, m)
		cuts := make([]Cuts, m)
		for i := 0; i < m; i++ {
			p, err := profile.New(s, model.MustByName(zoo[rng.Intn(len(zoo))]))
			if err != nil {
				t.Fatal(err)
			}
			profs[i] = p
			cuts[i] = randomValidCuts(rng, p, s.NumProcessors())
		}
		sched, err := FromCuts(s, profs, cuts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(sched, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Bound 1: busiest processor.
		busy := make([]time.Duration, s.NumProcessors())
		for i := 0; i < m; i++ {
			for k := 0; k < s.NumProcessors(); k++ {
				if d := sched.StageTime(i, k); d != soc.InfDuration {
					busy[k] += d
				}
			}
		}
		for k, b := range busy {
			if res.Makespan < b-time.Microsecond {
				t.Fatalf("trial %d: makespan %v below stage-%d busy %v", trial, res.Makespan, k, b)
			}
		}
		// Bound 2: each request's own chain.
		for i := 0; i < m; i++ {
			var chain time.Duration
			for k := 0; k < s.NumProcessors(); k++ {
				if d := sched.StageTime(i, k); d != soc.InfDuration {
					chain += d
				}
			}
			if res.Completions[i] < chain-time.Microsecond {
				t.Fatalf("trial %d: request %d completes at %v before its chain %v",
					trial, i, res.Completions[i], chain)
			}
		}
	}
}
