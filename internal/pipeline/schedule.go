// Package pipeline defines the schedule intermediate representation shared
// by the Hetero²Pipe planner and every baseline, the analytic bubble
// accounting of Eq. (3), and an event-driven executor that co-simulates
// pipeline stages under the shared-bus slowdown model — the substitute for
// running the schedule on physical silicon.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// LayerRange is a contiguous slice of a model's layer chain, inclusive on
// both ends. An empty range (From > To) means the stage is skipped for that
// request (pass-through).
type LayerRange struct {
	From, To int
}

// Empty reports whether the range contains no layers.
func (r LayerRange) Empty() bool { return r.From > r.To }

// Len returns the number of layers in the range.
func (r LayerRange) Len() int {
	if r.Empty() {
		return 0
	}
	return r.To - r.From + 1
}

// Schedule is a fully specified pipeline plan: an ordered request sequence,
// each request's per-stage layer ranges, and the SoC whose processor order
// defines the stages. Stage k of every request executes on
// SoC.Processors[k]; request i's stage k depends on its stage k-1 and on the
// processor finishing request i-1's stage k — the classic pipeline
// precedence of constraint (8).
type Schedule struct {
	// SoC is the target platform.
	SoC *soc.SoC
	// Profiles holds one cost profile per request, in execution order.
	// Profiles[i].Model() is request i.
	Profiles []*profile.Profile
	// Stages[i][k] is the layer range request i runs on processor k.
	Stages [][]LayerRange
}

// NumRequests returns the request count |M|.
func (s *Schedule) NumRequests() int { return len(s.Profiles) }

// NumStages returns the pipeline depth K.
func (s *Schedule) NumStages() int { return s.SoC.NumProcessors() }

// StageTime returns the solo duration of request i's stage k (T_k^i of
// Definition 2 without the co-execution term): zero for empty stages,
// soc.InfDuration for infeasible ones.
func (s *Schedule) StageTime(i, k int) time.Duration {
	r := s.Stages[i][k]
	if r.Empty() {
		return 0
	}
	return s.Profiles[i].SliceTime(k, r.From, r.To)
}

// Validate checks structural soundness: every request covered exactly once
// by its stage ranges in order, and every non-empty stage supported on its
// processor.
func (s *Schedule) Validate() error {
	if s.SoC == nil {
		return errors.New("pipeline: schedule has nil SoC")
	}
	if len(s.Stages) != len(s.Profiles) {
		return fmt.Errorf("pipeline: %d stage rows for %d requests", len(s.Stages), len(s.Profiles))
	}
	k := s.NumStages()
	for i, row := range s.Stages {
		if len(row) != k {
			return fmt.Errorf("pipeline: request %d has %d stages, want %d", i, len(row), k)
		}
		n := s.Profiles[i].NumLayers()
		next := 0
		for stage, r := range row {
			if r.Empty() {
				continue
			}
			if r.From != next {
				return fmt.Errorf("pipeline: request %d stage %d starts at layer %d, want %d",
					i, stage, r.From, next)
			}
			if r.To >= n {
				return fmt.Errorf("pipeline: request %d stage %d ends past layer %d", i, stage, n-1)
			}
			if !s.Profiles[i].Table(stage).Supported(r.From, r.To) {
				return fmt.Errorf("pipeline: request %d stage %d layers [%d,%d] unsupported on %s",
					i, stage, r.From, r.To, s.SoC.Processors[stage].ID)
			}
			next = r.To + 1
		}
		if next != n {
			return fmt.Errorf("pipeline: request %d covers %d of %d layers", i, next, n)
		}
	}
	return nil
}

// Bubbles returns the total bubble time of Eq. (3): for every concurrent
// column j (the anti-diagonal of simultaneously executing slices), the sum
// over the column's members of (column max − member time). Columns are
// indexed j = 1..|M|+K−1; member (i, k) belongs to column j = i + k + 1
// (1-based) using solo stage times — the planner's analytic objective before
// contention enters.
func (s *Schedule) Bubbles() time.Duration {
	m, k := s.NumRequests(), s.NumStages()
	var total time.Duration
	for j := 0; j < m+k-1; j++ {
		var colMax time.Duration
		var members []time.Duration
		for i := 0; i < m; i++ {
			stage := j - i
			if stage < 0 || stage >= k {
				continue
			}
			t := s.StageTime(i, stage)
			if t == soc.InfDuration {
				continue
			}
			members = append(members, t)
			if t > colMax {
				colMax = t
			}
		}
		for _, t := range members {
			total += colMax - t
		}
	}
	return total
}

// Clone deep-copies the schedule's stage ranges (profiles and SoC are
// shared, immutable).
func (s *Schedule) Clone() *Schedule {
	// One flat backing array for all rows (the planner clones schedules in
	// its inner candidate loops, so Clone is two allocations, not m+1).
	total := 0
	for _, row := range s.Stages {
		total += len(row)
	}
	flat := make([]LayerRange, 0, total)
	stages := make([][]LayerRange, len(s.Stages))
	for i, row := range s.Stages {
		n := len(flat)
		flat = append(flat, row...)
		stages[i] = flat[n:len(flat):len(flat)]
	}
	return &Schedule{SoC: s.SoC, Profiles: s.Profiles, Stages: stages}
}
