package pipeline

import (
	"sync"
	"time"
)

// execScratch is the reusable working set of one ExecuteContext call. Every
// simulation-local array the executor needs — the flattened stage-completion
// matrix, the per-stage and per-request admission state, the per-step
// contention buffers, the in-flight set and its swap buffer, and the
// execState slab — lives here, so a steady-state execution performs O(1)
// heap allocations: only the Result and the slices it hands back to the
// caller (Completions, Timeline, MemTrace) are freshly allocated.
//
// Pool invariants:
//   - A scratch is owned by exactly one ExecuteContext call between Get and
//     Put; nothing in a returned Result may alias scratch memory (Timeline
//     entries are values, Completions/MemTrace are caller-owned slices).
//   - states is sized once per call to the exact non-empty-slice count and
//     never grows mid-run, so *execState pointers held in running/still stay
//     valid for the whole simulation.
//   - All buffers are re-sized and re-zeroed by acquire; Put performs no
//     cleaning, so a scratch must never be Put twice or used after Put.
type execScratch struct {
	// stageDone is the flattened m×k completion matrix: stageDone[i*k+st]
	// is request i's stage-st completion time, -1 while pending.
	stageDone []time.Duration
	// nextReq[st] is the next request index stage st must serve (in-order
	// per stage); busy[st] marks an in-flight slice on the stage.
	nextReq []int
	busy    []bool
	// Per-request admission and completion state.
	admitted    []bool
	stalled     []bool
	finishedReq []bool
	memOf       []int64
	// pendFrom[i] is request i's frontier: the first non-empty stage not
	// yet completed, or k when the request is done. Because a request's
	// stages start only when every earlier non-empty stage has finished, at
	// most one of its slices is ever in flight and they complete in stage
	// order — so the frontier advances monotonically and replaces the
	// original O(k) firstPendingStage/depSatisfied scans with O(1) reads.
	pendFrom []int
	// Per-step contention buffers: demands caches each running slice's solo
	// bus demand so the skip-self pressure sums reuse one buffer, factors
	// holds the step's dilation factors.
	demands []float64
	factors []float64
	// running/still are the in-flight set and its completion-pass swap
	// buffer; states is the per-call execState slab they point into.
	running []*execState
	still   []*execState
	states  []execState
	// busyDur and lastEnd are the k-sized accumulators of the energy rollup
	// and the one-pass bubble accounting.
	busyDur []time.Duration
	lastEnd []time.Duration
	started []bool
}

var execScratchPool = sync.Pool{New: func() any { return new(execScratch) }}

// acquireScratch returns a pooled scratch sized and reset for an m-request,
// k-stage schedule with slices non-empty stages.
func acquireScratch(m, k, slices int) *execScratch {
	sc := execScratchPool.Get().(*execScratch)
	sc.stageDone = growDurations(sc.stageDone, m*k)
	for i := range sc.stageDone {
		sc.stageDone[i] = -1
	}
	sc.nextReq = growInts(sc.nextReq, k)
	sc.busy = growBools(sc.busy, k)
	sc.admitted = growBools(sc.admitted, m)
	sc.stalled = growBools(sc.stalled, m)
	sc.finishedReq = growBools(sc.finishedReq, m)
	sc.memOf = growInt64s(sc.memOf, m)
	sc.pendFrom = growInts(sc.pendFrom, m)
	sc.demands = growFloats(sc.demands, k)
	sc.factors = growFloats(sc.factors, k)
	// At most one slice per stage is ever in flight, so k caps both the
	// running set and its swap buffer — pre-growing them means the hot
	// loop's appends never reallocate.
	if cap(sc.running) < k {
		sc.running = make([]*execState, 0, k)
	} else {
		sc.running = sc.running[:0]
	}
	if cap(sc.still) < k {
		sc.still = make([]*execState, 0, k)
	} else {
		sc.still = sc.still[:0]
	}
	if cap(sc.states) < slices {
		sc.states = make([]execState, slices)
	}
	sc.states = sc.states[:slices]
	sc.busyDur = growDurations(sc.busyDur, k)
	sc.lastEnd = growDurations(sc.lastEnd, k)
	sc.started = growBools(sc.started, k)
	return sc
}

func releaseScratch(sc *execScratch) { execScratchPool.Put(sc) }

// The grow helpers resize a scratch buffer to n zeroed entries, reusing
// capacity when it suffices.

func growDurations(buf []time.Duration, n int) []time.Duration {
	if cap(buf) < n {
		return make([]time.Duration, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growInt64s(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}
