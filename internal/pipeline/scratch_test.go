package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// execOptionSets covers every option combination the executor branches on.
var execOptionSets = []Options{
	{},
	{Contention: true},
	{EnforceMemory: true},
	{SampleMemory: true},
	{Contention: true, EnforceMemory: true},
	{Contention: true, EnforceMemory: true, SampleMemory: true},
}

// zooProfiles builds one profile per zoo model on s.
func zooProfiles(tb testing.TB, s *soc.SoC) map[string]*profile.Profile {
	tb.Helper()
	zoo := model.Names()
	out := make(map[string]*profile.Profile, len(zoo))
	for _, name := range zoo {
		p, err := profile.New(s, model.MustByName(name))
		if err != nil {
			tb.Fatal(err)
		}
		out[name] = p
	}
	return out
}

// randomSchedule builds a random valid schedule of m requests drawn from the
// zoo.
func randomSchedule(tb testing.TB, rng *rand.Rand, s *soc.SoC,
	profiles map[string]*profile.Profile, m int) *Schedule {
	tb.Helper()
	zoo := model.Names()
	profs := make([]*profile.Profile, m)
	cuts := make([]Cuts, m)
	for i := 0; i < m; i++ {
		p := profiles[zoo[rng.Intn(len(zoo))]]
		profs[i] = p
		cuts[i] = randomValidCuts(rng, p, s.NumProcessors())
	}
	sched, err := FromCuts(s, profs, cuts)
	if err != nil {
		tb.Fatalf("FromCuts: %v", err)
	}
	return sched
}

// requireIdentical asserts byte-identity of two results, field by field so a
// divergence names the axis that moved. Float comparisons are exact (==),
// not tolerance-based: the pooled executor must replay the reference's
// arithmetic bit for bit.
func requireIdentical(tb testing.TB, label string, got, want *Result) {
	tb.Helper()
	if got.Makespan != want.Makespan {
		tb.Fatalf("%s: makespan %v != %v", label, got.Makespan, want.Makespan)
	}
	if !reflect.DeepEqual(got.Completions, want.Completions) {
		tb.Fatalf("%s: completions diverge:\n got %v\nwant %v", label, got.Completions, want.Completions)
	}
	if !reflect.DeepEqual(got.Timeline, want.Timeline) {
		tb.Fatalf("%s: timeline diverges:\n got %+v\nwant %+v", label, got.Timeline, want.Timeline)
	}
	if got.BubbleTime != want.BubbleTime {
		tb.Fatalf("%s: bubble time %v != %v", label, got.BubbleTime, want.BubbleTime)
	}
	if got.PeakMemoryBytes != want.PeakMemoryBytes {
		tb.Fatalf("%s: peak memory %d != %d", label, got.PeakMemoryBytes, want.PeakMemoryBytes)
	}
	if got.AdmissionStalls != want.AdmissionStalls {
		tb.Fatalf("%s: admission stalls %d != %d", label, got.AdmissionStalls, want.AdmissionStalls)
	}
	if !reflect.DeepEqual(got.MemTrace, want.MemTrace) {
		tb.Fatalf("%s: mem trace diverges:\n got %+v\nwant %+v", label, got.MemTrace, want.MemTrace)
	}
	if got.EnergyJoules != want.EnergyJoules {
		tb.Fatalf("%s: energy %v != %v", label, got.EnergyJoules, want.EnergyJoules)
	}
}

// TestDifferentialExecScratch: the pooled executor must be byte-identical to
// the unpooled reference on randomized schedules under every option set —
// including the same scratch being reused across schedules of different
// shapes, which is exactly the pollution a stale buffer would cause.
func TestDifferentialExecScratch(t *testing.T) {
	s := soc.Kirin990()
	profiles := zooProfiles(t, s)
	rng := rand.New(rand.NewSource(9001))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(7)
		sched := randomSchedule(t, rng, s, profiles, m)
		opts := execOptionSets[trial%len(execOptionSets)]
		want, wantErr := referenceExecute(sched, opts)
		got, gotErr := Execute(sched, opts)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error divergence: pooled %v, reference %v", trial, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		requireIdentical(t, fmt.Sprintf("trial %d (opts %+v)", trial, opts), got, want)
	}
}

// TestExecScratchTightMemory drives the admission-stall path (the Eq. (6)
// memory constraint) under a shrunken capacity so stalls, peak memory and
// the stall episode counter all flow through the pooled frontier logic.
func TestExecScratchTightMemory(t *testing.T) {
	s := soc.Kirin990()
	s.MemoryCapacityBytes = 512 << 20 // force admission serialisation
	profiles := zooProfiles(t, s)
	rng := rand.New(rand.NewSource(4242))
	sawStall := false
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(5)
		sched := randomSchedule(t, rng, s, profiles, m)
		opts := Options{Contention: true, EnforceMemory: true, SampleMemory: trial%2 == 0}
		want, wantErr := referenceExecute(sched, opts)
		got, gotErr := Execute(sched, opts)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error divergence: pooled %v, reference %v", trial, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		requireIdentical(t, fmt.Sprintf("tight trial %d", trial), got, want)
		if got.AdmissionStalls > 0 {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatal("tight-memory sweep never exercised an admission stall")
	}
}

// TestExecScratchConcurrent is the pooled-executor race gate: many
// goroutines share the package pool while executing distinct schedules, and
// every result must still match the sequential reference. Run under -race.
func TestExecScratchConcurrent(t *testing.T) {
	s := soc.Kirin990()
	profiles := zooProfiles(t, s)
	rng := rand.New(rand.NewSource(77))
	const nSched = 16
	scheds := make([]*Schedule, nSched)
	want := make([]*Result, nSched)
	for i := range scheds {
		scheds[i] = randomSchedule(t, rng, s, profiles, 1+rng.Intn(6))
		w, err := referenceExecute(scheds[i], DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(nSched)
				got, err := Execute(scheds[i], DefaultOptions())
				if err != nil {
					errs <- err
					return
				}
				if got.Makespan != want[i].Makespan ||
					got.EnergyJoules != want[i].EnergyJoules ||
					got.BubbleTime != want[i].BubbleTime ||
					!reflect.DeepEqual(got.Completions, want[i].Completions) {
					errs <- fmt.Errorf("worker %d: schedule %d diverged under concurrency", seed, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExecutorAllocBudget pins the steady-state allocation count: once the
// pool is warm, an execution may allocate only the Result it returns — the
// struct, Completions, Timeline, and the sort — not per-call scratch. The
// budget is deliberately a little above the measured count (~5) to absorb a
// GC emptying the pool mid-run, and far below the ~60 the unpooled executor
// spent.
func TestExecutorAllocBudget(t *testing.T) {
	s := soc.Kirin990()
	profiles := zooProfiles(t, s)
	rng := rand.New(rand.NewSource(13))
	sched := randomSchedule(t, rng, s, profiles, 4)
	opts := DefaultOptions()
	for i := 0; i < 3; i++ { // warm the pool
		if _, err := Execute(sched, opts); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := Execute(sched, opts); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 12
	if avg > budget {
		t.Fatalf("steady-state executor allocates %.1f/op, budget %d", avg, budget)
	}
}

// TestExecScratchMemTracePrealloc: with SampleMemory set the trace must be
// written into its preallocated 2·slices+1 backing without regrowth.
func TestExecScratchMemTracePrealloc(t *testing.T) {
	s := soc.Kirin990()
	profiles := zooProfiles(t, s)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		sched := randomSchedule(t, rng, s, profiles, 1+rng.Intn(6))
		slices := 0
		for i := range sched.Stages {
			for _, r := range sched.Stages[i] {
				if !r.Empty() {
					slices++
				}
			}
		}
		res, err := Execute(sched, Options{Contention: true, EnforceMemory: true, SampleMemory: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.MemTrace) == 0 {
			t.Fatalf("trial %d: sampling enabled but trace empty", trial)
		}
		bound := 2*slices + 1
		if len(res.MemTrace) > bound {
			t.Fatalf("trial %d: %d samples exceed the event bound %d", trial, len(res.MemTrace), bound)
		}
		if cap(res.MemTrace) != bound {
			t.Fatalf("trial %d: trace capacity %d, want the preallocated %d", trial, cap(res.MemTrace), bound)
		}
	}
}

// FuzzExecScratch fuzzes the pooled-vs-unpooled differential: any (seed,
// request count, option bits) triple must produce byte-identical results,
// including MemTrace, PeakMemoryBytes and AdmissionStalls.
func FuzzExecScratch(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(3))
	f.Add(int64(42), uint8(1), uint8(0))
	f.Add(int64(7), uint8(6), uint8(7))
	f.Add(int64(-12345), uint8(4), uint8(5))
	s := soc.Kirin990()
	profiles := zooProfiles(f, s)
	f.Fuzz(func(t *testing.T, seed int64, m uint8, optBits uint8) {
		rng := rand.New(rand.NewSource(seed))
		nReq := 1 + int(m)%7
		sched := randomSchedule(t, rng, s, profiles, nReq)
		opts := Options{
			Contention:    optBits&1 != 0,
			EnforceMemory: optBits&2 != 0,
			SampleMemory:  optBits&4 != 0,
		}
		want, wantErr := referenceExecute(sched, opts)
		got, gotErr := Execute(sched, opts)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence: pooled %v, reference %v", gotErr, wantErr)
		}
		if wantErr != nil {
			return
		}
		requireIdentical(t, "fuzz", got, want)
		// Sanity only, not identity: Slowdown divides Duration-quantised
		// wall time by solo seconds, so for microsecond-scale slices the
		// 1 ns rounding can land noticeably below 1. The coarse floor only
		// guards against gross corruption (NaN, negative, half-lost time).
		for _, e := range got.Timeline {
			if math.IsNaN(e.Slowdown) || e.Slowdown < 0.999 {
				t.Fatalf("slowdown %v below 1", e.Slowdown)
			}
		}
	})
}
