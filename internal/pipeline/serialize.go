package pipeline

import (
	"encoding/json"
	"fmt"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/profile"
	"hetero2pipe/internal/soc"
)

// Schedule serialisation: a planned pipeline saved as a self-contained JSON
// document (SoC description, request models, stage boundaries) that can be
// reloaded and re-executed elsewhere — plan on a workstation, ship the plan
// to the device fleet. Profiles are rebuilt on load; they are derived data.

// scheduleDoc is the on-disk form.
type scheduleDoc struct {
	SoC    *soc.SoC       `json:"soc"`
	Models []*model.Model `json:"models"`
	Stages [][]LayerRange `json:"stages"`
}

// MarshalJSON encodes the schedule with its SoC and model descriptions
// inlined.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	doc := scheduleDoc{
		SoC:    s.SoC,
		Models: make([]*model.Model, len(s.Profiles)),
		Stages: s.Stages,
	}
	for i, p := range s.Profiles {
		doc.Models[i] = p.Model()
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes a schedule document, rebuilds every profile and
// validates the result.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var doc scheduleDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("pipeline: decode schedule: %w", err)
	}
	if doc.SoC == nil {
		return fmt.Errorf("pipeline: schedule document missing SoC")
	}
	decoded := Schedule{
		SoC:      doc.SoC,
		Profiles: make([]*profile.Profile, len(doc.Models)),
		Stages:   doc.Stages,
	}
	for i, m := range doc.Models {
		p, err := profile.New(doc.SoC, m)
		if err != nil {
			return fmt.Errorf("pipeline: rebuilding profile %d: %w", i, err)
		}
		decoded.Profiles[i] = p
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*s = decoded
	return nil
}
