// Package profile builds the cost tables the Hetero²Pipe planner consumes:
// for each (model, processor) pair, the solo execution time T_k^e(i, j) of
// any layer slice [i, j] in O(1) via prefix sums, the memory-copy cost T^c
// of slice boundaries (Eq. 2), per-slice contention footprints, and per-
// slice memory footprints for the Eq. (6) capacity constraint.
//
// This package is the only interface between the planner and the SoC
// substrate: the paper's measurement phase ("we measure the resource demands
// from solo executions as a proxy", Observation 1) corresponds exactly to
// constructing a Profile.
package profile

import (
	"fmt"
	"time"

	"hetero2pipe/internal/contention"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// Table holds the prefix-summed solo costs of one model on one processor.
type Table struct {
	proc *soc.Processor
	// timePrefix[i] is the summed layer time of layers [0, i).
	timePrefix []time.Duration
	// busPrefix[i] is the summed effective bus traffic of layers [0, i).
	busPrefix []float64
	// unsupPrefix[i] counts NPU-unsupported (for this processor) layers in
	// [0, i).
	unsupPrefix []int
}

// Proc returns the processor this table profiles.
func (t *Table) Proc() *soc.Processor { return t.proc }

// ExecTime returns the solo execution time of layers [i, j] (inclusive),
// T_k^e(i, j), in O(1). It returns soc.InfDuration if the range contains an
// operator the processor cannot execute, and 0 for an empty range (j < i,
// Property 2's boundary convention).
func (t *Table) ExecTime(i, j int) time.Duration {
	if j < i {
		return 0
	}
	if i < 0 || j >= len(t.timePrefix)-1 {
		return soc.InfDuration
	}
	if t.unsupPrefix[j+1]-t.unsupPrefix[i] > 0 {
		return soc.InfDuration
	}
	return t.timePrefix[j+1] - t.timePrefix[i]
}

// Supported reports whether every layer in [i, j] runs on the processor.
func (t *Table) Supported(i, j int) bool {
	if j < i || i < 0 || j >= len(t.unsupPrefix)-1 {
		return false
	}
	return t.unsupPrefix[j+1]-t.unsupPrefix[i] == 0
}

// busBytes returns the effective shared-bus traffic of layers [i, j].
func (t *Table) busBytes(i, j int) float64 {
	if j < i || i < 0 || j >= len(t.busPrefix)-1 {
		return 0
	}
	return t.busPrefix[j+1] - t.busPrefix[i]
}

// Profile holds every per-processor table for one model on one SoC, plus the
// auxiliary prefix structures shared across processors.
type Profile struct {
	soc   *soc.SoC
	model *model.Model
	// tables[k] is the cost table on s.Processors[k].
	tables []*Table
	// weightPrefix[i] is the summed weight bytes of layers [0, i).
	weightPrefix []int64
	// actMax is a sparse table for O(1) range-max over activation sizes.
	actMax *sparseMax
}

// New measures the model on every processor of the SoC and returns the
// profile. The construction cost is O(nK) layer-time evaluations — the
// "manageable profiling efforts" the paper's solo-execution proxy buys.
func New(s *soc.SoC, m *model.Model) (*Profile, error) {
	return FromTables(s, m, nil)
}

// FromTables assembles a Profile from per-processor cost tables, measuring
// any nil slot afresh. reuse may be nil (measure everything — this is New)
// or one entry per processor; reused tables must have been measured for the
// same (SoC, model) pair, which is the caller's contract (the planner's
// cost cache upholds it structurally). This is the primitive behind partial
// cache invalidation: after a degradation event stales one processor's
// tables, only that slot is re-measured and the other K−1 are shared.
func FromTables(s *soc.SoC, m *model.Model, reuse []*Table) (*Profile, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if reuse != nil && len(reuse) != s.NumProcessors() {
		return nil, fmt.Errorf("profile: %d reusable tables for %d processors", len(reuse), s.NumProcessors())
	}
	n, numK := m.NumLayers(), s.NumProcessors()
	p := &Profile{
		soc:          s,
		model:        m,
		tables:       make([]*Table, numK),
		weightPrefix: make([]int64, n+1),
	}
	acts := make([]int64, n)
	for i, l := range m.Layers {
		p.weightPrefix[i+1] = p.weightPrefix[i] + l.WeightBytes
		a := l.OutputBytes
		if l.InputBytes > a {
			a = l.InputBytes
		}
		acts[i] = a
	}
	p.actMax = newSparseMax(acts)
	// Slab-allocate the freshly-measured tables: one Table array and one
	// backing array per prefix kind, shared across all measured processors,
	// instead of four allocations per table. Reused tables keep their own
	// backing (the slab only covers the nil slots).
	fresh := 0
	for k := 0; k < numK; k++ {
		if reuse == nil || reuse[k] == nil {
			fresh++
		}
	}
	if fresh > 0 {
		slab := make([]Table, fresh)
		times := make([]time.Duration, fresh*(n+1))
		buses := make([]float64, fresh*(n+1))
		unsups := make([]int, fresh*(n+1))
		next := 0
		for k := range s.Processors {
			if reuse != nil && reuse[k] != nil {
				p.tables[k] = reuse[k]
				continue
			}
			t := &slab[next]
			lo, hi := next*(n+1), (next+1)*(n+1)
			t.proc = &s.Processors[k]
			t.timePrefix = times[lo:hi:hi]
			t.busPrefix = buses[lo:hi:hi]
			t.unsupPrefix = unsups[lo:hi:hi]
			measureTableInto(t, m)
			p.tables[k] = t
			next++
		}
	} else {
		copy(p.tables, reuse)
	}
	return p, nil
}

// measureTable builds the cost table of one model on one processor — the
// O(n) measurement unit the cost cache memoizes and invalidates.
func measureTable(proc *soc.Processor, m *model.Model) *Table {
	n := m.NumLayers()
	t := &Table{
		proc:        proc,
		timePrefix:  make([]time.Duration, n+1),
		busPrefix:   make([]float64, n+1),
		unsupPrefix: make([]int, n+1),
	}
	measureTableInto(t, m)
	return t
}

// measureTableInto fills a pre-allocated table (proc set, prefix slices
// sized n+1) with the model's prefix-summed solo costs.
func measureTableInto(t *Table, m *model.Model) {
	proc := t.proc
	for i, l := range m.Layers {
		lt := proc.LayerTime(l)
		unsup := 0
		if lt == soc.InfDuration {
			lt = 0
			unsup = 1
		}
		t.timePrefix[i+1] = t.timePrefix[i] + lt
		t.busPrefix[i+1] = t.busPrefix[i] + proc.BusTrafficBytes(l)
		t.unsupPrefix[i+1] = t.unsupPrefix[i] + unsup
	}
}

// SoC returns the profiled SoC.
func (p *Profile) SoC() *soc.SoC { return p.soc }

// Model returns the profiled model.
func (p *Profile) Model() *model.Model { return p.model }

// NumLayers returns the model's layer count n.
func (p *Profile) NumLayers() int { return p.model.NumLayers() }

// NumProcessors returns the SoC's processor count K.
func (p *Profile) NumProcessors() int { return len(p.tables) }

// Table returns the cost table of processor k.
func (p *Profile) Table(k int) *Table { return p.tables[k] }

// ExecTime returns T_k^e(i, j): the solo time of layers [i, j] on processor
// k, or soc.InfDuration if unsupported there.
func (p *Profile) ExecTime(k, i, j int) time.Duration {
	return p.tables[k].ExecTime(i, j)
}

// CopyInTime returns the T^c term of placing a slice starting at layer i on
// a processor: the cost of copying the slice's input tensor between address
// spaces on the unified memory. The model input (i == 0) pays the same copy
// (host buffer → processor).
func (p *Profile) CopyInTime(i int) time.Duration {
	if i < 0 || i >= p.model.NumLayers() {
		return 0
	}
	return p.soc.CopyTime(p.model.Layers[i].InputBytes)
}

// SliceTime returns the combined T_k^e(i, j) + T^c(i) cost the paper's
// Algorithm 1 operates on ("define T_k^e(i,j) as the sum ... that combines
// the solo execution and memory copy time").
func (p *Profile) SliceTime(k, i, j int) time.Duration {
	if j < i {
		return 0
	}
	e := p.tables[k].ExecTime(i, j)
	if e == soc.InfDuration {
		return soc.InfDuration
	}
	return e + p.CopyInTime(i) + p.tables[k].proc.LaunchOverhead
}

// LayerTime returns the solo time of a single layer on processor k.
func (p *Profile) LayerTime(k, i int) time.Duration {
	return p.tables[k].ExecTime(i, i)
}

// Footprint returns the contention footprint of running layers [i, j] on
// processor k, in O(1).
func (p *Profile) Footprint(k, i, j int) contention.Footprint {
	t := p.tables[k]
	e := t.ExecTime(i, j)
	if e == soc.InfDuration || e <= 0 {
		return contention.Footprint{}
	}
	return contention.FootprintFromTotals(t.proc, t.busBytes(i, j), e.Seconds())
}

// MemoryBytes returns the resident memory of running layers [i, j]: their
// weights plus double-buffered peak activation, the quantity constraint
// (Eq. 6) sums across concurrent slices.
func (p *Profile) MemoryBytes(i, j int) int64 {
	if j < i || i < 0 || j >= p.model.NumLayers() {
		return 0
	}
	return p.weightPrefix[j+1] - p.weightPrefix[i] + 2*p.actMax.Max(i, j)
}

// BoundaryBytes returns the tensor size crossing the boundary after layer j
// (the bytes a downstream processor must receive).
func (p *Profile) BoundaryBytes(j int) int64 {
	if j < 0 || j >= p.model.NumLayers() {
		return 0
	}
	return p.model.Layers[j].OutputBytes
}

// sparseMax answers range-max queries over int64 values in O(1) after
// O(n log n) preprocessing. All levels live in one flat backing array
// (level lvl spans flat[offs[lvl] : offs[lvl]+n-2^lvl+1]) so construction
// costs three allocations regardless of depth.
type sparseMax struct {
	flat []int64
	offs []int
	logs []int
}

func newSparseMax(vals []int64) *sparseMax {
	n := len(vals)
	logs := make([]int, n+1)
	for i := 2; i <= n; i++ {
		logs[i] = logs[i/2] + 1
	}
	levels := 1
	if n > 0 {
		levels = logs[n] + 1
	}
	offs := make([]int, levels+1)
	for lvl := 0; lvl < levels; lvl++ {
		offs[lvl+1] = offs[lvl] + n - 1<<lvl + 1
	}
	flat := make([]int64, offs[levels])
	copy(flat[:n], vals)
	for lvl := 1; lvl < levels; lvl++ {
		span := 1 << lvl
		prev, cur := flat[offs[lvl-1]:offs[lvl]], flat[offs[lvl]:offs[lvl+1]]
		for i := 0; i+span <= n; i++ {
			a, b := prev[i], prev[i+span/2]
			if b > a {
				a = b
			}
			cur[i] = a
		}
	}
	return &sparseMax{flat: flat, offs: offs, logs: logs}
}

// Max returns the maximum over indices [i, j] (inclusive); both must be in
// range and i ≤ j.
func (s *sparseMax) Max(i, j int) int64 {
	lvl := s.logs[j-i+1]
	base := s.offs[lvl]
	a, b := s.flat[base+i], s.flat[base+j-(1<<lvl)+1]
	if b > a {
		a = b
	}
	return a
}
