package profile

import (
	"testing"
	"testing/quick"
	"time"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

func newProfile(t *testing.T, modelName string) *Profile {
	t.Helper()
	p, err := New(soc.Kirin990(), model.MustByName(modelName))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewRejectsInvalid(t *testing.T) {
	bad := soc.Kirin990()
	bad.BusBandwidthGBps = 0
	if _, err := New(bad, model.MustByName(model.AlexNet)); err == nil {
		t.Error("invalid SoC: nil error")
	}
	m := model.MustByName(model.AlexNet).Clone()
	m.Layers[0].FLOPs = -1
	if _, err := New(soc.Kirin990(), m); err == nil {
		t.Error("invalid model: nil error")
	}
}

func TestExecTimeMatchesDirectSum(t *testing.T) {
	p := newProfile(t, model.ResNet50)
	m := p.Model()
	k := 1 // cpu-big
	proc := p.Table(k).Proc()
	for _, rng := range [][2]int{{0, 0}, {0, 5}, {3, 17}, {0, m.NumLayers() - 1}} {
		var want time.Duration
		for i := rng[0]; i <= rng[1]; i++ {
			want += proc.LayerTime(m.Layers[i])
		}
		if got := p.ExecTime(k, rng[0], rng[1]); got != want {
			t.Errorf("ExecTime(%d, %d) = %v, want %v", rng[0], rng[1], got, want)
		}
	}
}

func TestExecTimeBoundaries(t *testing.T) {
	p := newProfile(t, model.AlexNet)
	if got := p.ExecTime(1, 5, 4); got != 0 {
		t.Errorf("empty range = %v, want 0 (Property 2 boundary)", got)
	}
	if got := p.ExecTime(1, -1, 3); got != soc.InfDuration {
		t.Errorf("negative start = %v, want Inf", got)
	}
	if got := p.ExecTime(1, 0, p.NumLayers()); got != soc.InfDuration {
		t.Errorf("past end = %v, want Inf", got)
	}
}

// TestProperty2Monotonicity pins the paper's Property 2: shrinking a range
// from the left reduces cost; growing it to the right increases cost.
func TestProperty2Monotonicity(t *testing.T) {
	p := newProfile(t, model.VGG16)
	n := p.NumLayers()
	k := 1
	prop := func(a, b uint8) bool {
		i := int(a) % (n - 1)
		j := i + int(b)%(n-1-i)
		base := p.ExecTime(k, i, j)
		if p.ExecTime(k, i+1, j) >= base && j > i {
			return false
		}
		if j+1 < n && p.ExecTime(k, i, j+1) <= base {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnsupportedRanges(t *testing.T) {
	p := newProfile(t, model.BERT)
	npuIdx := 0 // Kirin990 lists the NPU first
	if p.Table(npuIdx).Proc().Kind != soc.KindNPU {
		t.Fatal("expected NPU at index 0")
	}
	// BERT's embedding (layer 0) is NPU-unsupported.
	if p.ExecTime(npuIdx, 0, 0) != soc.InfDuration {
		t.Error("embedding on NPU should be Inf")
	}
	if p.Table(npuIdx).Supported(0, p.NumLayers()-1) {
		t.Error("whole BERT should be NPU-unsupported")
	}
	// There exist supported sub-ranges (residual adds, activations).
	found := false
	for i := 0; i < p.NumLayers(); i++ {
		if p.Table(npuIdx).Supported(i, i) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no single BERT layer supported on NPU; expected some")
	}
	// CPU supports everything.
	if !p.Table(1).Supported(0, p.NumLayers()-1) {
		t.Error("CPU should support all of BERT")
	}
}

func TestSliceTimeIncludesOverheads(t *testing.T) {
	p := newProfile(t, model.ResNet50)
	k := 1
	exec := p.ExecTime(k, 0, 5)
	slice := p.SliceTime(k, 0, 5)
	if slice <= exec {
		t.Errorf("SliceTime %v not above ExecTime %v (copy + launch missing)", slice, exec)
	}
	if got := p.SliceTime(k, 5, 4); got != 0 {
		t.Errorf("empty SliceTime = %v, want 0", got)
	}
	if got := p.SliceTime(0, 0, p.NumLayers()-1); got == soc.InfDuration {
		t.Error("ResNet50 fully NPU-supported; SliceTime must be finite")
	}
}

func TestSliceTimeUnsupported(t *testing.T) {
	p := newProfile(t, model.YOLOv4)
	if got := p.SliceTime(0, 0, p.NumLayers()-1); got != soc.InfDuration {
		t.Errorf("YOLOv4 on NPU SliceTime = %v, want Inf", got)
	}
}

func TestFootprintMatchesContentionPackage(t *testing.T) {
	p := newProfile(t, model.SqueezeNet)
	k := 1
	fromProfile := p.Footprint(k, 0, p.NumLayers()-1)
	if fromProfile.DemandGBps <= 0 || fromProfile.Sensitivity <= 0 {
		t.Fatalf("footprint %+v not positive", fromProfile)
	}
	// Slice of an unsupported range yields a zero footprint.
	pb := newProfile(t, model.BERT)
	if fp := pb.Footprint(0, 0, pb.NumLayers()-1); fp.DemandGBps != 0 {
		t.Errorf("unsupported footprint = %+v, want zero", fp)
	}
}

func TestMemoryBytesMatchesModel(t *testing.T) {
	p := newProfile(t, model.GoogLeNet)
	m := p.Model()
	n := m.NumLayers()
	for _, rng := range [][2]int{{0, n - 1}, {0, 3}, {5, 20}, {n - 3, n - 1}} {
		want := m.SliceFootprintBytes(rng[0], rng[1])
		if got := p.MemoryBytes(rng[0], rng[1]); got != want {
			t.Errorf("MemoryBytes(%d, %d) = %d, want %d", rng[0], rng[1], got, want)
		}
	}
	if got := p.MemoryBytes(3, 2); got != 0 {
		t.Errorf("empty MemoryBytes = %d, want 0", got)
	}
}

func TestBoundaryBytes(t *testing.T) {
	p := newProfile(t, model.AlexNet)
	m := p.Model()
	if got, want := p.BoundaryBytes(0), m.Layers[0].OutputBytes; got != want {
		t.Errorf("BoundaryBytes(0) = %d, want %d", got, want)
	}
	if got := p.BoundaryBytes(-1); got != 0 {
		t.Errorf("BoundaryBytes(-1) = %d, want 0", got)
	}
	if got := p.BoundaryBytes(m.NumLayers()); got != 0 {
		t.Errorf("BoundaryBytes(n) = %d, want 0", got)
	}
}

func TestCopyInTime(t *testing.T) {
	p := newProfile(t, model.AlexNet)
	if got := p.CopyInTime(0); got <= 0 {
		t.Errorf("CopyInTime(0) = %v, want > 0", got)
	}
	if got := p.CopyInTime(-1); got != 0 {
		t.Errorf("CopyInTime(-1) = %v, want 0", got)
	}
}

func TestSparseMax(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	sm := newSparseMax(vals)
	cases := []struct {
		i, j int
		want int64
	}{
		{0, 0, 3}, {0, 7, 9}, {2, 4, 5}, {6, 7, 6}, {5, 5, 9}, {0, 3, 4},
	}
	for _, tc := range cases {
		if got := sm.Max(tc.i, tc.j); got != tc.want {
			t.Errorf("Max(%d, %d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

// Property: sparse range-max always matches a linear scan.
func TestSparseMaxProperty(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64((i * 7919) % 251)
	}
	sm := newSparseMax(vals)
	prop := func(a, b uint8) bool {
		i := int(a) % len(vals)
		j := i + int(b)%(len(vals)-i)
		var want int64
		for k := i; k <= j; k++ {
			if vals[k] > want {
				want = vals[k]
			}
		}
		return sm.Max(i, j) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	p := newProfile(t, model.AlexNet)
	if p.SoC().Name != "Kirin990" {
		t.Error("SoC accessor mismatch")
	}
	if p.Model().Name != model.AlexNet {
		t.Error("Model accessor mismatch")
	}
	if p.NumProcessors() != 4 {
		t.Errorf("NumProcessors = %d, want 4", p.NumProcessors())
	}
	if p.LayerTime(1, 0) != p.ExecTime(1, 0, 0) {
		t.Error("LayerTime != single-layer ExecTime")
	}
}
