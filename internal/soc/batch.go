package soc

import (
	"time"

	"hetero2pipe/internal/model"
)

// Batching model (paper Appendix D, Fig. 13). On mobile processors the
// limited on-chip memory makes batched latency an affine function of batch
// size: latency(n) ≈ a + b·n, where a amortises kernel launch and weight
// loading and b is the per-sample compute/memory time. Desktop CUDA GPUs,
// with abundant on-chip SRAM and massive parallelism, batch sub-linearly
// until occupancy saturates.

// BatchLatency returns the latency of executing the whole model at the given
// batch size on the processor, including one launch overhead and one weight
// load (weights are loaded once per batch, which is what makes batching
// lightweight models profitable).
func BatchLatency(p *Processor, m *model.Model, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	perSample := time.Duration(0)
	for _, l := range m.Layers {
		t := p.LayerTime(l)
		if t == InfDuration {
			return InfDuration
		}
		perSample += t
	}
	// Weight-load time: streaming the parameter set into caches/buffers.
	loadSec := float64(m.TotalWeightBytes()) / (p.SoloBandwidthGBps * 1e9)
	fixed := p.LaunchOverhead + time.Duration(loadSec*float64(time.Second))

	scale := batchScale(p, batch)
	return fixed + time.Duration(float64(perSample)*scale)
}

// batchScale returns the effective multiple of per-sample time for a batch.
// Mobile units are already fully utilised at batch 1, so scaling is linear
// (slope ≈ 1); the desktop GPU overlaps samples until it saturates.
func batchScale(p *Processor, batch int) float64 {
	if p.Kind != KindDesktopGPU {
		return float64(batch)
	}
	// Sub-linear until ~8 concurrent samples saturate the SMs.
	const saturation = 8.0
	n := float64(batch)
	if n <= saturation {
		return 1 + (n-1)*0.35
	}
	base := 1 + (saturation-1)*0.35
	return base + (n-saturation)*0.9
}

// MarginalBatchCost returns latency(n) - latency(n-1), the "rate of change
// in inference latency as batch size increases" plotted in Fig. 13.
func MarginalBatchCost(p *Processor, m *model.Model, batch int) time.Duration {
	if batch <= 1 {
		return BatchLatency(p, m, 1)
	}
	return BatchLatency(p, m, batch) - BatchLatency(p, m, batch-1)
}

// AlignmentBatch returns the smallest batch size whose batched latency for
// the light model meets or exceeds the target duration — the Appendix-D
// workaround that closes the 20–40× gap between light and heavy models so
// vertical alignment has comparable stage durations to work with.
func AlignmentBatch(p *Processor, light *model.Model, target time.Duration, maxBatch int) int {
	if maxBatch < 1 {
		maxBatch = 1
	}
	for n := 1; n <= maxBatch; n++ {
		if BatchLatency(p, light, n) >= target {
			return n
		}
	}
	return maxBatch
}
