package soc

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Runtime degradation. The paper's online mode (Sec. V) assumes a stable
// SoC, but deployed devices throttle thermally, shed DVFS frequency steps,
// lose processors to higher-priority subsystems and see their memory bus
// squeezed by co-located workloads. This file models those transitions as
// discrete events on the stream scheduler's simulated clock: each event
// mutates the SoC description in place, and Apply reports exactly which
// processors' solo cost tables the mutation stales so the planner can
// invalidate those — and only those — memoized tables.

// Degradation is the runtime derating state of one processor, written by
// degradation events and folded into LayerTime. The zero value means the
// processor runs at its nominal description.
type Degradation struct {
	// Offline marks the processor unavailable: every layer becomes
	// unsupported (LayerTime returns InfDuration), so freshly measured cost
	// tables route all work to the surviving processors.
	Offline bool
	// ThrottleFactor is a thermal-throttle latency dilation (≥ 1) layered on
	// top of the steady-state Thermal model; 0 means none.
	ThrottleFactor float64
	// FreqFraction is the DVFS operating point as a fraction of nominal
	// frequency in (0, 1]; both compute and memory-path time scale by its
	// inverse. 0 means nominal.
	FreqFraction float64
}

// LatencyFactor returns the combined latency dilation of the current
// derating state (1 when nominal).
func (d Degradation) LatencyFactor() float64 {
	f := 1.0
	if d.ThrottleFactor > 0 {
		f *= d.ThrottleFactor
	}
	if d.FreqFraction > 0 {
		f /= d.FreqFraction
	}
	return f
}

// Validate reports the first configuration problem, or nil.
func (d Degradation) Validate() error {
	if d.ThrottleFactor != 0 && d.ThrottleFactor < 1 {
		return fmt.Errorf("throttle factor %g below 1", d.ThrottleFactor)
	}
	if d.FreqFraction != 0 && (d.FreqFraction <= 0 || d.FreqFraction > 1) {
		return fmt.Errorf("frequency fraction %g outside (0,1]", d.FreqFraction)
	}
	return nil
}

// EventKind identifies a degradation event class.
type EventKind int

// Degradation event classes.
const (
	// EventThermalThrottle dilates a processor's latency by Factor (≥ 1);
	// Factor 1 clears an earlier throttle.
	EventThermalThrottle EventKind = iota + 1
	// EventFrequencyScale moves a processor to the DVFS operating point
	// Factor ∈ (0, 1] of nominal frequency; Factor 1 restores nominal.
	EventFrequencyScale
	// EventProcessorOffline removes a processor from service (higher-priority
	// subsystem claims it, driver reset, thermal shutdown).
	EventProcessorOffline
	// EventProcessorOnline returns a processor to service.
	EventProcessorOnline
	// EventBandwidthSqueeze derates the shared memory bus to Factor ∈ (0, 1]
	// of its nominal capacity (co-located non-inference traffic); Factor 1
	// restores it. The squeeze changes co-execution slowdown only — solo
	// cost tables are bus-capacity independent, so no table goes stale.
	EventBandwidthSqueeze
)

var eventKindNames = map[EventKind]string{
	EventThermalThrottle:  "throttle",
	EventFrequencyScale:   "freq",
	EventProcessorOffline: "offline",
	EventProcessorOnline:  "online",
	EventBandwidthSqueeze: "bus",
}

// String returns the short event-class name used by the CLI grammar.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Valid reports whether k is a known event class.
func (k EventKind) Valid() bool {
	_, ok := eventKindNames[k]
	return ok
}

// Event is one degradation transition at a point of the simulated clock.
type Event struct {
	// At is the virtual time the transition takes effect (the stream
	// scheduler's clock).
	At time.Duration
	// Kind is the transition class.
	Kind EventKind
	// Processor is the target processor ID; empty for SoC-wide events
	// (EventBandwidthSqueeze).
	Processor string
	// Factor is the transition magnitude: latency dilation for throttles,
	// frequency fraction for scaling, bus fraction for squeezes. Unused for
	// offline/online.
	Factor float64
}

// Validate reports the first problem with the event description, or nil.
// Processor existence is checked by Apply against a concrete SoC.
func (ev Event) Validate() error {
	switch ev.Kind {
	case EventThermalThrottle:
		if ev.Factor < 1 {
			return fmt.Errorf("soc: throttle event factor %g below 1", ev.Factor)
		}
	case EventFrequencyScale:
		if ev.Factor <= 0 || ev.Factor > 1 {
			return fmt.Errorf("soc: frequency event factor %g outside (0,1]", ev.Factor)
		}
	case EventProcessorOffline, EventProcessorOnline:
		// Factor unused.
	case EventBandwidthSqueeze:
		if ev.Factor <= 0 || ev.Factor > 1 {
			return fmt.Errorf("soc: bandwidth event factor %g outside (0,1]", ev.Factor)
		}
		if ev.Processor != "" {
			return fmt.Errorf("soc: bandwidth event targets processor %q; the squeeze is SoC-wide", ev.Processor)
		}
	default:
		return fmt.Errorf("soc: unknown event kind %d", int(ev.Kind))
	}
	if ev.At < 0 {
		return fmt.Errorf("soc: event time %v negative", ev.At)
	}
	if ev.Kind != EventBandwidthSqueeze && ev.Processor == "" {
		return fmt.Errorf("soc: %s event names no processor", ev.Kind)
	}
	return nil
}

// String renders the event in the ParseEvent grammar.
func (ev Event) String() string {
	var b strings.Builder
	b.WriteString(ev.Kind.String())
	if ev.Processor != "" {
		b.WriteByte(':')
		b.WriteString(ev.Processor)
	}
	fmt.Fprintf(&b, "@%v", ev.At)
	switch ev.Kind {
	case EventThermalThrottle, EventFrequencyScale, EventBandwidthSqueeze:
		fmt.Fprintf(&b, ":%g", ev.Factor)
	}
	return b.String()
}

// Apply executes the transition on the SoC in place and returns the indices
// of processors whose solo cost tables it staled — the set a planner must
// re-measure. Bandwidth squeezes return no indices: bus capacity enters
// only the co-execution slowdown model, never the solo tables.
//
// An event that restates the current state (an online event for a processor
// already in service, a throttle re-asserting the active factor, a bus
// squeeze at the current derate) is a no-op: it stales nothing, returns no
// indices and leaves the degradation epoch untouched, so downstream caches
// keyed on Epoch keep their entries. Every state-changing Apply bumps the
// epoch — including bandwidth squeezes, which change the co-execution
// slowdown model (and therefore any memoized plan) even though no solo cost
// table goes stale.
func (s *SoC) Apply(ev Event) ([]int, error) {
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	// A zero derating field means "nominal", the same state factor 1 sets
	// explicitly; normalise before comparing so clearing an unset knob is
	// recognised as a no-op.
	nominal := func(f float64) float64 {
		if f == 0 {
			return 1
		}
		return f
	}
	if ev.Kind == EventBandwidthSqueeze {
		if nominal(s.BusDerate) == ev.Factor {
			return nil, nil
		}
		s.BusDerate = ev.Factor
		s.epoch++
		s.recordDelta(epochDelta{bus: true})
		return nil, nil
	}
	idx := -1
	for i := range s.Processors {
		if s.Processors[i].ID == ev.Processor {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("soc %q: event %s targets unknown processor %q", s.Name, ev.Kind, ev.Processor)
	}
	p := &s.Processors[idx]
	switch ev.Kind {
	case EventThermalThrottle:
		if nominal(p.Degrade.ThrottleFactor) == ev.Factor {
			return nil, nil
		}
		p.Degrade.ThrottleFactor = ev.Factor
	case EventFrequencyScale:
		if nominal(p.Degrade.FreqFraction) == ev.Factor {
			return nil, nil
		}
		p.Degrade.FreqFraction = ev.Factor
	case EventProcessorOffline:
		if p.Degrade.Offline {
			return nil, nil
		}
		p.Degrade.Offline = true
	case EventProcessorOnline:
		if !p.Degrade.Offline {
			return nil, nil
		}
		p.Degrade.Offline = false
	}
	s.epoch++
	s.recordDelta(epochDelta{procs: []int{idx}})
	return []int{idx}, nil
}

// AvailableProcessors returns the indices of processors currently in
// service.
func (s *SoC) AvailableProcessors() []int {
	var out []int
	for i := range s.Processors {
		if !s.Processors[i].Degrade.Offline {
			out = append(out, i)
		}
	}
	return out
}

// SortEvents returns a copy of the events stably sorted by firing time —
// the order the stream scheduler consumes them in.
func SortEvents(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// ParseEvent parses one event spec in the grammar
//
//	kind[:processor]@at[:factor]
//
// e.g. "throttle:cpu-big@10ms:1.8", "offline:npu@40ms", "online:npu@90ms",
// "freq:gpu@5ms:0.5", "bus@20ms:0.6". Times use time.ParseDuration.
func ParseEvent(spec string) (Event, error) {
	var ev Event
	head, tail, ok := strings.Cut(spec, "@")
	if !ok {
		return ev, fmt.Errorf("soc: event %q missing @time", spec)
	}
	kindName, proc, _ := strings.Cut(head, ":")
	kind, ok := func() (EventKind, bool) {
		for k, n := range eventKindNames {
			if n == kindName {
				return k, true
			}
		}
		return 0, false
	}()
	if !ok {
		return ev, fmt.Errorf("soc: event %q has unknown kind %q", spec, kindName)
	}
	ev.Kind = kind
	ev.Processor = proc
	atStr, factorStr, hasFactor := strings.Cut(tail, ":")
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return ev, fmt.Errorf("soc: event %q time: %w", spec, err)
	}
	ev.At = at
	switch kind {
	case EventThermalThrottle, EventFrequencyScale, EventBandwidthSqueeze:
		if !hasFactor {
			return ev, fmt.Errorf("soc: event %q needs a :factor", spec)
		}
		if _, err := fmt.Sscanf(factorStr, "%g", &ev.Factor); err != nil {
			return ev, fmt.Errorf("soc: event %q factor %q: %w", spec, factorStr, err)
		}
	default:
		if hasFactor {
			return ev, fmt.Errorf("soc: event %q: %s takes no factor", spec, kind)
		}
	}
	if err := ev.Validate(); err != nil {
		return ev, err
	}
	return ev, nil
}

// ParseEvents parses a comma-separated event list (the CLI flag format) and
// returns the events sorted by firing time.
func ParseEvents(csv string) ([]Event, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []Event
	for _, spec := range strings.Split(csv, ",") {
		ev, err := ParseEvent(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return SortEvents(out), nil
}
