package soc

import (
	"strings"
	"testing"
	"time"

	"hetero2pipe/internal/model"
)

func TestDegradationOfflineLayerTime(t *testing.T) {
	s := Kirin990()
	m := model.MustByName(model.SqueezeNet)
	big := s.Processor("cpu-big")
	if big.LayerTime(m.Layers[0]) == InfDuration {
		t.Fatal("nominal big CPU cannot run the first layer")
	}
	affected, err := s.Apply(Event{Kind: EventProcessorOffline, Processor: "cpu-big"})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || s.Processors[affected[0]].ID != "cpu-big" {
		t.Fatalf("affected = %v, want the big CPU's index", affected)
	}
	if big.LayerTime(m.Layers[0]) != InfDuration {
		t.Error("offline processor still reports finite layer time")
	}
	if big.Available() {
		t.Error("offline processor reports Available")
	}
	if _, err := s.Apply(Event{Kind: EventProcessorOnline, Processor: "cpu-big"}); err != nil {
		t.Fatal(err)
	}
	if big.LayerTime(m.Layers[0]) == InfDuration {
		t.Error("online event did not restore the processor")
	}
}

func TestDegradationThrottleAndFreqScaleLatency(t *testing.T) {
	s := Kirin990()
	m := model.MustByName(model.ResNet50)
	gpu := s.Processor("gpu")
	base := gpu.LayerTime(m.Layers[0])
	if _, err := s.Apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: 2}); err != nil {
		t.Fatal(err)
	}
	throttled := gpu.LayerTime(m.Layers[0])
	if got, want := throttled, 2*base; got < want-time.Nanosecond || got > want+time.Nanosecond {
		t.Errorf("throttled layer time %v, want ≈ %v", got, want)
	}
	// A frequency drop compounds: factor 2 throttle at half frequency = 4×.
	if _, err := s.Apply(Event{Kind: EventFrequencyScale, Processor: "gpu", Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	scaled := gpu.LayerTime(m.Layers[0])
	if got, want := scaled, 4*base; got < want-2*time.Nanosecond || got > want+2*time.Nanosecond {
		t.Errorf("throttled+scaled layer time %v, want ≈ %v", got, want)
	}
	// Clearing both restores the nominal time.
	if _, err := s.Apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Event{Kind: EventFrequencyScale, Processor: "gpu", Factor: 1}); err != nil {
		t.Fatal(err)
	}
	if got := gpu.LayerTime(m.Layers[0]); got != base {
		t.Errorf("restored layer time %v, want %v", got, base)
	}
	// The degraded SoC still validates — degradation is legal runtime state.
	if err := s.Validate(); err != nil {
		t.Errorf("degraded SoC fails validation: %v", err)
	}
}

func TestDegradationBandwidthSqueeze(t *testing.T) {
	s := Kirin990()
	nominal := s.EffectiveBusBandwidthGBps()
	affected, err := s.Apply(Event{Kind: EventBandwidthSqueeze, Factor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 0 {
		t.Errorf("bandwidth squeeze staled processor tables %v; solo tables are bus-independent", affected)
	}
	if got := s.EffectiveBusBandwidthGBps(); got != nominal/2 {
		t.Errorf("effective bus bandwidth %g, want %g", got, nominal/2)
	}
	if _, err := s.Apply(Event{Kind: EventBandwidthSqueeze, Factor: 1}); err != nil {
		t.Fatal(err)
	}
	if got := s.EffectiveBusBandwidthGBps(); got != nominal {
		t.Errorf("restored bus bandwidth %g, want %g", got, nominal)
	}
}

func TestDegradationEpochBumpsOnStateChange(t *testing.T) {
	s := Kirin990()
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh SoC epoch = %d, want 0", got)
	}
	steps := []Event{
		{Kind: EventThermalThrottle, Processor: "gpu", Factor: 2},
		{Kind: EventFrequencyScale, Processor: "cpu-big", Factor: 0.5},
		{Kind: EventProcessorOffline, Processor: "npu"},
		{Kind: EventProcessorOnline, Processor: "npu"},
		{Kind: EventBandwidthSqueeze, Factor: 0.5},
	}
	for i, ev := range steps {
		if _, err := s.Apply(ev); err != nil {
			t.Fatal(err)
		}
		if got, want := s.Epoch(), uint64(i+1); got != want {
			t.Errorf("after %s: epoch = %d, want %d", ev.Kind, got, want)
		}
	}
	s.BumpEpoch()
	if got, want := s.Epoch(), uint64(len(steps)+1); got != want {
		t.Errorf("after BumpEpoch: epoch = %d, want %d", got, want)
	}
}

func TestDegradationNoOpEventsKeepEpoch(t *testing.T) {
	s := Kirin990()
	// Events restating the nominal zero-value state: no bump, no staled
	// tables. Factor 1 must be recognised as the stored 0 ("nominal").
	noops := []Event{
		{Kind: EventProcessorOnline, Processor: "npu"},
		{Kind: EventThermalThrottle, Processor: "gpu", Factor: 1},
		{Kind: EventFrequencyScale, Processor: "cpu-big", Factor: 1},
		{Kind: EventBandwidthSqueeze, Factor: 1},
	}
	for _, ev := range noops {
		affected, err := s.Apply(ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(affected) != 0 {
			t.Errorf("no-op %s staled tables %v", ev.Kind, affected)
		}
		if got := s.Epoch(); got != 0 {
			t.Errorf("no-op %s bumped epoch to %d", ev.Kind, got)
		}
	}
	// Re-asserting an already-active degradation is equally a no-op.
	if _, err := s.Apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Event{Kind: EventProcessorOffline, Processor: "npu"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Event{Kind: EventBandwidthSqueeze, Factor: 0.7}); err != nil {
		t.Fatal(err)
	}
	base := s.Epoch()
	repeats := []Event{
		{Kind: EventThermalThrottle, Processor: "gpu", Factor: 1.5},
		{Kind: EventProcessorOffline, Processor: "npu"},
		{Kind: EventBandwidthSqueeze, Factor: 0.7},
	}
	for _, ev := range repeats {
		affected, err := s.Apply(ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(affected) != 0 {
			t.Errorf("repeated %s staled tables %v", ev.Kind, affected)
		}
	}
	if got := s.Epoch(); got != base {
		t.Errorf("repeated events moved epoch %d → %d", base, got)
	}
}

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{Kind: EventThermalThrottle, Processor: "gpu", Factor: 0.5},
		{Kind: EventFrequencyScale, Processor: "gpu", Factor: 1.5},
		{Kind: EventFrequencyScale, Processor: "gpu", Factor: 0},
		{Kind: EventBandwidthSqueeze, Factor: 2},
		{Kind: EventBandwidthSqueeze, Processor: "gpu", Factor: 0.5},
		{Kind: EventProcessorOffline},
		{Kind: EventKind(99), Processor: "gpu"},
		{Kind: EventProcessorOffline, Processor: "gpu", At: -time.Second},
	}
	for _, ev := range bad {
		if err := ev.Validate(); err == nil {
			t.Errorf("event %+v validated", ev)
		}
	}
	s := Kirin990()
	if _, err := s.Apply(Event{Kind: EventProcessorOffline, Processor: "no-such-unit"}); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestParseEvents(t *testing.T) {
	events, err := ParseEvents("online:npu@90ms, offline:npu@40ms, throttle:cpu-big@10ms:1.8, bus@20ms:0.6, freq:gpu@5ms:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(events))
	}
	// Sorted by firing time.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events not sorted: %v after %v", events[i].At, events[i-1].At)
		}
	}
	want := []Event{
		{At: 5 * time.Millisecond, Kind: EventFrequencyScale, Processor: "gpu", Factor: 0.5},
		{At: 10 * time.Millisecond, Kind: EventThermalThrottle, Processor: "cpu-big", Factor: 1.8},
		{At: 20 * time.Millisecond, Kind: EventBandwidthSqueeze, Factor: 0.6},
		{At: 40 * time.Millisecond, Kind: EventProcessorOffline, Processor: "npu"},
		{At: 90 * time.Millisecond, Kind: EventProcessorOnline, Processor: "npu"},
	}
	for i, ev := range events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	// Round trip through String.
	for _, ev := range events {
		back, err := ParseEvent(ev.String())
		if err != nil {
			t.Errorf("re-parsing %q: %v", ev.String(), err)
		} else if back != ev {
			t.Errorf("round trip %q → %+v, want %+v", ev.String(), back, ev)
		}
	}
	for _, bad := range []string{"offline:npu", "warp:npu@1ms", "bus@x:0.5", "throttle:gpu@1ms", "offline:npu@1ms:2"} {
		if _, err := ParseEvents(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
	if evs, err := ParseEvents("  "); err != nil || evs != nil {
		t.Errorf("blank spec: %v, %v", evs, err)
	}
	if !strings.Contains(Event{Kind: EventProcessorOffline, Processor: "npu", At: time.Millisecond}.String(), "offline:npu@1ms") {
		t.Error("String grammar drifted")
	}
}
