package soc

import (
	"time"
)

// Energy model (extension). The paper motivates heterogeneous execution
// with energy efficiency ("Energy efficiency also demands low bandwidth
// designs") but evaluates only latency/throughput; this extension prices
// schedules in joules so the trade-off is visible: per-processor busy and
// idle power drawn from representative mobile-SoC figures. A processor with
// zero BusyWatts opts out of energy accounting.

// Power describes one processor's power draw.
type Power struct {
	// BusyWatts is the package power while executing at full load.
	BusyWatts float64
	// IdleWatts is the power while powered on but idle (clock-gated).
	IdleWatts float64
}

// defaultPower returns representative power figures per processor class:
// big cores are the hungriest per unit of work, NPUs deliver by far the
// best energy per inference — the reason vendors ship them.
func defaultPower(kind Kind) Power {
	switch kind {
	case KindCPUBig:
		return Power{BusyWatts: 4.2, IdleWatts: 0.25}
	case KindCPUSmall:
		return Power{BusyWatts: 1.1, IdleWatts: 0.10}
	case KindGPU:
		return Power{BusyWatts: 3.3, IdleWatts: 0.20}
	case KindNPU:
		return Power{BusyWatts: 2.0, IdleWatts: 0.15}
	case KindDesktopGPU:
		return Power{BusyWatts: 250, IdleWatts: 30}
	}
	return Power{}
}

// PowerOf returns the processor's power model: its explicit Power when set,
// otherwise the class default.
func (p *Processor) PowerOf() Power {
	if p.Power.BusyWatts > 0 {
		return p.Power
	}
	return defaultPower(p.Kind)
}

// EnergyJoules prices a busy span plus the surrounding idle time on the
// processor.
func (p *Processor) EnergyJoules(busy, idle time.Duration) float64 {
	pw := p.PowerOf()
	return pw.BusyWatts*busy.Seconds() + pw.IdleWatts*idle.Seconds()
}

// EnergyRollup prices a whole plan execution: busy[k] is processor k's
// accumulated busy time, charged at busy power; the rest of the makespan is
// charged at idle power. Entries beyond the processor count are ignored and
// negative idle residue (busy beyond the makespan, which cannot arise from
// a well-formed timeline) clamps to zero. This is the single authoritative
// mapping from a schedule's busy profile to joules — the executor and the
// planner's per-plan objective both roll up through it.
func (s *SoC) EnergyRollup(busy []time.Duration, makespan time.Duration) float64 {
	var total float64
	for k := range s.Processors {
		var b time.Duration
		if k < len(busy) {
			b = busy[k]
		}
		idle := makespan - b
		if idle < 0 {
			idle = 0
		}
		total += s.Processors[k].EnergyJoules(b, idle)
	}
	return total
}
