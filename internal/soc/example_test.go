package soc_test

import (
	"fmt"

	"hetero2pipe/internal/model"
	"hetero2pipe/internal/soc"
)

// ExampleKirin990 inspects the preset's processor ordering — the paper's
// capability ranking NPU ≫ CPU_B ≥ GPU ≫ CPU_S.
func ExampleKirin990() {
	s := soc.Kirin990()
	for _, p := range s.Processors {
		fmt.Println(p.ID, p.Kind)
	}
	// Output:
	// npu NPU
	// cpu-big CPU_B
	// gpu GPU
	// cpu-small CPU_S
}

// ExampleProcessor_Supports shows the NPU's restricted operator coverage:
// convolutions run, attention falls back.
func ExampleProcessor_Supports() {
	s := soc.Kirin990()
	npu := s.Processor("npu")
	fmt.Println("conv:", npu.Supports(model.OpConv))
	fmt.Println("attention:", npu.Supports(model.OpAttention))
	// Output:
	// conv: true
	// attention: false
}

// ExampleBatchLatency demonstrates the affine batching of Appendix D.
func ExampleBatchLatency() {
	s := soc.Kirin990()
	big := s.Processor("cpu-big")
	m := model.MustByName(model.MobileNetV2)
	l1 := soc.BatchLatency(big, m, 1)
	l4 := soc.BatchLatency(big, m, 4)
	fmt.Println("batch 4 under 4× batch 1:", l4 < 4*l1)
	// Output:
	// batch 4 under 4× batch 1: true
}
