package soc

import (
	"reflect"
	"testing"
	"time"
)

// TestDegradationEpochJournal pins the AffectedSince contract the planner's
// incremental-replanning memo builds on: the journal must map an epoch delta
// to exactly the processors degradation events touched, flag bus-only
// deltas, and answer "unknown" for wildcard bumps or evicted history.
func TestDegradationEpochJournal(t *testing.T) {
	s := Kirin990()
	base := s.Epoch()

	// Same epoch: nothing changed.
	if procs, bus, ok := s.AffectedSince(base); !ok || bus || len(procs) != 0 {
		t.Fatalf("AffectedSince(current) = (%v, %v, %v), want (nil, false, true)", procs, bus, ok)
	}
	// A future epoch is unanswerable.
	if _, _, ok := s.AffectedSince(base + 5); ok {
		t.Fatal("AffectedSince(future epoch) reported ok")
	}

	idx := func(id string) int {
		for i := range s.Processors {
			if s.Processors[i].ID == id {
				return i
			}
		}
		t.Fatalf("no processor %q", id)
		return -1
	}
	apply := func(ev Event) {
		t.Helper()
		if _, err := s.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}

	// Two processor events + a repeat on the first: the union is two
	// distinct indices, sorted ascending.
	apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: 1.5})
	apply(Event{Kind: EventProcessorOffline, Processor: "npu"})
	apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: 2})
	want := []int{idx("gpu"), idx("npu")}
	if want[0] > want[1] {
		want[0], want[1] = want[1], want[0]
	}
	procs, bus, ok := s.AffectedSince(base)
	if !ok || bus || !reflect.DeepEqual(procs, want) {
		t.Fatalf("AffectedSince after proc events = (%v, %v, %v), want (%v, false, true)", procs, bus, ok, want)
	}

	// A bus squeeze is flagged separately and names no processor.
	mid := s.Epoch()
	apply(Event{Kind: EventBandwidthSqueeze, Factor: 0.5})
	if procs, bus, ok = s.AffectedSince(mid); !ok || !bus || len(procs) != 0 {
		t.Fatalf("AffectedSince over bus squeeze = (%v, %v, %v), want (nil, true, true)", procs, bus, ok)
	}
	// Composite delta: earlier proc events plus the squeeze.
	if procs, bus, ok = s.AffectedSince(base); !ok || !bus || !reflect.DeepEqual(procs, want) {
		t.Fatalf("composite AffectedSince = (%v, %v, %v), want (%v, true, true)", procs, bus, ok, want)
	}

	// No-op events must not advance the epoch or grow the journal.
	before := s.Epoch()
	apply(Event{Kind: EventBandwidthSqueeze, Factor: 0.5})
	apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: 2})
	if s.Epoch() != before {
		t.Fatalf("no-op events moved the epoch %d → %d", before, s.Epoch())
	}

	// A manual BumpEpoch is a wildcard: every span crossing it is unknown.
	wild := s.Epoch()
	s.BumpEpoch()
	if _, _, ok := s.AffectedSince(wild); ok {
		t.Fatal("AffectedSince across BumpEpoch reported ok; wildcard deltas must be unknown")
	}
	// Spans entirely after the wildcard answer normally again.
	after := s.Epoch()
	apply(Event{Kind: EventProcessorOnline, Processor: "npu"})
	if procs, bus, ok = s.AffectedSince(after); !ok || bus || !reflect.DeepEqual(procs, []int{idx("npu")}) {
		t.Fatalf("AffectedSince after wildcard = (%v, %v, %v), want ([%d], false, true)", procs, bus, ok, idx("npu"))
	}
}

// TestDegradationEpochJournalEviction overflows the bounded journal and
// requires spans reaching past the evicted history to answer "unknown"
// while recent spans still resolve.
func TestDegradationEpochJournalEviction(t *testing.T) {
	s := Kirin990()
	old := s.Epoch()
	// Alternate two distinct throttle factors so every event is a state
	// change; run well past the cap.
	for i := 0; i < epochJournalCap+16; i++ {
		factor := 1.5
		if i%2 == 1 {
			factor = 2.5
		}
		if _, err := s.Apply(Event{Kind: EventThermalThrottle, Processor: "gpu", Factor: factor, At: time.Duration(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := s.AffectedSince(old); ok {
		t.Fatal("AffectedSince over evicted history reported ok")
	}
	recent := s.Epoch() - 4
	procs, bus, ok := s.AffectedSince(recent)
	if !ok || bus || len(procs) != 1 {
		t.Fatalf("AffectedSince over recent span = (%v, %v, %v), want one processor", procs, bus, ok)
	}
}
