package soc

import (
	"encoding/json"
	"fmt"
	"time"

	"hetero2pipe/internal/model"
)

// JSON interchange for custom SoC descriptions, so users can model their
// own hardware without touching the presets. Durations are serialised in
// microseconds, efficiencies keyed by operator name.

// processorJSON is the serialised form of a Processor.
type processorJSON struct {
	ID                   string             `json:"id"`
	Kind                 string             `json:"kind"`
	Cores                int                `json:"cores"`
	PeakGFLOPS           float64            `json:"peakGFLOPS"`
	Efficiency           map[string]float64 `json:"efficiency,omitempty"`
	DefaultEfficiency    float64            `json:"defaultEfficiency"`
	SoloBandwidthGBps    float64            `json:"soloBandwidthGBps"`
	L2Bytes              int64              `json:"l2Bytes"`
	LaunchOverheadMicros int64              `json:"launchOverheadMicros"`
	DedicatedMemPath     float64            `json:"dedicatedMemPath,omitempty"`
	Thermal              *Thermal           `json:"thermal,omitempty"`
	Power                *Power             `json:"power,omitempty"`
}

// socJSON is the serialised form of an SoC.
type socJSON struct {
	Name                string          `json:"name"`
	Processors          []processorJSON `json:"processors"`
	BusBandwidthGBps    float64         `json:"busBandwidthGBps"`
	CopyBandwidthGBps   float64         `json:"copyBandwidthGBps"`
	CopyLatencyMicros   int64           `json:"copyLatencyMicros"`
	MemoryCapacityBytes int64           `json:"memoryCapacityBytes"`
	MemFreqLevelsMHz    []int           `json:"memFreqLevelsMHz,omitempty"`
}

// kindNamesInverse maps serialised kind names back to Kind values.
var kindNamesInverse = func() map[string]Kind {
	out := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		out[n] = k
	}
	return out
}()

// opKindByName maps operator names (model.OpKind.String) to kinds, using
// the model package's naming.
var opKindByName = func() map[string]model.OpKind {
	kinds := []model.OpKind{
		model.OpConv, model.OpDepthwiseConv, model.OpFC, model.OpMatMul,
		model.OpAttention, model.OpLayerNorm, model.OpPool, model.OpActivation,
		model.OpConcat, model.OpResidualAdd, model.OpSoftmax, model.OpEmbedding,
		model.OpUpsample, model.OpBatchNorm,
	}
	out := make(map[string]model.OpKind, len(kinds))
	for _, k := range kinds {
		out[k.String()] = k
	}
	return out
}()

// MarshalJSON encodes the SoC in the stable interchange format.
func (s *SoC) MarshalJSON() ([]byte, error) {
	doc := socJSON{
		Name:                s.Name,
		Processors:          make([]processorJSON, len(s.Processors)),
		BusBandwidthGBps:    s.BusBandwidthGBps,
		CopyBandwidthGBps:   s.CopyBandwidthGBps,
		CopyLatencyMicros:   s.CopyLatency.Microseconds(),
		MemoryCapacityBytes: s.MemoryCapacityBytes,
		MemFreqLevelsMHz:    s.MemFreqLevelsMHz,
	}
	for i := range s.Processors {
		p := &s.Processors[i]
		pj := processorJSON{
			ID:                   p.ID,
			Kind:                 p.Kind.String(),
			Cores:                p.Cores,
			PeakGFLOPS:           p.PeakGFLOPS,
			DefaultEfficiency:    p.DefaultEfficiency,
			SoloBandwidthGBps:    p.SoloBandwidthGBps,
			L2Bytes:              p.L2Bytes,
			LaunchOverheadMicros: p.LaunchOverhead.Microseconds(),
			DedicatedMemPath:     p.DedicatedMemPath,
		}
		if len(p.Efficiency) > 0 {
			pj.Efficiency = make(map[string]float64, len(p.Efficiency))
			for k, v := range p.Efficiency {
				pj.Efficiency[k.String()] = v
			}
		}
		if p.Thermal != (Thermal{}) {
			th := p.Thermal
			pj.Thermal = &th
		}
		if p.Power != (Power{}) {
			pw := p.Power
			pj.Power = &pw
		}
		doc.Processors[i] = pj
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes and validates an SoC from the interchange format.
func (s *SoC) UnmarshalJSON(data []byte) error {
	var doc socJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("soc: decode: %w", err)
	}
	decoded := SoC{
		Name:                doc.Name,
		Processors:          make([]Processor, len(doc.Processors)),
		BusBandwidthGBps:    doc.BusBandwidthGBps,
		CopyBandwidthGBps:   doc.CopyBandwidthGBps,
		CopyLatency:         time.Duration(doc.CopyLatencyMicros) * time.Microsecond,
		MemoryCapacityBytes: doc.MemoryCapacityBytes,
		MemFreqLevelsMHz:    doc.MemFreqLevelsMHz,
	}
	for i, pj := range doc.Processors {
		kind, ok := kindNamesInverse[pj.Kind]
		if !ok {
			return fmt.Errorf("soc: processor %d has unknown kind %q", i, pj.Kind)
		}
		p := Processor{
			ID:                pj.ID,
			Kind:              kind,
			Cores:             pj.Cores,
			PeakGFLOPS:        pj.PeakGFLOPS,
			DefaultEfficiency: pj.DefaultEfficiency,
			SoloBandwidthGBps: pj.SoloBandwidthGBps,
			L2Bytes:           pj.L2Bytes,
			LaunchOverhead:    time.Duration(pj.LaunchOverheadMicros) * time.Microsecond,
			DedicatedMemPath:  pj.DedicatedMemPath,
		}
		if len(pj.Efficiency) > 0 {
			p.Efficiency = make(map[model.OpKind]float64, len(pj.Efficiency))
			for name, v := range pj.Efficiency {
				opKind, ok := opKindByName[name]
				if !ok {
					return fmt.Errorf("soc: processor %q has unknown operator %q", pj.ID, name)
				}
				p.Efficiency[opKind] = v
			}
		}
		if pj.Thermal != nil {
			p.Thermal = *pj.Thermal
		}
		if pj.Power != nil {
			p.Power = *pj.Power
		}
		decoded.Processors[i] = p
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*s = decoded
	return nil
}
