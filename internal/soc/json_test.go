package soc

import (
	"encoding/json"
	"testing"

	"hetero2pipe/internal/model"
)

func TestSoCJSONRoundTrip(t *testing.T) {
	for _, orig := range append(Presets(), DesktopCUDA()) {
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", orig.Name, err)
		}
		var decoded SoC
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("%s: unmarshal: %v", orig.Name, err)
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("%s: decoded SoC invalid: %v", orig.Name, err)
		}
		if decoded.Name != orig.Name || decoded.NumProcessors() != orig.NumProcessors() {
			t.Fatalf("%s: header mismatch", orig.Name)
		}
		if decoded.BusBandwidthGBps != orig.BusBandwidthGBps ||
			decoded.CopyLatency != orig.CopyLatency ||
			decoded.MemoryCapacityBytes != orig.MemoryCapacityBytes {
			t.Fatalf("%s: scalar field mismatch", orig.Name)
		}
		for i := range orig.Processors {
			op, dp := &orig.Processors[i], &decoded.Processors[i]
			if op.ID != dp.ID || op.Kind != dp.Kind || op.Cores != dp.Cores ||
				op.PeakGFLOPS != dp.PeakGFLOPS || op.LaunchOverhead != dp.LaunchOverhead ||
				op.Thermal != dp.Thermal || op.DedicatedMemPath != dp.DedicatedMemPath {
				t.Fatalf("%s/%s: processor mismatch", orig.Name, op.ID)
			}
			if len(op.Efficiency) != len(dp.Efficiency) {
				t.Fatalf("%s/%s: efficiency table size mismatch", orig.Name, op.ID)
			}
			for k, v := range op.Efficiency {
				if dp.Efficiency[k] != v {
					t.Fatalf("%s/%s: efficiency[%v] mismatch", orig.Name, op.ID, k)
				}
			}
		}
		// The decoded SoC must behave identically: same layer time for a
		// probe layer on every processor.
		probe := model.MustByName(model.ResNet50).Layers[5]
		for i := range orig.Processors {
			if orig.Processors[i].LayerTime(probe) != decoded.Processors[i].LayerTime(probe) {
				t.Fatalf("%s/%s: decoded behaviour differs", orig.Name, orig.Processors[i].ID)
			}
		}
	}
}

func TestSoCJSONRejectsInvalid(t *testing.T) {
	var s SoC
	cases := []string{
		`{`,
		`{"name":"x","processors":[{"id":"p","kind":"Alien","cores":1,"peakGFLOPS":1,"defaultEfficiency":0.5,"soloBandwidthGBps":1}],"busBandwidthGBps":1,"copyBandwidthGBps":1,"memoryCapacityBytes":1}`,
		`{"name":"x","processors":[{"id":"p","kind":"GPU","cores":1,"peakGFLOPS":1,"defaultEfficiency":0.5,"soloBandwidthGBps":1,"efficiency":{"Alien":0.5}}],"busBandwidthGBps":1,"copyBandwidthGBps":1,"memoryCapacityBytes":1}`,
		`{"name":"","processors":[],"busBandwidthGBps":1,"copyBandwidthGBps":1,"memoryCapacityBytes":1}`,
	}
	for i, src := range cases {
		if err := json.Unmarshal([]byte(src), &s); err == nil {
			t.Errorf("case %d: invalid document accepted", i)
		}
	}
}
