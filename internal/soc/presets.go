package soc

import (
	"time"

	"hetero2pipe/internal/model"
)

// Presets for the paper's three evaluation SoCs. Absolute throughput numbers
// are calibrated to the paper's anchor points (MobileNetV2 ≈ 76 FPS on the
// 778G CPU, ResNet50 > 100 FPS on the Kirin 990 NPU, BERT ≈ 550 ms on the
// Kirin big cluster); what the experiments depend on is the capability
// ordering NPU ≫ CPU_B ≥ GPU ≫ CPU_S and the bus oversubscription.

// Efficiency tables: the achievable fraction of peak per operator class.
// CPUs run NEON GEMM kernels that favour cache-blocked convolutions; large
// MatMul/attention working sets spill L2 and lose efficiency (Obs. 2).
// Embedded GPUs favour wide convolutions; NPUs are conv engines.
func cpuEfficiency() map[model.OpKind]float64 {
	return map[model.OpKind]float64{
		model.OpConv:          0.50,
		model.OpDepthwiseConv: 0.30,
		model.OpFC:            0.25,
		model.OpMatMul:        0.28,
		model.OpAttention:     0.22,
		model.OpLayerNorm:     0.10,
		model.OpPool:          0.15,
		model.OpActivation:    0.12,
	}
}

func gpuEfficiency() map[model.OpKind]float64 {
	return map[model.OpKind]float64{
		model.OpConv:          0.55,
		model.OpDepthwiseConv: 0.20,
		model.OpFC:            0.35,
		model.OpMatMul:        0.35,
		model.OpAttention:     0.25,
		model.OpLayerNorm:     0.08,
		model.OpPool:          0.12,
		model.OpActivation:    0.10,
	}
}

func npuEfficiency() map[model.OpKind]float64 {
	return map[model.OpKind]float64{
		model.OpConv:          0.60,
		model.OpDepthwiseConv: 0.45,
		model.OpFC:            0.50,
		model.OpPool:          0.30,
		model.OpActivation:    0.30,
	}
}

// cpuThermal matches Appendix B: CPUs cross 60 °C with a visible slowdown.
func cpuThermal() Thermal {
	return Thermal{
		AmbientC:        32,
		SteadyC:         68,
		ThrottleC:       55,
		MaxSlowdown:     1.25,
		TimeConstantSec: 45,
	}
}

// acceleratorThermal matches Appendix B: GPU/NPU stay inside 50 °C.
func acceleratorThermal() Thermal {
	return Thermal{
		AmbientC:        32,
		SteadyC:         48,
		ThrottleC:       55, // never reached: no throttling
		MaxSlowdown:     1.0,
		TimeConstantSec: 60,
	}
}

// Kirin990 returns the HiSilicon Kirin 990 preset: 2×A76@2.86 + 2×A76@2.09
// big cluster, 4×A55 little cluster, Mali-G76 MP16 GPU and the DaVinci NPU.
func Kirin990() *SoC {
	return &SoC{
		Name: "Kirin990",
		Processors: []Processor{
			{
				ID: "npu", Kind: KindNPU, Cores: 1,
				PeakGFLOPS: 2400, Efficiency: npuEfficiency(), DefaultEfficiency: 0.25,
				SoloBandwidthGBps: 14, L2Bytes: 8 << 20,
				LaunchOverhead: 900 * time.Microsecond, DedicatedMemPath: 0.99,
				Thermal: acceleratorThermal(),
			},
			{
				ID: "cpu-big", Kind: KindCPUBig, Cores: 4,
				PeakGFLOPS: 180, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 11, L2Bytes: 1 << 20,
				LaunchOverhead: 60 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
			{
				ID: "gpu", Kind: KindGPU, Cores: 1,
				PeakGFLOPS: 190, Efficiency: gpuEfficiency(), DefaultEfficiency: 0.12,
				SoloBandwidthGBps: 12, L2Bytes: 2 << 20,
				LaunchOverhead: 350 * time.Microsecond,
				Thermal:        acceleratorThermal(),
			},
			{
				ID: "cpu-small", Kind: KindCPUSmall, Cores: 4,
				PeakGFLOPS: 36, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 5, L2Bytes: 512 << 10,
				LaunchOverhead: 80 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
		},
		BusBandwidthGBps:    16,
		CopyBandwidthGBps:   8,
		CopyLatency:         120 * time.Microsecond,
		MemoryCapacityBytes: 2500 << 20, // ~2.5 GB available (Fig. 9)
		MemFreqLevelsMHz:    []int{547, 1094, 1333, 1866, 2133},
	}
}

// Snapdragon778G returns the Snapdragon 778G preset: 1+3 A78 big cluster,
// 4×A55, Adreno 642L GPU and the Hexagon 770 accelerator (weaker and with
// the same restricted operator coverage as other mobile NPUs).
func Snapdragon778G() *SoC {
	return &SoC{
		Name: "Snapdragon778G",
		Processors: []Processor{
			{
				ID: "npu", Kind: KindNPU, Cores: 1,
				PeakGFLOPS: 1000, Efficiency: npuEfficiency(), DefaultEfficiency: 0.2,
				SoloBandwidthGBps: 10, L2Bytes: 4 << 20,
				LaunchOverhead: 1100 * time.Microsecond, DedicatedMemPath: 0.98,
				Thermal: acceleratorThermal(),
			},
			{
				ID: "cpu-big", Kind: KindCPUBig, Cores: 4,
				PeakGFLOPS: 150, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 10, L2Bytes: 1 << 20,
				LaunchOverhead: 60 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
			{
				ID: "gpu", Kind: KindGPU, Cores: 1,
				PeakGFLOPS: 140, Efficiency: gpuEfficiency(), DefaultEfficiency: 0.12,
				SoloBandwidthGBps: 10, L2Bytes: 1 << 20,
				LaunchOverhead: 400 * time.Microsecond,
				Thermal:        acceleratorThermal(),
			},
			{
				ID: "cpu-small", Kind: KindCPUSmall, Cores: 4,
				PeakGFLOPS: 34, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 4.5, L2Bytes: 512 << 10,
				LaunchOverhead: 80 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
		},
		BusBandwidthGBps:    14,
		CopyBandwidthGBps:   7,
		CopyLatency:         130 * time.Microsecond,
		MemoryCapacityBytes: 2200 << 20,
		MemFreqLevelsMHz:    []int{547, 1094, 1333, 1866},
	}
}

// Snapdragon870 returns the Snapdragon 870 preset: 1×A77@3.2 + 3×A77 big
// cluster, 4×A55, Adreno 650 GPU and the Hexagon 698 accelerator.
func Snapdragon870() *SoC {
	return &SoC{
		Name: "Snapdragon870",
		Processors: []Processor{
			{
				ID: "npu", Kind: KindNPU, Cores: 1,
				PeakGFLOPS: 1400, Efficiency: npuEfficiency(), DefaultEfficiency: 0.22,
				SoloBandwidthGBps: 12, L2Bytes: 4 << 20,
				LaunchOverhead: 1000 * time.Microsecond, DedicatedMemPath: 0.985,
				Thermal: acceleratorThermal(),
			},
			{
				ID: "cpu-big", Kind: KindCPUBig, Cores: 4,
				PeakGFLOPS: 200, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 12, L2Bytes: 1 << 20,
				LaunchOverhead: 55 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
			{
				ID: "gpu", Kind: KindGPU, Cores: 1,
				PeakGFLOPS: 220, Efficiency: gpuEfficiency(), DefaultEfficiency: 0.12,
				SoloBandwidthGBps: 12, L2Bytes: 1 << 20,
				LaunchOverhead: 380 * time.Microsecond,
				Thermal:        acceleratorThermal(),
			},
			{
				ID: "cpu-small", Kind: KindCPUSmall, Cores: 4,
				PeakGFLOPS: 34, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 4.5, L2Bytes: 512 << 10,
				LaunchOverhead: 80 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
		},
		BusBandwidthGBps:    17,
		CopyBandwidthGBps:   8.5,
		CopyLatency:         110 * time.Microsecond,
		MemoryCapacityBytes: 2800 << 20,
		MemFreqLevelsMHz:    []int{547, 1094, 1333, 1866, 2133},
	}
}

// DesktopCUDA returns a desktop CUDA GPU reference used only for the
// Fig. 13 batching comparison: abundant on-chip memory keeps batched
// latency sub-linear, unlike the mobile processors.
func DesktopCUDA() *SoC {
	return &SoC{
		Name: "DesktopCUDA",
		Processors: []Processor{
			{
				ID: "cuda", Kind: KindDesktopGPU, Cores: 1,
				PeakGFLOPS: 20000, DefaultEfficiency: 0.45,
				Efficiency: map[model.OpKind]float64{
					model.OpConv:      0.60,
					model.OpMatMul:    0.65,
					model.OpFC:        0.60,
					model.OpAttention: 0.50,
				},
				SoloBandwidthGBps: 450, L2Bytes: 40 << 20,
				LaunchOverhead: 30 * time.Microsecond,
			},
		},
		BusBandwidthGBps:    450,
		CopyBandwidthGBps:   25,
		CopyLatency:         20 * time.Microsecond,
		MemoryCapacityBytes: 12 << 30,
		MemFreqLevelsMHz:    []int{7000},
	}
}

// Presets returns the three evaluation SoCs in the paper's order.
func Presets() []*SoC {
	return []*SoC{Snapdragon778G(), Snapdragon870(), Kirin990()}
}

// PresetByName returns the named preset SoC, or nil.
func PresetByName(name string) *SoC {
	switch name {
	case "Kirin990":
		return Kirin990()
	case "Snapdragon778G":
		return Snapdragon778G()
	case "Snapdragon870":
		return Snapdragon870()
	case "DesktopCUDA":
		return DesktopCUDA()
	case "Snapdragon8Gen2":
		return Snapdragon8Gen2()
	case "Dimensity9200":
		return Dimensity9200()
	}
	return nil
}
