package soc

import (
	"time"
)

// Extra presets beyond the paper's three evaluation SoCs: contemporary
// flagships with stronger NPUs and wider memory systems. They are not part
// of Presets() (the Fig. 7 experiments match the paper's trio) but let
// users and the sensitivity experiment explore how the planning problem
// shifts as hardware scales.

// Snapdragon8Gen2 returns a Snapdragon 8 Gen 2 preset: 1×X3 + 4×A715/A710
// performance cores, 3×A510, Adreno 740 and a strong Hexagon NPU over
// LPDDR5X.
func Snapdragon8Gen2() *SoC {
	return &SoC{
		Name: "Snapdragon8Gen2",
		Processors: []Processor{
			{
				ID: "npu", Kind: KindNPU, Cores: 1,
				PeakGFLOPS: 4200, Efficiency: npuEfficiency(), DefaultEfficiency: 0.3,
				SoloBandwidthGBps: 22, L2Bytes: 8 << 20,
				LaunchOverhead: 700 * time.Microsecond, DedicatedMemPath: 0.99,
				Thermal: acceleratorThermal(),
			},
			{
				ID: "cpu-big", Kind: KindCPUBig, Cores: 5,
				PeakGFLOPS: 340, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 18, L2Bytes: 2 << 20,
				LaunchOverhead: 45 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
			{
				ID: "gpu", Kind: KindGPU, Cores: 1,
				PeakGFLOPS: 420, Efficiency: gpuEfficiency(), DefaultEfficiency: 0.12,
				SoloBandwidthGBps: 20, L2Bytes: 3 << 20,
				LaunchOverhead: 280 * time.Microsecond,
				Thermal:        acceleratorThermal(),
			},
			{
				ID: "cpu-small", Kind: KindCPUSmall, Cores: 3,
				PeakGFLOPS: 40, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 6, L2Bytes: 512 << 10,
				LaunchOverhead: 70 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
		},
		BusBandwidthGBps:    28,
		CopyBandwidthGBps:   14,
		CopyLatency:         90 * time.Microsecond,
		MemoryCapacityBytes: 5 << 30,
		MemFreqLevelsMHz:    []int{547, 1094, 1555, 2092, 3196},
	}
}

// Dimensity9200 returns a MediaTek Dimensity 9200 preset: 1×X3 + 3×A715,
// 4×A510, Immortalis-G715 GPU and APU 690 over LPDDR5X.
func Dimensity9200() *SoC {
	return &SoC{
		Name: "Dimensity9200",
		Processors: []Processor{
			{
				ID: "npu", Kind: KindNPU, Cores: 1,
				PeakGFLOPS: 3600, Efficiency: npuEfficiency(), DefaultEfficiency: 0.28,
				SoloBandwidthGBps: 20, L2Bytes: 8 << 20,
				LaunchOverhead: 750 * time.Microsecond, DedicatedMemPath: 0.985,
				Thermal: acceleratorThermal(),
			},
			{
				ID: "cpu-big", Kind: KindCPUBig, Cores: 4,
				PeakGFLOPS: 300, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 17, L2Bytes: 2 << 20,
				LaunchOverhead: 50 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
			{
				ID: "gpu", Kind: KindGPU, Cores: 1,
				PeakGFLOPS: 380, Efficiency: gpuEfficiency(), DefaultEfficiency: 0.12,
				SoloBandwidthGBps: 19, L2Bytes: 2 << 20,
				LaunchOverhead: 300 * time.Microsecond,
				Thermal:        acceleratorThermal(),
			},
			{
				ID: "cpu-small", Kind: KindCPUSmall, Cores: 4,
				PeakGFLOPS: 44, Efficiency: cpuEfficiency(), DefaultEfficiency: 0.15,
				SoloBandwidthGBps: 6, L2Bytes: 512 << 10,
				LaunchOverhead: 70 * time.Microsecond,
				Thermal:        cpuThermal(),
			},
		},
		BusBandwidthGBps:    26,
		CopyBandwidthGBps:   13,
		CopyLatency:         95 * time.Microsecond,
		MemoryCapacityBytes: 5 << 30,
		MemFreqLevelsMHz:    []int{547, 1094, 1555, 2092, 3000},
	}
}

// AllPresets returns every built-in SoC, evaluation trio first.
func AllPresets() []*SoC {
	return append(Presets(), Snapdragon8Gen2(), Dimensity9200(), DesktopCUDA())
}
